#include "machine/machine.hpp"

#include <algorithm>
#include <cctype>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hps::machine {

const char* topology_kind_name(TopologyKind k) {
  switch (k) {
    case TopologyKind::kTorus3D: return "torus3d";
    case TopologyKind::kDragonfly: return "dragonfly";
    case TopologyKind::kFatTree: return "fattree";
  }
  return "?";
}

MachineConfig cielito() {
  MachineConfig c;
  c.name = "cielito";
  c.topology = TopologyKind::kTorus3D;
  c.cores_per_node = 16;
  c.net.link_bandwidth = gbps_to_Bps(10.0);
  c.net.injection_bandwidth = gbps_to_Bps(10.0);
  c.net.end_to_end_latency = 2'500;
  return c;
}

MachineConfig hopper() {
  MachineConfig c;
  c.name = "hopper";
  c.topology = TopologyKind::kTorus3D;
  c.cores_per_node = 24;
  c.net.link_bandwidth = gbps_to_Bps(35.0);
  c.net.injection_bandwidth = gbps_to_Bps(35.0);
  c.net.end_to_end_latency = 2'575;
  return c;
}

MachineConfig edison() {
  MachineConfig c;
  c.name = "edison";
  c.topology = TopologyKind::kDragonfly;
  c.cores_per_node = 24;
  c.net.link_bandwidth = gbps_to_Bps(24.0);
  c.net.injection_bandwidth = gbps_to_Bps(24.0);
  c.net.end_to_end_latency = 1'300;
  return c;
}

std::vector<MachineConfig> all_machines() { return {cielito(), hopper(), edison()}; }

MachineConfig machine_by_name(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "cielito") return cielito();
  if (lower == "hopper") return hopper();
  if (lower == "edison") return edison();
  HPS_THROW("unknown machine: " + name);
}

MachineInstance::MachineInstance(MachineConfig cfg, Rank nranks, int ranks_per_node,
                                 Placement placement, std::uint64_t seed)
    : cfg_(std::move(cfg)), ranks_per_node_(std::min(ranks_per_node, cfg_.cores_per_node)) {
  HPS_CHECK(nranks > 0 && ranks_per_node > 0);
  const int nodes_needed = (nranks + ranks_per_node_ - 1) / ranks_per_node_;

  switch (cfg_.topology) {
    case TopologyKind::kTorus3D:
      topo_ = topo::make_torus_for(nodes_needed);
      break;
    case TopologyKind::kDragonfly:
      topo_ = topo::make_dragonfly_for(nodes_needed);
      break;
    case TopologyKind::kFatTree:
      topo_ = topo::make_fattree_for(nodes_needed);
      break;
  }
  HPS_CHECK(topo_->num_nodes() >= nodes_needed);

  rank_to_node_.resize(static_cast<std::size_t>(nranks));
  switch (placement) {
    case Placement::kBlock:
      for (Rank r = 0; r < nranks; ++r)
        rank_to_node_[static_cast<std::size_t>(r)] = r / ranks_per_node_;
      break;
    case Placement::kRoundRobin:
      for (Rank r = 0; r < nranks; ++r)
        rank_to_node_[static_cast<std::size_t>(r)] = r % nodes_needed;
      break;
    case Placement::kRandom: {
      // Shuffle node slots, then assign blocks of ranks to shuffled nodes.
      std::vector<NodeId> slots(static_cast<std::size_t>(nodes_needed));
      for (int i = 0; i < nodes_needed; ++i) slots[static_cast<std::size_t>(i)] = i;
      Rng rng(mix_seed(seed, 0x9127E3B4));
      rng.shuffle(slots);
      for (Rank r = 0; r < nranks; ++r)
        rank_to_node_[static_cast<std::size_t>(r)] =
            slots[static_cast<std::size_t>(r / ranks_per_node_)];
      break;
    }
  }

  // Split the published end-to-end latency: `software_fraction` of it is
  // endpoint software (half at each end); the remainder is per-hop wire and
  // router delay spread over the topology's average hop count.
  const double L = static_cast<double>(cfg_.net.end_to_end_latency);
  sw_overhead_ = static_cast<SimTime>(L * cfg_.net.software_fraction / 2.0);
  const double avg_hops = std::max(1.0, topo_->average_hops());
  hop_latency_ = std::max<SimTime>(
      1, static_cast<SimTime>(L * (1.0 - cfg_.net.software_fraction) / avg_hops));
}

}  // namespace hps::machine
