// Machine descriptions: the published network parameters of the paper's
// three platforms (Cielito, Hopper, Edison) plus rank placement, and the
// decomposition of the end-to-end latency budget into software overhead and
// per-hop components used by the detailed simulators.
//
// The paper's settings (its §V-A): Cielito {10 Gbps, 2500 ns} (Cray XE6
// Gemini 3D torus), Hopper {35 Gbps, 2575 ns} (Cray XE6 Gemini 3D torus),
// Edison {24 Gbps, 1300 ns} (Cray XC30 Aries dragonfly).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "topo/topology.hpp"

namespace hps::machine {

enum class TopologyKind { kTorus3D, kDragonfly, kFatTree };

const char* topology_kind_name(TopologyKind k);

/// Network timing/bandwidth parameters of a machine.
///
/// `link_bandwidth` is the *published per-rank (Hockney) bandwidth* — what a
/// single MPI message achieves end to end. The physical fabric is thicker:
/// a Gemini/Aries link carries traffic from the whole node, so the detailed
/// simulators provision fabric links and node NICs at multiples of the
/// per-rank rate while pacing each individual message at it.
struct NetworkParams {
  Bandwidth link_bandwidth = 0;        ///< per-rank Hockney bandwidth, bytes/second
  Bandwidth injection_bandwidth = 0;   ///< per-rank NIC share, bytes/second
  SimTime end_to_end_latency = 0;      ///< published zero-load latency, ns
  /// Fraction of the end-to-end latency spent in MPI/NIC software at the two
  /// endpoints (the rest is divided over the average-hop wire/router path).
  double software_fraction = 0.4;
  /// Fabric link capacity as a multiple of the per-rank bandwidth.
  double link_multiplier = 10.0;
  /// Node NIC capacity as a multiple of the per-rank bandwidth (a full
  /// node's ranks can inject concurrently at a modest discount).
  double injection_multiplier = 16.0;
};

/// Static description of a machine model.
struct MachineConfig {
  std::string name;
  TopologyKind topology = TopologyKind::kTorus3D;
  int cores_per_node = 16;
  NetworkParams net;
  /// Message size at and below which the eager protocol applies.
  std::uint64_t eager_threshold = 8 * KiB;
};

/// Preset configurations for the paper's three platforms.
MachineConfig cielito();  // 10 Gbps, 2500 ns, torus
MachineConfig hopper();   // 35 Gbps, 2575 ns, torus
MachineConfig edison();   // 24 Gbps, 1300 ns, dragonfly

/// All three presets, in the order used throughout the benches.
std::vector<MachineConfig> all_machines();

/// Look up a preset by (case-insensitive) name; throws hps::Error if unknown.
MachineConfig machine_by_name(const std::string& name);

/// How trace ranks are assigned to nodes.
enum class Placement {
  kBlock,       ///< ranks 0..c-1 on node 0, c..2c-1 on node 1, ...
  kRoundRobin,  ///< rank r on node r % nodes
  kRandom,      ///< deterministic shuffle from a seed
};

/// A machine *instance*: a config bound to a concrete topology sized for a
/// specific job, with a rank-to-node map and the derived per-hop latency.
class MachineInstance {
 public:
  /// Builds a topology with >= ceil(nranks / ranks_per_node) nodes and places
  /// the ranks. `ranks_per_node` is capped at cores_per_node.
  MachineInstance(MachineConfig cfg, Rank nranks, int ranks_per_node,
                  Placement placement = Placement::kBlock, std::uint64_t seed = 0);

  const MachineConfig& config() const { return cfg_; }
  const topo::Topology& topology() const { return *topo_; }
  Rank nranks() const { return static_cast<Rank>(rank_to_node_.size()); }
  NodeId node_of(Rank r) const { return rank_to_node_[static_cast<std::size_t>(r)]; }
  int ranks_per_node() const { return ranks_per_node_; }

  /// Per-endpoint software overhead (half the software share of the latency).
  SimTime software_overhead() const { return sw_overhead_; }
  /// Per-hop latency (wire + router) after removing the software share.
  SimTime hop_latency() const { return hop_latency_; }

 private:
  MachineConfig cfg_;
  std::unique_ptr<topo::Topology> topo_;
  std::vector<NodeId> rank_to_node_;
  int ranks_per_node_;
  SimTime sw_overhead_ = 0;
  SimTime hop_latency_ = 0;
};

}  // namespace hps::machine
