// Runs one trace through the four schemes the paper compares — MFACT
// modeling and SST-style packet, flow, and packet-flow simulation — on the
// machine the trace was collected on, recording predicted times and host
// wall-clock cost per scheme.
#pragma once

#include <optional>
#include <string>

#include "common/units.hpp"
#include "mfact/classify.hpp"
#include "obs/components.hpp"
#include "robust/guard.hpp"
#include "simmpi/replayer.hpp"
#include "trace/features.hpp"
#include "workloads/corpus.hpp"

namespace hps::core {

enum class Scheme : int { kMfact = 0, kPacket, kFlow, kPacketFlow, kNumSchemes };

const char* scheme_name(Scheme s);

/// Result of one scheme on one trace.
struct SchemeOutcome {
  bool attempted = false;
  bool ok = false;
  std::string error;          ///< set when attempted && !ok
  /// Structured failure class when !ok: error/oom/deadlock/budget/injected/
  /// unknown, kSkipped for compat skips or interrupted studies, or (under
  /// process isolation) kCrash/kTimeout for a worker the supervisor lost.
  /// kNone when the scheme succeeded. A budget trip still carries partial
  /// total_time/components/des_events.
  robust::FailKind fail_kind = robust::FailKind::kNone;
  /// Terminating signal of the isolated worker when fail_kind is kCrash
  /// (11 = SIGSEGV, 6 = SIGABRT, ...); 0 otherwise.
  std::int32_t signal = 0;
  SimTime total_time = 0;     ///< predicted application time
  SimTime comm_time = 0;      ///< predicted mean communication time
  double wall_seconds = 0;    ///< host time the scheme took
  /// Virtual-time decomposition summed over ranks. For the simulators this
  /// comes from the replayer's blocked-interval accounting; for MFACT from
  /// the base-configuration logical counters.
  obs::ComponentTimes components;
  std::uint64_t des_events = 0;  ///< DES events processed (0 for MFACT)
  simnet::NetStats net;          ///< network-model effort counters (0 for MFACT)
};

/// Everything the study needs to know about one trace.
struct TraceOutcome {
  int spec_id = -1;
  std::string app;
  std::string machine;
  Rank ranks = 0;
  std::uint64_t events = 0;
  SimTime measured_total = 0;  ///< synthesized ground-truth wall time
  SimTime measured_comm = 0;

  trace::FeatureVector features;  ///< Table III features (CL filled in)
  mfact::AppClass app_class = mfact::AppClass::kComputationBound;
  mfact::SensitivityGroup group = mfact::SensitivityGroup::kNotCommSensitive;
  double bw_sensitivity = 0;
  double lat_sensitivity = 0;

  SchemeOutcome scheme[static_cast<int>(Scheme::kNumSchemes)];

  const SchemeOutcome& of(Scheme s) const { return scheme[static_cast<int>(s)]; }
  SchemeOutcome& of(Scheme s) { return scheme[static_cast<int>(s)]; }

  /// |sim_total / mfact_total - 1| — the paper's DIFF_total. Returns nullopt
  /// when either scheme failed.
  std::optional<double> diff_total(Scheme sim) const;
  /// Same for the mean communication time.
  std::optional<double> diff_comm(Scheme sim) const;
};

struct RunOptions {
  simmpi::ReplayConfig replay;
  mfact::ClassifyParams classify;
  /// Repeat wall-clock measurements and report the mean (the paper averages
  /// 10 runs; 1 keeps the full-corpus study affordable).
  int timing_repeats = 1;
  /// Emulate SST/Macro 3.0's trace-compatibility limits (§V-A: its packet
  /// and flow models cannot replay complex MPI grouping operations): the
  /// packet model skips traces that use sub-communicators, and the flow
  /// model additionally skips traces containing Alltoallv/Gather/Scatter.
  bool sst30_compat = false;
  /// Per-scheme execution budget (wall deadline, DES event cap, virtual-time
  /// horizon). Unlimited by default; when limited, a scheme that exhausts it
  /// degrades to a FailKind::kBudget outcome instead of hanging the study.
  robust::Budget budget;
  /// Graceful degradation (hpcsweepd overload/deadline fallback): run only
  /// the analytical MFACT model and mark the three simulator schemes
  /// FailKind::kSkipped — orders of magnitude cheaper than simulating, with
  /// the accuracy loss the paper quantifies. Off everywhere by default.
  bool mfact_only = false;
};

/// Run all four schemes over a freshly generated trace for `spec`.
TraceOutcome run_all_schemes(const workloads::TraceSpec& spec, const RunOptions& opts = {});

/// Run the schemes on an existing trace (spec_id stays -1).
TraceOutcome run_all_schemes(const trace::Trace& t, const RunOptions& opts = {});

}  // namespace hps::core
