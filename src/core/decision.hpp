// The "enhanced MFACT" need-for-simulation predictor (paper §VI).
//
// Definition: a trace *needs simulation* when the packet-flow simulation's
// predicted total time differs from MFACT's by more than 2%
// (DIFF_total > 0.02). The predictor decides this from the 35 Table III
// features — 34 measurable from the trace plus MFACT's own
// communication-sensitivity class CL — via stepwise-selected logistic
// regression, evaluated with Monte-Carlo cross-validation. A naive rule
// ("recommend simulation iff MFACT classifies the app as
// communication-sensitive") is the paper's baseline at 73.4% success.
#pragma once

#include <span>
#include <vector>

#include "core/runner.hpp"
#include "stats/crossval.hpp"

namespace hps::core {

struct DecisionOptions {
  /// DIFF_total threshold defining "needs simulation".
  double diff_threshold = 0.02;
  /// Simulation scheme whose result defines ground truth.
  Scheme reference = Scheme::kPacketFlow;
  stats::CrossValOptions cv;
};

/// Build the labeled dataset: one row per trace where both MFACT and the
/// reference simulation succeeded; columns are the Table III features.
stats::Dataset build_decision_dataset(std::span<const TraceOutcome> outcomes,
                                      const DecisionOptions& opts = {});

/// The naive rule's confusion counts and success rate on the dataset.
struct NaiveRuleResult {
  int tp = 0, tn = 0, fp = 0, fn = 0;
  double success_rate = 0;
};
NaiveRuleResult evaluate_naive_rule(std::span<const TraceOutcome> outcomes,
                                    const DecisionOptions& opts = {});

/// Full predictor evaluation: Monte-Carlo CV of the stepwise model.
struct DecisionEvaluation {
  stats::CrossValResult cv;           ///< per-split metrics + variable report
  NaiveRuleResult naive;              ///< the baseline rule
  stats::LogisticModel final_model;   ///< trained on all data with the top
                                      ///< variables (<= 5) from the CV report
  int positives = 0;                  ///< traces labeled "needs simulation"
  int total = 0;
};
DecisionEvaluation evaluate_decision_model(std::span<const TraceOutcome> outcomes,
                                           const DecisionOptions& opts = {});

/// Apply the final model to a fresh trace outcome (its features must be
/// populated, including CL).
bool needs_simulation(const stats::LogisticModel& model, const TraceOutcome& o);

}  // namespace hps::core
