// The full trade-off study: run every corpus trace through all four schemes,
// in parallel across traces, with a binary result cache so that the several
// bench binaries reproducing different tables/figures of the paper share one
// expensive computation.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "obs/ledger.hpp"
#include "workloads/corpus.hpp"

namespace hps::core {

/// How run_study distributes traces over workers.
enum class IsolateMode {
  kThread,   ///< in-process thread pool (default; fastest)
  kProcess,  ///< forked worker processes: a SIGSEGV/abort/OOM in one trace is
             ///< contained, classified (FailKind::kCrash/kTimeout/kOom), and
             ///< retried instead of killing the whole study
};

struct StudyOptions {
  workloads::CorpusOptions corpus;
  RunOptions run;
  int threads = 0;          ///< 0 = hardware concurrency (capped at 16)
  std::string cache_path;   ///< empty = no caching
  /// Append one JSON-lines obs::LedgerRecord per trace×scheme here whenever
  /// the study is actually computed (cache hits do not re-append). Empty =
  /// no ledger.
  std::string ledger_path;
  bool force_recompute = false;
  bool progress = false;    ///< print one line per completed trace to stderr
  /// Crash-safe journal: every completed TraceOutcome is appended (framed and
  /// CRC-checked, flushed and fsynced per record) as workers finish. If the
  /// process dies mid-study, rerunning with the same options resumes from the
  /// journal, recomputing only the missing specs. Removed after a successful
  /// run. Empty = no journaling.
  std::string journal_path;
  /// Execution isolation. Under kProcess the `threads` field sizes the worker
  /// *process* pool instead of the thread pool; results for healthy traces
  /// are byte-identical to thread mode (wall_seconds aside).
  IsolateMode isolate = IsolateMode::kThread;
  /// Process mode only: extra attempts for a trace whose worker crashed or
  /// timed out, with exponential backoff, before it is quarantined as
  /// FailKind::kCrash/kTimeout.
  int retries = 1;
  /// Process mode only: RLIMIT_AS per worker in MB (0 = unlimited). A trace
  /// that exhausts it fails in-worker with FailKind::kOom instead of taking
  /// the machine down.
  long rss_limit_mb = 0;
  /// Process mode only: hard-kill a worker not heard from (heartbeat or
  /// result) for this long; its trace is retried/quarantined as
  /// FailKind::kTimeout. 0 disables the watchdog.
  double watchdog_timeout_seconds = 0;
  /// Request trace id for serving-path observability (0 = unattributed).
  /// Set as the telemetry trace id for the study's worker threads/processes
  /// so every span they record carries it. Deliberately NOT mixed into
  /// study_cache_key: tracing must never change what gets computed or
  /// cached.
  std::uint64_t trace_id = 0;
};

struct StudyResult {
  std::vector<TraceOutcome> outcomes;  ///< ordered by spec id
  double wall_seconds = 0;
  bool from_cache = false;
  int resumed_from_journal = 0;  ///< outcomes restored from the journal
  /// True when the study returned early because SIGINT/SIGTERM was received:
  /// unfinished traces are marked FailKind::kSkipped, the journal is kept in
  /// place for resumption, and no result cache is written. CLIs should exit
  /// with robust::kInterruptedExitCode (75).
  bool interrupted = false;
  int interrupt_signal = 0;  ///< the signal that interrupted the study
};

/// Run (or load) the study.
StudyResult run_study(const StudyOptions& opts);

/// Default cache location used by the bench binaries (honors the
/// HPS_CACHE_DIR environment variable, else the system temp directory).
std::string default_cache_path(const std::string& tag);

/// Cache (de)serialization, exposed for tests. The key guards against
/// reusing results across incompatible option sets; it also mixes in the
/// cache format version and obs::kObsSchemaVersion, so caches written by a
/// build with a different layout are recomputed instead of misread.
std::uint64_t study_cache_key(const StudyOptions& opts);

/// Flatten study outcomes into ledger records (one per trace×scheme, all
/// four schemes). `study_key` is stamped into each record as hex.
std::vector<obs::LedgerRecord> ledger_records(const std::vector<TraceOutcome>& outcomes,
                                              std::uint64_t study_key);
void save_outcomes(const std::vector<TraceOutcome>& outcomes, const std::string& path,
                   std::uint64_t key);
std::optional<std::vector<TraceOutcome>> load_outcomes(const std::string& path,
                                                       std::uint64_t key);

/// Single-outcome codec (the cache's record format, exposed for the journal
/// and tests). deserialize_outcome throws hps::Error on malformed bytes.
std::string serialize_outcome(const TraceOutcome& o);
TraceOutcome deserialize_outcome(const std::string& bytes);

}  // namespace hps::core
