#include "core/decision.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "trace/features.hpp"

namespace hps::core {

namespace {

/// Rows eligible for the predictor study: both tools produced a result.
bool eligible(const TraceOutcome& o, const DecisionOptions& opts) {
  return o.of(Scheme::kMfact).ok && o.of(opts.reference).ok &&
         o.diff_total(opts.reference).has_value();
}

int label_of(const TraceOutcome& o, const DecisionOptions& opts) {
  return *o.diff_total(opts.reference) > opts.diff_threshold ? 1 : 0;
}

}  // namespace

stats::Dataset build_decision_dataset(std::span<const TraceOutcome> outcomes,
                                      const DecisionOptions& opts) {
  std::vector<const TraceOutcome*> rows;
  for (const auto& o : outcomes)
    if (eligible(o, opts)) rows.push_back(&o);
  HPS_REQUIRE(!rows.empty(), "decision dataset is empty");

  stats::Dataset ds;
  const auto names = trace::feature_names();
  ds.names.assign(names.begin(), names.end());
  ds.x = Matrix(rows.size(), static_cast<std::size_t>(trace::kNumFeatures));
  ds.y.resize(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (int f = 0; f < trace::kNumFeatures; ++f) ds.x(i, static_cast<std::size_t>(f)) =
        rows[i]->features[f];
    ds.y[i] = label_of(*rows[i], opts);
  }
  return ds;
}

NaiveRuleResult evaluate_naive_rule(std::span<const TraceOutcome> outcomes,
                                    const DecisionOptions& opts) {
  NaiveRuleResult r;
  for (const auto& o : outcomes) {
    if (!eligible(o, opts)) continue;
    const int truth = label_of(o, opts);
    const int pred = o.group == mfact::SensitivityGroup::kCommSensitive ? 1 : 0;
    if (truth == 1 && pred == 1) ++r.tp;
    if (truth == 0 && pred == 0) ++r.tn;
    if (truth == 0 && pred == 1) ++r.fp;
    if (truth == 1 && pred == 0) ++r.fn;
  }
  const int total = r.tp + r.tn + r.fp + r.fn;
  r.success_rate = total > 0 ? static_cast<double>(r.tp + r.tn) / total : 0;
  return r;
}

DecisionEvaluation evaluate_decision_model(std::span<const TraceOutcome> outcomes,
                                           const DecisionOptions& opts) {
  DecisionEvaluation ev;
  const stats::Dataset ds = build_decision_dataset(outcomes, opts);
  ev.total = static_cast<int>(ds.n());
  for (int y : ds.y) ev.positives += y;

  ev.cv = stats::monte_carlo_cv(ds, opts.cv);
  ev.naive = evaluate_naive_rule(outcomes, opts);

  // Final model: the top (<= max_variables) variables by selection frequency
  // across the CV splits, refitted on the full dataset (the paper's "pick
  // the top five variables from the list and compute coefficients").
  std::vector<int> top;
  for (const auto& v : ev.cv.variables) {
    if (static_cast<int>(top.size()) >= opts.cv.stepwise.max_variables) break;
    top.push_back(v.feature);
  }
  ev.final_model = stats::fit_logistic(ds, top, opts.cv.stepwise.fit);
  return ev;
}

bool needs_simulation(const stats::LogisticModel& model, const TraceOutcome& o) {
  return model.classify(std::span<const double>(o.features.v.data(), o.features.v.size())) ==
         1;
}

}  // namespace hps::core
