#include "core/study.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "robust/fault.hpp"
#include "robust/interrupt.hpp"
#include "robust/journal.hpp"
#include "robust/supervisor.hpp"
#include "telemetry/export.hpp"
#include "telemetry/progress.hpp"
#include "telemetry/telemetry.hpp"

namespace hps::core {

namespace {

// v6: SchemeOutcome gained `signal` (terminating signal of a crashed
// isolated worker); FailKind gained kCrash/kTimeout.
constexpr std::uint32_t kCacheVersion = 6;
constexpr char kCacheMagic[4] = {'H', 'P', 'S', 'C'};

template <typename T>
void put(std::ostream& os, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T get(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  HPS_REQUIRE(static_cast<bool>(is), "study cache truncated");
  return v;
}

void put_string(std::ostream& os, const std::string& s) {
  put<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_string(std::istream& is) {
  const auto n = get<std::uint32_t>(is);
  HPS_REQUIRE(n < (1u << 20), "study cache string too large");
  std::string s(n, '\0');
  is.read(s.data(), n);
  HPS_REQUIRE(static_cast<bool>(is), "study cache truncated");
  return s;
}

void put_outcome(std::ostream& os, const TraceOutcome& o) {
  put<std::int32_t>(os, o.spec_id);
  put_string(os, o.app);
  put_string(os, o.machine);
  put<Rank>(os, o.ranks);
  put<std::uint64_t>(os, o.events);
  put<SimTime>(os, o.measured_total);
  put<SimTime>(os, o.measured_comm);
  put(os, o.features);
  put<std::int32_t>(os, static_cast<std::int32_t>(o.app_class));
  put<std::int32_t>(os, static_cast<std::int32_t>(o.group));
  put<double>(os, o.bw_sensitivity);
  put<double>(os, o.lat_sensitivity);
  for (const auto& s : o.scheme) {
    put<std::uint8_t>(os, s.attempted ? 1 : 0);
    put<std::uint8_t>(os, s.ok ? 1 : 0);
    put_string(os, s.error);
    put<std::uint8_t>(os, static_cast<std::uint8_t>(s.fail_kind));
    put<std::int32_t>(os, s.signal);
    put<SimTime>(os, s.total_time);
    put<SimTime>(os, s.comm_time);
    put<double>(os, s.wall_seconds);
    put(os, s.components);
    put<std::uint64_t>(os, s.des_events);
    put(os, s.net);
  }
}

TraceOutcome get_outcome(std::istream& is) {
  TraceOutcome o;
  o.spec_id = get<std::int32_t>(is);
  o.app = get_string(is);
  o.machine = get_string(is);
  o.ranks = get<Rank>(is);
  o.events = get<std::uint64_t>(is);
  o.measured_total = get<SimTime>(is);
  o.measured_comm = get<SimTime>(is);
  o.features = get<trace::FeatureVector>(is);
  o.app_class = static_cast<mfact::AppClass>(get<std::int32_t>(is));
  o.group = static_cast<mfact::SensitivityGroup>(get<std::int32_t>(is));
  o.bw_sensitivity = get<double>(is);
  o.lat_sensitivity = get<double>(is);
  for (auto& s : o.scheme) {
    s.attempted = get<std::uint8_t>(is) != 0;
    s.ok = get<std::uint8_t>(is) != 0;
    s.error = get_string(is);
    s.fail_kind = static_cast<robust::FailKind>(get<std::uint8_t>(is));
    s.signal = get<std::int32_t>(is);
    s.total_time = get<SimTime>(is);
    s.comm_time = get<SimTime>(is);
    s.wall_seconds = get<double>(is);
    s.components = get<obs::ComponentTimes>(is);
    s.des_events = get<std::uint64_t>(is);
    s.net = get<simnet::NetStats>(is);
  }
  return o;
}

/// Outcome for a trace that never produced one in-process: an interrupted
/// study (kSkipped, not attempted) or a quarantined worker crash/timeout
/// (attempted — the worker died trying).
TraceOutcome synthesize_outcome(const workloads::TraceSpec& spec, robust::FailKind kind,
                                const std::string& error, int signal, bool attempted) {
  TraceOutcome o;
  o.spec_id = spec.id;
  o.app = spec.app;
  o.machine = spec.params.machine;
  o.ranks = spec.params.ranks;
  for (auto& s : o.scheme) {
    s.attempted = attempted;
    s.ok = false;
    s.error = error;
    s.fail_kind = kind;
    s.signal = signal;
  }
  return o;
}

}  // namespace

std::uint64_t study_cache_key(const StudyOptions& opts) {
  std::uint64_t h = kCacheVersion;
  h = mix_seed(h, obs::kObsSchemaVersion);
  h = mix_seed(h, opts.corpus.seed);
  h = mix_seed(h, static_cast<std::uint64_t>(opts.corpus.duration_scale * 1e6));
  h = mix_seed(h, static_cast<std::uint64_t>(opts.corpus.limit));
  h = mix_seed(h, opts.run.sst30_compat ? 1 : 0);
  h = mix_seed(h, static_cast<std::uint64_t>(opts.run.timing_repeats));
  h = mix_seed(h, opts.run.replay.eager_threshold);
  h = mix_seed(h, opts.run.replay.packet_size);
  h = mix_seed(h, opts.run.replay.packetflow_packet_size);
  // Budgets change outcomes (a tripped scheme degrades to a budget failure),
  // so budgeted and unbudgeted runs must never share cache entries.
  h = mix_seed(h, static_cast<std::uint64_t>(opts.run.budget.wall_deadline_seconds * 1e6));
  h = mix_seed(h, opts.run.budget.max_des_events);
  h = mix_seed(h, static_cast<std::uint64_t>(opts.run.budget.virtual_horizon));
  // Mixed only when set so every pre-existing key is unchanged: an
  // MFACT-only degraded run must never share an entry with the full study.
  if (opts.run.mfact_only) h = mix_seed(h, 0x6d666163746f6e6cULL);  // "mfactonl"
  return h;
}

std::string serialize_outcome(const TraceOutcome& o) {
  std::ostringstream os(std::ios::binary);
  put_outcome(os, o);
  return std::move(os).str();
}

TraceOutcome deserialize_outcome(const std::string& bytes) {
  std::istringstream is(bytes, std::ios::binary);
  TraceOutcome o = get_outcome(is);
  HPS_REQUIRE(is.peek() == std::char_traits<char>::eof(),
              "outcome record has trailing bytes");
  return o;
}

void save_outcomes(const std::vector<TraceOutcome>& outcomes, const std::string& path,
                   std::uint64_t key) {
  // Write-temp-then-rename: a crash mid-save leaves the previous cache (or
  // no cache) in place, never a truncated file under the real name.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    HPS_REQUIRE(os.is_open(), "cannot write study cache: " + tmp);
    os.write(kCacheMagic, 4);
    put<std::uint64_t>(os, key);
    put<std::uint32_t>(os, static_cast<std::uint32_t>(outcomes.size()));
    for (const auto& o : outcomes) put_outcome(os, o);
    os.flush();
    HPS_REQUIRE(static_cast<bool>(os), "study cache write failed");
  }
  // Rename alone only survives a process crash. For power loss the data must
  // be on disk before the rename points at it, and the rename itself lives
  // in the directory, so: fsync(tmp), rename, fsync(dir). Best effort — a
  // filesystem that rejects fsync still gets the process-crash guarantee.
  robust::sync_file(tmp);
  HPS_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
              "cannot move study cache into place: " + path);
  robust::sync_parent_dir(path);
}

std::optional<std::vector<TraceOutcome>> load_outcomes(const std::string& path,
                                                       std::uint64_t key) {
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) return std::nullopt;
  try {
    char magic[4];
    is.read(magic, 4);
    if (!is || std::memcmp(magic, kCacheMagic, 4) != 0) return std::nullopt;
    if (get<std::uint64_t>(is) != key) return std::nullopt;
    const auto n = get<std::uint32_t>(is);
    if (n > 100000) return std::nullopt;
    std::vector<TraceOutcome> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(get_outcome(is));
    return out;
  } catch (const std::exception&) {
    // Treat any read failure as a cache miss, not just hps::Error: a
    // truncated or bit-flipped file can also surface as std::bad_alloc or
    // std::length_error from a corrupt length prefix.
    return std::nullopt;
  }
}

std::vector<obs::LedgerRecord> ledger_records(const std::vector<TraceOutcome>& outcomes,
                                              std::uint64_t study_key) {
  char keyhex[24];
  std::snprintf(keyhex, sizeof keyhex, "%016llx",
                static_cast<unsigned long long>(study_key));
  std::vector<obs::LedgerRecord> records;
  records.reserve(outcomes.size() * static_cast<std::size_t>(Scheme::kNumSchemes));
  for (const TraceOutcome& o : outcomes) {
    for (int si = 0; si < static_cast<int>(Scheme::kNumSchemes); ++si) {
      const auto scheme = static_cast<Scheme>(si);
      const SchemeOutcome& so = o.of(scheme);
      obs::LedgerRecord rec;
      rec.study_key = keyhex;
      rec.spec_id = o.spec_id;
      rec.app = o.app;
      rec.machine = o.machine;
      rec.ranks = o.ranks;
      rec.events = o.events;
      rec.scheme = scheme_name(scheme);
      rec.ok = so.ok;
      rec.error = so.error;
      rec.fail_kind = robust::fail_kind_name(so.fail_kind);
      rec.signal = so.signal;
      rec.predicted_total_ns = so.total_time;
      rec.predicted_comm_ns = so.comm_time;
      rec.measured_total_ns = o.measured_total;
      if (scheme != Scheme::kMfact) {
        if (const auto d = o.diff_total(scheme)) rec.diff_total = *d;
        if (const auto d = o.diff_comm(scheme)) rec.diff_comm = *d;
      }
      rec.components = so.components;
      rec.des_events = so.des_events;
      rec.net_messages = so.net.messages;
      rec.net_bytes = so.net.bytes;
      rec.net_packets = so.net.packets;
      rec.net_rate_updates = so.net.rate_updates;
      rec.net_ripple_iterations = so.net.ripple_iterations;
      rec.net_stalls = so.net.queue_events;
      rec.net_max_active = so.net.max_active;
      rec.wall_seconds = so.wall_seconds;
      records.push_back(std::move(rec));
    }
  }
  return records;
}

std::string default_cache_path(const std::string& tag) {
  const char* dir = std::getenv("HPS_CACHE_DIR");
  std::string base = dir != nullptr ? dir : "/tmp";
  return base + "/hpcsweep_" + tag + ".cache";
}

StudyResult run_study(const StudyOptions& opts) {
  telemetry::init_from_env();
  robust::init_faults_from_env();
  auto& reg = telemetry::Registry::global();
  // Serving-path request attribution: every span below (including the study
  // span itself) carries the request's trace id. Nonzero ambient ids (a
  // caller that already scoped this thread) are preserved.
  const telemetry::TraceIdScope trace_scope(
      opts.trace_id != 0 ? opts.trace_id : telemetry::current_trace_id());
  telemetry::Span study_span(reg, "run_study", "study");

  StudyResult result;
  const std::uint64_t key = study_cache_key(opts);
  if (!opts.cache_path.empty() && !opts.force_recompute) {
    if (auto cached = load_outcomes(opts.cache_path, key)) {
      reg.counter("study.cache_hits").add(1);
      result.outcomes = std::move(*cached);
      result.from_cache = true;
      return result;
    }
  }
  reg.counter("study.cache_misses").add(1);

  const auto start = std::chrono::steady_clock::now();
  const auto specs = workloads::build_corpus_specs(opts.corpus);
  result.outcomes.resize(specs.size());

  // Crash-safe journal: restore every intact outcome a previous (killed) run
  // of the same study already computed, then append new ones as they finish.
  std::vector<char> have(specs.size(), 0);
  robust::JournalWriter journal;
  std::mutex journal_mu;
  if (!opts.journal_path.empty()) {
    char keyhex[24];
    std::snprintf(keyhex, sizeof keyhex, "%016llx", static_cast<unsigned long long>(key));
    const std::string jkey = keyhex;
    const robust::JournalContents prior = robust::read_journal(opts.journal_path, jkey);
    std::size_t restored = 0;
    if (prior.existed && prior.key_matched) {
      for (const std::string& rec : prior.records) {
        TraceOutcome o;
        try {
          o = deserialize_outcome(rec);
        } catch (const std::exception&) {
          break;  // framing was intact but the payload is not: stop trusting
        }
        const auto idx = static_cast<std::size_t>(o.spec_id);
        if (o.spec_id >= 0 && idx < specs.size() && specs[idx].id == o.spec_id &&
            have[idx] == 0) {
          result.outcomes[idx] = std::move(o);
          have[idx] = 1;
          ++restored;
        }
      }
    }
    if (restored > 0) {
      journal.open_resume(opts.journal_path, prior.valid_bytes);
      result.resumed_from_journal = static_cast<int>(restored);
      reg.counter("robust.resumed").add(restored);
    } else {
      journal.open_fresh(opts.journal_path, jkey);
    }
  }

  int nthreads = opts.threads;
  if (nthreads <= 0)
    nthreads = std::min(16u, std::max(1u, std::thread::hardware_concurrency()));
  nthreads = std::min<int>(nthreads, static_cast<int>(specs.size()));
  reg.gauge("study.threads").record(static_cast<std::uint64_t>(nthreads));

  // Cooperative SIGINT/SIGTERM: a signal trips a flag; workers stop claiming
  // traces, in-flight schemes unwind as FailKind::kSkipped, the ledger is
  // still flushed, and the journal stays in place so the next invocation
  // resumes. A second signal kills the process the traditional way.
  robust::StudySignalGuard signal_guard;

  telemetry::ProgressReporter progress(specs.size(), opts.progress);
  for (std::size_t i = 0; i < specs.size(); ++i)
    if (have[i] != 0) progress.completed("(restored from journal)");

  if (opts.isolate == IsolateMode::kProcess) {
    // Supervised task index -> spec index (restored specs are not re-run).
    std::vector<std::size_t> todo;
    for (std::size_t i = 0; i < specs.size(); ++i)
      if (have[i] == 0) todo.push_back(i);

    if (!todo.empty()) {
      robust::SupervisorOptions sup;
      sup.workers = nthreads;
      sup.max_retries = std::max(0, opts.retries);
      sup.rss_limit_mb = opts.rss_limit_mb;
      sup.watchdog_timeout_s = opts.watchdog_timeout_seconds;
      sup.trace_id = telemetry::current_trace_id();

      // The task payload is empty: a worker is a fork of this process and
      // inherits `specs`/`opts`, so env.task_index is all it needs. The
      // result payload is the cache codec — exactly the journal's record
      // format, so the hook can append it verbatim.
      const std::vector<std::string> tasks(todo.size());
      auto fn = [&](const std::string&, const robust::WorkerEnv& env) {
        return serialize_outcome(run_all_schemes(specs[todo[env.task_index]], opts.run));
      };
      auto on_result = [&](std::size_t k, const robust::TaskResult& r) {
        const workloads::TraceSpec& spec = specs[todo[k]];
        if (r.status == robust::TaskResult::Status::kOk && journal.is_open() &&
            !robust::interrupt_requested())
          journal.append(r.payload);
        char label[80];
        std::snprintf(label, sizeof label, "%-12s %5d ranks  [%s]", spec.app.c_str(),
                      spec.params.ranks, robust::task_status_name(r.status));
        progress.completed(label);
      };
      const auto task_results = robust::run_supervised(tasks, fn, sup, on_result);

      for (std::size_t k = 0; k < task_results.size(); ++k) {
        const std::size_t i = todo[k];
        const robust::TaskResult& r = task_results[k];
        switch (r.status) {
          case robust::TaskResult::Status::kOk:
            try {
              result.outcomes[i] = deserialize_outcome(r.payload);
            } catch (const std::exception& e) {
              result.outcomes[i] = synthesize_outcome(
                  specs[i], robust::FailKind::kCrash,
                  std::string("worker result undecodable: ") + e.what(), 0, true);
            }
            break;
          case robust::TaskResult::Status::kFailed:
            // The WorkerFn threw outside the scheme guards (e.g. the trace
            // generation phase hit the RLIMIT_AS ceiling).
            result.outcomes[i] = synthesize_outcome(
                specs[i],
                r.detail.find("bad_alloc") != std::string::npos ? robust::FailKind::kOom
                                                                : robust::FailKind::kError,
                r.detail, 0, true);
            break;
          case robust::TaskResult::Status::kCrash:
            result.outcomes[i] = synthesize_outcome(specs[i], robust::FailKind::kCrash,
                                                    r.detail, r.signal, true);
            break;
          case robust::TaskResult::Status::kTimeout:
            result.outcomes[i] = synthesize_outcome(specs[i], robust::FailKind::kTimeout,
                                                    r.detail, 0, true);
            break;
          case robust::TaskResult::Status::kSkipped:
            result.outcomes[i] = synthesize_outcome(
                specs[i], robust::FailKind::kSkipped,
                "study interrupted before this trace ran", 0, false);
            break;
        }
      }
    }
  } else {
    std::vector<char> computed(specs.size(), 0);
    std::atomic<std::size_t> next{0};
    auto worker = [&, trace_id = telemetry::current_trace_id()] {
      const telemetry::TraceIdScope worker_trace(trace_id);
      const telemetry::ScopedTimer busy(
          reg.histogram("study.worker_busy_seconds", telemetry::duration_bounds()));
      while (true) {
        if (robust::interrupt_requested()) return;  // stop claiming traces
        const std::size_t i = next.fetch_add(1);
        if (i >= specs.size()) return;
        if (have[i] != 0) continue;
        result.outcomes[i] = run_all_schemes(specs[i], opts.run);
        computed[i] = 1;
        // An interrupted trace carries kSkipped schemes: journaling it would
        // make the resumed run restore the hole instead of recomputing it.
        if (journal.is_open() && !robust::interrupt_requested()) {
          const std::string rec = serialize_outcome(result.outcomes[i]);
          const std::lock_guard<std::mutex> lk(journal_mu);
          journal.append(rec);
        }
        char label[80];
        std::snprintf(label, sizeof label, "%-12s %5d ranks  %8llu events",
                      specs[i].app.c_str(), specs[i].params.ranks,
                      static_cast<unsigned long long>(result.outcomes[i].events));
        progress.completed(label);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(nthreads));
    for (int i = 0; i < nthreads; ++i) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
    for (std::size_t i = 0; i < specs.size(); ++i)
      if (have[i] == 0 && computed[i] == 0)
        result.outcomes[i] =
            synthesize_outcome(specs[i], robust::FailKind::kSkipped,
                               "study interrupted before this trace ran", 0, false);
  }
  progress.finish();

  result.interrupted = robust::interrupt_requested();
  result.interrupt_signal = robust::interrupt_signal();

  const auto end = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(end - start).count();

  // An interrupted study's outcomes are full of holes: never cache them, and
  // keep the journal so the next invocation resumes instead of restarting.
  if (!opts.cache_path.empty() && !result.interrupted)
    save_outcomes(result.outcomes, opts.cache_path, key);
  if (journal.is_open()) {
    // On a completed study the cache (if configured) now holds everything
    // the journal protected; a leftover journal would only shadow it.
    journal.close();
    if (!result.interrupted) std::remove(opts.journal_path.c_str());
  }
  if (!opts.ledger_path.empty()) {
    obs::append_ledger(opts.ledger_path, ledger_records(result.outcomes, key));
    reg.counter("study.ledger_records")
        .add(result.outcomes.size() * static_cast<std::size_t>(Scheme::kNumSchemes));
  }
  return result;
}

}  // namespace hps::core
