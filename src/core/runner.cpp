#include "core/runner.hpp"

#include <cmath>
#include <string>

#include "common/error.hpp"
#include "machine/machine.hpp"
#include "robust/fault.hpp"
#include "robust/interrupt.hpp"
#include "telemetry/telemetry.hpp"

namespace hps::core {

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kMfact: return "mfact";
    case Scheme::kPacket: return "packet";
    case Scheme::kFlow: return "flow";
    case Scheme::kPacketFlow: return "packet-flow";
    default: return "?";
  }
}

std::optional<double> TraceOutcome::diff_total(Scheme sim) const {
  const auto& m = of(Scheme::kMfact);
  const auto& s = of(sim);
  if (!m.ok || !s.ok || m.total_time <= 0) return std::nullopt;
  return std::fabs(static_cast<double>(s.total_time) / static_cast<double>(m.total_time) -
                   1.0);
}

std::optional<double> TraceOutcome::diff_comm(Scheme sim) const {
  const auto& m = of(Scheme::kMfact);
  const auto& s = of(sim);
  if (!m.ok || !s.ok || m.comm_time <= 0) return std::nullopt;
  return std::fabs(static_cast<double>(s.comm_time) / static_cast<double>(m.comm_time) - 1.0);
}

namespace {

bool uses_subcomms(const trace::Trace& t) { return t.num_comms() > 1; }

bool uses_complex_grouping(const trace::Trace& t) {
  using trace::OpType;
  for (Rank r = 0; r < t.nranks(); ++r)
    for (const auto& e : t.rank(r).events)
      if (e.type == OpType::kAlltoallv || e.type == OpType::kGather ||
          e.type == OpType::kScatter)
        return true;
  return false;
}

simmpi::NetModelKind to_net_kind(Scheme s) {
  switch (s) {
    case Scheme::kPacket: return simmpi::NetModelKind::kPacket;
    case Scheme::kFlow: return simmpi::NetModelKind::kFlow;
    default: return simmpi::NetModelKind::kPacketFlow;
  }
}

/// Build the per-scheme fault context: inherit the ambient spec id (set by
/// the spec overload) and add this scheme plus its budget token.
robust::FaultContext scheme_fault_context(Scheme s, robust::CancelToken* token) {
  robust::FaultContext ctx = robust::current_fault_context();
  ctx.scheme = static_cast<int>(s);
  ctx.token = token;
  return ctx;
}

}  // namespace

TraceOutcome run_all_schemes(const trace::Trace& t, const RunOptions& opts) {
  auto& reg = telemetry::Registry::global();
  reg.counter("core.traces").add(1);
  telemetry::Span trace_span(reg, t.meta().app + "/" + t.meta().variant, "trace");
  trace_span.arg("machine", t.meta().machine);

  TraceOutcome out;
  out.app = t.meta().app;
  out.machine = t.meta().machine;
  out.ranks = t.nranks();
  out.events = t.total_events();
  out.measured_total = t.measured_total();
  out.measured_comm = t.measured_comm_mean();

  const auto stats = trace::compute_stats(t);
  out.features = trace::extract_features(t.meta(), stats);

  const machine::MachineConfig mc = machine::machine_by_name(t.meta().machine);

  // A scheme already in flight when SIGINT/SIGTERM lands unwinds through its
  // CancelToken (kInterrupted → kSkipped); this lambda keeps the *next*
  // schemes from even starting, so the worker reaches the journal/ledger
  // flush quickly.
  const auto mark_interrupted = [](SchemeOutcome& so) {
    so.attempted = false;
    so.ok = false;
    so.error = "study interrupted";
    so.fail_kind = robust::FailKind::kSkipped;
  };

  // --- MFACT: one multi-config replay gives baseline prediction,
  // sensitivity sweep and classification.
  if (robust::interrupt_requested()) {
    mark_interrupted(out.of(Scheme::kMfact));
  } else {
    SchemeOutcome& so = out.of(Scheme::kMfact);
    so.attempted = true;
    telemetry::Span span(reg, std::string("mfact ") + out.app, "scheme");
    span.arg("app", out.app);
    span.arg("ranks", std::to_string(out.ranks));
    robust::CancelToken token(opts.budget);
    robust::FaultScope fscope(scheme_fault_context(Scheme::kMfact, &token));
    const auto failure = robust::run_guarded([&] {
      mfact::ClassifyParams cp = opts.classify;
      cp.mfact.cancel = &token;
      double wall_total = 0;
      mfact::Classification cl;
      for (int rep = 0; rep < std::max(1, opts.timing_repeats); ++rep) {
        cl = mfact::classify(t, mc.net.link_bandwidth, mc.net.end_to_end_latency, cp);
        wall_total += cl.mfact_wall_seconds;
      }
      so.wall_seconds = wall_total / std::max(1, opts.timing_repeats);
      so.total_time = cl.sweep[mfact::kSweepBase].total_time;
      so.comm_time = cl.sweep[mfact::kSweepBase].comm_time_mean;
      const mfact::Counters& mc0 = cl.sweep[mfact::kSweepBase].counters;
      so.components.compute_ns = mc0.compute;
      so.components.p2p_ns = mc0.p2p;
      so.components.collective_ns = mc0.coll;
      so.components.wait_ns = mc0.wait;
      so.ok = true;
      out.app_class = cl.app_class;
      out.group = cl.group;
      out.bw_sensitivity = cl.bw_sensitivity;
      out.lat_sensitivity = cl.lat_sensitivity;
      out.features[trace::kF_CL] =
          cl.group == mfact::SensitivityGroup::kCommSensitive ? 1.0 : 0.0;
    });
    if (failure) {
      so.error = failure->message;
      so.fail_kind = failure->kind;
      reg.counter("scheme.mfact.errors").add(1);
    }
  }

  // --- The three simulators.
  const machine::MachineInstance mi(mc, t.nranks(), t.meta().ranks_per_node);
  for (const Scheme s : {Scheme::kPacket, Scheme::kFlow, Scheme::kPacketFlow}) {
    SchemeOutcome& so = out.of(s);
    if (robust::interrupt_requested()) {
      mark_interrupted(so);
      continue;
    }
    if (opts.mfact_only) {
      so.attempted = false;
      so.error = "skipped: MFACT-only degraded run (deadline/overload fallback)";
      so.fail_kind = robust::FailKind::kSkipped;
      continue;
    }
    if (opts.sst30_compat && s != Scheme::kPacketFlow) {
      const bool unsupported =
          uses_subcomms(t) || (s == Scheme::kFlow && uses_complex_grouping(t));
      if (unsupported) {
        so.attempted = false;
        so.error = "unsupported by SST/Macro 3.0-era model (compat emulation)";
        so.fail_kind = robust::FailKind::kSkipped;
        continue;
      }
    }
    so.attempted = true;
    telemetry::Span span(reg, std::string(scheme_name(s)) + " " + out.app, "scheme");
    span.arg("app", out.app);
    span.arg("ranks", std::to_string(out.ranks));
    robust::CancelToken token(opts.budget);
    robust::FaultScope fscope(scheme_fault_context(s, &token));
    const auto failure = robust::run_guarded([&] {
      double wall_total = 0;
      simmpi::ReplayResult rr;
      simmpi::ReplayConfig rc = opts.replay;
      rc.cancel = &token;
      try {
        for (int rep = 0; rep < std::max(1, opts.timing_repeats); ++rep) {
          rr = simmpi::replay_trace(t, mi, to_net_kind(s), rc);
          wall_total += rr.wall_seconds;
        }
      } catch (const simmpi::ReplayCancelled& e) {
        // Budget trip: keep the partial progress on the outcome, then let
        // the guard classify the cancellation.
        const simmpi::ReplayResult& p = e.partial();
        so.total_time = p.total_time;
        so.components = p.components;
        so.des_events = p.engine.events_processed;
        so.net = p.net;
        so.wall_seconds = p.wall_seconds;
        throw;
      }
      so.wall_seconds = wall_total / std::max(1, opts.timing_repeats);
      so.total_time = rr.total_time;
      so.comm_time = rr.comm_time_mean;
      so.components = rr.components;
      so.des_events = rr.engine.events_processed;
      so.net = rr.net;
      so.ok = true;
    });
    if (failure) {
      so.error = failure->message;
      so.fail_kind = failure->kind;
      reg.counter(std::string("scheme.") + scheme_name(s) + ".errors").add(1);
    }
  }
  return out;
}

TraceOutcome run_all_schemes(const workloads::TraceSpec& spec, const RunOptions& opts) {
  // Ambient fault context for the whole spec: trace generation and every
  // scheme run under it match `spec=<id>` fault rules.
  robust::FaultContext fctx = robust::current_fault_context();
  fctx.spec_id = spec.id;
  robust::FaultScope fscope(fctx);

  std::optional<trace::Trace> t;
  const auto failure = robust::run_guarded([&] {
    telemetry::Span span("generate " + spec.app + "#" + std::to_string(spec.id), "generate");
    t.emplace(workloads::generate_spec(spec));
  });
  if (failure) {
    // Generation failed: the trace never existed, so no scheme was attempted;
    // all four report the structured generation failure.
    TraceOutcome out;
    out.spec_id = spec.id;
    out.app = spec.app;
    for (int i = 0; i < static_cast<int>(Scheme::kNumSchemes); ++i) {
      out.scheme[i].error = "trace generation failed: " + failure->message;
      out.scheme[i].fail_kind = failure->kind;
    }
    return out;
  }
  TraceOutcome out = run_all_schemes(*t, opts);
  out.spec_id = spec.id;
  return out;
}

}  // namespace hps::core
