// Ledger analysis: the logic behind `hpcsweep_inspect`.
//
// Pure functions over loaded ledger records — grouping per trace, ranking by
// DIFF_total with per-component attribution, per-suite accuracy tables, and
// the two-ledger regression diff used as a CI gate. Kept in the library so
// tests exercise the exact code the CLI runs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/ledger.hpp"

namespace hps::obs {

/// True when a record carries a real failure: any fail_kind other than
/// "none" (success) or "skipped" (deliberate compat skip).
bool is_degraded(const LedgerRecord& rec);

/// Count records per fail_kind, sorted by name ("budget", "deadlock", ...).
/// Kinds with zero records are omitted.
std::vector<std::pair<std::string, std::size_t>> fail_kind_counts(
    const std::vector<LedgerRecord>& records);

/// Number of records for which is_degraded() holds.
std::size_t degraded_count(const std::vector<LedgerRecord>& records);

/// One simulated scheme's divergence from MFACT on one trace.
struct Divergence {
  LedgerRecord sim;    ///< the simulator record (scheme != "mfact")
  LedgerRecord mfact;  ///< the paired MFACT record for the same trace
  double diff_total = 0;
};

/// Pair each non-MFACT record with the MFACT record of the same
/// (study_key, spec_id) and sort by descending |diff_total|. Records without
/// a counterpart, or whose diff is unavailable (!ok), are skipped.
std::vector<Divergence> top_divergent(const std::vector<LedgerRecord>& records,
                                      std::size_t n);

/// Render the top-N divergence table: one row per (trace, scheme) with the
/// per-component virtual-time attribution of both the simulator and MFACT.
void render_top(std::ostream& os, const std::vector<Divergence>& top);

/// Render the per-suite accuracy table: for each (app, scheme), the count of
/// traces, mean/max DIFF_total, and the share of traces within `threshold`.
void render_accuracy(std::ostream& os, const std::vector<LedgerRecord>& records,
                     double threshold = 0.02);

struct DiffOptions {
  double tolerance = 0.02;       ///< relative predicted-time tolerance
  double wall_tolerance = 0;     ///< relative wall-time tolerance; 0 = ignore walls
  std::size_t max_report = 20;   ///< cap on printed regressions
  /// Degraded records (fail_kind beyond none/skipped) in the after-side
  /// ledger fail the diff by default; set to tolerate them (the per-kind
  /// counts are still reported).
  bool allow_degraded = false;
};

/// One record pair whose predicted (or wall) time moved beyond tolerance,
/// or a record present on only one side.
struct Regression {
  std::string key;  ///< "spec <id> <scheme>"
  std::string what;
  double before = 0;
  double after = 0;
};

struct DiffResult {
  std::vector<Regression> regressions;
  std::size_t compared = 0;       ///< record pairs present in both ledgers
  std::size_t only_before = 0;
  std::size_t only_after = 0;
  /// Per-fail_kind record counts of the after-side ledger.
  std::vector<std::pair<std::string, std::size_t>> after_fail_kinds;
  std::size_t degraded_after = 0;     ///< after-side records with real failures
  bool degraded_blocking = false;     ///< degraded_after > 0 && !allow_degraded
  bool ok() const {
    return regressions.empty() && only_before == 0 && only_after == 0 && !degraded_blocking;
  }
};

/// Compare two ledgers record-by-record, keyed on (spec_id, scheme). The
/// study_key is intentionally not part of the pairing key, so ledgers from
/// different configurations can still be diffed (the divergence then shows up
/// in the values). Predicted times compare exactly against `tolerance`;
/// wall times only when `wall_tolerance > 0`.
DiffResult diff_ledgers(const std::vector<LedgerRecord>& before,
                        const std::vector<LedgerRecord>& after,
                        const DiffOptions& opts = {});

void render_diff(std::ostream& os, const DiffResult& diff, const DiffOptions& opts);

}  // namespace hps::obs
