// Structured run ledger.
//
// `core::run_study` appends one JSON-lines record per trace×scheme to a
// ledger file alongside the binary result cache. A record carries everything
// the cross-run analysis in `hpcsweep_inspect` needs — predicted times, the
// per-component virtual-time breakdown, DIFF vs. MFACT, per-run simulator
// effort counters, and the study configuration hash — so accuracy and
// performance regressions can be diffed between two ledgers without
// re-running either study.
//
// The format is versioned: `schema` is written into every record and mixed
// into the study cache key, so both the binary cache and the ledger refuse
// data written by an incompatible build instead of misreading it. Records
// are deterministic modulo the wall-clock fields: two identical `run_study`
// invocations produce byte-identical lines once `wall_seconds` is zeroed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/components.hpp"

namespace hps::obs {

/// Bump when the ledger record layout or the meaning of any field changes.
/// Mixed into `core::study_cache_key`, so a bump also invalidates binary
/// caches written before the change.
/// v2: added `fail_kind` (structured failure class from the run guards).
/// v3: added `signal` (terminating signal of a crashed isolated worker) and
///     the process-isolation fail kinds "crash" / "timeout".
inline constexpr std::uint32_t kObsSchemaVersion = 3;

/// One trace×scheme observation. Field order here matches the JSON output.
struct LedgerRecord {
  std::uint32_t schema = kObsSchemaVersion;
  std::string study_key;  ///< hex study_cache_key of the producing run
  std::int32_t spec_id = -1;
  std::string app;
  std::string machine;
  std::int32_t ranks = 0;
  std::uint64_t events = 0;
  std::string scheme;  ///< "mfact" | "packet" | "flow" | "packet-flow"
  bool ok = false;
  std::string error;
  /// Structured failure class (robust::fail_kind_name): "none" on success,
  /// "skipped" for compat skips or interrupted studies, "crash"/"timeout"
  /// for a worker process the isolation supervisor lost, else error/oom/
  /// deadlock/budget/injected/unknown. Stored as a plain string so obs stays
  /// independent of robust.
  std::string fail_kind = "none";
  /// Terminating signal of the worker process when fail_kind is "crash"
  /// (e.g. 11 for SIGSEGV, 6 for SIGABRT); 0 otherwise.
  std::int32_t signal = 0;
  std::int64_t predicted_total_ns = 0;
  std::int64_t predicted_comm_ns = 0;
  std::int64_t measured_total_ns = 0;
  double diff_total = -1;  ///< DIFF_total vs. MFACT; -1 = not applicable
  double diff_comm = -1;
  ComponentTimes components;
  std::uint64_t des_events = 0;
  std::uint64_t net_messages = 0;
  std::uint64_t net_bytes = 0;
  std::uint64_t net_packets = 0;
  std::uint64_t net_rate_updates = 0;
  std::uint64_t net_ripple_iterations = 0;
  std::uint64_t net_stalls = 0;
  std::uint64_t net_max_active = 0;
  double wall_seconds = 0;  ///< the only nondeterministic field
};

/// Serialize one record as a single JSON object line (no trailing newline).
/// Field order is fixed, so equal records yield byte-identical lines.
std::string to_json_line(const LedgerRecord& rec);

/// Parse one ledger line. Throws hps::Error on malformed JSON, missing
/// required fields, or a schema version other than kObsSchemaVersion.
LedgerRecord parse_ledger_line(const std::string& line);

/// Append records to `path` (created if absent). Throws hps::Error on I/O
/// failure.
void append_ledger(const std::string& path, const std::vector<LedgerRecord>& records);

/// Load every record of a ledger file. Throws hps::Error on I/O failure or
/// any bad line (including schema mismatch). Blank lines are skipped.
std::vector<LedgerRecord> load_ledger(const std::string& path);

}  // namespace hps::obs
