// Virtual-time timeline recorder.
//
// An opt-in, bounded-memory sink for per-rank intervals in *simulated* time:
// compute bursts, blocking sends/receives, rendezvous handshakes, collective
// phases, request waits and network stalls. Unlike telemetry::Span (which
// timestamps host wall clock), intervals here are keyed by the DES engine's
// virtual clock, so the exported Chrome trace shows the *predicted*
// execution of the application — one row per rank, plus auxiliary rows for
// fabric links — and can be eyeballed next to MFACT's model decomposition.
//
// Recording is off unless a component holds a recorder pointer (the engine
// carries one for its clients; see des::Engine::recorder()). Every
// instrumentation point is a single pointer test when disabled. Memory is
// bounded: past `max_intervals` the recorder counts drops instead of
// growing, so pathological traces cannot exhaust the host.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"

namespace hps::obs {

enum class IntervalKind : std::uint8_t {
  kCompute,     // local computation between MPI calls
  kSend,        // blocking send in progress (eager injection span)
  kRecv,        // blocking receive from post to data arrival
  kRendezvous,  // blocking rendezvous send: RTS -> CTS -> payload drained
  kWait,        // Wait/WaitAll on nonblocking requests
  kCollective,  // enclosing collective phase (decomposed or analytic)
  kNetStall,    // network-level stall: link-queue wait or starved flow
};

inline constexpr int kNumIntervalKinds = 7;

const char* interval_kind_name(IntervalKind k);

/// Tracks >= kLinkTrackBase are fabric links (track - base == LinkId); lower
/// tracks are ranks. Keeps the two namespaces apart without the recorder
/// having to know the rank count.
inline constexpr std::int32_t kLinkTrackBase = 1 << 20;

struct Interval {
  std::int32_t track = 0;  ///< rank, or kLinkTrackBase + link
  IntervalKind kind = IntervalKind::kCompute;
  SimTime start = 0;  ///< virtual ns
  SimTime end = 0;    ///< virtual ns, >= start
  std::uint64_t detail = 0;  ///< kind-specific payload (bytes, peer, ...)
};

class TimelineRecorder {
 public:
  struct Options {
    /// Hard cap on stored intervals; further records are counted as drops.
    std::size_t max_intervals = std::size_t{1} << 20;
  };

  TimelineRecorder() : TimelineRecorder(Options{}) {}
  explicit TimelineRecorder(Options opts) : opts_(opts) {}

  /// Record one completed interval. Ignores end < start (a defensive no-op:
  /// callers derive both ends from the same virtual clock).
  void record(std::int32_t track, IntervalKind kind, SimTime start, SimTime end,
              std::uint64_t detail = 0) {
    if (end < start) return;
    if (intervals_.size() >= opts_.max_intervals) {
      ++dropped_;
      return;
    }
    intervals_.push_back({track, kind, start, end, detail});
  }

  /// Human label for a track row in the exported trace ("rank 3", "CG/base").
  void set_track_name(std::int32_t track, std::string name);

  const std::vector<Interval>& intervals() const { return intervals_; }
  std::uint64_t dropped() const { return dropped_; }
  bool empty() const { return intervals_.empty(); }

  /// Largest interval end seen (the virtual makespan of the recording).
  SimTime max_end() const;

  /// Chrome trace_event JSON of the recorded intervals, with `ts`/`dur` in
  /// microseconds of *virtual* time. Loadable in chrome://tracing and
  /// ui.perfetto.dev; rank rows are threads of one "virtual time" process.
  void write_chrome_trace(std::ostream& os) const;

  void clear() {
    intervals_.clear();
    dropped_ = 0;
  }

 private:
  Options opts_;
  std::vector<Interval> intervals_;
  std::unordered_map<std::int32_t, std::string> track_names_;
  std::uint64_t dropped_ = 0;
};

}  // namespace hps::obs
