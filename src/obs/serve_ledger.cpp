#include "obs/serve_ledger.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/error.hpp"
#include "obs/jsonl.hpp"

namespace hps::obs {

namespace {

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

constexpr const char* kPhasePrefix = "phase_";
constexpr const char* kPhaseSuffix = "_ns";

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string to_json_line(const ServeRecord& rec) {
  std::string out;
  out.reserve(384);
  out += "{\"schema\":";
  out += std::to_string(rec.schema);
  jsonl::field_str(out, "kind", "request");
  jsonl::field_str(out, "trace_id", hex16(rec.trace_id));
  jsonl::field_str(out, "status", rec.status);
  out += ",\"cache_hit\":";
  out += rec.cache_hit ? "true" : "false";
  out += ",\"coalesced\":";
  out += rec.coalesced ? "true" : "false";
  jsonl::field_int(out, "records", rec.records);
  jsonl::field_int(out, "degraded", rec.degraded);
  jsonl::field_int(out, "seed", rec.seed);
  jsonl::field_double(out, "duration_scale", rec.duration_scale);
  jsonl::field_int(out, "limit", rec.limit);
  jsonl::field_str(out, "app_classes", rec.app_classes);
  jsonl::field_int(out, "total_ns", rec.total_ns);
  out += ",\"mfact_fallback\":";
  out += rec.mfact_fallback ? "true" : "false";
  jsonl::field_int(out, "deadline_ms", rec.deadline_ms);
  for (const auto& [name, dur_ns] : rec.phases)
    jsonl::field_int(out, (kPhasePrefix + name + kPhaseSuffix).c_str(), dur_ns);
  out += "}";
  return out;
}

std::string to_json_line(const CostCell& cell) {
  std::string out;
  out.reserve(160);
  out += "{\"schema\":";
  out += std::to_string(kServeSchemaVersion);
  jsonl::field_str(out, "kind", "cost");
  jsonl::field_str(out, "app_class", cell.app_class);
  jsonl::field_str(out, "scheme", cell.scheme);
  jsonl::field_int(out, "count", cell.count);
  jsonl::field_double(out, "wall_seconds", cell.wall_seconds);
  out += "}";
  return out;
}

void CostModel::add(const std::string& app_class, const std::string& scheme,
                    std::uint64_t count, double wall_seconds) {
  const std::lock_guard<std::mutex> lk(mu_);
  for (CostCell& c : cells_) {
    if (c.app_class == app_class && c.scheme == scheme) {
      c.count += count;
      c.wall_seconds += wall_seconds;
      return;
    }
  }
  cells_.push_back({app_class, scheme, count, wall_seconds});
}

std::vector<CostCell> CostModel::cells() const {
  std::vector<CostCell> out;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    out = cells_;
  }
  std::sort(out.begin(), out.end(), [](const CostCell& a, const CostCell& b) {
    return a.app_class != b.app_class ? a.app_class < b.app_class : a.scheme < b.scheme;
  });
  return out;
}

ServeLedgerWriter::ServeLedgerWriter(const std::string& path) : path_(path) {
  out_.open(path, std::ios::app | std::ios::binary);
  if (!out_) throw Error("serve ledger: cannot open for append: " + path);
}

bool ServeLedgerWriter::reprobe_due() const {
  if (reprobe_records_ > 0 && lost_since_probe_ >= reprobe_records_) return true;
  if (reprobe_seconds_ > 0 &&
      static_cast<double>(steady_now_ns() - last_probe_ns_) * 1e-9 >= reprobe_seconds_)
    return true;
  return false;
}

void ServeLedgerWriter::write_line(const std::string& line) {
  if (failed_) {
    if (!reprobe_due()) {
      // Disabled after a failed append: count the lost line, write nothing
      // (a half-written record would corrupt every later parse).
      ++write_errors_;
      ++lost_since_probe_;
      return;
    }
    // Re-probe: reopen (a fresh descriptor, in case the old one is wedged)
    // and try the current line. Whatever was lost in between stays lost.
    lost_since_probe_ = 0;
    last_probe_ns_ = steady_now_ns();
    out_.close();
    out_.clear();
    out_.open(path_, std::ios::app | std::ios::binary);
    if (!out_) {
      ++write_errors_;
      ++lost_since_probe_;
      return;
    }
  }
  out_ << line << "\n";
  out_.flush();
  if (!out_) {
    if (!failed_)
      std::fprintf(stderr,
                   "hpcsweepd: serve ledger write failed (%s); "
                   "disabling appends until a re-probe succeeds\n",
                   path_.c_str());
    failed_ = true;
    ++write_errors_;
    ++lost_since_probe_;
    last_probe_ns_ = steady_now_ns();
  } else if (failed_) {
    failed_ = false;
    std::fprintf(stderr, "hpcsweepd: serve ledger re-probe succeeded (%s); appends re-enabled\n",
                 path_.c_str());
  }
}

void ServeLedgerWriter::append(const ServeRecord& rec) {
  const std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t errors_before = write_errors_;
  write_line(to_json_line(rec));
  if (write_errors_ == errors_before) ++records_;
}

void ServeLedgerWriter::append_costs(const std::vector<CostCell>& cells) {
  const std::lock_guard<std::mutex> lk(mu_);
  for (const CostCell& c : cells) write_line(to_json_line(c));
}

std::uint64_t ServeLedgerWriter::records_written() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return records_;
}

std::uint64_t ServeLedgerWriter::write_errors() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return write_errors_;
}

void ServeLedgerWriter::set_reprobe_policy(std::uint64_t records, double seconds) {
  const std::lock_guard<std::mutex> lk(mu_);
  reprobe_records_ = records;
  reprobe_seconds_ = seconds;
}

void ServeLedgerWriter::force_failure_for_testing() {
  const std::lock_guard<std::mutex> lk(mu_);
  failed_ = true;
  lost_since_probe_ = 0;
  last_probe_ns_ = steady_now_ns();
}

ServeLedger load_serve_ledger(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("serve ledger: cannot open: " + path);
  ServeLedger ledger;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      const jsonl::FlatObject obj = jsonl::parse_flat_object(line);
      const auto schema = static_cast<std::uint32_t>(jsonl::get_u64(obj, "schema"));
      if (schema != kServeSchemaVersion) {
        throw Error("serve ledger: schema version " + std::to_string(schema) +
                    " != expected " + std::to_string(kServeSchemaVersion));
      }
      const std::string kind = jsonl::get_str(obj, "kind");
      if (kind == "cost") {
        CostCell cell;
        cell.app_class = jsonl::get_str(obj, "app_class");
        cell.scheme = jsonl::get_str(obj, "scheme");
        cell.count = jsonl::get_u64(obj, "count");
        cell.wall_seconds = jsonl::get_f64(obj, "wall_seconds");
        ledger.costs.push_back(std::move(cell));
      } else if (kind == "request") {
        ServeRecord rec;
        rec.schema = schema;
        rec.trace_id = std::strtoull(jsonl::get_str(obj, "trace_id").c_str(), nullptr, 16);
        rec.status = jsonl::get_str(obj, "status");
        rec.cache_hit = jsonl::get_bool(obj, "cache_hit");
        rec.coalesced = jsonl::get_bool(obj, "coalesced");
        rec.records = static_cast<std::uint32_t>(jsonl::get_u64(obj, "records"));
        rec.degraded = static_cast<std::uint32_t>(jsonl::get_u64(obj, "degraded"));
        rec.seed = jsonl::get_u64(obj, "seed");
        rec.duration_scale = jsonl::get_f64(obj, "duration_scale");
        rec.limit = static_cast<std::int32_t>(jsonl::get_i64(obj, "limit"));
        rec.app_classes = jsonl::get_str(obj, "app_classes");
        rec.total_ns = jsonl::get_i64(obj, "total_ns");
        // Optional v3 overload fields: absent in ledgers from older daemons.
        if (obj.count("mfact_fallback") != 0)
          rec.mfact_fallback = jsonl::get_bool(obj, "mfact_fallback");
        if (obj.count("deadline_ms") != 0)
          rec.deadline_ms = jsonl::get_u64(obj, "deadline_ms");
        for (const auto& [key, value] : obj) {
          if (key.rfind(kPhasePrefix, 0) != 0) continue;
          const std::size_t suffix_at = key.size() - 3;
          if (key.size() <= 9 || key.compare(suffix_at, 3, kPhaseSuffix) != 0) continue;
          rec.phases.emplace_back(key.substr(6, suffix_at - 6),
                                  std::strtoll(value.text.c_str(), nullptr, 10));
        }
        // FlatObject iteration order is unspecified; sort for determinism.
        std::sort(rec.phases.begin(), rec.phases.end());
        ledger.requests.push_back(std::move(rec));
      } else {
        throw Error("serve ledger: unknown record kind \"" + kind + "\"");
      }
    } catch (const Error& e) {
      throw Error(path + ":" + std::to_string(lineno) + ": " + e.what());
    }
  }
  return ledger;
}

}  // namespace hps::obs
