#include "obs/timeline.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace hps::obs {

const char* interval_kind_name(IntervalKind k) {
  switch (k) {
    case IntervalKind::kCompute: return "compute";
    case IntervalKind::kSend: return "send";
    case IntervalKind::kRecv: return "recv";
    case IntervalKind::kRendezvous: return "rendezvous";
    case IntervalKind::kWait: return "wait";
    case IntervalKind::kCollective: return "collective";
    case IntervalKind::kNetStall: return "net-stall";
  }
  return "?";
}

void TimelineRecorder::set_track_name(std::int32_t track, std::string name) {
  track_names_[track] = std::move(name);
}

SimTime TimelineRecorder::max_end() const {
  SimTime m = 0;
  for (const Interval& iv : intervals_) m = std::max(m, iv.end);
  return m;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void TimelineRecorder::write_chrome_trace(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[96];

  // Thread-name metadata rows: explicit names first, defaults for any track
  // that appears in the data but was never named.
  std::vector<std::int32_t> tracks;
  for (const auto& [track, name] : track_names_) tracks.push_back(track);
  for (const Interval& iv : intervals_)
    if (!track_names_.contains(iv.track)) tracks.push_back(iv.track);
  std::sort(tracks.begin(), tracks.end());
  tracks.erase(std::unique(tracks.begin(), tracks.end()), tracks.end());
  for (const std::int32_t track : tracks) {
    std::string name;
    if (const auto it = track_names_.find(track); it != track_names_.end()) {
      name = it->second;
    } else if (track >= kLinkTrackBase) {
      name = "link " + std::to_string(track - kLinkTrackBase);
    } else {
      name = "rank " + std::to_string(track);
    }
    if (!first) os << ",";
    first = false;
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":" << track
       << ",\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
  }

  for (const Interval& iv : intervals_) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << interval_kind_name(iv.kind)
       << "\",\"cat\":\"virtual\",\"ph\":\"X\",\"pid\":1,\"tid\":" << iv.track;
    std::snprintf(buf, sizeof buf, ",\"ts\":%.3f,\"dur\":%.3f",
                  static_cast<double>(iv.start) / 1e3,
                  static_cast<double>(iv.end - iv.start) / 1e3);
    os << buf;
    if (iv.detail != 0) os << ",\"args\":{\"detail\":" << iv.detail << "}";
    os << "}";
  }
  os << "]}\n";
}

}  // namespace hps::obs
