// Virtual-time decomposition of one scheme's predicted execution.
//
// Every scheme — MFACT's logical-clock replay and the three DES simulators —
// attributes its predicted time to the same four buckets the paper's
// divergence analysis needs (plus a residual), summed over ranks in
// nanoseconds of *simulated* time. The buckets are what `hpcsweep_inspect`
// prints when explaining why DIFF_total exceeds the 2% threshold on a trace:
// two schemes that agree on the total can still disagree wildly on where the
// time goes.
#pragma once

namespace hps::obs {

struct ComponentTimes {
  double compute_ns = 0;     ///< measured (scaled) computation intervals
  double p2p_ns = 0;         ///< point-to-point transfer/blocking time
  double collective_ns = 0;  ///< collective phases (decomposed or analytic)
  double wait_ns = 0;        ///< waits on nonblocking requests / logical idle
  double other_ns = 0;       ///< residual (software overheads, scheduling gaps)

  double total_ns() const {
    return compute_ns + p2p_ns + collective_ns + wait_ns + other_ns;
  }
  /// Sum of the communication buckets (everything except compute).
  double comm_ns() const { return p2p_ns + collective_ns + wait_ns + other_ns; }
};

}  // namespace hps::obs
