#include "obs/inspect.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "common/flat_hash.hpp"
#include "common/interner.hpp"
#include "common/table.hpp"

namespace hps::obs {

namespace {

std::string fmt_ms(double ns) { return fmt_double(ns / 1e6, 2); }

/// Relative deviation |a/b - 1|; infinite when exactly one side is zero.
double rel_dev(double a, double b) {
  if (a == b) return 0;
  if (b == 0) return std::numeric_limits<double>::infinity();
  return std::abs(a / b - 1.0);
}

}  // namespace

bool is_degraded(const LedgerRecord& rec) {
  return rec.fail_kind != "none" && rec.fail_kind != "skipped";
}

std::vector<std::pair<std::string, std::size_t>> fail_kind_counts(
    const std::vector<LedgerRecord>& records) {
  std::vector<std::pair<std::string, std::size_t>> counts;
  for (const LedgerRecord& rec : records) {
    auto it = std::find_if(counts.begin(), counts.end(),
                           [&](const auto& p) { return p.first == rec.fail_kind; });
    if (it == counts.end())
      counts.emplace_back(rec.fail_kind, 1);
    else
      ++it->second;
  }
  std::sort(counts.begin(), counts.end());
  return counts;
}

std::size_t degraded_count(const std::vector<LedgerRecord>& records) {
  std::size_t n = 0;
  for (const LedgerRecord& rec : records)
    if (is_degraded(rec)) ++n;
  return n;
}

std::vector<Divergence> top_divergent(const std::vector<LedgerRecord>& records,
                                      std::size_t n) {
  // MFACT counterpart lookup per (study_key, spec_id): study keys intern to
  // dense ids so the index hashes one packed word per record instead of a
  // string pair.
  StringInterner keys;
  const auto packed = [&](const LedgerRecord& rec) {
    return (static_cast<std::uint64_t>(keys.id(rec.study_key)) << 32) |
           static_cast<std::uint32_t>(rec.spec_id);
  };
  FlatMap<std::uint64_t, const LedgerRecord*, Mix64Hash> mfact;
  for (const LedgerRecord& rec : records)
    if (rec.scheme == "mfact" && rec.ok) mfact[packed(rec)] = &rec;

  std::vector<Divergence> out;
  for (const LedgerRecord& rec : records) {
    if (rec.scheme == "mfact" || !rec.ok || rec.diff_total < 0) continue;
    const LedgerRecord* const* m = mfact.find(packed(rec));
    if (m == nullptr) continue;
    out.push_back({rec, **m, rec.diff_total});
  }
  std::stable_sort(out.begin(), out.end(), [](const Divergence& a, const Divergence& b) {
    return a.diff_total > b.diff_total;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

void render_top(std::ostream& os, const std::vector<Divergence>& top) {
  TextTable t;
  t.set_header({"spec", "app", "ranks", "scheme", "DIFF_total", "side", "total ms",
                "compute ms", "p2p ms", "coll ms", "wait ms", "other ms"});
  for (const Divergence& d : top) {
    const auto row = [&](const LedgerRecord& r, const char* side, bool lead) {
      const ComponentTimes& c = r.components;
      t.add_row({lead ? std::to_string(d.sim.spec_id) : "", lead ? d.sim.app : "",
                 lead ? std::to_string(d.sim.ranks) : "", r.scheme,
                 lead ? fmt_percent(d.diff_total) : "", side,
                 fmt_ms(static_cast<double>(r.predicted_total_ns)), fmt_ms(c.compute_ns),
                 fmt_ms(c.p2p_ns), fmt_ms(c.collective_ns), fmt_ms(c.wait_ns),
                 fmt_ms(c.other_ns)});
    };
    row(d.sim, "sim", true);
    row(d.mfact, "model", false);
    t.add_separator();
  }
  os << t.render();
  if (top.empty()) os << "(no paired sim/MFACT records)\n";
}

void render_accuracy(std::ostream& os, const std::vector<LedgerRecord>& records,
                     double threshold) {
  struct Acc {
    std::size_t n = 0, within = 0, failed = 0;
    double sum = 0, max = 0;
  };
  // Suites key by (app, scheme); both draw from a handful of distinct names,
  // so intern them and aggregate under one packed id per suite. The table is
  // rendered in (app, scheme) string order, as a string-keyed map would
  // iterate, by sorting the interned keys at the end.
  StringInterner names;
  FlatMap<std::uint64_t, Acc, Mix64Hash> by_suite;
  std::vector<std::uint64_t> suites;  // insertion-ordered distinct keys
  for (const LedgerRecord& rec : records) {
    if (rec.scheme == "mfact") continue;
    const std::uint64_t key = (static_cast<std::uint64_t>(names.id(rec.app)) << 32) |
                              names.id(rec.scheme);
    if (by_suite.find(key) == nullptr) suites.push_back(key);
    Acc& a = by_suite[key];
    if (!rec.ok || rec.diff_total < 0) {
      ++a.failed;
      continue;
    }
    ++a.n;
    a.sum += rec.diff_total;
    a.max = std::max(a.max, rec.diff_total);
    if (rec.diff_total <= threshold) ++a.within;
  }
  const auto unpack = [&](std::uint64_t key) {
    return std::pair<const std::string&, const std::string&>(
        names.str(static_cast<std::uint32_t>(key >> 32)),
        names.str(static_cast<std::uint32_t>(key)));
  };
  std::sort(suites.begin(), suites.end(),
            [&](std::uint64_t a, std::uint64_t b) { return unpack(a) < unpack(b); });

  TextTable t;
  t.set_header({"app", "scheme", "traces", "mean DIFF", "max DIFF",
                "<=" + fmt_percent(threshold), "failed"});
  for (const std::uint64_t key : suites) {
    const auto [app, scheme] = unpack(key);
    const Acc& a = *by_suite.find(key);
    t.add_row({app, scheme, std::to_string(a.n),
               a.n ? fmt_percent(a.sum / static_cast<double>(a.n)) : "-",
               a.n ? fmt_percent(a.max) : "-",
               a.n ? fmt_percent(static_cast<double>(a.within) / static_cast<double>(a.n))
                   : "-",
               std::to_string(a.failed)});
  }
  os << t.render();
  if (suites.empty()) os << "(no simulator records)\n";
}

DiffResult diff_ledgers(const std::vector<LedgerRecord>& before,
                        const std::vector<LedgerRecord>& after,
                        const DiffOptions& opts) {
  // Records key by (spec_id, scheme). Scheme names intern to small ids so
  // both indexes hash one packed word; regressions are reported in
  // (spec_id, scheme) order, as the previous string-keyed map iterated, by
  // sorting the collected B-side keys.
  StringInterner names;
  const auto packed = [&](const LedgerRecord& r) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(r.spec_id)) << 32) |
           names.id(r.scheme);
  };
  FlatMap<std::uint64_t, const LedgerRecord*, Mix64Hash> b_index, a_index;
  std::vector<std::uint64_t> b_keys;
  for (const LedgerRecord& r : before) {
    const std::uint64_t key = packed(r);
    if (b_index.find(key) == nullptr) b_keys.push_back(key);
    b_index[key] = &r;
  }
  for (const LedgerRecord& r : after) a_index[packed(r)] = &r;
  const auto unpack = [&](std::uint64_t key) {
    return std::pair<std::int32_t, const std::string&>(
        static_cast<std::int32_t>(key >> 32), names.str(static_cast<std::uint32_t>(key)));
  };
  std::sort(b_keys.begin(), b_keys.end(),
            [&](std::uint64_t a, std::uint64_t b) { return unpack(a) < unpack(b); });

  DiffResult out;
  for (const std::uint64_t key : b_keys) {
    const LedgerRecord* b = *b_index.find(key);
    const LedgerRecord* const* ap = a_index.find(key);
    if (ap == nullptr) {
      ++out.only_before;
      continue;
    }
    const LedgerRecord* a = *ap;
    ++out.compared;
    const auto [spec_id, scheme] = unpack(key);
    const std::string label = "spec " + std::to_string(spec_id) + " " + scheme;
    if (b->ok != a->ok) {
      out.regressions.push_back({label, "ok flipped", b->ok ? 1.0 : 0.0, a->ok ? 1.0 : 0.0});
      continue;
    }
    if (!b->ok) continue;  // both failed the same way: nothing to compare
    const double pdev = rel_dev(static_cast<double>(a->predicted_total_ns),
                                static_cast<double>(b->predicted_total_ns));
    if (pdev > opts.tolerance) {
      out.regressions.push_back({label, "predicted_total_ns",
                                 static_cast<double>(b->predicted_total_ns),
                                 static_cast<double>(a->predicted_total_ns)});
    }
    if (opts.wall_tolerance > 0) {
      const double wdev = rel_dev(a->wall_seconds, b->wall_seconds);
      if (wdev > opts.wall_tolerance)
        out.regressions.push_back({label, "wall_seconds", b->wall_seconds, a->wall_seconds});
    }
  }
  // Every compared pair consumed one distinct A-side key; the rest are new.
  out.only_after = a_index.size() - out.compared;
  out.after_fail_kinds = fail_kind_counts(after);
  out.degraded_after = degraded_count(after);
  out.degraded_blocking = out.degraded_after > 0 && !opts.allow_degraded;
  return out;
}

void render_diff(std::ostream& os, const DiffResult& diff, const DiffOptions& opts) {
  os << "compared " << diff.compared << " record pairs (tolerance "
     << fmt_percent(opts.tolerance) << ")\n";
  if (diff.only_before) os << "  " << diff.only_before << " record(s) only in ledger A\n";
  if (diff.only_after) os << "  " << diff.only_after << " record(s) only in ledger B\n";
  if (diff.degraded_after > 0) {
    os << "  " << diff.degraded_after << " degraded record(s) in ledger B:";
    for (const auto& [kind, n] : diff.after_fail_kinds)
      if (kind != "none" && kind != "skipped") os << " " << kind << "=" << n;
    os << (opts.allow_degraded ? " (allowed)" : "") << "\n";
  }
  if (diff.regressions.empty()) {
    if (diff.ok())
      os << "OK: no divergence beyond tolerance\n";
    else if (diff.degraded_blocking)
      os << "FAIL: degraded records present (rerun with --allow-degraded to tolerate)\n";
    else
      os << "FAIL: ledgers cover different record sets\n";
  } else {
    TextTable t;
    t.set_header({"record", "field", "before", "after", "delta"});
    std::size_t shown = 0;
    for (const Regression& r : diff.regressions) {
      if (shown++ >= opts.max_report) break;
      t.add_row({r.key, r.what, fmt_double(r.before, 6), fmt_double(r.after, 6),
                 fmt_percent(rel_dev(r.after, r.before))});
    }
    os << t.render();
    if (diff.regressions.size() > opts.max_report)
      os << "(+" << diff.regressions.size() - opts.max_report << " more)\n";
    os << "FAIL: " << diff.regressions.size() << " divergence(s) beyond tolerance\n";
  }
}

}  // namespace hps::obs
