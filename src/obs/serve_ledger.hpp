// Wall-clock serve ledger: the serving-path sibling of the virtual-time run
// ledger (ledger.hpp).
//
// hpcsweepd appends one JSON-lines record per finished request — trace id,
// disposition (cache hit / coalesced / rejected), request parameters, total
// wall latency, and the per-phase breakdown (decode, clamp, cache_lookup,
// queue_wait | coalesce_wait, execute, cache_insert, stream) whose durations
// tile the request end to end. On drain the daemon appends footer lines: one
// `kind=cost` record per (trace class × scheme) cell of the measured-cost
// model, the calibration input for routing requests by predicted cost
// (ROADMAP item 4).
//
// Like the run ledger the format is schema-versioned and flat; unknown keys
// are ignored on load, so new phases can be added without a breaking bump.
// All durations here are *wall-clock* nanoseconds — see
// docs/observability.md for the wall-clock vs virtual-time distinction.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hps::obs {

/// Bump when the serve-ledger record layout or field meanings change.
/// (Adding a new phase_*_ns key is not a breaking change.)
inline constexpr std::uint32_t kServeSchemaVersion = 1;

/// One finished request. Phases are (name, wall-ns) in serving order; the
/// daemon stamps consecutive steady-clock boundaries, so the durations sum
/// to total_ns up to clock-read jitter.
struct ServeRecord {
  std::uint32_t schema = kServeSchemaVersion;
  std::uint64_t trace_id = 0;  ///< written as 16-digit hex
  std::string status;          ///< serve::status_name of the terminal frame
  bool cache_hit = false;
  bool coalesced = false;       ///< waited on an identical in-flight study
  std::uint32_t records = 0;    ///< ledger lines streamed
  std::uint32_t degraded = 0;   ///< records with a real fail_kind
  std::uint64_t seed = 0;
  double duration_scale = 0;
  std::int32_t limit = 0;
  /// Distinct MFACT trace classes in the served study, comma-joined and
  /// sorted ("" when the request never reached a result).
  std::string app_classes;
  std::int64_t total_ns = 0;  ///< decode start → terminal frame sent
  /// The daemon answered with the MFACT fallback instead of the requested
  /// simulation (deadline/overload degradation); the response was tagged
  /// degraded=mfact_fallback and kept out of the result cache.
  bool mfact_fallback = false;
  std::uint64_t deadline_ms = 0;  ///< client end-to-end deadline (0 = none)
  std::vector<std::pair<std::string, std::int64_t>> phases;
};

/// One (trace class × scheme) cell of the measured-cost model: how much wall
/// time this daemon spent computing traces of that class under that scheme.
struct CostCell {
  std::string app_class;
  std::string scheme;
  std::uint64_t count = 0;   ///< trace×scheme computations aggregated
  double wall_seconds = 0;   ///< summed measured wall cost
  double mean_seconds() const {
    return count > 0 ? wall_seconds / static_cast<double>(count) : 0.0;
  }
};

std::string to_json_line(const ServeRecord& rec);
std::string to_json_line(const CostCell& cell);

/// Thread-safe accumulator for the measured-cost model, fed by the
/// dispatcher from every *computed* study (cache hits cost nothing).
class CostModel {
 public:
  void add(const std::string& app_class, const std::string& scheme, std::uint64_t count,
           double wall_seconds);
  /// Cells sorted by (app_class, scheme) for deterministic output.
  std::vector<CostCell> cells() const;

 private:
  mutable std::mutex mu_;
  std::vector<CostCell> cells_;  // few entries (5 classes × 4 schemes max)
};

/// Append-only serve ledger writer; one line per append, flushed so a
/// crashed daemon loses at most the in-progress line.
///
/// A failed append (ENOSPC, short write) must not take the serving path
/// down *or* silently truncate JSON lines mid-record: the first failure
/// latches the writer into a disabled state with one stderr warning, and
/// every line lost from then on is counted in write_errors() — which the
/// daemon surfaces as Stats::ledger_write_errors.
///
/// The latch is not permanent: transient failures (ENOSPC that an operator
/// fixes) heal. Every `reprobe_records` lost lines — or `reprobe_seconds`
/// after the last attempt — the writer re-probes by reopening the file and
/// trying the current line; success re-enables appends. Lines lost while
/// disabled stay lost and counted (write_errors() is monotonic), only the
/// future recovers.
class ServeLedgerWriter {
 public:
  /// Opens `path` for append. Throws hps::Error on failure.
  explicit ServeLedgerWriter(const std::string& path);
  void append(const ServeRecord& rec);
  /// Footer: one kind=cost line per cell.
  void append_costs(const std::vector<CostCell>& cells);
  std::uint64_t records_written() const;
  /// Lines lost to I/O failure (the first failed one and every skipped one
  /// after the writer disabled itself). Monotonic: re-probe successes never
  /// decrement it.
  std::uint64_t write_errors() const;

  /// Tune the re-probe cadence (defaults: 64 lost records / 2 s). 0 disables
  /// that trigger; both 0 restores the PR 9 permanent latch.
  void set_reprobe_policy(std::uint64_t records, double seconds);
  /// Force the failure latch, as the first real failed append would. Lets
  /// tests (and drills) exercise the re-probe path deterministically.
  void force_failure_for_testing();

 private:
  void write_line(const std::string& line);
  bool reprobe_due() const;

  mutable std::mutex mu_;
  std::ofstream out_;
  std::string path_;
  std::uint64_t records_ = 0;
  std::uint64_t write_errors_ = 0;
  bool failed_ = false;  ///< latched on a failed append, until a re-probe heals it
  std::uint64_t reprobe_records_ = 64;
  double reprobe_seconds_ = 2.0;
  std::uint64_t lost_since_probe_ = 0;
  std::int64_t last_probe_ns_ = 0;  ///< steady-clock stamp of the last attempt
};

/// Everything in a serve ledger file, requests and cost footer separated.
struct ServeLedger {
  std::vector<ServeRecord> requests;
  std::vector<CostCell> costs;
};

/// Load a serve ledger. Throws hps::Error on I/O failure, malformed lines,
/// or a schema version other than kServeSchemaVersion. Blank lines are
/// skipped; unknown keys are ignored.
ServeLedger load_serve_ledger(const std::string& path);

}  // namespace hps::obs
