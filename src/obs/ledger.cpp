#include "obs/ledger.hpp"

#include <fstream>

#include "common/error.hpp"
#include "obs/jsonl.hpp"

namespace hps::obs {

// Writer/scanner primitives shared with the serve ledger (jsonl.hpp).
using jsonl::field_double;
using jsonl::field_int;
using jsonl::field_str;
using jsonl::FlatObject;
using jsonl::get_bool;
using jsonl::get_f64;
using jsonl::get_i64;
using jsonl::get_str;
using jsonl::get_u64;
using jsonl::parse_flat_object;

std::string to_json_line(const LedgerRecord& rec) {
  std::string out;
  out.reserve(512);
  out += "{\"schema\":";
  out += std::to_string(rec.schema);
  field_str(out, "study_key", rec.study_key);
  field_int(out, "spec_id", rec.spec_id);
  field_str(out, "app", rec.app);
  field_str(out, "machine", rec.machine);
  field_int(out, "ranks", rec.ranks);
  field_int(out, "events", rec.events);
  field_str(out, "scheme", rec.scheme);
  out += ",\"ok\":";
  out += rec.ok ? "true" : "false";
  field_str(out, "error", rec.error);
  field_str(out, "fail_kind", rec.fail_kind);
  field_int(out, "signal", rec.signal);
  field_int(out, "predicted_total_ns", rec.predicted_total_ns);
  field_int(out, "predicted_comm_ns", rec.predicted_comm_ns);
  field_int(out, "measured_total_ns", rec.measured_total_ns);
  field_double(out, "diff_total", rec.diff_total);
  field_double(out, "diff_comm", rec.diff_comm);
  field_double(out, "comp_compute_ns", rec.components.compute_ns);
  field_double(out, "comp_p2p_ns", rec.components.p2p_ns);
  field_double(out, "comp_collective_ns", rec.components.collective_ns);
  field_double(out, "comp_wait_ns", rec.components.wait_ns);
  field_double(out, "comp_other_ns", rec.components.other_ns);
  field_int(out, "des_events", rec.des_events);
  field_int(out, "net_messages", rec.net_messages);
  field_int(out, "net_bytes", rec.net_bytes);
  field_int(out, "net_packets", rec.net_packets);
  field_int(out, "net_rate_updates", rec.net_rate_updates);
  field_int(out, "net_ripple_iterations", rec.net_ripple_iterations);
  field_int(out, "net_stalls", rec.net_stalls);
  field_int(out, "net_max_active", rec.net_max_active);
  field_double(out, "wall_seconds", rec.wall_seconds);
  out += "}";
  return out;
}

LedgerRecord parse_ledger_line(const std::string& line) {
  const FlatObject obj = parse_flat_object(line);
  const auto schema = static_cast<std::uint32_t>(get_u64(obj, "schema"));
  if (schema != kObsSchemaVersion) {
    throw Error("ledger: schema version " + std::to_string(schema) + " != expected " +
                std::to_string(kObsSchemaVersion));
  }
  LedgerRecord rec;
  rec.schema = schema;
  rec.study_key = get_str(obj, "study_key");
  rec.spec_id = static_cast<std::int32_t>(get_i64(obj, "spec_id"));
  rec.app = get_str(obj, "app");
  rec.machine = get_str(obj, "machine");
  rec.ranks = static_cast<std::int32_t>(get_i64(obj, "ranks"));
  rec.events = get_u64(obj, "events");
  rec.scheme = get_str(obj, "scheme");
  rec.ok = get_bool(obj, "ok");
  rec.error = get_str(obj, "error");
  rec.fail_kind = get_str(obj, "fail_kind");
  rec.signal = static_cast<std::int32_t>(get_i64(obj, "signal"));
  rec.predicted_total_ns = get_i64(obj, "predicted_total_ns");
  rec.predicted_comm_ns = get_i64(obj, "predicted_comm_ns");
  rec.measured_total_ns = get_i64(obj, "measured_total_ns");
  rec.diff_total = get_f64(obj, "diff_total");
  rec.diff_comm = get_f64(obj, "diff_comm");
  rec.components.compute_ns = get_f64(obj, "comp_compute_ns");
  rec.components.p2p_ns = get_f64(obj, "comp_p2p_ns");
  rec.components.collective_ns = get_f64(obj, "comp_collective_ns");
  rec.components.wait_ns = get_f64(obj, "comp_wait_ns");
  rec.components.other_ns = get_f64(obj, "comp_other_ns");
  rec.des_events = get_u64(obj, "des_events");
  rec.net_messages = get_u64(obj, "net_messages");
  rec.net_bytes = get_u64(obj, "net_bytes");
  rec.net_packets = get_u64(obj, "net_packets");
  rec.net_rate_updates = get_u64(obj, "net_rate_updates");
  rec.net_ripple_iterations = get_u64(obj, "net_ripple_iterations");
  rec.net_stalls = get_u64(obj, "net_stalls");
  rec.net_max_active = get_u64(obj, "net_max_active");
  rec.wall_seconds = get_f64(obj, "wall_seconds");
  return rec;
}

void append_ledger(const std::string& path, const std::vector<LedgerRecord>& records) {
  if (records.empty()) return;
  std::ofstream out(path, std::ios::app | std::ios::binary);
  if (!out) throw Error("ledger: cannot open for append: " + path);
  for (const LedgerRecord& rec : records) out << to_json_line(rec) << "\n";
  if (!out) throw Error("ledger: write failed: " + path);
}

std::vector<LedgerRecord> load_ledger(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("ledger: cannot open: " + path);
  std::vector<LedgerRecord> records;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      records.push_back(parse_ledger_line(line));
    } catch (const Error& e) {
      throw Error(path + ":" + std::to_string(lineno) + ": " + e.what());
    }
  }
  return records;
}

}  // namespace hps::obs
