#include "obs/ledger.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string_view>
#include <unordered_map>

#include "common/error.hpp"

namespace hps::obs {

namespace {

void put_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// %.17g round-trips doubles exactly and is locale-independent for the values
// we emit (the runner never produces inf/nan predictions).
void put_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

template <typename Int>
void field_int(std::string& out, const char* key, Int v) {
  out += ",\"";
  out += key;
  out += "\":";
  out += std::to_string(v);
}

void field_double(std::string& out, const char* key, double v) {
  out += ",\"";
  out += key;
  out += "\":";
  put_double(out, v);
}

void field_str(std::string& out, const char* key, const std::string& v) {
  out += ",\"";
  out += key;
  out += "\":";
  put_escaped(out, v);
}

// --- minimal flat-object JSON scanner -------------------------------------
//
// Ledger lines are flat objects whose values are numbers, strings, or bools;
// this scanner accepts exactly that (plus unknown keys, for forward
// compatibility) and throws hps::Error with position context otherwise.

struct Scanner {
  std::string_view in;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& why) const {
    throw Error("ledger: bad record at byte " + std::to_string(pos) + ": " + why);
  }
  void skip_ws() {
    while (pos < in.size() && std::isspace(static_cast<unsigned char>(in[pos]))) ++pos;
  }
  char peek() const { return pos < in.size() ? in[pos] : '\0'; }
  void expect(char c) {
    skip_ws();
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }
  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos < in.size() && in[pos] != '"') {
      char c = in[pos++];
      if (c == '\\') {
        if (pos >= in.size()) fail("truncated escape");
        const char e = in[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': {
            if (pos + 4 > in.size()) fail("truncated \\u escape");
            const unsigned code =
                static_cast<unsigned>(std::strtoul(std::string(in.substr(pos, 4)).c_str(), nullptr, 16));
            pos += 4;
            // Ledger strings only ever escape control characters; reject the
            // rest rather than mis-decode multi-byte sequences.
            if (code > 0x7f) fail("unsupported \\u escape");
            out += static_cast<char>(code);
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    if (pos >= in.size()) fail("unterminated string");
    ++pos;  // closing quote
    return out;
  }
  /// A scalar value as raw text: number, true/false, or a quoted string.
  /// Returns (text, was_string).
  std::pair<std::string, bool> parse_value() {
    skip_ws();
    if (peek() == '"') return {parse_string(), true};
    const std::size_t start = pos;
    while (pos < in.size() && in[pos] != ',' && in[pos] != '}' &&
           !std::isspace(static_cast<unsigned char>(in[pos])))
      ++pos;
    if (pos == start) fail("empty value");
    return {std::string(in.substr(start, pos - start)), false};
  }
};

struct Value {
  std::string text;
  bool is_string = false;
};

using FlatObject = std::unordered_map<std::string, Value>;

FlatObject parse_flat_object(const std::string& line) {
  Scanner sc{line};
  FlatObject obj;
  sc.expect('{');
  sc.skip_ws();
  if (sc.peek() == '}') {
    ++sc.pos;
    return obj;
  }
  while (true) {
    std::string key = sc.parse_string();
    sc.expect(':');
    auto [text, is_string] = sc.parse_value();
    obj[std::move(key)] = {std::move(text), is_string};
    sc.skip_ws();
    if (sc.peek() == ',') {
      ++sc.pos;
      continue;
    }
    sc.expect('}');
    break;
  }
  return obj;
}

const Value& require(const FlatObject& obj, const char* key) {
  const auto it = obj.find(key);
  if (it == obj.end()) throw Error(std::string("ledger: missing field \"") + key + "\"");
  return it->second;
}

std::int64_t get_i64(const FlatObject& obj, const char* key) {
  return std::strtoll(require(obj, key).text.c_str(), nullptr, 10);
}
std::uint64_t get_u64(const FlatObject& obj, const char* key) {
  return std::strtoull(require(obj, key).text.c_str(), nullptr, 10);
}
double get_f64(const FlatObject& obj, const char* key) {
  return std::strtod(require(obj, key).text.c_str(), nullptr);
}
std::string get_str(const FlatObject& obj, const char* key) {
  const Value& v = require(obj, key);
  if (!v.is_string) throw Error(std::string("ledger: field \"") + key + "\" is not a string");
  return v.text;
}
bool get_bool(const FlatObject& obj, const char* key) {
  const std::string& t = require(obj, key).text;
  if (t == "true") return true;
  if (t == "false") return false;
  throw Error(std::string("ledger: field \"") + key + "\" is not a bool");
}

}  // namespace

std::string to_json_line(const LedgerRecord& rec) {
  std::string out;
  out.reserve(512);
  out += "{\"schema\":";
  out += std::to_string(rec.schema);
  field_str(out, "study_key", rec.study_key);
  field_int(out, "spec_id", rec.spec_id);
  field_str(out, "app", rec.app);
  field_str(out, "machine", rec.machine);
  field_int(out, "ranks", rec.ranks);
  field_int(out, "events", rec.events);
  field_str(out, "scheme", rec.scheme);
  out += ",\"ok\":";
  out += rec.ok ? "true" : "false";
  field_str(out, "error", rec.error);
  field_str(out, "fail_kind", rec.fail_kind);
  field_int(out, "signal", rec.signal);
  field_int(out, "predicted_total_ns", rec.predicted_total_ns);
  field_int(out, "predicted_comm_ns", rec.predicted_comm_ns);
  field_int(out, "measured_total_ns", rec.measured_total_ns);
  field_double(out, "diff_total", rec.diff_total);
  field_double(out, "diff_comm", rec.diff_comm);
  field_double(out, "comp_compute_ns", rec.components.compute_ns);
  field_double(out, "comp_p2p_ns", rec.components.p2p_ns);
  field_double(out, "comp_collective_ns", rec.components.collective_ns);
  field_double(out, "comp_wait_ns", rec.components.wait_ns);
  field_double(out, "comp_other_ns", rec.components.other_ns);
  field_int(out, "des_events", rec.des_events);
  field_int(out, "net_messages", rec.net_messages);
  field_int(out, "net_bytes", rec.net_bytes);
  field_int(out, "net_packets", rec.net_packets);
  field_int(out, "net_rate_updates", rec.net_rate_updates);
  field_int(out, "net_ripple_iterations", rec.net_ripple_iterations);
  field_int(out, "net_stalls", rec.net_stalls);
  field_int(out, "net_max_active", rec.net_max_active);
  field_double(out, "wall_seconds", rec.wall_seconds);
  out += "}";
  return out;
}

LedgerRecord parse_ledger_line(const std::string& line) {
  const FlatObject obj = parse_flat_object(line);
  const auto schema = static_cast<std::uint32_t>(get_u64(obj, "schema"));
  if (schema != kObsSchemaVersion) {
    throw Error("ledger: schema version " + std::to_string(schema) + " != expected " +
                std::to_string(kObsSchemaVersion));
  }
  LedgerRecord rec;
  rec.schema = schema;
  rec.study_key = get_str(obj, "study_key");
  rec.spec_id = static_cast<std::int32_t>(get_i64(obj, "spec_id"));
  rec.app = get_str(obj, "app");
  rec.machine = get_str(obj, "machine");
  rec.ranks = static_cast<std::int32_t>(get_i64(obj, "ranks"));
  rec.events = get_u64(obj, "events");
  rec.scheme = get_str(obj, "scheme");
  rec.ok = get_bool(obj, "ok");
  rec.error = get_str(obj, "error");
  rec.fail_kind = get_str(obj, "fail_kind");
  rec.signal = static_cast<std::int32_t>(get_i64(obj, "signal"));
  rec.predicted_total_ns = get_i64(obj, "predicted_total_ns");
  rec.predicted_comm_ns = get_i64(obj, "predicted_comm_ns");
  rec.measured_total_ns = get_i64(obj, "measured_total_ns");
  rec.diff_total = get_f64(obj, "diff_total");
  rec.diff_comm = get_f64(obj, "diff_comm");
  rec.components.compute_ns = get_f64(obj, "comp_compute_ns");
  rec.components.p2p_ns = get_f64(obj, "comp_p2p_ns");
  rec.components.collective_ns = get_f64(obj, "comp_collective_ns");
  rec.components.wait_ns = get_f64(obj, "comp_wait_ns");
  rec.components.other_ns = get_f64(obj, "comp_other_ns");
  rec.des_events = get_u64(obj, "des_events");
  rec.net_messages = get_u64(obj, "net_messages");
  rec.net_bytes = get_u64(obj, "net_bytes");
  rec.net_packets = get_u64(obj, "net_packets");
  rec.net_rate_updates = get_u64(obj, "net_rate_updates");
  rec.net_ripple_iterations = get_u64(obj, "net_ripple_iterations");
  rec.net_stalls = get_u64(obj, "net_stalls");
  rec.net_max_active = get_u64(obj, "net_max_active");
  rec.wall_seconds = get_f64(obj, "wall_seconds");
  return rec;
}

void append_ledger(const std::string& path, const std::vector<LedgerRecord>& records) {
  if (records.empty()) return;
  std::ofstream out(path, std::ios::app | std::ios::binary);
  if (!out) throw Error("ledger: cannot open for append: " + path);
  for (const LedgerRecord& rec : records) out << to_json_line(rec) << "\n";
  if (!out) throw Error("ledger: write failed: " + path);
}

std::vector<LedgerRecord> load_ledger(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("ledger: cannot open: " + path);
  std::vector<LedgerRecord> records;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      records.push_back(parse_ledger_line(line));
    } catch (const Error& e) {
      throw Error(path + ":" + std::to_string(lineno) + ": " + e.what());
    }
  }
  return records;
}

}  // namespace hps::obs
