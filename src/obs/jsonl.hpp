// Shared JSON-lines codec helpers for the obs ledgers.
//
// Both ledgers — the virtual-time run ledger (ledger.hpp) and the wall-clock
// serve ledger (serve_ledger.hpp) — are flat JSON objects, one per line,
// whose values are numbers, strings, or bools. This header holds the writer
// primitives (deterministic field order, %.17g doubles) and the matching
// minimal scanner (accepts exactly flat objects plus unknown keys for
// forward compatibility; throws hps::Error with position context otherwise)
// so the two formats cannot drift apart in escaping or number handling.
#pragma once

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"

namespace hps::obs::jsonl {

inline void put_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// %.17g round-trips doubles exactly and is locale-independent for the values
// we emit (the runner never produces inf/nan predictions).
inline void put_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

template <typename Int>
void field_int(std::string& out, const char* key, Int v) {
  out += ",\"";
  out += key;
  out += "\":";
  out += std::to_string(v);
}

inline void field_double(std::string& out, const char* key, double v) {
  out += ",\"";
  out += key;
  out += "\":";
  put_double(out, v);
}

inline void field_str(std::string& out, const char* key, const std::string& v) {
  out += ",\"";
  out += key;
  out += "\":";
  put_escaped(out, v);
}

// --- minimal flat-object JSON scanner -------------------------------------

struct Scanner {
  std::string_view in;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& why) const {
    throw Error("ledger: bad record at byte " + std::to_string(pos) + ": " + why);
  }
  void skip_ws() {
    while (pos < in.size() && std::isspace(static_cast<unsigned char>(in[pos]))) ++pos;
  }
  char peek() const { return pos < in.size() ? in[pos] : '\0'; }
  void expect(char c) {
    skip_ws();
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }
  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos < in.size() && in[pos] != '"') {
      char c = in[pos++];
      if (c == '\\') {
        if (pos >= in.size()) fail("truncated escape");
        const char e = in[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': {
            if (pos + 4 > in.size()) fail("truncated \\u escape");
            const unsigned code =
                static_cast<unsigned>(std::strtoul(std::string(in.substr(pos, 4)).c_str(), nullptr, 16));
            pos += 4;
            // Ledger strings only ever escape control characters; reject the
            // rest rather than mis-decode multi-byte sequences.
            if (code > 0x7f) fail("unsupported \\u escape");
            out += static_cast<char>(code);
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    if (pos >= in.size()) fail("unterminated string");
    ++pos;  // closing quote
    return out;
  }
  /// A scalar value as raw text: number, true/false, or a quoted string.
  /// Returns (text, was_string).
  std::pair<std::string, bool> parse_value() {
    skip_ws();
    if (peek() == '"') return {parse_string(), true};
    const std::size_t start = pos;
    while (pos < in.size() && in[pos] != ',' && in[pos] != '}' &&
           !std::isspace(static_cast<unsigned char>(in[pos])))
      ++pos;
    if (pos == start) fail("empty value");
    return {std::string(in.substr(start, pos - start)), false};
  }
};

struct Value {
  std::string text;
  bool is_string = false;
};

using FlatObject = std::unordered_map<std::string, Value>;

inline FlatObject parse_flat_object(const std::string& line) {
  Scanner sc{line};
  FlatObject obj;
  sc.expect('{');
  sc.skip_ws();
  if (sc.peek() == '}') {
    ++sc.pos;
    return obj;
  }
  while (true) {
    std::string key = sc.parse_string();
    sc.expect(':');
    auto [text, is_string] = sc.parse_value();
    obj[std::move(key)] = {std::move(text), is_string};
    sc.skip_ws();
    if (sc.peek() == ',') {
      ++sc.pos;
      continue;
    }
    sc.expect('}');
    break;
  }
  return obj;
}

inline const Value& require(const FlatObject& obj, const char* key) {
  const auto it = obj.find(key);
  if (it == obj.end()) throw Error(std::string("ledger: missing field \"") + key + "\"");
  return it->second;
}

inline std::int64_t get_i64(const FlatObject& obj, const char* key) {
  return std::strtoll(require(obj, key).text.c_str(), nullptr, 10);
}
inline std::uint64_t get_u64(const FlatObject& obj, const char* key) {
  return std::strtoull(require(obj, key).text.c_str(), nullptr, 10);
}
inline double get_f64(const FlatObject& obj, const char* key) {
  return std::strtod(require(obj, key).text.c_str(), nullptr);
}
inline std::string get_str(const FlatObject& obj, const char* key) {
  const Value& v = require(obj, key);
  if (!v.is_string) throw Error(std::string("ledger: field \"") + key + "\" is not a string");
  return v.text;
}
inline bool get_bool(const FlatObject& obj, const char* key) {
  const std::string& t = require(obj, key).text;
  if (t == "true") return true;
  if (t == "false") return false;
  throw Error(std::string("ledger: field \"") + key + "\" is not a bool");
}

}  // namespace hps::obs::jsonl
