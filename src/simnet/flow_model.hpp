// Flow-level (fluid) network model.
//
// Each message is one fluid flow traversing its route; competing flows share
// link bandwidth max-min fairly. Whenever the set of active flows changes,
// every affected rate must be recomputed and every completion event
// re-estimated — the "ripple effect" of the paper's §II-A. Recomputations at
// the same simulated instant are batched (one water-filling pass per
// timestamp), the standard optimization for fluid simulators; the
// `rate_updates` stat counts the passes actually performed.
//
// Injection and ejection NICs are modeled as pseudo-links with the machine's
// injection bandwidth so a node cannot source or sink faster than its NIC.
#pragma once

#include <vector>

#include "simnet/network.hpp"

namespace hps::simnet {

class FlowModel final : public NetworkModel, private des::Handler {
 public:
  FlowModel(des::Engine& eng, const topo::Topology& topo, NetConfig cfg, MessageSink& sink);

  void inject(MsgId id, NodeId src, NodeId dst, std::uint64_t bytes) override;
  std::string name() const override { return "flow"; }

  /// Number of currently active fluid flows (for tests).
  std::size_t active_flows() const { return active_count_; }

 private:
  enum : std::uint64_t { kRecompute = 0, kFlowDone = 1 };

  struct Flow {
    MsgId id = 0;
    double remaining = 0;  // bytes
    double rate = 0;       // bytes per ns
    SimTime last_update = 0;
    SimTime tail_latency = 0;  // fixed path latency added at completion
    SimTime starved_since = -1;  // start of a zero-rate interval, -1 if fed
    std::uint32_t gen = 0;     // invalidates superseded completion events
    bool active = false;
    bool listed = false;  // has an entry in active_ (entries outlive the flow
                          // until the next recompute compaction; a recycled
                          // slot inherits its live entry)
    std::vector<LinkId> route;  // topo links + injection/ejection pseudo-links
  };

  void handle(des::Engine& eng, std::uint64_t a, std::uint64_t b) override;
  void mark_dirty();
  void recompute_rates();
  void advance_flow(Flow& f, SimTime now);
  void schedule_completion(std::uint32_t fidx);
  void complete_flow(std::uint32_t fidx);

  std::uint32_t alloc_flow();
  void free_flow(std::uint32_t idx);

  LinkId injection_link(NodeId n) const { return topo_.num_links() + n; }
  LinkId ejection_link(NodeId n) const { return topo_.num_links() + topo_.num_nodes() + n; }
  /// Per-flow pacing pseudo-link (only used when message_bandwidth > 0).
  LinkId pacing_link(std::uint32_t flow_idx) const {
    return topo_.num_links() + 2 * topo_.num_nodes() + static_cast<LinkId>(flow_idx);
  }
  Bandwidth link_capacity(LinkId l) const {
    if (l < topo_.num_links()) return cfg_.link_bandwidth;
    if (l < topo_.num_links() + 2 * topo_.num_nodes()) return cfg_.injection_bandwidth;
    return cfg_.message_bandwidth;
  }

  /// Delivers the sink notification after the fixed path latency.
  class Notify final : public des::Handler {
   public:
    explicit Notify(MessageSink& s) : sink_(s) {}
    void handle(des::Engine& eng, std::uint64_t id, std::uint64_t) override {
      sink_.message_delivered(id, eng.now());
    }

   private:
    MessageSink& sink_;
  };
  std::unique_ptr<Notify> notify_;

  std::vector<Flow> flows_;
  std::vector<std::uint32_t> flow_free_;
  std::vector<std::uint32_t> active_;  // indices of active flows
  std::size_t active_count_ = 0;
  bool dirty_scheduled_ = false;
  SimTime last_recompute_ = 0;
  std::vector<LinkId> route_scratch_;

  // Scratch buffers for water-filling, persisted to avoid reallocation.
  std::vector<double> link_residual_;
  std::vector<std::int32_t> link_unfrozen_;
  std::vector<std::vector<std::uint32_t>> link_flows_;
  std::vector<LinkId> used_links_;
  std::vector<double> rate_scratch_;  // previous rates, for reschedule skips
};

}  // namespace hps::simnet
