// Flow-level (fluid) network model.
//
// Each message is one fluid flow traversing its route; competing flows share
// link bandwidth max-min fairly. Whenever the set of active flows changes,
// every affected rate must be recomputed and every completion event
// re-estimated — the "ripple effect" of the paper's §II-A. Recomputations at
// the same simulated instant are batched (one water-filling pass per
// timestamp), the standard optimization for fluid simulators; the
// `rate_updates` stat counts the passes actually performed.
//
// The ripple is incremental: links whose flow set changed are marked dirty,
// and a recompute re-rates only the connected component of the flow–link
// sharing graph reachable from the dirty links. Max-min fairness decomposes
// over components (disjoint components share no capacity), so flows outside
// the affected component provably keep their rates and their pending
// completion events stand. `ripple_iterations` therefore counts only the
// flows actually re-rated by each pass.
//
// Injection and ejection NICs are modeled as pseudo-links with the machine's
// injection bandwidth so a node cannot source or sink faster than its NIC.
#pragma once

#include <vector>

#include "common/pool.hpp"
#include "simnet/network.hpp"

namespace hps::simnet {

class FlowModel final : public NetworkModel, private des::Handler {
 public:
  FlowModel(des::Engine& eng, const topo::Topology& topo, NetConfig cfg, MessageSink& sink);

  void inject(MsgId id, NodeId src, NodeId dst, std::uint64_t bytes) override;
  std::string name() const override { return "flow"; }

  /// Number of currently active fluid flows (for tests).
  std::size_t active_flows() const { return active_count_; }

 private:
  enum : std::uint64_t { kRecompute = 0, kFlowDone = 1 };

  struct Flow {
    MsgId id = 0;
    double remaining = 0;  // bytes
    double rate = 0;       // bytes per ns
    SimTime last_update = 0;
    SimTime tail_latency = 0;  // fixed path latency added at completion
    SimTime starved_since = -1;  // start of a zero-rate interval, -1 if fed
    std::uint32_t gen = 0;     // invalidates superseded completion events
    std::uint32_t epoch = 0;   // bumped on slot release; validates link-list
                               // entries left behind by a finished flow
    bool active = false;
    bool listed = false;  // has an entry in active_ (entries outlive the flow
                          // until the next recompute compaction; a recycled
                          // slot inherits its live entry)
    bool in_lists = false;  // has entries in link_flows_ (zero-byte flows
                            // complete inside inject and never enter them)
    std::vector<LinkId> route;  // topo links + injection/ejection pseudo-links
  };
  /// One flow's membership on one link; dead once the slot's epoch moves on.
  struct LinkEntry {
    std::uint32_t flow = 0;
    std::uint32_t epoch = 0;
  };
  struct HeapEntry {
    double share;
    LinkId link;
  };

  void handle(des::Engine& eng, std::uint64_t a, std::uint64_t b) override;
  void mark_dirty();
  void mark_link_dirty(LinkId l);
  void recompute_rates();
  void advance_flow(Flow& f, SimTime now);
  void schedule_completion(std::uint32_t fidx);
  void complete_flow(std::uint32_t fidx);
  void free_flow(std::uint32_t idx);

  LinkId injection_link(NodeId n) const { return topo_.num_links() + n; }
  LinkId ejection_link(NodeId n) const { return topo_.num_links() + topo_.num_nodes() + n; }
  /// Per-flow pacing pseudo-link (only used when message_bandwidth > 0).
  LinkId pacing_link(std::uint32_t flow_idx) const {
    return topo_.num_links() + 2 * topo_.num_nodes() + static_cast<LinkId>(flow_idx);
  }
  Bandwidth link_capacity(LinkId l) const {
    if (l < topo_.num_links()) return cfg_.link_bandwidth;
    if (l < topo_.num_links() + 2 * topo_.num_nodes()) return cfg_.injection_bandwidth;
    return cfg_.message_bandwidth;
  }

  /// Delivers the sink notification after the fixed path latency.
  class Notify final : public des::Handler {
   public:
    explicit Notify(MessageSink& s) : sink_(s) {}
    void handle(des::Engine& eng, std::uint64_t id, std::uint64_t) override {
      sink_.message_delivered(id, eng.now());
    }

   private:
    MessageSink& sink_;
  };
  std::unique_ptr<Notify> notify_;

  IndexPool<Flow> flows_;
  std::vector<std::uint32_t> active_;  // indices of active flows
  std::size_t active_count_ = 0;
  bool dirty_scheduled_ = false;
  SimTime last_recompute_ = 0;
  std::vector<LinkId> route_scratch_;

  // Persistent flow–link sharing graph: per-link entries are appended at
  // inject and invalidated by epoch at completion; dead entries are swept
  // out when the incremental ripple visits the (necessarily dirty) link.
  std::vector<std::vector<LinkEntry>> link_flows_;
  std::vector<std::uint8_t> link_dirty_;
  std::vector<LinkId> dirty_links_;

  // Scratch buffers for the affected-component walk and water-filling,
  // persisted to avoid reallocation.
  std::vector<double> link_residual_;
  std::vector<std::int32_t> link_unfrozen_;
  std::vector<std::uint8_t> link_visited_;
  std::vector<LinkId> visit_stack_;
  std::vector<LinkId> used_links_;           // visited links, for flag reset
  std::vector<std::uint32_t> affected_;      // flows re-rated this pass
  std::vector<double> rate_scratch_;  // previous rates, for reschedule skips
  std::vector<HeapEntry> heap_scratch_;
};

}  // namespace hps::simnet
