// Flow-level (fluid) network model.
//
// Each message is one fluid flow traversing its route; competing flows share
// link bandwidth max-min fairly. Whenever the set of active flows changes,
// every affected rate must be recomputed and every completion event
// re-estimated — the "ripple effect" of the paper's §II-A. Recomputations at
// the same simulated instant are batched (one solver pass per timestamp),
// the standard optimization for fluid simulators; the `rate_updates` stat
// counts the passes actually performed.
//
// The bandwidth sharing itself lives in the maxmin::System subsystem
// (simnet/maxmin/system.hpp): fabric links and injection/ejection NICs are
// its constraints, flows are its variables, and the per-flow Hockney pacing
// cap is a variable bound. Flow add/remove events inside one update window
// are admitted as a batch, and a solve re-rates only the connected
// component(s) of the flow–link sharing graph reachable from the modified
// constraints — max-min fairness decomposes over components (disjoint
// components share no capacity), so flows outside the affected component
// provably keep their rates and their pending completion events stand.
// `ripple_iterations` counts the constraints each solve touches (bounded by
// the affected component's size, not the total flow count). The solver's
// design and its measured cost model are documented in docs/performance.md
// ("The max-min bandwidth-sharing solver").
//
// Injection and ejection NICs are modeled as solver constraints with the
// machine's injection bandwidth so a node cannot source or sink faster than
// its NIC.
#pragma once

#include <vector>

#include "common/pool.hpp"
#include "simnet/maxmin/system.hpp"
#include "simnet/network.hpp"

namespace hps::simnet {

class FlowModel final : public NetworkModel, private des::Handler {
 public:
  FlowModel(des::Engine& eng, const topo::Topology& topo, NetConfig cfg, MessageSink& sink);

  void inject(MsgId id, NodeId src, NodeId dst, std::uint64_t bytes) override;
  std::string name() const override { return "flow"; }

  /// Number of currently active fluid flows (for tests).
  std::size_t active_flows() const { return active_count_; }

 private:
  enum : std::uint64_t { kRecompute = 0, kFlowDone = 1 };

  /// Cold per-flow state. The hot byte-accounting lanes (remaining bytes,
  /// last settlement time) live in SoA vectors indexed by the flow slot, and
  /// the rate lives in the solver; the slot doubles as the solver VarId
  /// (both pools recycle indices LIFO in lockstep).
  struct Flow {
    MsgId id = 0;
    SimTime tail_latency = 0;    // fixed path latency added at completion
    SimTime starved_since = -1;  // start of a zero-rate interval, -1 if fed
    std::uint32_t gen = 0;       // invalidates superseded completion events
    bool active = false;
    bool listed = false;  // has an entry in active_ (entries outlive the flow
                          // until the next recompute compaction; a recycled
                          // slot inherits its live entry)
    bool in_solver = false;  // admitted into the sharing graph (zero-byte
                             // flows complete inside inject and never are)
    std::vector<LinkId> route;  // fabric links, for byte accounting and
                                // stall attribution
  };

  void handle(des::Engine& eng, std::uint64_t a, std::uint64_t b) override;
  void mark_dirty();
  void recompute_rates();
  void schedule_completion(std::uint32_t fidx);
  void complete_flow(std::uint32_t fidx);
  void free_flow(std::uint32_t idx);

  /// Solver constraint ids: fabric links map 1:1, then one injection and one
  /// ejection NIC constraint per node.
  maxmin::ConsId injection_cons(NodeId n) const {
    return static_cast<maxmin::ConsId>(topo_.num_links() + n);
  }
  maxmin::ConsId ejection_cons(NodeId n) const {
    return static_cast<maxmin::ConsId>(topo_.num_links() + topo_.num_nodes() + n);
  }

  /// Delivers the sink notification after the fixed path latency.
  class Notify final : public des::Handler {
   public:
    explicit Notify(MessageSink& s) : sink_(s) {}
    void handle(des::Engine& eng, std::uint64_t id, std::uint64_t) override {
      sink_.message_delivered(id, eng.now());
    }

   private:
    MessageSink& sink_;
  };
  std::unique_ptr<Notify> notify_;

  maxmin::System sys_;
  double pace_bound_ = 0;  // Hockney cap in bytes/ns; 0 disables pacing

  IndexPool<Flow> flows_;
  // Hot SoA lanes, indexed by flow slot (sized with the pool).
  std::vector<double> remaining_;     // bytes
  std::vector<SimTime> last_update_;  // last byte-settlement instant

  std::vector<std::uint32_t> active_;  // indices of active flows
  std::size_t active_count_ = 0;
  bool dirty_scheduled_ = false;
  SimTime last_recompute_ = 0;
};

}  // namespace hps::simnet
