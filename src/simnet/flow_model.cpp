#include "simnet/flow_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/timeline.hpp"
#include "robust/fault.hpp"

namespace hps::simnet {

namespace {
constexpr std::uint64_t pack(std::uint32_t hi, std::uint32_t lo) {
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}
/// Convert bytes/second to bytes/nanosecond.
constexpr double Bps_to_Bpns(Bandwidth b) { return b * 1e-9; }
}  // namespace

FlowModel::FlowModel(des::Engine& eng, const topo::Topology& topo, NetConfig cfg,
                     MessageSink& sink)
    : NetworkModel(eng, topo, cfg, sink) {
  const std::size_t total_links =
      static_cast<std::size_t>(topo.num_links()) + 2 * static_cast<std::size_t>(topo.num_nodes());
  link_residual_.resize(total_links, 0.0);
  link_unfrozen_.resize(total_links, 0);
  link_flows_.resize(total_links);
  link_dirty_.resize(total_links, 0);
  link_visited_.resize(total_links, 0);
}

void FlowModel::free_flow(std::uint32_t idx) {
  Flow& f = flows_[idx];
  f.route.clear();
  f.active = false;
  ++f.epoch;  // kills this slot's link_flows_ entries
  flows_.release(idx);
}

void FlowModel::inject(MsgId id, NodeId src, NodeId dst, std::uint64_t bytes) {
  robust::fault_point(robust::FaultSite::kFlow);
  if (deliver_local_if_same_node(id, src, dst, bytes)) return;
  ++stats_.messages;
  stats_.bytes += bytes;

  topo_.route(src, dst, route_scratch_, id);
  account_route(route_scratch_, bytes);
  const SimTime latency = path_latency(static_cast<int>(route_scratch_.size()));

  const std::uint32_t fidx = flows_.alloc();
  Flow& f = flows_[fidx];
  f.id = id;
  f.remaining = static_cast<double>(bytes);
  f.rate = 0;
  f.last_update = eng_.now();
  f.tail_latency = latency;
  f.starved_since = -1;
  ++f.gen;
  f.active = true;
  f.route = route_scratch_;
  f.route.push_back(injection_link(src));
  f.route.push_back(ejection_link(dst));
  if (cfg_.message_bandwidth > 0) {
    // Per-flow pacing: a private pseudo-link of capacity message_bandwidth
    // caps this flow at the Hockney rate inside the max-min computation.
    const LinkId pace = pacing_link(fidx);
    const auto need = static_cast<std::size_t>(pace) + 1;
    if (link_residual_.size() < need) {
      link_residual_.resize(need, 0.0);
      link_unfrozen_.resize(need, 0);
      link_flows_.resize(need);
      link_dirty_.resize(need, 0);
      link_visited_.resize(need, 0);
    }
    f.route.push_back(pace);
  }

  if (!f.listed) {
    active_.push_back(fidx);
    f.listed = true;
  }
  ++active_count_;
  stats_.max_active = std::max<std::uint64_t>(stats_.max_active, active_count_);

  if (bytes == 0) {
    // Pure-latency message; no fluid to drain and no link-list membership.
    complete_flow(fidx);
    return;
  }
  for (const LinkId l : f.route) {
    link_flows_[static_cast<std::size_t>(l)].push_back({fidx, f.epoch});
    mark_link_dirty(l);
  }
  f.in_lists = true;
  mark_dirty();
}

void FlowModel::mark_link_dirty(LinkId l) {
  const auto li = static_cast<std::size_t>(l);
  if (link_dirty_[li]) return;
  link_dirty_[li] = 1;
  dirty_links_.push_back(l);
}

void FlowModel::mark_dirty() {
  if (dirty_scheduled_) return;
  dirty_scheduled_ = true;
  // Batched ripple: all changes inside the update window share one
  // recompute. Never schedule before the previous recompute's interval has
  // elapsed, so staggered completions cannot force per-event passes.
  const SimTime earliest = last_recompute_ + cfg_.flow_update_interval;
  eng_.schedule_at(std::max(eng_.now(), earliest), this, kRecompute, 0);
}

void FlowModel::handle(des::Engine&, std::uint64_t a, std::uint64_t b) {
  switch (a) {
    case kRecompute:
      dirty_scheduled_ = false;
      recompute_rates();
      break;
    case kFlowDone: {
      const auto fidx = static_cast<std::uint32_t>(b >> 32);
      const auto gen = static_cast<std::uint32_t>(b);
      Flow& f = flows_[fidx];
      if (!f.active || f.gen != gen) return;  // superseded by a rate change
      advance_flow(f, eng_.now());
      // Guard against floating-point residue: anything below one byte is done.
      if (f.remaining <= 1.0) {
        complete_flow(fidx);
        mark_dirty();
      } else {
        schedule_completion(fidx);
      }
      break;
    }
    default:
      HPS_CHECK_MSG(false, "unknown flow model event kind");
  }
}

void FlowModel::advance_flow(Flow& f, SimTime now) {
  if (now > f.last_update && f.rate > 0) {
    f.remaining -= f.rate * static_cast<double>(now - f.last_update);
    if (f.remaining < 0) f.remaining = 0;
  }
  f.last_update = now;
}

void FlowModel::schedule_completion(std::uint32_t fidx) {
  Flow& f = flows_[fidx];
  ++f.gen;
  if (f.rate <= 0) return;  // starved; a later recompute will reschedule
  const double ns = f.remaining / f.rate;
  const SimTime when = eng_.now() + std::max<SimTime>(1, static_cast<SimTime>(std::ceil(ns)));
  eng_.schedule_at(when, this, kFlowDone, pack(fidx, f.gen));
}

void FlowModel::complete_flow(std::uint32_t fidx) {
  Flow& f = flows_[fidx];
  HPS_CHECK(f.active);
  f.active = false;
  --active_count_;
  const MsgId id = f.id;
  const SimTime latency = f.tail_latency;
  // Completion notification arrives after the fixed path latency.
  if (!notify_) notify_ = std::make_unique<Notify>(sink_);
  eng_.schedule_in(latency, notify_.get(), id, 0);
  // The departing flow's links must be re-rated; its link-list entries die
  // with the epoch bump in free_flow and are swept on the next visit.
  if (f.in_lists) {
    for (const LinkId l : f.route) mark_link_dirty(l);
    f.in_lists = false;
  }
  // Compact the active list lazily during recompute; here just drop the slot.
  free_flow(fidx);
}

void FlowModel::recompute_rates() {
  ++stats_.rate_updates;
  const SimTime now = eng_.now();
  last_recompute_ = now;

  // Compact the active index list and settle all byte counts to `now` (every
  // pass, so `remaining` follows the same piecewise drain regardless of
  // which flows the incremental ripple re-rates).
  active_.erase(std::remove_if(active_.begin(), active_.end(),
                               [&](std::uint32_t i) {
                                 if (flows_[i].active) return false;
                                 flows_[i].listed = false;
                                 return true;
                               }),
                active_.end());
  for (const std::uint32_t i : active_) advance_flow(flows_[i], now);

  // Affected-component walk: starting from the dirty links, flood the
  // flow–link sharing graph. Every flow on a visited link is re-rated and
  // pulls the rest of its route into the visit set, so the walk closes over
  // exactly the connected component(s) whose membership changed; dead
  // entries (epoch mismatch) are swept out of each visited list in passing.
  // Flows outside the component share no link with a re-rated flow, and
  // max-min allocation decomposes over components, so their rates stand.
  std::vector<double>& old_rates = rate_scratch_;
  affected_.clear();
  old_rates.clear();
  used_links_.clear();
  visit_stack_.swap(dirty_links_);
  dirty_links_.clear();
  for (const LinkId l : visit_stack_) link_dirty_[static_cast<std::size_t>(l)] = 0;
  while (!visit_stack_.empty()) {
    const LinkId l = visit_stack_.back();
    visit_stack_.pop_back();
    const auto li = static_cast<std::size_t>(l);
    if (link_visited_[li]) continue;
    link_visited_[li] = 1;
    used_links_.push_back(l);
    auto& lf = link_flows_[li];
    lf.erase(std::remove_if(lf.begin(), lf.end(),
                            [&](const LinkEntry& e) {
                              return flows_[e.flow].epoch != e.epoch || !flows_[e.flow].active;
                            }),
             lf.end());
    for (const LinkEntry& e : lf) {
      Flow& f = flows_[e.flow];
      if (f.rate < 0) continue;  // already collected this pass
      affected_.push_back(e.flow);
      old_rates.push_back(f.rate);
      f.rate = -1.0;  // -1 marks unfrozen
      for (const LinkId rl : f.route)
        if (!link_visited_[static_cast<std::size_t>(rl)]) visit_stack_.push_back(rl);
    }
  }

  // Water-filling max-min fair allocation over the affected component,
  // driven by a lazy min-heap of link fair shares: pop the candidate
  // bottleneck, re-validate its share (links touched since the push are
  // stale), and freeze its flows. O((L + F*h) log L) in the component size
  // instead of the naive O(L * bottlenecks) scan over every active flow.
  const double old_rate_epsilon = 1e-15;
  std::vector<HeapEntry>& heap = heap_scratch_;
  heap.clear();
  const auto heap_after = [](const HeapEntry& x, const HeapEntry& y) {
    return x.share > y.share;
  };
  const auto heap_push = [&](HeapEntry e) {
    heap.push_back(e);
    std::push_heap(heap.begin(), heap.end(), heap_after);
  };
  const auto heap_pop = [&] {
    std::pop_heap(heap.begin(), heap.end(), heap_after);
    const HeapEntry e = heap.back();
    heap.pop_back();
    return e;
  };
  auto share_of = [&](LinkId l) {
    const auto li = static_cast<std::size_t>(l);
    return link_residual_[li] / static_cast<double>(link_unfrozen_[li]);
  };
  for (const LinkId l : used_links_) {
    const auto li = static_cast<std::size_t>(l);
    if (link_flows_[li].empty()) continue;  // dirty but deserted (all swept)
    link_residual_[li] = Bps_to_Bpns(link_capacity(l));
    link_unfrozen_[li] = static_cast<std::int32_t>(link_flows_[li].size());
    heap_push({share_of(l), l});
  }

  std::size_t unfrozen = affected_.size();
  while (unfrozen > 0) {
    HPS_CHECK_MSG(!heap.empty(), "water-filling ran out of bottleneck candidates");
    const HeapEntry top = heap_pop();
    const auto li = static_cast<std::size_t>(top.link);
    if (link_unfrozen_[li] <= 0) continue;  // fully frozen since pushed
    const double share = share_of(top.link);
    if (share > top.share + old_rate_epsilon) {
      heap_push({share, top.link});  // stale entry: re-insert with fresh share
      continue;
    }
    const double best_share = std::max(share, 0.0);
    // Freeze every unfrozen flow crossing the bottleneck at the fair share.
    for (const LinkEntry& e : link_flows_[li]) {
      Flow& f = flows_[e.flow];
      if (f.rate >= 0) continue;
      f.rate = best_share;
      --unfrozen;
      ++stats_.ripple_iterations;
      for (const LinkId l : f.route) {
        const auto lj = static_cast<std::size_t>(l);
        link_residual_[lj] -= best_share;
        if (link_residual_[lj] < 0) link_residual_[lj] = 0;
        --link_unfrozen_[lj];
        // Touched links get a fresh heap entry; stale ones are skipped above.
        if (link_unfrozen_[lj] > 0 && l != top.link) heap_push({share_of(l), l});
      }
    }
  }

  // Starvation accounting: a flow the water-filling left at rate zero is
  // stalled by contention. Count the stall once, when it ends, and record
  // the interval on the flow's first fabric link. Only re-rated flows can
  // transition.
  for (const std::uint32_t i : affected_) {
    Flow& f = flows_[i];
    if (f.rate <= 0) {
      if (f.starved_since < 0) f.starved_since = now;
    } else if (f.starved_since >= 0) {
      ++stats_.queue_events;
      if (obs::TimelineRecorder* rec = eng_.recorder()) {
        const LinkId first = f.route.empty() ? 0 : f.route.front();
        rec->record(obs::kLinkTrackBase + static_cast<std::int32_t>(first),
                    obs::IntervalKind::kNetStall, f.starved_since, now,
                    static_cast<std::uint64_t>(f.remaining));
      }
      f.starved_since = -1;
    }
  }

  // Reset visit flags (the entry lists persist) and reschedule completions
  // only for flows whose rate changed: an unchanged rate means the
  // previously scheduled completion instant is still correct.
  for (const LinkId l : used_links_) link_visited_[static_cast<std::size_t>(l)] = 0;
  for (std::size_t idx = 0; idx < affected_.size(); ++idx) {
    const std::uint32_t i = affected_[idx];
    const double old_rate = old_rates[idx];
    if (old_rate > 0 &&
        std::fabs(flows_[i].rate - old_rate) <= old_rate * 1e-12) {
      continue;  // same rate: the pending completion event stands
    }
    schedule_completion(i);
  }
}

}  // namespace hps::simnet
