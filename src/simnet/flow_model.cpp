#include "simnet/flow_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/timeline.hpp"
#include "robust/fault.hpp"

namespace hps::simnet {

namespace {
constexpr std::uint64_t pack(std::uint32_t hi, std::uint32_t lo) {
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}
/// Convert bytes/second to bytes/nanosecond.
constexpr double Bps_to_Bpns(Bandwidth b) { return b * 1e-9; }
}  // namespace

FlowModel::FlowModel(des::Engine& eng, const topo::Topology& topo, NetConfig cfg,
                     MessageSink& sink)
    : NetworkModel(eng, topo, cfg, sink) {
  const double fabric = Bps_to_Bpns(cfg_.link_bandwidth);
  const double nic = Bps_to_Bpns(cfg_.injection_bandwidth);
  for (LinkId l = 0; l < topo.num_links(); ++l) sys_.add_constraint(fabric);
  for (NodeId n = 0; n < topo.num_nodes(); ++n) sys_.add_constraint(nic);  // injection
  for (NodeId n = 0; n < topo.num_nodes(); ++n) sys_.add_constraint(nic);  // ejection
  if (cfg_.message_bandwidth > 0) pace_bound_ = Bps_to_Bpns(cfg_.message_bandwidth);
}

void FlowModel::free_flow(std::uint32_t idx) {
  Flow& f = flows_[idx];
  f.route.clear();
  f.active = false;
  // Release the solver variable and the flow slot back to back: both pools
  // recycle LIFO, which keeps slot == VarId in lockstep.
  sys_.retire(idx);
  flows_.release(idx);
}

void FlowModel::inject(MsgId id, NodeId src, NodeId dst, std::uint64_t bytes) {
  robust::fault_point(robust::FaultSite::kFlow);
  if (deliver_local_if_same_node(id, src, dst, bytes)) return;
  ++stats_.messages;
  stats_.bytes += bytes;

  const std::uint32_t fidx = flows_.alloc();
  const maxmin::VarId v = sys_.add_variable(pace_bound_);
  HPS_CHECK(v == fidx);
  if (remaining_.size() <= fidx) {
    remaining_.resize(fidx + 1, 0.0);
    last_update_.resize(fidx + 1, 0);
  }
  Flow& f = flows_[fidx];
  f.id = id;
  topo_.route(src, dst, f.route, id);  // routed in place: no scratch copy
  account_route(f.route, bytes);
  f.tail_latency = path_latency(static_cast<int>(f.route.size()));
  f.starved_since = -1;
  ++f.gen;
  f.active = true;
  remaining_[fidx] = static_cast<double>(bytes);
  last_update_[fidx] = eng_.now();

  if (!f.listed) {
    active_.push_back(fidx);
    f.listed = true;
  }
  ++active_count_;
  stats_.max_active = std::max<std::uint64_t>(stats_.max_active, active_count_);

  if (bytes == 0) {
    // Pure-latency message; no fluid to drain and no sharing-graph membership.
    complete_flow(fidx);
    return;
  }
  for (const LinkId l : f.route) sys_.attach(v, static_cast<maxmin::ConsId>(l));
  sys_.attach(v, injection_cons(src));
  sys_.attach(v, ejection_cons(dst));
  sys_.admit(v);
  f.in_solver = true;
  mark_dirty();
}

void FlowModel::mark_dirty() {
  if (dirty_scheduled_) return;
  dirty_scheduled_ = true;
  // Batched admission: all flow add/remove events inside the update window
  // share one solve. Never schedule before the previous solve's interval has
  // elapsed, so staggered completions cannot force per-event passes.
  const SimTime earliest = last_recompute_ + cfg_.flow_update_interval;
  eng_.schedule_at(std::max(eng_.now(), earliest), this, kRecompute, 0);
}

void FlowModel::handle(des::Engine&, std::uint64_t a, std::uint64_t b) {
  switch (a) {
    case kRecompute:
      dirty_scheduled_ = false;
      recompute_rates();
      break;
    case kFlowDone: {
      const auto fidx = static_cast<std::uint32_t>(b >> 32);
      const auto gen = static_cast<std::uint32_t>(b);
      Flow& f = flows_[fidx];
      if (!f.active || f.gen != gen) return;  // superseded by a rate change
      const SimTime now = eng_.now();
      const double rate = sys_.rate(fidx);
      if (now > last_update_[fidx] && rate > 0) {
        remaining_[fidx] -= rate * static_cast<double>(now - last_update_[fidx]);
        if (remaining_[fidx] < 0) remaining_[fidx] = 0;
      }
      last_update_[fidx] = now;
      // Guard against floating-point residue: anything below one byte is done.
      if (remaining_[fidx] <= 1.0) {
        complete_flow(fidx);
        mark_dirty();
      } else {
        schedule_completion(fidx);
      }
      break;
    }
    default:
      HPS_CHECK_MSG(false, "unknown flow model event kind");
  }
}

void FlowModel::schedule_completion(std::uint32_t fidx) {
  Flow& f = flows_[fidx];
  ++f.gen;
  const double rate = sys_.rate(fidx);
  if (rate <= 0) return;  // starved; a later solve will reschedule
  const double ns = remaining_[fidx] / rate;
  const SimTime when = eng_.now() + std::max<SimTime>(1, static_cast<SimTime>(std::ceil(ns)));
  eng_.schedule_at(when, this, kFlowDone, pack(fidx, f.gen));
}

void FlowModel::complete_flow(std::uint32_t fidx) {
  Flow& f = flows_[fidx];
  HPS_CHECK(f.active);
  f.active = false;
  --active_count_;
  const MsgId id = f.id;
  const SimTime latency = f.tail_latency;
  // Completion notification arrives after the fixed path latency.
  if (!notify_) notify_ = std::make_unique<Notify>(sink_);
  eng_.schedule_in(latency, notify_.get(), id, 0);
  // The departing flow's constraints must be re-rated; retiring the variable
  // (inside free_flow) unlinks its memberships and marks them dirty.
  f.in_solver = false;
  // Compact the active list lazily during recompute; here just drop the slot.
  free_flow(fidx);
}

void FlowModel::recompute_rates() {
  ++stats_.rate_updates;
  const SimTime now = eng_.now();
  last_recompute_ = now;

  // Compact the active index list and settle all byte counts to `now` (every
  // pass, so `remaining` follows the same piecewise drain regardless of
  // which flows the incremental solve re-rates).
  active_.erase(std::remove_if(active_.begin(), active_.end(),
                               [&](std::uint32_t i) {
                                 if (flows_[i].active) return false;
                                 flows_[i].listed = false;
                                 return true;
                               }),
                active_.end());
  const double* rates = sys_.rates();
  for (const std::uint32_t i : active_) {
    if (now > last_update_[i] && rates[i] > 0) {
      remaining_[i] -= rates[i] * static_cast<double>(now - last_update_[i]);
      if (remaining_[i] < 0) remaining_[i] = 0;
    }
    last_update_[i] = now;
  }

  // Re-rate the affected component(s); see simnet/maxmin/system.hpp for the
  // walk and the water-filling.
  sys_.solve();
  stats_.ripple_iterations += sys_.touched_constraints();

  const std::vector<maxmin::VarId>& collected = sys_.collected();
  const std::vector<double>& old_rates = sys_.old_rates();

  // Starvation accounting: a flow the water-filling left at rate zero is
  // stalled by contention. Count the stall once, when it ends, and record
  // the interval on the flow's first fabric link. Only re-rated flows can
  // transition.
  for (const std::uint32_t i : collected) {
    Flow& f = flows_[i];
    if (rates[i] <= 0) {
      if (f.starved_since < 0) f.starved_since = now;
    } else if (f.starved_since >= 0) {
      ++stats_.queue_events;
      if (obs::TimelineRecorder* rec = eng_.recorder()) {
        const LinkId first = f.route.empty() ? 0 : f.route.front();
        rec->record(obs::kLinkTrackBase + static_cast<std::int32_t>(first),
                    obs::IntervalKind::kNetStall, f.starved_since, now,
                    static_cast<std::uint64_t>(remaining_[i]));
      }
      f.starved_since = -1;
    }
  }

  // Reschedule completions only for flows whose rate changed: an unchanged
  // rate means the previously scheduled completion instant is still correct.
  for (std::size_t idx = 0; idx < collected.size(); ++idx) {
    const std::uint32_t i = collected[idx];
    const double old_rate = old_rates[idx];
    if (old_rate > 0 && std::fabs(rates[i] - old_rate) <= old_rate * 1e-12) {
      continue;  // same rate: the pending completion event stands
    }
    schedule_completion(i);
  }
}

}  // namespace hps::simnet
