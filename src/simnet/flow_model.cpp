#include "simnet/flow_model.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/error.hpp"
#include "obs/timeline.hpp"

namespace hps::simnet {

namespace {
constexpr std::uint64_t pack(std::uint32_t hi, std::uint32_t lo) {
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}
/// Convert bytes/second to bytes/nanosecond.
constexpr double Bps_to_Bpns(Bandwidth b) { return b * 1e-9; }
}  // namespace

FlowModel::FlowModel(des::Engine& eng, const topo::Topology& topo, NetConfig cfg,
                     MessageSink& sink)
    : NetworkModel(eng, topo, cfg, sink) {
  const std::size_t total_links =
      static_cast<std::size_t>(topo.num_links()) + 2 * static_cast<std::size_t>(topo.num_nodes());
  link_residual_.resize(total_links, 0.0);
  link_unfrozen_.resize(total_links, 0);
  link_flows_.resize(total_links);
}

std::uint32_t FlowModel::alloc_flow() {
  if (!flow_free_.empty()) {
    const std::uint32_t i = flow_free_.back();
    flow_free_.pop_back();
    return i;
  }
  flows_.emplace_back();
  return static_cast<std::uint32_t>(flows_.size() - 1);
}

void FlowModel::free_flow(std::uint32_t idx) {
  flows_[idx].route.clear();
  flows_[idx].active = false;
  flow_free_.push_back(idx);
}

void FlowModel::inject(MsgId id, NodeId src, NodeId dst, std::uint64_t bytes) {
  if (deliver_local_if_same_node(id, src, dst, bytes)) return;
  ++stats_.messages;
  stats_.bytes += bytes;

  topo_.route(src, dst, route_scratch_, id);
  account_route(route_scratch_, bytes);
  const SimTime latency = path_latency(static_cast<int>(route_scratch_.size()));

  const std::uint32_t fidx = alloc_flow();
  Flow& f = flows_[fidx];
  f.id = id;
  f.remaining = static_cast<double>(bytes);
  f.rate = 0;
  f.last_update = eng_.now();
  f.tail_latency = latency;
  f.starved_since = -1;
  ++f.gen;
  f.active = true;
  f.route = route_scratch_;
  f.route.push_back(injection_link(src));
  f.route.push_back(ejection_link(dst));
  if (cfg_.message_bandwidth > 0) {
    // Per-flow pacing: a private pseudo-link of capacity message_bandwidth
    // caps this flow at the Hockney rate inside the max-min computation.
    const LinkId pace = pacing_link(fidx);
    const auto need = static_cast<std::size_t>(pace) + 1;
    if (link_residual_.size() < need) {
      link_residual_.resize(need, 0.0);
      link_unfrozen_.resize(need, 0);
      link_flows_.resize(need);
    }
    f.route.push_back(pace);
  }

  if (!f.listed) {
    active_.push_back(fidx);
    f.listed = true;
  }
  ++active_count_;
  stats_.max_active = std::max<std::uint64_t>(stats_.max_active, active_count_);

  if (bytes == 0) {
    // Pure-latency message; no fluid to drain.
    complete_flow(fidx);
    return;
  }
  mark_dirty();
}

void FlowModel::mark_dirty() {
  if (dirty_scheduled_) return;
  dirty_scheduled_ = true;
  // Batched ripple: all changes inside the update window share one
  // recompute. Never schedule before the previous recompute's interval has
  // elapsed, so staggered completions cannot force per-event passes.
  const SimTime earliest = last_recompute_ + cfg_.flow_update_interval;
  eng_.schedule_at(std::max(eng_.now(), earliest), this, kRecompute, 0);
}

void FlowModel::handle(des::Engine&, std::uint64_t a, std::uint64_t b) {
  switch (a) {
    case kRecompute:
      dirty_scheduled_ = false;
      recompute_rates();
      break;
    case kFlowDone: {
      const auto fidx = static_cast<std::uint32_t>(b >> 32);
      const auto gen = static_cast<std::uint32_t>(b);
      Flow& f = flows_[fidx];
      if (!f.active || f.gen != gen) return;  // superseded by a rate change
      advance_flow(f, eng_.now());
      // Guard against floating-point residue: anything below one byte is done.
      if (f.remaining <= 1.0) {
        complete_flow(fidx);
        mark_dirty();
      } else {
        schedule_completion(fidx);
      }
      break;
    }
    default:
      HPS_CHECK_MSG(false, "unknown flow model event kind");
  }
}

void FlowModel::advance_flow(Flow& f, SimTime now) {
  if (now > f.last_update && f.rate > 0) {
    f.remaining -= f.rate * static_cast<double>(now - f.last_update);
    if (f.remaining < 0) f.remaining = 0;
  }
  f.last_update = now;
}

void FlowModel::schedule_completion(std::uint32_t fidx) {
  Flow& f = flows_[fidx];
  ++f.gen;
  if (f.rate <= 0) return;  // starved; a later recompute will reschedule
  const double ns = f.remaining / f.rate;
  const SimTime when = eng_.now() + std::max<SimTime>(1, static_cast<SimTime>(std::ceil(ns)));
  eng_.schedule_at(when, this, kFlowDone, pack(fidx, f.gen));
}

void FlowModel::complete_flow(std::uint32_t fidx) {
  Flow& f = flows_[fidx];
  HPS_CHECK(f.active);
  f.active = false;
  --active_count_;
  const MsgId id = f.id;
  const SimTime latency = f.tail_latency;
  // Completion notification arrives after the fixed path latency.
  if (!notify_) notify_ = std::make_unique<Notify>(sink_);
  eng_.schedule_in(latency, notify_.get(), id, 0);
  // Compact the active list lazily during recompute; here just drop the slot.
  free_flow(fidx);
}

void FlowModel::recompute_rates() {
  ++stats_.rate_updates;
  const SimTime now = eng_.now();
  last_recompute_ = now;

  // Compact the active index list and settle all byte counts to `now`.
  active_.erase(std::remove_if(active_.begin(), active_.end(),
                               [&](std::uint32_t i) {
                                 if (flows_[i].active) return false;
                                 flows_[i].listed = false;
                                 return true;
                               }),
                active_.end());
  for (const std::uint32_t i : active_) advance_flow(flows_[i], now);

  // Build per-link flow lists.
  used_links_.clear();
  for (const std::uint32_t i : active_) {
    for (const LinkId l : flows_[i].route) {
      auto& lf = link_flows_[static_cast<std::size_t>(l)];
      if (lf.empty()) used_links_.push_back(l);
      lf.push_back(i);
    }
  }

  // Water-filling max-min fair allocation, driven by a lazy min-heap of link
  // fair shares: pop the candidate bottleneck, re-validate its share (links
  // touched since the push are stale), and freeze its flows. O((L + F*h)
  // log L) instead of the naive O(L * bottlenecks) scan.
  for (const LinkId l : used_links_) {
    link_residual_[static_cast<std::size_t>(l)] = Bps_to_Bpns(link_capacity(l));
    link_unfrozen_[static_cast<std::size_t>(l)] =
        static_cast<std::int32_t>(link_flows_[static_cast<std::size_t>(l)].size());
  }
  std::size_t unfrozen = active_.size();
  const double old_rate_epsilon = 1e-15;
  std::vector<double>& old_rates = rate_scratch_;
  old_rates.clear();
  for (const std::uint32_t i : active_) {
    old_rates.push_back(flows_[i].rate);
    flows_[i].rate = -1.0;  // -1 marks unfrozen
  }

  struct HeapEntry {
    double share;
    LinkId link;
    bool operator>(const HeapEntry& o) const { return share > o.share; }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  auto share_of = [&](LinkId l) {
    const auto li = static_cast<std::size_t>(l);
    return link_residual_[li] / static_cast<double>(link_unfrozen_[li]);
  };
  for (const LinkId l : used_links_) heap.push({share_of(l), l});

  while (unfrozen > 0) {
    HPS_CHECK_MSG(!heap.empty(), "water-filling ran out of bottleneck candidates");
    const HeapEntry top = heap.top();
    heap.pop();
    const auto li = static_cast<std::size_t>(top.link);
    if (link_unfrozen_[li] <= 0) continue;  // fully frozen since pushed
    const double share = share_of(top.link);
    if (share > top.share + old_rate_epsilon) {
      heap.push({share, top.link});  // stale entry: re-insert with fresh share
      continue;
    }
    const double best_share = std::max(share, 0.0);
    // Freeze every unfrozen flow crossing the bottleneck at the fair share.
    for (const std::uint32_t fi : link_flows_[li]) {
      Flow& f = flows_[fi];
      if (f.rate >= 0) continue;
      f.rate = best_share;
      --unfrozen;
      ++stats_.ripple_iterations;
      for (const LinkId l : f.route) {
        const auto lj = static_cast<std::size_t>(l);
        link_residual_[lj] -= best_share;
        if (link_residual_[lj] < 0) link_residual_[lj] = 0;
        --link_unfrozen_[lj];
        // Touched links get a fresh heap entry; stale ones are skipped above.
        if (link_unfrozen_[lj] > 0 && l != top.link) heap.push({share_of(l), l});
      }
    }
  }

  // Starvation accounting: a flow the water-filling left at rate zero is
  // stalled by contention. Count the stall once, when it ends, and record
  // the interval on the flow's first fabric link.
  for (const std::uint32_t i : active_) {
    Flow& f = flows_[i];
    if (f.rate <= 0) {
      if (f.starved_since < 0) f.starved_since = now;
    } else if (f.starved_since >= 0) {
      ++stats_.queue_events;
      if (obs::TimelineRecorder* rec = eng_.recorder()) {
        const LinkId first = f.route.empty() ? 0 : f.route.front();
        rec->record(obs::kLinkTrackBase + static_cast<std::int32_t>(first),
                    obs::IntervalKind::kNetStall, f.starved_since, now,
                    static_cast<std::uint64_t>(f.remaining));
      }
      f.starved_since = -1;
    }
  }

  // Clear per-link lists for the next pass. Reschedule completions only for
  // flows whose rate changed: an unchanged rate means the previously
  // scheduled completion instant is still correct.
  for (const LinkId l : used_links_) link_flows_[static_cast<std::size_t>(l)].clear();
  for (std::size_t idx = 0; idx < active_.size(); ++idx) {
    const std::uint32_t i = active_[idx];
    const double old_rate = old_rates[idx];
    if (old_rate > 0 &&
        std::fabs(flows_[i].rate - old_rate) <= old_rate * 1e-12) {
      continue;  // same rate: the pending completion event stands
    }
    schedule_completion(i);
  }
}

}  // namespace hps::simnet
