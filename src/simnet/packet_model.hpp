// Packet-level network model.
//
// Messages are segmented into fixed-size packets that are routed
// individually. Every link transmits one packet at a time (exclusive channel
// reservation) with FIFO queueing — the classic packet-level scheme the
// paper notes overestimates serialization latency relative to a flit-level
// network, and the most expensive of the three models to run.
#pragma once

#include <vector>

#include "common/pool.hpp"
#include "simnet/network.hpp"

namespace hps::simnet {

class PacketModel final : public NetworkModel, private des::Handler {
 public:
  PacketModel(des::Engine& eng, const topo::Topology& topo, NetConfig cfg, MessageSink& sink);

  void inject(MsgId id, NodeId src, NodeId dst, std::uint64_t bytes) override;
  std::string name() const override { return "packet"; }

 private:
  // Event kinds carried in payload word `a`.
  enum : std::uint64_t { kPacketReady = 0, kTxComplete = 1, kDeliver = 2 };

  static constexpr std::uint32_t kNil = 0xffffffff;

  struct MsgState {
    MsgId id = 0;
    std::uint32_t packets_remaining = 0;
    std::vector<LinkId> route;
  };
  struct Packet {
    std::uint32_t msg = 0;   // index into msgs_
    std::uint32_t hop = 0;   // next link index in the message route
    std::uint32_t bytes = 0;
    std::uint32_t next = kNil;  // intrusive FIFO link through the link queue
    SimTime enq = 0;  // virtual time it joined a link queue (timeline only)
  };
  // A link's waiting packets form an intrusive FIFO threaded through the
  // packet pool (`Packet::next`): enqueue and dequeue are pointer swings with
  // no per-link container allocation.
  struct Link {
    bool busy = false;
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  void handle(des::Engine& eng, std::uint64_t a, std::uint64_t b) override;
  void packet_ready(std::uint32_t pkt_idx);
  void start_tx(LinkId link, std::uint32_t pkt_idx);
  void tx_complete(LinkId link, std::uint32_t pkt_idx);
  void finish_packet(std::uint32_t pkt_idx);

  IndexPool<MsgState> msgs_;
  IndexPool<Packet> packets_;
  std::vector<Link> links_;
  std::vector<SimTime> nic_free_at_;  // per source node injection serialization
};

}  // namespace hps::simnet
