// Network model interface shared by the three simulators (packet, flow,
// packet-flow), mirroring the granularities discussed in the paper's §II-A.
//
// A model accepts whole messages (the MPI replay layer above decides
// protocol and matching) and notifies a sink when the last byte arrives at
// the destination node. All three models charge the same endpoint software
// overhead and per-hop latency; they differ in how they arbitrate link
// bandwidth under contention:
//   * PacketModel      — exclusive per-link reservation, FIFO queueing
//                        (overestimates serialization, the paper's §II-A);
//   * FlowModel        — fluid max-min fair sharing with "ripple" updates;
//   * PacketFlowModel  — coarse packets that sample congestion on shared,
//                        multiplexed channels (SST/Macro 6.1 hybrid).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "des/engine.hpp"
#include "topo/topology.hpp"

namespace hps::simnet {

using MsgId = std::uint64_t;

/// Receiver of message-delivery notifications.
class MessageSink {
 public:
  virtual ~MessageSink() = default;
  virtual void message_delivered(MsgId id, SimTime at) = 0;
};

/// Timing parameters, normally derived from a machine::MachineInstance.
struct NetConfig {
  Bandwidth link_bandwidth = gbps_to_Bps(10.0);
  Bandwidth injection_bandwidth = gbps_to_Bps(10.0);
  /// Per-message pacing cap: a single message/flow never streams faster than
  /// this, even on faster links (the Hockney "B" a single rank achieves).
  /// 0 disables pacing (messages use the full link/NIC rate). Machines set
  /// this to their published per-rank bandwidth while fabric links and NICs
  /// are provisioned several times larger to carry multiple ranks per node.
  Bandwidth message_bandwidth = 0;
  /// Intra-node (shared-memory) copy bandwidth for src == dst messages.
  Bandwidth local_bandwidth = 50e9;
  SimTime software_overhead = 500;  ///< per endpoint, per message (ns)
  SimTime hop_latency = 100;        ///< per traversed link (ns)
  std::uint64_t packet_size = 1024; ///< packet models: bytes per packet
  /// Flow model: minimum simulated time between max-min recomputations.
  /// Flow add/removes inside the window share one pass (rates are stale by
  /// at most this much) — the standard throttle that keeps fluid simulation
  /// from recomputing once per event under staggered arrivals. 0 disables.
  SimTime flow_update_interval = 500;

  /// Effective per-message rate (pacing cap or the link itself).
  Bandwidth message_rate() const {
    return message_bandwidth > 0 ? message_bandwidth : link_bandwidth;
  }
};

/// Counters exposed by every model (the bench harnesses report these to
/// explain the time rankings of Figure 1).
struct NetStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t packets = 0;            // packet & packet-flow models
  std::uint64_t rate_updates = 0;  // flow model rate recomputation passes
  // Flow model: constraints (links, NIC injection/ejection ports, bound
  // stations) the incremental max-min solver visited, summed across all rate
  // updates. Each solve's contribution is bounded by the size of the dirty
  // connected component, so this measures how local the re-solves stay —
  // formerly "flows frozen per ripple", renamed when the water-filling
  // ripple became the incremental solver (see simnet/maxmin/system.hpp).
  std::uint64_t ripple_iterations = 0;
  std::uint64_t queue_events = 0;       // stalls: link-queue waits (packet),
                                        // contended hops (packet-flow),
                                        // starved flows (flow)
  std::uint64_t max_active = 0;         // peak concurrent in-flight messages/flows
};

class NetworkModel {
 public:
  NetworkModel(des::Engine& eng, const topo::Topology& topo, NetConfig cfg, MessageSink& sink)
      : eng_(eng), topo_(topo), cfg_(cfg), sink_(sink),
        link_bytes_(static_cast<std::size_t>(topo.num_links()), 0) {}
  /// Flushes the per-instance NetStats into the global telemetry registry
  /// (`simnet.*` counters) when telemetry is enabled.
  virtual ~NetworkModel();
  NetworkModel(const NetworkModel&) = delete;
  NetworkModel& operator=(const NetworkModel&) = delete;

  /// Start transferring `bytes` from `src` to `dst` now. The sink is
  /// notified exactly once per id at delivery time. Zero-byte messages are
  /// legal (pure synchronization) and cost latency only.
  virtual void inject(MsgId id, NodeId src, NodeId dst, std::uint64_t bytes) = 0;

  virtual std::string name() const = 0;
  const NetStats& stats() const { return stats_; }

  /// Bytes carried per directed link over the run (telemetry for hotspot
  /// analysis; local same-node messages do not appear here).
  const std::vector<std::uint64_t>& link_bytes() const { return link_bytes_; }

 protected:
  /// Charge `bytes` of traffic to every fabric link of a route (pseudo-links
  /// such as the flow model's NIC/pacing entries are skipped).
  void account_route(const std::vector<LinkId>& route, std::uint64_t bytes) {
    for (const LinkId l : route)
      if (static_cast<std::size_t>(l) < link_bytes_.size())
        link_bytes_[static_cast<std::size_t>(l)] += bytes;
  }
  /// Fixed (bandwidth-independent) cost of a path with `hops` links.
  SimTime path_latency(int hops) const {
    return 2 * cfg_.software_overhead + static_cast<SimTime>(hops) * cfg_.hop_latency;
  }

  /// Handle a same-node message: memory copy at local bandwidth.
  /// Returns true if handled (caller should not route it).
  bool deliver_local_if_same_node(MsgId id, NodeId src, NodeId dst, std::uint64_t bytes);

  des::Engine& eng_;
  const topo::Topology& topo_;
  NetConfig cfg_;
  MessageSink& sink_;
  NetStats stats_;

 private:
  std::vector<std::uint64_t> link_bytes_;
  std::unique_ptr<des::Handler> local_delivery_;
};

}  // namespace hps::simnet
