#include "simnet/network.hpp"

#include "telemetry/telemetry.hpp"

namespace hps::simnet {

namespace {

/// One-shot handler delivering a local (same-node) message to the sink.
class LocalDelivery final : public des::Handler {
 public:
  explicit LocalDelivery(MessageSink& sink) : sink_(sink) {}
  void handle(des::Engine& eng, std::uint64_t id, std::uint64_t) override {
    sink_.message_delivered(id, eng.now());
  }

 private:
  MessageSink& sink_;
};

}  // namespace

NetworkModel::~NetworkModel() {
  auto& reg = telemetry::Registry::global();
  if (!reg.enabled()) return;
  struct Handles {
    telemetry::Counter messages, bytes, packets, rate_updates, ripple_iterations, queue_stalls;
    telemetry::Gauge max_active;
  };
  static const Handles h{
      reg.counter("simnet.messages"),          reg.counter("simnet.bytes"),
      reg.counter("simnet.packets"),           reg.counter("simnet.rate_updates"),
      reg.counter("simnet.ripple_iterations"), reg.counter("simnet.queue_stalls"),
      reg.gauge("simnet.max_active"),
  };
  h.messages.add(stats_.messages);
  h.bytes.add(stats_.bytes);
  h.packets.add(stats_.packets);
  h.rate_updates.add(stats_.rate_updates);
  h.ripple_iterations.add(stats_.ripple_iterations);
  h.queue_stalls.add(stats_.queue_events);
  h.max_active.record(stats_.max_active);
}

bool NetworkModel::deliver_local_if_same_node(MsgId id, NodeId src, NodeId dst,
                                              std::uint64_t bytes) {
  if (src != dst) return false;
  ++stats_.messages;
  stats_.bytes += bytes;
  // Shared-memory transfer: software overhead at both "endpoints" plus a
  // memory copy; no network links involved.
  const SimTime dt = 2 * cfg_.software_overhead + transfer_time(bytes, cfg_.local_bandwidth);
  // The handler must outlive the event; a static per-sink instance would be
  // wrong (multiple sinks), so keep one per model instance lazily.
  if (!local_delivery_) local_delivery_ = std::make_unique<LocalDelivery>(sink_);
  eng_.schedule_in(dt, local_delivery_.get(), id, 0);
  return true;
}

}  // namespace hps::simnet
