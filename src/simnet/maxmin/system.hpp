// Incremental max-min fair bandwidth-sharing solver (the SimGrid "surf"
// linear max-min structure, specialized to equal weights).
//
// The system holds *variables* (flows wanting rate) and *constraints* (links
// with finite capacity), connected by membership *elements* kept in
// arena-allocated pools with intrusive doubly-linked lists — after warm-up a
// simulation allocates nothing per flow. A variable may carry a *bound*, the
// private rate cap a single flow can never exceed (the Hockney per-rank
// bandwidth); a bound behaves exactly like a private constraint of that
// capacity shared by nobody else, without materializing one.
//
// Changes are admitted in batches: admit()/retire()/set_capacity()/
// set_bound() only mark the touched constraints dirty, and a later solve()
// re-rates exactly the connected component(s) of the variable–constraint
// sharing graph reachable from the dirty set. Max-min allocation decomposes
// over components (disjoint components share no capacity), so rates outside
// the dirty components provably keep their values — solve() reports which
// variables it re-rated and what their previous rates were, so the caller
// can skip rescheduling completion events whose instant still stands.
//
// Within a component the solve is progressive water-filling driven by a lazy
// min-heap of candidate bottleneck shares: pop the candidate, re-validate
// its share against the live residual (entries go stale as earlier freezes
// drain capacity), and freeze every unfrozen variable crossing it at the
// fair share. Shares only grow as the filling proceeds, so a stale entry is
// always an underestimate and re-validation is sound.
//
// Bounded variables additionally appear in the solve as *stations*: marker
// entries in the dirty stack, visit order, and candidate heap occupying
// exactly the slots a materialized private constraint would. This is not
// cosmetic — the heap breaks ties among equal candidate shares by array
// layout, and the freeze order among equal shares steers which link's share
// is recomputed (with its own rounding) versus taken fresh, so heap layout
// is part of the floating-point contract.
//
// Determinism contract: given the same sequence of admit/retire/solve calls,
// the solver performs the same floating-point operations in the same order,
// so allocated rates are bit-identical run to run — and bit-identical to a
// from-scratch water-filling of the full system, which is what
// tests/test_maxmin.cpp checks against a brute-force oracle.
#pragma once

#include <cstdint>
#include <vector>

namespace hps::simnet::maxmin {

using VarId = std::uint32_t;
using ConsId = std::uint32_t;

class System {
 public:
  /// Add a constraint with `capacity` in bytes/ns. Constraints are
  /// permanent: a simulation's link set does not change.
  ConsId add_constraint(double capacity);

  /// Change a constraint's capacity (bytes/ns); takes effect at the next
  /// solve, which re-rates the constraint's component.
  void set_capacity(ConsId c, double capacity);
  double capacity(ConsId c) const { return cons_capacity_[c]; }

  /// Add a variable with a private rate cap in bytes/ns (<= 0: unbounded).
  /// The id is pool-recycled: ids released by retire() are reused LIFO.
  VarId add_variable(double bound);

  /// Attach `v` to constraint `c`. Attach order is significant: it fixes the
  /// deterministic traversal order of the incremental solve. Call between
  /// add_variable() and admit().
  void attach(VarId v, ConsId c);

  /// Admit the variable into the next solve's batch: marks its constraints
  /// dirty (in attach order) and queues the variable for (re-)rating. A
  /// variable with neither constraints nor a positive bound cannot be
  /// admitted (its fair rate would be unbounded).
  void admit(VarId v);

  /// Remove the variable and release its id: unlinks every membership in
  /// O(degree), marking the constraints it used dirty (in attach order).
  void retire(VarId v);

  /// Change a variable's bound; takes effect at the next solve.
  void set_bound(VarId v, double bound);
  double bound(VarId v) const { return var_bound_[v]; }

  /// Re-rate the connected component(s) reachable from the dirty set.
  /// No-op when nothing is dirty. After the call, collected()/old_rates()
  /// describe the variables this solve touched.
  void solve();

  /// Current allocated rate of `v` (bytes/ns), valid after the last solve.
  double rate(VarId v) const { return var_rate_[v]; }
  /// Dense rate array indexed by VarId (for bulk byte-accounting loops).
  const double* rates() const { return var_rate_.data(); }

  /// Variables re-rated by the last solve, in deterministic collection
  /// order, and the rates they held before it.
  const std::vector<VarId>& collected() const { return collected_; }
  const std::vector<double>& old_rates() const { return old_rates_; }

  /// Constraints visited by the last solve (the affected component's links).
  std::uint64_t touched_constraints() const { return touched_constraints_; }
  /// Cumulative count of solve() calls that had work to do.
  std::uint64_t solves() const { return solves_; }

  std::size_t num_constraints() const { return cons_capacity_.size(); }
  /// Live (admitted, not retired) variables.
  std::size_t live_variables() const { return live_vars_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  /// Dirty-stack entries and heap keys tag variables with the top bit; plain
  /// values are constraint ids.
  static constexpr std::uint32_t kVarFlag = 0x80000000u;

  struct HeapEntry {
    double share;
    std::uint32_t key;  // ConsId, or VarId | kVarFlag for a bound entry
  };

  void mark_cons_dirty(ConsId c);
  void mark_station_dirty(VarId v);
  void collect(VarId v);
  void heap_push(HeapEntry e);
  HeapEntry heap_pop();
  double share_of(ConsId c) const {
    return cons_residual_[c] / static_cast<double>(cons_unfrozen_[c]);
  }
  /// Freeze `v` at `rate`, draining its share from every constraint it
  /// crosses and re-advertising their candidate shares.
  void freeze(VarId v, double rate, std::uint32_t popped_key);

  // --- Variable pool (SoA; slots recycled LIFO via var_free_). -------------
  std::vector<double> var_rate_;        // -1 marks "collected, unfrozen" mid-solve
  std::vector<double> var_bound_;       // <= 0: unbounded
  std::vector<std::uint32_t> var_head_; // first element, attach order
  std::vector<std::uint32_t> var_tail_;
  std::vector<std::uint8_t> var_live_;      // allocated, not retired
  std::vector<std::uint8_t> var_admitted_;  // in the sharing graph
  std::vector<std::uint8_t> station_dirty_;
  std::vector<std::uint8_t> station_visited_;
  std::vector<VarId> var_free_;
  std::size_t live_vars_ = 0;

  // --- Constraint pool (SoA; permanent). -----------------------------------
  std::vector<double> cons_capacity_;   // bytes/ns
  std::vector<double> cons_residual_;   // valid only during a solve
  std::vector<std::int32_t> cons_unfrozen_;
  std::vector<std::int32_t> cons_size_;   // live membership count
  std::vector<std::uint8_t> cons_dirty_;
  std::vector<std::uint8_t> cons_visited_;
  std::vector<std::uint32_t> cons_head_;  // membership list, insertion order
  std::vector<std::uint32_t> cons_tail_;

  // --- Element arena: one entry per (variable, constraint) membership. -----
  // A single struct-of-links (not parallel arrays): list traversal touches
  // one cache line per element, and traversal is the solver's inner loop.
  struct Elem {
    VarId var = 0;
    ConsId cons = 0;
    std::uint32_t next_in_var = kNil;
    std::uint32_t next_in_cons = kNil;
    std::uint32_t prev_in_cons = kNil;
  };
  std::vector<Elem> elems_;
  std::vector<std::uint32_t> elem_free_;

  // --- Dirty set and solve scratch (persistent to avoid reallocation). -----
  std::vector<std::uint32_t> dirty_;       // ConsId or VarId|kVarFlag, mark order
  std::vector<std::uint32_t> visit_stack_;
  std::vector<ConsId> used_;               // visited constraints, for flag reset
  std::vector<VarId> collected_;
  std::vector<double> old_rates_;
  std::vector<HeapEntry> heap_;
  std::uint64_t touched_constraints_ = 0;
  std::uint64_t solves_ = 0;
};

}  // namespace hps::simnet::maxmin
