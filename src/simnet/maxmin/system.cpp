#include "simnet/maxmin/system.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hps::simnet::maxmin {

namespace {
/// Stale-entry tolerance of the lazy heap: a popped candidate whose live
/// share grew past its recorded share by more than this is re-advertised
/// instead of frozen. Shares only grow during a fill, so staleness is
/// one-sided and the comparison is safe.
constexpr double kStaleEpsilon = 1e-15;
}  // namespace

ConsId System::add_constraint(double capacity) {
  const ConsId c = static_cast<ConsId>(cons_capacity_.size());
  cons_capacity_.push_back(capacity);
  cons_residual_.push_back(0.0);
  cons_unfrozen_.push_back(0);
  cons_size_.push_back(0);
  cons_dirty_.push_back(0);
  cons_visited_.push_back(0);
  cons_head_.push_back(kNil);
  cons_tail_.push_back(kNil);
  return c;
}

void System::set_capacity(ConsId c, double capacity) {
  cons_capacity_[c] = capacity;
  mark_cons_dirty(c);
}

VarId System::add_variable(double bound) {
  VarId v;
  if (!var_free_.empty()) {
    v = var_free_.back();
    var_free_.pop_back();
  } else {
    v = static_cast<VarId>(var_rate_.size());
    var_rate_.push_back(0.0);
    var_bound_.push_back(0.0);
    var_head_.push_back(kNil);
    var_tail_.push_back(kNil);
    var_live_.push_back(0);
    var_admitted_.push_back(0);
    station_dirty_.push_back(0);
    station_visited_.push_back(0);
  }
  var_rate_[v] = 0.0;
  var_bound_[v] = bound;
  var_head_[v] = kNil;
  var_tail_[v] = kNil;
  var_live_[v] = 1;
  var_admitted_[v] = 0;
  ++live_vars_;
  return v;
}

void System::attach(VarId v, ConsId c) {
  HPS_CHECK(var_live_[v] && !var_admitted_[v]);
  std::uint32_t e;
  if (!elem_free_.empty()) {
    e = elem_free_.back();
    elem_free_.pop_back();
  } else {
    e = static_cast<std::uint32_t>(elems_.size());
    elems_.emplace_back();
  }
  Elem& el = elems_[e];
  el.var = v;
  el.cons = c;

  el.next_in_var = kNil;
  if (var_tail_[v] == kNil)
    var_head_[v] = e;
  else
    elems_[var_tail_[v]].next_in_var = e;
  var_tail_[v] = e;

  el.next_in_cons = kNil;
  el.prev_in_cons = cons_tail_[c];
  if (cons_tail_[c] == kNil)
    cons_head_[c] = e;
  else
    elems_[cons_tail_[c]].next_in_cons = e;
  cons_tail_[c] = e;
  ++cons_size_[c];
}

void System::mark_cons_dirty(ConsId c) {
  if (cons_dirty_[c]) return;
  cons_dirty_[c] = 1;
  dirty_.push_back(c);
}

void System::mark_station_dirty(VarId v) {
  if (station_dirty_[v]) return;
  station_dirty_[v] = 1;
  dirty_.push_back(v | kVarFlag);
}

void System::admit(VarId v) {
  HPS_CHECK(var_live_[v] && !var_admitted_[v]);
  HPS_CHECK_MSG(var_head_[v] != kNil || var_bound_[v] > 0,
                "a variable with no constraints and no bound has no finite fair rate");
  var_admitted_[v] = 1;
  for (std::uint32_t e = var_head_[v]; e != kNil; e = elems_[e].next_in_var)
    mark_cons_dirty(elems_[e].cons);
  if (var_bound_[v] > 0) mark_station_dirty(v);
}

void System::retire(VarId v) {
  HPS_CHECK(var_live_[v]);
  if (var_admitted_[v]) {
    for (std::uint32_t e = var_head_[v]; e != kNil;) {
      const Elem& el = elems_[e];
      const ConsId c = el.cons;
      mark_cons_dirty(c);
      if (el.prev_in_cons == kNil)
        cons_head_[c] = el.next_in_cons;
      else
        elems_[el.prev_in_cons].next_in_cons = el.next_in_cons;
      if (el.next_in_cons == kNil)
        cons_tail_[c] = el.prev_in_cons;
      else
        elems_[el.next_in_cons].prev_in_cons = el.prev_in_cons;
      --cons_size_[c];
      const std::uint32_t dead = e;
      e = el.next_in_var;
      elem_free_.push_back(dead);
    }
    if (var_bound_[v] > 0) mark_station_dirty(v);
  } else {
    HPS_CHECK_MSG(var_head_[v] == kNil, "retiring an attached but never-admitted variable");
  }
  var_head_[v] = kNil;
  var_tail_[v] = kNil;
  var_live_[v] = 0;
  var_admitted_[v] = 0;
  --live_vars_;
  var_free_.push_back(v);
}

void System::set_bound(VarId v, double bound) {
  HPS_CHECK(var_live_[v]);
  if (var_admitted_[v])
    HPS_CHECK_MSG(var_head_[v] != kNil || bound > 0,
                  "unbounding a constraint-less variable would give it an infinite rate");
  var_bound_[v] = bound;
  if (var_admitted_[v]) {
    for (std::uint32_t e = var_head_[v]; e != kNil; e = elems_[e].next_in_var)
      mark_cons_dirty(elems_[e].cons);
    // The station is the collection trigger even when the new bound is
    // "unbounded": it pulls the variable's component into the re-solve.
    mark_station_dirty(v);
  }
}

void System::heap_push(HeapEntry e) {
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const HeapEntry& x, const HeapEntry& y) { return x.share > y.share; });
}

System::HeapEntry System::heap_pop() {
  std::pop_heap(heap_.begin(), heap_.end(),
                [](const HeapEntry& x, const HeapEntry& y) { return x.share > y.share; });
  const HeapEntry e = heap_.back();
  heap_.pop_back();
  return e;
}

void System::collect(VarId v) {
  collected_.push_back(v);
  old_rates_.push_back(var_rate_[v]);
  var_rate_[v] = -1.0;  // marks "collected, awaiting freeze"
  for (std::uint32_t e = var_head_[v]; e != kNil; e = elems_[e].next_in_var) {
    const ConsId c = elems_[e].cons;
    if (!cons_visited_[c]) visit_stack_.push_back(c);
  }
  // The bound station rides the visit stack after the constraints, where a
  // materialized private constraint (appended last to the route) would sit.
  if (var_bound_[v] > 0 && !station_visited_[v]) visit_stack_.push_back(v | kVarFlag);
}

void System::solve() {
  collected_.clear();
  old_rates_.clear();
  touched_constraints_ = 0;
  if (dirty_.empty()) return;
  ++solves_;

  // Affected-component walk: flood the variable–constraint sharing graph
  // from the dirty set. Every variable on a visited constraint is collected
  // for re-rating and pulls the rest of its memberships into the visit set,
  // closing over exactly the component(s) whose membership or capacity
  // changed. LIFO order and list iteration order are part of the
  // determinism contract (see the header).
  visit_stack_.swap(dirty_);
  dirty_.clear();
  used_.clear();
  for (const std::uint32_t key : visit_stack_) {
    if (key & kVarFlag)
      station_dirty_[key & ~kVarFlag] = 0;
    else
      cons_dirty_[key] = 0;
  }
  while (!visit_stack_.empty()) {
    const std::uint32_t key = visit_stack_.back();
    visit_stack_.pop_back();
    if (key & kVarFlag) {
      const VarId v = key & ~kVarFlag;
      if (station_visited_[v]) continue;
      station_visited_[v] = 1;
      used_.push_back(key);
      // The station's only tenant is the slot's live admitted variable (a
      // retired tenant left nothing behind; a recycled slot hosts its new
      // one).
      if (var_live_[v] && var_admitted_[v] && var_rate_[v] >= 0) collect(v);
    } else {
      const ConsId c = key;
      if (cons_visited_[c]) continue;
      cons_visited_[c] = 1;
      ++touched_constraints_;
      used_.push_back(c);
      for (std::uint32_t e = cons_head_[c]; e != kNil; e = elems_[e].next_in_cons) {
        const VarId v = elems_[e].var;
        if (var_rate_[v] < 0) continue;  // already collected this pass
        collect(v);
      }
    }
  }

  // Seed the candidate heap in visit order: every used constraint starts
  // with its full capacity split over its (all unfrozen) members; every
  // used station advertises its variable's bound (a private constraint of
  // that capacity with one member).
  heap_.clear();
  for (const std::uint32_t key : used_) {
    if (key & kVarFlag) {
      const VarId v = key & ~kVarFlag;
      if (var_live_[v] && var_admitted_[v] && var_bound_[v] > 0)
        heap_push({var_bound_[v], key});
    } else {
      const ConsId c = key;
      if (cons_size_[c] == 0) continue;  // dirty but deserted
      cons_residual_[c] = cons_capacity_[c];
      cons_unfrozen_[c] = cons_size_[c];
      heap_push({share_of(c), c});
    }
  }

  // Progressive water-filling: pop the candidate bottleneck, re-validate its
  // share against the live residual, freeze every unfrozen variable crossing
  // it at the fair share and drain that share from the rest of their routes.
  std::size_t unfrozen_total = collected_.size();
  while (unfrozen_total > 0) {
    HPS_CHECK_MSG(!heap_.empty(), "water-filling ran out of bottleneck candidates");
    const HeapEntry top = heap_pop();
    if (top.key & kVarFlag) {
      const VarId v = top.key & ~kVarFlag;
      if (var_rate_[v] < 0) {
        // Still unfrozen, so the station is untouched and its share is the
        // bound exactly; freeze the variable at it.
        freeze(v, std::max(var_bound_[v], 0.0), top.key);
        --unfrozen_total;
      }
    } else {
      const ConsId c = top.key;
      if (cons_unfrozen_[c] <= 0) continue;  // fully frozen since pushed
      const double share = share_of(c);
      if (share > top.share + kStaleEpsilon) {
        heap_push({share, c});  // stale entry: re-advertise the fresh share
        continue;
      }
      const double best = std::max(share, 0.0);
      for (std::uint32_t e = cons_head_[c]; e != kNil; e = elems_[e].next_in_cons) {
        const VarId v = elems_[e].var;
        if (var_rate_[v] >= 0) continue;
        freeze(v, best, top.key);
        --unfrozen_total;
      }
    }
  }

  for (const std::uint32_t key : used_) {
    if (key & kVarFlag)
      station_visited_[key & ~kVarFlag] = 0;
    else
      cons_visited_[key] = 0;
  }
}

void System::freeze(VarId v, double rate, std::uint32_t popped_key) {
  var_rate_[v] = rate;
  for (std::uint32_t e = var_head_[v]; e != kNil; e = elems_[e].next_in_var) {
    const ConsId c = elems_[e].cons;
    cons_residual_[c] -= rate;
    if (cons_residual_[c] < 0) cons_residual_[c] = 0;
    --cons_unfrozen_[c];
    // Touched constraints get a fresh heap entry; stale ones are skipped at
    // pop time. The popped bottleneck itself is exhausted, not re-advertised.
    if (cons_unfrozen_[c] > 0 && c != popped_key) heap_push({share_of(c), c});
  }
}

}  // namespace hps::simnet::maxmin
