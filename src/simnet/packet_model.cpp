#include "simnet/packet_model.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/timeline.hpp"
#include "robust/fault.hpp"

namespace hps::simnet {

namespace {
constexpr std::uint64_t pack(std::uint32_t hi, std::uint32_t lo) {
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}
}  // namespace

PacketModel::PacketModel(des::Engine& eng, const topo::Topology& topo, NetConfig cfg,
                         MessageSink& sink)
    : NetworkModel(eng, topo, cfg, sink),
      links_(static_cast<std::size_t>(topo.num_links())),
      nic_free_at_(static_cast<std::size_t>(topo.num_nodes()), 0) {
  HPS_CHECK(cfg_.packet_size > 0);
}

void PacketModel::inject(MsgId id, NodeId src, NodeId dst, std::uint64_t bytes) {
  robust::fault_point(robust::FaultSite::kPacket);
  if (deliver_local_if_same_node(id, src, dst, bytes)) return;
  ++stats_.messages;
  stats_.bytes += bytes;

  const std::uint32_t midx = msgs_.alloc();
  stats_.max_active = std::max<std::uint64_t>(stats_.max_active, msgs_.live());
  MsgState& m = msgs_[midx];
  m.id = id;
  topo_.route(src, dst, m.route, id);  // routed in place: no scratch copy
  HPS_CHECK(!m.route.empty());
  account_route(m.route, bytes);

  const std::uint64_t psz = cfg_.packet_size;
  const std::uint32_t npackets =
      bytes == 0 ? 1 : static_cast<std::uint32_t>((bytes + psz - 1) / psz);
  m.packets_remaining = npackets;
  stats_.packets += npackets;

  // NIC injection: the message's packets are paced at the per-message rate
  // (Hockney B) while the node's NIC serializes concurrent messages at its
  // own (larger) capacity; each packet leaves at the later of the two.
  SimTime& nic = nic_free_at_[static_cast<std::size_t>(src)];
  SimTime pace = eng_.now() + cfg_.software_overhead;
  nic = std::max(nic, pace);
  std::uint64_t left = bytes;
  for (std::uint32_t k = 0; k < npackets; ++k) {
    const std::uint32_t pbytes = static_cast<std::uint32_t>(std::min<std::uint64_t>(left, psz));
    left -= pbytes;
    const std::uint32_t pidx = packets_.alloc();
    Packet& p = packets_[pidx];
    p.msg = midx;
    p.hop = 0;
    p.bytes = pbytes;
    p.next = kNil;
    pace += transfer_time(pbytes, cfg_.message_rate());
    nic += transfer_time(pbytes, cfg_.injection_bandwidth);
    eng_.schedule_at(std::max(pace, nic), this, kPacketReady, pidx);
  }
}

void PacketModel::handle(des::Engine&, std::uint64_t a, std::uint64_t b) {
  switch (a) {
    case kPacketReady:
      packet_ready(static_cast<std::uint32_t>(b));
      break;
    case kTxComplete:
      tx_complete(static_cast<LinkId>(b >> 32), static_cast<std::uint32_t>(b));
      break;
    case kDeliver: {
      const auto midx = static_cast<std::uint32_t>(b);
      const MsgId id = msgs_[midx].id;
      msgs_[midx].route.clear();
      msgs_.release(midx);
      sink_.message_delivered(id, eng_.now());
      break;
    }
    default:
      HPS_CHECK_MSG(false, "unknown packet model event kind");
  }
}

void PacketModel::packet_ready(std::uint32_t pkt_idx) {
  Packet& p = packets_[pkt_idx];
  const MsgState& m = msgs_[p.msg];
  if (p.hop == m.route.size()) {
    finish_packet(pkt_idx);
    return;
  }
  const LinkId link = m.route[p.hop];
  Link& l = links_[static_cast<std::size_t>(link)];
  if (l.busy) {
    p.next = kNil;
    if (l.tail == kNil)
      l.head = pkt_idx;
    else
      packets_[l.tail].next = pkt_idx;
    l.tail = pkt_idx;
    ++stats_.queue_events;
    p.enq = eng_.now();
  } else {
    start_tx(link, pkt_idx);
  }
}

void PacketModel::start_tx(LinkId link, std::uint32_t pkt_idx) {
  Link& l = links_[static_cast<std::size_t>(link)];
  l.busy = true;
  const SimTime ser = transfer_time(packets_[pkt_idx].bytes, cfg_.link_bandwidth);
  eng_.schedule_in(ser, this, kTxComplete, pack(static_cast<std::uint32_t>(link), pkt_idx));
}

void PacketModel::tx_complete(LinkId link, std::uint32_t pkt_idx) {
  // The packet moves on after the wire/router latency of this hop.
  Packet& p = packets_[pkt_idx];
  ++p.hop;
  eng_.schedule_in(cfg_.hop_latency, this, kPacketReady, pkt_idx);

  Link& l = links_[static_cast<std::size_t>(link)];
  if (l.head == kNil) {
    l.busy = false;
  } else {
    const std::uint32_t next = l.head;
    l.head = packets_[next].next;
    if (l.head == kNil) l.tail = kNil;
    if (obs::TimelineRecorder* rec = eng_.recorder())
      rec->record(obs::kLinkTrackBase + static_cast<std::int32_t>(link),
                  obs::IntervalKind::kNetStall, packets_[next].enq, eng_.now(),
                  packets_[next].bytes);
    start_tx(link, next);
  }
}

void PacketModel::finish_packet(std::uint32_t pkt_idx) {
  const std::uint32_t midx = packets_[pkt_idx].msg;
  packets_.release(pkt_idx);
  MsgState& m = msgs_[midx];
  HPS_CHECK(m.packets_remaining > 0);
  if (--m.packets_remaining == 0) {
    // Receiver-side software overhead before the MPI layer sees the message.
    eng_.schedule_in(cfg_.software_overhead, this, kDeliver, midx);
  }
}

}  // namespace hps::simnet
