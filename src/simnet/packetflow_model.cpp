#include "simnet/packetflow_model.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/timeline.hpp"
#include "robust/fault.hpp"

namespace hps::simnet {

PacketFlowModel::PacketFlowModel(des::Engine& eng, const topo::Topology& topo, NetConfig cfg,
                                 MessageSink& sink)
    : NetworkModel(eng, topo, cfg, sink),
      link_in_flight_(static_cast<std::size_t>(topo.num_links()), 0),
      nic_free_at_(static_cast<std::size_t>(topo.num_nodes()), 0) {
  HPS_CHECK(cfg_.packet_size > 0);
}

void PacketFlowModel::inject(MsgId id, NodeId src, NodeId dst, std::uint64_t bytes) {
  robust::fault_point(robust::FaultSite::kPacketFlow);
  if (deliver_local_if_same_node(id, src, dst, bytes)) return;
  ++stats_.messages;
  stats_.bytes += bytes;

  const std::uint32_t midx = msgs_.alloc();
  stats_.max_active = std::max<std::uint64_t>(stats_.max_active, msgs_.live());
  MsgState& m = msgs_[midx];
  m.id = id;
  topo_.route(src, dst, m.route, id);  // routed in place: no scratch copy
  HPS_CHECK(!m.route.empty());
  account_route(m.route, bytes);

  const std::uint64_t psz = cfg_.packet_size;
  const std::uint32_t npackets =
      bytes == 0 ? 1 : static_cast<std::uint32_t>((bytes + psz - 1) / psz);
  m.packets_remaining = npackets;
  stats_.packets += npackets;

  // Injection: per-message pacing at the Hockney rate combined with the
  // node NIC's own serialization at its (larger) capacity.
  SimTime& nic = nic_free_at_[static_cast<std::size_t>(src)];
  SimTime pace = eng_.now() + cfg_.software_overhead;
  nic = std::max(nic, pace);
  std::uint64_t left = bytes;
  for (std::uint32_t k = 0; k < npackets; ++k) {
    const std::uint32_t pbytes = static_cast<std::uint32_t>(std::min<std::uint64_t>(left, psz));
    left -= pbytes;
    const std::uint32_t pidx = packets_.alloc();
    packets_[pidx] = {midx, 0, pbytes, -1};
    pace += transfer_time(pbytes, cfg_.message_rate());
    nic += transfer_time(pbytes, cfg_.injection_bandwidth);
    eng_.schedule_at(std::max(pace, nic), this, kHopEnter, pidx);
  }
}

void PacketFlowModel::handle(des::Engine&, std::uint64_t a, std::uint64_t b) {
  switch (a) {
    case kHopEnter:
      hop_enter(static_cast<std::uint32_t>(b));
      break;
    case kHopExit:
      hop_exit(static_cast<std::uint32_t>(b));
      break;
    case kDeliver: {
      const auto midx = static_cast<std::uint32_t>(b);
      const MsgId id = msgs_[midx].id;
      msgs_[midx].route.clear();
      msgs_.release(midx);
      sink_.message_delivered(id, eng_.now());
      break;
    }
    default:
      HPS_CHECK_MSG(false, "unknown packet-flow model event kind");
  }
}

void PacketFlowModel::hop_enter(std::uint32_t pkt_idx) {
  Packet& p = packets_[pkt_idx];
  const MsgState& m = msgs_[p.msg];
  if (p.hop == m.route.size()) {
    finish_packet(pkt_idx);
    return;
  }
  const LinkId link = m.route[p.hop];
  auto& in_flight = link_in_flight_[static_cast<std::size_t>(link)];
  // Sample the congestion: this packet expects to share the channel with the
  // packets already in flight, so its serialization stretches by that factor.
  const std::int32_t share = in_flight + 1;
  ++in_flight;
  p.on_link = link;
  const SimTime ser = transfer_time(static_cast<std::uint64_t>(p.bytes) *
                                        static_cast<std::uint64_t>(share),
                                    cfg_.link_bandwidth);
  if (share > 1) {
    // Contended hop: the serialization stretch beyond the uncontended time
    // is this model's analogue of a queue stall.
    ++stats_.queue_events;
    if (obs::TimelineRecorder* rec = eng_.recorder())
      rec->record(obs::kLinkTrackBase + static_cast<std::int32_t>(link),
                  obs::IntervalKind::kNetStall, eng_.now(),
                  eng_.now() + cfg_.hop_latency + ser,
                  static_cast<std::uint64_t>(share));
  }
  eng_.schedule_in(cfg_.hop_latency + ser, this, kHopExit, pkt_idx);
}

void PacketFlowModel::hop_exit(std::uint32_t pkt_idx) {
  Packet& p = packets_[pkt_idx];
  HPS_CHECK(p.on_link >= 0);
  auto& in_flight = link_in_flight_[static_cast<std::size_t>(p.on_link)];
  HPS_CHECK(in_flight > 0);
  --in_flight;
  p.on_link = -1;
  ++p.hop;
  hop_enter(pkt_idx);
}

void PacketFlowModel::finish_packet(std::uint32_t pkt_idx) {
  const std::uint32_t midx = packets_[pkt_idx].msg;
  packets_.release(pkt_idx);
  MsgState& m = msgs_[midx];
  HPS_CHECK(m.packets_remaining > 0);
  if (--m.packets_remaining == 0)
    eng_.schedule_in(cfg_.software_overhead, this, kDeliver, midx);
}

}  // namespace hps::simnet
