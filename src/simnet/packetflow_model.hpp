// Hybrid packet-flow network model (the SST/Macro 6.1 scheme).
//
// Messages are cut into coarse packets (the SST/Macro developers recommend
// 1–8 KB; we default to 4 KB), but — unlike the packet model — a link is a
// multiplexed channel rather than an exclusively reserved one. On entering a
// hop, a packet *samples* the congestion (the number of packets currently
// sharing the link) and charges itself the expected serialization delay at
// the fair bandwidth share. This avoids both the serialization
// overestimation of packet-level simulation and the global ripple updates of
// flow-level simulation, at the cost of congestion being an estimate.
#pragma once

#include <vector>

#include "common/pool.hpp"
#include "simnet/network.hpp"

namespace hps::simnet {

class PacketFlowModel final : public NetworkModel, private des::Handler {
 public:
  PacketFlowModel(des::Engine& eng, const topo::Topology& topo, NetConfig cfg,
                  MessageSink& sink);

  void inject(MsgId id, NodeId src, NodeId dst, std::uint64_t bytes) override;
  std::string name() const override { return "packet-flow"; }

 private:
  enum : std::uint64_t { kHopEnter = 0, kHopExit = 1, kDeliver = 2 };

  struct MsgState {
    MsgId id = 0;
    std::uint32_t packets_remaining = 0;
    std::vector<LinkId> route;
  };
  struct Packet {
    std::uint32_t msg = 0;
    std::uint32_t hop = 0;
    std::uint32_t bytes = 0;
    LinkId on_link = -1;  // link currently being traversed (for exit accounting)
  };

  void handle(des::Engine& eng, std::uint64_t a, std::uint64_t b) override;
  void hop_enter(std::uint32_t pkt_idx);
  void hop_exit(std::uint32_t pkt_idx);
  void finish_packet(std::uint32_t pkt_idx);

  IndexPool<MsgState> msgs_;
  IndexPool<Packet> packets_;
  std::vector<std::int32_t> link_in_flight_;  // packets currently sharing each link
  std::vector<SimTime> nic_free_at_;
};

}  // namespace hps::simnet
