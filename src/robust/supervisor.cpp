#include "robust/supervisor.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/error.hpp"
#include "robust/interrupt.hpp"
#include "robust/ipc.hpp"
#include "telemetry/telemetry.hpp"

namespace hps::robust {

namespace {

using Clock = std::chrono::steady_clock;

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32(const std::string& s, std::size_t off) {
  const auto* b = reinterpret_cast<const unsigned char*>(s.data() + off);
  return static_cast<std::uint32_t>(b[0]) | (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) | (static_cast<std::uint32_t>(b[3]) << 24);
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint64_t get_u64(const std::string& s, std::size_t off) {
  return static_cast<std::uint64_t>(get_u32(s, off)) |
         (static_cast<std::uint64_t>(get_u32(s, off + 4)) << 32);
}

/// kTask payload header: u32 task index | u32 attempt | u64 trace id, then
/// the opaque task bytes. Both ends are the same binary (fork without exec),
/// so this layout can change freely as long as both sides agree.
constexpr std::size_t kTaskHeaderBytes = 16;

/// Ignore SIGPIPE for the supervisor's lifetime (a worker dying between our
/// poll and our dispatch write must surface as EPIPE, not kill the study).
class SigpipeIgnore {
 public:
  SigpipeIgnore() {
    struct sigaction sa{};
    sa.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &sa, &saved_);
  }
  ~SigpipeIgnore() { ::sigaction(SIGPIPE, &saved_, nullptr); }

 private:
  struct sigaction saved_{};
};

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Child entry point after fork. Never returns; exits via std::_Exit so no
/// inherited destructors / atexit handlers run in the child.
[[noreturn]] void worker_main(int task_fd, int result_fd, const WorkerFn& fn,
                              const SupervisorOptions& opts) {
  ipc::set_worker_result_fd(result_fd);
  std::signal(SIGPIPE, SIG_IGN);  // parent death → EPIPE, handled below

  if (opts.rss_limit_mb > 0) {
    rlimit rl{};
    rl.rlim_cur = rl.rlim_max =
        static_cast<rlim_t>(opts.rss_limit_mb) * 1024u * 1024u;
    ::setrlimit(RLIMIT_AS, &rl);  // a runaway alloc now throws bad_alloc
  }

  // Frame writes are shared between the task loop (results) and the
  // heartbeat thread; the mutex keeps frames from interleaving mid-byte.
  std::mutex write_mu;
  if (opts.watchdog_timeout_s > 0) {
    std::thread([&write_mu, result_fd, interval = opts.heartbeat_interval_s] {
      const auto period = std::chrono::duration<double>(interval);
      for (;;) {
        {
          std::lock_guard<std::mutex> lk(write_mu);
          ipc::write_frame(result_fd, {ipc::MsgType::kHeartbeat, {}});
        }
        std::this_thread::sleep_for(period);
      }
    }).detach();  // dies with the process (_Exit)
  }

  for (;;) {
    ipc::Message m;
    const ipc::ReadStatus st = ipc::read_message(task_fd, m);
    if (st == ipc::ReadStatus::kEof) std::_Exit(0);  // parent closed: done
    if (st != ipc::ReadStatus::kMessage) std::_Exit(3);
    if (m.type == ipc::MsgType::kShutdown) std::_Exit(0);
    if (m.type != ipc::MsgType::kTask || m.payload.size() < kTaskHeaderBytes) std::_Exit(3);

    WorkerEnv env;
    env.task_index = get_u32(m.payload, 0);
    env.attempt = static_cast<int>(get_u32(m.payload, 4));
    const telemetry::TraceIdScope trace_scope(get_u64(m.payload, 8));
    const std::string task = m.payload.substr(kTaskHeaderBytes);

    ipc::Message reply;
    reply.payload.reserve(64);
    put_u32(reply.payload, static_cast<std::uint32_t>(env.task_index));
    try {
      reply.type = ipc::MsgType::kResult;
      reply.payload += fn(task, env);
    } catch (const std::exception& e) {
      reply.type = ipc::MsgType::kError;
      reply.payload.resize(4);  // keep the index prefix, drop partial result
      reply.payload += e.what();
    } catch (...) {
      reply.type = ipc::MsgType::kError;
      reply.payload.resize(4);
      reply.payload += "non-std exception in worker";
    }
    std::lock_guard<std::mutex> lk(write_mu);
    if (!ipc::write_frame(result_fd, reply)) std::_Exit(4);  // parent gone
  }
}

// ---------------------------------------------------------------------------
// Supervisor side
// ---------------------------------------------------------------------------

struct Worker {
  pid_t pid = -1;
  int task_fd = -1;    ///< parent's write end of the task pipe
  int result_fd = -1;  ///< parent's read end of the result pipe
  ipc::FrameDecoder dec;
  bool alive = false;
  long task = -1;  ///< in-flight task index; -1 when idle
  int attempt = 0;
  Clock::time_point last_heard;
  bool watchdog_killed = false;
};

struct Pending {
  std::size_t index;
  int attempt;  ///< attempt number this dispatch would be (0-based)
  Clock::time_point ready;
};

class Supervisor {
 public:
  Supervisor(const std::vector<std::string>& tasks, const WorkerFn& fn,
             const SupervisorOptions& opts, const ResultHook& hook)
      : tasks_(tasks), fn_(fn), opts_(opts), hook_(hook), results_(tasks.size()) {}

  std::vector<TaskResult> run();

 private:
  void spawn_worker();
  void dispatch();
  void pump(Worker& w);
  void on_message(Worker& w, const ipc::Message& m);
  void handle_death(Worker& w, bool force_kill, const std::string& why);
  void fail_attempt(std::size_t idx, int attempt, TaskResult::Status verdict, int sig,
                    int exit_code, const std::string& what);
  void finalize(std::size_t idx);
  void check_watchdog();
  void drain_interrupted();
  void shutdown_pool();
  int poll_timeout_ms() const;
  std::size_t alive_count() const;
  std::size_t unfinished() const { return tasks_.size() - finals_; }

  const std::vector<std::string>& tasks_;
  const WorkerFn& fn_;
  const SupervisorOptions& opts_;
  const ResultHook& hook_;
  std::vector<TaskResult> results_;
  std::vector<bool> final_;
  std::deque<Pending> pending_;
  std::vector<Worker> workers_;
  std::size_t finals_ = 0;
  bool interrupted_ = false;
};

std::size_t Supervisor::alive_count() const {
  std::size_t n = 0;
  for (const Worker& w : workers_)
    if (w.alive) ++n;
  return n;
}

void Supervisor::spawn_worker() {
  int task_pipe[2] = {-1, -1};
  int result_pipe[2] = {-1, -1};
  if (::pipe(task_pipe) != 0) HPS_THROW("supervisor: pipe() failed: " + std::string(std::strerror(errno)));
  if (::pipe(result_pipe) != 0) {
    ::close(task_pipe[0]);
    ::close(task_pipe[1]);
    HPS_THROW("supervisor: pipe() failed: " + std::string(std::strerror(errno)));
  }

  // Flush stdio so buffered output is not duplicated into the child.
  std::fflush(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    for (int fd : {task_pipe[0], task_pipe[1], result_pipe[0], result_pipe[1]}) ::close(fd);
    HPS_THROW("supervisor: fork() failed: " + std::string(std::strerror(errno)));
  }
  if (pid == 0) {
    // Child: drop the parent ends AND every sibling's pipe ends we inherited,
    // so a sibling's EOF/cleanup semantics are not held hostage by us.
    ::close(task_pipe[1]);
    ::close(result_pipe[0]);
    for (const Worker& w : workers_) {
      if (w.task_fd >= 0) ::close(w.task_fd);
      if (w.result_fd >= 0) ::close(w.result_fd);
    }
    worker_main(task_pipe[0], result_pipe[1], fn_, opts_);  // noreturn
  }
  ::close(task_pipe[0]);
  ::close(result_pipe[1]);
  // The supervisor reads results via poll(): nonblocking so one chatty worker
  // cannot stall the loop.
  ::fcntl(result_pipe[0], F_SETFL, O_NONBLOCK);

  Worker w;
  w.pid = pid;
  w.task_fd = task_pipe[1];
  w.result_fd = result_pipe[0];
  w.alive = true;
  w.last_heard = Clock::now();
  // Reuse a dead slot if any (keeps the vector bounded by peak pool size).
  for (Worker& slot : workers_) {
    if (!slot.alive && slot.pid == -1) {
      slot = std::move(w);
      telemetry::Registry::global().counter("robust.worker_spawned").add(1);
      return;
    }
  }
  workers_.push_back(std::move(w));
  telemetry::Registry::global().counter("robust.worker_spawned").add(1);
}

void Supervisor::finalize(std::size_t idx) {
  final_[idx] = true;
  ++finals_;
  if (hook_) hook_(idx, results_[idx]);
}

void Supervisor::fail_attempt(std::size_t idx, int attempt, TaskResult::Status verdict,
                              int sig, int exit_code, const std::string& what) {
  if (attempt < opts_.max_retries && !interrupted_) {
    const double backoff = std::min(opts_.backoff_base_s * std::ldexp(1.0, attempt),
                                    opts_.backoff_max_s);
    pending_.push_back({idx, attempt + 1,
                        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                           std::chrono::duration<double>(backoff))});
    telemetry::Registry::global().counter("robust.worker_retries").add(1);
    return;
  }
  TaskResult& r = results_[idx];
  r.status = verdict;
  r.signal = sig;
  r.exit_code = exit_code;
  r.attempts = attempt + 1;
  r.detail = what;
  finalize(idx);
}

void Supervisor::handle_death(Worker& w, bool force_kill, const std::string& why) {
  if (!w.alive) return;
  if (force_kill) {
    ::kill(w.pid, SIGKILL);
    telemetry::Registry::global().counter("robust.worker_killed").add(1);
  }
  int status = 0;
  ::waitpid(w.pid, &status, 0);

  int sig = 0, exit_code = 0;
  std::string death = why;
  if (WIFSIGNALED(status)) {
    sig = WTERMSIG(status);
    death += " (worker died on signal " + std::to_string(sig) + ")";
  } else if (WIFEXITED(status)) {
    exit_code = WEXITSTATUS(status);
    death += " (worker exited with status " + std::to_string(exit_code) + ")";
  }

  const long idx = w.task;
  const int attempt = w.attempt;
  const bool timed_out = w.watchdog_killed;

  ::close(w.task_fd);
  ::close(w.result_fd);
  w.alive = false;
  w.pid = -1;
  w.task_fd = w.result_fd = -1;
  w.task = -1;
  w.dec = ipc::FrameDecoder();
  w.watchdog_killed = false;

  if (idx >= 0 && !final_[static_cast<std::size_t>(idx)]) {
    const auto verdict = timed_out ? TaskResult::Status::kTimeout : TaskResult::Status::kCrash;
    fail_attempt(static_cast<std::size_t>(idx), attempt, verdict, sig, exit_code, death);
  }
}

void Supervisor::on_message(Worker& w, const ipc::Message& m) {
  w.last_heard = Clock::now();
  switch (m.type) {
    case ipc::MsgType::kHeartbeat:
      return;
    case ipc::MsgType::kResult:
    case ipc::MsgType::kError: {
      if (m.payload.size() < 4) {
        handle_death(w, /*force_kill=*/true, "worker sent a truncated reply");
        return;
      }
      const std::size_t idx = get_u32(m.payload, 0);
      if (w.task < 0 || idx != static_cast<std::size_t>(w.task) || idx >= tasks_.size()) {
        handle_death(w, /*force_kill=*/true, "worker replied for a task it was not assigned");
        return;
      }
      const int attempt = w.attempt;
      w.task = -1;  // idle again
      if (final_[idx]) return;
      if (m.type == ipc::MsgType::kResult) {
        TaskResult& r = results_[idx];
        r.status = TaskResult::Status::kOk;
        r.payload = m.payload.substr(4);
        r.attempts = attempt + 1;
        finalize(idx);
      } else {
        // A structured in-worker failure (the WorkerFn threw). Deterministic,
        // so retrying would reproduce it: final immediately.
        TaskResult& r = results_[idx];
        r.status = TaskResult::Status::kFailed;
        r.detail = m.payload.substr(4);
        r.attempts = attempt + 1;
        finalize(idx);
      }
      return;
    }
    default:
      handle_death(w, /*force_kill=*/true,
                   std::string("worker sent unexpected ") + ipc::msg_type_name(m.type));
  }
}

void Supervisor::pump(Worker& w) {
  char buf[65536];
  for (;;) {
    const ssize_t n = ::read(w.result_fd, buf, sizeof buf);
    if (n > 0) {
      w.dec.feed(buf, static_cast<std::size_t>(n));
      ipc::Message m;
      for (;;) {
        const auto st = w.dec.next(m);
        if (st == ipc::FrameDecoder::Status::kMessage) {
          on_message(w, m);
          if (!w.alive) return;
          continue;
        }
        if (st == ipc::FrameDecoder::Status::kCorrupt) {
          // Garbage mid-stream: the worker is compromised even if it is
          // still breathing. Kill it; the in-flight task is retried.
          handle_death(w, /*force_kill=*/true,
                       std::string("worker result stream is corrupt (") +
                           w.dec.corrupt_reason() + ")");
          return;
        }
        break;  // kNeedMore
      }
      continue;
    }
    if (n == 0) {  // EOF: the worker is gone
      handle_death(w, /*force_kill=*/false, "worker closed its result pipe");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    handle_death(w, /*force_kill=*/true,
                 "result pipe read failed: " + std::string(std::strerror(errno)));
    return;
  }
}

void Supervisor::dispatch() {
  const auto now = Clock::now();
  // Keep the pool at strength while work remains.
  while (alive_count() < static_cast<std::size_t>(opts_.workers) &&
         alive_count() < unfinished() && !interrupted_)
    spawn_worker();

  for (Worker& w : workers_) {
    if (!w.alive || w.task >= 0) continue;
    // Find a ready pending task.
    auto it = pending_.begin();
    while (it != pending_.end() && it->ready > now) ++it;
    if (it == pending_.end()) break;
    const Pending p = *it;
    pending_.erase(it);

    ipc::Message m;
    m.type = ipc::MsgType::kTask;
    m.payload.reserve(kTaskHeaderBytes + tasks_[p.index].size());
    put_u32(m.payload, static_cast<std::uint32_t>(p.index));
    put_u32(m.payload, static_cast<std::uint32_t>(p.attempt));
    put_u64(m.payload, opts_.trace_id);
    m.payload += tasks_[p.index];
    if (!ipc::write_frame(w.task_fd, m)) {
      // The worker died between poll rounds; the attempt never started, so
      // requeue without consuming it and reap the corpse.
      pending_.push_front(p);
      handle_death(w, /*force_kill=*/true, "task dispatch failed (worker gone)");
      continue;
    }
    w.task = static_cast<long>(p.index);
    w.attempt = p.attempt;
    w.last_heard = now;
  }
}

void Supervisor::check_watchdog() {
  if (opts_.watchdog_timeout_s <= 0) return;
  const auto now = Clock::now();
  const auto limit = std::chrono::duration<double>(opts_.watchdog_timeout_s);
  for (Worker& w : workers_) {
    if (!w.alive || w.task < 0) continue;
    if (now - w.last_heard > limit) {
      w.watchdog_killed = true;
      handle_death(w, /*force_kill=*/true,
                   "watchdog: worker silent for over " +
                       std::to_string(opts_.watchdog_timeout_s) + "s");
    }
  }
}

int Supervisor::poll_timeout_ms() const {
  // 200ms cap keeps the loop responsive to SIGINT and respawns even when no
  // fd becomes readable.
  double timeout = 0.2;
  const auto now = Clock::now();
  if (opts_.watchdog_timeout_s > 0) {
    for (const Worker& w : workers_) {
      if (!w.alive || w.task < 0) continue;
      const double left =
          opts_.watchdog_timeout_s -
          std::chrono::duration<double>(now - w.last_heard).count();
      timeout = std::min(timeout, std::max(left, 0.0));
    }
  }
  for (const Pending& p : pending_) {
    const double left = std::chrono::duration<double>(p.ready - now).count();
    timeout = std::min(timeout, std::max(left, 0.0));
  }
  return static_cast<int>(timeout * 1000.0) + 1;
}

void Supervisor::drain_interrupted() {
  interrupted_ = true;
  for (Worker& w : workers_) {
    if (!w.alive) continue;
    // In-flight work is abandoned, not failed: detach the task first so
    // handle_death does not classify it as a crash.
    w.task = -1;
    handle_death(w, /*force_kill=*/true, "study interrupted");
  }
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (final_[i]) continue;
    results_[i].status = TaskResult::Status::kSkipped;
    results_[i].detail = "study interrupted before this task ran";
    finalize(i);
  }
  pending_.clear();
}

void Supervisor::shutdown_pool() {
  for (Worker& w : workers_) {
    if (!w.alive) continue;
    ipc::write_frame(w.task_fd, {ipc::MsgType::kShutdown, {}});
    ::close(w.task_fd);
    ::close(w.result_fd);
    int status = 0;
    ::waitpid(w.pid, &status, 0);
    w.alive = false;
    w.pid = -1;
    w.task_fd = w.result_fd = -1;
  }
}

std::vector<TaskResult> Supervisor::run() {
  final_.assign(tasks_.size(), false);
  for (std::size_t i = 0; i < tasks_.size(); ++i)
    pending_.push_back({i, 0, Clock::now()});

  SigpipeIgnore sigpipe;
  while (finals_ < tasks_.size()) {
    if (interrupt_requested()) {
      drain_interrupted();
      break;
    }
    dispatch();
    check_watchdog();

    std::vector<pollfd> fds;
    std::vector<std::size_t> owner;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (!workers_[i].alive) continue;
      fds.push_back({workers_[i].result_fd, POLLIN, 0});
      owner.push_back(i);
    }
    if (fds.empty()) {
      // All workers dead (e.g. every pending task is in backoff): sleep until
      // the next dispatch opportunity.
      if (finals_ < tasks_.size())
        std::this_thread::sleep_for(std::chrono::milliseconds(poll_timeout_ms()));
      continue;
    }
    const int rc = ::poll(fds.data(), fds.size(), poll_timeout_ms());
    if (rc < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks the flag
      HPS_THROW("supervisor: poll() failed: " + std::string(std::strerror(errno)));
    }
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Worker& w = workers_[owner[k]];
      if (w.alive) pump(w);
    }
  }
  shutdown_pool();
  return std::move(results_);
}

}  // namespace

const char* task_status_name(TaskResult::Status s) {
  switch (s) {
    case TaskResult::Status::kOk: return "ok";
    case TaskResult::Status::kFailed: return "failed";
    case TaskResult::Status::kCrash: return "crash";
    case TaskResult::Status::kTimeout: return "timeout";
    case TaskResult::Status::kSkipped: return "skipped";
  }
  return "?";
}

std::vector<TaskResult> run_supervised(const std::vector<std::string>& tasks,
                                       const WorkerFn& fn, const SupervisorOptions& opts,
                                       const ResultHook& on_result) {
  if (tasks.empty()) return {};
  SupervisorOptions eff = opts;
  eff.workers = std::max(1, std::min<int>(eff.workers, static_cast<int>(tasks.size())));
  eff.max_retries = std::max(0, eff.max_retries);
  Supervisor sup(tasks, fn, eff, on_result);
  return sup.run();
}

}  // namespace hps::robust
