// Deterministic fault injection.
//
// A FaultPlan — installed programmatically or parsed from the HPS_FAULT
// environment variable — arms instrumented sites in MFACT, the three network
// models, trace generation, and (implicitly, through CancelToken) the DES
// engine. Each FaultSpec matches a site plus optional corpus spec id and
// scheme, so a single trace×scheme execution can be made to throw, fail an
// allocation, stall, cancel, or kill the process — deterministically, which
// is what makes the recovery paths (run guards, crash-safe journal resume)
// testable in CI.
//
// Grammar (HPS_FAULT): specs separated by ';', fields by ',':
//
//   site=<mfact|packet|flow|packet-flow|generate
//         |serve.cache-insert|serve.ledger-append|serve.dispatch
//         |serve.cache-spill|serve.cache-recover|serve.scrub>      required
//   spec=<id>          corpus spec to hit (default: any)
//   scheme=<mfact|packet|flow|packet-flow>          (default: any)
//   kind=<throw|alloc|delay|cancel|exit|segv|abort> (default: throw)
//   p=<0..1>,seed=<n>  deterministic hashed selection (default: always fire)
//   delay_ms=<n>       per-hit sleep for kind=delay (default: 20)
//   exit_code=<n>      process exit status for kind=exit (default: 77)
//
// Example: HPS_FAULT="site=packet,spec=3,kind=alloc;site=generate,kind=throw"
//
// The disabled fast path — no plan installed — is a single relaxed atomic
// load, so the instrumented sites cost nothing in production runs and results
// stay bit-identical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "robust/cancel.hpp"

namespace hps::robust {

enum class FaultSite : std::uint8_t {
  kMfact,
  kPacket,
  kFlow,
  kPacketFlow,
  kGenerate,
  // Serving-path sites (hpcsweepd): arm the overload/degradation paths.
  // kDelay at kServeDispatch stretches execution (trips deadlines/shedding);
  // kThrow at the cache-insert/ledger-append sites exercises the paths that
  // must swallow I/O failure without taking a request down.
  kServeCacheInsert,   ///< dispatcher, before the shared-cache insert
  kServeLedgerAppend,  ///< serve-ledger append of a finished request
  kServeDispatch,      ///< dispatcher, before run_study
  // Durable-cache sites (docs/serving.md): deterministic corruption /
  // failure injection for the crash-durability paths. kThrow at the spill
  // site loses a durable append (memory cache unaffected); kThrow at the
  // recover site quarantines the record being recovered instead of crashing
  // the startup; kThrow at the scrub site aborts one scrubber pass.
  kServeCacheSpill,    ///< before appending one record to the spill file
  kServeCacheRecover,  ///< per record while recovering the spill file
  kServeScrub,         ///< at the start of one background scrub pass
};
const char* fault_site_name(FaultSite s);

enum class FaultKind : std::uint8_t {
  kThrow,      ///< throw hps::Error at the site
  kAllocFail,  ///< throw std::bad_alloc at the site
  kDelay,      ///< sleep delay_ms per hit (trips a wall-deadline budget)
  kCancel,     ///< trip the ambient CancelToken with CancelReason::kInjected
  kExit,       ///< std::_Exit(exit_code): simulates a mid-study crash/kill
  kSegv,       ///< raise(SIGSEGV) with the default disposition: hard crash
  kAbort,      ///< std::abort(): SIGABRT death, as a failed assert would
};
const char* fault_kind_name(FaultKind k);

struct FaultSpec {
  FaultSite site = FaultSite::kPacket;
  int spec_id = -1;  ///< corpus spec id to match; -1 = any
  int scheme = -1;   ///< core::Scheme index (0=mfact,1=packet,2=flow,3=packet-flow); -1 = any
  FaultKind kind = FaultKind::kThrow;
  /// Fire with this probability, decided by a deterministic hash of
  /// (seed, site, spec, scheme) — the same plan always hits the same runs.
  double probability = 1.0;
  std::uint64_t seed = 0;
  int delay_ms = 20;
  int exit_code = 77;
};

struct FaultPlan {
  std::vector<FaultSpec> specs;
  bool empty() const { return specs.empty(); }
};

/// Parse the HPS_FAULT grammar above. Throws hps::Error on unknown keys,
/// sites, kinds, or malformed fields.
FaultPlan parse_fault_plan(const std::string& text);

/// Install / replace / clear the global plan (not thread-safe against
/// concurrently executing fault points; install before spawning workers).
void set_fault_plan(FaultPlan plan);
void clear_fault_plan();
bool fault_plan_active();

/// Install the plan from $HPS_FAULT if set (no-op otherwise). Called by
/// core::run_study so studies honor the variable without tool changes.
void init_faults_from_env();

/// Ambient per-thread attribution for fault matching: which corpus spec and
/// scheme the current thread is executing, and the CancelToken guarding it.
struct FaultContext {
  int spec_id = -1;
  int scheme = -1;
  CancelToken* token = nullptr;
};

FaultContext current_fault_context();

/// RAII: install a context for the current scope, restoring the previous one
/// on exit. Nest freely (the runner sets spec_id; each scheme adds itself).
class FaultScope {
 public:
  explicit FaultScope(const FaultContext& ctx);
  ~FaultScope();
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  FaultContext saved_;
};

/// Instrumented site: fires any matching FaultSpec of the installed plan.
/// One relaxed atomic load when no plan is installed.
void fault_point(FaultSite site);

}  // namespace hps::robust
