// CRC-framed message transport, shared by the supervisor ↔ worker pipes
// (supervisor.hpp) and the hpcsweepd request socket (src/serve/).
//
// Messages reuse the HPSJ record framing from journal.hpp —
//
//   u32 payload_len | u32 crc32(payload) | payload
//
// where the payload's first byte is the message type and the rest is opaque
// to this layer. The CRC is not paranoia: a worker that is dying (heap
// corruption, a signal landing mid-write) can emit a torn or garbled frame —
// and an arbitrary network client can send literal garbage — so both readers
// must detect that deterministically and treat the stream as dead rather
// than deserialize garbage.
//
// Two read paths share one decoder:
//  - workers (and the serve client) block on their fd (read_message), and
//  - the supervisor and server poll many fds, feeding whatever bytes arrive
//    into a per-peer FrameDecoder that yields complete messages as they
//    close (kNeedMore in between, kCorrupt permanently once the stream is
//    unframeable).
//
// Both paths take the same per-stream frame-size cap, defaulting to
// kMaxFrameBytes — the one constant the journal's record cap also aliases —
// so "how big may a frame be" has exactly one answer per transport, chosen
// where the stream is opened (the server caps client *requests* far lower).
#pragma once

#include <cstdint>
#include <string>

namespace hps::robust::ipc {

/// First payload byte of every frame.
enum class MsgType : std::uint8_t {
  kTask = 1,       ///< supervisor → worker: one unit of work
  kResult = 2,     ///< worker → supervisor: completed task payload
  kHeartbeat = 3,  ///< worker → supervisor: liveness (watchdog food)
  kError = 4,      ///< worker → supervisor: task failed with an exception
  kShutdown = 5,   ///< supervisor → worker: drain and exit

  // hpcsweepd socket transport (src/serve/protocol.hpp) — same framing, a
  // disjoint type range so a frame can never be mistaken across transports.
  kRequest = 16,     ///< client → server: one serve::Request
  kRecord = 17,      ///< server → client: one ledger record (JSON line)
  kSummary = 18,     ///< server → client: terminal reply for a request
  kReject = 19,      ///< server → client: admission rejection (terminal)
  kPong = 20,        ///< server → client: liveness reply
  kStatsReply = 21,  ///< server → client: serve::Stats snapshot
  kMetricsReply = 22,  ///< server → client: serve::MetricsReply snapshot
};

const char* msg_type_name(MsgType t);

struct Message {
  MsgType type = MsgType::kHeartbeat;
  std::string payload;
};

/// Default per-stream frame cap: frames larger than this are rejected as
/// corrupt length fields. The journal's record cap is this same constant
/// (robust/journal.cpp), not a second magic number.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Frame a message: length/CRC header plus type byte plus payload.
std::string encode_frame(const Message& m);

/// Write the whole frame to `fd`, retrying short writes and EINTR. Returns
/// false on any hard write error (EPIPE after the peer died, EBADF, ...).
/// The caller must have SIGPIPE ignored or blocked.
bool write_frame(int fd, const Message& m);

/// Incremental frame decoder for a nonblocking stream.
class FrameDecoder {
 public:
  enum class Status {
    kNeedMore,  ///< no complete frame buffered yet
    kMessage,   ///< one message produced; call next() again for more
    kCorrupt,   ///< stream is unframeable (bad CRC / oversized length)
  };

  /// `max_frame` caps the length field this stream will accept; anything
  /// larger poisons the stream as corrupt (it is never allocated).
  explicit FrameDecoder(std::uint32_t max_frame = kMaxFrameBytes)
      : max_frame_(max_frame) {}

  /// Buffer `n` raw bytes read off the pipe.
  void feed(const char* data, std::size_t n);

  /// Try to decode the next buffered frame into `out`. Once kCorrupt is
  /// returned the decoder stays corrupt: framing has no resync point, so the
  /// rest of the stream is untrustworthy by construction.
  Status next(Message& out);

  bool corrupt() const { return corrupt_; }
  /// Why the stream went corrupt ("" while healthy): "zero-length frame",
  /// "oversized frame", or "crc mismatch". One vocabulary for supervisor
  /// verdicts, server rejections, and test assertions.
  const char* corrupt_reason() const { return reason_; }
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;
  std::uint32_t max_frame_ = kMaxFrameBytes;
  bool corrupt_ = false;
  const char* reason_ = "";
};

enum class ReadStatus {
  kMessage,  ///< one complete message decoded
  kEof,      ///< orderly end of stream (writer closed the pipe)
  kCorrupt,  ///< framing violation
  kError,    ///< read(2) failed hard
};

const char* read_status_name(ReadStatus s);

/// Blocking convenience for the worker / serve-client side: read exactly one
/// message off a blocking fd. `max_frame` mirrors FrameDecoder's cap.
ReadStatus read_message(int fd, Message& out,
                        std::uint32_t max_frame = kMaxFrameBytes);

/// The worker's result-pipe fd, valid only inside a worker process spawned
/// by run_supervised (-1 elsewhere). Exposed so tests can inject protocol
/// garbage into the stream exactly as a corrupted worker would.
int worker_result_fd();

/// Internal: set by the supervisor's child bootstrap.
void set_worker_result_fd(int fd);

}  // namespace hps::robust::ipc
