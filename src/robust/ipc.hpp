// Supervisor ↔ worker pipe protocol.
//
// The process-isolated study mode (supervisor.hpp) shards work over plain
// POSIX pipes. Messages reuse the HPSJ record framing from journal.hpp —
//
//   u32 payload_len | u32 crc32(payload) | payload
//
// where the payload's first byte is the message type and the rest is opaque
// to this layer. The CRC is not paranoia: a worker that is dying (heap
// corruption, a signal landing mid-write) can emit a torn or garbled frame,
// and the supervisor must detect that deterministically and treat it as a
// worker death rather than deserialize garbage into a study outcome.
//
// Two read paths share one decoder:
//  - workers block on their task pipe (read_message), and
//  - the supervisor polls many result pipes, feeding whatever bytes arrive
//    into a per-worker FrameDecoder that yields complete messages as they
//    close (kNeedMore in between, kCorrupt permanently once the stream is
//    unframeable).
#pragma once

#include <cstdint>
#include <string>

namespace hps::robust::ipc {

/// First payload byte of every frame.
enum class MsgType : std::uint8_t {
  kTask = 1,       ///< supervisor → worker: one unit of work
  kResult = 2,     ///< worker → supervisor: completed task payload
  kHeartbeat = 3,  ///< worker → supervisor: liveness (watchdog food)
  kError = 4,      ///< worker → supervisor: task failed with an exception
  kShutdown = 5,   ///< supervisor → worker: drain and exit
};

const char* msg_type_name(MsgType t);

struct Message {
  MsgType type = MsgType::kHeartbeat;
  std::string payload;
};

/// Frames larger than this are rejected as corrupt length fields, mirroring
/// the journal's cap (serialized outcomes are a few KB).
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Frame a message: length/CRC header plus type byte plus payload.
std::string encode_frame(const Message& m);

/// Write the whole frame to `fd`, retrying short writes and EINTR. Returns
/// false on any hard write error (EPIPE after the peer died, EBADF, ...).
/// The caller must have SIGPIPE ignored or blocked.
bool write_frame(int fd, const Message& m);

/// Incremental frame decoder for a nonblocking stream.
class FrameDecoder {
 public:
  enum class Status {
    kNeedMore,  ///< no complete frame buffered yet
    kMessage,   ///< one message produced; call next() again for more
    kCorrupt,   ///< stream is unframeable (bad CRC / oversized length)
  };

  /// Buffer `n` raw bytes read off the pipe.
  void feed(const char* data, std::size_t n);

  /// Try to decode the next buffered frame into `out`. Once kCorrupt is
  /// returned the decoder stays corrupt: framing has no resync point, so the
  /// rest of the stream is untrustworthy by construction.
  Status next(Message& out);

  bool corrupt() const { return corrupt_; }
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;
  bool corrupt_ = false;
};

enum class ReadStatus {
  kMessage,  ///< one complete message decoded
  kEof,      ///< orderly end of stream (writer closed the pipe)
  kCorrupt,  ///< framing violation
  kError,    ///< read(2) failed hard
};

/// Blocking convenience for the worker side: read exactly one message off a
/// blocking fd.
ReadStatus read_message(int fd, Message& out);

/// The worker's result-pipe fd, valid only inside a worker process spawned
/// by run_supervised (-1 elsewhere). Exposed so tests can inject protocol
/// garbage into the stream exactly as a corrupted worker would.
int worker_result_fd();

/// Internal: set by the supervisor's child bootstrap.
void set_worker_result_fd(int fd);

}  // namespace hps::robust::ipc
