#include "robust/journal.hpp"

#include <array>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <unistd.h>

#include "common/error.hpp"
#include "robust/ipc.hpp"

namespace hps::robust {

namespace {

constexpr char kMagic[4] = {'H', 'P', 'S', 'J'};
constexpr std::uint32_t kJournalVersion = 1;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

bool read_u32(std::FILE* f, std::uint32_t& v) {
  unsigned char b[4];
  if (std::fread(b, 1, 4, f) != 4) return false;
  v = static_cast<std::uint32_t>(b[0]) | (static_cast<std::uint32_t>(b[1]) << 8) |
      (static_cast<std::uint32_t>(b[2]) << 16) | (static_cast<std::uint32_t>(b[3]) << 24);
  return true;
}

std::string header_bytes(const std::string& key) {
  std::string h(kMagic, sizeof(kMagic));
  put_u32(h, kJournalVersion);
  put_u32(h, static_cast<std::uint32_t>(key.size()));
  put_u32(h, crc32(key.data(), key.size()));
  h += key;
  return h;
}

/// Sanity cap on a single record — anything larger is a torn/corrupt length
/// field, not a real outcome (serialized outcomes are a few KB). The cap is
/// the transport-wide frame limit, not a second magic number.
constexpr std::uint32_t kMaxRecordBytes = ipc::kMaxFrameBytes;

}  // namespace

bool sync_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

bool sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

std::uint32_t crc32(const void* data, std::size_t len) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xffffffffu;
  for (std::size_t i = 0; i < len; ++i) c = table[(c ^ p[i]) & 0xff] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

JournalContents read_journal(const std::string& path, const std::string& key) {
  JournalContents out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return out;
  out.existed = true;

  std::error_code ec;
  const std::uint64_t file_size = std::filesystem::file_size(path, ec);

  char magic[4];
  std::uint32_t version = 0, key_len = 0, key_crc = 0;
  if (std::fread(magic, 1, 4, f) != 4 || std::memcmp(magic, kMagic, 4) != 0 ||
      !read_u32(f, version) || version != kJournalVersion || !read_u32(f, key_len) ||
      !read_u32(f, key_crc) || key_len != key.size()) {
    std::fclose(f);
    out.torn_bytes = ec ? 0 : file_size;
    return out;
  }
  std::string stored_key(key_len, '\0');
  if (key_len > 0 && std::fread(stored_key.data(), 1, key_len, f) != key_len) {
    std::fclose(f);
    out.torn_bytes = ec ? 0 : file_size;
    return out;
  }
  if (stored_key != key || crc32(stored_key.data(), stored_key.size()) != key_crc) {
    std::fclose(f);
    out.torn_bytes = ec ? 0 : file_size;
    return out;
  }
  out.key_matched = true;
  out.valid_bytes = 16 + key_len;

  for (;;) {
    std::uint32_t len = 0, crc = 0;
    if (!read_u32(f, len) || !read_u32(f, crc)) break;
    if (len > kMaxRecordBytes) break;
    std::string payload(len, '\0');
    if (len > 0 && std::fread(payload.data(), 1, len, f) != len) break;
    if (crc32(payload.data(), payload.size()) != crc) break;
    out.records.push_back(std::move(payload));
    out.valid_bytes += 8 + len;
  }
  std::fclose(f);
  if (!ec && file_size > out.valid_bytes) out.torn_bytes = file_size - out.valid_bytes;
  return out;
}

JournalWriter::~JournalWriter() { close(); }

void JournalWriter::open_fresh(const std::string& path, const std::string& key) {
  close();
  f_ = std::fopen(path.c_str(), "wb");
  if (f_ == nullptr) HPS_THROW("journal: cannot open " + path + " for writing");
  path_ = path;
  const std::string h = header_bytes(key);
  if (std::fwrite(h.data(), 1, h.size(), f_) != h.size())
    HPS_THROW("journal: header write failed for " + path);
  std::fflush(f_);
  ::fsync(fileno(f_));
  sync_parent_dir(path);  // the creat() itself must survive power loss too
}

void JournalWriter::open_resume(const std::string& path, std::uint64_t valid_bytes) {
  close();
  std::error_code ec;
  std::filesystem::resize_file(path, valid_bytes, ec);
  if (ec) HPS_THROW("journal: cannot truncate " + path + " to valid prefix: " + ec.message());
  f_ = std::fopen(path.c_str(), "ab");
  if (f_ == nullptr) HPS_THROW("journal: cannot reopen " + path + " for append");
  path_ = path;
}

void JournalWriter::append(const std::string& record) {
  HPS_CHECK(f_ != nullptr);
  std::string frame;
  frame.reserve(8 + record.size());
  put_u32(frame, static_cast<std::uint32_t>(record.size()));
  put_u32(frame, crc32(record.data(), record.size()));
  frame += record;
  if (std::fwrite(frame.data(), 1, frame.size(), f_) != frame.size())
    HPS_THROW("journal: append failed for " + path_);
  std::fflush(f_);
  // fflush hands the record to the kernel (survives our death); fsync hands
  // it to the disk (survives the machine's). Appends are per completed
  // trace, so the sync is far off any hot path.
  ::fsync(fileno(f_));
}

void JournalWriter::close() {
  if (f_ != nullptr) {
    std::fclose(f_);
    f_ = nullptr;
  }
}

}  // namespace hps::robust
