#include "robust/cancel.hpp"

#include <algorithm>
#include <string>

#include "robust/interrupt.hpp"

namespace hps::robust {

const char* cancel_reason_name(CancelReason r) {
  switch (r) {
    case CancelReason::kNone: return "none";
    case CancelReason::kDeadline: return "deadline";
    case CancelReason::kEventCap: return "event-cap";
    case CancelReason::kHorizon: return "horizon";
    case CancelReason::kInjected: return "injected";
    case CancelReason::kInterrupted: return "interrupted";
  }
  return "?";
}

void CancelToken::sample_wall() {
  const auto now = std::chrono::steady_clock::now();
  if (now > deadline_) raise(CancelReason::kDeadline);

  std::uint64_t stride = kMaxWallStride;
  const double dt = std::chrono::duration<double>(now - last_wall_time_).count();
  const std::uint64_t dticks = std::max<std::uint64_t>(1, ticks_ - last_wall_ticks_);
  if (dt > 0) {
    // Events per kWallSamplePeriod at the observed rate.
    const double per_period =
        static_cast<double>(dticks) * (kWallSamplePeriodSeconds / dt);
    stride = per_period < 1.0 ? 1
             : per_period >= static_cast<double>(kMaxWallStride)
                 ? kMaxWallStride
                 : static_cast<std::uint64_t>(per_period);
    // Never schedule the next sample past the projected deadline: cap the
    // stride at half the events we estimate remain, so the sampling cadence
    // tightens as the deadline approaches even if the rate estimate drifts.
    const double remaining = std::chrono::duration<double>(deadline_ - now).count();
    const double ticks_left = static_cast<double>(dticks) * (remaining / dt);
    if (ticks_left / 2 < static_cast<double>(stride))
      stride = std::max<std::uint64_t>(1, static_cast<std::uint64_t>(ticks_left / 2));
  }
  last_wall_time_ = now;
  last_wall_ticks_ = ticks_;
  next_wall_check_ = ticks_ + stride;
}

void CancelToken::check_interrupt() {
  if (interrupt_requested()) raise(CancelReason::kInterrupted);
}

void CancelToken::raise(CancelReason reason) {
  reason_ = reason;
  cancelled_.store(true, std::memory_order_release);
  std::string msg = "cancelled (";
  msg += cancel_reason_name(reason);
  msg += ")";
  switch (reason) {
    case CancelReason::kDeadline:
      msg += ": wall deadline " + std::to_string(budget_.wall_deadline_seconds) +
             "s exceeded after " + std::to_string(ticks_) + " events";
      break;
    case CancelReason::kEventCap:
      msg += ": event cap " + std::to_string(budget_.max_des_events) + " exceeded";
      break;
    case CancelReason::kHorizon:
      msg += ": virtual-time horizon " + std::to_string(budget_.virtual_horizon) +
             "ns exceeded";
      break;
    case CancelReason::kInterrupted:
      msg += ": study interrupted by signal " + std::to_string(interrupt_signal());
      break;
    default:
      break;
  }
  throw CancelledError(reason, msg);
}

}  // namespace hps::robust
