#include "robust/cancel.hpp"

#include <string>

namespace hps::robust {

const char* cancel_reason_name(CancelReason r) {
  switch (r) {
    case CancelReason::kNone: return "none";
    case CancelReason::kDeadline: return "deadline";
    case CancelReason::kEventCap: return "event-cap";
    case CancelReason::kHorizon: return "horizon";
    case CancelReason::kInjected: return "injected";
  }
  return "?";
}

void CancelToken::raise(CancelReason reason) {
  reason_ = reason;
  cancelled_.store(true, std::memory_order_release);
  std::string msg = "cancelled (";
  msg += cancel_reason_name(reason);
  msg += ")";
  switch (reason) {
    case CancelReason::kDeadline:
      msg += ": wall deadline " + std::to_string(budget_.wall_deadline_seconds) +
             "s exceeded after " + std::to_string(ticks_) + " events";
      break;
    case CancelReason::kEventCap:
      msg += ": event cap " + std::to_string(budget_.max_des_events) + " exceeded";
      break;
    case CancelReason::kHorizon:
      msg += ": virtual-time horizon " + std::to_string(budget_.virtual_horizon) +
             "ns exceeded";
      break;
    default:
      break;
  }
  throw CancelledError(reason, msg);
}

}  // namespace hps::robust
