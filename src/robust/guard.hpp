// Run guards: execute one scheme (or any per-trace unit of work) and map
// *every* escaping exception to a structured failure instead of letting it
// cross a worker-thread boundary and call std::terminate.
//
// FailKind is the taxonomy the ledger, cache and `hpcsweep_inspect check`
// report: error (recoverable hps::Error or foreign std::exception), oom
// (bad_alloc / length_error), deadlock (replayer/MFACT progress failure),
// budget (a CancelToken tripped on deadline / event cap / horizon), injected
// (a deterministic fault-plan cancel), unknown (a non-std exception), and
// skipped (never attempted, e.g. SST 3.0 compat emulation).
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "robust/cancel.hpp"

namespace hps::robust {

enum class FailKind : std::uint8_t {
  kNone = 0,  ///< succeeded
  kSkipped,   ///< not attempted (scheme-compat skip, or interrupted study)
  kError,     ///< hps::Error or another std::exception
  kOom,       ///< std::bad_alloc / std::length_error
  kDeadlock,  ///< replay could not make progress
  kBudget,    ///< budget exceeded (deadline / event cap / horizon)
  kInjected,  ///< deterministic fault-plan cancellation
  kUnknown,   ///< non-std exception type
  // Process-isolation kinds (supervisor verdicts, never thrown in-process;
  // appended so persisted numeric values of the kinds above stay stable):
  kCrash,     ///< worker process died (signal / nonzero exit / garbled stream)
  kTimeout,   ///< worker hard-killed by the heartbeat watchdog
};

const char* fail_kind_name(FailKind k);

struct Failure {
  FailKind kind = FailKind::kError;
  std::string message;
};

/// Classify the exception currently in flight. Must be called from inside a
/// catch block; bumps the `robust.guard_trips` telemetry counter.
Failure classify_active_exception();

/// Run `f`, absorbing every exception into a structured Failure. Returns
/// nullopt on success.
template <typename F>
std::optional<Failure> run_guarded(F&& f) {
  try {
    std::forward<F>(f)();
    return std::nullopt;
  } catch (...) {
    return classify_active_exception();
  }
}

}  // namespace hps::robust
