#include "robust/ipc.hpp"

#include <cerrno>
#include <cstring>
#include <unistd.h>

#include "robust/journal.hpp"

namespace hps::robust::ipc {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t decode_u32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) | (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) | (static_cast<std::uint32_t>(b[3]) << 24);
}

int g_worker_result_fd = -1;

}  // namespace

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kTask: return "task";
    case MsgType::kResult: return "result";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kError: return "error";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kRequest: return "request";
    case MsgType::kRecord: return "record";
    case MsgType::kSummary: return "summary";
    case MsgType::kReject: return "reject";
    case MsgType::kPong: return "pong";
    case MsgType::kStatsReply: return "stats-reply";
    case MsgType::kMetricsReply: return "metrics-reply";
  }
  return "?";
}

const char* read_status_name(ReadStatus s) {
  switch (s) {
    case ReadStatus::kMessage: return "message";
    case ReadStatus::kEof: return "eof";
    case ReadStatus::kCorrupt: return "corrupt";
    case ReadStatus::kError: return "error";
  }
  return "?";
}

std::string encode_frame(const Message& m) {
  std::string payload;
  payload.reserve(1 + m.payload.size());
  payload.push_back(static_cast<char>(m.type));
  payload += m.payload;
  std::string frame;
  frame.reserve(8 + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, crc32(payload.data(), payload.size()));
  frame += payload;
  return frame;
}

bool write_frame(int fd, const Message& m) {
  const std::string frame = encode_frame(m);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void FrameDecoder::feed(const char* data, std::size_t n) {
  if (corrupt_) return;
  // Compact lazily: drop the consumed prefix once it dominates the buffer.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

FrameDecoder::Status FrameDecoder::next(Message& out) {
  if (corrupt_) return Status::kCorrupt;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < 8) return Status::kNeedMore;
  const std::uint32_t len = decode_u32(buf_.data() + pos_);
  const std::uint32_t crc = decode_u32(buf_.data() + pos_ + 4);
  if (len == 0 || len > max_frame_) {
    // A zero-length payload can't even carry the type byte; an oversized one
    // means the length field itself is garbage (or the peer is abusive).
    corrupt_ = true;
    reason_ = len == 0 ? "zero-length frame" : "oversized frame";
    return Status::kCorrupt;
  }
  if (avail < 8 + static_cast<std::size_t>(len)) return Status::kNeedMore;
  const char* payload = buf_.data() + pos_ + 8;
  if (crc32(payload, len) != crc) {
    corrupt_ = true;
    reason_ = "crc mismatch";
    return Status::kCorrupt;
  }
  out.type = static_cast<MsgType>(static_cast<unsigned char>(payload[0]));
  out.payload.assign(payload + 1, len - 1);
  pos_ += 8 + len;
  return Status::kMessage;
}

namespace {

/// Read exactly `n` bytes. Returns kMessage when filled, kEof on a clean EOF
/// before the first byte, kCorrupt on EOF mid-read, kError on a hard error.
ReadStatus read_exact(int fd, char* p, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::read(fd, p + off, n - off);
    if (r == 0) return off == 0 ? ReadStatus::kEof : ReadStatus::kCorrupt;
    if (r < 0) {
      if (errno == EINTR) continue;
      return ReadStatus::kError;
    }
    off += static_cast<std::size_t>(r);
  }
  return ReadStatus::kMessage;
}

}  // namespace

ReadStatus read_message(int fd, Message& out, std::uint32_t max_frame) {
  // Exact-size reads: never consume bytes beyond this frame, so successive
  // calls on the same blocking fd each see a whole frame.
  char header[8];
  ReadStatus st = read_exact(fd, header, sizeof header);
  if (st != ReadStatus::kMessage) return st;
  const std::uint32_t len = decode_u32(header);
  const std::uint32_t crc = decode_u32(header + 4);
  if (len == 0 || len > max_frame) return ReadStatus::kCorrupt;
  std::string payload(len, '\0');
  st = read_exact(fd, payload.data(), len);
  if (st != ReadStatus::kMessage) return st == ReadStatus::kError ? st : ReadStatus::kCorrupt;
  if (crc32(payload.data(), payload.size()) != crc) return ReadStatus::kCorrupt;
  out.type = static_cast<MsgType>(static_cast<unsigned char>(payload[0]));
  out.payload.assign(payload, 1, payload.size() - 1);
  return ReadStatus::kMessage;
}

int worker_result_fd() { return g_worker_result_fd; }

void set_worker_result_fd(int fd) { g_worker_result_fd = fd; }

}  // namespace hps::robust::ipc
