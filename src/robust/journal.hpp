// Crash-safe append-only journal.
//
// run_study appends each completed trace outcome to the journal as workers
// finish; if the process dies mid-study (crash, OOM kill, injected exit), the
// restart reads the journal back, keeps every intact record, and re-runs only
// the missing specs. Records are framed as
//
//   u32 payload_len | u32 crc32(payload) | payload bytes
//
// after a fixed header ("HPSJ", format version, and the caller's study key so
// a journal is never resumed against a different corpus/config). A torn tail
// — the partially flushed record of the dying write — fails its length or CRC
// check and is truncated on resume; everything before it is trusted.
//
// The journal is payload-agnostic (records are opaque byte strings); the
// study layer serializes TraceOutcome with the same codec as the result
// cache, so a resumed study reproduces the uninterrupted one byte-for-byte.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace hps::robust {

/// CRC-32 (IEEE 802.3, reflected) of `data`. Exposed for tests.
std::uint32_t crc32(const void* data, std::size_t len);

/// fsync `path`'s data+metadata to stable storage. Atomic tmp+rename only
/// survives a *process* crash by itself; surviving power loss additionally
/// needs the data fsynced before the rename and the directory fsynced after
/// it, or the rename can reach disk pointing at unwritten blocks. Best
/// effort: returns false when the file cannot be opened or fsync fails
/// (e.g. a filesystem that does not support it), which callers treat as
/// non-fatal — the atomicity guarantee still holds.
bool sync_file(const std::string& path);

/// fsync the directory containing `path` (making a rename/creat durable).
bool sync_parent_dir(const std::string& path);

struct JournalContents {
  bool existed = false;       ///< a journal file was present
  bool key_matched = false;   ///< header key matched the caller's key
  std::vector<std::string> records;  ///< intact records, in append order
  std::uint64_t valid_bytes = 0;     ///< prefix length covering the records
  std::uint64_t torn_bytes = 0;      ///< trailing bytes discarded (torn tail)
};

/// Read every intact record of `path`. Missing file → existed=false. A header
/// mismatch (foreign magic/version/key) yields key_matched=false and no
/// records — the caller should start fresh rather than resume.
JournalContents read_journal(const std::string& path, const std::string& key);

/// Appender. Every append() is framed, written, flushed, and fsynced before
/// returning, so a record either fully survives a crash — including power
/// loss, not just process death — or is discarded as a torn tail.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Truncate/create `path` and write a fresh header for `key`.
  void open_fresh(const std::string& path, const std::string& key);

  /// Reopen an existing journal for appending after read_journal() validated
  /// a prefix: the file is truncated to `valid_bytes` (dropping any torn
  /// tail) and subsequent appends extend the intact prefix.
  void open_resume(const std::string& path, std::uint64_t valid_bytes);

  void append(const std::string& record);
  bool is_open() const { return f_ != nullptr; }
  void close();

 private:
  std::FILE* f_ = nullptr;
  std::string path_;
};

}  // namespace hps::robust
