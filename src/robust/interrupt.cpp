#include "robust/interrupt.hpp"

#include <atomic>
#include <csignal>

namespace hps::robust {

namespace {

std::atomic<int> g_signal{0};

// Previous dispositions, restored when the guard leaves scope. Only one
// guard is ever active (run_study is not reentrant per process); a nested
// guard degrades to a no-op installer.
struct sigaction g_prev_int;
struct sigaction g_prev_term;
std::atomic<bool> g_installed{false};

extern "C" void hps_interrupt_handler(int sig) {
  // First signal: set the flag and let the study unwind cooperatively.
  // Second signal: restore the default disposition and re-raise, so an
  // operator can still hard-kill a wedged process with another ^C.
  int expected = 0;
  if (!g_signal.compare_exchange_strong(expected, sig, std::memory_order_relaxed)) {
    std::signal(sig, SIG_DFL);
    std::raise(sig);
  }
}

}  // namespace

bool interrupt_requested() { return g_signal.load(std::memory_order_relaxed) != 0; }

int interrupt_signal() { return g_signal.load(std::memory_order_relaxed); }

void request_interrupt(int sig) { g_signal.store(sig, std::memory_order_relaxed); }

void clear_interrupt() { g_signal.store(0, std::memory_order_relaxed); }

StudySignalGuard::StudySignalGuard() {
  bool expected = false;
  if (!g_installed.compare_exchange_strong(expected, true)) return;  // nested: no-op
  installed_ = true;
  struct sigaction sa {};
  sa.sa_handler = hps_interrupt_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  sigaction(SIGINT, &sa, &g_prev_int);
  sigaction(SIGTERM, &sa, &g_prev_term);
}

StudySignalGuard::~StudySignalGuard() {
  if (!installed_) return;
  sigaction(SIGINT, &g_prev_int, nullptr);
  sigaction(SIGTERM, &g_prev_term, nullptr);
  g_installed.store(false);
}

}  // namespace hps::robust
