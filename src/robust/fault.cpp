#include "robust/fault.hpp"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <memory>
#include <new>
#include <thread>

#include "common/rng.hpp"
#include "telemetry/telemetry.hpp"

namespace hps::robust {

namespace {

// The installed plan. Swapped whole-sale by set/clear; fault points read it
// with one relaxed load on the disabled path. Retired plans are kept alive
// (parked in g_retired, never freed) to stay safe against a racing reader —
// plans are tiny and installed a handful of times per process, and keeping
// them reachable from a static also keeps LeakSanitizer quiet about it.
std::atomic<const FaultPlan*> g_plan{nullptr};

std::vector<std::unique_ptr<const FaultPlan>>& retired_plans() {
  static std::vector<std::unique_ptr<const FaultPlan>> g_retired;
  return g_retired;
}

thread_local FaultContext t_context;

bool spec_selected(const FaultSpec& f, const FaultContext& ctx) {
  if (f.probability >= 1.0) return true;
  std::uint64_t h = mix_seed(f.seed, 0x9e3779b97f4a7c15ULL);
  h = mix_seed(h, static_cast<std::uint64_t>(f.site));
  h = mix_seed(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(ctx.spec_id)));
  h = mix_seed(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(ctx.scheme)));
  const double u =
      static_cast<double>(h >> 11) * (1.0 / static_cast<double>(std::uint64_t{1} << 53));
  return u < f.probability;
}

[[noreturn]] void throw_injected(FaultSite site) {
  throw Error(std::string("injected fault at site ") + fault_site_name(site));
}

void trigger(const FaultSpec& f, FaultSite site, const FaultContext& ctx) {
  telemetry::Registry::global().counter("robust.faults_injected").add(1);
  switch (f.kind) {
    case FaultKind::kThrow:
      throw_injected(site);
    case FaultKind::kAllocFail:
      throw std::bad_alloc();
    case FaultKind::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(f.delay_ms));
      return;
    case FaultKind::kCancel:
      if (ctx.token != nullptr) {
        ctx.token->cancel(CancelReason::kInjected);
        ctx.token->check();  // does not return
      }
      throw CancelledError(CancelReason::kInjected,
                           std::string("injected cancel at site ") + fault_site_name(site));
    case FaultKind::kExit:
      // Simulate a hard crash / external kill: no unwinding, no flushes
      // beyond what has already reached the OS (the journal flushes every
      // record, which is exactly the guarantee under test).
      std::_Exit(f.exit_code);
    case FaultKind::kSegv:
      // Reset to the default disposition first so the death is a genuine
      // signal 11 even under sanitizers that install their own SEGV handler
      // (the supervisor's crash classification is what is under test).
      std::signal(SIGSEGV, SIG_DFL);
      std::raise(SIGSEGV);
      std::_Exit(139);  // unreachable; raise does not return for fatal signals
    case FaultKind::kAbort:
      std::signal(SIGABRT, SIG_DFL);
      std::abort();
  }
}

FaultSite parse_site(const std::string& v) {
  if (v == "mfact") return FaultSite::kMfact;
  if (v == "packet") return FaultSite::kPacket;
  if (v == "flow") return FaultSite::kFlow;
  if (v == "packet-flow" || v == "packetflow") return FaultSite::kPacketFlow;
  if (v == "generate") return FaultSite::kGenerate;
  if (v == "serve.cache-insert") return FaultSite::kServeCacheInsert;
  if (v == "serve.ledger-append") return FaultSite::kServeLedgerAppend;
  if (v == "serve.dispatch") return FaultSite::kServeDispatch;
  if (v == "serve.cache-spill") return FaultSite::kServeCacheSpill;
  if (v == "serve.cache-recover") return FaultSite::kServeCacheRecover;
  if (v == "serve.scrub") return FaultSite::kServeScrub;
  throw Error("fault plan: unknown site \"" + v + "\"");
}

int parse_scheme(const std::string& v) {
  // Matches core::Scheme's order (stable public contract of the runner).
  if (v == "mfact") return 0;
  if (v == "packet") return 1;
  if (v == "flow") return 2;
  if (v == "packet-flow" || v == "packetflow") return 3;
  throw Error("fault plan: unknown scheme \"" + v + "\"");
}

FaultKind parse_kind(const std::string& v) {
  if (v == "throw") return FaultKind::kThrow;
  if (v == "alloc") return FaultKind::kAllocFail;
  if (v == "delay") return FaultKind::kDelay;
  if (v == "cancel") return FaultKind::kCancel;
  if (v == "exit") return FaultKind::kExit;
  if (v == "segv") return FaultKind::kSegv;
  if (v == "abort") return FaultKind::kAbort;
  throw Error("fault plan: unknown kind \"" + v + "\"");
}

FaultSpec parse_spec(const std::string& text) {
  FaultSpec f;
  bool has_site = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    const std::string field = text.substr(pos, end - pos);
    pos = end + 1;
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos)
      throw Error("fault plan: field \"" + field + "\" is not key=value");
    const std::string key = field.substr(0, eq);
    const std::string val = field.substr(eq + 1);
    if (key == "site") {
      f.site = parse_site(val);
      has_site = true;
    } else if (key == "spec") {
      f.spec_id = std::atoi(val.c_str());
    } else if (key == "scheme") {
      f.scheme = parse_scheme(val);
    } else if (key == "kind") {
      f.kind = parse_kind(val);
    } else if (key == "p") {
      f.probability = std::atof(val.c_str());
    } else if (key == "seed") {
      f.seed = static_cast<std::uint64_t>(std::atoll(val.c_str()));
    } else if (key == "delay_ms") {
      f.delay_ms = std::atoi(val.c_str());
    } else if (key == "exit_code") {
      f.exit_code = std::atoi(val.c_str());
    } else {
      throw Error("fault plan: unknown key \"" + key + "\"");
    }
  }
  if (!has_site) throw Error("fault plan: spec \"" + text + "\" is missing site=");
  return f;
}

}  // namespace

const char* fault_site_name(FaultSite s) {
  switch (s) {
    case FaultSite::kMfact: return "mfact";
    case FaultSite::kPacket: return "packet";
    case FaultSite::kFlow: return "flow";
    case FaultSite::kPacketFlow: return "packet-flow";
    case FaultSite::kGenerate: return "generate";
    case FaultSite::kServeCacheInsert: return "serve.cache-insert";
    case FaultSite::kServeLedgerAppend: return "serve.ledger-append";
    case FaultSite::kServeDispatch: return "serve.dispatch";
    case FaultSite::kServeCacheSpill: return "serve.cache-spill";
    case FaultSite::kServeCacheRecover: return "serve.cache-recover";
    case FaultSite::kServeScrub: return "serve.scrub";
  }
  return "?";
}

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kThrow: return "throw";
    case FaultKind::kAllocFail: return "alloc";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kCancel: return "cancel";
    case FaultKind::kExit: return "exit";
    case FaultKind::kSegv: return "segv";
    case FaultKind::kAbort: return "abort";
  }
  return "?";
}

FaultPlan parse_fault_plan(const std::string& text) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t end = text.find(';', pos);
    if (end == std::string::npos) end = text.size();
    const std::string part = text.substr(pos, end - pos);
    pos = end + 1;
    if (part.find_first_not_of(" \t") == std::string::npos) continue;
    plan.specs.push_back(parse_spec(part));
  }
  return plan;
}

void set_fault_plan(FaultPlan plan) {
  if (plan.empty()) {
    clear_fault_plan();
    return;
  }
  // Never freed, only parked (see g_plan comment).
  auto owned = std::make_unique<const FaultPlan>(std::move(plan));
  g_plan.store(owned.get(), std::memory_order_release);
  retired_plans().push_back(std::move(owned));
}

void clear_fault_plan() { g_plan.store(nullptr, std::memory_order_release); }

bool fault_plan_active() { return g_plan.load(std::memory_order_acquire) != nullptr; }

void init_faults_from_env() {
  const char* env = std::getenv("HPS_FAULT");
  if (env == nullptr || *env == '\0') return;
  set_fault_plan(parse_fault_plan(env));
}

FaultContext current_fault_context() { return t_context; }

FaultScope::FaultScope(const FaultContext& ctx) : saved_(t_context) { t_context = ctx; }

FaultScope::~FaultScope() { t_context = saved_; }

void fault_point(FaultSite site) {
  const FaultPlan* plan = g_plan.load(std::memory_order_relaxed);
  if (plan == nullptr) return;
  const FaultContext& ctx = t_context;
  for (const FaultSpec& f : plan->specs) {
    if (f.site != site) continue;
    if (f.spec_id >= 0 && f.spec_id != ctx.spec_id) continue;
    if (f.scheme >= 0 && f.scheme != ctx.scheme) continue;
    if (!spec_selected(f, ctx)) continue;
    trigger(f, site, ctx);
  }
}

}  // namespace hps::robust
