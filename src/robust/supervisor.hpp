// Process-isolated worker pool: supervisor/worker execution with a
// heartbeat watchdog, bounded retries, and crash containment.
//
// The in-process run guards (guard.hpp) classify anything that *throws*,
// but a SIGSEGV, std::abort, or a kernel OOM-kill takes the whole
// thread-pool study down with the worker. run_supervised forks a pool of
// worker processes instead and shards opaque task payloads over the ipc.hpp
// pipe protocol, so hard process death is a first-class, contained event:
//
//  - each worker runs one task at a time, reading kTask frames off its task
//    pipe and answering kResult (or kError for an in-worker exception);
//  - a heartbeat thread in every worker feeds the supervisor's watchdog;
//    a worker silent past the timeout is SIGKILLed (→ Status::kTimeout);
//  - death by signal, a nonzero exit, or an unframeable result stream is a
//    crash verdict (→ Status::kCrash, terminating signal recorded);
//  - a failed task is retried on a fresh worker with exponential backoff up
//    to max_retries, then quarantined: the final TaskResult carries the
//    failure and every other task still completes;
//  - setrlimit(RLIMIT_AS) bounds each worker's address space, turning a
//    runaway allocation into a contained in-worker bad_alloc.
//
// Workers are created by fork() without exec: the child inherits the
// parent's state (corpus specs, fault plan, options) and calls the WorkerFn
// directly, which keeps results byte-identical to thread mode. The
// supervisor must therefore be driven from a moment when no other threads
// are live, which run_study guarantees.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace hps::robust {

struct SupervisorOptions {
  int workers = 1;        ///< pool size (clamped to the task count)
  int max_retries = 1;    ///< extra attempts per task after the first
  long rss_limit_mb = 0;  ///< RLIMIT_AS per worker, MB; 0 = unlimited
  /// Watchdog: a busy worker not heard from (result or heartbeat) for this
  /// long is hard-killed and its task counted as a timeout. 0 disables.
  double watchdog_timeout_s = 0;
  /// Heartbeat period of the in-worker feeder thread (only started when the
  /// watchdog is enabled).
  double heartbeat_interval_s = 0.1;
  /// Exponential backoff before retry r: backoff_base_s * 2^r, capped.
  double backoff_base_s = 0.05;
  double backoff_max_s = 2.0;
  /// Telemetry trace id carried inside every kTask frame and installed
  /// around the WorkerFn in the worker process (0 = unattributed), so spans
  /// recorded across the process boundary still name the originating
  /// serving request.
  std::uint64_t trace_id = 0;
};

/// Environment a WorkerFn executes in (inside the worker process).
struct WorkerEnv {
  int attempt = 0;       ///< 0 for the first try, grows per retry
  std::size_t task_index = 0;
};

/// Executed inside the worker process; returns the result payload. A thrown
/// exception is reported back as a structured task failure (kFailed), not a
/// crash.
using WorkerFn = std::function<std::string(const std::string& task, const WorkerEnv&)>;

struct TaskResult {
  enum class Status : std::uint8_t {
    kOk,       ///< worker returned a result payload
    kFailed,   ///< WorkerFn threw; detail holds the message
    kCrash,    ///< worker died (signal/exit/garbled stream), retries exhausted
    kTimeout,  ///< watchdog killed the worker, retries exhausted
    kSkipped,  ///< never finished: the study was interrupted (SIGINT/SIGTERM)
  };
  Status status = Status::kOk;
  std::string payload;  ///< result bytes when kOk
  std::string detail;   ///< human-readable failure description otherwise
  int signal = 0;       ///< terminating signal for kCrash deaths (0 = exit)
  int exit_code = 0;    ///< exit status for signal-less kCrash deaths
  int attempts = 0;     ///< total attempts consumed (1 = first try sufficed)
};

const char* task_status_name(TaskResult::Status s);

/// Called in the supervisor as soon as a task reaches its final state (in
/// completion order, not task order) — the hook run_study uses to journal
/// outcomes as they arrive. May be empty.
using ResultHook = std::function<void(std::size_t task_index, const TaskResult&)>;

/// Run every task through the pool; returns one TaskResult per task, in
/// task order. Throws hps::Error only for supervisor-level failures (pipe or
/// fork exhaustion) — per-task failures are reported in the results.
std::vector<TaskResult> run_supervised(const std::vector<std::string>& tasks,
                                       const WorkerFn& fn, const SupervisorOptions& opts,
                                       const ResultHook& on_result = {});

}  // namespace hps::robust
