#include "robust/guard.hpp"

#include <exception>
#include <new>
#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace hps::robust {

const char* fail_kind_name(FailKind k) {
  switch (k) {
    case FailKind::kNone: return "none";
    case FailKind::kSkipped: return "skipped";
    case FailKind::kError: return "error";
    case FailKind::kOom: return "oom";
    case FailKind::kDeadlock: return "deadlock";
    case FailKind::kBudget: return "budget";
    case FailKind::kInjected: return "injected";
    case FailKind::kUnknown: return "unknown";
    case FailKind::kCrash: return "crash";
    case FailKind::kTimeout: return "timeout";
  }
  return "?";
}

Failure classify_active_exception() {
  Failure f;
  // Ordered most-specific first: CancelledError and DeadlockError both derive
  // from hps::Error, and length_error (a corrupt size reaching a container)
  // is treated as the allocation failure it becomes in practice.
  try {
    throw;
  } catch (const CancelledError& e) {
    // kInterrupted means the *study* is shutting down (^C), not that this
    // trace misbehaved: classify as skipped so a resumed run recomputes it.
    f.kind = e.reason() == CancelReason::kInjected     ? FailKind::kInjected
             : e.reason() == CancelReason::kInterrupted ? FailKind::kSkipped
                                                        : FailKind::kBudget;
    f.message = e.what();
  } catch (const DeadlockError& e) {
    f.kind = FailKind::kDeadlock;
    f.message = e.what();
  } catch (const Error& e) {
    f.kind = FailKind::kError;
    f.message = e.what();
  } catch (const std::bad_alloc& e) {
    f.kind = FailKind::kOom;
    f.message = e.what();
  } catch (const std::length_error& e) {
    f.kind = FailKind::kOom;
    f.message = e.what();
  } catch (const std::exception& e) {
    f.kind = FailKind::kError;
    f.message = e.what();
  } catch (...) {
    f.kind = FailKind::kUnknown;
    f.message = "unknown non-std exception";
  }
  telemetry::Registry::global().counter("robust.guard_trips").add(1);
  return f;
}

}  // namespace hps::robust
