// Graceful SIGINT/SIGTERM for long studies.
//
// A StudySignalGuard installs handlers that only set a process-wide flag;
// everything else is cooperative. Worker threads stop claiming new traces,
// in-flight scheme runs observe the flag through CancelToken's amortized
// checkpoint and unwind as CancelReason::kInterrupted (classified as
// FailKind::kSkipped — the trace was not computed, not broken), and
// run_study flushes the journal and ledger before returning, keeping the
// journal in place so the next invocation resumes instead of restarting.
// The CLI then exits with the documented code 75 (kInterruptedExitCode)
// rather than dying mid-write with whatever the default disposition does.
//
// The flag is also honored by the process-isolation supervisor: it stops
// dispatching, reaps its workers, and reports undone tasks as skipped.
#pragma once

namespace hps::robust {

/// Exit code a CLI should use after a study returned early due to
/// SIGINT/SIGTERM (distinct from 0 ok, 1 degraded/error, 2 usage).
inline constexpr int kInterruptedExitCode = 75;

/// True once SIGINT/SIGTERM was received (or request_interrupt was called).
bool interrupt_requested();

/// The signal that tripped the flag; 0 when none.
int interrupt_signal();

/// Trip the flag programmatically (tests; also the signal handler's body —
/// a single relaxed atomic store, so it is async-signal-safe).
void request_interrupt(int sig);

/// Reset the flag (between studies in one process, and in tests).
void clear_interrupt();

/// RAII: install the SIGINT/SIGTERM handlers, restoring the previous
/// dispositions on destruction. A second signal while the guard is active
/// re-raises the default disposition, so a double ^C still kills a stuck
/// process the traditional way.
class StudySignalGuard {
 public:
  StudySignalGuard();
  ~StudySignalGuard();
  StudySignalGuard(const StudySignalGuard&) = delete;
  StudySignalGuard& operator=(const StudySignalGuard&) = delete;

 private:
  bool installed_ = false;
};

}  // namespace hps::robust
