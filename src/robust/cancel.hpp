// Cooperative cancellation and execution budgets.
//
// A CancelToken is armed with a Budget — wall-clock deadline, DES event-count
// cap, virtual-time horizon — and handed to the hot loops (des::Engine's
// dispatch loop, MFACT's logical replay). Those loops call tick() once per
// event; when any budget dimension is exhausted the token throws
// CancelledError, which the run guard (guard.hpp) maps to a structured
// budget_exceeded outcome instead of letting a runaway simulation wedge the
// study pool. cancel() trips the token from outside the running thread (or
// from an injected fault), surfacing at the next tick.
//
// Cost discipline: an unarmed engine pays one pointer test per event; an
// armed token pays one relaxed atomic load plus two integer compares, with
// the steady_clock read amortized over 4096 ticks.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/error.hpp"
#include "common/units.hpp"

namespace hps::robust {

enum class CancelReason : std::uint8_t {
  kNone = 0,
  kDeadline,     ///< wall-clock budget exhausted
  kEventCap,     ///< DES event-count budget exhausted
  kHorizon,      ///< virtual-time budget exhausted
  kInjected,     ///< tripped by fault injection / an external cancel()
  kInterrupted,  ///< SIGINT/SIGTERM observed (graceful study shutdown)
};

const char* cancel_reason_name(CancelReason r);

/// Thrown from CancelToken::tick()/check() when a budget trips or the token
/// is cancelled. Derives from hps::Error so legacy catch sites still treat it
/// as a recoverable per-trace failure; the run guard catches it first and
/// preserves the reason.
class CancelledError : public Error {
 public:
  CancelledError(CancelReason reason, const std::string& what)
      : Error(what), reason_(reason) {}
  CancelReason reason() const { return reason_; }

 private:
  CancelReason reason_;
};

/// Per-scheme execution budget. Zero in any dimension means unlimited; the
/// default is fully unlimited, so existing call sites pay only the disabled
/// fast path and produce bit-identical results.
struct Budget {
  double wall_deadline_seconds = 0;  ///< host wall-clock cap per scheme run
  std::uint64_t max_des_events = 0;  ///< cap on processed events (DES or logical)
  SimTime virtual_horizon = 0;       ///< cap on simulated time, ns
  bool limited() const {
    return wall_deadline_seconds > 0 || max_des_events > 0 || virtual_horizon > 0;
  }
};

class CancelToken {
 public:
  CancelToken() = default;
  explicit CancelToken(const Budget& b) { arm(b); }
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// (Re)arm with a budget; the wall-clock deadline starts now.
  void arm(const Budget& b) {
    budget_ = b;
    ticks_ = 0;
    armed_ = b.limited();
    reason_ = CancelReason::kNone;
    cancelled_.store(false, std::memory_order_relaxed);
    if (b.wall_deadline_seconds > 0) {
      const auto now = std::chrono::steady_clock::now();
      deadline_ = now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(b.wall_deadline_seconds));
      last_wall_time_ = now;
      last_wall_ticks_ = 0;
      next_wall_check_ = 1;  // sample on the very first tick, then adapt
    }
  }

  /// Trip the token (thread-safe); the running loop throws at its next tick.
  void cancel(CancelReason reason) {
    reason_ = reason;  // written before the flag; readers re-check after load
    cancelled_.store(true, std::memory_order_release);
  }

  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }
  CancelReason reason() const { return reason_; }
  std::uint64_t ticks() const { return ticks_; }

  /// Throw if cancel() was called. For non-loop checkpoints.
  void check() {
    if (cancelled())
      raise(reason_ == CancelReason::kNone ? CancelReason::kInjected : reason_);
  }

  /// Hot-path progress checkpoint: one call per processed event. `now` is the
  /// virtual time about to be processed (0 when the caller has no meaningful
  /// clock). Throws CancelledError when the budget is exhausted or a study
  /// interrupt (SIGINT/SIGTERM) is pending.
  void tick(SimTime now) {
    ++ticks_;
    if (cancelled_.load(std::memory_order_relaxed)) check();
    if ((ticks_ & kInterruptCheckMask) == 0) check_interrupt();
    if (!armed_) return;
    if (budget_.virtual_horizon > 0 && now > budget_.virtual_horizon)
      raise(CancelReason::kHorizon);
    if (budget_.max_des_events > 0 && ticks_ > budget_.max_des_events)
      raise(CancelReason::kEventCap);
    if (budget_.wall_deadline_seconds > 0 && ticks_ >= next_wall_check_) sample_wall();
  }

  const Budget& budget() const { return budget_; }

 private:
  [[noreturn]] void raise(CancelReason reason);

  /// Consult the wall clock and re-plan the next sampling point. The stride
  /// between samples is adaptive — derived from the observed event rate so
  /// the clock is read roughly every kWallSamplePeriod of *real* time rather
  /// than every fixed 4096 events, which on sparse/slow-event traces (a
  /// replay sleeping in an injected delay, a model crunching huge
  /// collectives) could overshoot the deadline by orders of magnitude.
  /// Defined out of line: the hot loop only pays the integer compare above.
  void sample_wall();

  /// Study interrupts (SIGINT/SIGTERM) are observed on a coarse fixed
  /// stride even when no budget is armed, so a ^C reaches in-flight scheme
  /// runs, not just the study loop between traces. Out of line.
  void check_interrupt();

  /// Aim to read steady_clock about every 5ms of real time...
  static constexpr double kWallSamplePeriodSeconds = 0.005;
  /// ...but never let more than 4096 events pass unsampled (the previous
  /// fixed stride, now an upper bound), nor fewer than 1.
  static constexpr std::uint64_t kMaxWallStride = std::uint64_t{1} << 12;
  static constexpr std::uint64_t kInterruptCheckMask = (std::uint64_t{1} << 10) - 1;

  Budget budget_;
  std::uint64_t ticks_ = 0;
  bool armed_ = false;
  CancelReason reason_ = CancelReason::kNone;
  std::atomic<bool> cancelled_{false};
  std::chrono::steady_clock::time_point deadline_{};
  std::chrono::steady_clock::time_point last_wall_time_{};
  std::uint64_t last_wall_ticks_ = 0;
  std::uint64_t next_wall_check_ = 0;
};

}  // namespace hps::robust
