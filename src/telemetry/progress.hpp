// Rate-limited progress line for long parallel runs.
//
// All completion events funnel through one emission point, so concurrent
// workers can't interleave partial '\r' lines, and a fast cache-warm run
// doesn't spend its time in fprintf: at most one line per min_interval is
// written (the final completion always is).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <mutex>
#include <string>

namespace hps::telemetry {

class ProgressReporter {
 public:
  /// `total` expected completions; nothing is printed when !enabled.
  ProgressReporter(std::size_t total, bool enabled, std::FILE* out = stderr,
                   std::chrono::milliseconds min_interval = std::chrono::milliseconds(100));

  /// Record one completion (thread-safe); maybe emit "  [done/total] label".
  void completed(const std::string& label);

  /// Terminate the progress line if one was started (idempotent).
  void finish();

  std::size_t done() const { return done_.load(std::memory_order_relaxed); }

 private:
  const std::size_t total_;
  const bool enabled_;
  std::FILE* const out_;
  const std::chrono::steady_clock::duration min_interval_;

  std::atomic<std::size_t> done_{0};
  std::mutex mu_;  // guards the emission state below
  std::chrono::steady_clock::time_point last_emit_;
  bool printed_ = false;
  bool final_printed_ = false;
};

}  // namespace hps::telemetry
