#include "telemetry/export.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <ostream>
#include <sstream>

#include "common/table.hpp"

namespace hps::telemetry {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_g(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::mutex g_mu;
std::optional<ExportConfig> g_config;
bool g_flushed = false;
bool g_atexit_registered = false;

}  // namespace

std::optional<ExportConfig> parse_export_spec(const std::string& spec) {
  std::string mode = spec;
  std::string path;
  if (const auto colon = spec.find(':'); colon != std::string::npos) {
    mode = spec.substr(0, colon);
    path = spec.substr(colon + 1);
  }
  ExportConfig cfg;
  cfg.path = path;
  if (mode == "summary") {
    cfg.mode = ExportConfig::Mode::kSummary;
  } else if (mode == "json") {
    cfg.mode = ExportConfig::Mode::kJson;
  } else if (mode == "chrome" && !path.empty()) {
    cfg.mode = ExportConfig::Mode::kChrome;
  } else {
    return std::nullopt;
  }
  return cfg;
}

void configure(const ExportConfig& cfg) {
  Registry& reg = Registry::global();
  reg.set_enabled(true);
  if (cfg.mode == ExportConfig::Mode::kChrome) reg.set_tracing(true);
  const std::lock_guard<std::mutex> lk(g_mu);
  g_config = cfg;
  g_flushed = false;
  if (!g_atexit_registered) {
    g_atexit_registered = true;
    std::atexit([] { flush_exports(); });
  }
}

bool init_from_env() {
  static bool configured = [] {
    const char* env = std::getenv("HPS_TELEMETRY");
    if (env == nullptr || *env == '\0') return false;
    const auto cfg = parse_export_spec(env);
    if (!cfg) {
      std::fprintf(stderr, "[telemetry] ignoring unrecognized HPS_TELEMETRY=%s\n", env);
      return false;
    }
    configure(*cfg);
    return true;
  }();
  return configured;
}

std::string render_summary(const Snapshot& snap) {
  TextTable t;
  t.set_header({"metric", "type", "value"});
  for (const auto& m : snap.metrics) {
    std::string value;
    switch (m.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        value = std::to_string(m.value);
        break;
      case MetricKind::kHistogram:
        value = "count " + std::to_string(m.hist.count) + "  mean " + fmt_g(m.hist.mean()) +
                "  sum " + fmt_g(m.hist.sum);
        break;
    }
    t.add_row({m.name, metric_kind_name(m.kind), value});
  }
  return t.render();
}

void write_metrics_json(const Snapshot& snap, std::ostream& os) {
  auto emit_kind = [&](MetricKind kind, const char* key, bool first_section) {
    if (!first_section) os << ",";
    os << "\"" << key << "\":{";
    bool first = true;
    for (const auto& m : snap.metrics) {
      if (m.kind != kind) continue;
      if (!first) os << ",";
      first = false;
      os << "\"" << json_escape(m.name) << "\":";
      if (kind == MetricKind::kHistogram) {
        os << "{\"bounds\":[";
        for (std::size_t i = 0; i < m.hist.bounds.size(); ++i)
          os << (i ? "," : "") << fmt_g(m.hist.bounds[i]);
        os << "],\"buckets\":[";
        for (std::size_t i = 0; i < m.hist.buckets.size(); ++i)
          os << (i ? "," : "") << m.hist.buckets[i];
        os << "],\"count\":" << m.hist.count << ",\"sum\":" << fmt_g(m.hist.sum) << "}";
      } else {
        os << m.value;
      }
    }
    os << "}";
  };
  os << "{";
  emit_kind(MetricKind::kCounter, "counters", true);
  emit_kind(MetricKind::kGauge, "gauges", false);
  emit_kind(MetricKind::kHistogram, "histograms", false);
  os << "}\n";
}

void write_chrome_trace(const std::vector<SpanRecord>& spans, std::ostream& os) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (const SpanRecord& s : spans) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << json_escape(s.name) << "\",\"cat\":\"" << json_escape(s.cat)
       << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << s.tid;
    std::snprintf(buf, sizeof buf, ",\"ts\":%.3f,\"dur\":%.3f",
                  static_cast<double>(s.start_ns) / 1e3, static_cast<double>(s.dur_ns) / 1e3);
    os << buf;
    if (!s.args.empty() || s.trace_id != 0) {
      os << ",\"args\":{";
      bool first_arg = true;
      if (s.trace_id != 0) {
        std::snprintf(buf, sizeof buf, "\"trace_id\":\"%016llx\"",
                      static_cast<unsigned long long>(s.trace_id));
        os << buf;
        first_arg = false;
      }
      for (std::size_t i = 0; i < s.args.size(); ++i) {
        if (!first_arg) os << ",";
        first_arg = false;
        os << "\"" << json_escape(s.args[i].first) << "\":\"" << json_escape(s.args[i].second)
           << "\"";
      }
      os << "}";
    }
    os << "}";
  }
  os << "]}\n";
}

void flush_exports() {
  ExportConfig cfg;
  {
    const std::lock_guard<std::mutex> lk(g_mu);
    if (!g_config || g_flushed) return;
    g_flushed = true;
    cfg = *g_config;
  }
  Registry& reg = Registry::global();
  switch (cfg.mode) {
    case ExportConfig::Mode::kSummary:
    case ExportConfig::Mode::kJson: {
      std::ostringstream body;
      if (cfg.mode == ExportConfig::Mode::kSummary) {
        body << "[telemetry]\n" << render_summary(reg.snapshot());
      } else {
        write_metrics_json(reg.snapshot(), body);
      }
      if (cfg.path.empty()) {
        std::fputs(body.str().c_str(), stderr);
      } else {
        std::ofstream os(cfg.path);
        if (!os.is_open()) {
          std::fprintf(stderr, "[telemetry] cannot write %s\n", cfg.path.c_str());
          return;
        }
        os << body.str();
      }
      break;
    }
    case ExportConfig::Mode::kChrome: {
      std::ofstream os(cfg.path, std::ios::binary);
      if (!os.is_open()) {
        std::fprintf(stderr, "[telemetry] cannot write %s\n", cfg.path.c_str());
        return;
      }
      write_chrome_trace(reg.spans(), os);
      std::fprintf(stderr, "[telemetry] wrote Chrome trace to %s (open in chrome://tracing)\n",
                   cfg.path.c_str());
      break;
    }
  }
}

}  // namespace hps::telemetry
