#include "telemetry/progress.hpp"

namespace hps::telemetry {

ProgressReporter::ProgressReporter(std::size_t total, bool enabled, std::FILE* out,
                                   std::chrono::milliseconds min_interval)
    : total_(total), enabled_(enabled), out_(out), min_interval_(min_interval) {}

void ProgressReporter::completed(const std::string& label) {
  const std::size_t done = done_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!enabled_) return;
  const bool final = done >= total_;
  const auto now = std::chrono::steady_clock::now();
  const std::lock_guard<std::mutex> lk(mu_);
  if (!final && printed_ && now - last_emit_ < min_interval_) return;
  last_emit_ = now;
  printed_ = true;
  // Trailing spaces pad over a longer previous label; '\r' keeps one line.
  std::fprintf(out_, "  [%3zu/%3zu] %-48s\r", done, total_, label.c_str());
  if (final && !final_printed_) {
    std::fprintf(out_, "\n");
    final_printed_ = true;
  }
  std::fflush(out_);
}

void ProgressReporter::finish() {
  if (!enabled_) return;
  const std::lock_guard<std::mutex> lk(mu_);
  if (printed_ && !final_printed_) {
    std::fprintf(out_, "\n");
    final_printed_ = true;
  }
}

}  // namespace hps::telemetry
