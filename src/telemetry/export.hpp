// Exporters and process-level wiring for the telemetry registry.
//
// Three output forms, selected by the HPS_TELEMETRY environment variable or
// an explicit ExportConfig:
//   summary[:<path>]  human-readable metric table (default: stderr)
//   json[:<path>]     machine-readable metrics dump (default: stderr)
//   chrome:<path>     Chrome trace_event JSON of recorded spans, loadable in
//                     chrome://tracing or https://ui.perfetto.dev
//
// configure() enables the global registry (plus span tracing for chrome) and
// arranges for the export to be written once at process exit; callers that
// want deterministic output ordering call flush_exports() themselves.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace hps::telemetry {

struct ExportConfig {
  enum class Mode { kSummary, kJson, kChrome };
  Mode mode = Mode::kSummary;
  std::string path;  ///< output file; empty = stderr (summary/json only)
};

/// Parse "summary", "json", "summary:<path>", "json:<path>" or
/// "chrome:<path>". Returns nullopt for anything else (chrome needs a path).
std::optional<ExportConfig> parse_export_spec(const std::string& spec);

/// Enable the global registry for `cfg` and register an at-exit export.
void configure(const ExportConfig& cfg);

/// Honor HPS_TELEMETRY if set (first call only). Returns true if telemetry
/// was configured by this or an earlier call.
bool init_from_env();

/// Write the configured export now (once; later calls and the at-exit hook
/// become no-ops until configure() is called again).
void flush_exports();

/// Render the snapshot as an aligned text table.
std::string render_summary(const Snapshot& snap);

/// Metrics as a JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
void write_metrics_json(const Snapshot& snap, std::ostream& os);

/// Spans as Chrome trace_event JSON ("X" complete events, microsecond
/// timestamps).
void write_chrome_trace(const std::vector<SpanRecord>& spans, std::ostream& os);

}  // namespace hps::telemetry
