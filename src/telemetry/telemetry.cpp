#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <iterator>

#include "common/error.hpp"

namespace hps::telemetry {

namespace {

/// Slot capacity per shard. Counters and gauges take one slot; a histogram
/// takes buckets + 2. 4096 slots (32 KiB/thread) is far beyond what the
/// built-in instrumentation registers.
constexpr std::uint32_t kSlotCapacity = 4096;

/// Default per-thread span ring capacity. A long-lived traced daemon keeps
/// at most this many spans per thread; older ones are overwritten and
/// counted in spans_dropped().
constexpr std::size_t kDefaultSpanCapacity = 16384;

std::uint64_t next_registry_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Trace id attributed to work on this thread; crosses registries on
/// purpose (the serving request id must reach study-internal spans on the
/// global registry).
thread_local std::uint64_t tls_trace_id = 0;

}  // namespace

std::uint64_t current_trace_id() { return tls_trace_id; }

void set_current_trace_id(std::uint64_t id) { tls_trace_id = id; }

const char* metric_kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

const MetricValue* Snapshot::find(const std::string& name) const {
  for (const auto& m : metrics)
    if (m.name == name) return &m;
  return nullptr;
}

std::uint64_t Snapshot::value(const std::string& name) const {
  const MetricValue* m = find(name);
  return m != nullptr ? m->value : 0;
}

double HistogramData::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t c = buckets[i];
    if (c == 0) continue;
    if (static_cast<double>(cum) + static_cast<double>(c) >= rank) {
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      if (i >= bounds.size()) return lo;  // overflow: no upper bound to interpolate to
      const double frac =
          std::clamp((rank - static_cast<double>(cum)) / static_cast<double>(c), 0.0, 1.0);
      return lo + (bounds[i] - lo) * frac;
    }
    cum += c;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

/// Per-thread storage. Only the owning thread writes; relaxed atomics make
/// the concurrent snapshot reads well-defined without fetch_add traffic.
struct Registry::Shard {
  explicit Shard(std::uint32_t tid_in) : tid(tid_in) {}
  std::array<std::atomic<std::uint64_t>, kSlotCapacity> slots{};
  std::mutex span_mu;  // uncontended: taken by the owner and the exporter
  /// Ring of the most recent spans: below capacity it's a plain vector
  /// (span_head 0); at capacity, span_head is the oldest entry, overwritten
  /// on the next push. Insertion order = [span_head..end) + [0..span_head).
  std::vector<SpanRecord> spans;
  std::size_t span_head = 0;
  std::uint64_t span_dropped = 0;
  const std::uint32_t tid;
};

namespace {
struct TlsEntry {
  std::uint64_t registry_id;
  Registry::Shard* shard;
};
/// Shards this thread has joined, keyed by registry id. Registries get
/// unique ids, so an entry for a destroyed registry can never be matched
/// (and its dangling pointer never dereferenced).
thread_local std::vector<TlsEntry> tls_shards;
}  // namespace

Registry::Registry()
    : span_capacity_(kDefaultSpanCapacity),
      id_(next_registry_id()),
      epoch_(std::chrono::steady_clock::now()) {}

Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry reg;
  return reg;
}

std::int64_t Registry::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Registry::Shard& Registry::local_shard() {
  for (const TlsEntry& e : tls_shards)
    if (e.registry_id == id_) return *e.shard;
  const std::lock_guard<std::mutex> lk(mu_);
  shards_.push_back(std::make_unique<Shard>(static_cast<std::uint32_t>(shards_.size())));
  Shard* s = shards_.back().get();
  tls_shards.push_back({id_, s});
  return *s;
}

const Registry::MetricDef& Registry::define(const std::string& name, MetricKind kind,
                                            std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lk(mu_);
  if (const auto it = by_name_.find(name); it != by_name_.end()) {
    HPS_CHECK_MSG(it->second->kind == kind,
                  "telemetry metric re-registered with a different kind: " + name);
    return *it->second;
  }
  const auto nslots =
      kind == MetricKind::kHistogram ? static_cast<std::uint32_t>(bounds.size()) + 3 : 1u;
  HPS_CHECK_MSG(next_slot_ + nslots <= kSlotCapacity, "telemetry slot capacity exhausted");
  auto def = std::make_unique<MetricDef>();
  def->name = name;
  def->kind = kind;
  def->slot = next_slot_;
  def->nslots = nslots;
  def->bounds = std::move(bounds);
  next_slot_ += nslots;
  MetricDef* raw = def.get();
  defs_.push_back(std::move(def));
  by_name_.emplace(name, raw);
  return *raw;
}

Counter Registry::counter(const std::string& name) {
  const MetricDef& def = define(name, MetricKind::kCounter, {});
  return Counter(&enabled_, this, def.slot);
}

Gauge Registry::gauge(const std::string& name) {
  const MetricDef& def = define(name, MetricKind::kGauge, {});
  return Gauge(&enabled_, this, def.slot);
}

Histogram Registry::histogram(const std::string& name, std::vector<double> bounds) {
  HPS_CHECK_MSG(std::is_sorted(bounds.begin(), bounds.end()),
                "histogram bounds must be ascending: " + name);
  const MetricDef& def = define(name, MetricKind::kHistogram, std::move(bounds));
  return Histogram(&enabled_, this, &def);
}

void Registry::slot_add(std::uint32_t slot, std::uint64_t delta) {
  auto& s = local_shard().slots[slot];
  s.store(s.load(std::memory_order_relaxed) + delta, std::memory_order_relaxed);
}

void Registry::slot_max(std::uint32_t slot, std::uint64_t v) {
  auto& s = local_shard().slots[slot];
  if (v > s.load(std::memory_order_relaxed)) s.store(v, std::memory_order_relaxed);
}

void Registry::hist_observe(const void* def_ptr, double v) {
  const auto& def = *static_cast<const MetricDef*>(def_ptr);
  Shard& sh = local_shard();
  std::size_t i = 0;
  while (i < def.bounds.size() && v > def.bounds[i]) ++i;
  auto bump = [&sh](std::uint32_t slot, std::uint64_t d) {
    auto& s = sh.slots[slot];
    s.store(s.load(std::memory_order_relaxed) + d, std::memory_order_relaxed);
  };
  bump(def.slot + static_cast<std::uint32_t>(i), 1);                      // bucket
  bump(def.slot + def.nslots - 2, 1);                                     // count
  auto& sum = sh.slots[def.slot + def.nslots - 1];                        // double bits
  const double cur = std::bit_cast<double>(sum.load(std::memory_order_relaxed));
  sum.store(std::bit_cast<std::uint64_t>(cur + v), std::memory_order_relaxed);
}

Snapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lk(mu_);
  Snapshot snap;
  snap.metrics.reserve(defs_.size());
  for (const auto& def : defs_) {
    MetricValue mv;
    mv.name = def->name;
    mv.kind = def->kind;
    switch (def->kind) {
      case MetricKind::kCounter:
        for (const auto& sh : shards_)
          mv.value += sh->slots[def->slot].load(std::memory_order_relaxed);
        break;
      case MetricKind::kGauge:
        for (const auto& sh : shards_)
          mv.value = std::max(mv.value, sh->slots[def->slot].load(std::memory_order_relaxed));
        break;
      case MetricKind::kHistogram: {
        mv.hist.bounds = def->bounds;
        mv.hist.buckets.assign(def->bounds.size() + 1, 0);
        for (const auto& sh : shards_) {
          for (std::size_t b = 0; b < mv.hist.buckets.size(); ++b)
            mv.hist.buckets[b] +=
                sh->slots[def->slot + b].load(std::memory_order_relaxed);
          mv.hist.count += sh->slots[def->slot + def->nslots - 2].load(std::memory_order_relaxed);
          mv.hist.sum += std::bit_cast<double>(
              sh->slots[def->slot + def->nslots - 1].load(std::memory_order_relaxed));
        }
        mv.value = mv.hist.count;
        break;
      }
    }
    snap.metrics.push_back(std::move(mv));
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) { return a.name < b.name; });
  return snap;
}

std::vector<SpanRecord> Registry::spans() const {
  const std::lock_guard<std::mutex> lk(mu_);
  std::vector<SpanRecord> out;
  for (const auto& sh : shards_) {
    const std::lock_guard<std::mutex> slk(sh->span_mu);
    out.insert(out.end(), sh->spans.begin() + static_cast<std::ptrdiff_t>(sh->span_head),
               sh->spans.end());
    out.insert(out.end(), sh->spans.begin(),
               sh->spans.begin() + static_cast<std::ptrdiff_t>(sh->span_head));
  }
  return out;
}

void Registry::set_span_capacity(std::size_t capacity) {
  HPS_CHECK_MSG(capacity > 0, "telemetry span capacity must be > 0");
  span_capacity_.store(capacity, std::memory_order_relaxed);
}

std::size_t Registry::span_capacity() const {
  return span_capacity_.load(std::memory_order_relaxed);
}

std::uint64_t Registry::spans_dropped() const {
  const std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t total = 0;
  for (const auto& sh : shards_) {
    const std::lock_guard<std::mutex> slk(sh->span_mu);
    total += sh->span_dropped;
  }
  return total;
}

void Registry::record_span(SpanRecord rec) {
  if (!tracing()) return;
  push_span(std::move(rec));
}

void Registry::reset_values() {
  const std::lock_guard<std::mutex> lk(mu_);
  for (const auto& sh : shards_) {
    for (auto& s : sh->slots) s.store(0, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> slk(sh->span_mu);
    sh->spans.clear();
    sh->span_head = 0;
    sh->span_dropped = 0;
  }
}

void Registry::push_span(SpanRecord rec) {
  Shard& sh = local_shard();
  rec.tid = sh.tid;
  const std::size_t cap = span_capacity_.load(std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lk(sh.span_mu);
  if (sh.spans.size() > cap) {
    // Capacity was lowered: keep the newest `cap` spans (insertion order is
    // the rotation at span_head), count the rest as dropped.
    std::vector<SpanRecord> ordered;
    ordered.reserve(sh.spans.size());
    std::move(sh.spans.begin() + static_cast<std::ptrdiff_t>(sh.span_head), sh.spans.end(),
              std::back_inserter(ordered));
    std::move(sh.spans.begin(), sh.spans.begin() + static_cast<std::ptrdiff_t>(sh.span_head),
              std::back_inserter(ordered));
    sh.span_dropped += ordered.size() - cap;
    sh.spans.assign(std::make_move_iterator(ordered.end() - static_cast<std::ptrdiff_t>(cap)),
                    std::make_move_iterator(ordered.end()));
    sh.span_head = 0;
  }
  if (sh.spans.size() < cap) {
    sh.spans.push_back(std::move(rec));
  } else {
    sh.spans[sh.span_head] = std::move(rec);
    sh.span_head = (sh.span_head + 1) % cap;
    ++sh.span_dropped;
  }
}

Span::Span(Registry& reg, std::string name, const char* cat) {
  if (!reg.tracing()) return;
  reg_ = &reg;
  rec_.name = std::move(name);
  rec_.cat = cat;
  rec_.trace_id = current_trace_id();
  start_ns_ = reg.now_ns();
}

Span::Span(std::string name, const char* cat) : Span(Registry::global(), std::move(name), cat) {}

Span::~Span() {
  if (reg_ == nullptr) return;
  rec_.start_ns = start_ns_;
  rec_.dur_ns = reg_->now_ns() - start_ns_;
  reg_->push_span(std::move(rec_));
}

void Span::arg(std::string key, std::string value) {
  if (reg_ == nullptr) return;
  rec_.args.emplace_back(std::move(key), std::move(value));
}

ScopedTimer::ScopedTimer(Histogram h) : h_(h), live_(h.live()) {
  if (live_) start_ = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer() {
  if (!live_) return;
  const auto end = std::chrono::steady_clock::now();
  h_.observe(std::chrono::duration<double>(end - start_).count());
}

std::vector<double> duration_bounds() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0};
}

std::vector<double> latency_bounds() {
  std::vector<double> b;
  for (double decade = 1e-6; decade < 20.0; decade *= 10.0)
    for (const double m : {1.0, 2.0, 5.0}) b.push_back(decade * m);
  b.push_back(100.0);
  return b;
}

}  // namespace hps::telemetry
