// Low-overhead metrics and tracing for the DES engine, the simulators and
// the study runner.
//
// A Registry holds named counters, gauges and fixed-bucket histograms. Hot
// paths hold cheap value handles (Counter/Gauge/Histogram); when telemetry is
// disabled — the default — every update is a single relaxed-load branch.
// When enabled, updates go to a per-thread shard that only its owning thread
// writes, so worker threads never contend on a shared cache line; the
// exporting thread merges all shards on snapshot().
//
// Spans are RAII scoped regions feeding a Chrome trace_event timeline
// (export.hpp renders them for chrome://tracing / Perfetto). Tracing is a
// separate flag from metrics so summary/JSON modes pay nothing for spans.
//
// Single-threaded hot loops (the DES engine's event dispatch) use
// LocalCounter/LocalMax: a plain integer increment with an explicit flush of
// the delta into a shared registry counter at run boundaries.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace hps::telemetry {

class Registry;

namespace detail {
/// Enabled flag a default-constructed handle points at: never set, so an
/// unbound handle is a safe no-op without a null check on the hot path.
inline const std::atomic<bool> kNeverEnabled{false};
}  // namespace detail

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* metric_kind_name(MetricKind k);

/// Merged histogram contents. Bucket i counts observations v <= bounds[i]
/// (and above the previous bound); the last bucket is the overflow.
struct HistogramData {
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0;
  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  /// Estimated q-quantile (q in [0,1]) by linear interpolation inside the
  /// bucket containing the rank. Error is bounded by the bucket width; the
  /// overflow bucket reports its lower bound. 0 when the histogram is empty.
  double quantile(double q) const;
};

struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;  ///< counter total / gauge max over all threads
  HistogramData hist;       ///< kHistogram only
};

/// Point-in-time merge of every shard, sorted by metric name.
struct Snapshot {
  std::vector<MetricValue> metrics;

  const MetricValue* find(const std::string& name) const;
  /// Counter or gauge value by name; 0 when absent.
  std::uint64_t value(const std::string& name) const;
};

/// One completed span, timestamped in nanoseconds since the registry epoch.
struct SpanRecord {
  std::string name;
  std::string cat;
  std::uint32_t tid = 0;
  /// Request trace id (current_trace_id() at span construction); 0 when the
  /// span is not attributed to a request.
  std::uint64_t trace_id = 0;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

/// Trace id attributed to work on the current thread; 0 = unattributed.
/// Spans stamp it at construction, so study-internal spans pick up the
/// serving request that caused them without any signature changes.
std::uint64_t current_trace_id();
void set_current_trace_id(std::uint64_t id);

/// RAII scope: sets the thread's trace id, restoring the previous value on
/// exit (scopes nest — a coalesced study keeps its owner's id).
class TraceIdScope {
 public:
  explicit TraceIdScope(std::uint64_t id) : prev_(current_trace_id()) {
    set_current_trace_id(id);
  }
  ~TraceIdScope() { set_current_trace_id(prev_); }
  TraceIdScope(const TraceIdScope&) = delete;
  TraceIdScope& operator=(const TraceIdScope&) = delete;

 private:
  std::uint64_t prev_;
};

/// Monotonically increasing counter handle.
class Counter {
 public:
  Counter() = default;
  inline void add(std::uint64_t delta = 1) const;

 private:
  friend class Registry;
  Counter(const std::atomic<bool>* enabled, Registry* reg, std::uint32_t slot)
      : enabled_(enabled), reg_(reg), slot_(slot) {}
  const std::atomic<bool>* enabled_ = &detail::kNeverEnabled;
  Registry* reg_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// Gauge recording the maximum value observed (merged by max over threads) —
/// the aggregation that makes sense for watermarks like queue depth.
class Gauge {
 public:
  Gauge() = default;
  inline void record(std::uint64_t v) const;

 private:
  friend class Registry;
  Gauge(const std::atomic<bool>* enabled, Registry* reg, std::uint32_t slot)
      : enabled_(enabled), reg_(reg), slot_(slot) {}
  const std::atomic<bool>* enabled_ = &detail::kNeverEnabled;
  Registry* reg_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// Fixed-bucket histogram handle. Bucket bounds are set at registration and
/// immutable afterwards.
class Histogram {
 public:
  Histogram() = default;
  inline void observe(double v) const;
  /// True when observations are currently being recorded.
  bool live() const { return enabled_->load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  friend class ScopedTimer;
  Histogram(const std::atomic<bool>* enabled, Registry* reg, const void* def)
      : enabled_(enabled), reg_(reg), def_(def) {}
  const std::atomic<bool>* enabled_ = &detail::kNeverEnabled;
  Registry* reg_ = nullptr;
  const void* def_ = nullptr;  // Registry::MetricDef, opaque to callers
};

class Registry {
 public:
  /// Per-thread storage; defined in the .cpp (public name so the
  /// implementation's thread-local bookkeeping can refer to it).
  struct Shard;

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every built-in instrumentation point uses.
  static Registry& global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  bool tracing() const { return tracing_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  /// Span recording; implies nothing about metrics (set both for chrome).
  void set_tracing(bool on) { tracing_.store(on, std::memory_order_relaxed); }

  /// Register (or look up) a metric. Re-registering an existing name returns
  /// the same handle; the kind must match.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name, std::vector<double> bounds);

  /// Merge every thread shard into one consistent-enough view. Safe to call
  /// while workers are still updating (relaxed reads; per-slot atomicity).
  Snapshot snapshot() const;

  /// All retained spans, across threads, in per-thread insertion order.
  /// Span storage is a per-thread ring of span_capacity() records; once a
  /// thread overflows its ring the oldest spans are overwritten and counted
  /// in spans_dropped() — a long-lived traced daemon stays bounded.
  std::vector<SpanRecord> spans() const;

  /// Per-thread span ring capacity (applies to rings created afterwards and
  /// truncates existing ones on next write). Must be > 0.
  void set_span_capacity(std::size_t capacity);
  std::size_t span_capacity() const;
  /// Spans overwritten because a thread's ring was full, across threads.
  std::uint64_t spans_dropped() const;

  /// Record an externally-built span (the serving path emits retroactive
  /// per-phase spans from timestamps it already took). No-op unless tracing;
  /// the record's tid is overwritten with the calling thread's shard id.
  void record_span(SpanRecord rec);

  /// Zero every metric in every shard and drop recorded spans. Metric
  /// definitions (and outstanding handles) stay valid. Intended for tests.
  void reset_values();

  /// Nanoseconds since this registry was constructed (steady clock).
  std::int64_t now_ns() const;

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;
  friend class Span;

  struct MetricDef {
    std::string name;
    MetricKind kind;
    std::uint32_t slot;    ///< first slot in every shard's slot array
    std::uint32_t nslots;  ///< slots occupied (histograms: buckets + count + sum)
    std::vector<double> bounds;
  };

  const MetricDef& define(const std::string& name, MetricKind kind,
                          std::vector<double> bounds);
  Shard& local_shard();
  void slot_add(std::uint32_t slot, std::uint64_t delta);
  void slot_max(std::uint32_t slot, std::uint64_t v);
  void hist_observe(const void* def, double v);
  void push_span(SpanRecord rec);

  mutable std::mutex mu_;  // guards defs_/by_name_/shards_ growth and snapshot
  std::vector<std::unique_ptr<MetricDef>> defs_;  // unique_ptr: stable addresses
  std::unordered_map<std::string, MetricDef*> by_name_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint32_t next_slot_ = 0;
  std::atomic<std::size_t> span_capacity_;
  std::atomic<bool> enabled_{false};
  std::atomic<bool> tracing_{false};
  const std::uint64_t id_;  // unique per instance, keys the thread-local cache
  const std::chrono::steady_clock::time_point epoch_;
};

inline void Counter::add(std::uint64_t delta) const {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  reg_->slot_add(slot_, delta);
}

inline void Gauge::record(std::uint64_t v) const {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  reg_->slot_max(slot_, v);
}

inline void Histogram::observe(double v) const {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  reg_->hist_observe(def_, v);
}

/// RAII region recorded into the Chrome trace timeline. Inactive (and nearly
/// free) unless the registry's tracing flag is on at construction time.
class Span {
 public:
  Span(Registry& reg, std::string name, const char* cat);
  /// Convenience: span on the global registry.
  Span(std::string name, const char* cat);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return reg_ != nullptr; }
  /// Attach a key/value shown under "args" in the trace viewer.
  void arg(std::string key, std::string value);

 private:
  Registry* reg_ = nullptr;  // null: tracing was off, span is a no-op
  std::int64_t start_ns_ = 0;
  SpanRecord rec_;
};

/// RAII timer observing its lifetime, in seconds, into a histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram h);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram h_;
  bool live_ = false;
  std::chrono::steady_clock::time_point start_;
};

/// Single-writer counter for single-threaded hot loops: a plain increment,
/// with an explicit flush of the accumulated delta into a shared registry
/// counter at run boundaries (so the hot path never touches atomics).
class LocalCounter {
 public:
  void add(std::uint64_t delta = 1) { v_ += delta; }
  std::uint64_t value() const { return v_; }
  void reset() { v_ = 0; flushed_ = 0; }
  void flush_to(const Counter& c) {
    if (v_ != flushed_) {
      c.add(v_ - flushed_);
      flushed_ = v_;
    }
  }

 private:
  std::uint64_t v_ = 0;
  std::uint64_t flushed_ = 0;
};

/// Single-writer watermark companion to LocalCounter.
class LocalMax {
 public:
  void record(std::uint64_t v) {
    if (v > v_) v_ = v;
  }
  std::uint64_t value() const { return v_; }
  void reset() { v_ = 0; }
  void flush_to(const Gauge& g) const { g.record(v_); }

 private:
  std::uint64_t v_ = 0;
};

/// Standard log-spaced bounds for wall-clock duration histograms: 1 µs to
/// 100 s in decades.
std::vector<double> duration_bounds();

/// Finer 1-2-5 log-spaced bounds (1 µs to 100 s) for serving-latency
/// histograms, where quantile() interpolation error must stay small enough
/// for p50/p99/p99.9 to be meaningful.
std::vector<double> latency_bounds();

}  // namespace hps::telemetry
