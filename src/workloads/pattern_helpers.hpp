// Shared building blocks for the application generators: process-grid
// factorizations, halo-exchange emitters, and imbalanced compute models.
#pragma once

#include <array>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "trace/builder.hpp"
#include "workloads/ground_truth.hpp"

namespace hps::workloads {

/// Factor n into a near-square 2D grid (px >= py, px * py == n).
std::array<int, 2> grid2d(int n);

/// Factor n into a near-cubic 3D grid (px >= py >= pz, product == n).
std::array<int, 3> grid3d(int n);

/// Largest integer k with k*k <= n.
int isqrt_floor(int n);
/// Largest integer k with k*k*k <= n.
int icbrt_floor(int n);
/// True if n is a perfect square / cube / power of two.
bool is_square(int n);
bool is_cube(int n);
bool is_pow2(int n);

/// Per-rank compute-time model: a persistent per-rank speed skew (some ranks
/// are systematically slower — load imbalance) plus per-call lognormal noise.
class ComputeModel {
 public:
  /// `imbalance_sigma` controls the persistent skew spread; `noise_sigma`
  /// the per-call jitter. Both are lognormal shape parameters.
  ComputeModel(Rank nranks, SimTime base_ns, double imbalance_sigma, double noise_sigma,
               std::uint64_t seed);

  /// A measured compute interval for rank r, scaled by `scale`.
  SimTime sample(Rank r, double scale = 1.0);

  double rank_skew(Rank r) const { return skew_[static_cast<std::size_t>(r)]; }

 private:
  SimTime base_;
  double noise_sigma_;
  std::vector<double> skew_;
  Rng rng_;
};

/// Emit a nonblocking halo exchange on rank builder `b`: Irecv from every
/// neighbor, Isend to every neighbor, WaitAll. `neighbors` and `bytes` are
/// parallel arrays; `tag` namespaces the exchange phase. The measured
/// durations come from `gt` (WaitAll carries the dominant transit cost).
void emit_halo_exchange(trace::RankBuilder& b, std::span<const Rank> neighbors,
                        std::span<const std::uint64_t> bytes, Tag tag, GroundTruth& gt);

/// Neighbor ranks (+x,-x,+y,-y) of `r` in a px*py periodic grid.
std::vector<Rank> neighbors2d(int r, int px, int py);
/// Neighbor ranks (+x,-x,+y,-y,+z,-z) of `r` in a periodic 3D grid.
std::vector<Rank> neighbors3d(int r, int px, int py, int pz);

}  // namespace hps::workloads
