// Ground-truth "measured time" synthesis.
//
// The paper's traces carry real measured entry/exit times from Cielito,
// Hopper and Edison. We have no cluster, so the generators ask this cost
// model for plausible measured durations: a Hockney/Thakur-Gropp base cost
// for the collection machine, times a pattern-dependent contention inflation
// (alltoall-heavy codes saw real congestion the analytic base cost lacks),
// times a systematic measurement margin (OS noise, progress-engine jitter),
// times per-event lognormal noise.
//
// The margin is what makes both prediction tools come out *below* the
// measured time, matching Figures 3(c)/4(c) of the paper where SST/Macro is
// ~8-11% and MFACT ~13-15% below measurement.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "machine/machine.hpp"
#include "trace/event.hpp"

namespace hps::workloads {

struct GroundTruthParams {
  Bandwidth bandwidth = gbps_to_Bps(10.0);
  SimTime latency = 2'500;
  SimTime overhead = 500;
  /// Multiplier on communication costs from network contention the base
  /// model cannot see. Generators set this per pattern (1.0 = uncontended
  /// nearest-neighbor; ~1.5+ = dense all-to-all at scale).
  double contention_inflation = 1.15;
  /// Systematic measurement margin (>1): real runs are slower than ideal.
  double measured_margin = 1.10;
  /// Lognormal sigma for per-event noise on communication durations.
  double noise_sigma = 0.06;
};

GroundTruthParams ground_truth_for(const machine::MachineConfig& m);

/// Stateful synthesizer; one per generated trace (owns its RNG stream).
class GroundTruth {
 public:
  GroundTruth(const GroundTruthParams& p, std::uint64_t seed)
      : p_(p), rng_(mix_seed(seed, 0x6D656173)) {}

  const GroundTruthParams& params() const { return p_; }

  /// Generators with congestion-prone patterns (dense all-to-alls, random
  /// neighborhoods) raise the inflation their "measurements" carry.
  void set_contention(double inflation) { p_.contention_inflation = inflation; }

  /// Measured duration of a blocking send (sender-side occupancy).
  SimTime send(std::uint64_t bytes);
  /// Measured duration of Isend / Irecv posting (software overhead only).
  SimTime post();
  /// Measured duration of a blocking recv whose message is in flight
  /// (transit + any skew the caller wants folded in via `extra_wait`).
  SimTime recv(std::uint64_t bytes, SimTime extra_wait = 0);
  /// Measured duration of a Wait completing a receive of `bytes`.
  SimTime wait_recv(std::uint64_t bytes, SimTime extra_wait = 0);
  /// Measured duration of a Wait completing sends only.
  SimTime wait_send();
  /// Measured duration of a collective on n ranks (trace::OpType payload
  /// semantics), with an extra synchronization skew term.
  SimTime collective(trace::OpType op, int n, std::uint64_t bytes, SimTime skew = 0);
  /// Measured duration of an Alltoallv leg given this rank's volumes.
  SimTime alltoallv(int n, int nonzero_peers, std::uint64_t send_bytes,
                    std::uint64_t recv_bytes, SimTime skew = 0);

  /// Apply margin x contention x noise to a base communication cost.
  SimTime commify(double base_ns);

  Rng& rng() { return rng_; }

 private:
  double transfer_ns(std::uint64_t bytes) const {
    return p_.bandwidth > 0 ? static_cast<double>(bytes) / p_.bandwidth * 1e9 : 0.0;
  }
  GroundTruthParams p_;
  Rng rng_;
};

}  // namespace hps::workloads
