// The synthetic 235-trace corpus, matching the paper's Table I(a) rank
// distribution: 72 traces at 64 ranks, 18 at 65-128, 80 at 129-256, 12 at
// 257-512, 37 at 513-1024 and 16 at 1025-1728 (235 total). Applications
// rotate through all 18 generators subject to their rank-shape constraints,
// machines rotate through Cielito / Hopper / Edison, and problem sizes vary,
// yielding a communication-intensity spread comparable to Table I(b).
//
// Traces are described by lightweight specs and generated on demand: the
// full corpus materialized at once would hold hundreds of millions of
// events.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "workloads/generators.hpp"

namespace hps::workloads {

struct TraceSpec {
  int id = 0;           ///< stable corpus index, 0-based
  std::string app;
  GenParams params;
};

struct CorpusOptions {
  std::uint64_t seed = 42;
  /// Global multiplier on iteration counts — the knob that trades corpus
  /// fidelity against study wall time (1.0 = full-size traces).
  double duration_scale = 1.0;
  /// Emit only the first `limit` specs when > 0 (for tests/smoke runs).
  int limit = 0;
};

/// The 235 trace specifications (fewer if `limit` is set).
std::vector<TraceSpec> build_corpus_specs(const CorpusOptions& opts = {});

/// Generate (and validate) the trace for a spec.
trace::Trace generate_spec(const TraceSpec& spec);

/// Table I(a) rank buckets: {lo, hi, count}.
struct RankBucket {
  Rank lo, hi;
  int count;
};
std::vector<RankBucket> table1a_buckets();

}  // namespace hps::workloads
