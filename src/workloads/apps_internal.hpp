// Internal scaffolding shared by the application generators (not part of the
// public workloads API).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "machine/machine.hpp"
#include "trace/builder.hpp"
#include "trace/validate.hpp"
#include "workloads/generators.hpp"
#include "workloads/pattern_helpers.hpp"

namespace hps::workloads {

/// Holds the under-construction trace, one RankBuilder per rank (so request
/// ids persist across emission phases), and the ground-truth cost model.
struct AppBuild {
  AppBuild(const std::string& app, const GenParams& p)
      : params(p),
        machine_cfg(machine::machine_by_name(p.machine)),
        gt(ground_truth_for(machine_cfg), p.seed) {
    HPS_REQUIRE(p.ranks >= 2, "generator needs at least 2 ranks");
    trace::TraceMeta meta;
    meta.app = app;
    meta.variant = std::to_string(p.ranks) + "r_s" + std::to_string(p.size_factor);
    meta.machine = p.machine;
    meta.nranks = p.ranks;
    meta.ranks_per_node = std::min(p.ranks_per_node, machine_cfg.cores_per_node);
    meta.seed = p.seed;
    trace = trace::Trace(std::move(meta));
    builders.reserve(static_cast<std::size_t>(p.ranks));
    for (Rank r = 0; r < p.ranks; ++r) builders.emplace_back(trace, r);
  }

  trace::RankBuilder& builder(Rank r) { return builders[static_cast<std::size_t>(r)]; }

  /// Communicator of row `row` in a q-wide 2D grid (cached).
  CommId row_comm(int row, int q) {
    auto it = row_comms.find(row);
    if (it != row_comms.end()) return it->second;
    std::vector<Rank> members;
    members.reserve(static_cast<std::size_t>(q));
    for (int c = 0; c < q; ++c) members.push_back(static_cast<Rank>(row * q + c));
    const CommId id = trace.add_comm(std::move(members));
    row_comms.emplace(row, id);
    return id;
  }

  /// Validate and hand the trace over.
  trace::Trace finish() {
    trace::validate_or_throw(trace);
    return std::move(trace);
  }

  GenParams params;
  machine::MachineConfig machine_cfg;
  trace::Trace trace;
  std::vector<trace::RankBuilder> builders;
  GroundTruth gt;
  std::map<int, CommId> row_comms;
};

/// Iteration counts scale (at least 1).
inline int scaled_iters(int base, double iter_factor) {
  return std::max(1, static_cast<int>(static_cast<double>(base) * iter_factor + 0.5));
}

inline double scaled(double base, double factor) { return base * factor; }

inline std::uint64_t scaled_bytes(double base, double factor) {
  const double v = base * factor;
  return v < 1.0 ? 1 : static_cast<std::uint64_t>(v);
}

/// Per-rank per-iteration compute time for a fixed aggregate amount of work
/// (strong scaling: the same problem divided over more ranks).
inline SimTime per_rank_compute_ns(double aggregate_ns, const GenParams& p) {
  const double v = aggregate_ns * p.size_factor / static_cast<double>(p.ranks);
  return std::max<SimTime>(1, static_cast<SimTime>(v));
}

/// Sample one compute interval per rank (used when the generator needs the
/// max across ranks to synthesize collective wait skews).
inline std::vector<SimTime> sample_all(ComputeModel& cm, Rank nranks, double scale = 1.0) {
  std::vector<SimTime> out(static_cast<std::size_t>(nranks));
  for (Rank r = 0; r < nranks; ++r) out[static_cast<std::size_t>(r)] = cm.sample(r, scale);
  return out;
}

/// Registration hooks implemented by apps_npb.cpp / apps_doe.cpp.
void register_npb_apps(std::vector<std::unique_ptr<AppGenerator>>& out);
void register_doe_apps(std::vector<std::unique_ptr<AppGenerator>>& out);

}  // namespace hps::workloads
