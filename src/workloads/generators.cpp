#include "workloads/generators.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "workloads/apps_internal.hpp"

namespace hps::workloads {

namespace {

const std::vector<std::unique_ptr<AppGenerator>>& registry() {
  static const auto* gens = [] {
    auto* v = new std::vector<std::unique_ptr<AppGenerator>>();
    register_npb_apps(*v);
    register_doe_apps(*v);
    return v;
  }();
  return *gens;
}

}  // namespace

Rank AppGenerator::pick_ranks(Rank lo, Rank hi) const {
  // Prefer the largest supported count in range (bigger runs stress the
  // pattern more), falling back to -1 when the app cannot fit the bucket.
  for (Rank r = hi; r >= lo; --r)
    if (supports_ranks(r)) return r;
  return -1;
}

std::vector<std::string> npb_app_names() {
  return {"BT", "CG", "DT", "EP", "FT", "IS", "LU", "MG", "SP"};
}

std::vector<std::string> doe_app_names() {
  return {"BigFFT", "CR",     "AMG", "MiniFE",  "MultiGrid",
          "FillBoundary", "LULESH", "CNS", "CMC", "Nekbone"};
}

std::vector<std::string> all_app_names() {
  auto v = npb_app_names();
  const auto d = doe_app_names();
  v.insert(v.end(), d.begin(), d.end());
  return v;
}

const AppGenerator& generator_by_name(const std::string& name) {
  for (const auto& g : registry())
    if (g->name() == name) return *g;
  HPS_THROW("unknown application generator: " + name);
}

trace::Trace generate_app(const std::string& name, const GenParams& p) {
  const AppGenerator& gen = generator_by_name(name);
  HPS_REQUIRE(gen.supports_ranks(p.ranks),
              "generator " + name + " does not support " + std::to_string(p.ranks) + " ranks");
  return gen.generate(p);
}

}  // namespace hps::workloads
