#include "workloads/pattern_helpers.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hps::workloads {

int isqrt_floor(int n) {
  int k = static_cast<int>(std::sqrt(static_cast<double>(n)));
  while (k * k > n) --k;
  while ((k + 1) * (k + 1) <= n) ++k;
  return k;
}

int icbrt_floor(int n) {
  int k = static_cast<int>(std::cbrt(static_cast<double>(n)));
  while (k * k * k > n) --k;
  while ((k + 1) * (k + 1) * (k + 1) <= n) ++k;
  return k;
}

bool is_square(int n) {
  const int k = isqrt_floor(n);
  return k * k == n;
}

bool is_cube(int n) {
  const int k = icbrt_floor(n);
  return k * k * k == n;
}

bool is_pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }

std::array<int, 2> grid2d(int n) {
  HPS_CHECK(n >= 1);
  int py = isqrt_floor(n);
  while (py > 1 && n % py != 0) --py;
  return {n / py, py};
}

std::array<int, 3> grid3d(int n) {
  HPS_CHECK(n >= 1);
  int pz = icbrt_floor(n);
  while (pz > 1 && n % pz != 0) --pz;
  const auto rest = grid2d(n / pz);
  std::array<int, 3> g{rest[0], rest[1], pz};
  std::sort(g.begin(), g.end(), std::greater<>());
  return g;
}

ComputeModel::ComputeModel(Rank nranks, SimTime base_ns, double imbalance_sigma,
                           double noise_sigma, std::uint64_t seed)
    : base_(base_ns), noise_sigma_(noise_sigma), rng_(mix_seed(seed, 0xC0117E)) {
  skew_.resize(static_cast<std::size_t>(nranks));
  Rng skew_rng(mix_seed(seed, 0x5EED5EED));
  for (auto& s : skew_) s = std::exp(imbalance_sigma * skew_rng.normal());
}

SimTime ComputeModel::sample(Rank r, double scale) {
  const double v = static_cast<double>(base_) * scale * skew_[static_cast<std::size_t>(r)] *
                   std::exp(noise_sigma_ * rng_.normal());
  return std::max<SimTime>(1, static_cast<SimTime>(v));
}

void emit_halo_exchange(trace::RankBuilder& b, std::span<const Rank> neighbors,
                        std::span<const std::uint64_t> bytes, Tag tag, GroundTruth& gt) {
  HPS_CHECK(neighbors.size() == bytes.size());
  std::uint64_t max_recv = 0;
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    b.irecv(neighbors[i], bytes[i], tag, gt.post());
    max_recv = std::max(max_recv, bytes[i]);
  }
  for (std::size_t i = 0; i < neighbors.size(); ++i)
    b.isend(neighbors[i], bytes[i], tag, gt.post());
  b.waitall(gt.wait_recv(max_recv));
}

std::vector<Rank> neighbors2d(int r, int px, int py) {
  const int x = r % px, y = r / px;
  auto at = [&](int xx, int yy) {
    return static_cast<Rank>(((yy + py) % py) * px + ((xx + px) % px));
  };
  std::vector<Rank> out = {at(x + 1, y), at(x - 1, y), at(x, y + 1), at(x, y - 1)};
  // Degenerate grids (px or py <= 2) produce duplicate neighbors; keep the
  // unique set so each pair exchanges once per phase.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  out.erase(std::remove(out.begin(), out.end(), static_cast<Rank>(r)), out.end());
  return out;
}

std::vector<Rank> neighbors3d(int r, int px, int py, int pz) {
  const int x = r % px, y = (r / px) % py, z = r / (px * py);
  auto at = [&](int xx, int yy, int zz) {
    return static_cast<Rank>((((zz + pz) % pz) * py + ((yy + py) % py)) * px +
                             ((xx + px) % px));
  };
  std::vector<Rank> out = {at(x + 1, y, z), at(x - 1, y, z), at(x, y + 1, z),
                           at(x, y - 1, z), at(x, y, z + 1), at(x, y, z - 1)};
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  out.erase(std::remove(out.begin(), out.end(), static_cast<Rank>(r)), out.end());
  return out;
}

}  // namespace hps::workloads
