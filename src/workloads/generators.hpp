// Synthetic application trace generators.
//
// Each generator emits a DUMPI-style trace whose communication pattern
// follows the published structure of the benchmark it stands in for — the
// NAS Parallel Benchmarks (BT, CG, DT, EP, FT, IS, LU, MG, SP) and the DOE
// DesignForward / ExMatEx / CESAR / ExaCT codes the paper uses (BigFFT,
// CrystalRouter, AMG, MiniFE, MultiGrid, FillBoundary, LULESH, CNS, CMC,
// Nekbone). See DESIGN.md §2 for the substitution rationale.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "workloads/ground_truth.hpp"

namespace hps::workloads {

struct GenParams {
  Rank ranks = 64;
  int ranks_per_node = 16;
  /// Machine the trace is "collected" on (sets the ground-truth cost model).
  std::string machine = "cielito";
  std::uint64_t seed = 1;
  /// Problem-size multiplier: scales per-rank data volumes and compute.
  double size_factor = 1.0;
  /// Iteration-count multiplier: scales trace length.
  double iter_factor = 1.0;
};

class AppGenerator {
 public:
  virtual ~AppGenerator() = default;
  virtual std::string name() const = 0;
  /// True if `ranks` is a legal process count for this application.
  virtual bool supports_ranks(Rank ranks) const { return ranks >= 2; }
  /// Nearest supported rank count within [lo, hi]; -1 if none.
  Rank pick_ranks(Rank lo, Rank hi) const;
  virtual trace::Trace generate(const GenParams& p) const = 0;
};

/// All application names, NPB first then DOE, in a stable order.
std::vector<std::string> all_app_names();
std::vector<std::string> npb_app_names();
std::vector<std::string> doe_app_names();

/// Look up by name (case-sensitive); throws hps::Error if unknown.
const AppGenerator& generator_by_name(const std::string& name);

/// Generate a trace for app `name` (validates before returning).
trace::Trace generate_app(const std::string& name, const GenParams& p);

}  // namespace hps::workloads
