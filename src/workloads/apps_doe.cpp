// Generators for the DOE co-design applications used in the paper: the
// DesignForward extracted kernels (BigFFT, CrystalRouter), mini-apps (AMG,
// MiniFE) and full applications (MultiGrid, FillBoundary), plus the
// ExMatEx/CESAR/ExaCT mini-apps (LULESH, CNS, CMC, Nekbone).
#include "workloads/apps_internal.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.hpp"

namespace hps::workloads {

using trace::OpType;
using trace::RankBuilder;
using trace::Trace;

namespace {

// ---------------------------------------------------------------------------
// BigFFT — a distributed 1D FFT of a very large dataset: a handful of
// enormous Alltoall transposes with little computation. Communication-bound.
// ---------------------------------------------------------------------------
class BigFftGenerator final : public AppGenerator {
 public:
  std::string name() const override { return "BigFFT"; }
  bool supports_ranks(Rank ranks) const override { return ranks >= 2 && is_pow2(ranks); }
  Trace generate(const GenParams& p) const override {
    AppBuild ab(name(), p);
    ab.gt.set_contention(1.50);  // giant transposes congest the fabric
    const int iters = scaled_iters(3, p.iter_factor);
    const double grid_bytes = scaled(1.5e8, p.size_factor);
    const auto per_pair = static_cast<std::uint64_t>(std::max(
        1.0, grid_bytes / (static_cast<double>(p.ranks) * static_cast<double>(p.ranks))));
    const SimTime per_iter = per_rank_compute_ns(4.0e8, p);
    ComputeModel cm(p.ranks, per_iter, 0.04, 0.03, p.seed);
    for (int i = 0; i < iters; ++i) {
      for (Rank r = 0; r < p.ranks; ++r) {
        RankBuilder& b = ab.builder(r);
        b.compute(cm.sample(r, 0.5));
        b.alltoall(per_pair, ab.gt.collective(OpType::kAlltoall, p.ranks, per_pair));
        b.compute(cm.sample(r, 0.5));
        b.alltoall(per_pair, ab.gt.collective(OpType::kAlltoall, p.ranks, per_pair));
      }
    }
    return ab.finish();
  }
};

// ---------------------------------------------------------------------------
// CR (Crystal Router) — Nek5000's staged hypercube all-to-all: log2(p)
// stages exchanging large aggregated, irregularly sized buffers with the
// cube partner. Intensely and irregularly communication-bound.
// ---------------------------------------------------------------------------
class CrystalRouterGenerator final : public AppGenerator {
 public:
  std::string name() const override { return "CR"; }
  bool supports_ranks(Rank ranks) const override { return ranks >= 2 && is_pow2(ranks); }
  Trace generate(const GenParams& p) const override {
    AppBuild ab(name(), p);
    ab.gt.set_contention(1.45);  // staged hypercube with large irregular buffers
    const int iters = scaled_iters(3, p.iter_factor);
    const int stages = std::bit_width(static_cast<unsigned>(p.ranks)) - 1;
    // Total routed volume per rank per iteration is fixed; each stage
    // carries ~1/stages of it with heavy per-pair variation.
    const auto per_stage = scaled_bytes(1.0e6 / stages, p.size_factor);
    const SimTime per_iter = per_rank_compute_ns(4.0e7, p);
    ComputeModel cm(p.ranks, per_iter, 0.08, 0.05, p.seed);

    // Deterministic irregular stage volumes, symmetric per pair so the
    // matching send/recv sizes agree.
    Rng vol_rng(mix_seed(p.seed, 0xC4257A1));
    std::vector<std::vector<std::uint64_t>> stage_bytes(
        static_cast<std::size_t>(stages),
        std::vector<std::uint64_t>(static_cast<std::size_t>(p.ranks)));
    for (int s = 0; s < stages; ++s)
      for (Rank r = 0; r < p.ranks; ++r) {
        const Rank partner = r ^ (1 << s);
        if (partner < r) {
          stage_bytes[static_cast<std::size_t>(s)][static_cast<std::size_t>(r)] =
              stage_bytes[static_cast<std::size_t>(s)][static_cast<std::size_t>(partner)];
        } else {
          stage_bytes[static_cast<std::size_t>(s)][static_cast<std::size_t>(r)] =
              static_cast<std::uint64_t>(static_cast<double>(per_stage) *
                                         vol_rng.lognormal_median(1.0, 0.45));
        }
      }

    for (int i = 0; i < iters; ++i) {
      for (Rank r = 0; r < p.ranks; ++r) {
        RankBuilder& b = ab.builder(r);
        b.compute(cm.sample(r));
        for (int s = 0; s < stages; ++s) {
          const Rank partner = r ^ (1 << s);
          const std::uint64_t bytes =
              stage_bytes[static_cast<std::size_t>(s)][static_cast<std::size_t>(r)];
          b.irecv(partner, bytes, static_cast<Tag>(60 + s), ab.gt.post());
          b.isend(partner, bytes, static_cast<Tag>(60 + s), ab.gt.post());
          b.waitall(ab.gt.wait_recv(bytes));
          b.compute(cm.sample(r, 0.05));
        }
      }
    }
    return ab.finish();
  }
};

// ---------------------------------------------------------------------------
// AMG — algebraic multigrid: V-cycles over an *irregular* rank graph (the
// coarse-grid operator couples distant ranks). Many small messages plus a
// convergence Allreduce per level. Latency-leaning communication.
// ---------------------------------------------------------------------------
class AmgGenerator final : public AppGenerator {
 public:
  std::string name() const override { return "AMG"; }
  bool supports_ranks(Rank ranks) const override { return ranks >= 8; }
  Trace generate(const GenParams& p) const override {
    AppBuild ab(name(), p);
    const int cycles = scaled_iters(10, p.iter_factor);
    const int levels = 6;
    const auto msg0 = scaled_bytes(8.0e3, p.size_factor);
    const SimTime per_cycle = per_rank_compute_ns(2.4e9, p);
    ComputeModel cm(p.ranks, per_cycle, 0.10, 0.05, p.seed);

    // Irregular symmetric neighbor graph: a ring plus random chords.
    Rng graph_rng(mix_seed(p.seed, 0xA3962F));
    std::vector<std::vector<Rank>> nbrs(static_cast<std::size_t>(p.ranks));
    auto link = [&](Rank a, Rank b) {
      if (a == b) return;
      auto& na = nbrs[static_cast<std::size_t>(a)];
      if (std::find(na.begin(), na.end(), b) != na.end()) return;
      na.push_back(b);
      nbrs[static_cast<std::size_t>(b)].push_back(a);
    };
    for (Rank r = 0; r < p.ranks; ++r) link(r, (r + 1) % p.ranks);
    const int chords = 4;
    for (Rank r = 0; r < p.ranks; ++r)
      for (int c = 0; c < chords; ++c)
        link(r, static_cast<Rank>(graph_rng.uniform_u64(static_cast<std::uint64_t>(p.ranks))));
    for (auto& nb : nbrs) std::sort(nb.begin(), nb.end());

    for (int c = 0; c < cycles; ++c) {
      std::vector<SimTime> comp = sample_all(cm, p.ranks);
      const SimTime maxc = *std::max_element(comp.begin(), comp.end());
      for (Rank r = 0; r < p.ranks; ++r) {
        RankBuilder& b = ab.builder(r);
        const auto& nb = nbrs[static_cast<std::size_t>(r)];
        for (int l = 0; l < levels; ++l) {
          const auto bytes = std::max<std::uint64_t>(32, msg0 >> l);
          std::vector<std::uint64_t> sizes(nb.size(), bytes);
          b.compute(comp[static_cast<std::size_t>(r)] / levels);
          emit_halo_exchange(b, nb, sizes, static_cast<Tag>(70 + l), ab.gt);
          // The finest level's convergence check absorbs the cycle's wait.
          b.allreduce(8, ab.gt.collective(
                             OpType::kAllreduce, p.ranks, 8,
                             l == 0 ? maxc - comp[static_cast<std::size_t>(r)] : 0));
        }
      }
    }
    return ab.finish();
  }
};

// ---------------------------------------------------------------------------
// MiniFE — implicit finite elements: assembly then a CG solve with a 6-
// neighbor halo exchange and three dot-product Allreduces per iteration.
// ---------------------------------------------------------------------------
class MiniFeGenerator final : public AppGenerator {
 public:
  std::string name() const override { return "MiniFE"; }
  bool supports_ranks(Rank ranks) const override { return ranks >= 8; }
  Trace generate(const GenParams& p) const override {
    AppBuild ab(name(), p);
    const auto g = grid3d(p.ranks);
    const int iters = scaled_iters(100, p.iter_factor);
    const auto face = scaled_bytes(2.0e4, p.size_factor);
    const SimTime per_iter = per_rank_compute_ns(3.6e8, p);
    ComputeModel cm(p.ranks, per_iter, 0.05, 0.04, p.seed);

    std::vector<std::vector<Rank>> nbrs(static_cast<std::size_t>(p.ranks));
    for (Rank r = 0; r < p.ranks; ++r)
      nbrs[static_cast<std::size_t>(r)] = neighbors3d(r, g[0], g[1], g[2]);

    // Assembly phase: one big compute and an exchange.
    for (Rank r = 0; r < p.ranks; ++r) {
      RankBuilder& b = ab.builder(r);
      b.compute(cm.sample(r, 8.0));
      std::vector<std::uint64_t> sizes(nbrs[static_cast<std::size_t>(r)].size(), face * 2);
      emit_halo_exchange(b, nbrs[static_cast<std::size_t>(r)], sizes, 80, ab.gt);
      b.barrier(ab.gt.collective(OpType::kBarrier, p.ranks, 0));
    }
    for (int i = 0; i < iters; ++i) {
      std::vector<SimTime> comp = sample_all(cm, p.ranks);
      const SimTime maxc = *std::max_element(comp.begin(), comp.end());
      for (Rank r = 0; r < p.ranks; ++r) {
        RankBuilder& b = ab.builder(r);
        const auto& nb = nbrs[static_cast<std::size_t>(r)];
        std::vector<std::uint64_t> sizes(nb.size(), face);
        b.compute(comp[static_cast<std::size_t>(r)]);
        emit_halo_exchange(b, nb, sizes, 81, ab.gt);
        // The first dot product of the iteration absorbs the wait.
        for (int k = 0; k < 3; ++k)
          b.allreduce(8, ab.gt.collective(
                             OpType::kAllreduce, p.ranks, 8,
                             k == 0 ? maxc - comp[static_cast<std::size_t>(r)] : 0));
      }
    }
    return ab.finish();
  }
};

// ---------------------------------------------------------------------------
// MultiGrid — the full BoxLib-style multigrid application: like NPB MG but
// deeper hierarchies, larger boxes and visible load imbalance from irregular
// box distributions.
// ---------------------------------------------------------------------------
class MultiGridGenerator final : public AppGenerator {
 public:
  std::string name() const override { return "MultiGrid"; }
  bool supports_ranks(Rank ranks) const override { return ranks >= 8; }
  Trace generate(const GenParams& p) const override {
    AppBuild ab(name(), p);
    const auto g = grid3d(p.ranks);
    const int cycles = scaled_iters(15, p.iter_factor);
    const int levels = 7;
    const auto face0 = scaled_bytes(6.0e4, p.size_factor);
    const SimTime per_cycle = per_rank_compute_ns(6.0e9, p);
    ComputeModel cm(p.ranks, per_cycle, 0.22, 0.06, p.seed);

    std::vector<std::vector<Rank>> nbrs(static_cast<std::size_t>(p.ranks));
    for (Rank r = 0; r < p.ranks; ++r)
      nbrs[static_cast<std::size_t>(r)] = neighbors3d(r, g[0], g[1], g[2]);

    for (int c = 0; c < cycles; ++c) {
      std::vector<SimTime> comp = sample_all(cm, p.ranks);
      const SimTime maxc = *std::max_element(comp.begin(), comp.end());
      for (Rank r = 0; r < p.ranks; ++r) {
        RankBuilder& b = ab.builder(r);
        const auto& nb = nbrs[static_cast<std::size_t>(r)];
        for (int l = 0; l < levels; ++l) {
          const auto face = std::max<std::uint64_t>(64, face0 >> (2 * l));
          std::vector<std::uint64_t> sizes(nb.size(), face);
          b.compute(comp[static_cast<std::size_t>(r)] / levels);
          emit_halo_exchange(b, nb, sizes, static_cast<Tag>(90 + l), ab.gt);
        }
        // The per-cycle norm check absorbs the imbalance as wait time.
        b.allreduce(8, ab.gt.collective(OpType::kAllreduce, p.ranks, 8,
                                        maxc - comp[static_cast<std::size_t>(r)]));
      }
    }
    return ab.finish();
  }
};

// ---------------------------------------------------------------------------
// FillBoundary — BoxLib's ghost-cell fill: storms of small irregular
// messages to an extended neighborhood with almost no computation between
// them. The hardest case for a contention-free model (the paper singles out
// FB and CR as the traces with >20% model/simulation disagreement).
// ---------------------------------------------------------------------------
class FillBoundaryGenerator final : public AppGenerator {
 public:
  std::string name() const override { return "FillBoundary"; }
  bool supports_ranks(Rank ranks) const override { return ranks >= 8; }
  Trace generate(const GenParams& p) const override {
    AppBuild ab(name(), p);
    ab.gt.set_contention(1.35);  // locality-blind box neighborhoods
    const int iters = scaled_iters(150, p.iter_factor);
    const SimTime per_iter = per_rank_compute_ns(2.0e6, p);
    ComputeModel cm(p.ranks, per_iter, 0.08, 0.05, p.seed);

    // Irregular neighborhoods: each rank talks to 10-24 partners scattered
    // across the whole job (box distributions ignore network locality), with
    // per-pair message sizes fixed by the box geometry.
    Rng graph_rng(mix_seed(p.seed, 0xFB0B0B));
    std::vector<std::vector<Rank>> nbrs(static_cast<std::size_t>(p.ranks));
    std::vector<std::vector<std::uint64_t>> sizes(static_cast<std::size_t>(p.ranks));
    auto link = [&](Rank a, Rank b, std::uint64_t bytes) {
      if (a == b) return;
      auto& na = nbrs[static_cast<std::size_t>(a)];
      if (std::find(na.begin(), na.end(), b) != na.end()) return;
      na.push_back(b);
      sizes[static_cast<std::size_t>(a)].push_back(bytes);
      nbrs[static_cast<std::size_t>(b)].push_back(a);
      sizes[static_cast<std::size_t>(b)].push_back(bytes);
    };
    for (Rank r = 0; r < p.ranks; ++r) {
      const int extra = 5 + static_cast<int>(graph_rng.uniform_u64(7));
      link(r, (r + 1) % p.ranks, scaled_bytes(4096, p.size_factor));
      for (int c = 0; c < extra; ++c) {
        const auto peer =
            static_cast<Rank>(graph_rng.uniform_u64(static_cast<std::uint64_t>(p.ranks)));
        const auto bytes = scaled_bytes(512.0 * std::exp(graph_rng.normal() * 0.8),
                                        p.size_factor);
        link(r, peer, std::max<std::uint64_t>(64, bytes));
      }
    }

    for (int i = 0; i < iters; ++i) {
      for (Rank r = 0; r < p.ranks; ++r) {
        RankBuilder& b = ab.builder(r);
        b.compute(cm.sample(r));
        emit_halo_exchange(b, nbrs[static_cast<std::size_t>(r)],
                           sizes[static_cast<std::size_t>(r)], 100, ab.gt);
      }
    }
    for (Rank r = 0; r < p.ranks; ++r)
      ab.builder(r).barrier(ab.gt.collective(OpType::kBarrier, p.ranks, 0));
    return ab.finish();
  }
};

// ---------------------------------------------------------------------------
// LULESH — shock hydrodynamics on a cubic rank lattice: a 27-neighbor ghost
// exchange (faces, edges, corners) and a dt Allreduce per step, dominated by
// element computation.
// ---------------------------------------------------------------------------
class LuleshGenerator final : public AppGenerator {
 public:
  std::string name() const override { return "LULESH"; }
  bool supports_ranks(Rank ranks) const override { return ranks >= 8 && is_cube(ranks); }
  Trace generate(const GenParams& p) const override {
    AppBuild ab(name(), p);
    const int k = icbrt_floor(p.ranks);
    const int iters = scaled_iters(30, p.iter_factor);
    const auto face = scaled_bytes(4.0e4, p.size_factor);
    const SimTime per_iter = per_rank_compute_ns(1.2e9, p);
    ComputeModel cm(p.ranks, per_iter, 0.09, 0.05, p.seed);

    // 27-point neighborhood (non-periodic, as in LULESH proper).
    std::vector<std::vector<Rank>> nbrs(static_cast<std::size_t>(p.ranks));
    std::vector<std::vector<std::uint64_t>> sizes(static_cast<std::size_t>(p.ranks));
    for (Rank r = 0; r < p.ranks; ++r) {
      const int x = r % k, y = (r / k) % k, z = r / (k * k);
      for (int dz = -1; dz <= 1; ++dz)
        for (int dy = -1; dy <= 1; ++dy)
          for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0 && dz == 0) continue;
            const int nx = x + dx, ny = y + dy, nz = z + dz;
            if (nx < 0 || nx >= k || ny < 0 || ny >= k || nz < 0 || nz >= k) continue;
            const int weight = std::abs(dx) + std::abs(dy) + std::abs(dz);
            const std::uint64_t bytes =
                weight == 1 ? face : (weight == 2 ? std::max<std::uint64_t>(64, face / 16)
                                                  : std::max<std::uint64_t>(64, face / 256));
            nbrs[static_cast<std::size_t>(r)].push_back(
                static_cast<Rank>((nz * k + ny) * k + nx));
            sizes[static_cast<std::size_t>(r)].push_back(bytes);
          }
    }

    for (int i = 0; i < iters; ++i) {
      std::vector<SimTime> comp = sample_all(cm, p.ranks);
      const SimTime maxc = *std::max_element(comp.begin(), comp.end());
      for (Rank r = 0; r < p.ranks; ++r) {
        RankBuilder& b = ab.builder(r);
        b.compute(comp[static_cast<std::size_t>(r)]);
        emit_halo_exchange(b, nbrs[static_cast<std::size_t>(r)],
                           sizes[static_cast<std::size_t>(r)], 110, ab.gt);
        b.allreduce(8, ab.gt.collective(OpType::kAllreduce, p.ranks, 8,
                                        maxc - comp[static_cast<std::size_t>(r)]));
      }
    }
    return ab.finish();
  }
};

// ---------------------------------------------------------------------------
// CNS — compressible Navier-Stokes: big-face stencil exchanges around heavy
// flux computations, with an occasional global reduction.
// ---------------------------------------------------------------------------
class CnsGenerator final : public AppGenerator {
 public:
  std::string name() const override { return "CNS"; }
  bool supports_ranks(Rank ranks) const override { return ranks >= 8; }
  Trace generate(const GenParams& p) const override {
    AppBuild ab(name(), p);
    const auto g = grid3d(p.ranks);
    const int iters = scaled_iters(20, p.iter_factor);
    const auto face = scaled_bytes(8.0e4, p.size_factor);
    const SimTime per_iter = per_rank_compute_ns(4.3e9, p);
    ComputeModel cm(p.ranks, per_iter, 0.06, 0.04, p.seed);
    std::vector<std::vector<Rank>> nbrs(static_cast<std::size_t>(p.ranks));
    for (Rank r = 0; r < p.ranks; ++r)
      nbrs[static_cast<std::size_t>(r)] = neighbors3d(r, g[0], g[1], g[2]);
    for (int i = 0; i < iters; ++i) {
      std::vector<SimTime> comp = sample_all(cm, p.ranks);
      const SimTime maxc = *std::max_element(comp.begin(), comp.end());
      for (Rank r = 0; r < p.ranks; ++r) {
        RankBuilder& b = ab.builder(r);
        const auto& nb = nbrs[static_cast<std::size_t>(r)];
        std::vector<std::uint64_t> sizes(nb.size(), face);
        b.compute(comp[static_cast<std::size_t>(r)] / 2);
        emit_halo_exchange(b, nb, sizes, 120, ab.gt);
        b.compute(comp[static_cast<std::size_t>(r)] / 2);
        emit_halo_exchange(b, nb, sizes, 121, ab.gt);
        // The dt reduction closes every step and absorbs the wait.
        b.allreduce(8, ab.gt.collective(OpType::kAllreduce, p.ranks, 8,
                                        maxc - comp[static_cast<std::size_t>(r)]));
      }
    }
    return ab.finish();
  }
};

// ---------------------------------------------------------------------------
// CMC — Monte Carlo transport: long, heavily imbalanced compute legs between
// rare tiny reductions. The canonical load-imbalance-bound application.
// ---------------------------------------------------------------------------
class CmcGenerator final : public AppGenerator {
 public:
  std::string name() const override { return "CMC"; }
  Trace generate(const GenParams& p) const override {
    AppBuild ab(name(), p);
    const int iters = scaled_iters(15, p.iter_factor);
    const SimTime per_iter = per_rank_compute_ns(2.0e9, p);
    ComputeModel cm(p.ranks, per_iter, 0.30, 0.10, p.seed);
    for (int i = 0; i < iters; ++i) {
      std::vector<SimTime> comp = sample_all(cm, p.ranks);
      const SimTime maxc = *std::max_element(comp.begin(), comp.end());
      for (Rank r = 0; r < p.ranks; ++r) {
        RankBuilder& b = ab.builder(r);
        b.compute(comp[static_cast<std::size_t>(r)]);
        b.allreduce(64, ab.gt.collective(OpType::kAllreduce, p.ranks, 64,
                                         maxc - comp[static_cast<std::size_t>(r)]));
      }
    }
    for (Rank r = 0; r < p.ranks; ++r)
      ab.builder(r).gather(0, 1024, ab.gt.collective(OpType::kGather, p.ranks, 1024));
    return ab.finish();
  }
};

// ---------------------------------------------------------------------------
// Nekbone — spectral-element CG: many iterations of a modest face exchange
// plus two dot products, with light per-iteration computation. Becomes
// communication-sensitive as it scales.
// ---------------------------------------------------------------------------
class NekboneGenerator final : public AppGenerator {
 public:
  std::string name() const override { return "Nekbone"; }
  bool supports_ranks(Rank ranks) const override { return ranks >= 8; }
  Trace generate(const GenParams& p) const override {
    AppBuild ab(name(), p);
    const auto g = grid3d(p.ranks);
    const int iters = scaled_iters(150, p.iter_factor);
    const auto face = scaled_bytes(8.0e3, p.size_factor);
    const SimTime per_iter = per_rank_compute_ns(9.0e7, p);
    ComputeModel cm(p.ranks, per_iter, 0.05, 0.04, p.seed);
    std::vector<std::vector<Rank>> nbrs(static_cast<std::size_t>(p.ranks));
    for (Rank r = 0; r < p.ranks; ++r)
      nbrs[static_cast<std::size_t>(r)] = neighbors3d(r, g[0], g[1], g[2]);
    for (int i = 0; i < iters; ++i) {
      std::vector<SimTime> comp = sample_all(cm, p.ranks);
      const SimTime maxc = *std::max_element(comp.begin(), comp.end());
      for (Rank r = 0; r < p.ranks; ++r) {
        RankBuilder& b = ab.builder(r);
        const auto& nb = nbrs[static_cast<std::size_t>(r)];
        std::vector<std::uint64_t> sizes(nb.size(), face);
        b.compute(comp[static_cast<std::size_t>(r)]);
        emit_halo_exchange(b, nb, sizes, 130, ab.gt);
        b.allreduce(8, ab.gt.collective(OpType::kAllreduce, p.ranks, 8,
                                        maxc - comp[static_cast<std::size_t>(r)]));
        b.allreduce(8, ab.gt.collective(OpType::kAllreduce, p.ranks, 8));
      }
    }
    return ab.finish();
  }
};

}  // namespace

void register_doe_apps(std::vector<std::unique_ptr<AppGenerator>>& out) {
  out.push_back(std::make_unique<BigFftGenerator>());
  out.push_back(std::make_unique<CrystalRouterGenerator>());
  out.push_back(std::make_unique<AmgGenerator>());
  out.push_back(std::make_unique<MiniFeGenerator>());
  out.push_back(std::make_unique<MultiGridGenerator>());
  out.push_back(std::make_unique<FillBoundaryGenerator>());
  out.push_back(std::make_unique<LuleshGenerator>());
  out.push_back(std::make_unique<CnsGenerator>());
  out.push_back(std::make_unique<CmcGenerator>());
  out.push_back(std::make_unique<NekboneGenerator>());
}

}  // namespace hps::workloads
