#include "workloads/corpus.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "robust/fault.hpp"

namespace hps::workloads {

std::vector<RankBucket> table1a_buckets() {
  return {{64, 64, 72},     {65, 128, 18},   {129, 256, 80},
          {257, 512, 12},   {513, 1024, 37}, {1025, 1728, 16}};
}

namespace {

/// Distinct supported rank counts of `gen` within [lo, hi], spread across
/// the range (at most 8, scanned from both ends inward).
std::vector<Rank> supported_in_range(const AppGenerator& gen, Rank lo, Rank hi) {
  std::vector<Rank> found;
  for (Rank r = hi; r >= lo && static_cast<int>(found.size()) < 32; --r)
    if (gen.supports_ranks(r)) found.push_back(r);
  if (found.size() <= 8) return found;
  // Thin to ~8 spread entries.
  std::vector<Rank> out;
  const std::size_t step = found.size() / 8;
  for (std::size_t i = 0; i < found.size(); i += step) out.push_back(found[i]);
  return out;
}

}  // namespace

std::vector<TraceSpec> build_corpus_specs(const CorpusOptions& opts) {
  const auto apps = all_app_names();
  const char* machines[3] = {"cielito", "hopper", "edison"};
  const double size_choices[3] = {0.6, 1.0, 1.6};

  std::vector<TraceSpec> specs;
  Rng rng(mix_seed(opts.seed, 0xC0127255));
  int id = 0;
  std::size_t app_cursor = 0;

  for (const RankBucket& bucket : table1a_buckets()) {
    for (int i = 0; i < bucket.count; ++i) {
      // Rotate apps; skip ones that cannot fit this bucket's rank range.
      const AppGenerator* gen = nullptr;
      for (std::size_t tries = 0; tries < apps.size(); ++tries) {
        const auto& cand = generator_by_name(apps[app_cursor % apps.size()]);
        ++app_cursor;
        if (cand.pick_ranks(bucket.lo, bucket.hi) > 0) {
          gen = &cand;
          break;
        }
      }
      HPS_CHECK_MSG(gen != nullptr, "no generator fits rank bucket");

      const auto counts = supported_in_range(*gen, bucket.lo, bucket.hi);
      const Rank ranks = counts[rng.uniform_u64(counts.size())];

      TraceSpec spec;
      spec.id = id;
      spec.app = gen->name();
      spec.params.ranks = ranks;
      spec.params.ranks_per_node = 16;
      spec.params.machine = machines[id % 3];
      spec.params.seed = mix_seed(opts.seed, static_cast<std::uint64_t>(id) * 7919 + 13);
      spec.params.size_factor = size_choices[(id / 3) % 3];
      // Keep large-rank traces affordable: iteration counts shrink as the
      // rank count (and thus per-iteration cost of simulating) grows.
      double iter = opts.duration_scale;
      if (ranks > 1024) {
        iter *= 0.10;
      } else if (ranks > 512) {
        iter *= 0.15;
      } else if (ranks > 256) {
        iter *= 0.35;
      } else if (ranks > 128) {
        iter *= 0.6;
      }
      spec.params.iter_factor = iter;
      specs.push_back(std::move(spec));
      ++id;
      if (opts.limit > 0 && id >= opts.limit) return specs;
    }
  }
  HPS_CHECK(static_cast<int>(specs.size()) == 235);
  return specs;
}

trace::Trace generate_spec(const TraceSpec& spec) {
  robust::fault_point(robust::FaultSite::kGenerate);
  return generate_app(spec.app, spec.params);
}

}  // namespace hps::workloads
