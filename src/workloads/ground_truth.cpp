#include "workloads/ground_truth.hpp"

#include <algorithm>
#include <cmath>

#include "mfact/coll_cost.hpp"

namespace hps::workloads {

GroundTruthParams ground_truth_for(const machine::MachineConfig& m) {
  GroundTruthParams p;
  p.bandwidth = m.net.link_bandwidth;
  p.latency = m.net.end_to_end_latency;
  p.overhead = static_cast<SimTime>(static_cast<double>(m.net.end_to_end_latency) *
                                    m.net.software_fraction / 2.0);
  return p;
}

SimTime GroundTruth::commify(double base_ns) {
  const double noisy = base_ns * p_.measured_margin * p_.contention_inflation *
                       std::exp(p_.noise_sigma * rng_.normal());
  return std::max<SimTime>(1, static_cast<SimTime>(noisy));
}

SimTime GroundTruth::send(std::uint64_t bytes) {
  // The sender is occupied for its overhead plus the injection of the data.
  return commify(static_cast<double>(p_.overhead) + transfer_ns(bytes));
}

SimTime GroundTruth::post() {
  return commify(static_cast<double>(p_.overhead) * 0.5);
}

SimTime GroundTruth::recv(std::uint64_t bytes, SimTime extra_wait) {
  return commify(static_cast<double>(p_.latency) + transfer_ns(bytes) +
                 static_cast<double>(p_.overhead)) +
         extra_wait;
}

SimTime GroundTruth::wait_recv(std::uint64_t bytes, SimTime extra_wait) {
  return recv(bytes, extra_wait);
}

SimTime GroundTruth::wait_send() {
  return commify(static_cast<double>(p_.overhead) * 0.25);
}

SimTime GroundTruth::collective(trace::OpType op, int n, std::uint64_t bytes, SimTime skew) {
  mfact::CostParams cp;
  cp.bandwidth_Bps = p_.bandwidth;
  cp.latency_ns = static_cast<double>(p_.latency);
  cp.overhead_ns = static_cast<double>(p_.overhead);
  const auto cost = mfact::collective_cost(op, n, bytes, cp);
  return commify(cost.total()) + skew;
}

SimTime GroundTruth::alltoallv(int n, int nonzero_peers, std::uint64_t send_bytes,
                               std::uint64_t recv_bytes, SimTime skew) {
  mfact::CostParams cp;
  cp.bandwidth_Bps = p_.bandwidth;
  cp.latency_ns = static_cast<double>(p_.latency);
  cp.overhead_ns = static_cast<double>(p_.overhead);
  const auto cost = mfact::alltoallv_cost(n, nonzero_peers, send_bytes, recv_bytes, cp);
  return commify(cost.total()) + skew;
}

}  // namespace hps::workloads
