// Generators for the eight NAS Parallel Benchmarks used in the paper (the
// NPB suite minus the unused kernels): BT, CG, DT, EP, FT, IS, LU, MG, SP.
//
// Each generator reproduces the benchmark's published communication
// structure under strong scaling: per-rank computation shrinks ~1/p and
// exchanged surfaces shrink with the process-grid decomposition, so larger
// runs of the same code become progressively more communication-intensive —
// the spread the paper's Table I(b) documents.
#include "workloads/apps_internal.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.hpp"

namespace hps::workloads {

using trace::OpType;
using trace::RankBuilder;
using trace::Trace;

namespace {

// ---------------------------------------------------------------------------
// EP — embarrassingly parallel: pure compute, three tiny reductions at the end.
// ---------------------------------------------------------------------------
class EpGenerator final : public AppGenerator {
 public:
  std::string name() const override { return "EP"; }
  Trace generate(const GenParams& p) const override {
    AppBuild ab(name(), p);
    const int chunks = scaled_iters(12, p.iter_factor);
    // Total work is fixed; each rank gets 1/p of it (strong scaling).
    const SimTime per_chunk = per_rank_compute_ns(2.0e12, p);
    ComputeModel cm(p.ranks, per_chunk, 0.04, 0.03, p.seed);
    for (Rank r = 0; r < p.ranks; ++r) {
      RankBuilder& b = ab.builder(r);
      for (int i = 0; i < chunks; ++i) b.compute(cm.sample(r));
      for (int k = 0; k < 3; ++k)
        b.allreduce(16, ab.gt.collective(OpType::kAllreduce, p.ranks, 16));
    }
    return ab.finish();
  }
};

// ---------------------------------------------------------------------------
// DT — data traffic: a communication graph (binomial reduction tree here)
// moving multi-megabyte quantum datasets with almost no computation.
// ---------------------------------------------------------------------------
class DtGenerator final : public AppGenerator {
 public:
  std::string name() const override { return "DT"; }
  Trace generate(const GenParams& p) const override {
    AppBuild ab(name(), p);
    const auto payload = scaled_bytes(512.0 * 1024, p.size_factor);
    ComputeModel cm(p.ranks, 3 * kMillisecond, 0.10, 0.05, p.seed);
    // Binomial tree toward rank 0: each node receives its children's
    // aggregated feeds, "consumes" them, and forwards to its parent.
    for (Rank r = 0; r < p.ranks; ++r) {
      RankBuilder& b = ab.builder(r);
      b.compute(cm.sample(r));
      const int limit = r == 0 ? std::bit_ceil(static_cast<unsigned>(p.ranks)) : (r & -r);
      for (int m = 1; m < limit; m <<= 1) {
        const Rank child = r + m;
        if (child >= p.ranks) break;
        b.recv(child, payload, 7, ab.gt.recv(payload));
        b.compute(cm.sample(r, 0.2));
      }
      if (r != 0) b.send(r - (r & -r), payload, 7, ab.gt.send(payload));
    }
    return ab.finish();
  }
};

// ---------------------------------------------------------------------------
// IS — integer sort: per iteration a small Allreduce on bucket histograms
// followed by a skewed Alltoallv of the keys themselves.
// ---------------------------------------------------------------------------
class IsGenerator final : public AppGenerator {
 public:
  std::string name() const override { return "IS"; }
  Trace generate(const GenParams& p) const override {
    AppBuild ab(name(), p);
    ab.gt.set_contention(1.40);  // dense personalized exchange congests the fabric
    const int iters = scaled_iters(8, p.iter_factor);
    const double total_keys_bytes = scaled(1.5e8, p.size_factor);  // 4-byte keys
    const double per_pair = total_keys_bytes / (static_cast<double>(p.ranks) *
                                                static_cast<double>(p.ranks));
    const SimTime per_iter = per_rank_compute_ns(5.0e8, p);
    ComputeModel cm(p.ranks, per_iter, 0.15, 0.06, p.seed);

    // Pre-sample the skewed key distribution: a per-destination lognormal
    // factor per rank, fixed across iterations (key skew is data-dependent).
    std::vector<std::vector<std::uint64_t>> vlists(static_cast<std::size_t>(p.ranks));
    Rng skew_rng(mix_seed(p.seed, 0x15AABBCC));
    for (Rank r = 0; r < p.ranks; ++r) {
      auto& vl = vlists[static_cast<std::size_t>(r)];
      vl.resize(static_cast<std::size_t>(p.ranks));
      for (Rank d = 0; d < p.ranks; ++d)
        vl[static_cast<std::size_t>(d)] =
            d == r ? 0
                   : static_cast<std::uint64_t>(per_pair *
                                                skew_rng.lognormal_median(1.0, 0.35));
    }

    for (int i = 0; i < iters; ++i) {
      std::vector<SimTime> comp = sample_all(cm, p.ranks);
      const SimTime maxc = *std::max_element(comp.begin(), comp.end());
      for (Rank r = 0; r < p.ranks; ++r) {
        RankBuilder& b = ab.builder(r);
        const auto& vl = vlists[static_cast<std::size_t>(r)];
        b.compute(comp[static_cast<std::size_t>(r)]);
        b.allreduce(1024, ab.gt.collective(OpType::kAllreduce, p.ranks, 1024,
                                           maxc - comp[static_cast<std::size_t>(r)]));
        std::uint64_t tot = 0;
        int nz = 0;
        for (auto v : vl) {
          tot += v;
          nz += v > 0 ? 1 : 0;
        }
        b.alltoallv(vl, ab.gt.alltoallv(p.ranks, nz, tot, tot));
      }
    }
    for (Rank r = 0; r < p.ranks; ++r)
      ab.builder(r).allreduce(8, ab.gt.collective(OpType::kAllreduce, p.ranks, 8));
    return ab.finish();
  }
};

// ---------------------------------------------------------------------------
// FT — 3D FFT: each iteration is a forward/inverse transform pair whose
// distributed transposes are Alltoalls over the full grid.
// ---------------------------------------------------------------------------
class FtGenerator final : public AppGenerator {
 public:
  std::string name() const override { return "FT"; }
  bool supports_ranks(Rank ranks) const override { return ranks >= 2 && is_pow2(ranks); }
  Trace generate(const GenParams& p) const override {
    AppBuild ab(name(), p);
    ab.gt.set_contention(1.45);  // transpose all-to-alls congest the fabric
    const int iters = scaled_iters(5, p.iter_factor);
    const double grid_bytes = scaled(1.0e8, p.size_factor);
    const auto per_pair = static_cast<std::uint64_t>(
        std::max(1.0, grid_bytes / (static_cast<double>(p.ranks) *
                                    static_cast<double>(p.ranks))));
    const SimTime per_iter = per_rank_compute_ns(4.5e8, p);
    ComputeModel cm(p.ranks, per_iter, 0.05, 0.04, p.seed);
    for (int i = 0; i < iters; ++i) {
      // The transposes synchronize; the measured alltoall durations absorb
      // each rank's wait for the slowest FFT stage.
      std::vector<SimTime> comp = sample_all(cm, p.ranks);
      const SimTime maxc = *std::max_element(comp.begin(), comp.end());
      for (Rank r = 0; r < p.ranks; ++r) {
        RankBuilder& b = ab.builder(r);
        const SimTime skew = (maxc - comp[static_cast<std::size_t>(r)]) / 2;
        b.compute(comp[static_cast<std::size_t>(r)] / 2);
        b.alltoall(per_pair,
                   ab.gt.collective(OpType::kAlltoall, p.ranks, per_pair, skew));
        b.compute(comp[static_cast<std::size_t>(r)] / 2);
        b.alltoall(per_pair,
                   ab.gt.collective(OpType::kAlltoall, p.ranks, per_pair, skew));
        b.allreduce(16, ab.gt.collective(OpType::kAllreduce, p.ranks, 16));
      }
    }
    return ab.finish();
  }
};

// ---------------------------------------------------------------------------
// CG — conjugate gradient on a 2D process grid: transpose exchanges along
// the matvec plus dot-product Allreduces every iteration.
// ---------------------------------------------------------------------------
class CgGenerator final : public AppGenerator {
 public:
  std::string name() const override { return "CG"; }
  bool supports_ranks(Rank ranks) const override { return ranks >= 4 && is_square(ranks); }
  Trace generate(const GenParams& p) const override {
    AppBuild ab(name(), p);
    const int q = isqrt_floor(p.ranks);  // q x q grid
    const int iters = scaled_iters(60, p.iter_factor);
    const auto vec_bytes = scaled_bytes(1.0e5, p.size_factor);
    const SimTime per_iter = per_rank_compute_ns(1.3e9, p);
    ComputeModel cm(p.ranks, per_iter, 0.06, 0.04, p.seed);
    for (int i = 0; i < iters; ++i) {
      std::vector<SimTime> comp = sample_all(cm, p.ranks);
      const SimTime maxc = *std::max_element(comp.begin(), comp.end());
      for (Rank r = 0; r < p.ranks; ++r) {
        RankBuilder& b = ab.builder(r);
        const int row = r / q, col = r % q;
        const Rank transpose = static_cast<Rank>(col * q + row);
        b.compute(comp[static_cast<std::size_t>(r)]);
        if (transpose != r) {
          // Matvec result travels to the transpose position.
          b.irecv(transpose, vec_bytes, 11, ab.gt.post());
          b.isend(transpose, vec_bytes, 11, ab.gt.post());
          b.waitall(ab.gt.wait_recv(vec_bytes));
        }
        // Row-wise reduction of partial sums (modeled on the row comm).
        b.allreduce(8, ab.gt.collective(OpType::kAllreduce, q, 8), ab.row_comm(row, q));
        // The global dot product absorbs the iteration's imbalance wait.
        b.allreduce(8, ab.gt.collective(OpType::kAllreduce, p.ranks, 8,
                                        maxc - comp[static_cast<std::size_t>(r)]));
      }
    }
    return ab.finish();
  }
};

// ---------------------------------------------------------------------------
// MG — multigrid V-cycles on a 3D grid: nearest-neighbor ghost exchanges at
// every level with surfaces shrinking 4x per level, plus a norm Allreduce.
// ---------------------------------------------------------------------------
class MgGenerator final : public AppGenerator {
 public:
  std::string name() const override { return "MG"; }
  bool supports_ranks(Rank ranks) const override { return ranks >= 8; }
  Trace generate(const GenParams& p) const override {
    AppBuild ab(name(), p);
    const auto g = grid3d(p.ranks);
    const int cycles = scaled_iters(12, p.iter_factor);
    const int levels = 5;
    const auto face0 = scaled_bytes(48.0e3, p.size_factor);
    const SimTime per_cycle = per_rank_compute_ns(2.3e9, p);
    ComputeModel cm(p.ranks, per_cycle, 0.07, 0.04, p.seed);

    std::vector<std::vector<Rank>> nbrs(static_cast<std::size_t>(p.ranks));
    for (Rank r = 0; r < p.ranks; ++r)
      nbrs[static_cast<std::size_t>(r)] = neighbors3d(r, g[0], g[1], g[2]);

    for (int c = 0; c < cycles; ++c) {
      std::vector<SimTime> comp = sample_all(cm, p.ranks);
      const SimTime maxc = *std::max_element(comp.begin(), comp.end());
      for (Rank r = 0; r < p.ranks; ++r) {
        RankBuilder& b = ab.builder(r);
        const auto& nb = nbrs[static_cast<std::size_t>(r)];
        for (int pass = 0; pass < 2; ++pass) {     // down then up the hierarchy
          for (int l = 0; l < levels; ++l) {
            const int lv = pass == 0 ? l : levels - 1 - l;
            const auto face = std::max<std::uint64_t>(
                64, face0 >> (2 * lv));  // surface shrinks 4x per level
            std::vector<std::uint64_t> sizes(nb.size(), face);
            b.compute(comp[static_cast<std::size_t>(r)] / (2 * levels));
            emit_halo_exchange(b, nb, sizes, static_cast<Tag>(20 + lv), ab.gt);
          }
        }
        // The per-cycle norm check absorbs the cycle's imbalance wait.
        b.allreduce(8, ab.gt.collective(OpType::kAllreduce, p.ranks, 8,
                                        maxc - comp[static_cast<std::size_t>(r)]));
      }
    }
    return ab.finish();
  }
};

// ---------------------------------------------------------------------------
// LU — SSOR wavefront on a 2D grid: pipelined blocking sends/recvs sweeping
// the grid diagonally in both directions, then a face exchange.
// ---------------------------------------------------------------------------
class LuGenerator final : public AppGenerator {
 public:
  std::string name() const override { return "LU"; }
  bool supports_ranks(Rank ranks) const override { return ranks >= 4; }
  Trace generate(const GenParams& p) const override {
    AppBuild ab(name(), p);
    const auto g = grid2d(p.ranks);
    const int px = g[0], py = g[1];
    const int iters = scaled_iters(20, p.iter_factor);
    // Each sweep is pipelined over k-slabs (as in NPB LU's pencil
    // decomposition): the wavefront passes `slabs` times per sweep with
    // 1/slabs of the work, so ranks overlap instead of idling while the
    // wave traverses the whole grid.
    const int slabs = 8;
    const auto block = scaled_bytes(2.0e4 / slabs, p.size_factor);
    const SimTime per_iter = per_rank_compute_ns(2.4e9, p);
    ComputeModel cm(p.ranks, per_iter, 0.05, 0.04, p.seed);
    for (int i = 0; i < iters; ++i) {
      std::vector<SimTime> comp = sample_all(cm, p.ranks);
      const SimTime maxc = *std::max_element(comp.begin(), comp.end());
      for (Rank r = 0; r < p.ranks; ++r) {
        RankBuilder& b = ab.builder(r);
        const int x = r % px, y = r / px;
        const SimTime slab_work = comp[static_cast<std::size_t>(r)] / (2 * slabs);
        // A real trace of a wavefront code shows the pipeline-fill stall in
        // the measured duration of the sweep's first receive: the wave takes
        // one slab step per diagonal to arrive.
        const int d = x + y;
        const int diag = px + py - 2;
        const SimTime step = slab_work + 5 * kMicrosecond;
        const SimTime fill_lower = d * step;
        const SimTime fill_upper = 2 * (diag - d) * step;
        // Lower-triangular sweep: data flows from (0,0) to (px-1,py-1),
        // one slab at a time so consecutive slabs pipeline.
        for (int k = 0; k < slabs; ++k) {
          const SimTime extra = k == 0 ? fill_lower : 0;
          if (x > 0) b.recv(r - 1, block, 31, ab.gt.recv(block, extra));
          else if (y > 0) b.recv(r - px, block, 32, ab.gt.recv(block, extra));
          if (x > 0 && y > 0) b.recv(r - px, block, 32, ab.gt.recv(block));
          b.compute(slab_work);
          if (x + 1 < px) b.send(r + 1, block, 31, ab.gt.send(block));
          if (y + 1 < py) b.send(r + px, block, 32, ab.gt.send(block));
        }
        // Upper-triangular sweep: reverse direction.
        for (int k = 0; k < slabs; ++k) {
          const SimTime extra = k == 0 ? fill_upper : 0;
          if (x + 1 < px) b.recv(r + 1, block, 33, ab.gt.recv(block, extra));
          else if (y + 1 < py) b.recv(r + px, block, 34, ab.gt.recv(block, extra));
          if (x + 1 < px && y + 1 < py) b.recv(r + px, block, 34, ab.gt.recv(block));
          b.compute(slab_work);
          if (x > 0) b.send(r - 1, block, 33, ab.gt.send(block));
          if (y > 0) b.send(r - px, block, 34, ab.gt.send(block));
        }
      }
      // The residual reduction happens every few iterations (as in NPB LU's
      // inorm checks) so successive wavefronts pipeline instead of
      // serializing behind a global barrier each sweep.
      if (i % 5 == 4) {
        for (Rank r = 0; r < p.ranks; ++r)
          ab.builder(r).allreduce(8, ab.gt.collective(OpType::kAllreduce, p.ranks, 8,
                                                      maxc - comp[static_cast<std::size_t>(r)]));
      }
    }
    for (Rank r = 0; r < p.ranks; ++r)
      ab.builder(r).allreduce(40, ab.gt.collective(OpType::kAllreduce, p.ranks, 40));
    return ab.finish();
  }
};

// ---------------------------------------------------------------------------
// BT / SP — ADI solvers on a square process grid: three directional sweeps
// per iteration, each exchanging faces with the four grid neighbors. BT is
// compute-heavy; SP communicates the same faces with far less computation.
// ---------------------------------------------------------------------------
class AdiGenerator : public AppGenerator {
 public:
  AdiGenerator(std::string nm, double compute_total, int iters, double face_scale)
      : name_(std::move(nm)), compute_total_(compute_total), iters_(iters),
        face_scale_(face_scale) {}
  std::string name() const override { return name_; }
  bool supports_ranks(Rank ranks) const override { return ranks >= 4 && is_square(ranks); }
  Trace generate(const GenParams& p) const override {
    AppBuild ab(name_, p);
    const int q = isqrt_floor(p.ranks);
    const int iters = scaled_iters(iters_, p.iter_factor);
    const auto face = scaled_bytes(face_scale_ * 5.0e4, p.size_factor);
    const SimTime per_iter = per_rank_compute_ns(compute_total_, p);
    ComputeModel cm(p.ranks, per_iter, 0.05, 0.04, p.seed);

    std::vector<std::vector<Rank>> nbrs(static_cast<std::size_t>(p.ranks));
    for (Rank r = 0; r < p.ranks; ++r)
      nbrs[static_cast<std::size_t>(r)] = neighbors2d(r, q, q);

    for (int i = 0; i < iters; ++i) {
      std::vector<SimTime> comp = sample_all(cm, p.ranks);
      const SimTime maxc = *std::max_element(comp.begin(), comp.end());
      for (Rank r = 0; r < p.ranks; ++r) {
        RankBuilder& b = ab.builder(r);
        const auto& nb = nbrs[static_cast<std::size_t>(r)];
        std::vector<std::uint64_t> sizes(nb.size(), face);
        for (int dir = 0; dir < 3; ++dir) {  // x, y, z sweeps
          b.compute(comp[static_cast<std::size_t>(r)] / 3);
          emit_halo_exchange(b, nb, sizes, static_cast<Tag>(41 + dir), ab.gt);
        }
        // The per-step residual reduction absorbs the imbalance wait.
        b.allreduce(8, ab.gt.collective(OpType::kAllreduce, p.ranks, 8,
                                        maxc - comp[static_cast<std::size_t>(r)]));
      }
    }
    for (Rank r = 0; r < p.ranks; ++r)
      ab.builder(r).allreduce(40, ab.gt.collective(OpType::kAllreduce, p.ranks, 40));
    return ab.finish();
  }

 private:
  std::string name_;
  double compute_total_;
  int iters_;
  double face_scale_;
};

}  // namespace

void register_npb_apps(std::vector<std::unique_ptr<AppGenerator>>& out) {
  out.push_back(std::make_unique<AdiGenerator>("BT", 3.6e9, 25, 1.0));
  out.push_back(std::make_unique<CgGenerator>());
  out.push_back(std::make_unique<DtGenerator>());
  out.push_back(std::make_unique<EpGenerator>());
  out.push_back(std::make_unique<FtGenerator>());
  out.push_back(std::make_unique<IsGenerator>());
  out.push_back(std::make_unique<LuGenerator>());
  out.push_back(std::make_unique<MgGenerator>());
  out.push_back(std::make_unique<AdiGenerator>("SP", 2.7e9, 40, 1.2));
}

}  // namespace hps::workloads
