// Discrete-event simulation engine.
//
// A deterministic sequential event calendar: events fire in (time, insertion
// sequence) order, so equal-time events replay in the order they were
// scheduled and every simulation is exactly reproducible. Handlers are plain
// virtual objects carrying two 64-bit payload words — no std::function in the
// hot path; a packet-level run schedules millions of events.
//
// Cancellation is deliberately absent: components that need to reschedule
// (e.g. the flow model's completion events after a rate change) tag events
// with a generation counter and ignore stale deliveries. This keeps the heap
// free of tombstone bookkeeping.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "des/event_queue.hpp"
#include "telemetry/telemetry.hpp"

namespace hps::obs {
class TimelineRecorder;
}

namespace hps::robust {
class CancelToken;
}

namespace hps::des {

class Engine;

/// Receiver of scheduled events.
class Handler {
 public:
  virtual ~Handler() = default;
  /// `a` and `b` are the payload words given at schedule time.
  virtual void handle(Engine& eng, std::uint64_t a, std::uint64_t b) = 0;
};

/// Snapshot view of the engine's telemetry counters (kept as a plain struct
/// for API compatibility; the counters themselves live in telemetry
/// primitives and flush into the global registry at run boundaries).
struct EngineStats {
  std::uint64_t events_processed = 0;
  std::uint64_t events_scheduled = 0;
  std::size_t max_queue_depth = 0;
};

class Engine {
 public:
  // Out-of-line: FnHandler is incomplete at this point.
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time. Starts at 0.
  SimTime now() const { return now_; }

  /// Schedule `h->handle(*this, a, b)` at absolute time `t` (>= now()).
  /// Inline: this is the hottest call in the codebase (one per simulated
  /// event — a packet-level run makes tens of millions), and the body is a
  /// guarded queue push.
  void schedule_at(SimTime t, Handler* h, std::uint64_t a = 0, std::uint64_t b = 0) {
    HPS_CHECK_MSG(t >= now_, "cannot schedule into the past");
    HPS_CHECK(h != nullptr);
    queue_.push(t, h, a, b);
    max_queue_depth_.record(queue_.size());
    events_scheduled_.add();
  }

  /// Schedule after a delay from now.
  void schedule_in(SimTime dt, Handler* h, std::uint64_t a = 0, std::uint64_t b = 0) {
    schedule_at(now_ + dt, h, a, b);
  }

  /// Convenience for tests/examples: schedule a one-shot callable. The engine
  /// owns the callable until it fires.
  void schedule_fn_at(SimTime t, std::function<void()> fn);
  void schedule_fn_in(SimTime dt, std::function<void()> fn) {
    schedule_fn_at(now_ + dt, std::move(fn));
  }

  /// Run until the calendar drains. Returns final time.
  SimTime run();

  /// Run until the calendar drains or simulated time would exceed `t_limit`;
  /// returns true if it drained (false means the limit stopped it, with the
  /// offending event left unprocessed).
  bool run_until(SimTime t_limit);

  bool empty() const { return queue_.empty(); }

  /// Current statistics as a value snapshot.
  EngineStats stats() const {
    return {events_processed_.value(), events_scheduled_.value(),
            static_cast<std::size_t>(max_queue_depth_.value())};
  }

  /// Publish counter deltas accumulated since the last flush into the global
  /// telemetry registry (`des.*` metrics). One branch when telemetry is
  /// disabled; called automatically when a run drains, on reset() and on
  /// destruction.
  void flush_telemetry();

  /// Clear calendar and reset clock to 0 (statistics are also reset, after
  /// being flushed to telemetry).
  void reset();

  /// Optional virtual-time timeline sink shared by the engine's clients
  /// (replayer, network models). Null by default: every instrumentation
  /// point reduces to one pointer test. The engine does not own it.
  obs::TimelineRecorder* recorder() const { return recorder_; }
  void set_recorder(obs::TimelineRecorder* rec) { recorder_ = rec; }

  /// Optional cooperative cancellation/budget token. Null by default (one
  /// pointer test per dispatched event). When set, the run loops call
  /// tick() before each dispatch, so a tripped budget throws CancelledError
  /// out of run()/run_until() with the calendar left intact. Not owned.
  robust::CancelToken* cancel() const { return cancel_; }
  void set_cancel(robust::CancelToken* token) { cancel_ = token; }

 private:
  void dispatch(const QueuedEvent& ev);

  class FnHandler;

  // Calendar/bucket queue of pending events (see event_queue.hpp); events
  // fire in (time, push sequence) order.
  EventQueue queue_;
  SimTime now_ = 0;
  // Single-writer telemetry counters: plain increments on the hot path,
  // flushed as deltas into the shared registry at run boundaries.
  telemetry::LocalCounter events_processed_;
  telemetry::LocalCounter events_scheduled_;
  telemetry::LocalMax max_queue_depth_;
  SimTime flushed_sim_time_ = 0;
  obs::TimelineRecorder* recorder_ = nullptr;
  robust::CancelToken* cancel_ = nullptr;
  // Pooled one-shot callables for schedule_fn_*: slots are recycled through
  // a free list, so steady-state scheduling performs no allocation.
  std::vector<std::function<void()>> pending_fns_;
  std::vector<std::size_t> free_fn_slots_;
  std::unique_ptr<FnHandler> fn_handler_;
};

}  // namespace hps::des
