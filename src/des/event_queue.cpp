#include "des/event_queue.hpp"

#include <bit>

namespace hps::des {

void EventQueue::rebuild_window() {
  // All pending events now live in heap_. Decide whether a bucket window is
  // worthwhile and, if so, size it from the population: bucket width ~= the
  // mean gap (so in-window buckets average about one event), bucket count ~=
  // half the population (so the window absorbs roughly half the events and
  // rebuilds amortize to O(1) per pop).
  const std::size_t n = heap_.size();
  if (n < kCalendarOff) {
    calendar_ = false;
    return;
  }
  SimTime lo = heap_.front().t;  // heap root = earliest
  SimTime hi = lo;
  for (const QueuedEvent& ev : heap_) hi = std::max(hi, ev.t);

  // Bucket width: the mean inter-event gap, rounded up to a power of two so
  // the bucket mapping is a shift, and capped so a far-future outlier cannot
  // blow up the resolution for the near events.
  const auto span = static_cast<std::uint64_t>(hi - lo);
  const std::uint64_t width = std::max<std::uint64_t>(span / n, 1);
  shift_ = width <= 1 ? 0 : std::min<int>(std::bit_width(width - 1), kMaxWidthShift);

  num_buckets_ = std::bit_ceil(std::clamp<std::size_t>(n / 2, 64, kMaxBuckets));
  if (buckets_.size() < num_buckets_) buckets_.resize(num_buckets_);

  win_start_ = lo;
  cur_ = 0;
  const auto extent = static_cast<std::uint64_t>(num_buckets_) << shift_;
  const auto headroom = static_cast<std::uint64_t>(kSimTimeMax - lo);
  win_end_ = extent >= headroom ? kSimTimeMax : lo + static_cast<SimTime>(extent);

  // Partition the heap storage: in-window events scatter into buckets, the
  // remainder re-forms the far heap. A saturated window takes everything.
  std::size_t keep = 0;
  for (QueuedEvent& ev : heap_) {
    if (ev.t < win_end_ || win_end_ == kSimTimeMax)
      buckets_[bucket_of(ev.t)].push_back(ev);
    else
      heap_[keep++] = ev;
  }
  heap_.resize(keep);
  std::make_heap(heap_.begin(), heap_.end(), later);
  cur_sorted_ = false;
}

void EventQueue::clear() {
  heap_.clear();
  for (auto& b : buckets_) b.clear();
  calendar_ = false;
  size_ = 0;
  next_seq_ = 0;
  cur_ = 0;
  cur_sorted_ = false;
}

}  // namespace hps::des
