#include "des/engine.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "robust/cancel.hpp"

namespace hps::des {

/// Dispatches schedule_fn_* events: payload word `a` indexes pending_fns_.
class Engine::FnHandler final : public Handler {
 public:
  explicit FnHandler(Engine& eng) : eng_(eng) {}
  void handle(Engine&, std::uint64_t a, std::uint64_t) override {
    auto fn = std::move(eng_.pending_fns_[a]);
    HPS_CHECK(static_cast<bool>(fn));
    eng_.pending_fns_[a] = nullptr;
    eng_.free_fn_slots_.push_back(static_cast<std::size_t>(a));
    fn();
  }

 private:
  Engine& eng_;
};

namespace {

/// Handles into the global registry for the engine-wide aggregate metrics.
struct DesMetrics {
  telemetry::Counter events_scheduled;
  telemetry::Counter events_processed;
  telemetry::Counter sim_time_ns;
  telemetry::Gauge max_queue_depth;

  static const DesMetrics& get() {
    static const DesMetrics m{
        telemetry::Registry::global().counter("des.events_scheduled"),
        telemetry::Registry::global().counter("des.events_processed"),
        telemetry::Registry::global().counter("des.sim_time_ns"),
        telemetry::Registry::global().gauge("des.max_queue_depth"),
    };
    return m;
  }
};

}  // namespace

Engine::Engine() = default;

Engine::~Engine() { flush_telemetry(); }

void Engine::flush_telemetry() {
  if (!telemetry::Registry::global().enabled()) return;
  const DesMetrics& m = DesMetrics::get();
  events_scheduled_.flush_to(m.events_scheduled);
  events_processed_.flush_to(m.events_processed);
  max_queue_depth_.flush_to(m.max_queue_depth);
  if (now_ > flushed_sim_time_) {
    m.sim_time_ns.add(static_cast<std::uint64_t>(now_ - flushed_sim_time_));
    flushed_sim_time_ = now_;
  }
}

void Engine::schedule_fn_at(SimTime t, std::function<void()> fn) {
  if (!fn_handler_) fn_handler_ = std::make_unique<FnHandler>(*this);
  std::size_t idx;
  if (!free_fn_slots_.empty()) {
    idx = free_fn_slots_.back();
    free_fn_slots_.pop_back();
  } else {
    idx = pending_fns_.size();
    pending_fns_.emplace_back();
  }
  pending_fns_[idx] = std::move(fn);
  schedule_at(t, fn_handler_.get(), idx, 0);
}

void Engine::dispatch(const QueuedEvent& ev) {
  now_ = ev.t;
  events_processed_.add();
  ev.h->handle(*this, ev.a, ev.b);
}

SimTime Engine::run() {
  if (cancel_ == nullptr) {
    while (!queue_.empty()) dispatch(queue_.pop());
  } else {
    // Separate loop so the common (unguarded) path stays a single branch.
    // tick() may throw; the calendar is left intact so the caller can read
    // now() and partial statistics off the cancelled engine.
    while (!queue_.empty()) {
      cancel_->tick(queue_.next_time());
      dispatch(queue_.pop());
    }
  }
  flush_telemetry();
  return now_;
}

bool Engine::run_until(SimTime t_limit) {
  bool drained = true;
  while (!queue_.empty()) {
    if (queue_.next_time() > t_limit) {
      drained = false;
      break;
    }
    if (cancel_ != nullptr) cancel_->tick(queue_.next_time());
    dispatch(queue_.pop());
  }
  flush_telemetry();
  return drained;
}

void Engine::reset() {
  flush_telemetry();
  queue_.clear();
  pending_fns_.clear();
  free_fn_slots_.clear();
  now_ = 0;
  events_processed_.reset();
  events_scheduled_.reset();
  max_queue_depth_.reset();
  flushed_sim_time_ = 0;
}

}  // namespace hps::des
