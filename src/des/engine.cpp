#include "des/engine.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hps::des {

/// Dispatches schedule_fn_* events: payload word `a` indexes pending_fns_.
class Engine::FnHandler final : public Handler {
 public:
  explicit FnHandler(Engine& eng) : eng_(eng) {}
  void handle(Engine&, std::uint64_t a, std::uint64_t) override {
    auto& slot = eng_.pending_fns_[a];
    HPS_CHECK(slot != nullptr);
    auto fn = std::move(slot);
    slot.reset();
    (*fn)();
  }

 private:
  Engine& eng_;
};

Engine::Engine() = default;
Engine::~Engine() = default;

void Engine::push(Ev ev) {
  heap_.push_back(ev);
  std::push_heap(heap_.begin(), heap_.end(), later);
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, heap_.size());
}

Engine::Ev Engine::pop() {
  std::pop_heap(heap_.begin(), heap_.end(), later);
  Ev ev = heap_.back();
  heap_.pop_back();
  return ev;
}

void Engine::schedule_at(SimTime t, Handler* h, std::uint64_t a, std::uint64_t b) {
  HPS_CHECK_MSG(t >= now_, "cannot schedule into the past");
  HPS_CHECK(h != nullptr);
  push({t, next_seq_++, h, a, b});
  ++stats_.events_scheduled;
}

void Engine::schedule_fn_at(SimTime t, std::function<void()> fn) {
  if (!fn_handler_) fn_handler_ = std::make_unique<FnHandler>(*this);
  // Reuse an empty slot if available to bound growth in long runs.
  std::size_t idx = pending_fns_.size();
  for (std::size_t i = 0; i < pending_fns_.size(); ++i) {
    if (!pending_fns_[i]) {
      idx = i;
      break;
    }
  }
  if (idx == pending_fns_.size()) pending_fns_.emplace_back();
  pending_fns_[idx] = std::make_unique<std::function<void()>>(std::move(fn));
  schedule_at(t, fn_handler_.get(), idx, 0);
}

void Engine::dispatch(const Ev& ev) {
  now_ = ev.t;
  ++stats_.events_processed;
  ev.h->handle(*this, ev.a, ev.b);
}

SimTime Engine::run() {
  while (!heap_.empty()) dispatch(pop());
  return now_;
}

bool Engine::run_until(SimTime t_limit) {
  while (!heap_.empty()) {
    if (heap_.front().t > t_limit) return false;
    dispatch(pop());
  }
  return true;
}

void Engine::reset() {
  heap_.clear();
  pending_fns_.clear();
  now_ = 0;
  next_seq_ = 0;
  stats_ = {};
}

}  // namespace hps::des
