// Pending-event set of the DES engine: a two-level calendar/bucket queue.
//
// Events pop in (time, sequence) order — sequence is assigned at push, so
// equal-time events come back FIFO and every drain is exactly reproducible.
// The structure adapts to the event population:
//
//   * Small or sparse populations use a plain binary heap (the classic
//     std::priority_queue layout): O(log n) but with tiny constants and no
//     tuning hazard when events are spread over an arbitrary horizon.
//   * Dense populations switch to a calendar: a ring of buckets, each
//     covering a fixed slice of simulated time, sized at each window rebuild
//     so the in-window population averages about one event per bucket.
//     Pushes into the window are O(1) appends; pops sort one bucket at a
//     time. Events beyond the window overflow into the far heap (the second
//     level) and migrate in at the next rebuild, so a handful of far-future
//     events — timeouts, kSimTimeMax sentinels — cannot stretch the bucket
//     width and ruin the near events' distribution.
//
// The pop order is a pure function of the (time, sequence) pairs pushed:
// bucket boundaries, mode switches and rebuild instants cannot reorder
// events, which the differential test in tests/test_event_queue.cpp checks
// against a reference std::priority_queue.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace hps::des {

class Handler;

/// One scheduled event. `seq` is the global push counter used to break time
/// ties; `h` and the payload words are opaque to the queue.
struct QueuedEvent {
  SimTime t = 0;
  std::uint64_t seq = 0;
  Handler* h = nullptr;
  std::uint64_t a = 0, b = 0;
};

class EventQueue {
 public:
  EventQueue() = default;

  // The push/pop/next_time hot paths are defined inline below the class:
  // they run once per simulated event, and the call overhead of an
  // out-of-line definition is measurable against their short bodies.

  /// Enqueue an event; the queue assigns the FIFO tie-break sequence.
  void push(SimTime t, Handler* h, std::uint64_t a, std::uint64_t b);

  /// Remove and return the earliest event (min (t, seq)). Precondition:
  /// !empty().
  QueuedEvent pop();

  /// Time of the earliest event without removing it. Precondition: !empty().
  /// May advance internal cursors (lazy bucket sorting), hence non-const.
  SimTime next_time();

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Drop all pending events and reset the sequence counter to zero.
  void clear();

 private:
  // Ordering predicate: true if `x` fires after `y`. A stateless functor
  // rather than a static member function so std::sort / the std::*_heap
  // family (max-heap on "fires later" == min-heap on fire order) inline the
  // comparison instead of calling through a function pointer — the compare
  // runs tens of times per popped event in the in-bucket sorts.
  struct Later {
    bool operator()(const QueuedEvent& x, const QueuedEvent& y) const {
      return x.t > y.t || (x.t == y.t && x.seq > y.seq);
    }
  };
  static constexpr Later later{};

  void heap_push(QueuedEvent ev);
  QueuedEvent heap_pop();
  /// Ring index for time `t`, clamped to [cur_, num_buckets_). Valid only in
  /// calendar mode.
  std::size_t bucket_of(SimTime t) const;
  /// Move to the next nonempty bucket (rebuilding the window from the far
  /// heap when the ring is exhausted) and sort it if needed. Precondition:
  /// !empty(). Returns false if the rebuild fell back to heap mode.
  bool prepare_front();
  /// Recompute the bucket window from the far heap's population, or fall
  /// back to heap mode when it is too small to be worth bucketing.
  void rebuild_window();
  void bucket_insert(QueuedEvent ev);

  // Tuning. Switch to the calendar above kCalendarOn pending events; a
  // window rebuild reverts to the heap below kCalendarOff. The bucket count
  // tracks the population (capped), the width tracks the mean gap (capped so
  // a far outlier cannot zero out the resolution).
  static constexpr std::size_t kCalendarOn = 128;
  static constexpr std::size_t kCalendarOff = 64;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 16;
  static constexpr int kMaxWidthShift = 32;

  bool calendar_ = false;
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;

  // Heap-mode storage; in calendar mode, the far (beyond-window) overflow.
  std::vector<QueuedEvent> heap_;

  // Calendar state (valid only when calendar_):
  std::vector<std::vector<QueuedEvent>> buckets_;  // ring, cleared not freed
  std::size_t num_buckets_ = 0;                    // power of two
  int shift_ = 0;                                  // bucket width = 1 << shift_
  SimTime win_start_ = 0;
  SimTime win_end_ = 0;
  std::size_t cur_ = 0;        // bucket holding the earliest event
  bool cur_sorted_ = false;    // bucket cur_ is sorted descending by (t, seq)
};

inline void EventQueue::heap_push(QueuedEvent ev) {
  heap_.push_back(ev);
  std::push_heap(heap_.begin(), heap_.end(), later);
}

inline QueuedEvent EventQueue::heap_pop() {
  std::pop_heap(heap_.begin(), heap_.end(), later);
  QueuedEvent ev = heap_.back();
  heap_.pop_back();
  return ev;
}

inline std::size_t EventQueue::bucket_of(SimTime t) const {
  if (t < win_start_) return cur_;  // non-monotone push: keep it poppable first
  const auto off = static_cast<std::uint64_t>(t - win_start_) >> shift_;
  // A saturated window (win_end_ == kSimTimeMax) folds the tail into the
  // last bucket; ordering is restored by the per-bucket sort.
  const std::size_t idx = std::min(static_cast<std::size_t>(off), num_buckets_ - 1);
  return std::max(idx, cur_);
}

inline void EventQueue::bucket_insert(QueuedEvent ev) {
  const std::size_t idx = bucket_of(ev.t);
  std::vector<QueuedEvent>& b = buckets_[idx];
  if (idx != cur_ || !cur_sorted_ || b.empty() || later(b.back(), ev)) {
    // Untouched buckets take unsorted appends. The front bucket is kept
    // sorted descending (earliest at the back), but an event firing before
    // the current earliest — the common "schedule at now + epsilon" case —
    // also appends, since it becomes the new back.
    b.push_back(ev);
  } else {
    b.insert(std::upper_bound(b.begin(), b.end(), ev, later), ev);
  }
}

inline void EventQueue::push(SimTime t, Handler* h, std::uint64_t a, std::uint64_t b) {
  const QueuedEvent ev{t, next_seq_++, h, a, b};
  ++size_;
  if (!calendar_) {
    heap_push(ev);
    if (size_ > kCalendarOn) {
      calendar_ = true;
      rebuild_window();
    }
    return;
  }
  if (t >= win_end_)
    heap_push(ev);
  else
    bucket_insert(ev);
}

inline SimTime EventQueue::next_time() {
  HPS_CHECK(size_ > 0);
  if (calendar_ && prepare_front()) return buckets_[cur_].back().t;
  return heap_.front().t;
}

inline QueuedEvent EventQueue::pop() {
  HPS_CHECK(size_ > 0);
  --size_;
  QueuedEvent ev;
  if (calendar_ && prepare_front()) {
    ev = buckets_[cur_].back();
    buckets_[cur_].pop_back();
  } else {
    ev = heap_pop();
  }
  if (size_ == 0 && calendar_) {
    // Fully drained: revert to heap mode. Keeping the stale window alive
    // would clamp a later burst of earlier-time pushes into the single
    // current bucket, degrading its sorted inserts to quadratic time.
    calendar_ = false;
    cur_ = 0;
    cur_sorted_ = false;
  }
  return ev;
}

inline bool EventQueue::prepare_front() {
  while (buckets_[cur_].empty()) {
    cur_sorted_ = false;
    if (++cur_ == num_buckets_) {
      // Window drained: everything pending is in the far heap.
      rebuild_window();
      if (!calendar_) return false;
    }
  }
  if (!cur_sorted_) {
    std::vector<QueuedEvent>& b = buckets_[cur_];
    std::sort(b.begin(), b.end(), later);  // descending: earliest at back()
    cur_sorted_ = true;
  }
  return true;
}

}  // namespace hps::des
