#include "trace/features.hpp"

#include "common/error.hpp"

namespace hps::trace {

std::span<const std::string> feature_names() {
  static const std::string names[kNumFeatures] = {
      "R",    "RN",    "N",     "T",      "Tcp",    "PoCP",  "Tc",     "PoC",   "Tbr",
      "PoBR", "Tfbr",  "PoFBR", "Tcoll",  "PoCOLL", "Tfcoll", "PoFCOLL", "Tp2p", "PoTp2p",
      "Tsyn", "PoSYN", "Tasyn", "PoASYN", "TB",     "NoM",   "TBp2p",  "CR",    "CRComm",
      "NoCALL", "NoS", "NoIS",  "NoR",    "NoIR",   "NoB",   "NoC",    "CL"};
  return {names, static_cast<std::size_t>(kNumFeatures)};
}

FeatureVector extract_features(const Trace& t) {
  return extract_features(t.meta(), compute_stats(t));
}

FeatureVector extract_features(const TraceMeta& meta, const TraceStats& s) {
  FeatureVector f;
  const double total_s = time_to_seconds(s.time_total);
  const auto pct = [&](SimTime part) {
    return s.time_total > 0
               ? 100.0 * static_cast<double>(part) / static_cast<double>(s.time_total)
               : 0.0;
  };

  f[kF_R] = static_cast<double>(meta.nranks);
  f[kF_RN] = static_cast<double>(meta.ranks_per_node);
  f[kF_N] = static_cast<double>((meta.nranks + meta.ranks_per_node - 1) / meta.ranks_per_node);
  f[kF_T] = total_s;
  f[kF_Tcp] = time_to_seconds(s.time_compute);
  f[kF_PoCP] = pct(s.time_compute);
  f[kF_Tc] = time_to_seconds(s.time_comm);
  f[kF_PoC] = pct(s.time_comm);
  f[kF_Tbr] = time_to_seconds(s.time_barrier);
  f[kF_PoBR] = pct(s.time_barrier);
  f[kF_Tfbr] = time_to_seconds(s.time_first_barrier);
  f[kF_PoFBR] = pct(s.time_first_barrier);
  f[kF_Tcoll] = time_to_seconds(s.time_collective);
  f[kF_PoCOLL] = pct(s.time_collective);
  f[kF_Tfcoll] = time_to_seconds(s.time_first_a2a);
  f[kF_PoFCOLL] = pct(s.time_first_a2a);
  f[kF_Tp2p] = time_to_seconds(s.time_p2p);
  f[kF_PoTp2p] = pct(s.time_p2p);
  f[kF_Tsyn] = time_to_seconds(s.time_sync_p2p);
  f[kF_PoSYN] = pct(s.time_sync_p2p);
  f[kF_Tasyn] = time_to_seconds(s.time_async_p2p);
  f[kF_PoASYN] = pct(s.time_async_p2p);
  f[kF_TB] = static_cast<double>(s.bytes_total);
  f[kF_NoM] = static_cast<double>(s.messages);
  f[kF_TBp2p] = static_cast<double>(s.bytes_p2p);
  f[kF_CR] = s.avg_dests_per_source;
  f[kF_CRComm] =
      s.comm_pairs > 0 ? static_cast<double>(s.bytes_p2p) / static_cast<double>(s.comm_pairs)
                       : 0.0;
  f[kF_NoCALL] = static_cast<double>(s.mpi_calls);
  f[kF_NoS] = static_cast<double>(s.sends);
  f[kF_NoIS] = static_cast<double>(s.isends);
  f[kF_NoR] = static_cast<double>(s.recvs);
  f[kF_NoIR] = static_cast<double>(s.irecvs);
  f[kF_NoB] = static_cast<double>(s.barriers);
  f[kF_NoC] = static_cast<double>(s.collectives);
  f[kF_CL] = 0.0;
  return f;
}

}  // namespace hps::trace
