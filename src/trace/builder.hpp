// Fluent per-rank trace construction, used by the synthetic workload
// generators. Handles request-id allocation for nonblocking operations and
// records measured durations supplied by the caller (normally the
// ground-truth cost model in src/workloads).
#pragma once

#include <span>
#include <vector>

#include "trace/trace.hpp"

namespace hps::trace {

/// Appends events to one rank of a Trace.
class RankBuilder {
 public:
  RankBuilder(Trace& trace, Rank rank) : trace_(&trace), rank_(rank) {}

  Rank rank() const { return rank_; }

  /// Local computation for `duration` nanoseconds.
  RankBuilder& compute(SimTime duration);

  /// Blocking send/recv. `measured` is the elapsed time observed on the
  /// original machine for the call.
  RankBuilder& send(Rank dst, std::uint64_t bytes, Tag tag, SimTime measured);
  RankBuilder& recv(Rank src, std::uint64_t bytes, Tag tag, SimTime measured);

  /// Nonblocking send/recv; returns the request id to pass to wait().
  std::int32_t isend(Rank dst, std::uint64_t bytes, Tag tag, SimTime measured);
  std::int32_t irecv(Rank src, std::uint64_t bytes, Tag tag, SimTime measured);

  RankBuilder& wait(std::int32_t request, SimTime measured);
  RankBuilder& waitall(SimTime measured);

  RankBuilder& barrier(SimTime measured, CommId comm = kCommWorld);
  RankBuilder& allreduce(std::uint64_t bytes, SimTime measured, CommId comm = kCommWorld);
  RankBuilder& allgather(std::uint64_t bytes, SimTime measured, CommId comm = kCommWorld);
  RankBuilder& alltoall(std::uint64_t bytes_per_peer, SimTime measured,
                        CommId comm = kCommWorld);
  /// `bytes_per_dest` must have one entry per member of `comm`.
  RankBuilder& alltoallv(std::span<const std::uint64_t> bytes_per_dest, SimTime measured,
                         CommId comm = kCommWorld);
  RankBuilder& bcast(Rank root, std::uint64_t bytes, SimTime measured,
                     CommId comm = kCommWorld);
  RankBuilder& reduce(Rank root, std::uint64_t bytes, SimTime measured,
                      CommId comm = kCommWorld);
  RankBuilder& gather(Rank root, std::uint64_t bytes, SimTime measured,
                      CommId comm = kCommWorld);
  RankBuilder& scatter(Rank root, std::uint64_t bytes, SimTime measured,
                       CommId comm = kCommWorld);
  RankBuilder& reduce_scatter(std::uint64_t total_bytes, SimTime measured,
                              CommId comm = kCommWorld);
  RankBuilder& scan(std::uint64_t bytes, SimTime measured, CommId comm = kCommWorld);

 private:
  Event& push(OpType t);
  Trace* trace_;
  Rank rank_;
  std::int32_t next_request_ = 0;
};

}  // namespace hps::trace
