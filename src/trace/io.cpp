#include "trace/io.hpp"

#include <cstring>
#include <fstream>
#include <ostream>

#include "common/error.hpp"

namespace hps::trace {

namespace {

constexpr char kMagic[4] = {'H', 'P', 'S', 'T'};
// Sanity bounds: a hostile or corrupt header must not drive allocations.
constexpr std::uint64_t kMaxRanks = 1 << 20;
constexpr std::uint64_t kMaxEventsPerRank = 1ULL << 32;
constexpr std::uint64_t kMaxString = 1 << 16;

template <typename T>
void put(std::ostream& os, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T get(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  HPS_REQUIRE(static_cast<bool>(is), "trace stream truncated");
  return v;
}

void put_string(std::ostream& os, const std::string& s) {
  put<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_string(std::istream& is) {
  const auto n = get<std::uint32_t>(is);
  HPS_REQUIRE(n <= kMaxString, "trace string field too large");
  std::string s(n, '\0');
  is.read(s.data(), n);
  HPS_REQUIRE(static_cast<bool>(is), "trace stream truncated in string");
  return s;
}

}  // namespace

void write_binary(const Trace& t, std::ostream& os) {
  os.write(kMagic, 4);
  put<std::uint32_t>(os, kTraceFormatVersion);
  const auto& m = t.meta();
  put_string(os, m.app);
  put_string(os, m.variant);
  put_string(os, m.machine);
  put<std::int32_t>(os, m.nranks);
  put<std::int32_t>(os, m.ranks_per_node);
  put<std::uint64_t>(os, m.seed);

  // Communicators (world at index 0 is implicit — written for simplicity).
  put<std::uint32_t>(os, static_cast<std::uint32_t>(t.num_comms()));
  for (CommId c = 0; c < static_cast<CommId>(t.num_comms()); ++c) {
    const auto& members = t.comm(c);
    put<std::uint32_t>(os, static_cast<std::uint32_t>(members.size()));
    os.write(reinterpret_cast<const char*>(members.data()),
             static_cast<std::streamsize>(members.size() * sizeof(Rank)));
  }

  for (Rank r = 0; r < t.nranks(); ++r) {
    const auto& rt = t.rank(r);
    put<std::uint64_t>(os, rt.events.size());
    os.write(reinterpret_cast<const char*>(rt.events.data()),
             static_cast<std::streamsize>(rt.events.size() * sizeof(Event)));
    put<std::uint32_t>(os, static_cast<std::uint32_t>(rt.vlists.size()));
    for (const auto& vl : rt.vlists) {
      put<std::uint32_t>(os, static_cast<std::uint32_t>(vl.size()));
      os.write(reinterpret_cast<const char*>(vl.data()),
               static_cast<std::streamsize>(vl.size() * sizeof(std::uint64_t)));
    }
  }
  HPS_REQUIRE(static_cast<bool>(os), "trace write failed");
}

Trace read_binary(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  HPS_REQUIRE(static_cast<bool>(is) && std::memcmp(magic, kMagic, 4) == 0,
              "not a HPST trace stream");
  const auto version = get<std::uint32_t>(is);
  HPS_REQUIRE(version == kTraceFormatVersion, "unsupported trace format version");

  TraceMeta m;
  m.app = get_string(is);
  m.variant = get_string(is);
  m.machine = get_string(is);
  m.nranks = get<std::int32_t>(is);
  m.ranks_per_node = get<std::int32_t>(is);
  m.seed = get<std::uint64_t>(is);
  HPS_REQUIRE(m.nranks > 0 && static_cast<std::uint64_t>(m.nranks) <= kMaxRanks,
              "trace rank count out of range");
  HPS_REQUIRE(m.ranks_per_node > 0, "trace ranks_per_node out of range");

  Trace t(std::move(m));

  const auto ncomms = get<std::uint32_t>(is);
  HPS_REQUIRE(ncomms >= 1 && ncomms <= kMaxRanks, "trace comm count out of range");
  for (std::uint32_t c = 0; c < ncomms; ++c) {
    const auto sz = get<std::uint32_t>(is);
    HPS_REQUIRE(sz >= 1 && sz <= static_cast<std::uint32_t>(t.nranks()),
                "trace comm size out of range");
    std::vector<Rank> members(sz);
    is.read(reinterpret_cast<char*>(members.data()),
            static_cast<std::streamsize>(sz * sizeof(Rank)));
    HPS_REQUIRE(static_cast<bool>(is), "trace stream truncated in comm");
    if (c == 0) continue;  // world was created by the Trace constructor
    t.add_comm(std::move(members));
  }

  for (Rank r = 0; r < t.nranks(); ++r) {
    auto& rt = t.rank(r);
    const auto nev = get<std::uint64_t>(is);
    HPS_REQUIRE(nev <= kMaxEventsPerRank, "trace event count out of range");
    rt.events.resize(nev);
    is.read(reinterpret_cast<char*>(rt.events.data()),
            static_cast<std::streamsize>(nev * sizeof(Event)));
    HPS_REQUIRE(static_cast<bool>(is), "trace stream truncated in events");
    const auto nvl = get<std::uint32_t>(is);
    HPS_REQUIRE(nvl <= kMaxEventsPerRank, "trace vlist count out of range");
    rt.vlists.resize(nvl);
    for (auto& vl : rt.vlists) {
      const auto sz = get<std::uint32_t>(is);
      HPS_REQUIRE(sz <= static_cast<std::uint32_t>(t.nranks()), "trace vlist size out of range");
      vl.resize(sz);
      is.read(reinterpret_cast<char*>(vl.data()),
              static_cast<std::streamsize>(sz * sizeof(std::uint64_t)));
      HPS_REQUIRE(static_cast<bool>(is), "trace stream truncated in vlist");
    }
  }
  return t;
}

void save(const Trace& t, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  HPS_REQUIRE(os.is_open(), "cannot open trace file for writing: " + path);
  write_binary(t, os);
}

Trace load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  HPS_REQUIRE(is.is_open(), "cannot open trace file: " + path);
  return read_binary(is);
}

void write_text(const Trace& t, std::ostream& os, std::size_t max_events_per_rank) {
  const auto& m = t.meta();
  os << "# trace " << m.app << " variant=" << m.variant << " machine=" << m.machine
     << " ranks=" << m.nranks << " rpn=" << m.ranks_per_node << " seed=" << m.seed << "\n";
  for (Rank r = 0; r < t.nranks(); ++r) {
    const auto& rt = t.rank(r);
    os << "rank " << r << " events=" << rt.events.size() << "\n";
    std::size_t limit = rt.events.size();
    if (max_events_per_rank != 0 && max_events_per_rank < limit) limit = max_events_per_rank;
    for (std::size_t i = 0; i < limit; ++i) {
      const Event& e = rt.events[i];
      os << "  " << op_name(e.type);
      if (is_p2p(e.type)) os << " peer=" << e.peer << " tag=" << e.tag << " bytes=" << e.bytes;
      if (is_collective(e.type)) {
        os << " comm=" << e.comm << " bytes=" << e.bytes;
        if (is_rooted(e.type)) os << " root=" << e.peer;
      }
      if (e.request >= 0) os << " req=" << e.request;
      os << " dur=" << e.duration << "ns\n";
    }
    if (limit < rt.events.size()) os << "  ... (" << rt.events.size() - limit << " more)\n";
  }
}

}  // namespace hps::trace
