#include "trace/trace.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/error.hpp"

namespace hps::trace {

Trace::Trace(TraceMeta meta) : meta_(std::move(meta)) {
  HPS_CHECK(meta_.nranks > 0);
  HPS_CHECK(meta_.ranks_per_node > 0);
  ranks_.resize(static_cast<std::size_t>(meta_.nranks));
  std::vector<Rank> world(static_cast<std::size_t>(meta_.nranks));
  for (Rank r = 0; r < meta_.nranks; ++r) world[static_cast<std::size_t>(r)] = r;
  comms_.push_back(std::move(world));
}

CommId Trace::add_comm(std::vector<Rank> members) {
  HPS_CHECK(!members.empty());
  for (Rank r : members) HPS_CHECK(r >= 0 && r < meta_.nranks);
  comms_.push_back(std::move(members));
  return static_cast<CommId>(comms_.size() - 1);
}

std::uint64_t Trace::total_events() const {
  std::uint64_t n = 0;
  for (const auto& rt : ranks_) n += rt.events.size();
  return n;
}

SimTime Trace::measured_total() const {
  SimTime mx = 0;
  for (const auto& rt : ranks_) {
    SimTime t = 0;
    for (const auto& e : rt.events) t += e.duration;
    mx = std::max(mx, t);
  }
  return mx;
}

SimTime Trace::measured_comm_mean() const {
  if (ranks_.empty()) return 0;
  SimTime total = 0;
  for (const auto& rt : ranks_) {
    for (const auto& e : rt.events)
      if (e.type != OpType::kCompute) total += e.duration;
  }
  return total / static_cast<SimTime>(ranks_.size());
}

TraceStats compute_stats(const Trace& t) {
  TraceStats s;
  std::uint64_t total_dests = 0;
  std::uint64_t sending_ranks = 0;
  for (Rank r = 0; r < t.nranks(); ++r) {
    const auto& rt = t.rank(r);
    bool saw_barrier = false;
    bool saw_a2a = false;
    std::unordered_set<Rank> dests;
    for (const auto& e : rt.events) {
      ++s.events;
      s.time_total += e.duration;
      switch (e.type) {
        case OpType::kCompute:
          s.time_compute += e.duration;
          continue;  // not an MPI call
        case OpType::kSend:
          ++s.sends;
          ++s.messages;
          s.bytes_p2p += e.bytes;
          s.bytes_total += e.bytes;
          dests.insert(e.peer);
          s.time_p2p += e.duration;
          s.time_sync_p2p += e.duration;
          break;
        case OpType::kIsend:
          ++s.isends;
          ++s.messages;
          s.bytes_p2p += e.bytes;
          s.bytes_total += e.bytes;
          dests.insert(e.peer);
          s.time_p2p += e.duration;
          s.time_async_p2p += e.duration;
          break;
        case OpType::kRecv:
          ++s.recvs;
          s.time_p2p += e.duration;
          s.time_sync_p2p += e.duration;
          break;
        case OpType::kIrecv:
          ++s.irecvs;
          s.time_p2p += e.duration;
          s.time_async_p2p += e.duration;
          break;
        case OpType::kWait:
        case OpType::kWaitAll:
          s.time_p2p += e.duration;
          s.time_async_p2p += e.duration;
          break;
        case OpType::kBarrier:
          ++s.barriers;
          s.time_barrier += e.duration;
          if (!saw_barrier) {
            s.time_first_barrier += e.duration;
            saw_barrier = true;
          }
          break;
        default: {  // non-barrier collectives
          ++s.collectives;
          s.time_collective += e.duration;
          // Injected bytes: for alltoall-like ops `bytes` is already the
          // per-peer block (alltoall) or the total (alltoallv).
          const std::size_t csize = t.comm(e.comm).size();
          std::uint64_t injected = e.bytes;
          if (e.type == OpType::kAlltoall) injected = e.bytes * (csize > 0 ? csize - 1 : 0);
          s.bytes_total += injected;
          if (is_alltoall_like(e.type) && !saw_a2a) {
            s.time_first_a2a += e.duration;
            saw_a2a = true;
          }
          break;
        }
      }
      ++s.mpi_calls;
    }
    if (!dests.empty()) {
      total_dests += dests.size();
      ++sending_ranks;
    }
    s.comm_pairs += dests.size();
  }
  s.time_comm = s.time_total - s.time_compute;
  s.avg_dests_per_source =
      sending_ranks > 0 ? static_cast<double>(total_dests) / static_cast<double>(sending_ranks)
                        : 0.0;
  return s;
}

}  // namespace hps::trace
