// Trace structural validation: a malformed trace (unmatched sends, missing
// waits, inconsistent collective order) would deadlock or silently corrupt
// both replay engines, so generators and the loader validate before use.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace hps::trace {

struct ValidationIssue {
  Rank rank;           // -1 for trace-global issues
  std::string message;
};

/// Checks, per rank and globally:
///  * p2p events address valid world ranks and have positive-or-zero sizes;
///  * every (src, dst, tag) send stream has a matching recv stream with the
///    same message count and per-message sizes (FIFO order);
///  * every Isend/Irecv request is eventually completed by a Wait naming it
///    or by a WaitAll, and Waits name previously issued, uncompleted requests;
///  * all members of a communicator execute the same collective sequence
///    (same op, byte semantics, and root);
///  * Alltoallv aux indexes are in range and vlists sized to the comm.
/// Returns the list of problems found (empty means valid).
std::vector<ValidationIssue> validate(const Trace& t);

/// Convenience: throws hps::Error with a summary if validation fails.
void validate_or_throw(const Trace& t);

}  // namespace hps::trace
