// The 35 candidate features of the paper's Table III, extracted from a
// trace. Feature 34 ("CL", the MFACT communication-sensitivity class) cannot
// be derived from the trace alone — it is filled in by the caller after
// running the MFACT classifier (1 = communication-sensitive "cs",
// 0 = "ncs" for computation-bound and load-imbalance-bound).
#pragma once

#include <array>
#include <span>
#include <string>

#include "trace/trace.hpp"

namespace hps::trace {

/// Feature indices, mirroring Table III of the paper.
enum Feature : int {
  kF_R = 0,        ///< number of ranks
  kF_RN,           ///< ranks per node
  kF_N,            ///< number of nodes deployed
  kF_T,            ///< total execution time (s, summed over ranks)
  kF_Tcp,          ///< computation time (s)
  kF_PoCP,         ///< % of computation time
  kF_Tc,           ///< communication time (s)
  kF_PoC,          ///< % of communication time
  kF_Tbr,          ///< barrier time (s)
  kF_PoBR,         ///< % of barrier time
  kF_Tfbr,         ///< first barrier time (s)
  kF_PoFBR,        ///< % of first barrier time
  kF_Tcoll,        ///< collective time (s)
  kF_PoCOLL,       ///< % of collective time
  kF_Tfcoll,       ///< first all-to-all collective time (s)
  kF_PoFCOLL,      ///< % of first all-to-all collective time
  kF_Tp2p,         ///< point-to-point time (s)
  kF_PoTp2p,       ///< % of point-to-point time
  kF_Tsyn,         ///< synchronous (blocking) p2p time (s)
  kF_PoSYN,        ///< % of synchronous p2p time
  kF_Tasyn,        ///< asynchronous p2p time (s)
  kF_PoASYN,       ///< % of asynchronous p2p time
  kF_TB,           ///< total bytes sent
  kF_NoM,          ///< number of messages sent
  kF_TBp2p,        ///< total p2p bytes sent
  kF_CR,           ///< destination ranks per source (mean)
  kF_CRComm,       ///< average p2p bytes per (src, dst) pair
  kF_NoCALL,       ///< number of MPI calls
  kF_NoS,          ///< number of blocking sends
  kF_NoIS,         ///< number of nonblocking sends
  kF_NoR,          ///< number of blocking receives
  kF_NoIR,         ///< number of nonblocking receives
  kF_NoB,          ///< number of barriers
  kF_NoC,          ///< number of collectives
  kF_CL,           ///< sensitivity class: 1 = cs, 0 = ncs (set by MFACT)
  kNumFeatures,
};

/// Short names as printed in the paper's tables ("CL{ncs}" style handled by
/// the model reporting layer).
std::span<const std::string> feature_names();

/// A feature vector for one trace.
struct FeatureVector {
  std::array<double, kNumFeatures> v{};
  double operator[](int i) const { return v[static_cast<std::size_t>(i)]; }
  double& operator[](int i) { return v[static_cast<std::size_t>(i)]; }
};

/// Extract features 0..33 from a trace (kF_CL is left at 0).
FeatureVector extract_features(const Trace& t);

/// Same, but from pre-computed stats (avoids a second pass).
FeatureVector extract_features(const TraceMeta& meta, const TraceStats& s);

}  // namespace hps::trace
