#include "trace/builder.hpp"

#include <numeric>

#include "common/error.hpp"

namespace hps::trace {

Event& RankBuilder::push(OpType t) {
  auto& events = trace_->rank(rank_).events;
  events.emplace_back();
  events.back().type = t;
  return events.back();
}

RankBuilder& RankBuilder::compute(SimTime duration) {
  HPS_CHECK(duration >= 0);
  if (duration == 0) return *this;
  auto& events = trace_->rank(rank_).events;
  // Coalesce back-to-back compute intervals to keep traces compact.
  if (!events.empty() && events.back().type == OpType::kCompute) {
    events.back().duration += duration;
    return *this;
  }
  Event& e = push(OpType::kCompute);
  e.duration = duration;
  return *this;
}

RankBuilder& RankBuilder::send(Rank dst, std::uint64_t bytes, Tag tag, SimTime measured) {
  Event& e = push(OpType::kSend);
  e.peer = dst;
  e.bytes = bytes;
  e.tag = tag;
  e.duration = measured;
  return *this;
}

RankBuilder& RankBuilder::recv(Rank src, std::uint64_t bytes, Tag tag, SimTime measured) {
  Event& e = push(OpType::kRecv);
  e.peer = src;
  e.bytes = bytes;
  e.tag = tag;
  e.duration = measured;
  return *this;
}

std::int32_t RankBuilder::isend(Rank dst, std::uint64_t bytes, Tag tag, SimTime measured) {
  Event& e = push(OpType::kIsend);
  e.peer = dst;
  e.bytes = bytes;
  e.tag = tag;
  e.duration = measured;
  e.request = next_request_++;
  return e.request;
}

std::int32_t RankBuilder::irecv(Rank src, std::uint64_t bytes, Tag tag, SimTime measured) {
  Event& e = push(OpType::kIrecv);
  e.peer = src;
  e.bytes = bytes;
  e.tag = tag;
  e.duration = measured;
  e.request = next_request_++;
  return e.request;
}

RankBuilder& RankBuilder::wait(std::int32_t request, SimTime measured) {
  Event& e = push(OpType::kWait);
  e.request = request;
  e.duration = measured;
  return *this;
}

RankBuilder& RankBuilder::waitall(SimTime measured) {
  Event& e = push(OpType::kWaitAll);
  e.duration = measured;
  return *this;
}

RankBuilder& RankBuilder::barrier(SimTime measured, CommId comm) {
  Event& e = push(OpType::kBarrier);
  e.comm = comm;
  e.duration = measured;
  return *this;
}

RankBuilder& RankBuilder::allreduce(std::uint64_t bytes, SimTime measured, CommId comm) {
  Event& e = push(OpType::kAllreduce);
  e.comm = comm;
  e.bytes = bytes;
  e.duration = measured;
  return *this;
}

RankBuilder& RankBuilder::allgather(std::uint64_t bytes, SimTime measured, CommId comm) {
  Event& e = push(OpType::kAllgather);
  e.comm = comm;
  e.bytes = bytes;
  e.duration = measured;
  return *this;
}

RankBuilder& RankBuilder::alltoall(std::uint64_t bytes_per_peer, SimTime measured, CommId comm) {
  Event& e = push(OpType::kAlltoall);
  e.comm = comm;
  e.bytes = bytes_per_peer;
  e.duration = measured;
  return *this;
}

RankBuilder& RankBuilder::alltoallv(std::span<const std::uint64_t> bytes_per_dest,
                                    SimTime measured, CommId comm) {
  HPS_CHECK(bytes_per_dest.size() == trace_->comm(comm).size());
  auto& rt = trace_->rank(rank_);
  rt.vlists.emplace_back(bytes_per_dest.begin(), bytes_per_dest.end());
  Event& e = push(OpType::kAlltoallv);
  e.comm = comm;
  e.aux = static_cast<std::int32_t>(rt.vlists.size() - 1);
  e.bytes = std::accumulate(bytes_per_dest.begin(), bytes_per_dest.end(), std::uint64_t{0});
  e.duration = measured;
  return *this;
}

RankBuilder& RankBuilder::bcast(Rank root, std::uint64_t bytes, SimTime measured, CommId comm) {
  Event& e = push(OpType::kBcast);
  e.comm = comm;
  e.peer = root;
  e.bytes = bytes;
  e.duration = measured;
  return *this;
}

RankBuilder& RankBuilder::reduce(Rank root, std::uint64_t bytes, SimTime measured, CommId comm) {
  Event& e = push(OpType::kReduce);
  e.comm = comm;
  e.peer = root;
  e.bytes = bytes;
  e.duration = measured;
  return *this;
}

RankBuilder& RankBuilder::gather(Rank root, std::uint64_t bytes, SimTime measured, CommId comm) {
  Event& e = push(OpType::kGather);
  e.comm = comm;
  e.peer = root;
  e.bytes = bytes;
  e.duration = measured;
  return *this;
}

RankBuilder& RankBuilder::scatter(Rank root, std::uint64_t bytes, SimTime measured, CommId comm) {
  Event& e = push(OpType::kScatter);
  e.comm = comm;
  e.peer = root;
  e.bytes = bytes;
  e.duration = measured;
  return *this;
}

RankBuilder& RankBuilder::reduce_scatter(std::uint64_t total_bytes, SimTime measured,
                                         CommId comm) {
  Event& e = push(OpType::kReduceScatter);
  e.comm = comm;
  e.bytes = total_bytes;
  e.duration = measured;
  return *this;
}

RankBuilder& RankBuilder::scan(std::uint64_t bytes, SimTime measured, CommId comm) {
  Event& e = push(OpType::kScan);
  e.comm = comm;
  e.bytes = bytes;
  e.duration = measured;
  return *this;
}

}  // namespace hps::trace
