// Editable ASCII trace format ("hpst-text"), the project's analogue of
// converted DUMPI ASCII dumps: line-oriented, one event per line, fully
// round-trippable. Lets users author or patch traces by hand and feeds them
// to the same tooling as binary traces.
//
//   # comments and blank lines are ignored
//   meta app=CG variant=C machine=cielito ranks=4 rpn=16 seed=7
//   comm 1 = 0 2            # sub-communicator 1 contains world ranks 0 and 2
//   rank 0
//     compute dur=1000
//     send peer=1 bytes=64 tag=5 dur=10
//     isend peer=1 bytes=64 tag=5 req=0 dur=10
//     irecv peer=1 bytes=64 tag=6 req=1 dur=10
//     wait req=1 dur=20
//     waitall dur=20
//     barrier comm=0 dur=30
//     allreduce comm=0 bytes=8 dur=40
//     bcast comm=0 root=2 bytes=128 dur=50
//     alltoallv comm=0 dur=60 sizes=0,5,10,0
//   endrank
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace hps::trace {

/// Write the whole trace as hpst-text.
void write_text_format(const Trace& t, std::ostream& os);

/// Parse hpst-text. Throws hps::Error with a line number on malformed input.
Trace read_text_format(std::istream& is);

/// File helpers.
void save_text(const Trace& t, const std::string& path);
Trace load_text(const std::string& path);

}  // namespace hps::trace
