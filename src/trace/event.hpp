// The trace event model — an in-memory equivalent of a DUMPI trace record.
//
// A trace is a per-rank sequence of events. Each communication event carries
// the *measured* elapsed time observed on the machine the trace was
// "collected" on (synthesized by src/workloads in this reproduction), which
// is what both the modeling tool and the simulators replace with their own
// predicted cost during replay. Compute events carry the measured
// computation interval between MPI calls.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace hps::trace {

/// MPI operation kinds recorded in a trace.
enum class OpType : std::uint8_t {
  kCompute,    // local computation; `duration` is the measured interval
  kSend,       // blocking standard-mode send
  kIsend,      // nonblocking send; `request` names the request
  kRecv,       // blocking receive
  kIrecv,      // nonblocking receive; `request` names the request
  kWait,       // wait for one named request
  kWaitAll,    // wait for every outstanding request of this rank
  kBarrier,
  kBcast,      // rooted; `peer` is the root, `bytes` is the payload
  kReduce,     // rooted; `peer` is the root
  kAllreduce,  // `bytes` is the reduced payload size
  kAllgather,  // `bytes` is the per-rank contribution
  kAlltoall,   // `bytes` is the per-peer block size
  kAlltoallv,  // `aux` indexes the per-destination byte list; `bytes` = total sent
  kGather,       // rooted; `peer` is the root; `bytes` per-rank contribution
  kScatter,      // rooted; `peer` is the root; `bytes` per-rank block
  kReduceScatter,  // `bytes` is the total reduced vector (each rank keeps 1/n)
  kScan,           // inclusive prefix reduction; `bytes` is the payload
};

/// Number of distinct OpType values (for tables indexed by op).
inline constexpr int kNumOpTypes = 18;

constexpr bool is_p2p(OpType t) {
  return t == OpType::kSend || t == OpType::kIsend || t == OpType::kRecv ||
         t == OpType::kIrecv;
}

constexpr bool is_send_like(OpType t) { return t == OpType::kSend || t == OpType::kIsend; }
constexpr bool is_recv_like(OpType t) { return t == OpType::kRecv || t == OpType::kIrecv; }

constexpr bool is_collective(OpType t) {
  switch (t) {
    case OpType::kBarrier:
    case OpType::kBcast:
    case OpType::kReduce:
    case OpType::kAllreduce:
    case OpType::kAllgather:
    case OpType::kAlltoall:
    case OpType::kAlltoallv:
    case OpType::kGather:
    case OpType::kScatter:
    case OpType::kReduceScatter:
    case OpType::kScan:
      return true;
    default:
      return false;
  }
}

/// True for collectives in which every rank both sends to and receives from
/// every other rank (used by the feature extractor's "first all-to-all").
constexpr bool is_alltoall_like(OpType t) {
  return t == OpType::kAlltoall || t == OpType::kAlltoallv;
}

/// True for rooted collectives where `peer` holds the root rank.
constexpr bool is_rooted(OpType t) {
  return t == OpType::kBcast || t == OpType::kReduce || t == OpType::kGather ||
         t == OpType::kScatter;
}

const char* op_name(OpType t);

/// One trace record. 40 bytes, trivially copyable; traces hold millions.
struct Event {
  OpType type = OpType::kCompute;
  Rank peer = -1;        // p2p: the other rank (world-numbered); rooted collective: root
  Tag tag = 0;           // p2p matching tag
  CommId comm = kCommWorld;
  std::int32_t request = -1;  // Isend/Irecv/Wait: per-rank request id
  std::int32_t aux = -1;      // Alltoallv: index into RankTrace::vlists
  std::uint64_t bytes = 0;    // payload size (semantics depend on `type`)
  SimTime duration = 0;       // measured elapsed time of this event, ns
};

static_assert(sizeof(Event) <= 40, "Event grew; check hot-loop footprint");

}  // namespace hps::trace
