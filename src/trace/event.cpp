#include "trace/event.hpp"

namespace hps::trace {

const char* op_name(OpType t) {
  switch (t) {
    case OpType::kCompute: return "Compute";
    case OpType::kSend: return "Send";
    case OpType::kIsend: return "Isend";
    case OpType::kRecv: return "Recv";
    case OpType::kIrecv: return "Irecv";
    case OpType::kWait: return "Wait";
    case OpType::kWaitAll: return "WaitAll";
    case OpType::kBarrier: return "Barrier";
    case OpType::kBcast: return "Bcast";
    case OpType::kReduce: return "Reduce";
    case OpType::kAllreduce: return "Allreduce";
    case OpType::kAllgather: return "Allgather";
    case OpType::kAlltoall: return "Alltoall";
    case OpType::kAlltoallv: return "Alltoallv";
    case OpType::kGather: return "Gather";
    case OpType::kScatter: return "Scatter";
    case OpType::kReduceScatter: return "ReduceScatter";
    case OpType::kScan: return "Scan";
  }
  return "?";
}

}  // namespace hps::trace
