// Trace container: per-rank event streams plus metadata, the in-memory
// analogue of a directory of DUMPI files from one application run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "trace/event.hpp"

namespace hps::trace {

/// The event stream of a single MPI rank.
struct RankTrace {
  std::vector<Event> events;
  /// Per-destination byte lists for Alltoallv events (indexed by Event::aux).
  /// Each list has one entry per member of the event's communicator.
  std::vector<std::vector<std::uint64_t>> vlists;
};

/// Metadata describing the run the trace was collected from.
struct TraceMeta {
  std::string app;      ///< application name, e.g. "CG", "LULESH"
  std::string variant;  ///< problem class / size descriptor, e.g. "C.256"
  std::string machine;  ///< machine the trace was collected on
  Rank nranks = 0;
  std::int32_t ranks_per_node = 16;
  std::uint64_t seed = 0;  ///< generator seed (0 for externally loaded traces)
};

/// A complete application trace.
class Trace {
 public:
  Trace() = default;

  /// Construct an empty trace with `nranks` rank streams and a world
  /// communicator containing all of them.
  explicit Trace(TraceMeta meta);

  const TraceMeta& meta() const { return meta_; }
  TraceMeta& meta() { return meta_; }

  Rank nranks() const { return meta_.nranks; }
  std::int32_t nodes() const {
    return (meta_.nranks + meta_.ranks_per_node - 1) / meta_.ranks_per_node;
  }

  const RankTrace& rank(Rank r) const { return ranks_[static_cast<std::size_t>(r)]; }
  RankTrace& rank(Rank r) { return ranks_[static_cast<std::size_t>(r)]; }

  /// Register a sub-communicator; returns its CommId. Members are world ranks.
  CommId add_comm(std::vector<Rank> members);

  /// Members of a communicator. CommId 0 is always the full world.
  const std::vector<Rank>& comm(CommId c) const { return comms_[static_cast<std::size_t>(c)]; }
  std::size_t num_comms() const { return comms_.size(); }

  /// Total number of events across ranks.
  std::uint64_t total_events() const;

  /// Measured wall time: max over ranks of the sum of event durations.
  SimTime measured_total() const;

  /// Measured communication time: mean over ranks of the summed durations of
  /// all non-compute events.
  SimTime measured_comm_mean() const;

 private:
  TraceMeta meta_;
  std::vector<RankTrace> ranks_;
  std::vector<std::vector<Rank>> comms_;
};

/// Per-trace tallies used by Table I and the feature extractor.
struct TraceStats {
  std::uint64_t events = 0;
  std::uint64_t mpi_calls = 0;     // all non-compute events
  std::uint64_t sends = 0;         // blocking sends
  std::uint64_t isends = 0;        // nonblocking sends
  std::uint64_t recvs = 0;
  std::uint64_t irecvs = 0;
  std::uint64_t barriers = 0;      // per-rank barrier records
  std::uint64_t collectives = 0;   // per-rank non-barrier collective records
  std::uint64_t messages = 0;      // p2p messages sent
  std::uint64_t bytes_total = 0;   // all bytes injected (p2p + collective contributions)
  std::uint64_t bytes_p2p = 0;
  SimTime time_total = 0;          // sum over ranks of all durations
  SimTime time_compute = 0;
  SimTime time_comm = 0;           // total - compute
  SimTime time_barrier = 0;
  SimTime time_first_barrier = 0;  // summed over ranks for the first barrier
  SimTime time_collective = 0;     // non-barrier collectives
  SimTime time_first_a2a = 0;      // first alltoall(-v) occurrence, summed over ranks
  SimTime time_p2p = 0;            // send/recv/wait durations
  SimTime time_sync_p2p = 0;       // blocking send+recv durations
  SimTime time_async_p2p = 0;      // isend/irecv/wait durations
  std::uint64_t comm_pairs = 0;    // distinct (src, dst) pairs with p2p traffic
  double avg_dests_per_source = 0; // mean distinct destinations per sending rank
  double comm_fraction() const {
    return time_total > 0 ? static_cast<double>(time_comm) / static_cast<double>(time_total) : 0.0;
  }
};

/// Single pass over the trace computing the tallies above.
TraceStats compute_stats(const Trace& t);

}  // namespace hps::trace
