#include "trace/text_format.hpp"

#include <charconv>
#include <memory>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "trace/builder.hpp"

namespace hps::trace {

namespace {

const char* text_op_name(OpType t) {
  switch (t) {
    case OpType::kCompute: return "compute";
    case OpType::kSend: return "send";
    case OpType::kIsend: return "isend";
    case OpType::kRecv: return "recv";
    case OpType::kIrecv: return "irecv";
    case OpType::kWait: return "wait";
    case OpType::kWaitAll: return "waitall";
    case OpType::kBarrier: return "barrier";
    case OpType::kBcast: return "bcast";
    case OpType::kReduce: return "reduce";
    case OpType::kAllreduce: return "allreduce";
    case OpType::kAllgather: return "allgather";
    case OpType::kAlltoall: return "alltoall";
    case OpType::kAlltoallv: return "alltoallv";
    case OpType::kGather: return "gather";
    case OpType::kScatter: return "scatter";
    case OpType::kReduceScatter: return "reducescatter";
    case OpType::kScan: return "scan";
  }
  return "?";
}

/// key=value attribute bag parsed from one line.
class Attrs {
 public:
  Attrs(const std::vector<std::string>& tokens, std::size_t first, int line) : line_(line) {
    for (std::size_t i = first; i < tokens.size(); ++i) {
      const auto eq = tokens[i].find('=');
      HPS_REQUIRE(eq != std::string::npos && eq > 0,
                  "line " + std::to_string(line) + ": expected key=value, got '" +
                      tokens[i] + "'");
      kv_[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
    }
  }

  bool has(const std::string& key) const { return kv_.contains(key); }

  std::int64_t get_int(const std::string& key) const {
    const auto it = kv_.find(key);
    HPS_REQUIRE(it != kv_.end(),
                "line " + std::to_string(line_) + ": missing attribute '" + key + "'");
    std::int64_t v = 0;
    const auto [p, ec] =
        std::from_chars(it->second.data(), it->second.data() + it->second.size(), v);
    HPS_REQUIRE(ec == std::errc() && p == it->second.data() + it->second.size(),
                "line " + std::to_string(line_) + ": bad integer for '" + key + "'");
    return v;
  }

  std::int64_t get_int_or(const std::string& key, std::int64_t fallback) const {
    return has(key) ? get_int(key) : fallback;
  }

  std::string get_str(const std::string& key) const {
    const auto it = kv_.find(key);
    HPS_REQUIRE(it != kv_.end(),
                "line " + std::to_string(line_) + ": missing attribute '" + key + "'");
    return it->second;
  }

  std::vector<std::uint64_t> get_u64_list(const std::string& key) const {
    const std::string raw = get_str(key);
    std::vector<std::uint64_t> out;
    std::size_t pos = 0;
    while (pos < raw.size()) {
      const auto comma = raw.find(',', pos);
      const std::string part =
          raw.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
      std::uint64_t v = 0;
      const auto [p, ec] = std::from_chars(part.data(), part.data() + part.size(), v);
      HPS_REQUIRE(ec == std::errc() && p == part.data() + part.size(),
                  "line " + std::to_string(line_) + ": bad size list entry '" + part + "'");
      out.push_back(v);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    return out;
  }

 private:
  std::map<std::string, std::string> kv_;
  int line_;
};

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream ss(line);
  std::string tok;
  while (ss >> tok) {
    if (tok[0] == '#') break;  // trailing comment
    out.push_back(tok);
  }
  return out;
}

}  // namespace

void write_text_format(const Trace& t, std::ostream& os) {
  const auto& m = t.meta();
  os << "# hpst-text v1\n";
  os << "meta app=" << m.app << " variant=" << (m.variant.empty() ? "-" : m.variant)
     << " machine=" << m.machine << " ranks=" << m.nranks << " rpn=" << m.ranks_per_node
     << " seed=" << m.seed << "\n";
  for (CommId c = 1; c < static_cast<CommId>(t.num_comms()); ++c) {
    os << "comm " << c << " =";
    for (const Rank r : t.comm(c)) os << " " << r;
    os << "\n";
  }
  for (Rank r = 0; r < t.nranks(); ++r) {
    os << "rank " << r << "\n";
    const auto& rt = t.rank(r);
    for (const Event& e : rt.events) {
      os << "  " << text_op_name(e.type);
      switch (e.type) {
        case OpType::kCompute:
          break;
        case OpType::kSend:
        case OpType::kRecv:
          os << " peer=" << e.peer << " bytes=" << e.bytes << " tag=" << e.tag;
          break;
        case OpType::kIsend:
        case OpType::kIrecv:
          os << " peer=" << e.peer << " bytes=" << e.bytes << " tag=" << e.tag
             << " req=" << e.request;
          break;
        case OpType::kWait:
          os << " req=" << e.request;
          break;
        case OpType::kWaitAll:
          break;
        case OpType::kBarrier:
          os << " comm=" << e.comm;
          break;
        case OpType::kAlltoallv: {
          os << " comm=" << e.comm << " sizes=";
          const auto& vl = rt.vlists[static_cast<std::size_t>(e.aux)];
          for (std::size_t i = 0; i < vl.size(); ++i) os << (i ? "," : "") << vl[i];
          break;
        }
        default:
          os << " comm=" << e.comm << " bytes=" << e.bytes;
          if (is_rooted(e.type)) os << " root=" << e.peer;
          break;
      }
      os << " dur=" << e.duration << "\n";
    }
    os << "endrank\n";
  }
  HPS_REQUIRE(static_cast<bool>(os), "text trace write failed");
}

Trace read_text_format(std::istream& is) {
  std::string line;
  int lineno = 0;
  bool have_meta = false;
  Trace t;
  std::vector<std::unique_ptr<RankBuilder>> builders;
  RankBuilder* cur = nullptr;
  // Sub-communicators must be declared before use; remember declared ids.
  CommId declared_comms = 0;

  auto require_meta = [&] {
    HPS_REQUIRE(have_meta, "line " + std::to_string(lineno) + ": 'meta' must come first");
  };

  while (std::getline(is, line)) {
    ++lineno;
    const auto toks = tokenize(line);
    if (toks.empty()) continue;
    const std::string& kw = toks[0];

    if (kw == "meta") {
      HPS_REQUIRE(!have_meta, "line " + std::to_string(lineno) + ": duplicate 'meta'");
      const Attrs a(toks, 1, lineno);
      TraceMeta m;
      m.app = a.get_str("app");
      m.variant = a.get_str("variant") == "-" ? "" : a.get_str("variant");
      m.machine = a.get_str("machine");
      m.nranks = static_cast<Rank>(a.get_int("ranks"));
      m.ranks_per_node = static_cast<int>(a.get_int_or("rpn", 16));
      m.seed = static_cast<std::uint64_t>(a.get_int_or("seed", 0));
      HPS_REQUIRE(m.nranks > 0, "line " + std::to_string(lineno) + ": ranks must be > 0");
      t = Trace(std::move(m));
      builders.clear();
      for (Rank r = 0; r < t.nranks(); ++r)
        builders.push_back(std::make_unique<RankBuilder>(t, r));
      have_meta = true;
      continue;
    }
    require_meta();

    if (kw == "comm") {
      HPS_REQUIRE(toks.size() >= 4 && toks[2] == "=",
                  "line " + std::to_string(lineno) + ": expected 'comm <id> = <ranks...>'");
      const CommId id = static_cast<CommId>(std::atoi(toks[1].c_str()));
      HPS_REQUIRE(id == declared_comms + 1,
                  "line " + std::to_string(lineno) + ": comm ids must be declared in order");
      std::vector<Rank> members;
      for (std::size_t i = 3; i < toks.size(); ++i)
        members.push_back(static_cast<Rank>(std::atoi(toks[i].c_str())));
      for (const Rank r : members)
        HPS_REQUIRE(r >= 0 && r < t.nranks(),
                    "line " + std::to_string(lineno) + ": comm member out of range");
      t.add_comm(std::move(members));
      declared_comms = id;
      continue;
    }
    if (kw == "rank") {
      HPS_REQUIRE(toks.size() == 2, "line " + std::to_string(lineno) + ": expected 'rank <r>'");
      const Rank r = static_cast<Rank>(std::atoi(toks[1].c_str()));
      HPS_REQUIRE(r >= 0 && r < t.nranks(),
                  "line " + std::to_string(lineno) + ": rank out of range");
      cur = builders[static_cast<std::size_t>(r)].get();
      continue;
    }
    if (kw == "endrank") {
      cur = nullptr;
      continue;
    }
    HPS_REQUIRE(cur != nullptr,
                "line " + std::to_string(lineno) + ": event outside a rank block");

    const Attrs a(toks, 1, lineno);
    const auto dur = static_cast<SimTime>(a.get_int_or("dur", 0));
    const auto comm = static_cast<CommId>(a.get_int_or("comm", kCommWorld));
    HPS_REQUIRE(comm >= 0 && comm < static_cast<CommId>(t.num_comms()),
                "line " + std::to_string(lineno) + ": unknown comm");
    if (kw == "compute") {
      cur->compute(dur);
    } else if (kw == "send") {
      cur->send(static_cast<Rank>(a.get_int("peer")),
                static_cast<std::uint64_t>(a.get_int("bytes")),
                static_cast<Tag>(a.get_int_or("tag", 0)), dur);
    } else if (kw == "recv") {
      cur->recv(static_cast<Rank>(a.get_int("peer")),
                static_cast<std::uint64_t>(a.get_int("bytes")),
                static_cast<Tag>(a.get_int_or("tag", 0)), dur);
    } else if (kw == "isend" || kw == "irecv") {
      // Request ids are re-assigned by the builder; the declared 'req' only
      // names the request for later 'wait' lines within this rank.
      const auto declared = static_cast<std::int32_t>(a.get_int("req"));
      const std::int32_t actual =
          kw == "isend" ? cur->isend(static_cast<Rank>(a.get_int("peer")),
                                     static_cast<std::uint64_t>(a.get_int("bytes")),
                                     static_cast<Tag>(a.get_int_or("tag", 0)), dur)
                        : cur->irecv(static_cast<Rank>(a.get_int("peer")),
                                     static_cast<std::uint64_t>(a.get_int("bytes")),
                                     static_cast<Tag>(a.get_int_or("tag", 0)), dur);
      HPS_REQUIRE(declared == actual,
                  "line " + std::to_string(lineno) +
                      ": request ids must be dense per rank, in issue order (expected " +
                      std::to_string(actual) + ")");
    } else if (kw == "wait") {
      cur->wait(static_cast<std::int32_t>(a.get_int("req")), dur);
    } else if (kw == "waitall") {
      cur->waitall(dur);
    } else if (kw == "barrier") {
      cur->barrier(dur, comm);
    } else if (kw == "allreduce") {
      cur->allreduce(static_cast<std::uint64_t>(a.get_int("bytes")), dur, comm);
    } else if (kw == "allgather") {
      cur->allgather(static_cast<std::uint64_t>(a.get_int("bytes")), dur, comm);
    } else if (kw == "alltoall") {
      cur->alltoall(static_cast<std::uint64_t>(a.get_int("bytes")), dur, comm);
    } else if (kw == "reducescatter") {
      cur->reduce_scatter(static_cast<std::uint64_t>(a.get_int("bytes")), dur, comm);
    } else if (kw == "scan") {
      cur->scan(static_cast<std::uint64_t>(a.get_int("bytes")), dur, comm);
    } else if (kw == "alltoallv") {
      const auto sizes = a.get_u64_list("sizes");
      HPS_REQUIRE(sizes.size() == t.comm(comm).size(),
                  "line " + std::to_string(lineno) + ": sizes list must match comm size");
      cur->alltoallv(sizes, dur, comm);
    } else if (kw == "bcast") {
      cur->bcast(static_cast<Rank>(a.get_int("root")),
                 static_cast<std::uint64_t>(a.get_int("bytes")), dur, comm);
    } else if (kw == "reduce") {
      cur->reduce(static_cast<Rank>(a.get_int("root")),
                  static_cast<std::uint64_t>(a.get_int("bytes")), dur, comm);
    } else if (kw == "gather") {
      cur->gather(static_cast<Rank>(a.get_int("root")),
                  static_cast<std::uint64_t>(a.get_int("bytes")), dur, comm);
    } else if (kw == "scatter") {
      cur->scatter(static_cast<Rank>(a.get_int("root")),
                   static_cast<std::uint64_t>(a.get_int("bytes")), dur, comm);
    } else {
      HPS_THROW("line " + std::to_string(lineno) + ": unknown keyword '" + kw + "'");
    }
  }
  HPS_REQUIRE(have_meta, "text trace has no 'meta' line");
  return t;
}

void save_text(const Trace& t, const std::string& path) {
  std::ofstream os(path);
  HPS_REQUIRE(os.is_open(), "cannot open text trace for writing: " + path);
  write_text_format(t, os);
}

Trace load_text(const std::string& path) {
  std::ifstream is(path);
  HPS_REQUIRE(is.is_open(), "cannot open text trace: " + path);
  return read_text_format(is);
}

}  // namespace hps::trace
