#include "trace/validate.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <tuple>

#include "common/error.hpp"

namespace hps::trace {

namespace {

std::string strf(const char* fmt, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof buf, fmt, args...);
  return buf;
}

/// Collective signature for cross-rank consistency checks.
struct CollSig {
  OpType type;
  CommId comm;
  Rank root;
  std::uint64_t bytes;
  bool operator==(const CollSig&) const = default;
};

}  // namespace

std::vector<ValidationIssue> validate(const Trace& t) {
  std::vector<ValidationIssue> issues;
  auto issue = [&](Rank r, std::string msg) { issues.push_back({r, std::move(msg)}); };

  const Rank n = t.nranks();

  // Per-(src,dst,tag) FIFO streams of message sizes.
  using Key = std::tuple<Rank, Rank, Tag>;
  std::map<Key, std::vector<std::uint64_t>> sent, received;
  // Per-(comm) collective sequences per rank.
  std::map<CommId, std::vector<std::vector<CollSig>>> coll_seq;  // comm -> per-member list

  for (CommId c = 0; c < static_cast<CommId>(t.num_comms()); ++c)
    coll_seq[c].resize(t.comm(c).size());

  for (Rank r = 0; r < n; ++r) {
    const auto& rt = t.rank(r);
    std::set<std::int32_t> open_requests;
    for (std::size_t i = 0; i < rt.events.size(); ++i) {
      const Event& e = rt.events[i];
      if (e.duration < 0) issue(r, strf("event %zu has negative duration", i));
      switch (e.type) {
        case OpType::kCompute:
          break;
        case OpType::kSend:
        case OpType::kIsend:
          if (e.peer < 0 || e.peer >= n)
            issue(r, strf("send event %zu has invalid destination %d", i, e.peer));
          else
            sent[{r, e.peer, e.tag}].push_back(e.bytes);
          if (e.type == OpType::kIsend) {
            if (!open_requests.insert(e.request).second)
              issue(r, strf("isend event %zu reuses open request %d", i, e.request));
          }
          break;
        case OpType::kRecv:
        case OpType::kIrecv:
          if (e.peer != kAnySource && (e.peer < 0 || e.peer >= n))
            issue(r, strf("recv event %zu has invalid source %d", i, e.peer));
          else if (e.peer != kAnySource)
            received[{e.peer, r, e.tag}].push_back(e.bytes);
          if (e.type == OpType::kIrecv) {
            if (!open_requests.insert(e.request).second)
              issue(r, strf("irecv event %zu reuses open request %d", i, e.request));
          }
          break;
        case OpType::kWait:
          if (open_requests.erase(e.request) == 0)
            issue(r, strf("wait event %zu names unknown request %d", i, e.request));
          break;
        case OpType::kWaitAll:
          open_requests.clear();
          break;
        default: {  // collectives
          if (e.comm < 0 || e.comm >= static_cast<CommId>(t.num_comms())) {
            issue(r, strf("collective event %zu names invalid comm %d", i, e.comm));
            break;
          }
          const auto& members = t.comm(e.comm);
          auto pos = std::find(members.begin(), members.end(), r);
          if (pos == members.end()) {
            issue(r, strf("rank executes collective %zu on comm %d it is not a member of", i,
                          e.comm));
            break;
          }
          if (is_rooted(e.type) &&
              std::find(members.begin(), members.end(), e.peer) == members.end())
            issue(r, strf("rooted collective event %zu has root %d outside comm", i, e.peer));
          if (e.type == OpType::kAlltoallv) {
            if (e.aux < 0 || static_cast<std::size_t>(e.aux) >= rt.vlists.size()) {
              issue(r, strf("alltoallv event %zu has invalid aux index %d", i, e.aux));
              break;
            }
            if (rt.vlists[static_cast<std::size_t>(e.aux)].size() != members.size())
              issue(r, strf("alltoallv event %zu vlist size mismatches comm size", i));
          }
          const std::size_t member_idx = static_cast<std::size_t>(pos - members.begin());
          // Alltoallv per-rank totals legitimately differ; compare bytes=0.
          const std::uint64_t sig_bytes = e.type == OpType::kAlltoallv ? 0 : e.bytes;
          coll_seq[e.comm][member_idx].push_back(
              {e.type, e.comm, is_rooted(e.type) ? e.peer : Rank{-1}, sig_bytes});
          break;
        }
      }
    }
    if (!open_requests.empty())
      issue(r, strf("%zu nonblocking requests never completed", open_requests.size()));
  }

  // Cross-rank p2p stream consistency.
  for (const auto& [key, sizes] : sent) {
    const auto it = received.find(key);
    const auto& [src, dst, tag] = key;
    if (it == received.end()) {
      issue(src, strf("%zu messages to rank %d tag %d never received", sizes.size(), dst, tag));
      continue;
    }
    if (it->second.size() != sizes.size()) {
      issue(src, strf("message count mismatch to rank %d tag %d: %zu sent, %zu received", dst,
                      tag, sizes.size(), it->second.size()));
      continue;
    }
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      if (sizes[i] != it->second[i]) {
        issue(src, strf("message %zu to rank %d tag %d size mismatch: %llu vs %llu", i, dst, tag,
                        static_cast<unsigned long long>(sizes[i]),
                        static_cast<unsigned long long>(it->second[i])));
        break;
      }
    }
  }
  for (const auto& [key, sizes] : received) {
    if (!sent.contains(key)) {
      const auto& [src, dst, tag] = key;
      issue(dst, strf("%zu receives from rank %d tag %d never sent", sizes.size(), src, tag));
    }
  }

  // Cross-rank collective sequence consistency.
  for (const auto& [comm, seqs] : coll_seq) {
    for (std::size_t m = 1; m < seqs.size(); ++m) {
      if (seqs[m].size() != seqs[0].size()) {
        issue(-1, strf("comm %d: member %zu ran %zu collectives, member 0 ran %zu", comm, m,
                       seqs[m].size(), seqs[0].size()));
        continue;
      }
      for (std::size_t i = 0; i < seqs[m].size(); ++i) {
        if (!(seqs[m][i] == seqs[0][i])) {
          issue(-1, strf("comm %d: collective %zu differs between member 0 and member %zu", comm,
                         i, m));
          break;
        }
      }
    }
  }

  return issues;
}

void validate_or_throw(const Trace& t) {
  const auto issues = validate(t);
  if (issues.empty()) return;
  std::string msg = "trace validation failed (" + t.meta().app + "): ";
  const std::size_t show = std::min<std::size_t>(issues.size(), 5);
  for (std::size_t i = 0; i < show; ++i) {
    msg += strf("[rank %d] ", issues[i].rank);
    msg += issues[i].message;
    if (i + 1 < show) msg += "; ";
  }
  if (issues.size() > show) msg += strf(" (+%zu more)", issues.size() - show);
  HPS_THROW(msg);
}

}  // namespace hps::trace
