// Trace serialization.
//
// Binary format ("HPST"): a compact little-endian container for whole traces,
// the project's stand-in for a directory of per-rank DUMPI files. A
// write_text() dump is provided for human inspection and debugging.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace hps::trace {

/// Current binary format version.
inline constexpr std::uint32_t kTraceFormatVersion = 2;

/// Serialize to a binary stream / file. Throws hps::Error on I/O failure.
void write_binary(const Trace& t, std::ostream& os);
void save(const Trace& t, const std::string& path);

/// Deserialize. Throws hps::Error on malformed input (bad magic, truncated
/// stream, out-of-range sizes, unsupported version).
Trace read_binary(std::istream& is);
Trace load(const std::string& path);

/// Human-readable dump (one line per event); `max_events_per_rank` truncates
/// long streams, 0 means no limit.
void write_text(const Trace& t, std::ostream& os, std::size_t max_events_per_rank = 0);

}  // namespace hps::trace
