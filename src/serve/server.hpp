// hpcsweepd: the prediction-as-a-service daemon.
//
// A Server owns one Unix-domain listener (and optionally a loopback TCP
// listener), a pool of dispatcher threads that execute studies through
// core::run_study — thread mode or the process-isolated supervisor pool —
// and the shared ResultCache. The serving path for one study request:
//
//   connection thread:  decode request → clamp to daemon policy →
//                       cache lookup (hit: stream immediately) →
//                       single-flight: attach to an identical in-flight
//                       study, or admit a new job to the bounded queue
//                       (full: explicit kQueueFull backpressure reject) →
//                       wait → stream kRecord* + kSummary
//   dispatcher thread:  pop job → run_study → cache insert → wake waiters
//
// Concurrency model: one (detached, counted) thread per connection — they
// spend their lives blocked on a socket or a condition variable — and
// `dispatchers` study executors, so at most that many studies compute at
// once no matter how many clients are connected. Connections themselves are
// capped at `max_connections`: an accept beyond the cap is rejected and
// closed on the accept thread, so a connection flood cannot grow threads
// without bound. Admission control happens before any study work: a request
// that cannot be queued costs the daemon a frame decode and one small
// reject frame.
//
// Shutdown is cooperative, reusing the study interrupt flag: SIGINT/SIGTERM
// (via robust::StudySignalGuard) or an admin shutdown request flips the
// daemon into drain — listeners close, new admissions are refused with
// kDraining, already-admitted jobs finish (under a signal they fail fast as
// interrupted inside run_study), every waiter gets a terminal frame, and
// run() returns.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/study.hpp"
#include "obs/serve_ledger.hpp"
#include "robust/ipc.hpp"
#include "serve/cache.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"
#include "telemetry/telemetry.hpp"

namespace hps::serve {

struct ServerOptions {
  std::string socket_path;  ///< Unix-domain listener path (required)
  /// Loopback TCP listener: -1 = off, 0 = ephemeral port (see tcp_port()),
  /// else the port to bind on 127.0.0.1.
  int tcp_port = -1;
  int dispatchers = 2;              ///< concurrent study executors
  std::size_t queue_capacity = 16;  ///< admitted-but-not-started jobs
  std::size_t cache_bytes = 64u << 20;  ///< shared result cache budget (0 = off)
  /// Durable cache directory: non-empty backs the result cache with an
  /// append-only spill file recovered on startup (warm restart), plus the
  /// `.quarantine` sidecar for corrupt records. Empty = memory-only.
  std::string cache_dir;
  bool cache_fsync = false;  ///< fsync every spill append (power-loss durability)
  /// Background scrubber cadence: every interval, re-verify on-disk record
  /// CRCs and repair rot from memory. 0 disables; ignored without cache_dir.
  double scrub_interval_ms = 5000;
  /// Concurrent connections (each costs one thread); an accept beyond the
  /// cap gets an immediate kReject and close, mirroring queue backpressure.
  std::size_t max_connections = 256;

  // Study execution policy (applied to every request).
  int threads_per_study = 0;  ///< run_study threads/workers (0 = auto)
  core::IsolateMode isolate = core::IsolateMode::kThread;
  int retries = 1;            ///< process mode: per-trace crash retries
  long rss_limit_mb = 0;      ///< process mode: per-worker RLIMIT_AS
  double watchdog_timeout_s = 0;

  // Admission clamps: what a remote caller may ask for. A request beyond a
  // ceiling is clamped, not rejected — the clamped key is what is cached.
  double max_duration_scale = 1.0;
  std::int32_t max_limit = 0;        ///< 0 = full corpus allowed
  double max_wall_deadline_s = 0;    ///< budget ceilings; 0 = no ceiling
  std::uint64_t max_des_events = 0;
  std::int64_t max_virtual_horizon_ns = 0;

  // Overload policy (v3). Shedding is off by default: healthy deployments
  // keep the fixed queue bound only, so nothing in the serving path changes
  // until a target is set.
  /// CoDel-style queue-delay shedding: once the sojourn time of dequeued
  /// work exceeds this target continuously for shed_interval_ms, the queue
  /// sheds over-target entries (rejected kQueueFull) until delay recovers.
  /// 0 disables shedding.
  double shed_target_ms = 0;
  double shed_interval_ms = 100;
  /// Slowloris guard: a connection that holds a partial request frame
  /// longer than this is rejected and closed (Stats::rejected_slow_read).
  /// 0 disables the guard.
  double slow_read_timeout_ms = 5000;

  /// Install robust::StudySignalGuard for the run() lifetime so SIGINT/
  /// SIGTERM drain the daemon. Tests drive robust::request_interrupt()
  /// directly and may turn this off.
  bool install_signal_guard = true;

  // Wall-clock observability (docs/observability.md). Latency histograms and
  // the cost model are always collected (a few relaxed atomic bumps per
  // request); these two switches control what is persisted.
  /// Serve ledger: one JSON-lines record per study request, plus the
  /// (trace class × scheme) cost footer on drain. Empty = off.
  std::string serve_ledger_path;
  /// Per-request span tree as a Chrome trace, written on drain. Enables
  /// request tracing (telemetry spans) for the daemon's lifetime. Empty = off.
  std::string trace_path;
};

/// A study admitted (or admitting) to the dispatch queue; shared between the
/// owning connection, any coalesced waiters, and the dispatcher.
struct InFlight {
  std::uint64_t key = 0;
  core::StudyOptions study;
  std::uint64_t trace_id = 0;  ///< owning request's trace id (study.trace_id)
  /// Absolute end-to-end deadline on AdmissionQueue::steady_now_ns()'s clock
  /// (0 = none), stamped when the request was decoded.
  std::int64_t deadline_ns = 0;
  int cls = 0;  ///< admission cost class (0 = MFACT-planned, 1 = simulation)
  /// The study ran (or will run) as an MFACT-only degraded fallback: decided
  /// at admission when the predicted full cost already exceeds the deadline,
  /// or at dispatch when queue wait ate it. Guarded by mu after admission.
  bool fallback = false;

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status status = Status::kError;
  std::string detail;
  std::shared_ptr<const CachedResult> result;  ///< null unless kOk/kDegraded
  // Dispatcher-side phase boundaries (Server's obs clock, ns), written under
  // mu before complete() so the owner can tile queue_wait/execute/
  // cache_insert exactly against its own enqueue timestamp.
  std::int64_t popped_ns = 0;    ///< dispatcher picked the job up
  std::int64_t run_done_ns = 0;  ///< run_study returned
  std::int64_t done_ns = 0;      ///< cache insert finished, waiters woken

  void complete(Status st, std::shared_ptr<const CachedResult> res, std::string why);
  /// Blocks until complete() ran.
  void wait();
};

class Server {
 public:
  /// Binds and listens (throws hps::Error on any socket failure) but does
  /// not serve until run().
  explicit Server(ServerOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serve until drained (signal or shutdown request). Blocks.
  void run();

  /// Programmatic drain trigger (thread-safe, idempotent).
  void shutdown();

  /// Actual TCP port after binding (-1 when TCP is off).
  int tcp_port() const { return tcp_port_; }

  Stats stats() const;

  /// Live-metrics snapshot (what a kMetrics request returns): Stats plus the
  /// per-phase / per-class latency histograms and the cost-model cells.
  MetricsReply metrics() const;

 private:
  struct RequestTimer;  // phase tiling for one request (server.cpp)

  void dispatcher_loop();
  /// `trusted` marks the Unix-domain transport: admin actions (shutdown)
  /// are refused over TCP, where anything loopback-local can connect.
  void handle_connection(int fd, bool trusted);
  /// Returns false when the connection should close.
  bool handle_request(int fd, bool trusted, const robust::ipc::Message& m);
  bool handle_study(int fd, const Request& req, std::int64_t recv_ns);
  bool stream_result(int fd, const CachedResult& result, bool cache_hit);
  bool send_reject(int fd, Status status, const std::string& detail);
  core::StudyOptions study_options(const Request& req) const;
  bool draining() const;
  /// Measured mean wall cost of one full (all-schemes) study, from the
  /// PR 7 cost model. 0 until the first study completes — optimistic, so a
  /// cold daemon attempts the real thing and learns from it.
  double predicted_full_seconds() const;
  /// Closes the timer's final phase, feeds the latency histograms, emits the
  /// request's span tree, and appends the serve-ledger record.
  void finish_request(RequestTimer& t, const Request& req, Status status, bool cache_hit,
                      bool coalesced, std::uint32_t records, std::uint32_t degraded,
                      const std::string& app_classes, bool mfact_fallback = false);

  ServerOptions opts_;
  int unix_fd_ = -1;
  int lock_fd_ = -1;  ///< flock'd sidecar guarding stale-socket reclaim
  int tcp_fd_ = -1;
  int tcp_port_ = -1;

  ResultCache cache_;
  AdmissionQueue<std::shared_ptr<InFlight>> queue_;
  std::mutex inflight_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<InFlight>> inflight_;

  std::atomic<bool> draining_{false};
  std::vector<std::thread> dispatchers_;
  std::thread scrubber_;
  std::uint64_t cache_recovery_ms_ = 0;  ///< startup spill recovery wall time
  std::mutex conn_mu_;
  std::condition_variable conn_cv_;
  std::size_t active_conns_ = 0;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> studies_run_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> rejected_full_{0};
  std::atomic<std::uint64_t> rejected_draining_{0};
  std::atomic<std::uint64_t> rejected_bad_{0};
  std::atomic<std::uint64_t> rejected_conn_{0};
  std::atomic<std::uint64_t> rejected_expired_{0};
  std::atomic<std::uint64_t> rejected_slow_read_{0};
  std::atomic<std::uint64_t> fallback_{0};
  std::atomic<std::uint64_t> active_{0};

  // Observability. The registry is private to the daemon (never the global
  // one), so serving-path histograms and spans cannot perturb the study hot
  // path or leak into a study's own telemetry exports.
  telemetry::Registry obs_;
  std::atomic<std::uint64_t> next_trace_id_{1};
  obs::CostModel costs_;
  std::unique_ptr<obs::ServeLedgerWriter> ledger_;
  std::atomic<std::uint64_t> ledger_errors_{0};
};

}  // namespace hps::serve
