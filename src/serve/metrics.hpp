// kMetrics payload: the daemon's live observability snapshot.
//
// A kMetrics request (protocol v2) is answered with one kMetricsReply frame
// carrying the cumulative Stats counters, the per-phase / per-trace-class /
// whole-request wall-latency histograms from the serving registry, and the
// measured-cost model cells ((trace class × scheme) → summed wall seconds).
// The payload is the usual versioned little-endian binary; renderers turn it
// into Prometheus text exposition (`hpcsweep_inspect metrics`) or the live
// terminal dashboard (`hpcsweep_inspect watch`).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/serve_ledger.hpp"
#include "serve/protocol.hpp"
#include "telemetry/telemetry.hpp"

namespace hps::serve {

/// Serving-registry metric names. Phase and class histograms share these
/// prefixes; the suffix is the phase name / mfact::app_class_name.
inline constexpr const char* kPhaseMetricPrefix = "serve.phase.";
inline constexpr const char* kClassMetricPrefix = "serve.class.";
/// Whole-request wall latency (decode start → terminal frame sent).
inline constexpr const char* kRequestMetric = "serve.request";

/// Payload of a kMetricsReply frame.
struct MetricsReply {
  Stats stats;
  double uptime_seconds = 0;

  struct Hist {
    std::string name;  ///< registry metric name (see prefixes above)
    telemetry::HistogramData data;
  };
  std::vector<Hist> hists;  ///< sorted by name (registry snapshot order)

  std::vector<obs::CostCell> costs;  ///< sorted by (app_class, scheme)

  const Hist* find(const std::string& name) const;
};

std::string encode_metrics(const MetricsReply& m);
/// Throws hps::Error on a short/garbled/version-mismatched payload.
MetricsReply decode_metrics(const std::string& payload);

/// Prometheus text exposition (version 0.0.4): counters/gauges from Stats,
/// one histogram family per phase/class with cumulative `le` buckets, and
/// the cost model as labeled totals.
std::string render_prometheus(const MetricsReply& m);

/// One terminal-dashboard frame for `hpcsweep_inspect watch`. `prev` (may be
/// null) supplies the previous poll for rate figures over `interval_s`.
std::string render_dashboard(const MetricsReply& m, const MetricsReply* prev,
                             double interval_s);

}  // namespace hps::serve
