#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <set>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/file.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.hpp"
#include "core/runner.hpp"
#include "mfact/classify.hpp"
#include "obs/inspect.hpp"
#include "obs/ledger.hpp"
#include "robust/fault.hpp"
#include "robust/interrupt.hpp"
#include "robust/ipc.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

namespace hps::serve {

namespace {

namespace ipc = robust::ipc;

/// Ignore SIGPIPE for the server's lifetime: a client vanishing mid-stream
/// must surface as EPIPE on the write, not kill the daemon.
class SigpipeIgnore {
 public:
  SigpipeIgnore() {
    struct sigaction sa{};
    sa.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &sa, &saved_);
  }
  ~SigpipeIgnore() { ::sigaction(SIGPIPE, &saved_, nullptr); }

 private:
  struct sigaction saved_{};
};

/// Binds the Unix listener, guarding stale-socket reclaim with an exclusive
/// flock on a `<path>.lock` sidecar: without it, two daemons racing through
/// probe-connect → unlink → bind can steal the socket from whichever bound
/// first (the probe and the unlink are not atomic). The lock fd is returned
/// through `lock_fd` and must stay open for the daemon's lifetime — the
/// kernel releases it on any death, including kill -9, so a stale lock file
/// on disk is harmless and is deliberately never unlinked (removing it would
/// reopen the race via a lock on a dead inode).
int make_unix_listener(const std::string& path, int& lock_fd) {
  HPS_REQUIRE(!path.empty(), "serve: a Unix socket path is required");
  sockaddr_un addr{};
  HPS_REQUIRE(path.size() < sizeof addr.sun_path,
              "serve: socket path too long: " + path);
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  const std::string lock_path = path + ".lock";
  lock_fd = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0600);
  HPS_REQUIRE(lock_fd >= 0,
              "serve: cannot open lock file " + lock_path + ": " + std::strerror(errno));
  if (::flock(lock_fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(lock_fd);
    lock_fd = -1;
    HPS_THROW("serve: a daemon is already listening (or starting) on " + path);
  }
  // Only a *stale* socket (dead daemon) may be reclaimed. A connect() that
  // succeeds means a live daemon is accepting on this path — unlinking it
  // would silently steal its traffic, so refuse to start instead. (A live
  // daemon also holds the flock, but one started before the lock existed —
  // or listening via an inherited fd — is still caught here.)
  const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (probe < 0) {
    const std::string err = std::strerror(errno);
    ::close(lock_fd);
    lock_fd = -1;
    HPS_THROW(std::string("serve: socket() failed: ") + err);
  }
  const bool live =
      ::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
  ::close(probe);
  const int fd = live ? -1 : ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    const std::string err =
        live ? "a daemon is already listening on " + path
             : std::string("socket() failed: ") + std::strerror(errno);
    ::close(lock_fd);
    lock_fd = -1;
    HPS_THROW("serve: " + err);
  }
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    ::close(lock_fd);
    lock_fd = -1;
    HPS_THROW("serve: cannot listen on " + path + ": " + err);
  }
  return fd;
}

/// Loopback-only TCP listener; returns {fd, bound port}.
std::pair<int, int> make_tcp_listener(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  HPS_REQUIRE(fd >= 0, std::string("serve: socket() failed: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    HPS_THROW("serve: cannot listen on 127.0.0.1:" + std::to_string(port) + ": " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  return {fd, ntohs(bound.sin_port)};
}

bool send_msg(int fd, ipc::MsgType type, std::string payload) {
  ipc::Message m;
  m.type = type;
  m.payload = std::move(payload);
  return ipc::write_frame(fd, m);
}

/// min-with-ceiling for budget clamps: 0 means unlimited on both sides.
double clamp_budget(double requested, double ceiling) {
  if (ceiling <= 0) return requested;
  if (requested <= 0) return ceiling;
  return std::min(requested, ceiling);
}

template <typename T>
T clamp_budget_int(T requested, T ceiling) {
  if (ceiling <= 0) return requested;
  if (requested <= 0) return ceiling;
  return std::min(requested, ceiling);
}

/// Distinct MFACT class names across a study's traces, sorted and
/// comma-joined — the serve ledger's per-request class summary.
std::string app_class_summary(const std::vector<core::TraceOutcome>& outcomes) {
  std::set<std::string> classes;
  for (const core::TraceOutcome& o : outcomes)
    classes.insert(mfact::app_class_name(o.app_class));
  std::string joined;
  for (const std::string& c : classes) {
    if (!joined.empty()) joined += ',';
    joined += c;
  }
  return joined;
}

/// The serve-phase names, in serving order (pre-registered so a metrics
/// scrape before the first request already shows every family).
constexpr const char* kPhaseNames[] = {"decode",        "clamp",   "cache_lookup",
                                       "queue_wait",    "execute", "cache_insert",
                                       "coalesce_wait", "stream"};

}  // namespace

/// Phase tiling for one request: consecutive boundary stamps on the server's
/// observability clock, so per-phase durations sum exactly to the request's
/// total latency.
struct Server::RequestTimer {
  Server& srv;
  std::uint64_t trace_id = 0;
  std::int64_t start_ns = 0;
  std::int64_t last_ns = 0;
  std::vector<std::pair<std::string, std::int64_t>> phases;  ///< (name, wall ns)
  std::vector<std::int64_t> starts;  ///< phase start stamps, parallel to phases

  RequestTimer(Server& s, std::int64_t recv_ns)
      : srv(s), start_ns(recv_ns), last_ns(recv_ns) {}

  /// Close the phase that started at the previous boundary, ending now.
  void phase(const char* name) { phase_until(name, srv.obs_.now_ns()); }

  /// Close the phase at an externally measured boundary (the dispatcher's
  /// stamps). Clamped monotonic so a cross-thread stamp can't go backwards.
  void phase_until(const char* name, std::int64_t boundary_ns) {
    if (boundary_ns < last_ns) boundary_ns = last_ns;
    phases.emplace_back(name, boundary_ns - last_ns);
    starts.push_back(last_ns);
    last_ns = boundary_ns;
  }
};

void InFlight::complete(Status st, std::shared_ptr<const CachedResult> res,
                        std::string why) {
  {
    std::lock_guard<std::mutex> lk(mu);
    status = st;
    result = std::move(res);
    detail = std::move(why);
    done = true;
  }
  cv.notify_all();
}

void InFlight::wait() {
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk, [&] { return done; });
}

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.cache_bytes, SpillOptions{opts_.cache_dir, opts_.cache_fsync}),
      queue_(std::max<std::size_t>(1, opts_.queue_capacity),
             ShedPolicy{static_cast<std::int64_t>(opts_.shed_target_ms * 1e6),
                        static_cast<std::int64_t>(opts_.shed_interval_ms * 1e6)}) {
  opts_.dispatchers = std::max(1, opts_.dispatchers);
  opts_.max_connections = std::max<std::size_t>(1, opts_.max_connections);
  // Observability comes up before the listeners so a constructor failure
  // here cannot leak a bound socket.
  obs_.set_enabled(true);
  obs_.set_tracing(!opts_.trace_path.empty());
  for (const char* p : kPhaseNames)
    obs_.histogram(std::string(kPhaseMetricPrefix) + p, telemetry::latency_bounds());
  obs_.histogram(kRequestMetric, telemetry::latency_bounds());
  if (!opts_.serve_ledger_path.empty())
    ledger_ = std::make_unique<obs::ServeLedgerWriter>(opts_.serve_ledger_path);
  // Warm restart: recover the spill file before the listeners exist, so a
  // client that can connect always sees the recovered cache.
  if (!opts_.cache_dir.empty()) {
    const auto t0 = std::chrono::steady_clock::now();
    const ResultCache::RecoveryStats rs = cache_.recover();
    cache_recovery_ms_ = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    if (rs.recovered > 0 || rs.quarantined > 0 || rs.torn_bytes > 0)
      std::fprintf(stderr,
                   "hpcsweepd: cache recovery: %llu entries restored, %llu regions "
                   "quarantined, %llu torn bytes truncated (%llu ms)\n",
                   static_cast<unsigned long long>(rs.recovered),
                   static_cast<unsigned long long>(rs.quarantined),
                   static_cast<unsigned long long>(rs.torn_bytes),
                   static_cast<unsigned long long>(cache_recovery_ms_));
  }
  unix_fd_ = make_unix_listener(opts_.socket_path, lock_fd_);
  if (opts_.tcp_port >= 0) {
    try {
      const auto [fd, port] = make_tcp_listener(opts_.tcp_port);
      tcp_fd_ = fd;
      tcp_port_ = port;
    } catch (...) {
      ::close(unix_fd_);
      ::close(lock_fd_);
      ::unlink(opts_.socket_path.c_str());
      throw;
    }
  }
}

Server::~Server() {
  if (unix_fd_ >= 0) ::close(unix_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  ::unlink(opts_.socket_path.c_str());
  // Closing the lock fd releases the flock; the .lock file itself stays (see
  // make_unix_listener).
  if (lock_fd_ >= 0) ::close(lock_fd_);
}

bool Server::draining() const {
  return draining_.load(std::memory_order_relaxed) || robust::interrupt_requested();
}

void Server::shutdown() { draining_.store(true, std::memory_order_relaxed); }

core::StudyOptions Server::study_options(const Request& req) const {
  core::StudyOptions so;
  so.corpus.seed = req.seed;
  so.corpus.duration_scale = std::min(req.duration_scale, opts_.max_duration_scale);
  so.corpus.limit = req.limit;
  if (opts_.max_limit > 0)
    so.corpus.limit = req.limit <= 0 ? opts_.max_limit
                                     : std::min(req.limit, opts_.max_limit);
  so.threads = opts_.threads_per_study;
  so.isolate = opts_.isolate;
  so.retries = opts_.retries;
  so.rss_limit_mb = opts_.rss_limit_mb;
  so.watchdog_timeout_seconds = opts_.watchdog_timeout_s;
  so.run.budget.wall_deadline_seconds =
      clamp_budget(req.wall_deadline_s, opts_.max_wall_deadline_s);
  so.run.budget.max_des_events =
      clamp_budget_int<std::uint64_t>(req.max_des_events, opts_.max_des_events);
  so.run.budget.virtual_horizon =
      clamp_budget_int<std::int64_t>(req.virtual_horizon_ns, opts_.max_virtual_horizon_ns);
  // No file-backed cache/ledger/journal: the daemon's shared in-memory cache
  // is the durability story per request, and the client gets the ledger.
  return so;
}

double Server::predicted_full_seconds() const {
  const std::uint64_t runs = studies_run_.load(std::memory_order_relaxed);
  if (runs == 0) return 0;
  double sim_seconds = 0;
  for (const obs::CostCell& c : costs_.cells())
    if (c.scheme != core::scheme_name(core::Scheme::kMfact))
      sim_seconds += c.wall_seconds;
  return sim_seconds / static_cast<double>(runs);
}

void Server::dispatcher_loop() {
  using Queue = AdmissionQueue<std::shared_ptr<InFlight>>;
  std::shared_ptr<InFlight> job;
  for (;;) {
    const Queue::Pop popped = queue_.pop_entry(job);
    if (popped == Queue::Pop::kClosed) break;
    const std::int64_t popped_ns = obs_.now_ns();

    // Retire the single-flight slot (only if it is still ours: a
    // force-recompute may have replaced it). Every exit from this iteration
    // must retire — an expired or shed job left in the map would pin its
    // coalesced waiters to a computation that will never happen.
    const auto retire = [&] {
      std::lock_guard<std::mutex> lk(inflight_mu_);
      const auto it = inflight_.find(job->key);
      if (it != inflight_.end() && it->second == job) inflight_.erase(it);
    };
    const auto stamp = [&](std::int64_t run_done) {
      // Phase boundaries for the owner's queue_wait/execute/cache_insert
      // tiling; published under mu before done flips in complete().
      std::lock_guard<std::mutex> lk(job->mu);
      job->popped_ns = popped_ns;
      job->run_done_ns = run_done;
      job->done_ns = obs_.now_ns();
    };

    if (popped == Queue::Pop::kExpired) {
      retire();
      rejected_expired_.fetch_add(1, std::memory_order_relaxed);
      telemetry::Registry::global().counter("serve.rejected_expired").add(1);
      stamp(popped_ns);
      job->complete(Status::kExpired, nullptr,
                    "end-to-end deadline expired while queued");
      job.reset();
      continue;
    }
    if (popped == Queue::Pop::kShed) {
      retire();
      telemetry::Registry::global().counter("serve.shed_queue_delay").add(1);
      stamp(popped_ns);
      // Shed reads as backpressure on the wire: the client's retry policy
      // for kQueueFull (jittered backoff) is exactly right for overload.
      job->complete(Status::kQueueFull, nullptr,
                    "shed: queue delay over target (daemon overloaded)");
      job.reset();
      continue;
    }

    active_.fetch_add(1, std::memory_order_relaxed);
    Status status = Status::kError;
    std::string detail;
    std::shared_ptr<const CachedResult> cached;
    std::int64_t run_done_ns = popped_ns;
    bool expired_now = false;
    try {
      // Every span recorded while this study runs — on worker threads or in
      // forked worker processes — carries the owning request's trace id.
      const telemetry::TraceIdScope trace_scope(job->trace_id);
      // Injected dispatch latency (chaos: site=serve.dispatch,kind=delay)
      // lands before the deadline math so it is charged like queue wait
      // rather than silently overrunning the execution budget.
      robust::fault_point(robust::FaultSite::kServeDispatch);
      if (job->deadline_ns > 0) {
        const double remaining_s =
            static_cast<double>(job->deadline_ns - Queue::steady_now_ns()) * 1e-9;
        if (remaining_s <= 0) {
          expired_now = true;
        } else {
          // Degrade rather than start a simulation that cannot finish: the
          // measured cost model says how long a full study takes here.
          if (!job->fallback && predicted_full_seconds() > remaining_s) {
            job->fallback = true;
            job->study.run.mfact_only = true;
          }
          // The execution budget is whatever deadline *remains* after queue
          // wait — never the full client deadline over again.
          double& wall = job->study.run.budget.wall_deadline_seconds;
          wall = wall <= 0 ? remaining_s : std::min(wall, remaining_s);
        }
      }
      if (!expired_now) {
        const core::StudyResult res = core::run_study(job->study);
        run_done_ns = obs_.now_ns();
        const auto records = core::ledger_records(res.outcomes, job->key);
        auto built = std::make_shared<CachedResult>();
        built->wall_seconds = res.wall_seconds;
        built->degraded = static_cast<std::uint32_t>(obs::degraded_count(records));
        built->records.reserve(records.size());
        for (const auto& rec : records) built->records.push_back(obs::to_json_line(rec));
        built->app_classes = app_class_summary(res.outcomes);
        // Measured-cost model: attribute each attempted scheme run's wall cost
        // to its trace's MFACT class. Only computed studies reach this loop —
        // cache hits and coalesced waiters cost nothing.
        for (const core::TraceOutcome& o : res.outcomes) {
          const char* cls = mfact::app_class_name(o.app_class);
          for (int si = 0; si < static_cast<int>(core::Scheme::kNumSchemes); ++si) {
            const core::SchemeOutcome& sc = o.scheme[si];
            if (!sc.attempted) continue;
            costs_.add(cls, core::scheme_name(static_cast<core::Scheme>(si)), 1,
                       sc.wall_seconds);
          }
        }
        if (res.interrupted) {
          // A drain signal landed mid-study: the outcome is full of skipped
          // holes. Report it, never cache it.
          status = Status::kInterrupted;
          detail = "daemon interrupted while running this study";
        } else {
          built->mfact_fallback = job->fallback;
          status = (built->degraded > 0 || job->fallback) ? Status::kDegraded
                                                          : Status::kOk;
          built->status = status;
          if (job->fallback) {
            detail = "degraded=mfact_fallback";
            fallback_.fetch_add(1, std::memory_order_relaxed);
            telemetry::Registry::global().counter("serve.degraded_fallback").add(1);
          }
          cached = built;
          // Cacheability: a fallback answer must never mask the real one,
          // and a deadline-shrunk budget computed a result under a tighter
          // budget than the admission key encodes — cache it only if the
          // budget provably never tripped (no degraded records).
          const bool deadline_shrunk = job->deadline_ns > 0;
          if (!job->fallback && (!deadline_shrunk || built->degraded == 0)) {
            try {
              robust::fault_point(robust::FaultSite::kServeCacheInsert);
              cache_.insert(job->key, cached);
            } catch (const std::exception&) {
              // A failed insert costs a future cache hit, nothing else.
            }
          }
          studies_run_.fetch_add(1, std::memory_order_relaxed);
          telemetry::Registry::global().counter("serve.studies_run").add(1);
        }
      }
    } catch (const std::exception& e) {
      status = Status::kError;
      detail = e.what();
    } catch (...) {
      status = Status::kError;
      detail = "non-std exception while running study";
    }
    if (expired_now) {
      status = Status::kExpired;
      detail = "end-to-end deadline expired before execution";
      rejected_expired_.fetch_add(1, std::memory_order_relaxed);
      telemetry::Registry::global().counter("serve.rejected_expired").add(1);
    }
    retire();
    stamp(run_done_ns);
    job->complete(status, std::move(cached), std::move(detail));
    active_.fetch_sub(1, std::memory_order_relaxed);
    job.reset();
  }
}

bool Server::send_reject(int fd, Status status, const std::string& detail) {
  Summary s;
  s.status = status;
  s.detail = detail;
  return send_msg(fd, ipc::MsgType::kReject, encode_summary(s));
}

bool Server::stream_result(int fd, const CachedResult& result, bool cache_hit) {
  for (const std::string& line : result.records)
    if (!send_msg(fd, ipc::MsgType::kRecord, line)) return false;
  Summary s;
  s.status = result.status;
  s.cache_hit = cache_hit;
  s.records = static_cast<std::uint32_t>(result.records.size());
  s.degraded = result.degraded;
  s.wall_seconds = cache_hit ? 0 : result.wall_seconds;
  s.mfact_fallback = result.mfact_fallback;
  if (result.mfact_fallback) s.detail = "degraded=mfact_fallback";
  return send_msg(fd, ipc::MsgType::kSummary, encode_summary(s));
}

bool Server::handle_study(int fd, const Request& req, std::int64_t recv_ns) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  telemetry::Registry::global().counter("serve.requests").add(1);

  RequestTimer timer(*this, recv_ns);
  timer.trace_id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  timer.phase("decode");

  // End-to-end deadline, stamped on the queue's steady clock at decode so
  // every later stage — queue wait included — is charged against it.
  using Queue = AdmissionQueue<std::shared_ptr<InFlight>>;
  const std::int64_t deadline_ns =
      req.deadline_ms > 0
          ? Queue::steady_now_ns() + static_cast<std::int64_t>(req.deadline_ms) * 1000000
          : 0;

  core::StudyOptions so = study_options(req);
  // The trace id rides inside StudyOptions but is deliberately excluded from
  // study_cache_key: tracing must never change what is computed or cached.
  so.trace_id = timer.trace_id;
  std::uint64_t key = core::study_cache_key(so);
  timer.phase("clamp");

  if (!req.force_recompute) {
    if (const auto hit = cache_.lookup(key)) {
      timer.phase("cache_lookup");
      const bool ok = stream_result(fd, *hit, true);
      finish_request(timer, req, hit->status, /*cache_hit=*/true, /*coalesced=*/false,
                     static_cast<std::uint32_t>(hit->records.size()), hit->degraded,
                     hit->app_classes);
      return ok;
    }
  }

  // Feasibility triage: when the measured cost of a full study already
  // exceeds the whole deadline, plan the MFACT fallback up front. The
  // request joins the cheap admission class (so it is not starved behind
  // simulations) under the fallback's own cache key.
  bool fallback_planned = false;
  if (deadline_ns > 0) {
    const double remaining_s =
        static_cast<double>(deadline_ns - Queue::steady_now_ns()) * 1e-9;
    const double predicted = predicted_full_seconds();
    if (predicted > 0 && predicted > remaining_s) {
      fallback_planned = true;
      so.run.mfact_only = true;
      key = core::study_cache_key(so);
    }
  }

  // Single-flight: identical concurrent misses share one computation.
  std::shared_ptr<InFlight> job;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lk(inflight_mu_);
    const auto it = inflight_.find(key);
    if (it != inflight_.end() && !req.force_recompute) {
      job = it->second;
      coalesced_.fetch_add(1, std::memory_order_relaxed);
    } else {
      job = std::make_shared<InFlight>();
      job->key = key;
      job->study = so;
      job->trace_id = timer.trace_id;
      job->deadline_ns = deadline_ns;
      job->cls = fallback_planned ? 0 : 1;
      job->fallback = fallback_planned;
      inflight_[key] = job;
      owner = true;
    }
  }
  timer.phase("cache_lookup");

  if (owner) {
    switch (queue_.try_push(job, job->deadline_ns, job->cls)) {
      case AdmissionQueue<std::shared_ptr<InFlight>>::Push::kAccepted:
        break;
      case AdmissionQueue<std::shared_ptr<InFlight>>::Push::kFull: {
        {
          std::lock_guard<std::mutex> lk(inflight_mu_);
          const auto it = inflight_.find(key);
          if (it != inflight_.end() && it->second == job) inflight_.erase(it);
        }
        // The job was registered before the push, so an identical request
        // may already be attached: it will never be dispatched — complete
        // it now so every waiter wakes with the same rejection.
        const std::string detail = "admission queue at capacity (" +
                                   std::to_string(queue_.capacity()) + ")";
        job->complete(Status::kQueueFull, nullptr, detail);
        rejected_full_.fetch_add(1, std::memory_order_relaxed);
        telemetry::Registry::global().counter("serve.rejected_queue_full").add(1);
        // Explicit backpressure: the client knows immediately and may retry
        // with jitter; nothing server-side was spent on the study.
        const bool ok = send_reject(fd, Status::kQueueFull, detail);
        finish_request(timer, req, Status::kQueueFull, false, false, 0, 0, {});
        return ok;
      }
      case AdmissionQueue<std::shared_ptr<InFlight>>::Push::kClosed: {
        {
          std::lock_guard<std::mutex> lk(inflight_mu_);
          const auto it = inflight_.find(key);
          if (it != inflight_.end() && it->second == job) inflight_.erase(it);
        }
        job->complete(Status::kDraining, nullptr, "daemon is draining");
        rejected_draining_.fetch_add(1, std::memory_order_relaxed);
        const bool ok = send_reject(fd, Status::kDraining, "daemon is draining");
        finish_request(timer, req, Status::kDraining, false, false, 0, 0, {});
        return ok;
      }
    }
  }

  job->wait();

  std::shared_ptr<const CachedResult> result;
  Status status;
  std::string detail;
  std::int64_t popped_ns = 0, run_done_ns = 0, done_ns = 0;
  {
    std::lock_guard<std::mutex> lk(job->mu);
    result = job->result;
    status = job->status;
    detail = job->detail;
    popped_ns = job->popped_ns;
    run_done_ns = job->run_done_ns;
    done_ns = job->done_ns;
  }
  if (owner) {
    if (popped_ns > 0) {
      timer.phase_until("queue_wait", popped_ns);
      timer.phase_until("execute", run_done_ns);
      timer.phase_until("cache_insert", done_ns);
    } else {
      // Completed without ever being dispatched (drain raced the pop).
      timer.phase("queue_wait");
    }
  } else {
    timer.phase("coalesce_wait");
  }

  bool ok;
  std::uint32_t nrecords = 0, ndegraded = 0;
  std::string classes;
  bool fallback = false;
  if (result != nullptr) {
    nrecords = static_cast<std::uint32_t>(result->records.size());
    ndegraded = result->degraded;
    classes = result->app_classes;
    fallback = result->mfact_fallback;
    // A coalesced waiter reports cache_hit: it rode a computation it did not
    // pay for (the owner paid; its summary carries the wall time).
    ok = stream_result(fd, *result, !owner);
  } else if (status == Status::kQueueFull || status == Status::kDraining ||
             status == Status::kExpired) {
    // A waiter attached to a job whose owner failed admission — or whose
    // deadline expired / was shed before dispatch — gets the same kReject
    // frame the owner's client got.
    ok = send_reject(fd, status, detail);
  } else {
    Summary s;
    s.status = status;
    s.detail = detail;
    ok = send_msg(fd, ipc::MsgType::kSummary, encode_summary(s));
  }
  finish_request(timer, req, status, /*cache_hit=*/false, /*coalesced=*/!owner,
                 nrecords, ndegraded, classes, fallback);
  return ok;
}

void Server::finish_request(RequestTimer& t, const Request& req, Status status,
                            bool cache_hit, bool coalesced, std::uint32_t records,
                            std::uint32_t degraded, const std::string& app_classes,
                            bool mfact_fallback) {
  t.phase("stream");
  const std::int64_t total_ns = t.last_ns - t.start_ns;
  const double total_s = static_cast<double>(total_ns) * 1e-9;

  obs_.histogram(kRequestMetric, telemetry::latency_bounds()).observe(total_s);
  for (const auto& [name, dur_ns] : t.phases)
    obs_.histogram(kPhaseMetricPrefix + name, telemetry::latency_bounds())
        .observe(static_cast<double>(dur_ns) * 1e-9);
  // Per-trace-class latency: a request whose study spans several classes
  // counts toward each ("how slow are requests touching class X").
  for (std::size_t pos = 0; pos < app_classes.size();) {
    std::size_t comma = app_classes.find(',', pos);
    if (comma == std::string::npos) comma = app_classes.size();
    if (comma > pos)
      obs_.histogram(kClassMetricPrefix + app_classes.substr(pos, comma - pos),
                     telemetry::latency_bounds())
          .observe(total_s);
    pos = comma + 1;
  }

  if (obs_.tracing()) {
    // Retroactive span tree from the boundary stamps already taken: one
    // parent per request, one child per phase, all carrying the trace id.
    telemetry::SpanRecord whole;
    whole.name = "request";
    whole.cat = "serve";
    whole.trace_id = t.trace_id;
    whole.start_ns = t.start_ns;
    whole.dur_ns = total_ns;
    whole.args = {{"status", status_name(status)},
                  {"seed", std::to_string(req.seed)},
                  {"cache_hit", cache_hit ? "true" : "false"},
                  {"coalesced", coalesced ? "true" : "false"}};
    obs_.record_span(std::move(whole));
    for (std::size_t i = 0; i < t.phases.size(); ++i) {
      telemetry::SpanRecord p;
      p.name = t.phases[i].first;
      p.cat = "serve.phase";
      p.trace_id = t.trace_id;
      p.start_ns = t.starts[i];
      p.dur_ns = t.phases[i].second;
      obs_.record_span(std::move(p));
    }
  }

  if (ledger_ != nullptr) {
    obs::ServeRecord rec;
    rec.trace_id = t.trace_id;
    rec.status = status_name(status);
    rec.cache_hit = cache_hit;
    rec.coalesced = coalesced;
    rec.records = records;
    rec.degraded = degraded;
    rec.seed = req.seed;
    rec.duration_scale = req.duration_scale;
    rec.limit = req.limit;
    rec.app_classes = app_classes;
    rec.total_ns = total_ns;
    rec.mfact_fallback = mfact_fallback;
    rec.deadline_ms = req.deadline_ms;
    rec.phases = t.phases;
    try {
      robust::fault_point(robust::FaultSite::kServeLedgerAppend);
      ledger_->append(rec);
    } catch (const std::exception&) {
      // A failing ledger (injected or real) must not take the serving path
      // down; the writer itself hardens ENOSPC/short writes.
      ledger_errors_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

bool Server::handle_request(int fd, bool trusted, const ipc::Message& m) {
  const std::int64_t recv_ns = obs_.now_ns();
  if (m.type != ipc::MsgType::kRequest) {
    rejected_bad_.fetch_add(1, std::memory_order_relaxed);
    send_reject(fd, Status::kBadRequest,
                std::string("unexpected frame type: ") + ipc::msg_type_name(m.type));
    return false;
  }
  Request req;
  try {
    req = decode_request(m.payload);
  } catch (const std::exception& e) {
    rejected_bad_.fetch_add(1, std::memory_order_relaxed);
    send_reject(fd, Status::kBadRequest, e.what());
    return false;
  }
  switch (req.kind) {
    case Request::Kind::kPing:
      return send_msg(fd, ipc::MsgType::kPong, {});
    case Request::Kind::kStats:
      return send_msg(fd, ipc::MsgType::kStatsReply, encode_stats(stats()));
    case Request::Kind::kMetrics:
      return send_msg(fd, ipc::MsgType::kMetricsReply, encode_metrics(metrics()));
    case Request::Kind::kShutdown: {
      if (!trusted) {
        // Anything loopback-local can reach the TCP port; only the Unix
        // socket (gated by its file permissions) may drain the daemon.
        rejected_bad_.fetch_add(1, std::memory_order_relaxed);
        send_reject(fd, Status::kBadRequest,
                    "shutdown is only accepted on the Unix-domain socket");
        return false;
      }
      Summary s;
      s.status = Status::kOk;
      s.detail = "draining";
      send_msg(fd, ipc::MsgType::kSummary, encode_summary(s));
      shutdown();
      return false;
    }
    case Request::Kind::kStudy:
      if (draining()) {
        rejected_draining_.fetch_add(1, std::memory_order_relaxed);
        RequestTimer timer(*this, recv_ns);
        timer.trace_id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
        timer.phase("decode");
        const bool ok = send_reject(fd, Status::kDraining, "daemon is draining");
        finish_request(timer, req, Status::kDraining, false, false, 0, 0, {});
        return ok;
      }
      return handle_study(fd, req, recv_ns);
  }
  return false;
}

void Server::handle_connection(int fd, bool trusted) {
  ipc::FrameDecoder dec(kMaxRequestBytes);
  char buf[4096];
  bool keep = true;
  // Slowloris guard: a request frame is tiny, so a peer holding a *partial*
  // frame for longer than the cap is stalling on purpose (or dead in a way
  // keepalives have not noticed). Without the cap each such peer pins a
  // connection thread forever. partial_since_ns is when the currently
  // buffered partial frame started; 0 = no partial frame pending.
  const std::int64_t slow_limit_ns =
      static_cast<std::int64_t>(opts_.slow_read_timeout_ms * 1e6);
  std::int64_t partial_since_ns = 0;
  const auto slow_read_tripped = [&] {
    return slow_limit_ns > 0 && partial_since_ns > 0 &&
           obs_.now_ns() - partial_since_ns > slow_limit_ns;
  };
  const auto reject_slow_read = [&] {
    rejected_slow_read_.fetch_add(1, std::memory_order_relaxed);
    telemetry::Registry::global().counter("serve.rejected_slow_read").add(1);
    send_reject(fd, Status::kBadRequest,
                "slow read: partial request frame held past the cap");
  };
  while (keep) {
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) {
      // Idle tick: an idle connection does not outlive the drain, and a
      // stalled partial frame does not outlive the slow-read cap.
      if (draining()) break;
      if (slow_read_tripped()) {
        reject_slow_read();
        break;
      }
      continue;
    }
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n == 0) break;  // client closed
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      break;
    }
    dec.feed(buf, static_cast<std::size_t>(n));
    ipc::Message m;
    for (;;) {
      const auto st = dec.next(m);
      if (st == ipc::FrameDecoder::Status::kMessage) {
        keep = handle_request(fd, trusted, m);
        if (!keep) break;
        continue;
      }
      if (st == ipc::FrameDecoder::Status::kCorrupt) {
        // Torn, poisoned, or abusive framing: one explicit reject, then the
        // stream is dead (framing has no resync point).
        rejected_bad_.fetch_add(1, std::memory_order_relaxed);
        telemetry::Registry::global().counter("serve.rejected_bad").add(1);
        const bool oversized =
            std::strcmp(dec.corrupt_reason(), "oversized frame") == 0;
        send_reject(fd, oversized ? Status::kOversized : Status::kBadRequest,
                    dec.corrupt_reason());
        keep = false;
        break;
      }
      break;  // kNeedMore
    }
    if (!keep) break;
    // Trickling one byte per read must not reset the clock: the guard times
    // the *frame*, so the stamp survives until the frame completes.
    if (dec.buffered() > 0) {
      if (partial_since_ns == 0) partial_since_ns = obs_.now_ns();
      if (slow_read_tripped()) {
        reject_slow_read();
        break;
      }
    } else {
      partial_since_ns = 0;
    }
  }
  ::close(fd);
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    --active_conns_;
  }
  conn_cv_.notify_all();
}

void Server::run() {
  SigpipeIgnore sigpipe;
  // Arm $HPS_FAULT before the first request so serve-site specs
  // (serve.dispatch / serve.cache-insert / serve.ledger-append) hit from the
  // start — run_study would arm it too, but only after the first dispatch.
  robust::init_faults_from_env();
  std::optional<robust::StudySignalGuard> guard;
  if (opts_.install_signal_guard) guard.emplace();

  dispatchers_.reserve(static_cast<std::size_t>(opts_.dispatchers));
  for (int i = 0; i < opts_.dispatchers; ++i)
    dispatchers_.emplace_back([this] { dispatcher_loop(); });

  // Low-rate background scrubber: re-verifies on-disk cache record CRCs and
  // repairs rot from the in-memory copy. Sleeps in short ticks so drain is
  // never held up by a long interval.
  if (!opts_.cache_dir.empty() && opts_.scrub_interval_ms > 0) {
    scrubber_ = std::thread([this] {
      double elapsed_ms = 0;
      while (!draining()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        elapsed_ms += 50;
        if (elapsed_ms < opts_.scrub_interval_ms) continue;
        elapsed_ms = 0;
        try {
          cache_.scrub_once();
        } catch (const std::exception& e) {
          // Injected (serve.scrub) or real failure: skip this pass, keep the
          // cadence — the scrubber must never take the daemon down.
          std::fprintf(stderr, "hpcsweepd: scrub pass failed: %s\n", e.what());
        }
      }
    });
  }

  std::string poll_error;
  while (!draining()) {
    pollfd fds[2];
    nfds_t nfds = 0;
    fds[nfds++] = {unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[nfds++] = {tcp_fd_, POLLIN, 0};
    const int rc = ::poll(fds, nfds, 200);
    if (rc < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks the drain flag
      // Fall through to the full drain below: detached connection threads
      // must not outlive the Server members they use.
      poll_error = std::strerror(errno);
      shutdown();
      break;
    }
    for (nfds_t i = 0; i < nfds; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const bool trusted = fds[i].fd == unix_fd_;
      const int cfd = ::accept(fds[i].fd, nullptr, nullptr);
      if (cfd < 0) continue;
      bool admitted = false;
      {
        std::lock_guard<std::mutex> lk(conn_mu_);
        if (active_conns_ < opts_.max_connections) {
          ++active_conns_;
          admitted = true;
        }
      }
      if (!admitted) {
        // Connection-level backpressure: without a cap, a connection flood
        // means unbounded threads. The reject frame is tiny (fits any fresh
        // socket buffer), so this cannot stall the accept loop.
        rejected_conn_.fetch_add(1, std::memory_order_relaxed);
        telemetry::Registry::global().counter("serve.rejected_conn_limit").add(1);
        send_reject(cfd, Status::kQueueFull,
                    "connection limit (" +
                        std::to_string(opts_.max_connections) + ")");
        ::close(cfd);
        continue;
      }
      std::thread([this, cfd, trusted] { handle_connection(cfd, trusted); }).detach();
    }
  }

  // Drain: stop accepting, refuse new admissions, finish the admitted
  // backlog (each job fails fast inside run_study if a signal tripped the
  // interrupt flag), answer every waiter, then wait out the connections.
  ::close(unix_fd_);
  unix_fd_ = -1;
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  ::unlink(opts_.socket_path.c_str());
  queue_.close();
  for (auto& t : dispatchers_) t.join();
  dispatchers_.clear();
  if (scrubber_.joinable()) scrubber_.join();
  {
    std::unique_lock<std::mutex> lk(conn_mu_);
    conn_cv_.wait(lk, [&] { return active_conns_ == 0; });
  }

  // Persist the observability footers now that every request is finished:
  // the cost-model cells into the serve ledger, the span timeline as a
  // Chrome trace. Neither failure mode may mask the drain itself.
  if (ledger_ != nullptr) {
    try {
      ledger_->append_costs(costs_.cells());
    } catch (const std::exception&) {
      ledger_errors_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (!opts_.trace_path.empty()) {
    std::ofstream os(opts_.trace_path, std::ios::binary | std::ios::trunc);
    if (os) telemetry::write_chrome_trace(obs_.spans(), os);
  }

  if (!poll_error.empty())
    HPS_THROW("serve: poll() failed: " + poll_error);
}

Stats Server::stats() const {
  Stats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.studies_run = studies_run_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.rejected_queue_full = rejected_full_.load(std::memory_order_relaxed);
  s.rejected_draining = rejected_draining_.load(std::memory_order_relaxed);
  s.rejected_bad = rejected_bad_.load(std::memory_order_relaxed);
  s.rejected_conn_limit = rejected_conn_.load(std::memory_order_relaxed);
  s.active = active_.load(std::memory_order_relaxed);
  s.queued = queue_.size();
  const ResultCache::Counters c = cache_.counters();
  s.cache_hits = c.hits;
  s.cache_misses = c.misses;
  s.cache_bytes = c.bytes;
  s.cache_entries = c.entries;
  s.cache_evictions = c.evictions;
  s.cache_spilled = c.spilled;
  s.cache_recovered = c.recovered;
  s.cache_quarantined = c.quarantined;
  s.cache_recovery_ms = cache_recovery_ms_;
  s.cache_scrub_passes = c.scrub_passes;
  s.cache_scrub_corrupt = c.scrub_corrupt;
  s.uptime_ms = static_cast<std::uint64_t>(obs_.now_ns() / 1000000);
  s.ledger_records = ledger_ != nullptr ? ledger_->records_written() : 0;
  s.spans_dropped = obs_.spans_dropped();
  s.rejected_expired = rejected_expired_.load(std::memory_order_relaxed);
  s.shed_queue_delay = queue_.shed_count();
  s.degraded_fallback = fallback_.load(std::memory_order_relaxed);
  s.rejected_slow_read = rejected_slow_read_.load(std::memory_order_relaxed);
  // Both layers lose lines: the writer's own hardened failures plus appends
  // that threw before reaching it (fault injection).
  s.ledger_write_errors = ledger_errors_.load(std::memory_order_relaxed) +
                          (ledger_ != nullptr ? ledger_->write_errors() : 0);
  return s;
}

MetricsReply Server::metrics() const {
  MetricsReply m;
  m.stats = stats();
  m.uptime_seconds = static_cast<double>(obs_.now_ns()) * 1e-9;
  const telemetry::Snapshot snap = obs_.snapshot();
  for (const telemetry::MetricValue& mv : snap.metrics)
    if (mv.kind == telemetry::MetricKind::kHistogram)
      m.hists.push_back({mv.name, mv.hist});
  m.costs = costs_.cells();
  return m;
}

}  // namespace hps::serve
