// On-disk spill format for the serve result cache (crash durability).
//
// A spill file is an append-only sequence of CRC-framed records behind a
// small versioned header, sharing the framing discipline of the study
// journal (robust/journal.hpp):
//
//   header:  "HPSC" | u32 format_version
//   record:  u32 payload_len | u32 crc32(payload) | payload
//
// Each payload is one (cache key, CachedResult) pair in the wire codec style
// of serve/protocol.cpp — little-endian fixed-width fields, length-prefixed
// strings — so a recovered entry reproduces the original reply byte for
// byte.
//
// Recovery never trusts the file: scan_spill_file() validates every frame
// and classifies damage instead of throwing. A mid-file frame whose CRC or
// schema check fails is quarantined alone and the scan resynchronizes at the
// next frame; an implausible length field condemns the remainder of the file
// as one quarantined region; an incomplete trailing frame is a torn tail
// (the expected shape of a crash mid-append) and is silently truncated, the
// journal's discipline. The caller appends quarantined regions to a
// `.quarantine` sidecar for forensics and rewrites the spill file from the
// surviving records, so the file is clean again after every recovery.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "serve/cache.hpp"

namespace hps::serve {

inline constexpr std::uint32_t kSpillFormatVersion = 1;
/// Bump when the record payload layout changes; a record claiming an unknown
/// schema is quarantined, never guessed at.
inline constexpr std::uint32_t kSpillRecordSchema = 1;

/// File names inside a --cache-dir.
std::string spill_path(const std::string& dir);
std::string quarantine_path(const std::string& dir);

struct SpillRecord {
  std::uint64_t key = 0;
  CachedResult result;
};

std::string encode_spill_record(std::uint64_t key, const CachedResult& r);
/// Throws hps::Error on truncation, trailing bytes, or any schema violation
/// (unknown record schema, out-of-range status). Callers treat a throw as
/// corruption and quarantine the payload.
SpillRecord decode_spill_record(const std::string& payload);

/// Result of scanning a spill file. Never reflects a crash: every way the
/// bytes can be wrong maps onto quarantined regions or a torn tail.
struct SpillScan {
  bool existed = false;    ///< file was present (even if empty/corrupt)
  bool header_ok = false;  ///< magic + format version validated
  std::vector<SpillRecord> records;  ///< frames that passed CRC + decode
  /// Raw bytes of each damaged region, in file order (for the sidecar).
  std::vector<std::string> quarantine;
  std::uint64_t torn_bytes = 0;  ///< incomplete trailing frame, truncated
};

/// Scan `path`, validating every frame. Returns rather than throws on every
/// form of damage; throws hps::Error only on I/O errors reading the file.
SpillScan scan_spill_file(const std::string& path);

/// Atomically replace `path` with a clean spill file holding `records` in
/// order (tmp file + fsync + rename + parent-dir sync). Throws on I/O error.
void write_spill_file(const std::string& path, const std::vector<SpillRecord>& records);

/// Append `regions` to the quarantine sidecar (plain concatenation — the
/// sidecar is forensic evidence, not a parseable format). Throws on I/O
/// error.
void append_quarantine(const std::string& path, const std::vector<std::string>& regions);

/// Appender for live inserts. Mirrors robust::JournalWriter: buffered FILE*
/// flushed per append, optionally fsynced when durability beats throughput.
class SpillWriter {
 public:
  SpillWriter() = default;
  ~SpillWriter();
  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  /// Open `path` for appending, writing a fresh header when the file does
  /// not exist. The file is assumed clean (recovery rewrites it first).
  void open(const std::string& path, bool fsync_each);
  bool is_open() const { return f_ != nullptr; }
  void close();

  /// Frame and append one record. Throws on I/O failure (the caller counts
  /// the loss; the in-memory cache is unaffected).
  void append(std::uint64_t key, const CachedResult& r);

  /// Bytes in the file as of the last append (header included) — drives the
  /// caller's compaction threshold.
  std::uint64_t file_bytes() const { return bytes_; }

 private:
  std::FILE* f_ = nullptr;
  std::string path_;
  bool fsync_each_ = false;
  std::uint64_t bytes_ = 0;
};

}  // namespace hps::serve
