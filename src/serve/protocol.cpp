#include "serve/protocol.hpp"

#include <cstring>
#include <sstream>

#include "common/error.hpp"

namespace hps::serve {

namespace {

// Little-endian fixed-width primitives, string-backed (the payloads live in
// ipc::Message::payload). Decoding is bounds-checked: a short payload is a
// protocol violation, reported as hps::Error for the server to map onto
// Status::kBadRequest.

void put_u8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

struct Reader {
  const std::string& buf;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    HPS_REQUIRE(pos + n <= buf.size(), "serve payload truncated");
  }
  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(buf[pos++]);
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[pos + static_cast<std::size_t>(i)])) << (8 * i);
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[pos + static_cast<std::size_t>(i)])) << (8 * i);
    pos += 8;
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    HPS_REQUIRE(n <= kMaxRequestBytes, "serve payload string too large");
    need(n);
    std::string s = buf.substr(pos, n);
    pos += n;
    return s;
  }
  void done() const {
    HPS_REQUIRE(pos == buf.size(), "serve payload has trailing bytes");
  }
};

}  // namespace

const char* request_kind_name(Request::Kind k) {
  switch (k) {
    case Request::Kind::kStudy: return "study";
    case Request::Kind::kPing: return "ping";
    case Request::Kind::kStats: return "stats";
    case Request::Kind::kShutdown: return "shutdown";
    case Request::Kind::kMetrics: return "metrics";
  }
  return "?";
}

namespace {

/// A peer may speak any version in [kMinProtocolVersion, kProtocolVersion];
/// newer-than-us is rejected (we cannot know what the extra bytes mean).
std::uint32_t check_version(std::uint32_t version, const char* what) {
  HPS_REQUIRE(version >= kMinProtocolVersion && version <= kProtocolVersion,
              std::string("serve ") + what + " version " + std::to_string(version) +
                  " unsupported (accept " + std::to_string(kMinProtocolVersion) + ".." +
                  std::to_string(kProtocolVersion) + ")");
  return version;
}

}  // namespace

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kDegraded: return "degraded";
    case Status::kInterrupted: return "interrupted";
    case Status::kQueueFull: return "queue-full";
    case Status::kDraining: return "draining";
    case Status::kOversized: return "oversized";
    case Status::kBadRequest: return "bad-request";
    case Status::kError: return "error";
    case Status::kExpired: return "expired";
  }
  return "?";
}

std::string encode_request(const Request& r) {
  std::string out;
  out.reserve(64);
  put_u32(out, kProtocolVersion);
  put_u8(out, static_cast<std::uint8_t>(r.kind));
  put_u64(out, r.seed);
  put_f64(out, r.duration_scale);
  put_u32(out, static_cast<std::uint32_t>(r.limit));
  put_u8(out, r.force_recompute ? 1 : 0);
  put_f64(out, r.wall_deadline_s);
  put_u64(out, r.max_des_events);
  put_u64(out, static_cast<std::uint64_t>(r.virtual_horizon_ns));
  // v3 extension: appended so a v1/v2 decoder's fixed prefix is untouched.
  put_u64(out, r.deadline_ms);
  return out;
}

Request decode_request(const std::string& payload) {
  Reader rd{payload};
  const std::uint32_t version = check_version(rd.u32(), "request");
  Request r;
  const std::uint8_t kind = rd.u8();
  // kMetrics joined in v2; a v1 payload may not claim it.
  const std::uint8_t max_kind = version >= 2 ? 5 : 4;
  HPS_REQUIRE(kind >= 1 && kind <= max_kind, "serve request kind out of range");
  r.kind = static_cast<Request::Kind>(kind);
  r.seed = rd.u64();
  r.duration_scale = rd.f64();
  r.limit = static_cast<std::int32_t>(rd.u32());
  r.force_recompute = rd.u8() != 0;
  r.wall_deadline_s = rd.f64();
  r.max_des_events = rd.u64();
  r.virtual_horizon_ns = static_cast<std::int64_t>(rd.u64());
  if (version >= 3) r.deadline_ms = rd.u64();
  rd.done();
  HPS_REQUIRE(r.duration_scale > 0 && r.duration_scale <= 10.0,
              "serve request duration_scale out of range");
  HPS_REQUIRE(r.limit >= 0, "serve request limit out of range");
  return r;
}

std::string encode_summary(const Summary& s) {
  std::string out;
  out.reserve(32 + s.detail.size());
  put_u32(out, kProtocolVersion);
  put_u8(out, static_cast<std::uint8_t>(s.status));
  put_u8(out, s.cache_hit ? 1 : 0);
  put_u32(out, s.records);
  put_u32(out, s.degraded);
  put_f64(out, s.wall_seconds);
  put_str(out, s.detail);
  // v3 extension: graceful-degradation tag, appended after the v2 layout.
  put_u8(out, s.mfact_fallback ? 1 : 0);
  return out;
}

Summary decode_summary(const std::string& payload) {
  Reader rd{payload};
  const std::uint32_t version = check_version(rd.u32(), "summary");
  Summary s;
  const std::uint8_t st = rd.u8();
  // kExpired joined in v3; an older payload may not claim it.
  const auto max_status = static_cast<std::uint8_t>(version >= 3 ? Status::kExpired
                                                                 : Status::kError);
  HPS_REQUIRE(st <= max_status, "serve summary status out of range");
  s.status = static_cast<Status>(st);
  s.cache_hit = rd.u8() != 0;
  s.records = rd.u32();
  s.degraded = rd.u32();
  s.wall_seconds = rd.f64();
  s.detail = rd.str();
  if (version >= 3) s.mfact_fallback = rd.u8() != 0;
  rd.done();
  return s;
}

std::string encode_stats(const Stats& s) {
  std::string out;
  out.reserve(16 + 17 * 8);
  put_u32(out, kProtocolVersion);
  for (const std::uint64_t v :
       {s.requests, s.studies_run, s.cache_hits, s.cache_misses, s.cache_bytes,
        s.cache_entries, s.cache_evictions, s.coalesced, s.rejected_queue_full,
        s.rejected_draining, s.rejected_bad, s.rejected_conn_limit, s.active,
        s.queued})
    put_u64(out, v);
  // v2 extension: appended so a v1 decoder's fixed prefix is untouched.
  for (const std::uint64_t v : {s.uptime_ms, s.ledger_records, s.spans_dropped})
    put_u64(out, v);
  // v3 extension: overload counters, appended after the v2 layout.
  for (const std::uint64_t v :
       {s.rejected_expired, s.shed_queue_delay, s.degraded_fallback,
        s.rejected_slow_read, s.ledger_write_errors})
    put_u64(out, v);
  // v4 extension: durable-cache counters, appended after the v3 layout.
  for (const std::uint64_t v :
       {s.cache_spilled, s.cache_recovered, s.cache_quarantined,
        s.cache_recovery_ms, s.cache_scrub_passes, s.cache_scrub_corrupt})
    put_u64(out, v);
  return out;
}

Stats decode_stats(const std::string& payload) {
  Reader rd{payload};
  const std::uint32_t version = check_version(rd.u32(), "stats");
  Stats s;
  for (std::uint64_t* v :
       {&s.requests, &s.studies_run, &s.cache_hits, &s.cache_misses, &s.cache_bytes,
        &s.cache_entries, &s.cache_evictions, &s.coalesced, &s.rejected_queue_full,
        &s.rejected_draining, &s.rejected_bad, &s.rejected_conn_limit, &s.active,
        &s.queued})
    *v = rd.u64();
  if (version >= 2)
    for (std::uint64_t* v : {&s.uptime_ms, &s.ledger_records, &s.spans_dropped}) *v = rd.u64();
  if (version >= 3)
    for (std::uint64_t* v :
         {&s.rejected_expired, &s.shed_queue_delay, &s.degraded_fallback,
          &s.rejected_slow_read, &s.ledger_write_errors})
      *v = rd.u64();
  if (version >= 4)
    for (std::uint64_t* v :
         {&s.cache_spilled, &s.cache_recovered, &s.cache_quarantined,
          &s.cache_recovery_ms, &s.cache_scrub_passes, &s.cache_scrub_corrupt})
      *v = rd.u64();
  rd.done();
  return s;
}

std::string stats_to_json(const Stats& s) {
  std::ostringstream os;
  os << "{\"requests\":" << s.requests << ",\"studies_run\":" << s.studies_run
     << ",\"cache_hits\":" << s.cache_hits << ",\"cache_misses\":" << s.cache_misses
     << ",\"cache_bytes\":" << s.cache_bytes << ",\"cache_entries\":" << s.cache_entries
     << ",\"cache_evictions\":" << s.cache_evictions << ",\"coalesced\":" << s.coalesced
     << ",\"rejected_queue_full\":" << s.rejected_queue_full
     << ",\"rejected_draining\":" << s.rejected_draining
     << ",\"rejected_bad\":" << s.rejected_bad
     << ",\"rejected_conn_limit\":" << s.rejected_conn_limit
     << ",\"active\":" << s.active
     << ",\"queued\":" << s.queued
     << ",\"uptime_ms\":" << s.uptime_ms
     << ",\"ledger_records\":" << s.ledger_records
     << ",\"spans_dropped\":" << s.spans_dropped
     << ",\"rejected_expired\":" << s.rejected_expired
     << ",\"shed_queue_delay\":" << s.shed_queue_delay
     << ",\"degraded_fallback\":" << s.degraded_fallback
     << ",\"rejected_slow_read\":" << s.rejected_slow_read
     << ",\"ledger_write_errors\":" << s.ledger_write_errors
     << ",\"cache_spilled\":" << s.cache_spilled
     << ",\"cache_recovered\":" << s.cache_recovered
     << ",\"cache_quarantined\":" << s.cache_quarantined
     << ",\"cache_recovery_ms\":" << s.cache_recovery_ms
     << ",\"cache_scrub_passes\":" << s.cache_scrub_passes
     << ",\"cache_scrub_corrupt\":" << s.cache_scrub_corrupt << "}";
  return os.str();
}

}  // namespace hps::serve
