// Bounded admission queue: the backpressure point of the serving path.
//
// Producers (connection handlers) try_push and are told immediately when the
// queue is at capacity — the caller turns that into an explicit kQueueFull
// rejection on the wire instead of letting requests pile up until the daemon
// OOMs or clients time out blind. Consumers (dispatcher threads) block in
// pop until work arrives or the queue is closed.
//
// close() flips the queue into drain mode: try_push refuses with kClosed
// (→ kDraining on the wire) while pop keeps yielding the already-admitted
// backlog — admission is a promise, so accepted work is finished (or, under
// an interrupt, fails fast inside the study itself) rather than dropped.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace hps::serve {

template <typename T>
class AdmissionQueue {
 public:
  enum class Push {
    kAccepted,  ///< admitted; a dispatcher will pop it
    kFull,      ///< at capacity — reject with backpressure, do not wait
    kClosed,    ///< draining — no new admissions
  };

  explicit AdmissionQueue(std::size_t capacity) : capacity_(capacity) {}

  Push try_push(T item) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return Push::kClosed;
      if (items_.size() >= capacity_) return Push::kFull;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return Push::kAccepted;
  }

  /// Blocks until an item is available or the queue is closed *and* empty.
  /// Returns false only in the latter case (the consumer should exit).
  bool pop(T& out) {
    std::unique_lock<std::mutex> lk(mu_);
    ready_.wait(lk, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace hps::serve
