// Bounded admission queue: the backpressure point of the serving path.
//
// Producers (connection handlers) try_push and are told immediately when the
// queue is at capacity — the caller turns that into an explicit kQueueFull
// rejection on the wire instead of letting requests pile up until the daemon
// OOMs or clients time out blind. Consumers (dispatcher threads) block in
// pop until work arrives or the queue is closed.
//
// v3 additions (overload resilience):
//
//  * Entries carry an enqueue timestamp, an optional absolute deadline and a
//    cost class. pop_entry() classifies what it hands back: an entry whose
//    deadline passed while it waited comes out kExpired (the dispatcher
//    completes it as a deadline reject instead of running it), and under
//    sustained queue delay entries come out kShed.
//
//  * Shedding is CoDel-style: track the sojourn time of each dequeued entry;
//    once it stays above ShedPolicy::target_ns continuously for
//    ShedPolicy::interval_ns, enter the dropping state and shed every
//    over-target dequeue until a dequeue comes out under target again. This
//    bounds observed queue delay at roughly target + one interval regardless
//    of offered load, which a fixed capacity bound cannot do when per-item
//    service time varies by orders of magnitude.
//
//  * Two cost classes with weighted round-robin dequeue (class 0 = cheap /
//    MFACT-planned, class 1 = simulation; weights 2:1) so cheap requests are
//    not starved behind long packet simulations already in the backlog.
//
// close() flips the queue into drain mode: try_push refuses with kClosed
// (→ kDraining on the wire) while pop keeps yielding the already-admitted
// backlog — admission is a promise, so accepted work is finished (or, under
// an interrupt, fails fast inside the study itself) rather than dropped.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

namespace hps::serve {

/// Queue-delay shedding policy. target_ns == 0 disables shedding entirely
/// (the default — healthy deployments keep the fixed capacity bound only).
struct ShedPolicy {
  std::int64_t target_ns = 0;    ///< acceptable sojourn time for dequeued work
  std::int64_t interval_ns = 0;  ///< how long sojourn must stay above target
                                 ///< before the queue starts shedding
};

template <typename T>
class AdmissionQueue {
 public:
  enum class Push {
    kAccepted,  ///< admitted; a dispatcher will pop it
    kFull,      ///< at capacity — reject with backpressure, do not wait
    kClosed,    ///< draining — no new admissions
  };

  /// What pop_entry() handed back. kExpired/kShed entries are still *moved
  /// out* to the consumer — the dispatcher owns completing them (reject on
  /// the wire, retire coalescing state) rather than the queue dropping them
  /// on the floor with waiters attached.
  enum class Pop {
    kClosed,   ///< closed and drained — the consumer should exit
    kItem,     ///< healthy entry: execute it
    kExpired,  ///< deadline passed while queued: complete as kExpired
    kShed,     ///< overload shedding dropped it: complete as backpressure
  };

  /// Number of cost classes (see weights in pop_entry).
  static constexpr int kClasses = 2;

  explicit AdmissionQueue(std::size_t capacity, ShedPolicy shed = {})
      : capacity_(capacity), shed_(shed) {}

  /// Monotonic clock all queue timestamps/deadlines are expressed in.
  static std::int64_t steady_now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  Push try_push(T item) { return try_push(std::move(item), 0, 0); }

  /// deadline_ns: absolute steady_now_ns() instant past which the entry is
  /// expired (0 = none). cls: cost class in [0, kClasses).
  Push try_push(T item, std::int64_t deadline_ns, int cls) {
    if (cls < 0 || cls >= kClasses) cls = kClasses - 1;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return Push::kClosed;
      if (size_locked() >= capacity_) return Push::kFull;
      items_[cls].push_back(Entry{std::move(item), steady_now_ns(), deadline_ns});
    }
    ready_.notify_one();
    return Push::kAccepted;
  }

  /// Blocks until an entry is available or the queue is closed *and* empty.
  /// Classifies the entry it hands back; see Pop. Expiry is checked before
  /// shedding and does not feed the shedding state (an expired entry says
  /// the *deadline* was tight, not necessarily that the queue is congested).
  Pop pop_entry(T& out) {
    std::unique_lock<std::mutex> lk(mu_);
    ready_.wait(lk, [&] { return closed_ || size_locked() > 0; });
    if (size_locked() == 0) return Pop::kClosed;

    Entry e = take_locked();
    const std::int64_t now = steady_now_ns();
    out = std::move(e.item);

    if (e.deadline_ns > 0 && now >= e.deadline_ns) return Pop::kExpired;

    if (shed_.target_ns > 0) {
      const std::int64_t sojourn = now - e.enqueue_ns;
      if (sojourn > shed_.target_ns) {
        if (above_since_ns_ == 0) above_since_ns_ = now;
        if (dropping_ || now - above_since_ns_ >= shed_.interval_ns) {
          dropping_ = true;
          ++shed_count_;
          return Pop::kShed;
        }
      } else {
        above_since_ns_ = 0;
        dropping_ = false;
      }
    }
    return Pop::kItem;
  }

  /// Legacy interface: any entry (regardless of classification) counts as
  /// work. Only meaningful when deadlines and shedding are unused.
  bool pop(T& out) { return pop_entry(out) != Pop::kClosed; }

  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return size_locked();
  }

  std::size_t capacity() const { return capacity_; }

  /// Entries shed so far (cumulative, for stats).
  std::uint64_t shed_count() const {
    std::lock_guard<std::mutex> lk(mu_);
    return shed_count_;
  }

 private:
  struct Entry {
    T item;
    std::int64_t enqueue_ns = 0;
    std::int64_t deadline_ns = 0;
  };

  std::size_t size_locked() const {
    std::size_t n = 0;
    for (const auto& q : items_) n += q.size();
    return n;
  }

  /// Weighted round-robin across classes: class 0 is served twice for every
  /// class-1 entry so cheap work keeps flowing past a simulation backlog.
  /// A class with an empty deque forfeits its turn.
  Entry take_locked() {
    static constexpr int kWeights[kClasses] = {2, 1};
    for (int step = 0; step < kClasses; ++step) {
      const int cls = rr_class_;
      if (!items_[cls].empty()) {
        Entry e = std::move(items_[cls].front());
        items_[cls].pop_front();
        if (++rr_credit_ >= kWeights[cls]) {
          rr_credit_ = 0;
          rr_class_ = (cls + 1) % kClasses;
        }
        return e;
      }
      rr_credit_ = 0;
      rr_class_ = (cls + 1) % kClasses;
    }
    // Unreachable: callers check size_locked() > 0 under the same lock.
    Entry e = std::move(items_[0].front());
    items_[0].pop_front();
    return e;
  }

  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<Entry> items_[kClasses];
  std::size_t capacity_;
  ShedPolicy shed_;
  bool closed_ = false;

  // Weighted round-robin dequeue state (guarded by mu_).
  int rr_class_ = 0;   ///< class whose turn it is
  int rr_credit_ = 0;  ///< entries served from rr_class_ this turn

  // CoDel state (guarded by mu_, mutated only by pop_entry).
  std::int64_t above_since_ns_ = 0;  ///< when sojourn first exceeded target (0 = not above)
  bool dropping_ = false;
  std::uint64_t shed_count_ = 0;
};

}  // namespace hps::serve
