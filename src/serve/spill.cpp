#include "serve/spill.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "robust/ipc.hpp"
#include "robust/journal.hpp"

namespace hps::serve {

namespace {

constexpr char kMagic[4] = {'H', 'P', 'S', 'C'};
constexpr std::size_t kHeaderBytes = 8;  // magic + u32 format version

/// Sanity cap on one spill record: anything larger is a corrupt length
/// field, not a real cached result. Aliases the transport-wide frame limit,
/// the same cap the journal uses.
constexpr std::uint32_t kMaxSpillRecordBytes = robust::ipc::kMaxFrameBytes;

void put_u8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

std::uint32_t peek_u32(const std::string& buf, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[pos + static_cast<std::size_t>(i)]))
         << (8 * i);
  return v;
}

struct Reader {
  const std::string& buf;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    HPS_REQUIRE(pos + n <= buf.size(), "spill record truncated");
  }
  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(buf[pos++]);
  }
  std::uint32_t u32() {
    need(4);
    const std::uint32_t v = peek_u32(buf, pos);
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s = buf.substr(pos, n);
    pos += n;
    return s;
  }
  void done() const {
    HPS_REQUIRE(pos == buf.size(), "spill record has trailing bytes");
  }
};

std::string frame_record(const std::string& payload) {
  std::string frame;
  frame.reserve(8 + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, robust::crc32(payload.data(), payload.size()));
  frame += payload;
  return frame;
}

std::string header_bytes() {
  std::string h(kMagic, sizeof(kMagic));
  put_u32(h, kSpillFormatVersion);
  return h;
}

}  // namespace

std::string spill_path(const std::string& dir) { return dir + "/cache.hpsc"; }

std::string quarantine_path(const std::string& dir) { return dir + "/cache.quarantine"; }

std::string encode_spill_record(std::uint64_t key, const CachedResult& r) {
  std::string out;
  std::size_t n = 64 + r.app_classes.size();
  for (const std::string& rec : r.records) n += rec.size() + 4;
  out.reserve(n);
  put_u32(out, kSpillRecordSchema);
  put_u64(out, key);
  put_u8(out, static_cast<std::uint8_t>(r.status));
  put_u32(out, r.degraded);
  put_f64(out, r.wall_seconds);
  put_u8(out, r.mfact_fallback ? 1 : 0);
  put_str(out, r.app_classes);
  put_u32(out, static_cast<std::uint32_t>(r.records.size()));
  for (const std::string& rec : r.records) put_str(out, rec);
  return out;
}

SpillRecord decode_spill_record(const std::string& payload) {
  Reader rd{payload};
  const std::uint32_t schema = rd.u32();
  HPS_REQUIRE(schema == kSpillRecordSchema,
              "spill record schema " + std::to_string(schema) + " unsupported");
  SpillRecord rec;
  rec.key = rd.u64();
  const std::uint8_t st = rd.u8();
  // Only terminal, non-transient verdicts are cacheable.
  HPS_REQUIRE(st <= static_cast<std::uint8_t>(Status::kDegraded),
              "spill record status out of range");
  rec.result.status = static_cast<Status>(st);
  rec.result.degraded = rd.u32();
  rec.result.wall_seconds = rd.f64();
  const std::uint8_t fb = rd.u8();
  HPS_REQUIRE(fb <= 1, "spill record fallback flag out of range");
  rec.result.mfact_fallback = fb != 0;
  rec.result.app_classes = rd.str();
  const std::uint32_t n = rd.u32();
  // Each record line costs at least its 4-byte length prefix; a count the
  // remaining bytes cannot hold is a corrupt field, not a big study.
  HPS_REQUIRE(static_cast<std::uint64_t>(n) * 4 <= payload.size() - rd.pos,
              "spill record count out of range");
  rec.result.records.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) rec.result.records.push_back(rd.str());
  rd.done();
  return rec;
}

SpillScan scan_spill_file(const std::string& path) {
  SpillScan sc;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return sc;
  sc.existed = true;
  std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  HPS_REQUIRE(!in.bad(), "spill: I/O error reading " + path);
  in.close();

  if (data.size() < kHeaderBytes || std::memcmp(data.data(), kMagic, 4) != 0 ||
      peek_u32(data, 4) != kSpillFormatVersion) {
    // Unrecognizable header: nothing in the file can be trusted.
    if (!data.empty()) sc.quarantine.push_back(std::move(data));
    return sc;
  }
  sc.header_ok = true;

  std::size_t pos = kHeaderBytes;
  while (pos < data.size()) {
    const std::size_t remaining = data.size() - pos;
    if (remaining < 8) {  // not even a frame header: torn tail
      sc.torn_bytes = remaining;
      break;
    }
    const std::uint32_t len = peek_u32(data, pos);
    const std::uint32_t crc = peek_u32(data, pos + 4);
    if (len == 0 || len > kMaxSpillRecordBytes) {
      // Implausible length: we cannot trust it to skip over the frame, so
      // there is no resync point — condemn the remainder as one region.
      sc.quarantine.push_back(data.substr(pos));
      break;
    }
    if (remaining < 8 + static_cast<std::size_t>(len)) {
      // Frame extends past EOF: the expected shape of a crash mid-append.
      sc.torn_bytes = remaining;
      break;
    }
    std::string payload = data.substr(pos + 8, len);
    bool ok = robust::crc32(payload.data(), payload.size()) == crc;
    if (ok) {
      try {
        sc.records.push_back(decode_spill_record(payload));
      } catch (const Error&) {
        ok = false;  // framed fine but violates the record schema
      }
    }
    if (!ok) sc.quarantine.push_back(data.substr(pos, 8 + len));
    pos += 8 + static_cast<std::size_t>(len);
  }
  return sc;
}

void write_spill_file(const std::string& path, const std::vector<SpillRecord>& records) {
  const std::string tmp = path + ".tmp";
  {
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) HPS_THROW("spill: cannot open " + tmp + " for writing");
    std::string out = header_bytes();
    for (const SpillRecord& r : records) out += frame_record(encode_spill_record(r.key, r.result));
    const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size() &&
                    std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
    std::fclose(f);
    if (!ok) {
      std::remove(tmp.c_str());
      HPS_THROW("spill: write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    HPS_THROW("spill: cannot rename " + tmp + " over " + path);
  }
  robust::sync_parent_dir(path);
}

void append_quarantine(const std::string& path, const std::vector<std::string>& regions) {
  if (regions.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) HPS_THROW("spill: cannot open quarantine sidecar " + path);
  bool ok = true;
  for (const std::string& r : regions)
    ok = ok && std::fwrite(r.data(), 1, r.size(), f) == r.size();
  ok = std::fflush(f) == 0 && ok;
  ::fsync(fileno(f));
  std::fclose(f);
  if (!ok) HPS_THROW("spill: quarantine append failed for " + path);
}

SpillWriter::~SpillWriter() { close(); }

void SpillWriter::open(const std::string& path, bool fsync_each) {
  close();
  std::error_code ec;
  const bool fresh = !std::filesystem::exists(path, ec);
  f_ = std::fopen(path.c_str(), "ab");
  if (f_ == nullptr) HPS_THROW("spill: cannot open " + path + " for append");
  path_ = path;
  fsync_each_ = fsync_each;
  if (fresh) {
    const std::string h = header_bytes();
    if (std::fwrite(h.data(), 1, h.size(), f_) != h.size())
      HPS_THROW("spill: header write failed for " + path);
    std::fflush(f_);
    ::fsync(fileno(f_));
    robust::sync_parent_dir(path);
  }
  if (std::fseek(f_, 0, SEEK_END) == 0) {
    const long sz = std::ftell(f_);
    bytes_ = sz > 0 ? static_cast<std::uint64_t>(sz) : 0;
  }
}

void SpillWriter::close() {
  if (f_ != nullptr) {
    std::fclose(f_);
    f_ = nullptr;
  }
}

void SpillWriter::append(std::uint64_t key, const CachedResult& r) {
  HPS_CHECK(f_ != nullptr);
  const std::string frame = frame_record(encode_spill_record(key, r));
  if (std::fwrite(frame.data(), 1, frame.size(), f_) != frame.size())
    HPS_THROW("spill: append failed for " + path_);
  if (std::fflush(f_) != 0) HPS_THROW("spill: flush failed for " + path_);
  // fflush survives our death (kill -9); the optional fsync survives the
  // machine's. Default off: a result lost to power loss is merely recomputed.
  if (fsync_each_) ::fsync(fileno(f_));
  bytes_ += frame.size();
}

}  // namespace hps::serve
