// Content-addressed in-memory result cache shared across serve requests.
//
// Keys are core::study_cache_key values — a study's full configuration hash,
// including the cache-format and ledger-schema versions — so two requests
// that would compute byte-identical ledgers share one entry, and any option
// that changes the result changes the key. Values are the finished response:
// the ledger JSON lines plus the summary metadata needed to replay them to a
// new client without recomputation.
//
// Entries are immutable and handed out as shared_ptr, so eviction (or a
// clear) while another thread is still streaming an entry to its client is
// safe: the streamer keeps the bytes alive, the cache just forgets them.
// Eviction is LRU under a byte budget — the serving process must stay
// resident under "millions of users" of distinct studies, so the budget, not
// the entry count, is the contract.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/protocol.hpp"

namespace hps::serve {

/// One finished study, ready to stream.
struct CachedResult {
  Status status = Status::kOk;        ///< kOk or kDegraded (never transient)
  std::uint32_t degraded = 0;         ///< records with a real fail_kind
  double wall_seconds = 0;            ///< what the original computation cost
  std::vector<std::string> records;   ///< ledger JSON lines, spec order
  /// Sorted distinct MFACT class names in the study (comma-joined), stamped
  /// into the serve ledger so cache hits keep their cost-attribution class.
  std::string app_classes;
  /// Computed as an MFACT-only degraded fallback (deadline/overload). Such
  /// results are streamed to their waiters but never inserted in the cache,
  /// so a later healthy request recomputes the real answer.
  bool mfact_fallback = false;

  std::size_t byte_size() const {
    std::size_t n = sizeof(CachedResult) + app_classes.size();
    for (const std::string& r : records) n += r.size() + sizeof(std::string);
    return n;
  }
};

/// Durability policy for a ResultCache. An empty dir keeps the PR 6 memory-
/// only behavior; a non-empty dir backs the cache with an append-only spill
/// file (serve/spill.hpp) so a restarted daemon comes back warm.
struct SpillOptions {
  std::string dir;     ///< cache directory ("" = memory-only)
  bool fsync = false;  ///< fsync every spill append (power-loss durability)
};

class ResultCache {
 public:
  /// `byte_budget` caps the summed byte_size() of live entries; 0 disables
  /// caching entirely (every lookup misses, inserts are dropped).
  explicit ResultCache(std::size_t byte_budget, SpillOptions spill = {});
  ~ResultCache();

  /// Hit: bumps the entry to most-recently-used and returns it. Miss: null.
  std::shared_ptr<const CachedResult> lookup(std::uint64_t key);

  /// Insert (or replace) the entry for `key`, then evict LRU entries until
  /// the budget holds again. An entry larger than the whole budget is
  /// dropped immediately — correct, just never cached. Admitted entries are
  /// appended to the spill file when one is configured; a spill failure is
  /// counted, never propagated (the in-memory insert already happened).
  void insert(std::uint64_t key, std::shared_ptr<const CachedResult> value);

  struct RecoveryStats {
    std::uint64_t recovered = 0;    ///< entries restored into the live cache
    std::uint64_t quarantined = 0;  ///< damaged regions moved to the sidecar
    std::uint64_t torn_bytes = 0;   ///< incomplete tail truncated (crash shape)
  };

  /// Recover the spill file configured at construction: validate every
  /// record (CRC + schema), quarantine damage into the `.quarantine`
  /// sidecar, admit survivors oldest-first under the byte budget, then
  /// rewrite the spill file clean and open it for appending. Never throws
  /// on corruption — only on unrecoverable I/O errors. No-op (all zeros)
  /// when no spill dir is configured. Call once, before serving traffic.
  RecoveryStats recover();

  /// One scrubber pass: re-verify every on-disk record CRC. Any rot is
  /// quarantined and the file is rewritten from the in-memory entries (the
  /// authoritative copy). Returns the number of damaged regions found.
  /// No-op when no spill dir is configured.
  std::uint64_t scrub_once();

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bytes = 0;
    std::uint64_t entries = 0;
    // Durability counters (all zero for a memory-only cache).
    std::uint64_t spilled = 0;       ///< records appended to the spill file
    std::uint64_t spill_errors = 0;  ///< appends lost to injected/real I/O failure
    std::uint64_t recovered = 0;     ///< entries restored by recover()
    std::uint64_t quarantined = 0;   ///< damaged regions sidecarred (recover + scrub)
    std::uint64_t scrub_passes = 0;  ///< completed scrub_once() calls
    std::uint64_t scrub_corrupt = 0; ///< damaged regions found by scrubbing
  };
  Counters counters() const;

 private:
  void evict_to_budget_locked();
  bool insert_locked(std::uint64_t key, std::shared_ptr<const CachedResult> value);
  void spill_append_locked(std::uint64_t key, const CachedResult& r);
  void rewrite_spill_locked();

  struct Entry {
    std::uint64_t key = 0;
    std::shared_ptr<const CachedResult> value;
    std::size_t bytes = 0;
  };

  mutable std::mutex mu_;
  std::size_t budget_;
  std::size_t bytes_ = 0;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0, misses_ = 0, evictions_ = 0;

  SpillOptions spill_opts_;
  std::unique_ptr<class SpillWriter> writer_;  ///< open iff spill configured
  std::uint64_t spilled_ = 0, spill_errors_ = 0, recovered_ = 0, quarantined_ = 0;
  std::uint64_t scrub_passes_ = 0, scrub_corrupt_ = 0;
};

}  // namespace hps::serve
