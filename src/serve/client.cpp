#include "serve/client.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.hpp"
#include "robust/ipc.hpp"

namespace hps::serve {

namespace {

namespace ipc = robust::ipc;

void ignore_sigpipe() { std::signal(SIGPIPE, SIG_IGN); }

bool errno_is_timeout() { return errno == EAGAIN || errno == EWOULDBLOCK; }

void send_request(int fd, const Request& req) {
  ipc::Message m;
  m.type = ipc::MsgType::kRequest;
  m.payload = encode_request(req);
  if (ipc::write_frame(fd, m)) return;
  if (errno_is_timeout())
    throw TimeoutError("serve client: timed out writing the request");
  HPS_THROW("serve client: daemon connection lost mid-write");
}

ipc::Message read_reply(int fd) {
  ipc::Message m;
  const ipc::ReadStatus st = ipc::read_message(fd, m);
  if (st == ipc::ReadStatus::kMessage) return m;
  if (st == ipc::ReadStatus::kError && errno_is_timeout())
    throw TimeoutError("serve client: timed out waiting for the daemon's reply");
  HPS_THROW(std::string("serve client: reply stream ") + ipc::read_status_name(st));
}

std::int64_t steady_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Client Client::connect_unix(const std::string& socket_path) {
  ignore_sigpipe();
  sockaddr_un addr{};
  HPS_REQUIRE(socket_path.size() < sizeof addr.sun_path,
              "serve client: socket path too long: " + socket_path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  HPS_REQUIRE(fd >= 0, std::string("serve client: socket() failed: ") + std::strerror(errno));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    HPS_THROW("serve client: cannot connect to " + socket_path + ": " + err +
              " (is hpcsweepd running?)");
  }
  return Client(fd);
}

Client Client::connect_tcp(const std::string& host, int port) {
  ignore_sigpipe();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  HPS_REQUIRE(fd >= 0, std::string("serve client: socket() failed: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    HPS_THROW("serve client: bad IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    HPS_THROW("serve client: cannot connect to " + host + ":" + std::to_string(port) +
              ": " + err + " (is hpcsweepd running?)");
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::StudyReply Client::study(
    const Request& req, const std::function<void(const std::string&)>& on_record) {
  send_request(fd_, req);
  StudyReply reply;
  for (;;) {
    const ipc::Message m = read_reply(fd_);
    switch (m.type) {
      case ipc::MsgType::kRecord:
        if (on_record) on_record(m.payload);
        reply.records.push_back(m.payload);
        continue;
      case ipc::MsgType::kSummary:
      case ipc::MsgType::kReject:
        reply.summary = decode_summary(m.payload);
        return reply;
      default:
        HPS_THROW(std::string("serve client: unexpected reply frame: ") +
                  ipc::msg_type_name(m.type));
    }
  }
}

bool Client::ping() {
  Request req;
  req.kind = Request::Kind::kPing;
  try {
    send_request(fd_, req);
    return read_reply(fd_).type == ipc::MsgType::kPong;
  } catch (const hps::Error&) {
    return false;
  }
}

Stats Client::stats() {
  Request req;
  req.kind = Request::Kind::kStats;
  send_request(fd_, req);
  const ipc::Message m = read_reply(fd_);
  HPS_REQUIRE(m.type == ipc::MsgType::kStatsReply,
              std::string("serve client: expected stats-reply, got ") +
                  ipc::msg_type_name(m.type));
  return decode_stats(m.payload);
}

MetricsReply Client::metrics() {
  Request req;
  req.kind = Request::Kind::kMetrics;
  send_request(fd_, req);
  const ipc::Message m = read_reply(fd_);
  HPS_REQUIRE(m.type == ipc::MsgType::kMetricsReply,
              std::string("serve client: expected metrics-reply, got ") +
                  ipc::msg_type_name(m.type));
  return decode_metrics(m.payload);
}

Summary Client::shutdown_server() {
  Request req;
  req.kind = Request::Kind::kShutdown;
  send_request(fd_, req);
  const ipc::Message m = read_reply(fd_);
  HPS_REQUIRE(m.type == ipc::MsgType::kSummary || m.type == ipc::MsgType::kReject,
              std::string("serve client: expected summary, got ") +
                  ipc::msg_type_name(m.type));
  return decode_summary(m.payload);
}

void Client::set_timeout_ms(double ms) {
  timeval tv{};
  if (ms > 0) {
    const auto whole_s = static_cast<long>(ms / 1000.0);
    tv.tv_sec = whole_s;
    tv.tv_usec = static_cast<long>((ms - static_cast<double>(whole_s) * 1000.0) * 1000.0);
    // A sub-millisecond request still needs a nonzero deadline: {0,0} means
    // "no timeout" to the kernel.
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1000;
  }
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

// ---------------------------------------------------------------------------
// ResilientClient

ResilientClient ResilientClient::unix_socket(std::string path, ClientPolicy policy) {
  return ResilientClient({Endpoint{false, std::move(path), 0}}, policy);
}

ResilientClient ResilientClient::tcp(std::string host, int port, ClientPolicy policy) {
  return ResilientClient({Endpoint{true, std::move(host), port}}, policy);
}

ResilientClient ResilientClient::endpoints(std::vector<Endpoint> eps, ClientPolicy policy) {
  return ResilientClient(std::move(eps), policy);
}

ResilientClient::ResilientClient(std::vector<Endpoint> eps, ClientPolicy policy)
    : endpoints_(std::move(eps)),
      policy_(policy),
      breakers_(endpoints_.size()),
      jitter_state_(policy.jitter_seed != 0 ? policy.jitter_seed
                                            : 0x9e3779b97f4a7c15ULL) {
  HPS_REQUIRE(!endpoints_.empty(), "serve client: at least one endpoint is required");
}

const char* ResilientClient::breaker_name(Breaker b) {
  switch (b) {
    case Breaker::kClosed: return "closed";
    case Breaker::kOpen: return "open";
    case Breaker::kHalfOpen: return "half-open";
  }
  return "?";
}

ResilientClient::Breaker ResilientClient::breaker_state() const {
  const BreakerState& b = breakers_[current_];
  if (!b.open) return Breaker::kClosed;
  return steady_ms() * 1000000 >= b.open_until_ns ? Breaker::kHalfOpen : Breaker::kOpen;
}

Client ResilientClient::connect_raw(std::size_t idx) {
  const Endpoint& ep = endpoints_[idx];
  Client c = ep.tcp ? Client::connect_tcp(ep.target, ep.port)
                    : Client::connect_unix(ep.target);
  if (policy_.timeout_ms > 0) c.set_timeout_ms(policy_.timeout_ms);
  return c;
}

Client ResilientClient::connect_once() {
  std::string first_err;
  for (std::size_t k = 0; k < endpoints_.size(); ++k) {
    const std::size_t i = (current_ + k) % endpoints_.size();
    try {
      Client c = connect_raw(i);
      current_ = i;
      return c;
    } catch (const hps::Error& e) {
      if (first_err.empty()) first_err = e.what();
    }
  }
  HPS_THROW(first_err);
}

void ResilientClient::on_transport_failure(std::size_t idx) {
  BreakerState& b = breakers_[idx];
  ++b.consecutive_failures;
  if (policy_.breaker_failures > 0 && b.consecutive_failures >= policy_.breaker_failures) {
    b.open = true;
    b.open_until_ns =
        steady_ms() * 1000000 +
        static_cast<std::int64_t>(policy_.breaker_cooldown_ms * 1e6);
  }
}

void ResilientClient::on_transport_success(std::size_t idx) {
  breakers_[idx] = BreakerState{};
}

std::size_t ResilientClient::pick_endpoint(bool& half_open) const {
  const std::int64_t now_ns = steady_ms() * 1000000;
  for (std::size_t k = 0; k < endpoints_.size(); ++k) {
    const std::size_t i = (current_ + k) % endpoints_.size();
    const BreakerState& b = breakers_[i];
    if (!b.open) {
      half_open = false;
      return i;
    }
    if (now_ns >= b.open_until_ns) {
      half_open = true;
      return i;
    }
  }
  return std::string::npos;
}

bool ResilientClient::advance_from(std::size_t idx) {
  for (std::size_t k = 1; k < endpoints_.size(); ++k) {
    const std::size_t i = (idx + k) % endpoints_.size();
    const BreakerState& b = breakers_[i];
    if (!b.open || steady_ms() * 1000000 >= b.open_until_ns) {
      current_ = i;
      ++failovers_;
      return true;
    }
  }
  current_ = idx;
  return false;
}

double ResilientClient::backoff_delay_ms(int attempt) {
  double base = policy_.backoff_ms;
  for (int i = 0; i < attempt && base < policy_.backoff_max_ms; ++i) base *= 2;
  base = std::min(base, policy_.backoff_max_ms);
  // splitmix64 step: a deterministic jitter stream keeps retry storms
  // decorrelated in production (seed per client) and reproducible in tests.
  jitter_state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = jitter_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const double u = static_cast<double>(z >> 11) *
                   (1.0 / static_cast<double>(std::uint64_t{1} << 53));
  return base * (0.5 + 0.5 * u);
}

Client::StudyReply ResilientClient::study(
    const Request& req, const std::function<void(const std::string&)>& on_record) {
  last_attempts_ = 0;
  for (int attempt = 0;; ++attempt) {
    // Per-endpoint circuit breaker: an open endpoint is skipped until its
    // cooldown elapses (then exactly one half-open probe goes through —
    // success re-closes the breaker, failure re-opens it for a fresh
    // cooldown). Only when every endpoint is open does the client fail fast.
    bool half_open_probe = false;
    const std::size_t idx = pick_endpoint(half_open_probe);
    if (idx == std::string::npos)
      throw CircuitOpenError("serve client: circuit breaker open on all " +
                             std::to_string(endpoints_.size()) + " endpoint(s)");

    ++last_attempts_;
    try {
      Client c = connect_raw(idx);
      // Records are buffered (no streaming callback) so an exchange that
      // dies mid-stream and fails over cannot hand the caller duplicates.
      Client::StudyReply reply = c.study(req, {});
      on_transport_success(idx);
      current_ = idx;
      if (reply.summary.status == Status::kQueueFull && attempt < policy_.max_retries) {
        // Explicit backpressure (queue full or shed): safe to retry — the
        // study never ran. Back off; the same daemon stays preferred (its
        // peers share the cache, not the queue, so moving buys nothing).
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff_delay_ms(attempt)));
        continue;
      }
      if (reply.summary.status == Status::kDraining && attempt < policy_.max_retries) {
        // A draining daemon never admitted the study, so the retry is free;
        // with a second endpoint available the rolling restart is invisible
        // (no sleep), alone we back off and wait for the replacement.
        ++draining_retries_;
        if (!advance_from(idx))
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(backoff_delay_ms(attempt)));
        continue;
      }
      if (on_record)
        for (const std::string& line : reply.records) on_record(line);
      return reply;
    } catch (const TimeoutError&) {
      // The daemon may merely be slow and the study may still be executing:
      // count the failure for the breaker but never retry — re-sending
      // would pile onto an overloaded server.
      on_transport_failure(idx);
      throw;
    } catch (const hps::Error&) {
      // Connect failure or the connection died mid-exchange. Either way the
      // retry is safe: studies are content-addressed and deterministic, so a
      // re-sent request returns the identical bytes (coalesced server-side
      // if the first send is still running).
      on_transport_failure(idx);
      if (attempt >= policy_.max_retries) throw;
      // A failed half-open probe re-opens the breaker; with no other
      // endpoint to move to, throw instead of burning the retry budget
      // against a daemon that is still down.
      const bool moved = advance_from(idx);
      if (half_open_probe && !moved) throw;
      // Moving to a different endpoint skips the backoff sleep — that
      // endpoint is healthy until proven otherwise.
      if (!moved)
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff_delay_ms(attempt)));
    }
  }
}

}  // namespace hps::serve
