#include "serve/client.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.hpp"
#include "robust/ipc.hpp"

namespace hps::serve {

namespace {

namespace ipc = robust::ipc;

void ignore_sigpipe() { std::signal(SIGPIPE, SIG_IGN); }

void send_request(int fd, const Request& req) {
  ipc::Message m;
  m.type = ipc::MsgType::kRequest;
  m.payload = encode_request(req);
  HPS_REQUIRE(ipc::write_frame(fd, m), "serve client: daemon connection lost mid-write");
}

ipc::Message read_reply(int fd) {
  ipc::Message m;
  const ipc::ReadStatus st = ipc::read_message(fd, m);
  HPS_REQUIRE(st == ipc::ReadStatus::kMessage,
              std::string("serve client: reply stream ") + ipc::read_status_name(st));
  return m;
}

}  // namespace

Client Client::connect_unix(const std::string& socket_path) {
  ignore_sigpipe();
  sockaddr_un addr{};
  HPS_REQUIRE(socket_path.size() < sizeof addr.sun_path,
              "serve client: socket path too long: " + socket_path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  HPS_REQUIRE(fd >= 0, std::string("serve client: socket() failed: ") + std::strerror(errno));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    HPS_THROW("serve client: cannot connect to " + socket_path + ": " + err +
              " (is hpcsweepd running?)");
  }
  return Client(fd);
}

Client Client::connect_tcp(const std::string& host, int port) {
  ignore_sigpipe();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  HPS_REQUIRE(fd >= 0, std::string("serve client: socket() failed: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    HPS_THROW("serve client: bad IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    HPS_THROW("serve client: cannot connect to " + host + ":" + std::to_string(port) +
              ": " + err + " (is hpcsweepd running?)");
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::StudyReply Client::study(
    const Request& req, const std::function<void(const std::string&)>& on_record) {
  send_request(fd_, req);
  StudyReply reply;
  for (;;) {
    const ipc::Message m = read_reply(fd_);
    switch (m.type) {
      case ipc::MsgType::kRecord:
        if (on_record) on_record(m.payload);
        reply.records.push_back(m.payload);
        continue;
      case ipc::MsgType::kSummary:
      case ipc::MsgType::kReject:
        reply.summary = decode_summary(m.payload);
        return reply;
      default:
        HPS_THROW(std::string("serve client: unexpected reply frame: ") +
                  ipc::msg_type_name(m.type));
    }
  }
}

bool Client::ping() {
  Request req;
  req.kind = Request::Kind::kPing;
  try {
    send_request(fd_, req);
    return read_reply(fd_).type == ipc::MsgType::kPong;
  } catch (const hps::Error&) {
    return false;
  }
}

Stats Client::stats() {
  Request req;
  req.kind = Request::Kind::kStats;
  send_request(fd_, req);
  const ipc::Message m = read_reply(fd_);
  HPS_REQUIRE(m.type == ipc::MsgType::kStatsReply,
              std::string("serve client: expected stats-reply, got ") +
                  ipc::msg_type_name(m.type));
  return decode_stats(m.payload);
}

MetricsReply Client::metrics() {
  Request req;
  req.kind = Request::Kind::kMetrics;
  send_request(fd_, req);
  const ipc::Message m = read_reply(fd_);
  HPS_REQUIRE(m.type == ipc::MsgType::kMetricsReply,
              std::string("serve client: expected metrics-reply, got ") +
                  ipc::msg_type_name(m.type));
  return decode_metrics(m.payload);
}

Summary Client::shutdown_server() {
  Request req;
  req.kind = Request::Kind::kShutdown;
  send_request(fd_, req);
  const ipc::Message m = read_reply(fd_);
  HPS_REQUIRE(m.type == ipc::MsgType::kSummary || m.type == ipc::MsgType::kReject,
              std::string("serve client: expected summary, got ") +
                  ipc::msg_type_name(m.type));
  return decode_summary(m.payload);
}

}  // namespace hps::serve
