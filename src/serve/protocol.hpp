// hpcsweepd wire protocol: what travels inside the CRC-framed transport
// (robust/ipc.hpp) between a client and the prediction daemon.
//
// Every exchange is one client kRequest frame answered by a terminal server
// frame, optionally preceded by streamed kRecord frames:
//
//   study    → kRecord* (one ledger JSON line each), then kSummary
//            → or kReject (admission control said no; Summary payload)
//   ping     → kPong
//   stats    → kStatsReply (Stats payload)
//   shutdown → kSummary, then the server drains and exits
//
// Payloads are little-endian fixed-width binary (the study cache's codec
// style): versioned, explicit, and cheap to reject. A request frame is tiny;
// the server caps request frames at kMaxRequestBytes so an abusive length
// field is dropped before any allocation — responses (which carry whole
// ledgers) use the transport-wide ipc::kMaxFrameBytes instead.
#pragma once

#include <cstdint>
#include <string>

namespace hps::serve {

/// Bump on any wire-layout change; a request newer than the server is
/// rejected as kBadRequest rather than misread. Decoders accept payloads
/// from kMinProtocolVersion up: old fixed-layout fields come first, newer
/// fields are appended and defaulted when absent, so a v1 peer still
/// interoperates (pinned by protocol tests).
/// v2: Request gains the kMetrics kind; Stats appends uptime_ms,
///     ledger_records and spans_dropped.
/// v3: Request appends deadline_ms (client end-to-end deadline); Summary
///     appends the mfact_fallback flag and Status gains kExpired; Stats
///     appends the overload counters (rejected_expired, shed_queue_delay,
///     degraded_fallback, rejected_slow_read, ledger_write_errors).
/// v4: Stats appends the durable-cache counters (cache_spilled,
///     cache_recovered, cache_quarantined, cache_recovery_ms,
///     cache_scrub_passes, cache_scrub_corrupt).
inline constexpr std::uint32_t kProtocolVersion = 4;
inline constexpr std::uint32_t kMinProtocolVersion = 1;

/// Cap on a single *request* frame. Requests are a fixed few dozen bytes;
/// anything bigger is garbage or abuse, refused before allocation.
inline constexpr std::uint32_t kMaxRequestBytes = 64u << 10;

struct Request {
  enum class Kind : std::uint8_t {
    kStudy = 1,     ///< run (or serve from cache) a corpus study
    kPing = 2,      ///< liveness probe
    kStats = 3,     ///< daemon counters snapshot
    kShutdown = 4,  ///< drain and exit (admin)
    kMetrics = 5,   ///< live metrics snapshot (histograms + cost model), v2+
  };
  Kind kind = Kind::kStudy;

  // Study parameters (kStudy only) — the subset of core::StudyOptions a
  // remote caller may choose; everything else is daemon policy.
  std::uint64_t seed = 42;
  double duration_scale = 0.1;
  std::int32_t limit = 0;
  bool force_recompute = false;  ///< bypass the shared result cache

  // Per-request budget (0 = unlimited); the daemon clamps each value to its
  // own configured ceiling before running.
  double wall_deadline_s = 0;
  std::uint64_t max_des_events = 0;
  std::int64_t virtual_horizon_ns = 0;

  /// v3: end-to-end deadline in milliseconds from the moment the daemon
  /// decodes the request (0 = none). Queue wait is charged against it: an
  /// entry whose deadline passes before dispatch is rejected kExpired, and
  /// the execution wall budget is derived from whatever deadline *remains*
  /// at dispatch. Decoded as 0 from v1/v2 payloads.
  std::uint64_t deadline_ms = 0;
};

const char* request_kind_name(Request::Kind k);

/// Terminal verdict of one request.
enum class Status : std::uint8_t {
  kOk = 0,          ///< study ran (or was served from cache), all records ok
  kDegraded,        ///< study completed but some records carry failures
  kInterrupted,     ///< the daemon was interrupted mid-study (drain)
  kQueueFull,       ///< backpressure: the admission queue is at capacity
  kDraining,        ///< the daemon is shutting down, not accepting work
  kOversized,       ///< request frame exceeded kMaxRequestBytes
  kBadRequest,      ///< unframeable/undecodable/unsupported request
  kError,           ///< server-side failure (detail says what)
  kExpired,         ///< v3: the request's end-to-end deadline passed before
                    ///< (or while) it waited for dispatch
};

const char* status_name(Status s);

/// Payload of kSummary and kReject frames.
struct Summary {
  Status status = Status::kOk;
  bool cache_hit = false;     ///< served from the shared result cache
  std::uint32_t records = 0;  ///< kRecord frames that preceded this summary
  std::uint32_t degraded = 0; ///< records with a real fail_kind
  double wall_seconds = 0;    ///< server-side study wall time (0 on a hit)
  std::string detail;         ///< human-readable context (errors, reasons)
  /// v3: the requested simulation was infeasible within the remaining
  /// deadline (or overload shedding state), so the daemon answered with the
  /// cheap MFACT model instead — the result is tagged, never cached, and the
  /// summary status reads kDegraded. Decoded as false from v1/v2 payloads.
  bool mfact_fallback = false;
};

/// Payload of kStatsReply: the daemon's cumulative counters.
struct Stats {
  std::uint64_t requests = 0;          ///< study requests admitted or rejected
  std::uint64_t studies_run = 0;       ///< actual computations dispatched
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_bytes = 0;       ///< current cache footprint
  std::uint64_t cache_entries = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t coalesced = 0;         ///< waiters attached to an in-flight study
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_draining = 0;
  std::uint64_t rejected_bad = 0;      ///< oversized + unframeable + undecodable
  std::uint64_t rejected_conn_limit = 0;  ///< accepts refused at max_connections
  std::uint64_t active = 0;            ///< studies executing right now
  std::uint64_t queued = 0;            ///< jobs waiting in the admission queue

  // v2 fields (defaulted when decoding a v1 payload).
  std::uint64_t uptime_ms = 0;         ///< since the daemon started serving
  std::uint64_t ledger_records = 0;    ///< serve-ledger request lines written
  std::uint64_t spans_dropped = 0;     ///< request spans lost to the ring cap

  // v3 fields (defaulted when decoding a v1/v2 payload): overload handling.
  std::uint64_t rejected_expired = 0;   ///< deadline passed before dispatch
  std::uint64_t shed_queue_delay = 0;   ///< CoDel-style queue-delay sheds
  std::uint64_t degraded_fallback = 0;  ///< answered with MFACT fallback
  std::uint64_t rejected_slow_read = 0; ///< connections dropped by the
                                        ///< slow-read (slowloris) guard
  std::uint64_t ledger_write_errors = 0; ///< serve-ledger appends lost to I/O
                                         ///< failure (ENOSPC, short writes)

  // v4 fields (defaulted when decoding an older payload): durable cache.
  std::uint64_t cache_spilled = 0;      ///< records appended to the spill file
  std::uint64_t cache_recovered = 0;    ///< entries restored on startup
  std::uint64_t cache_quarantined = 0;  ///< damaged regions sidecarred
  std::uint64_t cache_recovery_ms = 0;  ///< startup recovery wall time
  std::uint64_t cache_scrub_passes = 0; ///< completed background scrub passes
  std::uint64_t cache_scrub_corrupt = 0; ///< damaged regions found by scrubbing
};

std::string encode_request(const Request& r);
/// Throws hps::Error on a short/garbled/version-mismatched payload.
Request decode_request(const std::string& payload);

std::string encode_summary(const Summary& s);
Summary decode_summary(const std::string& payload);

std::string encode_stats(const Stats& s);
Stats decode_stats(const std::string& payload);

/// One-line JSON rendering (diagnostics, `hpcsweep_inspect request --stats`).
std::string stats_to_json(const Stats& s);

}  // namespace hps::serve
