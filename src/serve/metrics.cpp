#include "serve/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/error.hpp"

namespace hps::serve {

namespace {

// Same little-endian primitives as protocol.cpp (kept file-local there; a
// metrics reply is a response frame, so its strings are capped by the
// transport's frame limit, not kMaxRequestBytes).

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

struct Reader {
  const std::string& buf;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    HPS_REQUIRE(pos + n <= buf.size(), "serve metrics payload truncated");
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[pos + static_cast<std::size_t>(i)])) << (8 * i);
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[pos + static_cast<std::size_t>(i)])) << (8 * i);
    pos += 8;
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s = buf.substr(pos, n);
    pos += n;
    return s;
  }
  void done() const {
    HPS_REQUIRE(pos == buf.size(), "serve metrics payload has trailing bytes");
  }
};

std::string fmt_g(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string fmt_ms(double seconds) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.2f", seconds * 1e3);
  return buf;
}

/// Prometheus family + label for a serving-registry histogram name.
struct Family {
  std::string family;
  std::string label;  ///< "" = no label, else `key="value"`
};

Family prometheus_family(const std::string& name) {
  const std::size_t phase_len = std::strlen(kPhaseMetricPrefix);
  const std::size_t class_len = std::strlen(kClassMetricPrefix);
  if (name.rfind(kPhaseMetricPrefix, 0) == 0)
    return {"hpcsweepd_phase_latency_seconds",
            "phase=\"" + name.substr(phase_len) + "\""};
  if (name.rfind(kClassMetricPrefix, 0) == 0)
    return {"hpcsweepd_class_latency_seconds",
            "class=\"" + name.substr(class_len) + "\""};
  if (name == kRequestMetric) return {"hpcsweepd_request_latency_seconds", ""};
  // Unknown histograms still export, distinguished by a metric label.
  return {"hpcsweepd_latency_seconds", "metric=\"" + name + "\""};
}

}  // namespace

const MetricsReply::Hist* MetricsReply::find(const std::string& name) const {
  for (const Hist& h : hists)
    if (h.name == name) return &h;
  return nullptr;
}

std::string encode_metrics(const MetricsReply& m) {
  std::string out;
  out.reserve(512);
  put_u32(out, kProtocolVersion);
  put_str(out, encode_stats(m.stats));  // nested blob keeps its own version
  put_f64(out, m.uptime_seconds);
  put_u32(out, static_cast<std::uint32_t>(m.hists.size()));
  for (const MetricsReply::Hist& h : m.hists) {
    put_str(out, h.name);
    put_u32(out, static_cast<std::uint32_t>(h.data.bounds.size()));
    for (const double b : h.data.bounds) put_f64(out, b);
    put_u32(out, static_cast<std::uint32_t>(h.data.buckets.size()));
    for (const std::uint64_t b : h.data.buckets) put_u64(out, b);
    put_u64(out, h.data.count);
    put_f64(out, h.data.sum);
  }
  put_u32(out, static_cast<std::uint32_t>(m.costs.size()));
  for (const obs::CostCell& c : m.costs) {
    put_str(out, c.app_class);
    put_str(out, c.scheme);
    put_u64(out, c.count);
    put_f64(out, c.wall_seconds);
  }
  return out;
}

MetricsReply decode_metrics(const std::string& payload) {
  Reader rd{payload};
  const std::uint32_t version = rd.u32();
  HPS_REQUIRE(version >= 2 && version <= kProtocolVersion,
              "serve metrics version " + std::to_string(version) + " unsupported");
  MetricsReply m;
  m.stats = decode_stats(rd.str());
  m.uptime_seconds = rd.f64();
  const std::uint32_t nhists = rd.u32();
  HPS_REQUIRE(nhists <= 4096, "serve metrics histogram count out of range");
  m.hists.resize(nhists);
  for (MetricsReply::Hist& h : m.hists) {
    h.name = rd.str();
    const std::uint32_t nbounds = rd.u32();
    HPS_REQUIRE(nbounds <= 4096, "serve metrics bound count out of range");
    h.data.bounds.resize(nbounds);
    for (double& b : h.data.bounds) b = rd.f64();
    const std::uint32_t nbuckets = rd.u32();
    HPS_REQUIRE(nbuckets == nbounds + 1, "serve metrics bucket count mismatch");
    h.data.buckets.resize(nbuckets);
    for (std::uint64_t& b : h.data.buckets) b = rd.u64();
    h.data.count = rd.u64();
    h.data.sum = rd.f64();
  }
  const std::uint32_t ncosts = rd.u32();
  HPS_REQUIRE(ncosts <= 4096, "serve metrics cost-cell count out of range");
  m.costs.resize(ncosts);
  for (obs::CostCell& c : m.costs) {
    c.app_class = rd.str();
    c.scheme = rd.str();
    c.count = rd.u64();
    c.wall_seconds = rd.f64();
  }
  rd.done();
  return m;
}

std::string render_prometheus(const MetricsReply& m) {
  std::ostringstream os;
  const auto counter = [&os](const char* name, std::uint64_t v) {
    os << "# TYPE " << name << " counter\n" << name << " " << v << "\n";
  };
  const auto gauge = [&os](const char* name, const std::string& v) {
    os << "# TYPE " << name << " gauge\n" << name << " " << v << "\n";
  };

  const Stats& s = m.stats;
  counter("hpcsweepd_requests_total", s.requests);
  counter("hpcsweepd_studies_run_total", s.studies_run);
  counter("hpcsweepd_coalesced_total", s.coalesced);
  counter("hpcsweepd_cache_hits_total", s.cache_hits);
  counter("hpcsweepd_cache_misses_total", s.cache_misses);
  counter("hpcsweepd_cache_evictions_total", s.cache_evictions);
  os << "# TYPE hpcsweepd_rejected_total counter\n";
  os << "hpcsweepd_rejected_total{reason=\"queue_full\"} " << s.rejected_queue_full << "\n";
  os << "hpcsweepd_rejected_total{reason=\"draining\"} " << s.rejected_draining << "\n";
  os << "hpcsweepd_rejected_total{reason=\"bad_request\"} " << s.rejected_bad << "\n";
  os << "hpcsweepd_rejected_total{reason=\"conn_limit\"} " << s.rejected_conn_limit << "\n";
  os << "hpcsweepd_rejected_total{reason=\"expired\"} " << s.rejected_expired << "\n";
  os << "hpcsweepd_rejected_total{reason=\"slow_read\"} " << s.rejected_slow_read << "\n";
  counter("hpcsweepd_shed_total", s.shed_queue_delay);
  counter("hpcsweepd_degraded_fallback_total", s.degraded_fallback);
  counter("hpcsweepd_cache_spilled_total", s.cache_spilled);
  counter("hpcsweepd_cache_recovered_total", s.cache_recovered);
  counter("hpcsweepd_cache_quarantined_total", s.cache_quarantined);
  counter("hpcsweepd_cache_scrub_passes_total", s.cache_scrub_passes);
  counter("hpcsweepd_cache_scrub_corrupt_total", s.cache_scrub_corrupt);
  counter("hpcsweepd_serve_ledger_records_total", s.ledger_records);
  counter("hpcsweepd_ledger_write_errors_total", s.ledger_write_errors);
  counter("hpcsweepd_spans_dropped_total", s.spans_dropped);
  gauge("hpcsweepd_cache_bytes", std::to_string(s.cache_bytes));
  gauge("hpcsweepd_cache_entries", std::to_string(s.cache_entries));
  gauge("hpcsweepd_active_studies", std::to_string(s.active));
  gauge("hpcsweepd_queue_depth", std::to_string(s.queued));
  gauge("hpcsweepd_uptime_seconds", fmt_g(m.uptime_seconds));
  gauge("hpcsweepd_cache_recovery_ms", std::to_string(s.cache_recovery_ms));

  // Histograms grouped by family so each # TYPE header appears once.
  std::vector<std::string> typed;
  for (const MetricsReply::Hist& h : m.hists) {
    const Family fam = prometheus_family(h.name);
    if (std::find(typed.begin(), typed.end(), fam.family) == typed.end()) {
      typed.push_back(fam.family);
      os << "# TYPE " << fam.family << " histogram\n";
    }
    const std::string open = fam.label.empty() ? "{" : "{" + fam.label + ",";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.data.bounds.size(); ++i) {
      cum += i < h.data.buckets.size() ? h.data.buckets[i] : 0;
      os << fam.family << "_bucket" << open << "le=\"" << fmt_g(h.data.bounds[i]) << "\"} "
         << cum << "\n";
    }
    os << fam.family << "_bucket" << open << "le=\"+Inf\"} " << h.data.count << "\n";
    const std::string labels = fam.label.empty() ? "" : "{" + fam.label + "}";
    os << fam.family << "_sum" << labels << " " << fmt_g(h.data.sum) << "\n";
    os << fam.family << "_count" << labels << " " << h.data.count << "\n";
  }

  if (!m.costs.empty()) {
    os << "# TYPE hpcsweepd_cost_wall_seconds_total counter\n";
    os << "# TYPE hpcsweepd_cost_runs_total counter\n";
    for (const obs::CostCell& c : m.costs) {
      const std::string labels =
          "{class=\"" + c.app_class + "\",scheme=\"" + c.scheme + "\"}";
      os << "hpcsweepd_cost_wall_seconds_total" << labels << " " << fmt_g(c.wall_seconds)
         << "\n";
      os << "hpcsweepd_cost_runs_total" << labels << " " << c.count << "\n";
    }
  }
  return os.str();
}

std::string render_dashboard(const MetricsReply& m, const MetricsReply* prev,
                             double interval_s) {
  const Stats& s = m.stats;
  std::ostringstream os;
  char line[256];

  double qps = 0;
  if (prev != nullptr && interval_s > 0) {
    qps = static_cast<double>(s.requests - prev->stats.requests) / interval_s;
  } else if (m.uptime_seconds > 0) {
    qps = static_cast<double>(s.requests) / m.uptime_seconds;
  }
  const std::uint64_t looked_up = s.cache_hits + s.cache_misses;
  const double hit_ratio =
      looked_up > 0 ? 100.0 * static_cast<double>(s.cache_hits) / static_cast<double>(looked_up)
                    : 0.0;

  std::snprintf(line, sizeof line, "hpcsweepd  up %.1fs  qps %.2f\n", m.uptime_seconds, qps);
  os << line;
  std::snprintf(line, sizeof line,
                "  requests %llu  studies %llu  coalesced %llu  in-flight %llu  queued %llu\n",
                static_cast<unsigned long long>(s.requests),
                static_cast<unsigned long long>(s.studies_run),
                static_cast<unsigned long long>(s.coalesced),
                static_cast<unsigned long long>(s.active),
                static_cast<unsigned long long>(s.queued));
  os << line;
  std::snprintf(line, sizeof line,
                "  cache: hit %.1f%%  (%llu/%llu)  %llu entries  %llu bytes  %llu evicted\n",
                hit_ratio, static_cast<unsigned long long>(s.cache_hits),
                static_cast<unsigned long long>(looked_up),
                static_cast<unsigned long long>(s.cache_entries),
                static_cast<unsigned long long>(s.cache_bytes),
                static_cast<unsigned long long>(s.cache_evictions));
  os << line;
  const std::uint64_t rejected = s.rejected_queue_full + s.rejected_draining +
                                 s.rejected_bad + s.rejected_conn_limit +
                                 s.rejected_expired + s.rejected_slow_read;
  std::snprintf(line, sizeof line,
                "  rejected %llu (full %llu, draining %llu, bad %llu, conns %llu, "
                "expired %llu, slow-read %llu)\n",
                static_cast<unsigned long long>(rejected),
                static_cast<unsigned long long>(s.rejected_queue_full),
                static_cast<unsigned long long>(s.rejected_draining),
                static_cast<unsigned long long>(s.rejected_bad),
                static_cast<unsigned long long>(s.rejected_conn_limit),
                static_cast<unsigned long long>(s.rejected_expired),
                static_cast<unsigned long long>(s.rejected_slow_read));
  os << line;
  std::snprintf(line, sizeof line,
                "  overload: shed %llu  mfact-fallback %llu  |  ledger %llu "
                "(write-errors %llu)  spans-dropped %llu\n",
                static_cast<unsigned long long>(s.shed_queue_delay),
                static_cast<unsigned long long>(s.degraded_fallback),
                static_cast<unsigned long long>(s.ledger_records),
                static_cast<unsigned long long>(s.ledger_write_errors),
                static_cast<unsigned long long>(s.spans_dropped));
  os << line;
  if (s.cache_spilled + s.cache_recovered + s.cache_quarantined + s.cache_scrub_passes > 0) {
    std::snprintf(line, sizeof line,
                  "  durable: spilled %llu  recovered %llu (%llu ms)  quarantined %llu  "
                  "scrubs %llu (rot %llu)\n",
                  static_cast<unsigned long long>(s.cache_spilled),
                  static_cast<unsigned long long>(s.cache_recovered),
                  static_cast<unsigned long long>(s.cache_recovery_ms),
                  static_cast<unsigned long long>(s.cache_quarantined),
                  static_cast<unsigned long long>(s.cache_scrub_passes),
                  static_cast<unsigned long long>(s.cache_scrub_corrupt));
    os << line;
  }

  os << "  latency p50/p99/p99.9 ms (count)\n";
  for (const MetricsReply::Hist& h : m.hists) {
    std::string label;
    if (h.name == kRequestMetric) {
      label = "request";
    } else if (h.name.rfind(kPhaseMetricPrefix, 0) == 0) {
      label = "phase " + h.name.substr(std::strlen(kPhaseMetricPrefix));
    } else if (h.name.rfind(kClassMetricPrefix, 0) == 0) {
      label = "class " + h.name.substr(std::strlen(kClassMetricPrefix));
    } else {
      label = h.name;
    }
    std::snprintf(line, sizeof line, "    %-28s %8s %8s %8s  (%llu)\n", label.c_str(),
                  fmt_ms(h.data.quantile(0.50)).c_str(), fmt_ms(h.data.quantile(0.99)).c_str(),
                  fmt_ms(h.data.quantile(0.999)).c_str(),
                  static_cast<unsigned long long>(h.data.count));
    os << line;
  }

  if (!m.costs.empty()) {
    os << "  measured cost (class x scheme -> mean s, runs)\n";
    for (const obs::CostCell& c : m.costs) {
      std::snprintf(line, sizeof line, "    %-24s %-12s %10.4f  (%llu)\n", c.app_class.c_str(),
                    c.scheme.c_str(), c.mean_seconds(),
                    static_cast<unsigned long long>(c.count));
      os << line;
    }
  }
  return os.str();
}

}  // namespace hps::serve
