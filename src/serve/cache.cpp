#include "serve/cache.hpp"

#include "telemetry/telemetry.hpp"

namespace hps::serve {

std::shared_ptr<const CachedResult> ResultCache::lookup(std::uint64_t key) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    telemetry::Registry::global().counter("serve.cache_misses").add(1);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to MRU
  ++hits_;
  telemetry::Registry::global().counter("serve.cache_hits").add(1);
  return it->second->value;
}

void ResultCache::insert(std::uint64_t key, std::shared_ptr<const CachedResult> value) {
  if (budget_ == 0 || value == nullptr) return;
  const std::size_t bytes = value->byte_size();
  std::lock_guard<std::mutex> lk(mu_);
  if (const auto it = index_.find(key); it != index_.end()) {
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  if (bytes > budget_) return;  // would evict everything and still not fit
  lru_.push_front(Entry{key, std::move(value), bytes});
  index_[key] = lru_.begin();
  bytes_ += bytes;
  evict_to_budget_locked();
}

void ResultCache::evict_to_budget_locked() {
  while (bytes_ > budget_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
    telemetry::Registry::global().counter("serve.cache_evictions").add(1);
  }
}

ResultCache::Counters ResultCache::counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  Counters c;
  c.hits = hits_;
  c.misses = misses_;
  c.evictions = evictions_;
  c.bytes = bytes_;
  c.entries = lru_.size();
  return c;
}

}  // namespace hps::serve
