#include "serve/cache.hpp"

#include <cstdio>
#include <filesystem>

#include "robust/fault.hpp"
#include "serve/spill.hpp"
#include "telemetry/telemetry.hpp"

namespace hps::serve {

ResultCache::ResultCache(std::size_t byte_budget, SpillOptions spill)
    : budget_(byte_budget), spill_opts_(std::move(spill)) {}

ResultCache::~ResultCache() = default;

std::shared_ptr<const CachedResult> ResultCache::lookup(std::uint64_t key) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    telemetry::Registry::global().counter("serve.cache_misses").add(1);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to MRU
  ++hits_;
  telemetry::Registry::global().counter("serve.cache_hits").add(1);
  return it->second->value;
}

void ResultCache::insert(std::uint64_t key, std::shared_ptr<const CachedResult> value) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::shared_ptr<const CachedResult> keep = value;  // outlives the move below
  if (!insert_locked(key, std::move(value))) return;
  spill_append_locked(key, *keep);
}

bool ResultCache::insert_locked(std::uint64_t key, std::shared_ptr<const CachedResult> value) {
  if (budget_ == 0 || value == nullptr) return false;
  const std::size_t bytes = value->byte_size();
  if (const auto it = index_.find(key); it != index_.end()) {
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  if (bytes > budget_) return false;  // would evict everything and still not fit
  lru_.push_front(Entry{key, std::move(value), bytes});
  index_[key] = lru_.begin();
  bytes_ += bytes;
  evict_to_budget_locked();
  return true;
}

void ResultCache::spill_append_locked(std::uint64_t key, const CachedResult& r) {
  if (writer_ == nullptr || !writer_->is_open()) return;
  if (r.mfact_fallback) return;  // degraded answers are never durable
  try {
    robust::fault_point(robust::FaultSite::kServeCacheSpill);
    writer_->append(key, r);
    ++spilled_;
    telemetry::Registry::global().counter("serve.cache_spilled").add(1);
    // The append-only file accumulates replaced/evicted entries; compact it
    // once it clearly outgrows what the live set could occupy.
    if (writer_->file_bytes() > 2 * static_cast<std::uint64_t>(budget_) + 64)
      rewrite_spill_locked();
  } catch (const std::exception& e) {
    ++spill_errors_;
    std::fprintf(stderr, "hpcsweepd: cache spill append failed (entry stays in memory): %s\n",
                 e.what());
  }
}

void ResultCache::rewrite_spill_locked() {
  std::vector<SpillRecord> live;
  live.reserve(lru_.size());
  // Oldest first: recovery re-inserts in file order, so append order must be
  // LRU→MRU for the restored recency order to match.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it)
    live.push_back(SpillRecord{it->key, *it->value});
  const std::string path = spill_path(spill_opts_.dir);
  write_spill_file(path, live);
  // The rename replaced the inode; reopen so appends land in the new file.
  if (writer_ == nullptr) writer_ = std::make_unique<SpillWriter>();
  writer_->close();
  writer_->open(path, spill_opts_.fsync);
}

ResultCache::RecoveryStats ResultCache::recover() {
  RecoveryStats rs;
  if (spill_opts_.dir.empty()) return rs;
  std::lock_guard<std::mutex> lk(mu_);
  std::error_code ec;
  std::filesystem::create_directories(spill_opts_.dir, ec);
  SpillScan sc = scan_spill_file(spill_path(spill_opts_.dir));
  std::vector<std::string> quarantine = std::move(sc.quarantine);
  for (SpillRecord& rec : sc.records) {
    try {
      robust::fault_point(robust::FaultSite::kServeCacheRecover);
    } catch (const std::exception&) {
      // Injected recovery failure: the record is treated exactly like rot.
      quarantine.push_back(encode_spill_record(rec.key, rec.result));
      continue;
    }
    if (rec.result.mfact_fallback) continue;  // excluded by cache policy
    if (insert_locked(rec.key, std::make_shared<CachedResult>(std::move(rec.result)))) {
      ++rs.recovered;
    }
  }
  recovered_ += rs.recovered;
  rs.quarantined = quarantine.size();
  quarantined_ += quarantine.size();
  rs.torn_bytes = sc.torn_bytes;
  try {
    append_quarantine(quarantine_path(spill_opts_.dir), quarantine);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hpcsweepd: quarantine sidecar write failed: %s\n", e.what());
  }
  // Leave a clean, compacted file behind no matter what we found, and open
  // it for live appends. I/O failure here is a misconfigured --cache-dir and
  // does throw: better to refuse to start than to serve without durability.
  rewrite_spill_locked();
  return rs;
}

std::uint64_t ResultCache::scrub_once() {
  if (spill_opts_.dir.empty()) return 0;
  robust::fault_point(robust::FaultSite::kServeScrub);
  std::lock_guard<std::mutex> lk(mu_);
  SpillScan sc = scan_spill_file(spill_path(spill_opts_.dir));
  const std::uint64_t rot = sc.quarantine.size();
  const bool damaged = rot > 0 || sc.torn_bytes > 0 || (sc.existed && !sc.header_ok);
  if (damaged) {
    try {
      append_quarantine(quarantine_path(spill_opts_.dir), sc.quarantine);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "hpcsweepd: quarantine sidecar write failed: %s\n", e.what());
    }
    // The in-memory cache is the authoritative copy; rebuild the file from it.
    rewrite_spill_locked();
  }
  ++scrub_passes_;
  scrub_corrupt_ += rot;
  quarantined_ += rot;
  return rot;
}

void ResultCache::evict_to_budget_locked() {
  while (bytes_ > budget_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
    telemetry::Registry::global().counter("serve.cache_evictions").add(1);
  }
}

ResultCache::Counters ResultCache::counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  Counters c;
  c.hits = hits_;
  c.misses = misses_;
  c.evictions = evictions_;
  c.bytes = bytes_;
  c.entries = lru_.size();
  c.spilled = spilled_;
  c.spill_errors = spill_errors_;
  c.recovered = recovered_;
  c.quarantined = quarantined_;
  c.scrub_passes = scrub_passes_;
  c.scrub_corrupt = scrub_corrupt_;
  return c;
}

}  // namespace hps::serve
