// Client side of the hpcsweepd protocol: connect, send one request frame,
// consume the streamed reply. Used by `hpcsweep_inspect request`, the
// bench/load_test harness, and the serve tests.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "serve/metrics.hpp"
#include "serve/protocol.hpp"

namespace hps::serve {

class Client {
 public:
  /// Both throw hps::Error when the daemon is not reachable. Connecting
  /// ignores SIGPIPE process-wide: a daemon dying mid-request must surface
  /// as an error status, not kill the client.
  static Client connect_unix(const std::string& socket_path);
  static Client connect_tcp(const std::string& host, int port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  struct StudyReply {
    Summary summary;
    std::vector<std::string> records;  ///< streamed ledger JSON lines
  };

  /// Send a study request and collect the streamed reply. `on_record`, when
  /// set, sees each ledger line as it arrives (records are still collected).
  /// Rejections come back as the summary status — only transport failures
  /// (daemon gone, garbled stream) throw hps::Error.
  StudyReply study(const Request& req,
                   const std::function<void(const std::string&)>& on_record = {});

  /// Liveness probe; false when the reply was not a clean pong.
  bool ping();

  /// Daemon counter snapshot. Throws on transport failure.
  Stats stats();

  /// Live-metrics snapshot: Stats plus the per-phase / per-trace-class
  /// latency histograms and cost-model cells (protocol v2). Throws on
  /// transport failure or a pre-v2 daemon.
  MetricsReply metrics();

  /// Ask the daemon to drain and exit; returns its acknowledgment.
  Summary shutdown_server();

  /// Raw connection fd — tests use it to inject protocol garbage exactly as
  /// a broken or malicious client would.
  int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace hps::serve
