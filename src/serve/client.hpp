// Client side of the hpcsweepd protocol: connect, send one request frame,
// consume the streamed reply. Used by `hpcsweep_inspect request`, the
// bench/load_test harness, and the serve tests.
//
// Two layers:
//   Client          — one connection, one exchange, no policy. A stalled
//                     daemon blocks it forever unless set_timeout_ms is set.
//   ResilientClient — wraps Client with socket timeouts, jittered
//                     exponential-backoff retries, a per-endpoint circuit
//                     breaker with half-open probes, and failover across an
//                     ordered endpoint list. Retried (and failed over):
//                     kQueueFull and kDraining rejects, connect failures,
//                     and non-timeout transport errors — studies are
//                     content-addressed and deterministic, so re-sending one
//                     that may have executed returns the identical answer
//                     (coalesced server-side if it is still running). Only a
//                     socket *timeout* is terminal: the daemon may merely be
//                     slow, and re-sending would pile onto it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"

namespace hps::serve {

/// The socket deadline (Client::set_timeout_ms) elapsed mid-exchange. Kept
/// distinct from Error because the request may have executed server-side —
/// a timeout is terminal for retry purposes where a connect failure is not.
class TimeoutError : public hps::Error {
 public:
  using Error::Error;
};

/// ResilientClient's circuit breaker is open: recent attempts failed at the
/// transport layer, and the cooldown has not elapsed. Fails fast by design.
class CircuitOpenError : public hps::Error {
 public:
  using Error::Error;
};

class Client {
 public:
  /// Both throw hps::Error when the daemon is not reachable. Connecting
  /// ignores SIGPIPE process-wide: a daemon dying mid-request must surface
  /// as an error status, not kill the client.
  static Client connect_unix(const std::string& socket_path);
  static Client connect_tcp(const std::string& host, int port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  struct StudyReply {
    Summary summary;
    std::vector<std::string> records;  ///< streamed ledger JSON lines
  };

  /// Send a study request and collect the streamed reply. `on_record`, when
  /// set, sees each ledger line as it arrives (records are still collected).
  /// Rejections come back as the summary status — only transport failures
  /// (daemon gone, garbled stream) throw hps::Error.
  StudyReply study(const Request& req,
                   const std::function<void(const std::string&)>& on_record = {});

  /// Liveness probe; false when the reply was not a clean pong.
  bool ping();

  /// Daemon counter snapshot. Throws on transport failure.
  Stats stats();

  /// Live-metrics snapshot: Stats plus the per-phase / per-trace-class
  /// latency histograms and cost-model cells (protocol v2). Throws on
  /// transport failure or a pre-v2 daemon.
  MetricsReply metrics();

  /// Ask the daemon to drain and exit; returns its acknowledgment.
  Summary shutdown_server();

  /// Socket read/write deadline (SO_RCVTIMEO/SO_SNDTIMEO): once set, a
  /// stalled daemon surfaces as TimeoutError instead of blocking forever.
  /// 0 clears the deadline.
  void set_timeout_ms(double ms);

  /// Raw connection fd — tests use it to inject protocol garbage exactly as
  /// a broken or malicious client would.
  int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}
  int fd_ = -1;
};

/// Knobs for ResilientClient, surfaced as `hpcsweep_inspect request` flags.
struct ClientPolicy {
  double timeout_ms = 0;       ///< socket read/write deadline (0 = none)
  int max_retries = 3;         ///< retry budget beyond the first attempt
  double backoff_ms = 50;      ///< first retry delay; doubles per attempt
  double backoff_max_ms = 2000;
  /// Jitter stream seed: backoff delays are scaled by a deterministic
  /// uniform factor in [0.5, 1.0] so a fleet of retrying clients does not
  /// re-stampede in lockstep (and tests stay reproducible).
  std::uint64_t jitter_seed = 0;
  int breaker_failures = 5;    ///< consecutive transport failures → open
  double breaker_cooldown_ms = 1000;  ///< open → half-open probe delay
};

/// One daemon address a ResilientClient may talk to.
struct Endpoint {
  bool tcp = false;
  std::string target;  ///< socket path (unix) or IPv4 host (tcp)
  int port = 0;        ///< tcp only
};

/// Retrying, deadline-aware front end over Client with failover across an
/// ordered endpoint list; each attempt opens a fresh connection. The circuit
/// breaker is per endpoint, so one dead daemon fails fast while its peers
/// keep serving; an attempt that fails moves the preference to the next
/// usable endpoint without sleeping (the peer is healthy until proven
/// otherwise), and a success sticks to the endpoint that answered. Not
/// thread-safe (the breaker state is unsynchronized by design — share
/// nothing, or wrap it).
class ResilientClient {
 public:
  static ResilientClient unix_socket(std::string path, ClientPolicy policy = {});
  static ResilientClient tcp(std::string host, int port, ClientPolicy policy = {});
  /// Failover client over `eps` in preference order (at least one required).
  static ResilientClient endpoints(std::vector<Endpoint> eps, ClientPolicy policy = {});

  enum class Breaker { kClosed, kOpen, kHalfOpen };
  static const char* breaker_name(Breaker b);

  /// Like Client::study, plus the policy: retries (with jittered backoff)
  /// and failover on kQueueFull / kDraining rejects, connect failures, and
  /// non-timeout transport errors. Throws CircuitOpenError when every
  /// endpoint's breaker is open, TimeoutError on a tripped socket deadline
  /// (never retried — the study may still be executing), hps::Error
  /// otherwise. `on_record` is invoked only after the exchange succeeded
  /// (records are buffered), so a mid-stream failover cannot deliver
  /// duplicate lines.
  Client::StudyReply study(const Request& req,
                           const std::function<void(const std::string&)>& on_record = {});

  /// One plain connection under the policy's socket deadline — for ping /
  /// stats / metrics / shutdown, which have no retry semantics. Tries each
  /// endpoint once, starting at the current preference.
  Client connect_once();

  /// Breaker state of the currently preferred endpoint.
  Breaker breaker_state() const;
  /// Connect+exchange attempts the last study() spent (≥ 1).
  int last_attempts() const { return last_attempts_; }
  /// Times the preference moved to a different endpoint after a failure.
  int failovers() const { return failovers_; }
  /// kDraining rejects that were retried (rolling-restart absorption).
  int draining_retries() const { return draining_retries_; }
  std::size_t endpoint_count() const { return endpoints_.size(); }

 private:
  struct BreakerState {
    int consecutive_failures = 0;
    bool open = false;
    std::int64_t open_until_ns = 0;  ///< steady-clock; breaker probe time
  };

  ResilientClient(std::vector<Endpoint> eps, ClientPolicy policy);
  Client connect_raw(std::size_t idx);
  void on_transport_failure(std::size_t idx);
  void on_transport_success(std::size_t idx);
  double backoff_delay_ms(int attempt);
  /// First usable endpoint starting at the preference: closed breaker, or
  /// open with an elapsed cooldown (half-open probe). npos when all open.
  std::size_t pick_endpoint(bool& half_open) const;
  /// Move the preference to the next usable endpoint after `idx`; returns
  /// true (counting a failover) when it actually moved.
  bool advance_from(std::size_t idx);

  std::vector<Endpoint> endpoints_;
  ClientPolicy policy_;
  std::vector<BreakerState> breakers_;  ///< parallel to endpoints_
  std::size_t current_ = 0;             ///< preferred endpoint index
  std::uint64_t jitter_state_ = 0;
  int last_attempts_ = 0;
  int failovers_ = 0;
  int draining_retries_ = 0;
};

}  // namespace hps::serve
