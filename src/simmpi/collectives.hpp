// Decomposition of MPI collectives into point-to-point schedules, following
// the algorithm repertoire of Thakur & Gropp ("Improving the Performance of
// MPI Collective Communication on Switched Networks"): dissemination
// barrier, binomial-tree bcast/reduce/gather/scatter, recursive-doubling
// allreduce (with the power-of-two fold-in for odd sizes), ring allgather,
// and pairwise-exchange alltoall(v).
//
// The expansion is per rank: given a collective descriptor it emits the
// ordered sub-operations that rank executes. All ranks expanding the same
// descriptor produce a globally deadlock-free, mutually matching schedule
// (each Isend is eventually matched by the peer's Recv in the same round).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "trace/event.hpp"

namespace hps::simmpi {

/// One step of a rank's collective schedule.
struct SubOp {
  enum class Kind : std::uint8_t {
    kIsend,    ///< nonblocking send to `peer`
    kRecv,     ///< blocking receive from `peer`
    kWaitOne,  ///< complete the oldest outstanding collective Isend
    kWaitAll,  ///< complete every outstanding collective Isend
  };
  Kind kind = Kind::kIsend;
  Rank peer = -1;        ///< peer *index within the communicator*
  std::uint64_t bytes = 0;
};

/// Algorithm selection knobs (the ablation bench varies these).
struct CollectiveAlgos {
  enum class Alltoall { kPairwise, kBruck };
  enum class Allgather { kRing, kRecursiveDoubling };
  Alltoall alltoall = Alltoall::kPairwise;
  Allgather allgather = Allgather::kRing;
  /// Allreduce switches from recursive doubling to Rabenseifner
  /// (reduce-scatter + allgather) above this payload size.
  std::uint64_t allreduce_rabenseifner_threshold = 32 * KiB;
};

/// Descriptor of one collective instance as seen by rank `me` (an index in
/// [0, n) within the communicator, *not* a world rank).
struct CollectiveDesc {
  trace::OpType op = trace::OpType::kBarrier;
  int n = 0;     ///< communicator size
  int me = 0;    ///< my index within the communicator
  int root = 0;  ///< root index for rooted collectives
  std::uint64_t bytes = 0;  ///< payload semantics follow trace::OpType docs
  /// Alltoallv: bytes I send to each member (size n). Empty otherwise.
  std::span<const std::uint64_t> send_sizes;
  /// Alltoallv: bytes each member sends to me (size n). Empty otherwise.
  std::span<const std::uint64_t> recv_sizes;
};

/// Expand the collective into `out` (cleared first).
void expand_collective(const CollectiveDesc& d, const CollectiveAlgos& algos,
                       std::vector<SubOp>& out);

/// Number of p2p rounds of the dissemination barrier for n ranks (tests).
int dissemination_rounds(int n);

}  // namespace hps::simmpi
