#include "simmpi/replayer.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "obs/timeline.hpp"
#include "simnet/flow_model.hpp"
#include "simnet/packet_model.hpp"
#include "simnet/packetflow_model.hpp"

namespace hps::simmpi {

namespace {
/// Collective request ids live above this base so they never collide with
/// trace-recorded (app) request ids, which are small non-negative ints.
constexpr std::int64_t kCollReqBase = std::int64_t{1} << 40;
constexpr bool is_coll_req(std::int64_t req) { return req >= kCollReqBase; }
}  // namespace

const char* net_model_name(NetModelKind k) {
  switch (k) {
    case NetModelKind::kPacket: return "packet";
    case NetModelKind::kFlow: return "flow";
    case NetModelKind::kPacketFlow: return "packet-flow";
  }
  return "?";
}

Replayer::Replayer(const trace::Trace& t, const machine::MachineInstance& m, NetModelKind kind,
                   const ReplayConfig& cfg)
    : trace_(t), machine_(m), cfg_(cfg), kind_(kind) {
  HPS_CHECK(t.nranks() == m.nranks());
  eng_.set_recorder(cfg_.timeline);
  eng_.set_cancel(cfg_.cancel);

  simnet::NetConfig nc;
  const auto& net = m.config().net;
  nc.message_bandwidth = net.link_bandwidth;  // the per-rank Hockney rate
  nc.link_bandwidth = net.link_bandwidth * net.link_multiplier;
  nc.injection_bandwidth = net.injection_bandwidth * net.injection_multiplier;
  nc.software_overhead = m.software_overhead();
  nc.hop_latency = m.hop_latency();
  nc.packet_size = kind == NetModelKind::kPacketFlow ? cfg_.packetflow_packet_size
                                                     : cfg_.packet_size;
  switch (kind) {
    case NetModelKind::kPacket:
      net_ = std::make_unique<simnet::PacketModel>(eng_, m.topology(), nc, *this);
      break;
    case NetModelKind::kFlow:
      net_ = std::make_unique<simnet::FlowModel>(eng_, m.topology(), nc, *this);
      break;
    case NetModelKind::kPacketFlow:
      net_ = std::make_unique<simnet::PacketFlowModel>(eng_, m.topology(), nc, *this);
      break;
  }

  ranks_.resize(static_cast<std::size_t>(t.nranks()));

  comm_index_.resize(t.num_comms());
  for (CommId c = 0; c < static_cast<CommId>(t.num_comms()); ++c) {
    auto& idx = comm_index_[static_cast<std::size_t>(c)];
    idx.assign(static_cast<std::size_t>(t.nranks()), -1);
    const auto& members = t.comm(c);
    for (std::size_t i = 0; i < members.size(); ++i)
      idx[static_cast<std::size_t>(members[i])] = static_cast<std::int32_t>(i);
  }

  a2av_aux_.resize(static_cast<std::size_t>(t.nranks()));
  for (Rank r = 0; r < t.nranks(); ++r) {
    for (const auto& e : t.rank(r).events)
      if (e.type == trace::OpType::kAlltoallv)
        a2av_aux_[static_cast<std::size_t>(r)][e.comm].push_back(e.aux);
  }
}

Replayer::~Replayer() = default;

void Replayer::schedule_advance(Rank r, SimTime at) {
  eng_.schedule_at(at, this, static_cast<std::uint64_t>(r), 0);
}

void Replayer::handle(des::Engine&, std::uint64_t a, std::uint64_t) {
  advance(static_cast<Rank>(a));
}

void Replayer::begin_block(RankState& st, Block b, std::int64_t req) {
  st.block = b;
  st.block_req = req;
  st.block_since = eng_.now();
}

void Replayer::unblock(Rank r) {
  RankState& st = ranks_[static_cast<std::size_t>(r)];
  const SimTime now = eng_.now();
  const SimTime blocked = now - st.block_since;
  if (blocked > 0) {
    st.blocked_total += blocked;
    // Attribute the blocked interval: blocking sends/receives issued from a
    // collective sub-schedule count as collective time, as do waits on
    // collective-internal requests; plain request waits and app-level
    // WaitAll count as wait time.
    const bool in_coll = !st.subops.empty();
    double* bucket = &components_.wait_ns;
    auto kind = obs::IntervalKind::kWait;
    switch (st.block) {
      case Block::kRecv:
        bucket = in_coll ? &components_.collective_ns : &components_.p2p_ns;
        kind = in_coll ? obs::IntervalKind::kCollective : obs::IntervalKind::kRecv;
        break;
      case Block::kSendRdv:
        bucket = in_coll ? &components_.collective_ns : &components_.p2p_ns;
        kind = in_coll ? obs::IntervalKind::kCollective : obs::IntervalKind::kRendezvous;
        break;
      case Block::kWaitReq:
        if (is_coll_req(st.block_req)) {
          bucket = &components_.collective_ns;
          kind = obs::IntervalKind::kCollective;
        }
        break;
      case Block::kWaitAllColl:
        bucket = &components_.collective_ns;
        kind = obs::IntervalKind::kCollective;
        break;
      case Block::kWaitAllApp:
      case Block::kNone:
        break;
    }
    *bucket += static_cast<double>(blocked);
    if (obs::TimelineRecorder* rec = eng_.recorder())
      rec->record(r, kind, st.block_since, now);
  }
  st.block = Block::kNone;
  st.block_req = -1;
  schedule_advance(r, now);
}

void Replayer::advance(Rank r) {
  RankState& st = ranks_[static_cast<std::size_t>(r)];
  HPS_CHECK(!st.done && st.block == Block::kNone);
  const auto& events = trace_.rank(r).events;
  while (true) {
    if (st.sub_pc < st.subops.size()) {
      const SubOp op = st.subops[st.sub_pc];
      ++st.sub_pc;  // consume before exec so an unblock resumes *after* it
      if (!exec_subop(r, st, op)) return;
      continue;
    }
    if (!st.subops.empty()) {
      HPS_CHECK_MSG(st.coll_isends_empty(), "collective ended with unwaited isends");
      st.subops.clear();
      st.sub_pc = 0;
    }
    if (st.pc >= events.size()) {
      st.done = true;
      st.finish = eng_.now();
      ++finished_;
      return;
    }
    const trace::Event& e = events[st.pc];
    ++st.pc;
    if (!exec_event(r, st, e)) return;
  }
}

bool Replayer::exec_event(Rank r, RankState& st, const trace::Event& e) {
  using trace::OpType;
  const SimTime call_o = machine_.software_overhead();
  switch (e.type) {
    case OpType::kCompute: {
      const auto dur = static_cast<SimTime>(static_cast<double>(e.duration) *
                                            cfg_.compute_scale);
      if (dur <= 0) return true;
      st.compute_total += dur;
      if (obs::TimelineRecorder* rec = eng_.recorder())
        rec->record(r, obs::IntervalKind::kCompute, eng_.now(), eng_.now() + dur);
      schedule_advance(r, eng_.now() + dur);
      return false;
    }
    case OpType::kSend:
      do_send(r, st, e.peer, e.tag, e.bytes, /*blocking=*/true, -1);
      if (st.block != Block::kNone) return false;
      schedule_advance(r, eng_.now() + call_o);
      return false;
    case OpType::kIsend: {
      const std::int64_t req = e.request;
      st.pending_reqs[static_cast<std::uint64_t>(req)] = 1;
      ++st.pending_app;
      do_send(r, st, e.peer, e.tag, e.bytes, /*blocking=*/false, req);
      schedule_advance(r, eng_.now() + call_o);
      return false;
    }
    case OpType::kRecv:
      do_recv(r, st, e.peer, e.tag, /*blocking=*/true, -1);
      return st.block == Block::kNone;
    case OpType::kIrecv: {
      const std::int64_t req = e.request;
      st.pending_reqs[static_cast<std::uint64_t>(req)] = 1;
      ++st.pending_app;
      do_recv(r, st, e.peer, e.tag, /*blocking=*/false, req);
      return true;
    }
    case OpType::kWait:
      return do_wait(r, st, e.request);
    case OpType::kWaitAll:
      if (st.pending_app == 0) return true;
      begin_block(st, Block::kWaitAllApp);
      return false;
    default:
      HPS_CHECK(trace::is_collective(e.type));
      begin_collective(r, st, e);
      return true;  // sub-operations take over
  }
}

bool Replayer::exec_subop(Rank r, RankState& st, const SubOp& op) {
  const SimTime call_o = machine_.software_overhead();
  const auto& members = *st.coll_members;
  switch (op.kind) {
    case SubOp::Kind::kIsend: {
      const Rank dst = members[static_cast<std::size_t>(op.peer)];
      const std::int64_t req = new_coll_req(st);
      st.coll_isends.push_back(req);
      do_send(r, st, dst, st.coll_tag, op.bytes, /*blocking=*/false, req);
      schedule_advance(r, eng_.now() + call_o);
      return false;
    }
    case SubOp::Kind::kRecv: {
      const Rank src = members[static_cast<std::size_t>(op.peer)];
      do_recv(r, st, src, st.coll_tag, /*blocking=*/true, -1);
      return st.block == Block::kNone;
    }
    case SubOp::Kind::kWaitOne: {
      HPS_CHECK_MSG(!st.coll_isends_empty(), "WaitOne with no outstanding collective isend");
      const std::int64_t req = st.coll_isends[st.coll_head++];
      return do_wait(r, st, req);
    }
    case SubOp::Kind::kWaitAll:
      st.coll_isends.clear();
      st.coll_head = 0;
      if (st.pending_coll == 0) return true;
      begin_block(st, Block::kWaitAllColl);
      return false;
  }
  return true;
}

bool Replayer::do_wait(Rank r, RankState& st, std::int64_t req) {
  (void)r;
  if (st.pending_reqs.find(static_cast<std::uint64_t>(req)) == nullptr)
    return true;  // already completed
  begin_block(st, Block::kWaitReq, req);
  return false;
}

std::int64_t Replayer::new_coll_req(RankState& st) {
  const std::int64_t req = kCollReqBase + next_coll_req_++;
  st.pending_reqs[static_cast<std::uint64_t>(req)] = 1;
  ++st.pending_coll;
  return req;
}

std::uint32_t Replayer::match_of(const detail::MatchKey& key) {
  // The mapped value is slot + 1, so the map's value-initialized zero means
  // "no record yet" and the find-or-insert stays a single probe.
  std::uint32_t& mapped = match_slot_[key];
  if (mapped == 0) {
    std::uint32_t slot;
    if (!match_free_.empty()) {
      slot = match_free_.back();
      match_free_.pop_back();
      match_pool_[slot] = MatchState{};
    } else {
      slot = static_cast<std::uint32_t>(match_pool_.size());
      match_pool_.emplace_back();
    }
    mapped = slot + 1;
  }
  return mapped - 1;
}

void Replayer::do_send(Rank r, RankState& st, Rank dst, Tag tag, std::uint64_t bytes,
                       bool blocking, std::int64_t req) {
  const std::uint32_t seq = st.send_seq[stream_key(dst, tag)]++;
  const detail::MatchKey key{r, dst, tag, seq};
  const std::uint32_t slot = match_of(key);
  MatchState& ms = match_pool_[slot];
  ms.send_bytes = bytes;
  if (bytes <= cfg_.eager_threshold) {
    // Eager: the payload leaves immediately; the send completes locally.
    ms.sender_done = true;
    if (obs::TimelineRecorder* rec = eng_.recorder())
      rec->record(r, obs::IntervalKind::kSend, eng_.now(),
                  eng_.now() + machine_.software_overhead(), bytes);
    inject(MsgKind::kEagerData, key, slot, r, dst, bytes);
    if (req >= 0) complete_request(r, req);
  } else {
    // Rendezvous: request-to-send now; data travels after the CTS arrives.
    rdv_sends_.add();
    ms.is_rdv = true;
    inject(MsgKind::kRts, key, slot, r, dst, 0);
    if (blocking) {
      begin_block(st, Block::kSendRdv);
    } else {
      ms.send_req = req;
    }
  }
}

void Replayer::do_recv(Rank r, RankState& st, Rank src, Tag tag, bool blocking,
                       std::int64_t req) {
  const std::uint32_t seq = st.recv_seq[stream_key(src, tag)]++;
  const detail::MatchKey key{src, r, tag, seq};
  const std::uint32_t slot = match_of(key);
  MatchState& ms = match_pool_[slot];
  ms.recv_posted = true;
  ms.recv_blocking = blocking;
  ms.recv_req = req;
  if (ms.data_delivered) {
    // The message was waiting in the unexpected queue; consume it now.
    complete_recv(key, ms);
    maybe_erase(key, slot, ms);
    return;
  }
  if (ms.is_rdv && ms.rts_arrived && !ms.cts_sent) send_cts(key, slot);
  if (blocking) begin_block(st, Block::kRecv);
}

void Replayer::inject(MsgKind kind, const detail::MatchKey& key, std::uint32_t slot,
                      Rank from, Rank to, std::uint64_t bytes) {
  std::uint32_t id;
  if (!msg_free_.empty()) {
    id = msg_free_.back();
    msg_free_.pop_back();
  } else {
    msg_pool_.emplace_back();
    id = static_cast<std::uint32_t>(msg_pool_.size() - 1);
  }
  msg_pool_[id] = {kind, key, slot};
  net_->inject(id, node_of(from), node_of(to), bytes);
}

void Replayer::send_cts(const detail::MatchKey& key, std::uint32_t slot) {
  match_pool_[slot].cts_sent = true;
  inject(MsgKind::kCts, key, slot, key.dst, key.src, 0);
}

void Replayer::message_delivered(simnet::MsgId id, SimTime /*at*/) {
  const MsgRec rec = msg_pool_[static_cast<std::size_t>(id)];
  msg_free_.push_back(static_cast<std::uint32_t>(id));
  // The record is reached through the slot carried by the message itself;
  // records outlive every message in flight for them (see match_slot_), so
  // no lookup — and no existence check — is needed here.
  MatchState& ms = match_pool_[rec.slot];
  switch (rec.kind) {
    case MsgKind::kRts:
      ms.is_rdv = true;
      ms.rts_arrived = true;
      if (ms.recv_posted && !ms.cts_sent) send_cts(rec.key, rec.slot);
      break;
    case MsgKind::kCts:
      // Arrived back at the sender: ship the payload.
      inject(MsgKind::kRdvData, rec.key, rec.slot, rec.key.src, rec.key.dst, ms.send_bytes);
      break;
    case MsgKind::kEagerData:
      ms.data_delivered = true;
      if (ms.recv_posted && !ms.recv_done) complete_recv(rec.key, ms);
      maybe_erase(rec.key, rec.slot, ms);
      break;
    case MsgKind::kRdvData:
      ms.data_delivered = true;
      complete_rdv_sender(rec.key, ms);
      if (ms.recv_posted && !ms.recv_done) complete_recv(rec.key, ms);
      maybe_erase(rec.key, rec.slot, ms);
      break;
  }
}

void Replayer::complete_recv(const detail::MatchKey& key, MatchState& ms) {
  ms.recv_done = true;
  msgs_matched_.add();
  RankState& st = ranks_[static_cast<std::size_t>(key.dst)];
  if (ms.recv_req >= 0) {
    complete_request(key.dst, ms.recv_req);
  } else if (ms.recv_blocking && st.block == Block::kRecv) {
    unblock(key.dst);
  }
}

void Replayer::complete_rdv_sender(const detail::MatchKey& key, MatchState& ms) {
  if (ms.sender_done) return;
  ms.sender_done = true;
  RankState& st = ranks_[static_cast<std::size_t>(key.src)];
  if (ms.send_req >= 0) {
    complete_request(key.src, ms.send_req);
  } else if (st.block == Block::kSendRdv) {
    unblock(key.src);
  }
}

void Replayer::complete_request(Rank r, std::int64_t req) {
  RankState& st = ranks_[static_cast<std::size_t>(r)];
  const bool erased = st.pending_reqs.erase(static_cast<std::uint64_t>(req));
  HPS_CHECK_MSG(erased, "completing unknown request");
  if (is_coll_req(req))
    --st.pending_coll;
  else
    --st.pending_app;

  switch (st.block) {
    case Block::kWaitReq:
      if (st.block_req == req) unblock(r);
      break;
    case Block::kWaitAllApp:
      if (st.pending_app == 0) unblock(r);
      break;
    case Block::kWaitAllColl:
      if (st.pending_coll == 0) unblock(r);
      break;
    default:
      break;
  }
}

void Replayer::maybe_erase(const detail::MatchKey& key, std::uint32_t slot,
                           const MatchState& ms) {
  // Only a fully completed record pays the erase probe; its slot goes back
  // on the free list for the next match_of().
  if (ms.recv_done && ms.sender_done && ms.data_delivered) {
    match_slot_.erase(key);
    match_free_.push_back(slot);
  }
}

void Replayer::begin_collective(Rank r, RankState& st, const trace::Event& e) {
  collectives_.add();
  const auto& members = trace_.comm(e.comm);
  const std::int32_t me = comm_index_[static_cast<std::size_t>(e.comm)][static_cast<std::size_t>(r)];
  HPS_CHECK_MSG(me >= 0, "rank not a member of collective communicator");

  const std::uint32_t inst = st.coll_count[static_cast<std::uint32_t>(e.comm)]++;
  HPS_CHECK_MSG(inst < (1u << 20) && e.comm < (1 << 10),
                "collective tag space exhausted");
  const Tag tag = -(1 + (e.comm << 20) + static_cast<Tag>(inst));

  CollectiveDesc d;
  d.op = e.type;
  d.n = static_cast<int>(members.size());
  d.me = me;
  d.bytes = e.bytes;
  if (trace::is_rooted(e.type)) {
    const std::int32_t root =
        comm_index_[static_cast<std::size_t>(e.comm)][static_cast<std::size_t>(e.peer)];
    HPS_CHECK_MSG(root >= 0, "collective root outside communicator");
    d.root = root;
  }
  if (e.type == trace::OpType::kAlltoallv) {
    const std::uint32_t ainst = st.a2av_count[static_cast<std::uint32_t>(e.comm)]++;
    const auto& my_vlist = trace_.rank(r).vlists[static_cast<std::size_t>(e.aux)];
    d.send_sizes = my_vlist;
    recv_sizes_scratch_.resize(members.size());
    for (std::size_t j = 0; j < members.size(); ++j) {
      const Rank peer = members[j];
      const auto& aux_list = a2av_aux_[static_cast<std::size_t>(peer)].at(e.comm);
      HPS_CHECK_MSG(ainst < aux_list.size(), "alltoallv instance mismatch across ranks");
      const auto& peer_vlist =
          trace_.rank(peer).vlists[static_cast<std::size_t>(aux_list[ainst])];
      recv_sizes_scratch_[j] = peer_vlist[static_cast<std::size_t>(me)];
    }
    d.recv_sizes = recv_sizes_scratch_;
  }

  expand_collective(d, cfg_.algos, st.subops);
  st.sub_pc = 0;
  st.coll_members = &members;
  st.coll_tag = tag;
}

ReplayResult Replayer::run() {
  const auto wall_start = std::chrono::steady_clock::now();
  for (Rank r = 0; r < trace_.nranks(); ++r) schedule_advance(r, 0);
  try {
    eng_.run();
  } catch (const robust::CancelledError& e) {
    // Budget trip: report how far the replay got. Rank finish times are
    // unreliable mid-flight, so only the aggregate decomposition, virtual
    // time reached, and engine/network statistics are harvested.
    ReplayResult partial;
    partial.total_time = eng_.now();
    partial.components = components_;  // blocked intervals attributed so far
    for (const RankState& st : ranks_)
      partial.components.compute_ns += static_cast<double>(st.compute_total);
    partial.engine = eng_.stats();
    partial.net = net_->stats();
    partial.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
    throw ReplayCancelled(e, std::move(partial));
  }

  if (finished_ != trace_.nranks()) {
    std::string msg = "replay deadlock in " + trace_.meta().app + ": ";
    int shown = 0;
    for (Rank r = 0; r < trace_.nranks() && shown < 4; ++r) {
      const RankState& st = ranks_[static_cast<std::size_t>(r)];
      if (st.done) continue;
      msg += "rank " + std::to_string(r) + " blocked(state=" +
             std::to_string(static_cast<int>(st.block)) + ") at pc " + std::to_string(st.pc) +
             "; ";
      ++shown;
    }
    throw DeadlockError(msg);
  }

  ReplayResult res;
  res.rank_finish.reserve(ranks_.size());
  res.rank_comm.reserve(ranks_.size());
  SimTime comm_sum = 0;
  for (const RankState& st : ranks_) {
    res.rank_finish.push_back(st.finish);
    const SimTime comm = st.finish - st.compute_total;
    res.rank_comm.push_back(comm);
    comm_sum += comm;
    res.total_time = std::max(res.total_time, st.finish);
    // Whatever part of a rank's lifetime is neither compute nor a blocked
    // interval is software overhead and scheduling gaps: the residual bucket.
    components_.compute_ns += static_cast<double>(st.compute_total);
    components_.other_ns +=
        static_cast<double>(st.finish - st.compute_total - st.blocked_total);
  }
  res.comm_time_mean = comm_sum / static_cast<SimTime>(ranks_.size());
  res.components = components_;
  res.engine = eng_.stats();
  res.net = net_->stats();
  res.link_bytes = net_->link_bytes();
  const auto wall_end = std::chrono::steady_clock::now();
  res.wall_seconds = std::chrono::duration<double>(wall_end - wall_start).count();
  flush_scheme_telemetry(res);
  return res;
}

namespace {

/// Handles into the global registry for one scheme's `scheme.<model>.*`
/// metrics. Resolved once per model kind — handle lookup by string would
/// otherwise rebuild ~15 keys per finished run.
struct SchemeMetrics {
  telemetry::Counter runs;
  telemetry::Counter des_events_processed;
  telemetry::Counter des_events_scheduled;
  telemetry::Counter net_messages;
  telemetry::Counter net_bytes;
  telemetry::Counter net_packets;
  telemetry::Counter net_rate_updates;
  telemetry::Counter net_ripple_iterations;
  telemetry::Counter net_queue_stalls;
  telemetry::Counter collectives;
  telemetry::Counter msgs_matched;
  telemetry::Counter rendezvous;
  telemetry::Gauge max_queue_depth;
  telemetry::Gauge net_max_active;
  telemetry::Histogram wall_seconds;

  explicit SchemeMetrics(NetModelKind k)
      : SchemeMetrics(std::string("scheme.") + net_model_name(k) + ".") {}
  explicit SchemeMetrics(const std::string& p)
      : runs(telemetry::Registry::global().counter(p + "runs")),
        des_events_processed(telemetry::Registry::global().counter(p + "des_events_processed")),
        des_events_scheduled(telemetry::Registry::global().counter(p + "des_events_scheduled")),
        net_messages(telemetry::Registry::global().counter(p + "net_messages")),
        net_bytes(telemetry::Registry::global().counter(p + "net_bytes")),
        net_packets(telemetry::Registry::global().counter(p + "net_packets")),
        net_rate_updates(telemetry::Registry::global().counter(p + "net_rate_updates")),
        net_ripple_iterations(
            telemetry::Registry::global().counter(p + "net_ripple_iterations")),
        net_queue_stalls(telemetry::Registry::global().counter(p + "net_queue_stalls")),
        collectives(telemetry::Registry::global().counter(p + "collectives")),
        msgs_matched(telemetry::Registry::global().counter(p + "msgs_matched")),
        rendezvous(telemetry::Registry::global().counter(p + "rendezvous")),
        max_queue_depth(telemetry::Registry::global().gauge(p + "max_queue_depth")),
        net_max_active(telemetry::Registry::global().gauge(p + "net_max_active")),
        wall_seconds(telemetry::Registry::global().histogram(p + "wall_seconds",
                                                             telemetry::duration_bounds())) {}

  static const SchemeMetrics& get(NetModelKind k) {
    static const SchemeMetrics packet{NetModelKind::kPacket};
    static const SchemeMetrics flow{NetModelKind::kFlow};
    static const SchemeMetrics packetflow{NetModelKind::kPacketFlow};
    switch (k) {
      case NetModelKind::kPacket:
        return packet;
      case NetModelKind::kFlow:
        return flow;
      default:
        return packetflow;
    }
  }
};

}  // namespace

void Replayer::flush_scheme_telemetry(const ReplayResult& res) {
  auto& reg = telemetry::Registry::global();
  if (!reg.enabled()) return;
  const SchemeMetrics& m = SchemeMetrics::get(kind_);
  m.runs.add(1);
  m.des_events_processed.add(res.engine.events_processed);
  m.des_events_scheduled.add(res.engine.events_scheduled);
  m.net_messages.add(res.net.messages);
  m.net_bytes.add(res.net.bytes);
  m.net_packets.add(res.net.packets);
  m.net_rate_updates.add(res.net.rate_updates);
  m.net_ripple_iterations.add(res.net.ripple_iterations);
  m.net_queue_stalls.add(res.net.queue_events);
  m.collectives.add(collectives_.value());
  m.msgs_matched.add(msgs_matched_.value());
  m.rendezvous.add(rdv_sends_.value());
  m.max_queue_depth.record(res.engine.max_queue_depth);
  m.net_max_active.record(res.net.max_active);
  m.wall_seconds.observe(res.wall_seconds);
  collectives_.reset();
  msgs_matched_.reset();
  rdv_sends_.reset();
}

ReplayResult replay_trace(const trace::Trace& t, const machine::MachineInstance& m,
                          NetModelKind kind, const ReplayConfig& cfg) {
  Replayer rp(t, m, kind, cfg);
  return rp.run();
}

}  // namespace hps::simmpi
