// Trace replay on a simulated network (the SST/Macro-style off-line
// simulation of the paper's §II-A).
//
// Each trace rank is a state machine driven by the discrete-event engine.
// Computation events advance the rank's clock by the measured interval
// (optionally scaled); communication events are executed through a network
// model with full MPI semantics:
//   * eager protocol for messages at or below the threshold (fire and
//     forget), rendezvous (RTS -> CTS -> data, all through the network) above;
//   * FIFO per-(source, destination, tag) matching with posted/unexpected
//     handling, via per-stream sequence numbers;
//   * nonblocking operations with request completion and Wait/WaitAll;
//   * collectives decomposed into point-to-point schedules (collectives.hpp)
//     executed through the same network, so they create real contention.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/flat_hash.hpp"
#include "common/units.hpp"
#include "des/engine.hpp"
#include "machine/machine.hpp"
#include "obs/components.hpp"
#include "robust/cancel.hpp"
#include "simmpi/collectives.hpp"
#include "simnet/network.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/trace.hpp"

namespace hps::obs {
class TimelineRecorder;
}

namespace hps::simmpi {

/// Which network model to replay on.
enum class NetModelKind { kPacket, kFlow, kPacketFlow };

const char* net_model_name(NetModelKind k);

struct ReplayConfig {
  /// Messages <= this use the eager protocol; larger ones use rendezvous.
  std::uint64_t eager_threshold = 8 * KiB;
  CollectiveAlgos algos;
  /// Scale factor on measured compute intervals (models faster/slower CPUs).
  double compute_scale = 1.0;
  /// Packet size for the packet model (SST 3.0-style fine packets).
  std::uint64_t packet_size = 1 * KiB;
  /// Packet size for the hybrid packet-flow model (coarse, 1-8 KB per the
  /// SST/Macro guidance; 4 KB default).
  std::uint64_t packetflow_packet_size = 4 * KiB;
  /// Optional virtual-time timeline sink (not owned). When set, the replayer
  /// and the network model record per-rank/per-link intervals into it.
  obs::TimelineRecorder* timeline = nullptr;
  /// Optional cooperative budget/cancel token (not owned). The replayer hands
  /// it to its DES engine; a trip surfaces as ReplayCancelled carrying the
  /// partial result accumulated up to the cancellation point.
  robust::CancelToken* cancel = nullptr;
};

struct ReplayResult {
  SimTime total_time = 0;      ///< max over ranks of finish time
  SimTime comm_time_mean = 0;  ///< mean over ranks of (finish - compute)
  std::vector<SimTime> rank_finish;
  std::vector<SimTime> rank_comm;
  des::EngineStats engine;
  simnet::NetStats net;
  /// Bytes carried per directed fabric link (hotspot telemetry).
  std::vector<std::uint64_t> link_bytes;
  /// Virtual-time decomposition summed over ranks (compute / p2p /
  /// collective / wait / residual).
  obs::ComponentTimes components;
  double wall_seconds = 0;  ///< host wall-clock spent replaying
};

/// Replay `t` on machine `m` with the given network model. Throws
/// hps::DeadlockError when the calendar drains with unfinished ranks,
/// hps::Error on other malformed traces (bad matching), and ReplayCancelled
/// when cfg.cancel trips mid-run.
ReplayResult replay_trace(const trace::Trace& t, const machine::MachineInstance& m,
                          NetModelKind kind, const ReplayConfig& cfg = {});

/// A budget/cancel trip that carries the partial result accumulated up to the
/// cancellation point (virtual time reached, component decomposition, engine
/// and network statistics) so a budget-exceeded outcome still reports how far
/// the run got.
class ReplayCancelled : public robust::CancelledError {
 public:
  ReplayCancelled(const robust::CancelledError& cause, ReplayResult partial)
      : robust::CancelledError(cause), partial_(std::move(partial)) {}
  const ReplayResult& partial() const { return partial_; }

 private:
  ReplayResult partial_;
};

namespace detail {

/// Key identifying one logical message: the seq-th message from src to dst
/// with the given tag. Sequence numbers give MPI's FIFO matching order even
/// if the network delivers out of order.
struct MatchKey {
  Rank src = -1, dst = -1;
  Tag tag = 0;
  std::uint32_t seq = 0;
  bool operator==(const MatchKey&) const = default;
};

struct MatchKeyHash {
  std::size_t operator()(const MatchKey& k) const {
    std::uint64_t h = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.src)) << 32) |
                      static_cast<std::uint32_t>(k.dst);
    std::uint64_t h2 = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.tag)) << 32) |
                       k.seq;
    h ^= h2 * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ULL;
    return static_cast<std::size_t>(h ^ (h >> 31));
  }
};

}  // namespace detail

/// The replay engine. Exposed (rather than hidden in the .cpp) so tests can
/// drive smaller scenarios and inspect state; most callers use replay_trace.
class Replayer final : public simnet::MessageSink, private des::Handler {
 public:
  Replayer(const trace::Trace& t, const machine::MachineInstance& m, NetModelKind kind,
           const ReplayConfig& cfg);
  ~Replayer() override;

  /// Run to completion and harvest results. Throws on deadlock.
  ReplayResult run();

  // MessageSink:
  void message_delivered(simnet::MsgId id, SimTime at) override;

 private:
  enum class Block : std::uint8_t { kNone, kRecv, kSendRdv, kWaitReq, kWaitAllApp, kWaitAllColl };
  enum class MsgKind : std::uint8_t { kEagerData, kRts, kCts, kRdvData };

  struct MatchState {
    std::uint64_t send_bytes = 0;
    std::int64_t send_req = -1;  // rendezvous Isend request, -1 if blocking/none
    std::int64_t recv_req = -1;  // Irecv request, -1 if blocking/none
    bool is_rdv = false;
    bool rts_arrived = false;
    bool cts_sent = false;
    bool data_delivered = false;
    bool recv_posted = false;
    bool recv_blocking = false;
    bool recv_done = false;
    bool sender_done = false;
  };

  struct MsgRec {
    MsgKind kind = MsgKind::kEagerData;
    detail::MatchKey key;
    std::uint32_t slot = 0;  // index into match_pool_; skips the hash probe
  };

  struct RankState {
    std::size_t pc = 0;  // index into the rank's trace events
    std::vector<SubOp> subops;
    std::size_t sub_pc = 0;
    const std::vector<Rank>* coll_members = nullptr;
    Tag coll_tag = 0;
    // Collective isends in issue order, not yet waited: a vector drained by
    // a head cursor instead of a deque — the set is tiny and reset at every
    // collective, so one reused buffer beats the deque's paged storage.
    std::vector<std::int64_t> coll_isends;
    std::size_t coll_head = 0;
    bool coll_isends_empty() const { return coll_head == coll_isends.size(); }

    Block block = Block::kNone;
    std::int64_t block_req = -1;
    SimTime block_since = 0;    ///< virtual time the current block began
    SimTime blocked_total = 0;  ///< lifetime sum of blocked intervals

    // Outstanding request ids (used as a set; the mapped byte is ignored).
    FlatMap<std::uint64_t, std::uint8_t, Mix64Hash> pending_reqs;
    int pending_app = 0;   // count of pending app (trace) requests
    int pending_coll = 0;  // count of pending collective requests

    FlatMap<std::uint64_t, std::uint32_t, Mix64Hash> send_seq;  // (peer,tag) -> next seq
    FlatMap<std::uint64_t, std::uint32_t, Mix64Hash> recv_seq;
    // Collective / alltoallv instances per comm.
    FlatMap<std::uint64_t, std::uint32_t, Mix64Hash> coll_count;
    FlatMap<std::uint64_t, std::uint32_t, Mix64Hash> a2av_count;

    SimTime compute_total = 0;
    SimTime finish = -1;
    bool done = false;
  };

  // des::Handler: payload a = rank to advance.
  void handle(des::Engine& eng, std::uint64_t a, std::uint64_t b) override;

  void advance(Rank r);
  /// Execute one sub-operation; returns true if the rank may continue.
  bool exec_subop(Rank r, RankState& st, const SubOp& op);
  /// Execute one trace event; returns true if the rank may continue
  /// immediately (false: blocked or resumption already scheduled).
  bool exec_event(Rank r, RankState& st, const trace::Event& e);

  void do_send(Rank r, RankState& st, Rank dst, Tag tag, std::uint64_t bytes, bool blocking,
               std::int64_t req);
  void do_recv(Rank r, RankState& st, Rank src, Tag tag, bool blocking, std::int64_t req);
  bool do_wait(Rank r, RankState& st, std::int64_t req);
  void begin_collective(Rank r, RankState& st, const trace::Event& e);

  void inject(MsgKind kind, const detail::MatchKey& key, std::uint32_t slot, Rank from,
              Rank to, std::uint64_t bytes);
  void send_cts(const detail::MatchKey& key, std::uint32_t slot);
  void complete_request(Rank r, std::int64_t req);
  void complete_recv(const detail::MatchKey& key, MatchState& st);
  void complete_rdv_sender(const detail::MatchKey& key, MatchState& st);
  /// Find-or-create the match record for `key`; returns its match_pool_ slot.
  std::uint32_t match_of(const detail::MatchKey& key);
  void maybe_erase(const detail::MatchKey& key, std::uint32_t slot, const MatchState& ms);
  /// Enter a blocked state, stamping the block start for component
  /// attribution. All five block sites go through here.
  void begin_block(RankState& st, Block b, std::int64_t req = -1);
  void unblock(Rank r);
  void schedule_advance(Rank r, SimTime at);

  std::int64_t new_coll_req(RankState& st);

  /// Publish per-scheme counters (`scheme.<model>.*`) for this finished run
  /// into the global telemetry registry. No-op when telemetry is disabled.
  void flush_scheme_telemetry(const ReplayResult& res);

  NodeId node_of(Rank r) const { return machine_.node_of(r); }
  static std::uint64_t stream_key(Rank peer, Tag tag) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(peer)) << 32) |
           static_cast<std::uint32_t>(tag);
  }

  const trace::Trace& trace_;
  const machine::MachineInstance& machine_;
  ReplayConfig cfg_;
  NetModelKind kind_;

  // Single-threaded tallies, published via flush_scheme_telemetry().
  telemetry::LocalCounter collectives_;   ///< collectives decomposed to p2p
  telemetry::LocalCounter msgs_matched_;  ///< receives matched to a sender
  telemetry::LocalCounter rdv_sends_;     ///< sends over the eager threshold

  des::Engine eng_;
  std::unique_ptr<simnet::NetworkModel> net_;

  std::vector<RankState> ranks_;
  // Match records live in a recycled pool; the map only resolves key -> slot
  // (stored as slot + 1 so the map's value-initialized state means "new").
  // In-flight network messages carry the slot in their MsgRec, so a delivery
  // reaches its record with no hash probe at all. A record is erased only
  // when both sides and the data are done, so no in-flight message can
  // outlive its slot.
  FlatMap<detail::MatchKey, std::uint32_t, detail::MatchKeyHash> match_slot_;
  std::vector<MatchState> match_pool_;
  std::vector<std::uint32_t> match_free_;
  std::vector<MsgRec> msg_pool_;
  std::vector<std::uint32_t> msg_free_;

  // Pre-resolved communicator index maps: comm -> (world rank -> index, -1
  // if not a member).
  std::vector<std::vector<std::int32_t>> comm_index_;
  // Per rank, per comm: aux ids of its Alltoallv events in issue order.
  std::vector<std::unordered_map<CommId, std::vector<std::int32_t>>> a2av_aux_;

  std::int64_t next_coll_req_ = 0;
  Rank finished_ = 0;
  obs::ComponentTimes components_;  ///< accumulated at each unblock
  std::vector<std::uint64_t> recv_sizes_scratch_;
  std::vector<SubOp> subop_scratch_;
};

}  // namespace hps::simmpi
