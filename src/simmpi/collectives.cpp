#include "simmpi/collectives.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"

namespace hps::simmpi {

namespace {

using trace::OpType;

int pow2_floor(int n) { return 1 << (std::bit_width(static_cast<unsigned>(n)) - 1); }
int pow2_ceil(int n) { return static_cast<int>(std::bit_ceil(static_cast<unsigned>(n))); }

void isend(std::vector<SubOp>& out, int peer, std::uint64_t bytes) {
  out.push_back({SubOp::Kind::kIsend, static_cast<Rank>(peer), bytes});
}
void recv(std::vector<SubOp>& out, int peer, std::uint64_t bytes) {
  out.push_back({SubOp::Kind::kRecv, static_cast<Rank>(peer), bytes});
}
void wait_one(std::vector<SubOp>& out) { out.push_back({SubOp::Kind::kWaitOne, -1, 0}); }
void wait_all(std::vector<SubOp>& out) { out.push_back({SubOp::Kind::kWaitAll, -1, 0}); }

/// Exchange with a partner: isend + recv + complete the isend. The standard
/// deadlock-free sendrecv building block of the doubling algorithms.
void exchange(std::vector<SubOp>& out, int peer, std::uint64_t send_bytes,
              std::uint64_t recv_bytes) {
  isend(out, peer, send_bytes);
  recv(out, peer, recv_bytes);
  wait_one(out);
}

/// Dissemination barrier (works for any n).
void barrier(const CollectiveDesc& d, std::vector<SubOp>& out) {
  for (int k = 1; k < d.n; k <<= 1) {
    isend(out, (d.me + k) % d.n, 0);
    recv(out, (d.me - k + d.n) % d.n, 0);
    wait_one(out);
  }
}

/// Binomial-tree helpers, in root-relative ("virtual") rank space.
/// Parent of vr > 0 is vr minus its lowest set bit; children of vr are
/// vr + m for power-of-two m below its lowest set bit (below 2^ceil for the
/// root), subject to vr + m < n.
int lsb_limit(int vr, int n) {
  return vr == 0 ? pow2_ceil(n) : (vr & -vr);
}

int to_comm_index(int vr, int root, int n) { return (vr + root) % n; }

void bcast(const CollectiveDesc& d, std::vector<SubOp>& out) {
  const int vr = (d.me - d.root + d.n) % d.n;
  const int limit = lsb_limit(vr, d.n);
  if (vr != 0) recv(out, to_comm_index(vr - limit, d.root, d.n), d.bytes);
  for (int m = limit >> 1; m >= 1; m >>= 1)
    if (vr + m < d.n) isend(out, to_comm_index(vr + m, d.root, d.n), d.bytes);
  wait_all(out);
}

void reduce(const CollectiveDesc& d, std::vector<SubOp>& out) {
  const int vr = (d.me - d.root + d.n) % d.n;
  const int limit = lsb_limit(vr, d.n);
  for (int m = 1; m < limit; m <<= 1)
    if (vr + m < d.n) recv(out, to_comm_index(vr + m, d.root, d.n), d.bytes);
  if (vr != 0) {
    isend(out, to_comm_index(vr - limit, d.root, d.n), d.bytes);
    wait_one(out);
  }
}

/// Subtree size (self + descendants) of virtual rank vr in the binomial tree.
std::uint64_t subtree(int vr, int n) {
  return static_cast<std::uint64_t>(std::min(lsb_limit(vr, n), n - vr));
}

void gather(const CollectiveDesc& d, std::vector<SubOp>& out) {
  const int vr = (d.me - d.root + d.n) % d.n;
  const int limit = lsb_limit(vr, d.n);
  for (int m = 1; m < limit; m <<= 1)
    if (vr + m < d.n)
      recv(out, to_comm_index(vr + m, d.root, d.n), d.bytes * subtree(vr + m, d.n));
  if (vr != 0) {
    isend(out, to_comm_index(vr - limit, d.root, d.n), d.bytes * subtree(vr, d.n));
    wait_one(out);
  }
}

void scatter(const CollectiveDesc& d, std::vector<SubOp>& out) {
  const int vr = (d.me - d.root + d.n) % d.n;
  const int limit = lsb_limit(vr, d.n);
  if (vr != 0) recv(out, to_comm_index(vr - limit, d.root, d.n), d.bytes * subtree(vr, d.n));
  for (int m = limit >> 1; m >= 1; m >>= 1)
    if (vr + m < d.n)
      isend(out, to_comm_index(vr + m, d.root, d.n), d.bytes * subtree(vr + m, d.n));
  wait_all(out);
}

/// Recursive-doubling allreduce with the power-of-two fold-in: ranks beyond
/// the largest power of two first fold their contribution into a partner,
/// sit out the doubling, and receive the final result afterwards.
void allreduce_recursive_doubling(const CollectiveDesc& d, std::vector<SubOp>& out) {
  const int p2 = pow2_floor(d.n);
  const int rem = d.n - p2;

  int newrank;
  if (d.me < 2 * rem) {
    if (d.me % 2 == 1) {
      isend(out, d.me - 1, d.bytes);
      wait_one(out);
      recv(out, d.me - 1, d.bytes);  // final result comes back at the end
      return;
    }
    recv(out, d.me + 1, d.bytes);
    newrank = d.me / 2;
  } else {
    newrank = d.me - rem;
  }

  auto real_rank = [&](int nr) { return nr < rem ? nr * 2 : nr + rem; };
  for (int mask = 1; mask < p2; mask <<= 1)
    exchange(out, real_rank(newrank ^ mask), d.bytes, d.bytes);

  if (d.me < 2 * rem) {
    isend(out, d.me + 1, d.bytes);
    wait_one(out);
  }
}

/// Rabenseifner allreduce: recursive-halving reduce-scatter followed by a
/// recursive-doubling allgather. Message sizes shrink/grow with distance.
void allreduce_rabenseifner(const CollectiveDesc& d, std::vector<SubOp>& out) {
  const int p2 = pow2_floor(d.n);
  const int rem = d.n - p2;

  int newrank;
  if (d.me < 2 * rem) {
    if (d.me % 2 == 1) {
      isend(out, d.me - 1, d.bytes);
      wait_one(out);
      recv(out, d.me - 1, d.bytes);
      return;
    }
    recv(out, d.me + 1, d.bytes);
    newrank = d.me / 2;
  } else {
    newrank = d.me - rem;
  }
  auto real_rank = [&](int nr) { return nr < rem ? nr * 2 : nr + rem; };
  auto chunk = [&](int distance) {
    const std::uint64_t b =
        d.bytes * static_cast<std::uint64_t>(distance) / static_cast<std::uint64_t>(p2);
    return d.bytes > 0 ? std::max<std::uint64_t>(b, 1) : 0;
  };
  // Reduce-scatter: halving distances, halving payloads.
  for (int mask = p2 >> 1; mask >= 1; mask >>= 1)
    exchange(out, real_rank(newrank ^ mask), chunk(mask), chunk(mask));
  // Allgather: doubling distances, doubling payloads.
  for (int mask = 1; mask < p2; mask <<= 1)
    exchange(out, real_rank(newrank ^ mask), chunk(mask), chunk(mask));

  if (d.me < 2 * rem) {
    isend(out, d.me + 1, d.bytes);
    wait_one(out);
  }
}

void allgather_ring(const CollectiveDesc& d, std::vector<SubOp>& out) {
  const int right = (d.me + 1) % d.n;
  const int left = (d.me - 1 + d.n) % d.n;
  for (int k = 0; k < d.n - 1; ++k) {
    isend(out, right, d.bytes);
    recv(out, left, d.bytes);
    wait_one(out);
  }
}

void allgather_recursive_doubling(const CollectiveDesc& d, std::vector<SubOp>& out) {
  // Power-of-two only; callers fall back to the ring otherwise.
  for (int mask = 1; mask < d.n; mask <<= 1)
    exchange(out, d.me ^ mask, d.bytes * static_cast<std::uint64_t>(mask),
             d.bytes * static_cast<std::uint64_t>(mask));
}

void alltoall_pairwise(const CollectiveDesc& d, std::vector<SubOp>& out) {
  for (int k = 1; k < d.n; ++k) {
    const int dst = (d.me + k) % d.n;
    const int src = (d.me - k + d.n) % d.n;
    isend(out, dst, d.bytes);
    recv(out, src, d.bytes);
    wait_one(out);
  }
}

/// Bruck alltoall: ceil(log2 n) rounds moving about half the payload each
/// round. Block bookkeeping is approximated with n/2 blocks per round, which
/// preserves the log-round volume profile that distinguishes Bruck from
/// pairwise in the ablation bench.
void alltoall_bruck(const CollectiveDesc& d, std::vector<SubOp>& out) {
  const std::uint64_t round_bytes =
      d.bytes * static_cast<std::uint64_t>(std::max(1, d.n / 2));
  for (int pof = 1; pof < d.n; pof <<= 1) {
    const int dst = (d.me - pof + d.n) % d.n;
    const int src = (d.me + pof) % d.n;
    isend(out, dst, round_bytes);
    recv(out, src, round_bytes);
    wait_one(out);
  }
}

/// Reduce-scatter via recursive halving (power-of-two fold-in as for
/// allreduce); each round exchanges half the remaining vector.
void reduce_scatter_halving(const CollectiveDesc& d, std::vector<SubOp>& out) {
  const int p2 = pow2_floor(d.n);
  const int rem = d.n - p2;
  int newrank;
  if (d.me < 2 * rem) {
    if (d.me % 2 == 1) {
      isend(out, d.me - 1, d.bytes);
      wait_one(out);
      recv(out, d.me - 1, std::max<std::uint64_t>(1, d.bytes / static_cast<unsigned>(d.n)));
      return;
    }
    recv(out, d.me + 1, d.bytes);
    newrank = d.me / 2;
  } else {
    newrank = d.me - rem;
  }
  auto real_rank = [&](int nr) { return nr < rem ? nr * 2 : nr + rem; };
  auto chunk = [&](int distance) {
    const std::uint64_t b =
        d.bytes * static_cast<std::uint64_t>(distance) / static_cast<std::uint64_t>(p2);
    return d.bytes > 0 ? std::max<std::uint64_t>(b, 1) : 0;
  };
  for (int mask = p2 >> 1; mask >= 1; mask >>= 1)
    exchange(out, real_rank(newrank ^ mask), chunk(mask), chunk(mask));
  if (d.me < 2 * rem) {
    // The folded-in odd partner receives its final 1/n block.
    isend(out, d.me + 1, std::max<std::uint64_t>(1, d.bytes / static_cast<unsigned>(d.n)));
    wait_one(out);
  }
}

/// Inclusive scan: the linear-pipeline algorithm (rank i receives the prefix
/// from i-1, combines, forwards to i+1). Latency-bound by design, which is
/// faithful to small-payload MPI_Scan implementations.
void scan_linear(const CollectiveDesc& d, std::vector<SubOp>& out) {
  if (d.me > 0) recv(out, d.me - 1, d.bytes);
  if (d.me + 1 < d.n) {
    isend(out, d.me + 1, d.bytes);
    wait_one(out);
  }
}

void alltoallv_pairwise(const CollectiveDesc& d, std::vector<SubOp>& out) {
  HPS_CHECK(static_cast<int>(d.send_sizes.size()) == d.n &&
            static_cast<int>(d.recv_sizes.size()) == d.n);
  // Self block stays local (no network traffic). Empty blocks move nothing:
  // the send side skips iff its block is zero, and the receive side skips
  // iff the (different) rank it hears from this round has a zero block for
  // it — both sides evaluate the same matrix entries, so the schedules
  // match globally.
  for (int k = 1; k < d.n; ++k) {
    const int dst = (d.me + k) % d.n;
    const int src = (d.me - k + d.n) % d.n;
    const std::uint64_t sb = d.send_sizes[static_cast<std::size_t>(dst)];
    const std::uint64_t rb = d.recv_sizes[static_cast<std::size_t>(src)];
    const bool sends = sb > 0;
    if (sends) isend(out, dst, sb);
    if (rb > 0) recv(out, src, rb);
    if (sends) wait_one(out);
  }
}

}  // namespace

int dissemination_rounds(int n) {
  int rounds = 0;
  for (int k = 1; k < n; k <<= 1) ++rounds;
  return rounds;
}

void expand_collective(const CollectiveDesc& d, const CollectiveAlgos& algos,
                       std::vector<SubOp>& out) {
  out.clear();
  HPS_CHECK(d.n >= 1 && d.me >= 0 && d.me < d.n);
  if (d.n == 1) return;  // single-member communicator: everything is local
  switch (d.op) {
    case OpType::kBarrier:
      barrier(d, out);
      break;
    case OpType::kBcast:
      bcast(d, out);
      break;
    case OpType::kReduce:
      reduce(d, out);
      break;
    case OpType::kAllreduce:
      if (d.bytes > algos.allreduce_rabenseifner_threshold)
        allreduce_rabenseifner(d, out);
      else
        allreduce_recursive_doubling(d, out);
      break;
    case OpType::kAllgather:
      if (algos.allgather == CollectiveAlgos::Allgather::kRecursiveDoubling &&
          std::has_single_bit(static_cast<unsigned>(d.n)))
        allgather_recursive_doubling(d, out);
      else
        allgather_ring(d, out);
      break;
    case OpType::kAlltoall:
      if (algos.alltoall == CollectiveAlgos::Alltoall::kBruck)
        alltoall_bruck(d, out);
      else
        alltoall_pairwise(d, out);
      break;
    case OpType::kAlltoallv:
      alltoallv_pairwise(d, out);
      break;
    case OpType::kGather:
      gather(d, out);
      break;
    case OpType::kScatter:
      scatter(d, out);
      break;
    case OpType::kReduceScatter:
      reduce_scatter_halving(d, out);
      break;
    case OpType::kScan:
      scan_linear(d, out);
      break;
    default:
      HPS_CHECK_MSG(false, "expand_collective: not a collective op");
  }
}

}  // namespace hps::simmpi
