#include "topo/topology.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hps::topo {

int Topology::hop_count(NodeId src, NodeId dst, std::uint64_t salt) const {
  std::vector<LinkId> links;
  route(src, dst, links, salt);
  return static_cast<int>(links.size());
}

double Topology::average_hops(int sample_pairs) const {
  const NodeId n = num_nodes();
  if (n < 2) return 0.0;
  Rng rng(0xA5A5F00DULL);
  std::vector<LinkId> links;
  std::int64_t total = 0;
  int counted = 0;
  for (int i = 0; i < sample_pairs; ++i) {
    const auto a = static_cast<NodeId>(rng.uniform_u64(static_cast<std::uint64_t>(n)));
    const auto b = static_cast<NodeId>(rng.uniform_u64(static_cast<std::uint64_t>(n)));
    if (a == b) continue;
    route(a, b, links, static_cast<std::uint64_t>(i));
    total += static_cast<std::int64_t>(links.size());
    ++counted;
  }
  return counted > 0 ? static_cast<double>(total) / counted : 0.0;
}

// ---------------------------------------------------------------------------
// Torus3D
// ---------------------------------------------------------------------------

Torus3D::Torus3D(int nx, int ny, int nz) : nx_(nx), ny_(ny), nz_(nz) {
  HPS_CHECK(nx >= 1 && ny >= 1 && nz >= 1);
}

void Torus3D::coords(NodeId n, int& x, int& y, int& z) const {
  x = static_cast<int>(n) % nx_;
  y = (static_cast<int>(n) / nx_) % ny_;
  z = static_cast<int>(n) / (nx_ * ny_);
}

NodeId Torus3D::node_at(int x, int y, int z) const {
  return static_cast<NodeId>((z * ny_ + y) * nx_ + x);
}

void Torus3D::route_impl(NodeId src, NodeId dst, std::vector<LinkId>& out,
                    std::uint64_t /*salt*/) const {
  out.clear();
  if (src == dst) return;
  int x, y, z, dx, dy, dz;
  coords(src, x, y, z);
  coords(dst, dx, dy, dz);

  // One dimension at a time, taking the shorter wrap direction (positive on
  // ties, keeping routing deterministic).
  auto walk_dim = [&](int& cur, int target, int size, int pos_dir, int neg_dir,
                      auto node_of) {
    if (cur == target) return;
    const int fwd = (target - cur + size) % size;
    const int bwd = size - fwd;
    const bool positive = fwd <= bwd;
    const int steps = positive ? fwd : bwd;
    for (int s = 0; s < steps; ++s) {
      const NodeId here = node_of(cur);
      out.push_back(link_from(here, positive ? pos_dir : neg_dir));
      cur = positive ? (cur + 1) % size : (cur - 1 + size) % size;
    }
  };

  walk_dim(x, dx, nx_, 0, 1, [&](int cx) { return node_at(cx, y, z); });
  walk_dim(y, dy, ny_, 2, 3, [&](int cy) { return node_at(x, cy, z); });
  walk_dim(z, dz, nz_, 4, 5, [&](int cz) { return node_at(x, y, cz); });
}

std::string Torus3D::name() const {
  return "torus3d_" + std::to_string(nx_) + "x" + std::to_string(ny_) + "x" +
         std::to_string(nz_);
}

// ---------------------------------------------------------------------------
// Dragonfly
// ---------------------------------------------------------------------------

Dragonfly::Dragonfly(int groups, int routers_per_group, int nodes_per_router,
                     int global_per_router, bool valiant)
    : groups_(groups), a_(routers_per_group), p_(nodes_per_router), h_(global_per_router),
      valiant_(valiant) {
  HPS_CHECK(groups >= 1 && routers_per_group >= 1 && nodes_per_router >= 1 &&
            global_per_router >= 1);
  // Full inter-group connectivity requires a*h ports >= g-1 per group.
  HPS_CHECK_MSG(groups - 1 <= routers_per_group * global_per_router,
                "dragonfly has too few global ports for full group connectivity");
}

NodeId Dragonfly::num_nodes() const { return groups_ * a_ * p_; }

LinkId Dragonfly::num_links() const {
  const LinkId terminals = 2 * num_nodes();
  const LinkId locals = groups_ * a_ * a_;  // includes unused self slots, keeps indexing simple
  const LinkId globals = groups_ * a_ * h_;
  return terminals + locals + globals;
}

LinkId Dragonfly::local_link(int router_from, int router_to) const {
  const int g = group_of_router(router_from);
  HPS_CHECK(group_of_router(router_to) == g && router_from != router_to);
  const int lf = router_from % a_;
  const int lt = router_to % a_;
  return 2 * num_nodes() + (g * a_ + lf) * a_ + lt;
}

LinkId Dragonfly::global_link(int router, int port) const {
  return 2 * num_nodes() + groups_ * a_ * a_ + router * h_ + port;
}

bool Dragonfly::global_port(int group, int to_group, std::uint64_t salt, int& router,
                            int& port) const {
  if (group == to_group) return false;
  // Each destination group d gets `parallel` dedicated (router, port) slots
  // inside `group` — when the machine has fewer groups than global ports can
  // serve, the spare ports become parallel links between the same group pair
  // (as real dragonfly deployments cable them). The salt picks among them.
  const int d = to_group > group ? to_group - 1 : to_group;
  const int parallel = std::max(1, (a_ * h_) / std::max(1, groups_ - 1));
  const int lane = static_cast<int>(salt % static_cast<std::uint64_t>(parallel));
  const int slot = d * parallel + lane;  // < a*h by construction
  router = group * a_ + slot / h_;
  port = slot % h_;
  return true;
}

void Dragonfly::route_within_group(int r_from, int r_to, std::vector<LinkId>& out) const {
  if (r_from != r_to) out.push_back(local_link(r_from, r_to));
}

void Dragonfly::route_groups(int g_from, int r_from, int g_to, std::uint64_t salt,
                             std::vector<LinkId>& out, int& arrival_router) const {
  int gr = 0, gp = 0;
  HPS_CHECK(global_port(g_from, g_to, salt, gr, gp));
  route_within_group(r_from, gr, out);
  out.push_back(global_link(gr, gp));
  // The parallel lane chosen by `salt` lands on the peer router cabled with
  // the same lane in the destination group.
  int back_r = 0, back_p = 0;
  HPS_CHECK(global_port(g_to, g_from, salt, back_r, back_p));
  arrival_router = back_r;
}

void Dragonfly::route_impl(NodeId src, NodeId dst, std::vector<LinkId>& out,
                      std::uint64_t salt) const {
  out.clear();
  if (src == dst) return;
  const int rs = router_of(src), rd = router_of(dst);
  const int gs = group_of_router(rs), gd = group_of_router(rd);

  out.push_back(terminal_up(src));
  if (rs == rd) {
    out.push_back(terminal_down(dst));
    return;
  }
  if (gs == gd) {
    route_within_group(rs, rd, out);
    out.push_back(terminal_down(dst));
    return;
  }

  int cur_router = rs;
  int cur_group = gs;
  if (valiant_ && groups_ > 2) {
    const std::uint64_t h = mix_seed(salt, mix_seed(static_cast<std::uint64_t>(src) << 20,
                                                    static_cast<std::uint64_t>(dst)));
    const int gm = static_cast<int>(h % static_cast<std::uint64_t>(groups_));
    if (gm != gs && gm != gd) {
      int arrival = 0;
      route_groups(cur_group, cur_router, gm, mix_seed(salt, 0x17), out, arrival);
      cur_router = arrival;
      cur_group = gm;
    }
  }
  int arrival = 0;
  const std::uint64_t lane_salt = mix_seed(salt, mix_seed(static_cast<std::uint64_t>(src),
                                                          static_cast<std::uint64_t>(dst)));
  route_groups(cur_group, cur_router, gd, lane_salt, out, arrival);
  route_within_group(arrival, rd, out);
  out.push_back(terminal_down(dst));
}

std::string Dragonfly::name() const {
  return "dragonfly_g" + std::to_string(groups_) + "a" + std::to_string(a_) + "p" +
         std::to_string(p_) + "h" + std::to_string(h_) + (valiant_ ? "_valiant" : "");
}

// ---------------------------------------------------------------------------
// FatTree
// ---------------------------------------------------------------------------

FatTree::FatTree(int k) : k_(k) {
  HPS_CHECK(k >= 2 && k % 2 == 0);
}

LinkId FatTree::num_edge_links() const { return 2 * num_nodes(); }

LinkId FatTree::num_links() const {
  const int half = k_ / 2;
  const LinkId terminals = 2 * num_nodes();
  const LinkId edge_agg = 2 * k_ * half * half;  // per pod: (k/2 edges)x(k/2 aggs), both dirs
  const LinkId agg_core = 2 * k_ * half * half;  // per pod: (k/2 aggs)x(k/2 cores each)
  return terminals + edge_agg + agg_core;
}

void FatTree::route_impl(NodeId src, NodeId dst, std::vector<LinkId>& out,
                    std::uint64_t /*salt*/) const {
  out.clear();
  if (src == dst) return;
  const int half = k_ / 2;
  const NodeId n = num_nodes();
  const int pod_nodes = half * half;

  const int src_pod = static_cast<int>(src) / pod_nodes;
  const int dst_pod = static_cast<int>(dst) / pod_nodes;
  const int src_edge = (static_cast<int>(src) % pod_nodes) / half;  // edge index in pod
  const int dst_edge = (static_cast<int>(dst) % pod_nodes) / half;

  // Link id bases.
  const LinkId base_up = 0;           // node -> edge
  const LinkId base_down = n;         // edge -> node
  const LinkId base_ea = 2 * n;       // edge -> agg: (pod*half+e)*half + j
  const LinkId base_ae = base_ea + k_ * half * half;  // agg -> edge
  const LinkId base_ac = base_ae + k_ * half * half;  // agg -> core: (pod*half+j)*half + i
  const LinkId base_ca = base_ac + k_ * half * half;  // core -> agg: core*k + pod

  // D-mod-k style deterministic up-path selection from the destination id.
  const int j = static_cast<int>(dst) % half;           // aggregation index
  const int i = (static_cast<int>(dst) / half) % half;  // core index within group j

  out.push_back(base_up + src);
  if (src_pod == dst_pod && src_edge == dst_edge) {
    out.push_back(base_down + dst);
    return;
  }
  out.push_back(base_ea + (src_pod * half + src_edge) * half + j);
  if (src_pod != dst_pod) {
    out.push_back(base_ac + (src_pod * half + j) * half + i);
    const int core = j * half + i;
    out.push_back(base_ca + core * k_ + dst_pod);
  }
  out.push_back(base_ae + (dst_pod * half + j) * half + dst_edge);
  out.push_back(base_down + dst);
}

std::string FatTree::name() const { return "fattree_k" + std::to_string(k_); }

// ---------------------------------------------------------------------------
// Sizing helpers
// ---------------------------------------------------------------------------

std::unique_ptr<Topology> make_torus_for(int min_nodes) {
  HPS_CHECK(min_nodes >= 1);
  // Near-cubic dimensions: nx >= ny >= nz, smallest product >= min_nodes.
  int nz = std::max(1, static_cast<int>(std::cbrt(static_cast<double>(min_nodes))));
  while (nz > 1 && nz * nz * nz > min_nodes * 2) --nz;
  int ny = nz;
  while (true) {
    const int nx = (min_nodes + ny * nz - 1) / (ny * nz);
    if (nx >= ny) return std::make_unique<Torus3D>(std::max(nx, 1), ny, nz);
    ++ny;
  }
}

std::unique_ptr<Topology> make_dragonfly_for(int min_nodes, bool valiant) {
  HPS_CHECK(min_nodes >= 1);
  // Aries-like building block: a=8 routers/group, p=4 nodes/router, h=4.
  const int a = 8, p = 4, h = 4;
  const int per_group = a * p;
  int groups = std::max(2, (min_nodes + per_group - 1) / per_group);
  groups = std::min(groups, a * h + 1);
  if (groups * per_group < min_nodes) {
    // Fall back to a denser group if the cap binds (very large node counts).
    const int a2 = 16, p2 = 8, h2 = 8;
    int g2 = std::max(2, (min_nodes + a2 * p2 - 1) / (a2 * p2));
    g2 = std::min(g2, a2 * h2 + 1);
    HPS_CHECK_MSG(g2 * a2 * p2 >= min_nodes, "dragonfly sizing overflow");
    return std::make_unique<Dragonfly>(g2, a2, p2, h2, valiant);
  }
  return std::make_unique<Dragonfly>(groups, a, p, h, valiant);
}

std::unique_ptr<Topology> make_fattree_for(int min_nodes) {
  HPS_CHECK(min_nodes >= 1);
  int k = 4;
  while (k * k * k / 4 < min_nodes) k += 2;
  return std::make_unique<FatTree>(k);
}

}  // namespace hps::topo
