// Interconnect topology abstraction.
//
// A topology enumerates compute nodes (endpoints) and directed links, and
// produces the ordered list of links a message crosses between two nodes.
// Routing is deterministic for a given (src, dst, salt) so that simulations
// are reproducible; adaptive/randomized schemes (Valiant on the dragonfly)
// derive their choice from the salt.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace hps::topo {

class Topology {
 public:
  virtual ~Topology() = default;

  /// Number of endpoint (compute) nodes.
  virtual NodeId num_nodes() const = 0;

  /// Number of directed network links (used to size per-link state arrays).
  virtual LinkId num_links() const = 0;

  /// Append the directed links of the route from `src` to `dst` to `out`
  /// (cleared first). Empty result for src == dst (loopback stays on-node).
  /// `salt` steers any randomized choice deterministically.
  void route(NodeId src, NodeId dst, std::vector<LinkId>& out, std::uint64_t salt = 0) const {
    route_impl(src, dst, out, salt);
  }

  /// Number of hops (links) between two nodes under this routing.
  int hop_count(NodeId src, NodeId dst, std::uint64_t salt = 0) const;

  /// Average hop count over a deterministic sample of node pairs (used to
  /// split an end-to-end latency budget into per-hop latencies).
  double average_hops(int sample_pairs = 512) const;

  virtual std::string name() const = 0;

 protected:
  virtual void route_impl(NodeId src, NodeId dst, std::vector<LinkId>& out,
                          std::uint64_t salt) const = 0;
};

/// 3D torus with bidirectional links and dimension-order (X, then Y, then Z)
/// shortest-wrap routing; the shape of a Cray XE6 Gemini network.
class Torus3D final : public Topology {
 public:
  Torus3D(int nx, int ny, int nz);

  NodeId num_nodes() const override { return nx_ * ny_ * nz_; }
  LinkId num_links() const override { return num_nodes() * 6; }
  std::string name() const override;

  /// Directed link leaving `node` in direction dir (0:+x 1:-x 2:+y 3:-y 4:+z 5:-z).
  LinkId link_from(NodeId node, int dir) const { return node * 6 + dir; }

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }

 private:
  void route_impl(NodeId src, NodeId dst, std::vector<LinkId>& out,
                  std::uint64_t salt) const override;
  void coords(NodeId n, int& x, int& y, int& z) const;
  NodeId node_at(int x, int y, int z) const;
  int nx_, ny_, nz_;
};

/// Dragonfly: `groups` groups of `routers_per_group` routers, each with
/// `nodes_per_router` endpoints and `global_per_router` global links.
/// Local links form a complete graph inside each group; global links connect
/// group pairs round-robin. Minimal routing (l-g-l) by default; Valiant
/// (random intermediate group, l-g-l-g-l) when enabled, selected via salt.
/// The shape of a Cray XC30 Aries network.
class Dragonfly final : public Topology {
 public:
  Dragonfly(int groups, int routers_per_group, int nodes_per_router, int global_per_router,
            bool valiant = false);

  NodeId num_nodes() const override;
  LinkId num_links() const override;
  std::string name() const override;

  int groups() const { return groups_; }
  int routers_per_group() const { return a_; }
  int nodes_per_router() const { return p_; }

 private:
  void route_impl(NodeId src, NodeId dst, std::vector<LinkId>& out,
                  std::uint64_t salt) const override;
  int router_of(NodeId n) const { return static_cast<int>(n) / p_; }
  int group_of_router(int r) const { return r / a_; }
  // Link id layout: [terminal up][terminal down][local][global].
  LinkId terminal_up(NodeId n) const { return n; }
  LinkId terminal_down(NodeId n) const { return num_nodes() + n; }
  LinkId local_link(int router_from, int router_to) const;
  LinkId global_link(int router, int port) const;
  /// Router in `group` owning a global link to `to_group` (salt selects
  /// among parallel links when spare ports are cabled), and its port.
  bool global_port(int group, int to_group, std::uint64_t salt, int& router,
                   int& port) const;
  void route_within_group(int r_from, int r_to, std::vector<LinkId>& out) const;
  void route_groups(int g_from, int r_from, int g_to, std::uint64_t salt,
                    std::vector<LinkId>& out, int& arrival_router) const;

  int groups_, a_, p_, h_;
  bool valiant_;
};

/// Three-level k-port fat tree (k even): k pods, k*k/4 core switches,
/// k^3/4 endpoints, destination-mod-k (D-mod-k) up-path selection.
class FatTree final : public Topology {
 public:
  explicit FatTree(int k);

  NodeId num_nodes() const override { return k_ * k_ * k_ / 4; }
  LinkId num_links() const override;
  std::string name() const override;

  int k() const { return k_; }

 private:
  void route_impl(NodeId src, NodeId dst, std::vector<LinkId>& out,
                  std::uint64_t salt) const override;
  // Switch numbering: edge switches 0..k^2/2-1 (k/2 per pod), aggregation
  // switches next k^2/2, core switches last k^2/4.
  int edge_of(NodeId n) const { return static_cast<int>(n) / (k_ / 2); }
  LinkId num_edge_links() const;  // node<->edge, both directions
  int k_;
};

/// Build a Torus3D with at least `min_nodes` nodes, near-cubic.
std::unique_ptr<Topology> make_torus_for(int min_nodes);

/// Build a Dragonfly with at least `min_nodes` nodes (Aries-like a=16, p=4).
std::unique_ptr<Topology> make_dragonfly_for(int min_nodes, bool valiant = false);

/// Build a FatTree with at least `min_nodes` nodes.
std::unique_ptr<Topology> make_fattree_for(int min_nodes);

}  // namespace hps::topo
