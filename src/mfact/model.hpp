// MFACT — MPI Fast Application Classification Tool (reimplementation of the
// modeling tool of Tong et al., IPDPS 2016, as described in the paper's
// §IV-A).
//
// MFACT replays a DUMPI-style trace once using Lamport logical clocks
// augmented with non-unit communication and computation times. Timestamps —
// not data — flow between ranks, honoring every happened-before relation in
// the trace. Point-to-point transfers are costed with Hockney's model
// (L + m/B plus per-endpoint software overhead o); collectives with
// Thakur–Gropp analytic formulas (coll_cost.hpp).
//
// Its distinguishing feature: one replay evaluates MANY network
// configurations concurrently. Each rank keeps one logical clock and four
// time counters (wait, bandwidth, latency, computation) per configuration;
// all are advanced in lockstep during the single pass over the trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "trace/trace.hpp"

namespace hps::obs {
class TimelineRecorder;
}

namespace hps::robust {
class CancelToken;
}

namespace hps::mfact {

/// One network configuration evaluated during replay.
struct NetworkConfigPoint {
  Bandwidth bandwidth = 0;   ///< bytes/second
  SimTime latency = 0;       ///< end-to-end zero-byte latency, ns
  double compute_scale = 1;  ///< scaling on measured compute intervals
  std::string label;
};

/// The four logical time counters MFACT maintains per configuration
/// (aggregated across ranks in the results; nanoseconds), plus an
/// orthogonal split of the communication cost by operation class.
struct Counters {
  double wait = 0;       ///< idle time waiting for messages/collectives
  double bandwidth = 0;  ///< time attributable to m/B terms
  double latency = 0;    ///< time attributable to L and o terms
  double compute = 0;    ///< computation time
  /// Second decomposition of latency + bandwidth by attribution site:
  /// point-to-point sends/receives vs. collective phases. Invariant:
  /// p2p + coll == latency + bandwidth.
  double p2p = 0;
  double coll = 0;
};

/// Result for one configuration after the replay.
struct ConfigResult {
  NetworkConfigPoint config;
  SimTime total_time = 0;      ///< max over ranks of final logical clock
  SimTime comm_time_mean = 0;  ///< mean over ranks of (clock - compute)
  Counters counters;           ///< summed over ranks
};

/// Point-to-point cost model for the logical-clock replay.
enum class P2pCostModel {
  /// Hockney: arrival = send + o + L + m/B; the sender is only busy o.
  kHockney,
  /// LogGP: the sender's NIC serializes messages — each departure waits for
  /// the previous transmission (gap g + m*G), so bursts of sends are paced.
  /// G is 1/B; g defaults to o.
  kLogGP,
};

struct MfactParams {
  /// Per-endpoint software overhead o (ns). Should match the simulator's
  /// machine instance so the tools are compared on equal footing.
  SimTime overhead = 500;
  std::uint64_t allreduce_rabenseifner_threshold = 32 * KiB;
  P2pCostModel p2p_model = P2pCostModel::kHockney;
  /// LogGP inter-message gap g (ns); 0 = use the overhead o.
  SimTime loggp_gap = 0;
  /// Optional virtual-time timeline sink (not owned). When set, the replay
  /// records per-rank intervals for the *base* configuration (index 0) so
  /// the model's predicted execution can be eyeballed next to a simulator's.
  obs::TimelineRecorder* timeline = nullptr;
  /// Optional cooperative budget/cancel token (not owned), ticked once per
  /// replayed trace event with the rank's base logical clock.
  robust::CancelToken* cancel = nullptr;
};

/// Replay `t` once, evaluating every configuration in `configs`
/// concurrently. Throws hps::Error on malformed traces. `wall_seconds` (if
/// non-null) receives the host time consumed by the replay.
std::vector<ConfigResult> run_mfact(const trace::Trace& t,
                                    const std::vector<NetworkConfigPoint>& configs,
                                    const MfactParams& params = {},
                                    double* wall_seconds = nullptr);

/// Build the sensitivity sweep around a baseline: index 0 is the baseline,
/// followed by bandwidth x8 / x(1/8) and latency x(1/8) / x8 points (the
/// factor-of-8 excursions the paper's classification rule uses), plus
/// intermediate x2 points used by the classifier's trend analysis.
std::vector<NetworkConfigPoint> make_sensitivity_sweep(Bandwidth base_bw, SimTime base_lat,
                                                       double compute_scale = 1.0);

/// Indices into the sweep returned by make_sensitivity_sweep.
enum SweepPoint : int {
  kSweepBase = 0,
  kSweepBwUp8,
  kSweepBwDown8,
  kSweepLatDown8,
  kSweepLatUp8,
  kSweepBwUp2,
  kSweepBwDown2,
  kSweepLatUp2,
  kSweepNumPoints,
};

}  // namespace hps::mfact
