// Analytic collective cost models in the style of Thakur & Gropp, used by
// MFACT's logical-clock replay. Costs are split into a latency component
// (alpha terms: per-round start-up) and a bandwidth component (beta terms:
// bytes over the wire) so that MFACT can attribute them to its latency and
// bandwidth counters separately.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "trace/event.hpp"

namespace hps::mfact {

/// A collective's cost under Hockney-style parameters.
struct CollCost {
  double latency_ns = 0;    ///< alpha component (rounds x (L + o))
  double bandwidth_ns = 0;  ///< beta component (bytes / B)
  double total() const { return latency_ns + bandwidth_ns; }
};

/// Parameters of the analytic model.
struct CostParams {
  double bandwidth_Bps = 0;  ///< network bandwidth B
  double latency_ns = 0;     ///< end-to-end zero-byte latency L
  double overhead_ns = 0;    ///< per-message software overhead o
  /// Allreduce switches from recursive doubling to Rabenseifner above this.
  std::uint64_t allreduce_rabenseifner_threshold = 32 * KiB;
};

/// Cost of the collective for a communicator of n ranks and the given
/// per-rank payload (`bytes` follows trace::OpType semantics). For
/// Alltoallv use alltoallv_cost, which needs per-member volumes.
CollCost collective_cost(trace::OpType op, int n, std::uint64_t bytes, const CostParams& p);

/// Per-member Alltoallv cost given the member's total send and receive
/// volumes and the number of peers it actually exchanges with.
CollCost alltoallv_cost(int n, int nonzero_peers, std::uint64_t send_bytes,
                        std::uint64_t recv_bytes, const CostParams& p);

/// ceil(log2(n)) for n >= 1.
int log2_ceil(int n);

}  // namespace hps::mfact
