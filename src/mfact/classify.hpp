// MFACT application classification (the paper's §IV-A and §VI-A).
//
// From a single multi-configuration replay, MFACT observes how the predicted
// total time reacts to speeding up / slowing down bandwidth, latency and
// computation, and classifies the application as computation-bound,
// load-imbalance-bound, bandwidth-bound, latency-bound, or
// communication-bound. For the need-for-simulation predictor the five
// classes collapse into two groups: "cs" (communication-sensitive — total
// time grows more than 5% when bandwidth drops 8x, the paper's conservative
// rule) and "ncs" (everything else).
#pragma once

#include <string>
#include <vector>

#include "mfact/model.hpp"
#include "trace/trace.hpp"

namespace hps::mfact {

enum class AppClass {
  kComputationBound,
  kLoadImbalanceBound,
  kBandwidthBound,
  kLatencyBound,
  kCommunicationBound,
};

const char* app_class_name(AppClass c);

/// Two-level grouping used as the "CL" feature: cs vs ncs.
enum class SensitivityGroup { kCommSensitive, kNotCommSensitive };

const char* group_name(SensitivityGroup g);

struct Classification {
  AppClass app_class = AppClass::kComputationBound;
  SensitivityGroup group = SensitivityGroup::kNotCommSensitive;
  double bw_sensitivity = 0;   ///< total(bw/8)/total(base) - 1
  double lat_sensitivity = 0;  ///< total(lat*8)/total(base) - 1
  double compute_fraction = 0; ///< compute counter share of total rank time
  double wait_fraction = 0;    ///< wait counter share of total rank time
  std::vector<ConfigResult> sweep;  ///< the raw sweep results (base first)
  double mfact_wall_seconds = 0;    ///< host time of the replay
};

struct ClassifyParams {
  /// Bandwidth-sensitivity threshold: >5% growth under bw/8 => cs (paper).
  double sensitivity_threshold = 0.05;
  /// Wait-counter share above which a network-insensitive application is
  /// load-imbalance-bound rather than computation-bound.
  double wait_dominance = 0.15;
  MfactParams mfact;
};

/// Classify by replaying with the standard sensitivity sweep around
/// (base_bw, base_lat).
Classification classify(const trace::Trace& t, Bandwidth base_bw, SimTime base_lat,
                        const ClassifyParams& params = {});

/// Classify from an already-computed sweep (must be in
/// make_sensitivity_sweep order).
Classification classify_from_sweep(std::vector<ConfigResult> sweep,
                                   const ClassifyParams& params = {});

}  // namespace hps::mfact
