#include "mfact/classify.hpp"

#include "common/error.hpp"

namespace hps::mfact {

const char* app_class_name(AppClass c) {
  switch (c) {
    case AppClass::kComputationBound: return "computation-bound";
    case AppClass::kLoadImbalanceBound: return "load-imbalance-bound";
    case AppClass::kBandwidthBound: return "bandwidth-bound";
    case AppClass::kLatencyBound: return "latency-bound";
    case AppClass::kCommunicationBound: return "communication-bound";
  }
  return "?";
}

const char* group_name(SensitivityGroup g) {
  return g == SensitivityGroup::kCommSensitive ? "cs" : "ncs";
}

Classification classify_from_sweep(std::vector<ConfigResult> sweep,
                                   const ClassifyParams& params) {
  HPS_REQUIRE(sweep.size() >= kSweepNumPoints, "classify: sweep too small");
  Classification cl;

  const double base = static_cast<double>(sweep[kSweepBase].total_time);
  HPS_REQUIRE(base > 0, "classify: zero baseline time");
  cl.bw_sensitivity = static_cast<double>(sweep[kSweepBwDown8].total_time) / base - 1.0;
  cl.lat_sensitivity = static_cast<double>(sweep[kSweepLatUp8].total_time) / base - 1.0;

  const Counters& c = sweep[kSweepBase].counters;
  const double ctr_total = c.wait + c.bandwidth + c.latency + c.compute;
  if (ctr_total > 0) {
    cl.compute_fraction = c.compute / ctr_total;
    cl.wait_fraction = c.wait / ctr_total;
  }

  const double thr = params.sensitivity_threshold;
  const bool bw_sens = cl.bw_sensitivity > thr;
  const bool lat_sens = cl.lat_sensitivity > thr;
  if (bw_sens && lat_sens) {
    cl.app_class = AppClass::kCommunicationBound;
  } else if (bw_sens) {
    cl.app_class = AppClass::kBandwidthBound;
  } else if (lat_sens) {
    cl.app_class = AppClass::kLatencyBound;
  } else if (cl.wait_fraction > params.wait_dominance) {
    cl.app_class = AppClass::kLoadImbalanceBound;
  } else {
    cl.app_class = AppClass::kComputationBound;
  }

  // The paper's conservative grouping rule considers bandwidth only: an
  // application is "cs" iff slowing bandwidth 8x grows total time by >5%.
  cl.group = bw_sens ? SensitivityGroup::kCommSensitive : SensitivityGroup::kNotCommSensitive;

  cl.sweep = std::move(sweep);
  return cl;
}

Classification classify(const trace::Trace& t, Bandwidth base_bw, SimTime base_lat,
                        const ClassifyParams& params) {
  const auto sweep_cfg = make_sensitivity_sweep(base_bw, base_lat);
  double wall = 0;
  auto sweep = run_mfact(t, sweep_cfg, params.mfact, &wall);
  auto cl = classify_from_sweep(std::move(sweep), params);
  cl.mfact_wall_seconds = wall;
  return cl;
}

}  // namespace hps::mfact
