#include "mfact/model.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"
#include "mfact/coll_cost.hpp"
#include "obs/timeline.hpp"
#include "robust/cancel.hpp"
#include "robust/fault.hpp"
#include "telemetry/telemetry.hpp"

namespace hps::mfact {

namespace {

using trace::Event;
using trace::OpType;

/// FIFO stream key for (peer, tag).
std::uint64_t stream_key(Rank peer, Tag tag) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(peer)) << 32) |
         static_cast<std::uint32_t>(tag);
}

/// Message key: seq-th message from src to dst with tag.
struct MsgKey {
  Rank src, dst;
  Tag tag;
  std::uint32_t seq;
  bool operator==(const MsgKey&) const = default;
};
struct MsgKeyHash {
  std::size_t operator()(const MsgKey& k) const {
    std::uint64_t h = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.src)) << 32) |
                      static_cast<std::uint32_t>(k.dst);
    h ^= ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.tag)) << 32) | k.seq) *
         0x9e3779b97f4a7c15ULL;
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    return static_cast<std::size_t>(h ^ (h >> 31));
  }
};

/// The single-pass multi-configuration logical clock replay.
class LogicalReplay {
 public:
  LogicalReplay(const trace::Trace& t, const std::vector<NetworkConfigPoint>& configs,
                const MfactParams& params)
      : trace_(t), configs_(configs), params_(params),
        k_(configs.size()), nranks_(static_cast<std::size_t>(t.nranks())) {
    HPS_CHECK(!configs.empty());
    clocks_.assign(nranks_ * k_, 0.0);
    counters_.assign(nranks_ * k_, Counters{});
    if (params.p2p_model == P2pCostModel::kLogGP) nic_.assign(nranks_ * k_, 0.0);
    cursor_.assign(nranks_, 0);
    rank_aux_.resize(nranks_);
    cost_params_.resize(k_);
    for (std::size_t c = 0; c < k_; ++c) {
      cost_params_[c].bandwidth_Bps = configs[c].bandwidth;
      cost_params_[c].latency_ns = static_cast<double>(configs[c].latency);
      cost_params_[c].overhead_ns = static_cast<double>(params.overhead);
      cost_params_[c].allreduce_rabenseifner_threshold =
          params.allreduce_rabenseifner_threshold;
    }
    comm_state_.resize(t.num_comms());
    for (Rank r = 0; r < t.nranks(); ++r)
      for (const auto& e : t.rank(r).events)
        if (e.type == OpType::kAlltoallv)
          rank_aux_[static_cast<std::size_t>(r)].a2av[e.comm].push_back(e.aux);
  }

  std::vector<ConfigResult> run();

 private:
  struct RankAux {
    std::unordered_map<std::uint64_t, std::uint32_t> send_seq, recv_seq;
    std::unordered_map<std::int32_t, MsgKey> irecv_key;  // posted irecvs
    std::unordered_set<std::int32_t> isend_reqs;         // complete at issue
    std::unordered_map<CommId, std::uint32_t> a2av_next;
    std::unordered_map<CommId, std::vector<std::int32_t>> a2av;  // aux ids in order
    bool coll_arrived = false;
    bool in_work = false;
  };

  struct CommState {
    int arrived = 0;
  };

  double* clock(Rank r) { return &clocks_[static_cast<std::size_t>(r) * k_]; }
  double* nic(Rank r) { return &nic_[static_cast<std::size_t>(r) * k_]; }
  Counters* ctr(Rank r) { return &counters_[static_cast<std::size_t>(r) * k_]; }

  /// Record a base-configuration interval into the optional timeline. Each
  /// rank's base clock is monotonic, so intervals never overlap per track.
  void rec_iv(Rank r, obs::IntervalKind k, double from, double to,
              std::uint64_t detail = 0) {
    if (params_.timeline != nullptr && to > from)
      params_.timeline->record(r, k, static_cast<SimTime>(from), static_cast<SimTime>(to),
                               detail);
  }

  void push_work(Rank r) {
    auto& aux = rank_aux_[static_cast<std::size_t>(r)];
    if (aux.in_work) return;
    aux.in_work = true;
    work_.push_back(r);
  }

  void run_rank(Rank r);
  void process_send(Rank r, const Event& e);
  /// Apply a message arrival to the receiving rank's clocks. The slab holds
  /// one arrival timestamp per configuration.
  void apply_arrival(Rank r, const double* arrival);
  bool try_consume_msg(Rank r, const MsgKey& key);
  /// Returns true if the collective completed (cursors advanced).
  bool process_collective(Rank r, const Event& e);
  void apply_collective(const Event& e, const std::vector<Rank>& members);

  // Arrival slabs: one double per config, pooled.
  std::uint32_t alloc_slab() {
    if (!slab_free_.empty()) {
      const std::uint32_t s = slab_free_.back();
      slab_free_.pop_back();
      return s;
    }
    slabs_.resize(slabs_.size() + k_);
    return static_cast<std::uint32_t>(slabs_.size() / k_ - 1);
  }
  double* slab(std::uint32_t s) { return &slabs_[static_cast<std::size_t>(s) * k_]; }

  const trace::Trace& trace_;
  const std::vector<NetworkConfigPoint>& configs_;
  const MfactParams& params_;
  const std::size_t k_;
  const std::size_t nranks_;

  std::vector<double> clocks_;
  std::vector<double> nic_;  // LogGP: per-rank per-config NIC busy-until
  std::vector<Counters> counters_;
  std::vector<std::size_t> cursor_;
  std::vector<RankAux> rank_aux_;
  std::vector<CostParams> cost_params_;

  std::unordered_map<MsgKey, std::uint32_t, MsgKeyHash> arrivals_;  // key -> slab
  std::vector<double> slabs_;
  std::vector<std::uint32_t> slab_free_;
  std::unordered_map<MsgKey, Rank, MsgKeyHash> blocked_on_;
  std::vector<CommState> comm_state_;
  std::vector<Rank> work_;
  // Scratch for collective processing.
  std::vector<std::uint64_t> send_tot_, recv_tot_;
  std::vector<int> nonzero_;
};

void LogicalReplay::process_send(Rank r, const Event& e) {
  auto& aux = rank_aux_[static_cast<std::size_t>(r)];
  const std::uint32_t seq = aux.send_seq[stream_key(e.peer, e.tag)]++;
  const MsgKey key{r, e.peer, e.tag, seq};
  const std::uint32_t s = alloc_slab();
  double* arr = slab(s);
  double* clk = clock(r);
  Counters* cc = ctr(r);
  const bool loggp = params_.p2p_model == P2pCostModel::kLogGP;
  const double gap = static_cast<double>(params_.loggp_gap > 0 ? params_.loggp_gap
                                                               : params_.overhead);
  for (std::size_t c = 0; c < k_; ++c) {
    const auto& p = cost_params_[c];
    const double beta =
        p.bandwidth_Bps > 0 ? static_cast<double>(e.bytes) / p.bandwidth_Bps * 1e9 : 0.0;
    if (c == 0) rec_iv(r, obs::IntervalKind::kSend, clk[0], clk[0] + p.overhead_ns, e.bytes);
    if (loggp) {
      // LogGP: the departure waits for the NIC to finish the previous
      // transmission; back-to-back sends are paced at g + m*G.
      double* nc = nic(r);
      const double depart = std::max(clk[c] + p.overhead_ns, nc[c]);
      nc[c] = depart + gap + beta;
      arr[c] = depart + p.latency_ns + beta;
      clk[c] += p.overhead_ns;
      cc[c].latency += p.overhead_ns + p.latency_ns;
      cc[c].bandwidth += beta;
    } else {
      // Hockney: the message lands at send_start + o + L + m/B. The sender's
      // own clock only advances by its software overhead o; the path terms
      // are attributed to the sender's latency/bandwidth counters (they are
      // what reacts when the sweep scales L or B).
      arr[c] = clk[c] + p.overhead_ns + p.latency_ns + beta;
      clk[c] += p.overhead_ns;
      cc[c].latency += p.overhead_ns + p.latency_ns;
      cc[c].bandwidth += beta;
    }
    cc[c].p2p += p.overhead_ns + p.latency_ns + beta;
  }
  arrivals_.emplace(key, s);
  const auto it = blocked_on_.find(key);
  if (it != blocked_on_.end()) {
    const Rank waiter = it->second;
    blocked_on_.erase(it);
    push_work(waiter);
  }
}

void LogicalReplay::apply_arrival(Rank r, const double* arrival) {
  double* clk = clock(r);
  Counters* cc = ctr(r);
  for (std::size_t c = 0; c < k_; ++c) {
    const auto& p = cost_params_[c];
    if (arrival[c] > clk[c]) {
      if (c == 0) rec_iv(r, obs::IntervalKind::kWait, clk[0], arrival[0]);
      cc[c].wait += arrival[c] - clk[c];
      clk[c] = arrival[c];
    }
    // Receiver-side software overhead; the path's L and m/B terms were
    // already folded into the arrival timestamp by the sender, so the
    // counters attribute them here where the cost is *felt*.
    if (c == 0) rec_iv(r, obs::IntervalKind::kRecv, clk[0], clk[0] + p.overhead_ns);
    clk[c] += p.overhead_ns;
    cc[c].latency += p.overhead_ns;
    cc[c].p2p += p.overhead_ns;
  }
}

bool LogicalReplay::try_consume_msg(Rank r, const MsgKey& key) {
  const auto it = arrivals_.find(key);
  if (it == arrivals_.end()) {
    blocked_on_[key] = r;
    return false;
  }
  const std::uint32_t s = it->second;
  arrivals_.erase(it);
  apply_arrival(r, slab(s));
  slab_free_.push_back(s);
  return true;
}

bool LogicalReplay::process_collective(Rank r, const Event& e) {
  auto& aux = rank_aux_[static_cast<std::size_t>(r)];
  const auto& members = trace_.comm(e.comm);
  if (members.size() == 1) {
    ++cursor_[static_cast<std::size_t>(r)];
    return true;
  }
  auto& cs = comm_state_[static_cast<std::size_t>(e.comm)];
  if (!aux.coll_arrived) {
    aux.coll_arrived = true;
    ++cs.arrived;
  }
  if (cs.arrived < static_cast<int>(members.size())) return false;

  // Last member to arrive: everyone's clocks are settled; apply the
  // analytic cost to every member and release them.
  cs.arrived = 0;
  apply_collective(e, members);
  for (const Rank m : members) {
    rank_aux_[static_cast<std::size_t>(m)].coll_arrived = false;
    ++cursor_[static_cast<std::size_t>(m)];
    if (m != r) push_work(m);
  }
  return true;
}

void LogicalReplay::apply_collective(const Event& e, const std::vector<Rank>& members) {
  const int n = static_cast<int>(members.size());

  // Per-member Alltoallv volumes need the full send matrix's row and column.
  const bool is_a2av = e.type == OpType::kAlltoallv;
  if (is_a2av) {
    send_tot_.assign(members.size(), 0);
    recv_tot_.assign(members.size(), 0);
    nonzero_.assign(members.size(), 0);
    for (std::size_t i = 0; i < members.size(); ++i) {
      auto& maux = rank_aux_[static_cast<std::size_t>(members[i])];
      const auto inst = maux.a2av_next[e.comm]++;
      const auto& aux_ids = maux.a2av.at(e.comm);
      HPS_CHECK_MSG(inst < aux_ids.size(), "alltoallv instance mismatch");
      const auto& vlist =
          trace_.rank(members[i]).vlists[static_cast<std::size_t>(aux_ids[inst])];
      for (std::size_t j = 0; j < members.size(); ++j) {
        if (i == j) continue;
        send_tot_[i] += vlist[j];
        recv_tot_[j] += vlist[j];
        if (vlist[j] > 0) {
          ++nonzero_[static_cast<int>(i)];
        }
      }
    }
  }

  const bool rooted = trace::is_rooted(e.type);
  std::int32_t root_idx = 0;
  if (rooted) {
    const auto it = std::find(members.begin(), members.end(), e.peer);
    HPS_CHECK(it != members.end());
    root_idx = static_cast<std::int32_t>(it - members.begin());
  }

  for (std::size_t c = 0; c < k_; ++c) {
    const auto& p = cost_params_[c];
    // Gather the member clocks for this configuration.
    double maxclk = 0;
    for (const Rank m : members) maxclk = std::max(maxclk, clock(m)[c]);

    if (!rooted) {
      // Symmetric collectives synchronize all members: each waits for the
      // slowest, then pays the analytic cost.
      for (std::size_t i = 0; i < members.size(); ++i) {
        const Rank m = members[i];
        double* clk = &clock(m)[c];
        Counters& cc = ctr(m)[c];
        CollCost cost = is_a2av ? alltoallv_cost(n, nonzero_[static_cast<int>(i)],
                                                 send_tot_[i], recv_tot_[i], p)
                                : collective_cost(e.type, n, e.bytes, p);
        if (c == 0) {
          rec_iv(m, obs::IntervalKind::kWait, *clk, maxclk);
          rec_iv(m, obs::IntervalKind::kCollective, maxclk, maxclk + cost.total(), e.bytes);
        }
        cc.wait += maxclk - *clk;
        cc.latency += cost.latency_ns;
        cc.bandwidth += cost.bandwidth_ns;
        cc.coll += cost.latency_ns + cost.bandwidth_ns;
        *clk = maxclk + cost.total();
      }
      continue;
    }

    // Rooted collectives: the data flows to or from the root.
    const Rank root = members[static_cast<std::size_t>(root_idx)];
    const CollCost cost = collective_cost(e.type, n, e.bytes, p);
    const double root_clk = clock(root)[c];
    if (e.type == OpType::kBcast || e.type == OpType::kScatter) {
      // Root drives the tree; leaves see the data after the full cost.
      const double arrival = root_clk + cost.total();
      for (const Rank m : members) {
        double* clk = &clock(m)[c];
        Counters& cc = ctr(m)[c];
        if (m == root) {
          if (c == 0)
            rec_iv(m, obs::IntervalKind::kCollective, root_clk, arrival, e.bytes);
          cc.latency += cost.latency_ns;
          cc.bandwidth += cost.bandwidth_ns;
          cc.coll += cost.latency_ns + cost.bandwidth_ns;
          *clk = root_clk + cost.total();
        } else {
          if (arrival > *clk) {
            if (c == 0) rec_iv(m, obs::IntervalKind::kWait, *clk, arrival);
            cc.wait += arrival - *clk;
            *clk = arrival;
          }
          if (c == 0)
            rec_iv(m, obs::IntervalKind::kCollective, *clk, *clk + p.overhead_ns, e.bytes);
          cc.latency += p.overhead_ns;
          cc.coll += p.overhead_ns;
          *clk += p.overhead_ns;
        }
      }
    } else {  // Reduce / Gather: root waits for the slowest contributor.
      double max_others = root_clk;
      for (const Rank m : members) max_others = std::max(max_others, clock(m)[c]);
      for (const Rank m : members) {
        double* clk = &clock(m)[c];
        Counters& cc = ctr(m)[c];
        if (m == root) {
          const double arrival = max_others + cost.total();
          if (c == 0) {
            rec_iv(m, obs::IntervalKind::kWait, *clk, max_others);
            rec_iv(m, obs::IntervalKind::kCollective, std::max(*clk, max_others), arrival,
                   e.bytes);
          }
          cc.wait += std::max(0.0, max_others - *clk);
          cc.latency += cost.latency_ns;
          cc.bandwidth += cost.bandwidth_ns;
          cc.coll += cost.latency_ns + cost.bandwidth_ns;
          *clk = arrival;
        } else {
          // Contributors send one tree message and move on.
          const double one = p.overhead_ns + p.latency_ns +
                             (p.bandwidth_Bps > 0 ? static_cast<double>(e.bytes) /
                                                        p.bandwidth_Bps * 1e9
                                                  : 0.0);
          if (c == 0)
            rec_iv(m, obs::IntervalKind::kCollective, *clk, *clk + one, e.bytes);
          cc.latency += p.overhead_ns + p.latency_ns;
          cc.bandwidth += one - p.overhead_ns - p.latency_ns;
          cc.coll += one;
          *clk += one;
        }
      }
    }
  }
}

void LogicalReplay::run_rank(Rank r) {
  auto& aux = rank_aux_[static_cast<std::size_t>(r)];
  auto& cur = cursor_[static_cast<std::size_t>(r)];
  const auto& evs = trace_.rank(r).events;
  while (cur < evs.size()) {
    const Event& e = evs[cur];
    if (params_.cancel != nullptr)
      params_.cancel->tick(static_cast<SimTime>(clock(r)[0]));
    switch (e.type) {
      case OpType::kCompute: {
        double* clk = clock(r);
        Counters* cc = ctr(r);
        rec_iv(r, obs::IntervalKind::kCompute, clk[0],
               clk[0] + static_cast<double>(e.duration) * configs_[0].compute_scale);
        for (std::size_t c = 0; c < k_; ++c) {
          const double dur = static_cast<double>(e.duration) * configs_[c].compute_scale;
          clk[c] += dur;
          cc[c].compute += dur;
        }
        ++cur;
        break;
      }
      case OpType::kSend:
        process_send(r, e);
        ++cur;
        break;
      case OpType::kIsend:
        process_send(r, e);
        aux.isend_reqs.insert(e.request);
        ++cur;
        break;
      case OpType::kRecv: {
        // Peek the sequence number; only consume it on success so a blocked
        // retry sees the same key.
        const std::uint64_t sk = stream_key(e.peer, e.tag);
        const std::uint32_t seq = aux.recv_seq[sk];
        const MsgKey key{e.peer, r, e.tag, seq};
        if (!try_consume_msg(r, key)) return;
        aux.recv_seq[sk] = seq + 1;
        ++cur;
        break;
      }
      case OpType::kIrecv: {
        const std::uint32_t seq = aux.recv_seq[stream_key(e.peer, e.tag)]++;
        aux.irecv_key.emplace(e.request, MsgKey{e.peer, r, e.tag, seq});
        ++cur;
        break;
      }
      case OpType::kWait: {
        if (aux.isend_reqs.erase(e.request) > 0) {
          ++cur;
          break;
        }
        const auto it = aux.irecv_key.find(e.request);
        HPS_CHECK_MSG(it != aux.irecv_key.end(), "wait on unknown request");
        if (!try_consume_msg(r, it->second)) return;
        aux.irecv_key.erase(it);
        ++cur;
        break;
      }
      case OpType::kWaitAll: {
        aux.isend_reqs.clear();
        // Drain posted irecvs one at a time; block on the first missing.
        while (!aux.irecv_key.empty()) {
          const auto it = aux.irecv_key.begin();
          if (!try_consume_msg(r, it->second)) return;
          aux.irecv_key.erase(it);
        }
        ++cur;
        break;
      }
      default:
        HPS_CHECK(trace::is_collective(e.type));
        if (!process_collective(r, e)) return;
        break;  // cursor already advanced by process_collective
    }
  }
}

std::vector<ConfigResult> LogicalReplay::run() {
  for (Rank r = 0; r < trace_.nranks(); ++r) push_work(r);
  while (!work_.empty()) {
    const Rank r = work_.back();
    work_.pop_back();
    rank_aux_[static_cast<std::size_t>(r)].in_work = false;
    run_rank(r);
  }
  for (Rank r = 0; r < trace_.nranks(); ++r)
    if (cursor_[static_cast<std::size_t>(r)] != trace_.rank(r).events.size())
      throw DeadlockError("MFACT replay deadlock in trace " + trace_.meta().app + ": rank " +
                          std::to_string(r) + " stuck at event " +
                          std::to_string(cursor_[static_cast<std::size_t>(r)]));

  std::vector<ConfigResult> out(k_);
  for (std::size_t c = 0; c < k_; ++c) {
    ConfigResult& res = out[c];
    res.config = configs_[c];
    double maxclk = 0, comm_sum = 0;
    for (std::size_t r = 0; r < nranks_; ++r) {
      const double clk = clocks_[r * k_ + c];
      maxclk = std::max(maxclk, clk);
      comm_sum += clk - counters_[r * k_ + c].compute;
      res.counters.wait += counters_[r * k_ + c].wait;
      res.counters.bandwidth += counters_[r * k_ + c].bandwidth;
      res.counters.latency += counters_[r * k_ + c].latency;
      res.counters.compute += counters_[r * k_ + c].compute;
      res.counters.p2p += counters_[r * k_ + c].p2p;
      res.counters.coll += counters_[r * k_ + c].coll;
    }
    res.total_time = static_cast<SimTime>(maxclk);
    res.comm_time_mean = static_cast<SimTime>(comm_sum / static_cast<double>(nranks_));
  }
  return out;
}

}  // namespace

namespace {

/// Publish `scheme.mfact.*` counters for one evaluation. The model is
/// analytic — there is no DES behind it — so `des_events_processed` is
/// registered but never incremented: it reads as an honest zero next to the
/// simulation schemes in telemetry summaries.
void flush_mfact_telemetry(const trace::Trace& t, std::size_t nconfigs,
                           const std::vector<ConfigResult>& out, double wall) {
  auto& reg = telemetry::Registry::global();
  if (!reg.enabled()) return;
  std::uint64_t total_events = 0;
  for (Rank r = 0; r < t.nranks(); ++r) total_events += t.rank(r).events.size();
  double wait_sum = 0;
  for (const ConfigResult& cr : out) wait_sum += cr.counters.wait;
  reg.counter("scheme.mfact.runs").add(1);
  reg.counter("scheme.mfact.des_events_processed");
  reg.counter("scheme.mfact.replay_events").add(total_events);
  reg.counter("scheme.mfact.model_evals").add(total_events * nconfigs);
  reg.counter("scheme.mfact.logical_wait_ns").add(static_cast<std::uint64_t>(wait_sum));
  reg.histogram("scheme.mfact.wall_seconds", telemetry::duration_bounds()).observe(wall);
}

}  // namespace

std::vector<ConfigResult> run_mfact(const trace::Trace& t,
                                    const std::vector<NetworkConfigPoint>& configs,
                                    const MfactParams& params, double* wall_seconds) {
  robust::fault_point(robust::FaultSite::kMfact);
  const auto start = std::chrono::steady_clock::now();
  LogicalReplay replay(t, configs, params);
  auto out = replay.run();
  const auto end = std::chrono::steady_clock::now();
  const double wall = std::chrono::duration<double>(end - start).count();
  if (wall_seconds != nullptr) *wall_seconds = wall;
  flush_mfact_telemetry(t, configs.size(), out, wall);
  return out;
}

std::vector<NetworkConfigPoint> make_sensitivity_sweep(Bandwidth base_bw, SimTime base_lat,
                                                       double compute_scale) {
  std::vector<NetworkConfigPoint> pts(kSweepNumPoints);
  auto set = [&](int i, double bw_mul, double lat_mul, std::string label) {
    pts[static_cast<std::size_t>(i)] = {base_bw * bw_mul,
                                        static_cast<SimTime>(static_cast<double>(base_lat) *
                                                             lat_mul),
                                        compute_scale, std::move(label)};
  };
  set(kSweepBase, 1, 1, "base");
  set(kSweepBwUp8, 8, 1, "bw x8");
  set(kSweepBwDown8, 1.0 / 8, 1, "bw /8");
  set(kSweepLatDown8, 1, 1.0 / 8, "lat /8");
  set(kSweepLatUp8, 1, 8, "lat x8");
  set(kSweepBwUp2, 2, 1, "bw x2");
  set(kSweepBwDown2, 0.5, 1, "bw /2");
  set(kSweepLatUp2, 1, 2, "lat x2");
  return pts;
}

}  // namespace hps::mfact
