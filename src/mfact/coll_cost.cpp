#include "mfact/coll_cost.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"

namespace hps::mfact {

int log2_ceil(int n) {
  HPS_CHECK(n >= 1);
  return static_cast<int>(std::bit_width(static_cast<unsigned>(n - 1)));
}

namespace {

double beta_ns(std::uint64_t bytes, const CostParams& p) {
  return p.bandwidth_Bps > 0 ? static_cast<double>(bytes) / p.bandwidth_Bps * 1e9 : 0.0;
}

double alpha_ns(int rounds, const CostParams& p) {
  return static_cast<double>(rounds) * (p.latency_ns + p.overhead_ns);
}

}  // namespace

CollCost collective_cost(trace::OpType op, int n, std::uint64_t bytes, const CostParams& p) {
  using trace::OpType;
  CollCost c;
  if (n <= 1) return c;
  const int logn = log2_ceil(n);
  const double nd = static_cast<double>(n);
  switch (op) {
    case OpType::kBarrier:
      // Dissemination: ceil(log2 n) zero-byte rounds.
      c.latency_ns = alpha_ns(logn, p);
      break;
    case OpType::kBcast:
    case OpType::kReduce:
      // Binomial tree: ceil(log2 n) rounds carrying the full payload.
      c.latency_ns = alpha_ns(logn, p);
      c.bandwidth_ns = static_cast<double>(logn) * beta_ns(bytes, p);
      break;
    case OpType::kAllreduce:
      if (bytes > p.allreduce_rabenseifner_threshold) {
        // Rabenseifner: 2 log n rounds, 2 (n-1)/n m bytes on the wire.
        c.latency_ns = alpha_ns(2 * logn, p);
        c.bandwidth_ns = 2.0 * (nd - 1.0) / nd * beta_ns(bytes, p);
      } else {
        // Recursive doubling: log n rounds of the full payload.
        c.latency_ns = alpha_ns(logn, p);
        c.bandwidth_ns = static_cast<double>(logn) * beta_ns(bytes, p);
      }
      break;
    case OpType::kAllgather:
      // Ring: n-1 rounds of the per-rank contribution.
      c.latency_ns = alpha_ns(n - 1, p);
      c.bandwidth_ns = (nd - 1.0) * beta_ns(bytes, p);
      break;
    case OpType::kAlltoall:
      // Pairwise exchange: n-1 rounds of the per-peer block.
      c.latency_ns = alpha_ns(n - 1, p);
      c.bandwidth_ns = (nd - 1.0) * beta_ns(bytes, p);
      break;
    case OpType::kGather:
    case OpType::kScatter:
      // Binomial tree; the root moves (n-1) blocks in ceil(log2 n) rounds.
      c.latency_ns = alpha_ns(logn, p);
      c.bandwidth_ns = (nd - 1.0) * beta_ns(bytes, p);
      break;
    case OpType::kReduceScatter:
      // Recursive halving: log n rounds, (n-1)/n of the vector on the wire.
      c.latency_ns = alpha_ns(logn, p);
      c.bandwidth_ns = (nd - 1.0) / nd * beta_ns(bytes, p);
      break;
    case OpType::kScan:
      // Linear pipeline: n-1 hops of the payload (latency-dominated).
      c.latency_ns = alpha_ns(n - 1, p);
      c.bandwidth_ns = beta_ns(bytes, p);
      break;
    default:
      HPS_CHECK_MSG(false, "collective_cost: not a collective");
  }
  return c;
}

CollCost alltoallv_cost(int n, int nonzero_peers, std::uint64_t send_bytes,
                        std::uint64_t recv_bytes, const CostParams& p) {
  CollCost c;
  if (n <= 1) return c;
  const int rounds = std::max(0, std::min(nonzero_peers, n - 1));
  c.latency_ns = alpha_ns(rounds, p);
  c.bandwidth_ns = beta_ns(std::max(send_bytes, recv_bytes), p);
  return c;
}

}  // namespace hps::mfact
