// Step-wise forward variable selection driven by the Akaike information
// criterion, capped at a maximum number of variables to limit over-fitting
// and multi-collinearity (the paper caps at five).
#pragma once

#include <span>
#include <vector>

#include "stats/logistic.hpp"

namespace hps::stats {

struct StepwiseOptions {
  int max_variables = 5;
  /// A candidate must improve AIC by at least this much to be added.
  double min_aic_improvement = 1e-9;
  LogisticFitOptions fit;
};

struct StepwiseResult {
  LogisticModel model;           ///< final fitted model
  std::vector<int> order;        ///< features in selection order
  std::vector<double> aic_path;  ///< AIC after each addition (starting with
                                 ///< the intercept-only AIC)
};

/// Forward-select from all columns of `data` using the given training rows.
/// `excluded` columns are never considered (e.g. identifiers).
StepwiseResult stepwise_forward(const Dataset& data, std::span<const std::size_t> rows,
                                std::span<const int> excluded = {},
                                const StepwiseOptions& opts = {});

}  // namespace hps::stats
