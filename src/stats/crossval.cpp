#include "stats/crossval.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats_util.hpp"

namespace hps::stats {

SplitMetrics evaluate(const LogisticModel& model, const Dataset& data,
                      std::span<const std::size_t> rows) {
  SplitMetrics m;
  for (const std::size_t r : rows) {
    const int pred = model.classify(data.x.row(r));
    const int truth = data.y[r];
    if (truth == 1 && pred == 1) ++m.tp;
    if (truth == 0 && pred == 0) ++m.tn;
    if (truth == 0 && pred == 1) ++m.fp;
    if (truth == 1 && pred == 0) ++m.fn;
  }
  const int total = m.tp + m.tn + m.fp + m.fn;
  if (total > 0)
    m.misclassification = static_cast<double>(m.fp + m.fn) / static_cast<double>(total);
  if (m.fn + m.tp > 0)
    m.false_negative_rate = static_cast<double>(m.fn) / static_cast<double>(m.fn + m.tp);
  if (m.fp + m.tn > 0)
    m.false_positive_rate = static_cast<double>(m.fp) / static_cast<double>(m.fp + m.tn);
  return m;
}

CrossValResult monte_carlo_cv(const Dataset& data, const CrossValOptions& opts) {
  const std::size_t n = data.n();
  HPS_REQUIRE(n >= 10, "monte_carlo_cv: dataset too small");
  const auto train_n = static_cast<std::size_t>(opts.train_fraction * static_cast<double>(n));
  HPS_REQUIRE(train_n >= 2 && train_n < n, "monte_carlo_cv: bad train fraction");

  CrossValResult res;
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  std::vector<int> select_count(data.p(), 0);
  std::vector<double> coef_sum(data.p(), 0.0);

  Rng rng(opts.seed);
  for (int s = 0; s < opts.splits; ++s) {
    rng.shuffle(order);
    const std::span<const std::size_t> train(order.data(), train_n);
    const std::span<const std::size_t> test(order.data() + train_n, n - train_n);

    const StepwiseResult sw = stepwise_forward(data, train, {}, opts.stepwise);
    res.per_split.push_back(evaluate(sw.model, data, test));

    for (std::size_t j = 0; j < sw.model.features.size(); ++j) {
      const auto f = static_cast<std::size_t>(sw.model.features[j]);
      ++select_count[f];
      coef_sum[f] += sw.model.coef[j];
    }
  }

  std::vector<double> mis, fn, fp;
  for (const auto& m : res.per_split) {
    mis.push_back(m.misclassification);
    fn.push_back(m.false_negative_rate);
    fp.push_back(m.false_positive_rate);
  }
  res.misclassification_trimmed_mean = trimmed_mean(mis, opts.trim);
  res.misclassification_sd = stddev(mis);
  res.fn_rate_trimmed_mean = trimmed_mean(fn, opts.trim);
  res.fp_rate_trimmed_mean = trimmed_mean(fp, opts.trim);

  for (std::size_t f = 0; f < data.p(); ++f) {
    if (select_count[f] == 0) continue;
    VariableReport v;
    v.feature = static_cast<int>(f);
    v.selected_fraction =
        static_cast<double>(select_count[f]) / static_cast<double>(opts.splits);
    v.mean_coefficient = coef_sum[f] / static_cast<double>(select_count[f]);
    res.variables.push_back(v);
  }
  std::sort(res.variables.begin(), res.variables.end(),
            [](const VariableReport& a, const VariableReport& b) {
              return a.selected_fraction > b.selected_fraction;
            });
  return res;
}

}  // namespace hps::stats
