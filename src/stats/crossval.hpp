// Monte-Carlo cross-validation of the stepwise logistic model (the paper's
// §VI-B.2/3): repeatedly sample 80% of the observations without replacement
// as a training set, run stepwise selection and fitting on it, and evaluate
// the misclassification / false-negative / false-positive rates on the held-
// out 20%. Rates are aggregated as 2%-trimmed means over the (default 100)
// splits; per-variable selection frequencies and mean coefficients are
// collected for the Table IV report.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/stepwise.hpp"

namespace hps::stats {

/// Confusion-matrix rates on one test split. Positive = "needs simulation".
struct SplitMetrics {
  double misclassification = 0;
  double false_negative_rate = 0;  ///< FN / (FN + TP)
  double false_positive_rate = 0;  ///< FP / (FP + TN)
  int tp = 0, tn = 0, fp = 0, fn = 0;
};

/// Evaluate a fitted model on the given rows.
SplitMetrics evaluate(const LogisticModel& model, const Dataset& data,
                      std::span<const std::size_t> rows);

struct CrossValOptions {
  int splits = 100;
  double train_fraction = 0.8;
  double trim = 0.02;  ///< trimmed-mean fraction for the aggregate rates
  std::uint64_t seed = 0x5EEDCAFE;
  StepwiseOptions stepwise;
};

struct VariableReport {
  int feature = -1;
  double selected_fraction = 0;  ///< share of splits that picked it
  double mean_coefficient = 0;   ///< mean over the splits that picked it
};

struct CrossValResult {
  std::vector<SplitMetrics> per_split;
  double misclassification_trimmed_mean = 0;
  double misclassification_sd = 0;
  double fn_rate_trimmed_mean = 0;
  double fp_rate_trimmed_mean = 0;
  /// Per-variable selection stats, sorted by selection frequency (desc).
  std::vector<VariableReport> variables;
  double success_rate() const { return 1.0 - misclassification_trimmed_mean; }
};

CrossValResult monte_carlo_cv(const Dataset& data, const CrossValOptions& opts = {});

}  // namespace hps::stats
