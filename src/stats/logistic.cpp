#include "stats/logistic.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hps::stats {

namespace {

double sigmoid(double z) {
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

/// Log-likelihood contribution, numerically stable.
double loglik_term(double z, int y) {
  // log p if y=1, log(1-p) if y=0; both equal -log(1 + exp(-s z')) forms.
  const double zy = y == 1 ? z : -z;
  if (zy > 35) return 0.0;
  if (zy < -35) return zy;
  return -std::log1p(std::exp(-zy));
}

}  // namespace

double LogisticModel::predict(std::span<const double> row) const {
  double z = intercept;
  for (std::size_t j = 0; j < features.size(); ++j)
    z += coef[j] * row[static_cast<std::size_t>(features[j])];
  return sigmoid(z);
}

LogisticModel fit_logistic(const Dataset& data, std::span<const int> features,
                           std::span<const std::size_t> rows,
                           const LogisticFitOptions& opts) {
  const std::size_t n = rows.size();
  const std::size_t p = features.size();
  HPS_REQUIRE(n >= 2, "fit_logistic: too few rows");
  for (int f : features)
    HPS_CHECK(f >= 0 && static_cast<std::size_t>(f) < data.p());

  // Standardize selected columns over the training rows.
  std::vector<double> mean(p, 0.0), sd(p, 1.0);
  for (std::size_t j = 0; j < p; ++j) {
    double s = 0;
    for (const std::size_t r : rows) s += data.x(r, static_cast<std::size_t>(features[j]));
    mean[j] = s / static_cast<double>(n);
    double ss = 0;
    for (const std::size_t r : rows) {
      const double d = data.x(r, static_cast<std::size_t>(features[j])) - mean[j];
      ss += d * d;
    }
    sd[j] = std::sqrt(ss / static_cast<double>(n));
    if (sd[j] < 1e-12) sd[j] = 1.0;  // constant column: coefficient stays 0
  }

  const std::size_t d = p + 1;  // intercept + features, standardized space
  std::vector<double> beta(d, 0.0);
  std::vector<double> z(n), w(n), resid(n);

  auto linear = [&](std::size_t i) {
    const std::size_t r = rows[i];
    double s = beta[0];
    for (std::size_t j = 0; j < p; ++j)
      s += beta[j + 1] * (data.x(r, static_cast<std::size_t>(features[j])) - mean[j]) / sd[j];
    return s;
  };

  LogisticModel model;
  double prev_ll = -1e300;
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    model.iterations = iter + 1;
    // Newton step: solve (X'WX + ridge) delta = X'(y - p).
    Matrix h(d, d);
    std::vector<double> g(d, 0.0);
    double ll = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t r = rows[i];
      const double zi = linear(i);
      const double pi = sigmoid(zi);
      const int yi = data.y[r];
      ll += loglik_term(zi, yi);
      const double wi = std::max(pi * (1.0 - pi), 1e-10);
      const double ri = static_cast<double>(yi) - pi;
      // Accumulate gradient and Hessian over [1, x_std...].
      std::vector<double> xi(d);
      xi[0] = 1.0;
      for (std::size_t j = 0; j < p; ++j)
        xi[j + 1] = (data.x(r, static_cast<std::size_t>(features[j])) - mean[j]) / sd[j];
      for (std::size_t a = 0; a < d; ++a) {
        g[a] += ri * xi[a];
        for (std::size_t b = a; b < d; ++b) h(a, b) += wi * xi[a] * xi[b];
      }
    }
    for (std::size_t a = 0; a < d; ++a)
      for (std::size_t b = 0; b < a; ++b) h(a, b) = h(b, a);
    // Ridge on feature coefficients (not intercept) and its gradient term.
    for (std::size_t a = 1; a < d; ++a) {
      h(a, a) += opts.ridge;
      g[a] -= opts.ridge * beta[a];
    }

    std::vector<double> delta;
    try {
      delta = cholesky_solve(h, g);
    } catch (const Error&) {
      break;  // Hessian collapsed (separation); keep the last iterate
    }
    double step = 0;
    for (std::size_t a = 0; a < d; ++a) {
      beta[a] += delta[a];
      step = std::max(step, std::fabs(delta[a]));
    }
    model.log_likelihood = ll;
    if (std::fabs(ll - prev_ll) < opts.tolerance && step < 1e-6) {
      model.converged = true;
      break;
    }
    prev_ll = ll;
  }

  // Final log-likelihood at the converged beta.
  double ll = 0;
  for (std::size_t i = 0; i < n; ++i) ll += loglik_term(linear(i), data.y[rows[i]]);
  model.log_likelihood = ll;
  model.aic = 2.0 * static_cast<double>(d) - 2.0 * ll;

  // Back-transform to the original feature scale.
  model.features.assign(features.begin(), features.end());
  model.coef.resize(p);
  model.intercept = beta[0];
  for (std::size_t j = 0; j < p; ++j) {
    model.coef[j] = beta[j + 1] / sd[j];
    model.intercept -= beta[j + 1] * mean[j] / sd[j];
  }
  return model;
}

LogisticModel fit_logistic(const Dataset& data, std::span<const int> features,
                           const LogisticFitOptions& opts) {
  std::vector<std::size_t> rows(data.n());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  return fit_logistic(data, features, rows, opts);
}

}  // namespace hps::stats
