#include "stats/stepwise.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hps::stats {

StepwiseResult stepwise_forward(const Dataset& data, std::span<const std::size_t> rows,
                                std::span<const int> excluded, const StepwiseOptions& opts) {
  StepwiseResult res;
  std::vector<bool> banned(data.p(), false);
  for (int e : excluded) banned[static_cast<std::size_t>(e)] = true;

  std::vector<int> selected;
  LogisticModel current = fit_logistic(data, selected, rows, opts.fit);
  res.aic_path.push_back(current.aic);

  while (static_cast<int>(selected.size()) < opts.max_variables) {
    int best_feature = -1;
    LogisticModel best_model;
    double best_aic = current.aic - opts.min_aic_improvement;
    for (int f = 0; f < static_cast<int>(data.p()); ++f) {
      if (banned[static_cast<std::size_t>(f)]) continue;
      if (std::find(selected.begin(), selected.end(), f) != selected.end()) continue;
      std::vector<int> trial = selected;
      trial.push_back(f);
      LogisticModel m = fit_logistic(data, trial, rows, opts.fit);
      if (m.aic < best_aic) {
        best_aic = m.aic;
        best_feature = f;
        best_model = std::move(m);
      }
    }
    if (best_feature < 0) break;  // no candidate improves AIC
    selected.push_back(best_feature);
    res.order.push_back(best_feature);
    current = std::move(best_model);
    res.aic_path.push_back(current.aic);
  }
  res.model = std::move(current);
  return res;
}

}  // namespace hps::stats
