// Parametric logistic regression fitted by iteratively reweighted least
// squares (IRLS / Newton-Raphson), the model class the paper selects for its
// small 235-observation dataset (§VI-B). Features are z-standardized
// internally for numerical stability; reported coefficients are transformed
// back to the original feature scale, matching how Table IV is presented.
//
// Note on magnitudes: near-separating predictors (the paper's CL{ncs}, which
// is selected in 100% of splits with a coefficient of -1.68e3) drive IRLS
// toward infinite weights. A small ridge penalty keeps the solve finite; the
// resulting large-but-finite coefficients reproduce the paper's behaviour.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/matrix.hpp"

namespace hps::stats {

/// A design matrix (rows = observations) with binary labels.
struct Dataset {
  Matrix x;                ///< n x p feature matrix
  std::vector<int> y;      ///< n binary labels (0/1)
  std::vector<std::string> names;  ///< p column names

  std::size_t n() const { return x.rows(); }
  std::size_t p() const { return x.cols(); }
};

struct LogisticFitOptions {
  int max_iterations = 50;
  double tolerance = 1e-8;
  /// Ridge penalty on standardized coefficients (not the intercept).
  double ridge = 1e-4;
};

/// Fitted model over a subset of columns.
struct LogisticModel {
  std::vector<int> features;       ///< column indices used, in order
  double intercept = 0;            ///< on the original feature scale
  std::vector<double> coef;        ///< per selected feature, original scale
  double log_likelihood = 0;
  double aic = 0;                  ///< 2k - 2 logL, k = features + intercept
  int iterations = 0;
  bool converged = false;

  /// P(y = 1 | row), where `row` spans the FULL feature vector (the model
  /// picks out its own columns).
  double predict(std::span<const double> row) const;
  /// Hard classification at the 0.5 threshold.
  int classify(std::span<const double> row) const { return predict(row) >= 0.5 ? 1 : 0; }
};

/// Fit on the given column subset of `data` (empty subset = intercept only).
/// Rows listed in `rows` are used; pass all indices for a full fit.
LogisticModel fit_logistic(const Dataset& data, std::span<const int> features,
                           std::span<const std::size_t> rows,
                           const LogisticFitOptions& opts = {});

/// Convenience: fit on all rows.
LogisticModel fit_logistic(const Dataset& data, std::span<const int> features,
                           const LogisticFitOptions& opts = {});

}  // namespace hps::stats
