#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

namespace hps {

void TextTable::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void TextTable::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

void TextTable::add_separator() { separators_.push_back(rows_.size()); }

std::string TextTable::render() const {
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> widths(ncols, 0);
  auto measure = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) widths[c] = std::max(widths[c], r[c].size());
  };
  measure(header_);
  for (const auto& r : rows_) measure(r);

  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;

  auto emit_row = [&](std::string& out, const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string{};
      out += cell;
      if (c + 1 < ncols) out.append(widths[c] - cell.size() + 2, ' ');
    }
    out += '\n';
  };

  std::string out;
  if (!header_.empty()) {
    emit_row(out, header_);
    out.append(total, '-');
    out += '\n';
  }
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    emit_row(out, rows_[i]);
    if (std::find(separators_.begin(), separators_.end(), i + 1) != separators_.end()) {
      out.append(total, '-');
      out += '\n';
    }
  }
  return out;
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string fmt_si_bytes(double bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f %s", bytes, units[u]);
  return buf;
}

std::string fmt_time_s(double seconds, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f s", precision, seconds);
  return buf;
}

}  // namespace hps
