#include "common/matrix.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hps {

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  HPS_CHECK(cols_ == other.rows());
  Matrix out(rows_, other.cols());
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < other.cols(); ++j) out(i, j) += aik * other(k, j);
    }
  }
  return out;
}

std::vector<double> Matrix::multiply_vec(std::span<const double> v) const {
  HPS_CHECK(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) s += (*this)(i, j) * v[j];
    out[i] = s;
  }
  return out;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> cholesky_solve(const Matrix& a, std::span<const double> b) {
  const std::size_t n = a.rows();
  HPS_CHECK(a.cols() == n && b.size() == n);
  // Lower-triangular factor L with A = L L^T.
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      if (i == j) {
        HPS_REQUIRE(s > 0.0, "cholesky_solve: matrix not positive definite");
        l(i, i) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  // Forward solve L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  // Back solve L^T x = y.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

std::vector<double> lu_solve(const Matrix& a, std::span<const double> b) {
  const std::size_t n = a.rows();
  HPS_CHECK(a.cols() == n && b.size() == n);
  Matrix m = a;  // working copy, factored in place
  std::vector<std::size_t> piv(n);
  for (std::size_t i = 0; i < n; ++i) piv[i] = i;
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t best = col;
    double best_abs = std::fabs(m(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(m(r, col));
      if (v > best_abs) {
        best_abs = v;
        best = r;
      }
    }
    HPS_REQUIRE(best_abs > 1e-300, "lu_solve: singular matrix");
    if (best != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(m(col, c), m(best, c));
      std::swap(piv[col], piv[best]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = m(r, col) / m(col, col);
      m(r, col) = f;
      for (std::size_t c = col + 1; c < n; ++c) m(r, c) -= f * m(col, c);
    }
  }
  // Apply permutation to b, then forward/back substitute.
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[piv[i]];
  for (std::size_t i = 1; i < n; ++i)
    for (std::size_t k = 0; k < i; ++k) x[i] -= m(i, k) * x[k];
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t k = ii + 1; k < n; ++k) x[ii] -= m(ii, k) * x[k];
    x[ii] /= m(ii, ii);
  }
  return x;
}

double dot(std::span<const double> a, std::span<const double> b) {
  HPS_CHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace hps
