// Free-list index pool shared by the simulators' hot paths.
#pragma once

#include <cstdint>
#include <vector>

namespace hps {

/// Slab of reusable slots addressed by dense 32-bit indices: alloc() pops the
/// free list or grows the slab, release() pushes the slot back. Slots are
/// never destroyed between uses, so per-slot containers (routes, payloads)
/// keep their heap capacity across recycling — after warm-up a simulator
/// allocates nothing per message or packet. Indices stay valid across
/// alloc()/release(), which is what lets clients link slots into intrusive
/// lists.
template <typename T>
class IndexPool {
 public:
  std::uint32_t alloc() {
    if (!free_.empty()) {
      const std::uint32_t i = free_.back();
      free_.pop_back();
      return i;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }
  void release(std::uint32_t i) { free_.push_back(i); }

  T& operator[](std::uint32_t i) { return slots_[i]; }
  const T& operator[](std::uint32_t i) const { return slots_[i]; }

  /// Slots currently allocated (slab size minus free-list length).
  std::size_t live() const { return slots_.size() - free_.size(); }
  /// Total slots ever created (high-water mark of live()).
  std::size_t capacity() const { return slots_.size(); }

  void clear() {
    slots_.clear();
    free_.clear();
  }

 private:
  std::vector<T> slots_;
  std::vector<std::uint32_t> free_;
};

}  // namespace hps
