// Open-addressing hash map for simulator hot paths.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace hps {

/// Multiplicative mixer for integral keys whose low bits are structured
/// (packed rank/tag words, sequence numbers).
struct Mix64Hash {
  std::size_t operator()(std::uint64_t x) const {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};

/// Linear-probing hash map over one contiguous slot array: no per-node
/// allocation (the std::unordered_map cost this replaces), and erase uses
/// backward-shift deletion instead of tombstones, so heavy insert/erase
/// churn — one match record per message in the replayer — cannot degrade
/// probe lengths over a run. Capacity is a power of two and only grows;
/// clear() keeps it. Iteration order is unspecified and pointers are
/// invalidated by rehash, like the standard containers.
template <typename K, typename V, typename H>
class FlatMap {
 public:
  /// Value for `key`, default-constructed on first access.
  V& operator[](const K& key) {
    if ((size_ + 1) * 4 > slots_.size() * 3) grow();
    std::size_t i = probe(key);
    if (!used_[i]) {
      used_[i] = 1;
      ++size_;
      slots_[i].first = key;
      slots_[i].second = V{};
    }
    return slots_[i].second;
  }

  /// Pointer to the mapped value, or nullptr when absent.
  V* find(const K& key) {
    if (size_ == 0) return nullptr;
    const std::size_t i = probe(key);
    return used_[i] ? &slots_[i].second : nullptr;
  }

  /// Mapped value; the key must be present.
  V& at(const K& key) {
    V* v = find(key);
    HPS_CHECK_MSG(v != nullptr, "FlatMap::at: key not present");
    return *v;
  }

  /// Remove `key` if present; returns whether it was. Backward-shifts the
  /// displaced tail of the probe chain, leaving no tombstone.
  bool erase(const K& key) {
    if (size_ == 0) return false;
    std::size_t i = probe(key);
    if (!used_[i]) return false;
    --size_;
    const std::size_t mask = slots_.size() - 1;
    std::size_t j = i;
    for (;;) {
      used_[i] = 0;
      std::size_t home;
      do {
        j = (j + 1) & mask;
        if (!used_[j]) return true;
        home = H{}(slots_[j].first) & mask;
        // Keep scanning while slot j's home lies cyclically inside (i, j]:
        // such an entry cannot move back past its home position.
      } while (i <= j ? (i < home && home <= j) : (i < home || home <= j));
      slots_[i] = std::move(slots_[j]);
      used_[i] = 1;
      i = j;
    }
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Drop all entries but keep the slot array's capacity.
  void clear() {
    std::fill(used_.begin(), used_.end(), std::uint8_t{0});
    size_ = 0;
  }

 private:
  /// Index of `key`'s slot, or of the empty slot where it would go.
  std::size_t probe(const K& key) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = H{}(key) & mask;
    while (used_[i] && !(slots_[i].first == key)) i = (i + 1) & mask;
    return i;
  }

  void grow() {
    const std::size_t new_cap = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<std::pair<K, V>> old_slots(new_cap);
    std::vector<std::uint8_t> old_used(new_cap, 0);
    old_slots.swap(slots_);
    old_used.swap(used_);
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_used[i]) continue;
      const std::size_t j = probe(old_slots[i].first);
      slots_[j] = std::move(old_slots[i]);
      used_[j] = 1;
    }
  }

  std::vector<std::pair<K, V>> slots_;
  std::vector<std::uint8_t> used_;
  std::size_t size_ = 0;
};

}  // namespace hps
