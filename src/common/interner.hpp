// String interner: dense stable ids for repeated small strings.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace hps {

/// Maps each distinct string to a dense uint32 id and keeps one canonical
/// copy with a stable address. Study bookkeeping and ledger analysis key
/// maps by (app, machine, scheme, ...) over thousands of records drawn from
/// a few dozen distinct names — comparing interned ids replaces repeated
/// string hashing and comparison, and every repeat shares one allocation.
class StringInterner {
 public:
  /// Id of `s`, interning it on first sight.
  std::uint32_t id(std::string_view s) {
    const auto it = index_.find(s);
    if (it != index_.end()) return it->second;
    strings_.emplace_back(s);
    const auto new_id = static_cast<std::uint32_t>(strings_.size() - 1);
    index_.emplace(strings_.back(), new_id);
    return new_id;
  }

  /// Canonical copy of `s` (interning it on first sight). The reference
  /// stays valid for the interner's lifetime.
  const std::string& intern(std::string_view s) { return strings_[id(s)]; }

  /// String for a previously returned id.
  const std::string& str(std::uint32_t id) const { return strings_[id]; }

  std::size_t size() const { return strings_.size(); }

 private:
  std::deque<std::string> strings_;  // deque: growth never moves elements
  // Views point into strings_; safe because entries are never removed.
  std::unordered_map<std::string_view, std::uint32_t> index_;
};

}  // namespace hps
