// Deterministic random number generation.
//
// Every stochastic component in hpcsweep takes an explicit 64-bit seed and
// derives its own stream, so that corpus generation and the statistical
// experiments are bit-reproducible run to run. We use xoshiro256** seeded
// via SplitMix64 (the construction recommended by the xoshiro authors).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

namespace hps {

/// SplitMix64 step: used for seeding and for cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mix two 64-bit values into one (for deriving per-entity sub-seeds).
constexpr std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b * 0x9e3779b97f4a7c15ULL);
  return splitmix64(s);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_u64(std::uint64_t n) {
    // Lemire's nearly-divisionless method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t t = (0 - n) % n;
      while (lo < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(uniform_u64(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller (no cached spare; keeps state simple).
  double normal() {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647692 * u2);
  }

  /// Normal with given mean and standard deviation.
  double normal(double mean, double sd) { return mean + sd * normal(); }

  /// Lognormal such that the *median* of the distribution is `median` and
  /// sigma is the shape parameter of the underlying normal.
  double lognormal_median(double median, double sigma) {
    return median * std::exp(sigma * normal());
  }

  /// Exponential with given mean.
  double exponential(double mean) {
    double u = uniform();
    while (u <= 1e-300) u = uniform();
    return -mean * std::log(u);
  }

  /// Pick an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_pick(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = uniform_u64(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace hps
