// Core unit types shared by every hpcsweep module.
//
// Time is kept in integer nanoseconds (`SimTime`) so that discrete-event
// simulation remains exactly reproducible across platforms; doubles are used
// only at the API edges (seconds for humans, bytes/second for bandwidth).
#pragma once

#include <cstdint>
#include <limits>

namespace hps {

/// Simulated (or measured) time in nanoseconds.
using SimTime = std::int64_t;

inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

/// One microsecond / millisecond / second in SimTime units.
inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;

/// Convert seconds (double) to SimTime nanoseconds, rounding to nearest.
constexpr SimTime seconds_to_time(double s) {
  return static_cast<SimTime>(s * 1e9 + (s >= 0 ? 0.5 : -0.5));
}

/// Convert SimTime nanoseconds to seconds.
constexpr double time_to_seconds(SimTime t) { return static_cast<double>(t) * 1e-9; }

/// Bandwidth in bytes per second.
using Bandwidth = double;

/// Convert gigabits/second to bytes/second.
constexpr Bandwidth gbps_to_Bps(double gbps) { return gbps * 1e9 / 8.0; }

/// Convert bytes/second to gigabits/second.
constexpr double Bps_to_gbps(Bandwidth b) { return b * 8.0 / 1e9; }

/// Time to push `bytes` through a pipe of bandwidth `bw` (bytes/second),
/// in nanoseconds (rounded up so tiny messages never cost zero).
constexpr SimTime transfer_time(std::uint64_t bytes, Bandwidth bw) {
  if (bw <= 0.0) return kSimTimeMax / 4;
  const double ns = static_cast<double>(bytes) / bw * 1e9;
  const auto t = static_cast<SimTime>(ns);
  return (static_cast<double>(t) < ns) ? t + 1 : t;
}

/// Identifier types. Kept as plain integers for speed; strong typedefs would
/// cost ergonomics in the hot replay loops without catching real bug classes
/// here (ranks, nodes and links are never interchanged in the same call).
using Rank = std::int32_t;
using NodeId = std::int32_t;
using LinkId = std::int32_t;
using Tag = std::int32_t;
using CommId = std::int32_t;

inline constexpr Rank kAnySource = -1;
inline constexpr CommId kCommWorld = 0;

inline constexpr std::uint64_t KiB = 1024;
inline constexpr std::uint64_t MiB = 1024 * 1024;

}  // namespace hps
