// Descriptive-statistics helpers used by the experiment harnesses:
// percentiles, empirical CDFs, trimmed means (the paper reports 2%-trimmed
// means over 100 cross-validation runs), and histogram bucketing.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace hps {

/// Arithmetic mean. Returns 0 for an empty span.
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator). Returns 0 for n < 2.
double stddev(std::span<const double> xs);

/// Median (average of middle two for even n). Returns 0 for empty input.
double median(std::span<const double> xs);

/// p-th percentile with linear interpolation, p in [0, 100].
double percentile(std::span<const double> xs, double p);

/// Mean after discarding the top and bottom `trim_fraction` of the sorted
/// values (e.g. 0.02 discards 2% from each tail, as in the paper's Table IV
/// evaluation). Falls back to the plain mean when too few values remain.
double trimmed_mean(std::span<const double> xs, double trim_fraction);

/// Fraction of values <= threshold (empirical CDF evaluated at a point).
double cdf_at(std::span<const double> xs, double threshold);

/// Empirical CDF sampled at each of the given thresholds.
std::vector<double> cdf_at_many(std::span<const double> xs, std::span<const double> thresholds);

/// Histogram bucket: count of values with lo < x <= hi (lo exclusive except
/// for the first bucket which includes its lower edge).
struct Bucket {
  double lo;
  double hi;
  std::size_t count;
};

/// Bucket values by the given edges; edges must be strictly increasing and
/// define edges.size()-1 buckets. Values outside the range are clamped into
/// the first / last bucket.
std::vector<Bucket> histogram(std::span<const double> xs, std::span<const double> edges);

/// Pearson correlation coefficient. Returns 0 when either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Summary of a sample, convenient for printing experiment rows.
struct Summary {
  std::size_t n = 0;
  double mean = 0, sd = 0, min = 0, p25 = 0, median = 0, p75 = 0, p90 = 0, max = 0;
};

Summary summarize(std::span<const double> xs);

}  // namespace hps
