// Small dense linear algebra, sized for the statistics module: logistic
// regression via IRLS solves (X' W X) beta = X' W z with at most ~6 columns
// (intercept + 5 selected features), so a straightforward column-major dense
// matrix with Cholesky and partial-pivot LU solvers is ample.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hps {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::span<double> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const double> row(std::size_t r) const { return {data_.data() + r * cols_, cols_}; }

  /// A^T.
  Matrix transposed() const;

  /// this * other.
  Matrix multiply(const Matrix& other) const;

  /// this * v (v.size() == cols()).
  std::vector<double> multiply_vec(std::span<const double> v) const;

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// Solve A x = b for symmetric positive-definite A via Cholesky.
/// Throws hps::Error if A is not (numerically) positive definite.
std::vector<double> cholesky_solve(const Matrix& a, std::span<const double> b);

/// Solve A x = b via partial-pivot LU. Throws hps::Error for singular A.
std::vector<double> lu_solve(const Matrix& a, std::span<const double> b);

/// Dot product.
double dot(std::span<const double> a, std::span<const double> b);

}  // namespace hps
