// Error handling helpers.
//
// Internal invariants use HPS_CHECK (aborts with a message — an invariant
// violation in a simulator means results would be garbage). Recoverable
// conditions at API boundaries (bad trace file, unsupported operation) throw
// hps::Error so callers can report and continue with the next trace.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace hps {

/// Recoverable error thrown at module API boundaries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A replay (DES or logical-clock) drained without every rank finishing: an
/// application-level deadlock in the trace. Distinct from Error so the run
/// guard can report FailKind::kDeadlock instead of a generic error.
class DeadlockError : public Error {
 public:
  using Error::Error;
};

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::fprintf(stderr, "HPS_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

}  // namespace hps

#define HPS_CHECK(cond)                                            \
  do {                                                             \
    if (!(cond)) ::hps::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define HPS_CHECK_MSG(cond, msg)                                      \
  do {                                                                \
    if (!(cond)) ::hps::check_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#define HPS_THROW(msg) throw ::hps::Error(msg)

#define HPS_REQUIRE(cond, msg) \
  do {                         \
    if (!(cond)) HPS_THROW(msg); \
  } while (0)
