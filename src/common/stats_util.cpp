#include "common/stats_util.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hps {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

namespace {
std::vector<double> sorted_copy(std::span<const double> xs) {
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  return v;
}
}  // namespace

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  HPS_CHECK(p >= 0.0 && p <= 100.0);
  const auto v = sorted_copy(xs);
  if (v.size() == 1) return v[0];
  const double pos = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double trimmed_mean(std::span<const double> xs, double trim_fraction) {
  if (xs.empty()) return 0.0;
  HPS_CHECK(trim_fraction >= 0.0 && trim_fraction < 0.5);
  const auto v = sorted_copy(xs);
  const auto cut = static_cast<std::size_t>(trim_fraction * static_cast<double>(v.size()));
  if (v.size() <= 2 * cut) return mean(v);
  double s = 0.0;
  for (std::size_t i = cut; i < v.size() - cut; ++i) s += v[i];
  return s / static_cast<double>(v.size() - 2 * cut);
}

double cdf_at(std::span<const double> xs, double threshold) {
  if (xs.empty()) return 0.0;
  std::size_t c = 0;
  for (double x : xs)
    if (x <= threshold) ++c;
  return static_cast<double>(c) / static_cast<double>(xs.size());
}

std::vector<double> cdf_at_many(std::span<const double> xs, std::span<const double> thresholds) {
  std::vector<double> out;
  out.reserve(thresholds.size());
  for (double t : thresholds) out.push_back(cdf_at(xs, t));
  return out;
}

std::vector<Bucket> histogram(std::span<const double> xs, std::span<const double> edges) {
  HPS_CHECK(edges.size() >= 2);
  for (std::size_t i = 1; i < edges.size(); ++i) HPS_CHECK(edges[i] > edges[i - 1]);
  std::vector<Bucket> buckets;
  buckets.reserve(edges.size() - 1);
  for (std::size_t i = 0; i + 1 < edges.size(); ++i) buckets.push_back({edges[i], edges[i + 1], 0});
  for (double x : xs) {
    std::size_t b = 0;
    if (x <= edges.front()) {
      b = 0;
    } else if (x > edges.back()) {
      b = buckets.size() - 1;
    } else {
      // First bucket whose upper edge is >= x.
      const auto it = std::lower_bound(edges.begin() + 1, edges.end(), x);
      b = static_cast<std::size_t>(it - (edges.begin() + 1));
      if (b >= buckets.size()) b = buckets.size() - 1;
    }
    ++buckets[b].count;
  }
  return buckets;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  HPS_CHECK(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs), my = mean(ys);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  const auto v = sorted_copy(xs);
  s.mean = mean(v);
  s.sd = stddev(v);
  s.min = v.front();
  s.max = v.back();
  s.p25 = percentile(v, 25);
  s.median = percentile(v, 50);
  s.p75 = percentile(v, 75);
  s.p90 = percentile(v, 90);
  return s;
}

}  // namespace hps
