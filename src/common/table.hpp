// Plain-text table formatter for the benchmark harnesses, so that each
// bench binary prints its paper table/figure in a consistent aligned layout.
#pragma once

#include <string>
#include <vector>

namespace hps {

/// Accumulates rows of string cells and renders them with aligned columns.
class TextTable {
 public:
  /// Set the header row. Number of columns is inferred from it.
  void set_header(std::vector<std::string> header);

  /// Append a data row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> row);

  /// Insert a horizontal separator after the most recently added row.
  void add_separator();

  /// Render with two-space column gaps and a rule under the header.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> separators_;  // row indexes after which to draw a rule
};

/// printf-style number formatting helpers used by the bench binaries.
std::string fmt_double(double v, int precision = 2);
std::string fmt_percent(double fraction, int precision = 1);  // 0.932 -> "93.2%"
std::string fmt_si_bytes(double bytes);                       // 1536 -> "1.5 KiB"
std::string fmt_time_s(double seconds, int precision = 2);    // seconds with unit

}  // namespace hps
