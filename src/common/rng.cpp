#include "common/rng.hpp"

namespace hps {

std::size_t Rng::weighted_pick(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0 ? w : 0);
  if (total <= 0.0) return 0;
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0 ? weights[i] : 0;
    if (x < w) return i;
    x -= w;
  }
  return weights.size() - 1;
}

}  // namespace hps
