// Capacity planning with MFACT: the modeling tool's headline capability is
// predicting application performance across MANY network configurations from
// a single trace replay (paper §II-C: "to explore disruptive or
// significantly different systems such as a cluster with a 10x faster
// network ... modeling can give the prediction results for the large design
// space quickly").
//
// This example sweeps a 6x5 grid of bandwidth/latency scalings for one
// application and prints the predicted speedup surface plus the four MFACT
// time counters, all from one replay.
//
// Usage: capacity_planning [app] [ranks] [machine]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "machine/machine.hpp"
#include "mfact/classify.hpp"
#include "mfact/model.hpp"
#include "workloads/generators.hpp"

int main(int argc, char** argv) {
  using namespace hps;

  const std::string app = argc > 1 ? argv[1] : "Nekbone";
  workloads::GenParams gp;
  gp.ranks = argc > 2 ? std::atoi(argv[2]) : 256;
  gp.machine = argc > 3 ? argv[3] : "cielito";
  gp.seed = 11;

  const machine::MachineConfig mc = machine::machine_by_name(gp.machine);
  std::printf("Generating %s on %d ranks; baseline network: %.0f Gbps, %lld ns (%s)\n\n",
              app.c_str(), gp.ranks, Bps_to_gbps(mc.net.link_bandwidth),
              static_cast<long long>(mc.net.end_to_end_latency), gp.machine.c_str());
  const trace::Trace t = workloads::generate_app(app, gp);

  // Build the what-if grid: bandwidth x {1/4 .. 16}, latency x {4 .. 1/8}.
  const double bw_scales[] = {0.25, 0.5, 1, 2, 4, 16};
  const double lat_scales[] = {4, 2, 1, 0.5, 0.125};
  std::vector<mfact::NetworkConfigPoint> configs;
  for (const double b : bw_scales)
    for (const double l : lat_scales)
      configs.push_back({mc.net.link_bandwidth * b,
                         static_cast<SimTime>(static_cast<double>(mc.net.end_to_end_latency) *
                                              l),
                         1.0, ""});

  double wall = 0;
  const auto results = run_mfact(t, configs, {}, &wall);
  std::printf("Evaluated %zu network configurations in ONE replay: %.3f s total\n\n",
              configs.size(), wall);

  // Baseline = (bw x1, lat x1).
  double base = 0;
  std::size_t idx = 0;
  for (const double b : bw_scales)
    for (const double l : lat_scales) {
      if (b == 1 && l == 1) base = static_cast<double>(results[idx].total_time);
      ++idx;
    }

  TextTable grid;
  std::vector<std::string> header = {"speedup"};
  for (const double l : lat_scales) header.push_back("lat x" + fmt_double(l, 3));
  grid.set_header(header);
  idx = 0;
  for (const double b : bw_scales) {
    std::vector<std::string> row = {"bw x" + fmt_double(b, 2)};
    for (std::size_t li = 0; li < std::size(lat_scales); ++li) {
      row.push_back(fmt_double(base / static_cast<double>(results[idx].total_time), 3));
      ++idx;
    }
    grid.add_row(row);
  }
  std::printf("Predicted speedup over the baseline (rows: bandwidth, cols: latency):\n%s\n",
              grid.render().c_str());

  // Counter breakdown at the baseline.
  const auto cl = mfact::classify(t, mc.net.link_bandwidth, mc.net.end_to_end_latency);
  const auto& c = cl.sweep[mfact::kSweepBase].counters;
  const double total = c.wait + c.bandwidth + c.latency + c.compute;
  std::printf("MFACT counters at baseline: compute %.1f%%, wait %.1f%%, bandwidth %.1f%%, "
              "latency %.1f%%\n",
              100 * c.compute / total, 100 * c.wait / total, 100 * c.bandwidth / total,
              100 * c.latency / total);
  std::printf("Classification: %s — invest in %s.\n", mfact::app_class_name(cl.app_class),
              cl.app_class == mfact::AppClass::kComputationBound  ? "faster processors"
              : cl.app_class == mfact::AppClass::kLoadImbalanceBound ? "better load balance"
              : cl.app_class == mfact::AppClass::kLatencyBound       ? "lower network latency"
                                                                     : "network bandwidth");
  return 0;
}
