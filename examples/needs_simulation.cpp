// The enhanced-MFACT workflow end to end (paper §VI): train the
// need-for-simulation predictor on a corpus of traces where both tools were
// run, then apply it to fresh traces — deciding from the cheap MFACT replay
// alone whether the expensive detailed simulation is worth running.
//
// Usage: needs_simulation [corpus_size] (default 60; larger = better model)
#include <cstdio>
#include <cstdlib>

#include "common/table.hpp"
#include "core/decision.hpp"
#include "core/study.hpp"
#include "trace/features.hpp"
#include "workloads/generators.hpp"

int main(int argc, char** argv) {
  using namespace hps;
  using core::Scheme;

  // 1. Training data: run the four schemes over a corpus subset.
  core::StudyOptions sopts;
  sopts.corpus.limit = argc > 1 ? std::atoi(argv[1]) : 60;
  sopts.corpus.duration_scale = 0.25;
  sopts.progress = true;
  std::printf("Training on %d corpus traces (running MFACT + 3 simulators on each)...\n",
              sopts.corpus.limit);
  const auto study = core::run_study(sopts);

  // 2. Train and cross-validate the predictor.
  core::DecisionOptions dopts;
  dopts.cv.splits = 50;
  const auto ev = core::evaluate_decision_model(study.outcomes, dopts);
  std::printf("\nCross-validated success rate: %s (naive CL-only rule: %s)\n",
              fmt_percent(ev.cv.success_rate(), 1).c_str(),
              fmt_percent(ev.naive.success_rate, 1).c_str());
  std::printf("Selected variables:");
  for (const int f : ev.final_model.features)
    std::printf(" %s", trace::feature_names()[static_cast<std::size_t>(f)].c_str());
  std::printf("\n\n");

  // 3. Apply to fresh, unseen traces: only MFACT runs; the model decides
  //    whether simulation is needed. Verify against the actual simulation.
  struct Probe {
    const char* app;
    Rank ranks;
  };
  const Probe probes[] = {{"EP", 100},     {"CMC", 80},    {"FT", 128},
                          {"CR", 128},     {"MiniFE", 96}, {"FillBoundary", 96}};
  TextTable t;
  t.set_header({"new trace", "MFACT class", "model says", "actual DIFF", "verdict"});
  for (const Probe& p : probes) {
    workloads::GenParams gp;
    gp.ranks = p.ranks;
    gp.seed = 987;
    gp.iter_factor = 0.3;
    const trace::Trace tr = workloads::generate_app(p.app, gp);
    const core::TraceOutcome o = core::run_all_schemes(tr);  // runs sim only to verify
    const bool predicted = core::needs_simulation(ev.final_model, o);
    const auto d = o.diff_total(Scheme::kPacketFlow);
    const bool actual = d && *d > dopts.diff_threshold;
    t.add_row({std::string(p.app) + "(" + std::to_string(p.ranks) + ")",
               mfact::app_class_name(o.app_class),
               predicted ? "simulate" : "model is enough",
               d ? fmt_percent(*d, 2) : "-",
               predicted == actual ? "correct" : "WRONG"});
  }
  std::printf("%s\n", t.render().c_str());
  return 0;
}
