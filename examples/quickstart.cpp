// Quickstart: generate a synthetic MPI trace, predict its performance with
// the MFACT model and the three network simulators, and print the trade-off —
// the paper's core experiment on a single application.
//
// Usage: quickstart [app] [ranks]   (defaults: CG 64)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.hpp"
#include "core/runner.hpp"
#include "workloads/generators.hpp"

int main(int argc, char** argv) {
  using namespace hps;

  workloads::GenParams gp;
  std::string app = argc > 1 ? argv[1] : "CG";
  gp.ranks = argc > 2 ? std::atoi(argv[2]) : 64;
  gp.machine = "cielito";
  gp.seed = 7;

  std::printf("Generating synthetic %s trace on %d ranks (machine: %s)...\n", app.c_str(),
              gp.ranks, gp.machine.c_str());
  const trace::Trace t = workloads::generate_app(app, gp);
  std::printf("  %llu events, measured total %.3f s, measured comm %.3f s\n",
              static_cast<unsigned long long>(t.total_events()),
              time_to_seconds(t.measured_total()), time_to_seconds(t.measured_comm_mean()));

  std::printf("Running MFACT modeling and packet / flow / packet-flow simulation...\n\n");
  const core::TraceOutcome out = core::run_all_schemes(t);

  TextTable table;
  table.set_header({"scheme", "predicted total", "predicted comm", "tool wall time",
                    "DIFF_total vs MFACT"});
  for (int s = 0; s < static_cast<int>(core::Scheme::kNumSchemes); ++s) {
    const auto scheme = static_cast<core::Scheme>(s);
    const auto& so = out.of(scheme);
    if (!so.ok) {
      table.add_row({core::scheme_name(scheme), "failed: " + so.error});
      continue;
    }
    std::string diff = "-";
    if (scheme != core::Scheme::kMfact)
      if (const auto d = out.diff_total(scheme)) diff = fmt_percent(*d, 2);
    table.add_row({core::scheme_name(scheme), fmt_time_s(time_to_seconds(so.total_time), 4),
                   fmt_time_s(time_to_seconds(so.comm_time), 4),
                   fmt_time_s(so.wall_seconds, 4), diff});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("MFACT classification: %s (group: %s)\n",
              mfact::app_class_name(out.app_class), mfact::group_name(out.group));
  std::printf("  bandwidth sensitivity (bw/8): %+.2f%%   latency sensitivity (lat x8): %+.2f%%\n",
              out.bw_sensitivity * 100.0, out.lat_sensitivity * 100.0);
  const double speedup = out.of(core::Scheme::kPacket).wall_seconds /
                         std::max(1e-9, out.of(core::Scheme::kMfact).wall_seconds);
  std::printf("  modeling was %.0fx faster than packet-level simulation on this trace\n",
              speedup);
  return 0;
}
