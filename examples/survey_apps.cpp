// Survey every synthetic application at two scales: print its measured
// communication fraction, MFACT classification, and the model-vs-simulation
// disagreement (DIFF_total). Useful both as a library tour and to sanity-
// check that the workload family spans the paper's spectrum from
// computation-bound to communication-bound.
//
// Usage: survey_apps [small_ranks] [large_ranks]
#include <cstdio>
#include <cstdlib>

#include "common/table.hpp"
#include "core/runner.hpp"
#include "trace/features.hpp"
#include "workloads/generators.hpp"

int main(int argc, char** argv) {
  using namespace hps;
  const Rank small = argc > 1 ? std::atoi(argv[1]) : 64;
  const Rank large = argc > 2 ? std::atoi(argv[2]) : 256;

  TextTable table;
  table.set_header({"app", "ranks", "events", "comm%", "class", "bw-sens", "DIFF pkt",
                    "DIFF flow", "DIFF pflow", "mfact s", "pkt s"});

  for (const auto& app : workloads::all_app_names()) {
    const auto& gen = workloads::generator_by_name(app);
    for (const Rank want : {small, large}) {
      const Rank ranks = gen.pick_ranks(want / 2 + 1, want);
      if (ranks < 0) continue;
      workloads::GenParams gp;
      gp.ranks = ranks;
      gp.seed = 1234 + static_cast<std::uint64_t>(want);
      gp.machine = "cielito";
      const trace::Trace t = workloads::generate_app(app, gp);
      const core::TraceOutcome o = core::run_all_schemes(t);
      auto diff = [&](core::Scheme s) {
        const auto d = o.diff_total(s);
        return d ? fmt_percent(*d, 1) : std::string("fail");
      };
      table.add_row({app, std::to_string(ranks), std::to_string(o.events),
                     fmt_percent(o.features[trace::kF_PoC] / 100.0, 1),
                     mfact::app_class_name(o.app_class),
                     fmt_percent(o.bw_sensitivity, 0), diff(core::Scheme::kPacket),
                     diff(core::Scheme::kFlow), diff(core::Scheme::kPacketFlow),
                     fmt_double(o.of(core::Scheme::kMfact).wall_seconds, 3),
                     fmt_double(o.of(core::Scheme::kPacket).wall_seconds, 3)});
    }
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
