// Trace utility CLI: generate synthetic traces to disk, inspect stored
// traces, and dump their event streams — the workflow a user with real DUMPI
// conversions would follow.
//
// Usage:
//   trace_tools gen <app> <ranks> <out.hpst> [machine] [seed]
//   trace_tools info <file.hpst>
//   trace_tools dump <file.hpst> [max_events_per_rank]
//   trace_tools to-text <file.hpst> <out.txt>    # editable hpst-text
//   trace_tools from-text <file.txt> <out.hpst>  # parse + validate + pack
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/error.hpp"
#include "common/table.hpp"
#include "trace/features.hpp"
#include "trace/io.hpp"
#include "trace/text_format.hpp"
#include "trace/validate.hpp"
#include "workloads/generators.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  trace_tools gen <app> <ranks> <out.hpst> [machine] [seed]\n"
               "  trace_tools info <file.hpst>\n"
               "  trace_tools dump <file.hpst> [max_events_per_rank]\n"
               "  trace_tools to-text <file.hpst> <out.txt>\n"
               "  trace_tools from-text <file.txt> <out.hpst>\n"
               "apps: ");
  for (const auto& a : hps::workloads::all_app_names()) std::fprintf(stderr, "%s ", a.c_str());
  std::fprintf(stderr, "\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hps;
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "gen") {
      if (argc < 5) return usage();
      workloads::GenParams p;
      p.ranks = std::atoi(argv[3]);
      if (argc > 5) p.machine = argv[5];
      if (argc > 6) p.seed = static_cast<std::uint64_t>(std::atoll(argv[6]));
      const trace::Trace t = workloads::generate_app(argv[2], p);
      trace::save(t, argv[4]);
      std::printf("wrote %s: %llu events, %d ranks, measured total %.3f s\n", argv[4],
                  static_cast<unsigned long long>(t.total_events()), t.nranks(),
                  time_to_seconds(t.measured_total()));
      return 0;
    }
    if (cmd == "to-text") {
      if (argc < 4) return usage();
      trace::save_text(trace::load(argv[2]), argv[3]);
      std::printf("wrote %s\n", argv[3]);
      return 0;
    }
    if (cmd == "from-text") {
      if (argc < 4) return usage();
      const trace::Trace t = trace::load_text(argv[2]);
      trace::validate_or_throw(t);
      trace::save(t, argv[3]);
      std::printf("wrote %s: %llu events, %d ranks (validated)\n", argv[3],
                  static_cast<unsigned long long>(t.total_events()), t.nranks());
      return 0;
    }
    const trace::Trace t = trace::load(argv[2]);
    if (cmd == "info") {
      const auto issues = trace::validate(t);
      const auto s = trace::compute_stats(t);
      const auto f = trace::extract_features(t.meta(), s);
      std::printf("app=%s variant=%s machine=%s ranks=%d rpn=%d seed=%llu\n",
                  t.meta().app.c_str(), t.meta().variant.c_str(), t.meta().machine.c_str(),
                  t.nranks(), t.meta().ranks_per_node,
                  static_cast<unsigned long long>(t.meta().seed));
      std::printf("events=%llu  valid=%s\n",
                  static_cast<unsigned long long>(t.total_events()),
                  issues.empty() ? "yes" : "NO");
      TextTable tab;
      tab.set_header({"feature", "value"});
      for (int i = 0; i < trace::kNumFeatures; ++i)
        tab.add_row({trace::feature_names()[static_cast<std::size_t>(i)],
                     fmt_double(f[i], 3)});
      std::printf("%s", tab.render().c_str());
      return 0;
    }
    if (cmd == "dump") {
      const std::size_t limit = argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 20;
      trace::write_text(t, std::cout, limit);
      return 0;
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
