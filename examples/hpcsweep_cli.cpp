// The full decision pipeline as a CLI, operating on trace files: run MFACT,
// classify, optionally run the detailed simulators, and report the
// modeling-vs-simulation verdict for one trace — what a performance engineer
// with a directory of converted DUMPI traces would run day to day.
//
// Usage:
//   hpcsweep_cli <trace.hpst|trace.txt> [--machine <name>] [--simulate]
//                [--model hockney|loggp] [--compute-scale <x>]
//                [--telemetry summary|json[:path]|chrome:<path>]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/error.hpp"
#include "common/table.hpp"
#include "core/runner.hpp"
#include "machine/machine.hpp"
#include "mfact/classify.hpp"
#include "telemetry/export.hpp"
#include "trace/io.hpp"
#include "trace/text_format.hpp"
#include "trace/validate.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: hpcsweep_cli <trace.hpst|trace.txt> [--machine <name>] [--simulate]\n"
               "                    [--model hockney|loggp] [--compute-scale <x>]\n"
               "                    [--telemetry summary|json[:path]|chrome:<path>]\n"
               "  --telemetry enables instrumentation (implies --simulate) and exports\n"
               "  metrics on exit; HPS_TELEMETRY=<spec> is the env equivalent.\n");
  return 2;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hps;
  if (argc < 2) return usage();
  const std::string path = argv[1];
  std::string machine;
  bool simulate = false;
  mfact::P2pCostModel p2p = mfact::P2pCostModel::kHockney;
  double compute_scale = 1.0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--simulate") {
      simulate = true;
    } else if (arg == "--machine" && i + 1 < argc) {
      machine = argv[++i];
    } else if (arg == "--model" && i + 1 < argc) {
      const std::string m = argv[++i];
      if (m == "loggp") {
        p2p = mfact::P2pCostModel::kLogGP;
      } else if (m != "hockney") {
        return usage();
      }
    } else if (arg == "--compute-scale" && i + 1 < argc) {
      compute_scale = std::atof(argv[++i]);
    } else if (arg == "--telemetry" && i + 1 < argc) {
      const auto cfg = telemetry::parse_export_spec(argv[++i]);
      if (!cfg) {
        std::fprintf(stderr, "bad --telemetry spec (want summary|json[:path]|chrome:<path>)\n");
        return usage();
      }
      telemetry::configure(*cfg);
      simulate = true;  // telemetry of the simulators needs them to run
    } else {
      return usage();
    }
  }
  hps::telemetry::init_from_env();

  try {
    trace::Trace t = ends_with(path, ".txt") ? trace::load_text(path) : trace::load(path);
    trace::validate_or_throw(t);
    if (!machine.empty()) t.meta().machine = machine;
    const machine::MachineConfig mc = machine::machine_by_name(t.meta().machine);

    std::printf("trace: %s  app=%s ranks=%d machine=%s events=%llu\n", path.c_str(),
                t.meta().app.c_str(), t.nranks(), t.meta().machine.c_str(),
                static_cast<unsigned long long>(t.total_events()));

    // 1. MFACT: sweep + classification, one replay.
    mfact::ClassifyParams cp;
    cp.mfact.p2p_model = p2p;
    const auto sweep_cfg =
        mfact::make_sensitivity_sweep(mc.net.link_bandwidth, mc.net.end_to_end_latency,
                                      compute_scale);
    double wall = 0;
    auto sweep = run_mfact(t, sweep_cfg, cp.mfact, &wall);
    const auto cl = mfact::classify_from_sweep(std::move(sweep), cp);

    std::printf("\nMFACT (%s, %.3f s):\n",
                p2p == mfact::P2pCostModel::kLogGP ? "LogGP" : "Hockney", wall);
    TextTable sw;
    sw.set_header({"config", "predicted total", "predicted comm"});
    for (const auto& r : cl.sweep)
      sw.add_row({r.config.label, fmt_time_s(time_to_seconds(r.total_time), 4),
                  fmt_time_s(time_to_seconds(r.comm_time_mean), 4)});
    std::printf("%s", sw.render().c_str());
    std::printf("class: %s (group %s); bw-sensitivity %+.1f%%, lat-sensitivity %+.1f%%\n",
                mfact::app_class_name(cl.app_class), mfact::group_name(cl.group),
                100 * cl.bw_sensitivity, 100 * cl.lat_sensitivity);
    std::printf("verdict: %s\n",
                cl.group == mfact::SensitivityGroup::kCommSensitive
                    ? "communication-sensitive -> consider detailed simulation"
                    : "insensitive to the network -> modeling is sufficient");

    // 2. Optional simulation pass for ground truth on this machine model.
    if (simulate) {
      std::printf("\nsimulators:\n");
      core::RunOptions ro;
      ro.replay.compute_scale = compute_scale;
      ro.classify = cp;
      const core::TraceOutcome o = core::run_all_schemes(t, ro);
      TextTable st;
      st.set_header({"scheme", "total", "comm", "wall s", "DIFF vs MFACT"});
      for (int s = 0; s < static_cast<int>(core::Scheme::kNumSchemes); ++s) {
        const auto scheme = static_cast<core::Scheme>(s);
        const auto& so = o.of(scheme);
        if (!so.ok) {
          st.add_row({core::scheme_name(scheme), "failed"});
          continue;
        }
        const auto d = o.diff_total(scheme);
        st.add_row({core::scheme_name(scheme), fmt_time_s(time_to_seconds(so.total_time), 4),
                    fmt_time_s(time_to_seconds(so.comm_time), 4),
                    fmt_double(so.wall_seconds, 3),
                    scheme == core::Scheme::kMfact ? "-" : fmt_percent(d.value_or(0), 2)});
      }
      std::printf("%s", st.render().c_str());
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  telemetry::flush_exports();
  return 0;
}
