// Observability companion to the study pipeline: produce and interrogate run
// ledgers, and export per-rank virtual-time Chrome traces for any corpus
// trace under any scheme.
//
// Subcommands:
//   run       run a (small) corpus study and append its JSON-lines ledger
//   timeline  replay one corpus trace under one scheme, write a Chrome trace
//   top       rank a ledger's traces by DIFF_total with component attribution
//   accuracy  per-(app, scheme) accuracy table from one ledger
//   diff      compare two ledgers; non-zero exit on regressions (CI gate)
//   check     alias for diff (reads naturally in CI: `inspect check golden new`)
//   serve     run hpcsweepd: the prediction daemon (docs/serving.md)
//   request   client for a running hpcsweepd (study / ping / stats / shutdown)
//   metrics   scrape a running hpcsweepd as Prometheus text exposition
//   watch     live terminal dashboard over a running hpcsweepd
//   cost      measured-cost model per (trace class x scheme), from a serve
//             ledger or a live daemon
//   fsck      offline integrity check / repair of durable state: cache
//             spill file, study journal, serve ledger
//
// Exit codes: 0 success / no divergence, 1 divergence or runtime error,
// 2 usage error, 3 request rejected by the daemon (backpressure / draining /
// bad request), 4 end-to-end deadline expired, 5 client circuit breaker open,
// 6 client socket timeout (request may still be executing server-side),
// 75 study interrupted by SIGINT/SIGTERM (resumable).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/error.hpp"
#include "core/runner.hpp"
#include "core/study.hpp"
#include "machine/machine.hpp"
#include "mfact/classify.hpp"
#include "obs/inspect.hpp"
#include "obs/jsonl.hpp"
#include "obs/ledger.hpp"
#include "obs/serve_ledger.hpp"
#include "obs/timeline.hpp"
#include "robust/interrupt.hpp"
#include "robust/journal.hpp"
#include "serve/client.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/spill.hpp"
#include "simmpi/replayer.hpp"
#include "workloads/corpus.hpp"

namespace {

using namespace hps;

int usage() {
  std::fprintf(
      stderr,
      "usage: hpcsweep_inspect <subcommand> [args]\n"
      "\n"
      "  run --out <ledger.jsonl> [--limit N] [--duration-scale X] [--seed S]\n"
      "      [--threads N] [--cache <path>] [--journal <path>] [--deadline SECONDS]\n"
      "      [--max-events N] [--horizon-ns N] [--allow-degraded]\n"
      "      [--isolate thread|process] [--workers N] [--retries R]\n"
      "      [--rss-limit-mb M] [--watchdog SECONDS]\n"
      "      Run the corpus study (all four schemes) and append its ledger.\n"
      "      --journal enables crash-safe resume: a killed run restarted with\n"
      "      the same options recomputes only the missing traces. The budget\n"
      "      flags cap each scheme run (wall clock / DES events / virtual time);\n"
      "      exceeding one degrades that scheme to a budget failure. Exits 1 if\n"
      "      any scheme degraded (crashed, OOMed, deadlocked, over budget)\n"
      "      unless --allow-degraded.\n"
      "      --isolate process forks a pool of worker processes (sized by\n"
      "      --workers, falling back to --threads) so a SIGSEGV/abort/OOM in\n"
      "      one trace is contained: the trace is retried up to --retries\n"
      "      times with backoff, then quarantined as fail_kind=crash/timeout\n"
      "      (its terminating signal recorded in the ledger) while the rest\n"
      "      of the sweep completes. --rss-limit-mb caps each worker's\n"
      "      address space; --watchdog hard-kills workers silent that long.\n"
      "      Healthy-trace results are byte-identical to thread mode.\n"
      "      SIGINT/SIGTERM interrupts a run gracefully: unfinished traces\n"
      "      are marked skipped, the journal is kept for resume, and the\n"
      "      exit code is 75.\n"
      "\n"
      "  timeline --spec N --scheme mfact|packet|flow|packet-flow --out <trace.json>\n"
      "      [--duration-scale X] [--seed S]\n"
      "      Replay corpus trace N under one scheme, recording per-rank (and\n"
      "      per-link) intervals in virtual time; write Chrome trace_event JSON\n"
      "      loadable in chrome://tracing or ui.perfetto.dev.\n"
      "\n"
      "  top <ledger.jsonl> [--n 10]\n"
      "      The N most model-divergent (trace, scheme) pairs, with per-component\n"
      "      virtual-time attribution next to MFACT's decomposition.\n"
      "\n"
      "  accuracy <ledger.jsonl> [--threshold 0.02]\n"
      "      Per-(app, scheme) accuracy: mean/max DIFF_total, share within\n"
      "      threshold.\n"
      "\n"
      "  diff|check <before.jsonl> <after.jsonl> [--tolerance 0.02]\n"
      "      [--wall-tolerance X] [--max-report N] [--allow-degraded]\n"
      "      Record-by-record regression diff; exits 1 when any prediction moved\n"
      "      beyond tolerance, records appear/disappear, or the after-side\n"
      "      ledger holds degraded records (unless --allow-degraded). Prints\n"
      "      per-fail_kind counts.\n"
      "\n"
      "  serve --socket <path> [--tcp PORT] [--dispatchers N] [--queue N]\n"
      "      [--max-conns N] [--cache-mb M] [--cache-dir DIR] [--cache-fsync]\n"
      "      [--scrub-interval-ms MS] [--threads N]\n"
      "      [--isolate thread|process] [--workers N]\n"
      "      [--retries R] [--rss-limit-mb M] [--watchdog SECONDS]\n"
      "      [--max-duration-scale X] [--max-limit N]\n"
      "      [--deadline S] [--max-events N] [--horizon-ns N]\n"
      "      [--serve-ledger <path>] [--trace-out <path>]\n"
      "      [--shed-target-ms T] [--shed-interval-ms I] [--slow-read-ms S]\n"
      "      Run hpcsweepd: accept study requests over the Unix socket (and\n"
      "      127.0.0.1:PORT with --tcp), execute them on up to --dispatchers\n"
      "      concurrent study runners (thread pools, or supervised worker\n"
      "      processes under --isolate process), share results through an\n"
      "      in-memory LRU cache of --cache-mb megabytes, and reject work\n"
      "      beyond --queue pending studies (or --max-conns connections)\n"
      "      with explicit backpressure.\n"
      "      The budget flags are *ceilings* clamped onto every request.\n"
      "      --serve-ledger appends one JSON-lines record per request (trace\n"
      "      id, disposition, per-phase wall latency) plus a cost-model footer\n"
      "      on drain; --trace-out writes the per-request span timeline as\n"
      "      Chrome trace JSON on drain.\n"
      "      --shed-target-ms enables CoDel-style queue-delay shedding: once\n"
      "      dequeue delay stays above T for I ms, over-target work is shed\n"
      "      (kQueueFull on the wire) until delay recovers. --slow-read-ms\n"
      "      caps how long a partial request frame may dribble in before the\n"
      "      connection is rejected (slowloris guard).\n"
      "      --cache-dir makes the result cache crash-durable: entries spill\n"
      "      to an append-only CRC-framed file under DIR, recovered (and\n"
      "      corrupt records quarantined) on the next start so a restart on\n"
      "      the same DIR comes back warm. --cache-fsync fsyncs each spill\n"
      "      append (power-loss durability at a latency cost); a background\n"
      "      scrubber re-verifies on-disk CRCs every --scrub-interval-ms\n"
      "      (default 5000, 0 disables). See docs/serving.md.\n"
      "      SIGINT/SIGTERM drains gracefully; shutdown requests are only\n"
      "      honored on the Unix socket. See docs/serving.md.\n"
      "\n"
      "  request --socket <path> | --tcp-host H --tcp-port P\n"
      "      [--limit N] [--duration-scale X] [--seed S] [--deadline S]\n"
      "      [--max-events N] [--horizon-ns N] [--out <ledger.jsonl>] [--force]\n"
      "      [--allow-degraded] [--ping] [--stats] [--shutdown]\n"
      "      [--deadline-ms D] [--timeout-ms T] [--retries R] [--backoff-ms B]\n"
      "      [--breaker-failures N] [--breaker-cooldown-ms C]\n"
      "      Send one request to a running hpcsweepd and stream the reply;\n"
      "      --out appends the returned ledger records to a file.\n"
      "      --deadline-ms sets an end-to-end deadline the daemon charges\n"
      "      queue wait against (expired requests come back status=expired;\n"
      "      the daemon may degrade to an MFACT-only study to fit the budget).\n"
      "      The remaining flags configure the resilient client: socket\n"
      "      timeout, jittered exponential-backoff retries on backpressure\n"
      "      and connect failures (never after a socket timeout), and a\n"
      "      per-endpoint circuit breaker. --socket may repeat: additional\n"
      "      sockets are failover endpoints tried in order when the\n"
      "      preferred daemon is down or draining.\n"
      "      Exits 0 on success, 1 degraded/error, 3 rejected (queue full /\n"
      "      draining / bad request), 4 deadline expired, 5 circuit breaker\n"
      "      open, 6 socket timeout (request may still be executing), 75 when\n"
      "      the daemon was interrupted mid-study.\n"
      "\n"
      "  metrics --socket <path> | --tcp-host H --tcp-port P\n"
      "      One live-metrics scrape of a running hpcsweepd, rendered as\n"
      "      Prometheus text exposition (0.0.4): request counters, cache and\n"
      "      queue gauges, per-phase / per-trace-class latency histograms,\n"
      "      and the measured-cost totals.\n"
      "\n"
      "  watch --socket <path> | --tcp-host H --tcp-port P\n"
      "      [--interval SECONDS] [--iterations N]\n"
      "      Live terminal dashboard: qps, in-flight/queued studies, cache\n"
      "      hit ratio, rejects, and p50/p99/p99.9 per serving phase,\n"
      "      refreshed every --interval (default 2) seconds. --iterations 0\n"
      "      (the default) runs until interrupted.\n"
      "\n"
      "  cost <serve-ledger.jsonl> | --socket <path> | --tcp-host H --tcp-port P\n"
      "      Measured-cost model: wall seconds per (MFACT trace class x\n"
      "      scheme), from a serve ledger's drain footer or a live daemon.\n"
      "\n"
      "  fsck [--cache-dir DIR] [--journal <path>] [--serve-ledger <path>]\n"
      "      [--repair]\n"
      "      Offline integrity check of hpcsweepd's durable state: the cache\n"
      "      spill file (per-record CRC + schema walk), a study journal\n"
      "      (CRC frame walk), and a serve ledger (JSON-lines parse). With\n"
      "      --repair: corrupt spill regions move to the .quarantine sidecar\n"
      "      and a clean spill file is rewritten, a journal's torn tail is\n"
      "      truncated, and the ledger is rewritten keeping only intact\n"
      "      lines. Exits 0 when clean (or fully repaired), 1 when damage\n"
      "      remains, 2 on usage error. Run it on a stopped daemon's files;\n"
      "      a live daemon scrubs and compacts on its own.\n");
  return 2;
}

bool want(const char* arg, const char* name) { return std::strcmp(arg, name) == 0; }

/// Parse "--flag value" pairs; returns false (usage error) on an unknown flag
/// or a flag missing its value.
struct Flags {
  std::vector<std::string> positional;
  bool ok = true;

  std::string out;
  std::string cache;
  std::string journal;
  double deadline = 0;
  std::uint64_t max_events = 0;
  std::int64_t horizon_ns = 0;
  bool allow_degraded = false;
  int limit = 0;
  int spec = -1;
  int threads = 0;
  std::size_t n = 10;
  std::uint64_t seed = 42;
  double duration_scale = 0.1;
  double threshold = 0.02;
  std::string scheme;
  std::string isolate = "thread";
  int workers = 0;
  int retries = 1;
  long rss_limit_mb = 0;
  double watchdog = 0;
  obs::DiffOptions diff;

  // serve / request
  std::string socket_path;
  int tcp = -1;  ///< serve: -1 off, 0 ephemeral, else port
  std::string tcp_host;
  int tcp_port = 0;
  int dispatchers = 2;
  int queue = 16;
  int max_conns = 256;
  double cache_mb = 64;
  double max_duration_scale = 1.0;
  int max_limit = 0;
  bool force = false;
  bool ping = false;
  bool stats = false;
  bool shutdown = false;
  std::string serve_ledger;
  std::string trace_out;
  double interval = 2.0;
  int iterations = 0;  ///< watch: 0 = until interrupted

  // serve: overload resilience (docs/serving.md)
  double shed_target_ms = 0;     ///< 0 = shedding disabled
  double shed_interval_ms = 100;
  double slow_read_ms = 5000;

  // serve: durable cache (docs/serving.md); fsck
  std::string cache_dir;
  bool cache_fsync = false;
  double scrub_interval_ms = 5000;
  bool repair = false;

  // request: every --socket in order; [0] == socket_path, rest are failover
  std::vector<std::string> sockets;

  // request: end-to-end deadline + resilient-client policy
  std::uint64_t deadline_ms = 0;       ///< 0 = no end-to-end deadline
  double timeout_ms = 0;               ///< socket deadline (0 = none)
  double backoff_ms = 50;              ///< first retry delay
  int breaker_failures = 5;            ///< consecutive failures → open
  double breaker_cooldown_ms = 1000;
};

Flags parse_flags(int argc, char** argv, int first) {
  Flags f;
  for (int i = first; i < argc; ++i) {
    const char* a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        f.ok = false;
        return "";
      }
      return argv[++i];
    };
    if (want(a, "--out")) {
      f.out = next();
    } else if (want(a, "--cache")) {
      f.cache = next();
    } else if (want(a, "--journal")) {
      f.journal = next();
    } else if (want(a, "--deadline")) {
      f.deadline = std::atof(next());
    } else if (want(a, "--max-events")) {
      f.max_events = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (want(a, "--horizon-ns")) {
      f.horizon_ns = std::atoll(next());
    } else if (want(a, "--allow-degraded")) {
      f.allow_degraded = true;
      f.diff.allow_degraded = true;
    } else if (want(a, "--limit")) {
      f.limit = std::atoi(next());
    } else if (want(a, "--spec")) {
      f.spec = std::atoi(next());
    } else if (want(a, "--threads")) {
      f.threads = std::atoi(next());
    } else if (want(a, "--n")) {
      f.n = static_cast<std::size_t>(std::atoll(next()));
    } else if (want(a, "--seed")) {
      f.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (want(a, "--duration-scale")) {
      f.duration_scale = std::atof(next());
    } else if (want(a, "--threshold")) {
      f.threshold = std::atof(next());
    } else if (want(a, "--scheme")) {
      f.scheme = next();
    } else if (want(a, "--isolate")) {
      f.isolate = next();
    } else if (want(a, "--workers")) {
      f.workers = std::atoi(next());
    } else if (want(a, "--retries")) {
      f.retries = std::atoi(next());
    } else if (want(a, "--rss-limit-mb")) {
      f.rss_limit_mb = std::atol(next());
    } else if (want(a, "--watchdog")) {
      f.watchdog = std::atof(next());
    } else if (want(a, "--socket")) {
      const char* v = next();
      if (f.socket_path.empty()) f.socket_path = v;
      f.sockets.push_back(v);
    } else if (want(a, "--tcp")) {
      f.tcp = std::atoi(next());
    } else if (want(a, "--tcp-host")) {
      f.tcp_host = next();
    } else if (want(a, "--tcp-port")) {
      f.tcp_port = std::atoi(next());
    } else if (want(a, "--dispatchers")) {
      f.dispatchers = std::atoi(next());
    } else if (want(a, "--queue")) {
      f.queue = std::atoi(next());
    } else if (want(a, "--max-conns")) {
      f.max_conns = std::atoi(next());
    } else if (want(a, "--cache-mb")) {
      f.cache_mb = std::atof(next());
    } else if (want(a, "--max-duration-scale")) {
      f.max_duration_scale = std::atof(next());
    } else if (want(a, "--max-limit")) {
      f.max_limit = std::atoi(next());
    } else if (want(a, "--force")) {
      f.force = true;
    } else if (want(a, "--ping")) {
      f.ping = true;
    } else if (want(a, "--stats")) {
      f.stats = true;
    } else if (want(a, "--shutdown")) {
      f.shutdown = true;
    } else if (want(a, "--serve-ledger")) {
      f.serve_ledger = next();
    } else if (want(a, "--trace-out")) {
      f.trace_out = next();
    } else if (want(a, "--shed-target-ms")) {
      f.shed_target_ms = std::atof(next());
    } else if (want(a, "--shed-interval-ms")) {
      f.shed_interval_ms = std::atof(next());
    } else if (want(a, "--slow-read-ms")) {
      f.slow_read_ms = std::atof(next());
    } else if (want(a, "--cache-dir")) {
      f.cache_dir = next();
    } else if (want(a, "--cache-fsync")) {
      f.cache_fsync = true;
    } else if (want(a, "--scrub-interval-ms")) {
      f.scrub_interval_ms = std::atof(next());
    } else if (want(a, "--repair")) {
      f.repair = true;
    } else if (want(a, "--deadline-ms")) {
      f.deadline_ms = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (want(a, "--timeout-ms")) {
      f.timeout_ms = std::atof(next());
    } else if (want(a, "--backoff-ms")) {
      f.backoff_ms = std::atof(next());
    } else if (want(a, "--breaker-failures")) {
      f.breaker_failures = std::atoi(next());
    } else if (want(a, "--breaker-cooldown-ms")) {
      f.breaker_cooldown_ms = std::atof(next());
    } else if (want(a, "--interval")) {
      f.interval = std::atof(next());
    } else if (want(a, "--iterations")) {
      f.iterations = std::atoi(next());
    } else if (want(a, "--tolerance")) {
      f.diff.tolerance = std::atof(next());
    } else if (want(a, "--wall-tolerance")) {
      f.diff.wall_tolerance = std::atof(next());
    } else if (want(a, "--max-report")) {
      f.diff.max_report = static_cast<std::size_t>(std::atoll(next()));
    } else if (a[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      f.ok = false;
    } else {
      f.positional.push_back(a);
    }
  }
  return f;
}

int cmd_run(const Flags& f) {
  if (f.out.empty()) {
    std::fprintf(stderr, "run: --out <ledger.jsonl> is required\n");
    return 2;
  }
  core::StudyOptions opts;
  opts.corpus.seed = f.seed;
  opts.corpus.duration_scale = f.duration_scale;
  opts.corpus.limit = f.limit;
  opts.threads = f.threads;
  opts.cache_path = f.cache;  // empty = always compute, so the ledger appends
  opts.ledger_path = f.out;
  opts.journal_path = f.journal;
  opts.run.budget.wall_deadline_seconds = f.deadline;
  opts.run.budget.max_des_events = f.max_events;
  opts.run.budget.virtual_horizon = f.horizon_ns;
  opts.progress = true;
  if (f.isolate == "process") {
    opts.isolate = core::IsolateMode::kProcess;
  } else if (f.isolate != "thread") {
    std::fprintf(stderr, "run: --isolate must be thread or process (got %s)\n",
                 f.isolate.c_str());
    return 2;
  }
  if (f.workers > 0) opts.threads = f.workers;  // sizes the process pool too
  opts.retries = f.retries;
  opts.rss_limit_mb = f.rss_limit_mb;
  opts.watchdog_timeout_seconds = f.watchdog;
  const core::StudyResult res = core::run_study(opts);
  std::printf("ran %zu traces (%zu ledger records) in %.1f s -> %s\n",
              res.outcomes.size(),
              res.outcomes.size() * static_cast<std::size_t>(core::Scheme::kNumSchemes),
              res.wall_seconds, f.out.c_str());
  if (res.resumed_from_journal > 0)
    std::printf("resumed %d trace(s) from journal %s\n", res.resumed_from_journal,
                f.journal.c_str());
  if (res.interrupted) {
    std::fprintf(stderr,
                 "interrupted by signal %d: unfinished traces marked skipped; "
                 "rerun with the same options to resume%s\n",
                 res.interrupt_signal,
                 f.journal.empty() ? " (enable --journal to make resume cheap)" : "");
    return hps::robust::kInterruptedExitCode;
  }

  // Degraded-outcome summary: count trace×scheme results per fail_kind and
  // gate the exit code, so CI catches crashed/over-budget schemes even when
  // the study as a whole "succeeded".
  const auto records = core::ledger_records(res.outcomes, core::study_cache_key(opts));
  const std::size_t degraded = obs::degraded_count(records);
  if (degraded > 0) {
    std::printf("%zu degraded record(s):", degraded);
    for (const auto& [kind, n] : obs::fail_kind_counts(records))
      if (kind != "none" && kind != "skipped") std::printf(" %s=%zu", kind.c_str(), n);
    std::printf("%s\n", f.allow_degraded ? " (allowed)" : "");
    if (!f.allow_degraded) return 1;
  }
  return 0;
}

int cmd_timeline(const Flags& f) {
  if (f.spec < 0 || f.out.empty() || f.scheme.empty()) {
    std::fprintf(stderr, "timeline: --spec, --scheme and --out are required\n");
    return 2;
  }
  workloads::CorpusOptions co;
  co.seed = f.seed;
  co.duration_scale = f.duration_scale;
  const auto specs = workloads::build_corpus_specs(co);
  if (f.spec >= static_cast<int>(specs.size())) {
    std::fprintf(stderr, "timeline: --spec %d out of range (corpus has %zu specs)\n",
                 f.spec, specs.size());
    return 2;
  }
  const trace::Trace t = workloads::generate_spec(specs[static_cast<std::size_t>(f.spec)]);
  const machine::MachineConfig mc = machine::machine_by_name(t.meta().machine);

  obs::TimelineRecorder rec;
  SimTime predicted = 0;
  if (f.scheme == "mfact") {
    mfact::ClassifyParams cp;
    cp.mfact.timeline = &rec;
    const auto cl =
        mfact::classify(t, mc.net.link_bandwidth, mc.net.end_to_end_latency, cp);
    predicted = cl.sweep[mfact::kSweepBase].total_time;
  } else {
    simmpi::NetModelKind kind;
    if (f.scheme == "packet") {
      kind = simmpi::NetModelKind::kPacket;
    } else if (f.scheme == "flow") {
      kind = simmpi::NetModelKind::kFlow;
    } else if (f.scheme == "packet-flow") {
      kind = simmpi::NetModelKind::kPacketFlow;
    } else {
      std::fprintf(stderr, "timeline: bad --scheme %s\n", f.scheme.c_str());
      return 2;
    }
    simmpi::ReplayConfig rc;
    rc.timeline = &rec;
    const machine::MachineInstance mi(mc, t.nranks(), t.meta().ranks_per_node);
    const auto rr = simmpi::replay_trace(t, mi, kind, rc);
    predicted = rr.total_time;
  }

  std::ofstream os(f.out);
  if (!os.is_open()) {
    std::fprintf(stderr, "timeline: cannot write %s\n", f.out.c_str());
    return 1;
  }
  rec.write_chrome_trace(os);
  std::printf("spec %d (%s, %d ranks, %s) under %s: predicted %.6f s, "
              "%zu intervals (%llu dropped) -> %s\n",
              f.spec, t.meta().app.c_str(), t.nranks(), t.meta().machine.c_str(),
              f.scheme.c_str(), time_to_seconds(predicted), rec.intervals().size(),
              static_cast<unsigned long long>(rec.dropped()), f.out.c_str());
  return 0;
}

int cmd_top(const Flags& f) {
  if (f.positional.size() != 1) {
    std::fprintf(stderr, "top: expected one ledger path\n");
    return 2;
  }
  const auto records = obs::load_ledger(f.positional[0]);
  const auto top = obs::top_divergent(records, f.n);
  obs::render_top(std::cout, top);
  return 0;
}

int cmd_accuracy(const Flags& f) {
  if (f.positional.size() != 1) {
    std::fprintf(stderr, "accuracy: expected one ledger path\n");
    return 2;
  }
  const auto records = obs::load_ledger(f.positional[0]);
  obs::render_accuracy(std::cout, records, f.threshold);
  return 0;
}

int cmd_serve(const Flags& f) {
  if (f.socket_path.empty()) {
    std::fprintf(stderr, "serve: --socket <path> is required\n");
    return 2;
  }
  serve::ServerOptions so;
  so.socket_path = f.socket_path;
  so.tcp_port = f.tcp;
  so.dispatchers = f.dispatchers;
  so.queue_capacity = static_cast<std::size_t>(std::max(1, f.queue));
  so.max_connections = static_cast<std::size_t>(std::max(1, f.max_conns));
  so.cache_bytes = static_cast<std::size_t>(f.cache_mb * 1024.0 * 1024.0);
  so.threads_per_study = f.workers > 0 ? f.workers : f.threads;
  if (f.isolate == "process") {
    so.isolate = core::IsolateMode::kProcess;
  } else if (f.isolate != "thread") {
    std::fprintf(stderr, "serve: --isolate must be thread or process (got %s)\n",
                 f.isolate.c_str());
    return 2;
  }
  so.retries = f.retries;
  so.rss_limit_mb = f.rss_limit_mb;
  so.watchdog_timeout_s = f.watchdog;
  so.max_duration_scale = f.max_duration_scale;
  so.max_limit = f.max_limit;
  so.max_wall_deadline_s = f.deadline;
  so.max_des_events = f.max_events;
  so.max_virtual_horizon_ns = f.horizon_ns;
  so.serve_ledger_path = f.serve_ledger;
  so.trace_path = f.trace_out;
  so.shed_target_ms = f.shed_target_ms;
  so.shed_interval_ms = f.shed_interval_ms;
  so.slow_read_timeout_ms = f.slow_read_ms;
  so.cache_dir = f.cache_dir;
  so.cache_fsync = f.cache_fsync;
  so.scrub_interval_ms = f.scrub_interval_ms;

  serve::Server server(std::move(so));
  std::printf("hpcsweepd: listening on %s", f.socket_path.c_str());
  if (server.tcp_port() >= 0) std::printf(" and 127.0.0.1:%d", server.tcp_port());
  std::printf(" (%d dispatcher(s), queue %d, cache %.0f MB, isolate %s)\n",
              f.dispatchers, f.queue, f.cache_mb, f.isolate.c_str());
  if (!f.cache_dir.empty())
    std::printf("hpcsweepd: durable cache in %s (fsync %s, scrub every %.0f ms)\n",
                f.cache_dir.c_str(), f.cache_fsync ? "on" : "off", f.scrub_interval_ms);
  std::fflush(stdout);
  server.run();
  const serve::Stats st = server.stats();
  std::printf("hpcsweepd: drained — %s\n", serve::stats_to_json(st).c_str());
  return 0;
}

int cmd_request(const Flags& f) {
  if (f.socket_path.empty() && f.tcp_host.empty()) {
    std::fprintf(stderr, "request: --socket <path> or --tcp-host/--tcp-port required\n");
    return 2;
  }
  serve::ClientPolicy policy;
  policy.timeout_ms = f.timeout_ms;
  policy.max_retries = f.retries;
  policy.backoff_ms = f.backoff_ms;
  policy.jitter_seed = f.seed;
  policy.breaker_failures = f.breaker_failures;
  policy.breaker_cooldown_ms = f.breaker_cooldown_ms;
  std::vector<serve::Endpoint> eps;
  for (const std::string& s : f.sockets) eps.push_back({false, s, 0});
  if (eps.empty()) eps.push_back({true, f.tcp_host, f.tcp_port});
  serve::ResilientClient rc = serve::ResilientClient::endpoints(std::move(eps), policy);
  if (f.ping) {
    serve::Client client = rc.connect_once();
    const bool ok = client.ping();
    std::printf("%s\n", ok ? "pong" : "no pong");
    return ok ? 0 : 1;
  }
  if (f.stats) {
    std::printf("%s\n", serve::stats_to_json(rc.connect_once().stats()).c_str());
    return 0;
  }
  if (f.shutdown) {
    const serve::Summary s = rc.connect_once().shutdown_server();
    std::printf("shutdown: %s\n", serve::status_name(s.status));
    return s.status == serve::Status::kOk ? 0 : 1;
  }

  serve::Request req;
  req.kind = serve::Request::Kind::kStudy;
  req.seed = f.seed;
  req.duration_scale = f.duration_scale;
  req.limit = f.limit;
  req.force_recompute = f.force;
  req.wall_deadline_s = f.deadline;
  req.max_des_events = f.max_events;
  req.virtual_horizon_ns = f.horizon_ns;
  req.deadline_ms = f.deadline_ms;

  std::ofstream out;
  if (!f.out.empty()) {
    out.open(f.out, std::ios::app);
    if (!out.is_open()) {
      std::fprintf(stderr, "request: cannot write %s\n", f.out.c_str());
      return 1;
    }
  }
  serve::Client::StudyReply reply;
  try {
    reply = rc.study(req, [&](const std::string& line) {
      if (out.is_open()) out << line << '\n';
    });
  } catch (const serve::CircuitOpenError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 5;
  } catch (const serve::TimeoutError& e) {
    std::fprintf(stderr, "error: %s (request may still be executing server-side)\n",
                 e.what());
    return 6;
  }
  const serve::Summary& s = reply.summary;
  std::printf("%s: %u record(s)%s%s%s, wall %.3f s%s\n", serve::status_name(s.status),
              s.records, s.cache_hit ? " (cache hit)" : "",
              s.degraded > 0 ? (" (" + std::to_string(s.degraded) + " degraded)").c_str()
                             : "",
              s.mfact_fallback ? " [mfact fallback]" : "",
              s.wall_seconds, f.out.empty() ? "" : (" -> " + f.out).c_str());
  if (!s.detail.empty()) std::printf("  %s\n", s.detail.c_str());
  if (rc.last_attempts() > 1)
    std::printf("  (%d attempts, breaker %s)\n", rc.last_attempts(),
                serve::ResilientClient::breaker_name(rc.breaker_state()));
  if (rc.failovers() > 0 || rc.draining_retries() > 0)
    std::printf("  (%d failover(s), %d draining retry(ies))\n", rc.failovers(),
                rc.draining_retries());

  switch (s.status) {
    case serve::Status::kOk:
      return 0;
    case serve::Status::kDegraded:
      return f.allow_degraded ? 0 : 1;
    case serve::Status::kInterrupted:
      return hps::robust::kInterruptedExitCode;
    case serve::Status::kQueueFull:
    case serve::Status::kDraining:
    case serve::Status::kOversized:
    case serve::Status::kBadRequest:
      return 3;
    case serve::Status::kExpired:
      return 4;
    case serve::Status::kError:
      return 1;
  }
  return 1;
}

serve::Client connect_client(const Flags& f) {
  return f.socket_path.empty() ? serve::Client::connect_tcp(f.tcp_host, f.tcp_port)
                               : serve::Client::connect_unix(f.socket_path);
}

int cmd_metrics(const Flags& f) {
  if (f.socket_path.empty() && f.tcp_host.empty()) {
    std::fprintf(stderr, "metrics: --socket <path> or --tcp-host/--tcp-port required\n");
    return 2;
  }
  serve::Client client = connect_client(f);
  std::fputs(serve::render_prometheus(client.metrics()).c_str(), stdout);
  return 0;
}

int cmd_watch(const Flags& f) {
  if (f.socket_path.empty() && f.tcp_host.empty()) {
    std::fprintf(stderr, "watch: --socket <path> or --tcp-host/--tcp-port required\n");
    return 2;
  }
  const double interval = f.interval > 0 ? f.interval : 2.0;
  serve::Client client = connect_client(f);
  serve::MetricsReply prev;
  bool have_prev = false;
  const bool tty = ::isatty(STDOUT_FILENO) == 1;
  for (int i = 0; f.iterations <= 0 || i < f.iterations; ++i) {
    if (i > 0)
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<long>(interval * 1000)));
    const serve::MetricsReply m = client.metrics();
    if (tty) std::fputs("\x1b[2J\x1b[H", stdout);  // clear + home, like watch(1)
    std::fputs(serve::render_dashboard(m, have_prev ? &prev : nullptr, interval).c_str(),
               stdout);
    std::fflush(stdout);
    prev = m;
    have_prev = true;
  }
  return 0;
}

int cmd_cost(const Flags& f) {
  std::vector<obs::CostCell> cells;
  if (!f.positional.empty()) {
    cells = obs::load_serve_ledger(f.positional[0]).costs;
  } else if (!f.socket_path.empty() || !f.tcp_host.empty()) {
    cells = connect_client(f).metrics().costs;
  } else {
    std::fprintf(stderr,
                 "cost: expected <serve-ledger.jsonl> or --socket/--tcp-host\n");
    return 2;
  }
  if (cells.empty()) {
    std::printf("no cost cells (no study computed yet)\n");
    return 0;
  }
  std::printf("%-22s %-12s %8s %14s %14s\n", "class", "scheme", "runs", "wall-total-s",
              "mean-s");
  for (const obs::CostCell& c : cells)
    std::printf("%-22s %-12s %8llu %14.6f %14.6f\n", c.app_class.c_str(),
                c.scheme.c_str(), static_cast<unsigned long long>(c.count),
                c.wall_seconds, c.mean_seconds());
  return 0;
}

// --- fsck: offline validation / repair of durable serving state -----------

/// Journal walk without a study key: fsck validates the header against its
/// own stored key CRC (read_journal needs the caller's key, which an offline
/// tool does not have) and then CRC-checks every frame.
struct JournalFsck {
  bool existed = false;
  bool header_ok = false;
  std::size_t records = 0;
  std::uint64_t valid_bytes = 0;  ///< intact prefix (header + whole frames)
  std::uint64_t torn_bytes = 0;
};

JournalFsck walk_journal(const std::string& path) {
  JournalFsck out;
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  if (fp == nullptr) return out;
  out.existed = true;
  std::error_code ec;
  const std::uint64_t file_size = std::filesystem::file_size(path, ec);
  const auto read_u32 = [&](std::uint32_t& v) {
    unsigned char b[4];
    if (std::fread(b, 1, 4, fp) != 4) return false;
    v = static_cast<std::uint32_t>(b[0]) | static_cast<std::uint32_t>(b[1]) << 8 |
        static_cast<std::uint32_t>(b[2]) << 16 | static_cast<std::uint32_t>(b[3]) << 24;
    return true;
  };
  char magic[4];
  std::uint32_t version = 0, key_len = 0, key_crc = 0;
  std::string key;
  if (std::fread(magic, 1, 4, fp) == 4 && std::memcmp(magic, "HPSJ", 4) == 0 &&
      read_u32(version) && read_u32(key_len) && read_u32(key_crc) &&
      key_len <= (1u << 20)) {
    key.resize(key_len);
    if (key_len == 0 || std::fread(key.data(), 1, key_len, fp) == key_len)
      out.header_ok = robust::crc32(key.data(), key.size()) == key_crc;
  }
  if (out.header_ok) {
    out.valid_bytes = 16 + key_len;
    for (;;) {
      std::uint32_t len = 0, crc = 0;
      if (!read_u32(len) || !read_u32(crc)) break;
      if (len > (64u << 20)) break;
      std::string payload(len, '\0');
      if (len > 0 && std::fread(payload.data(), 1, len, fp) != len) break;
      if (robust::crc32(payload.data(), payload.size()) != crc) break;
      ++out.records;
      out.valid_bytes += 8 + len;
    }
  }
  std::fclose(fp);
  if (!ec && file_size > out.valid_bytes) out.torn_bytes = file_size - out.valid_bytes;
  return out;
}

int cmd_fsck(const Flags& f) {
  if (f.cache_dir.empty() && f.journal.empty() && f.serve_ledger.empty()) {
    std::fprintf(stderr,
                 "fsck: nothing to check (give --cache-dir, --journal, or "
                 "--serve-ledger)\n");
    return 2;
  }
  bool damage = false;      // anything wrong found anywhere
  bool unrepaired = false;  // damage that survives this invocation

  if (!f.cache_dir.empty()) {
    const std::string path = serve::spill_path(f.cache_dir);
    const serve::SpillScan scan = serve::scan_spill_file(path);
    if (!scan.existed) {
      std::printf("cache  %s: missing (nothing to check)\n", path.c_str());
    } else {
      const bool bad = !scan.header_ok || !scan.quarantine.empty() || scan.torn_bytes > 0;
      std::printf("cache  %s: %zu record(s), %zu corrupt region(s), %llu torn byte(s)%s\n",
                  path.c_str(), scan.records.size(), scan.quarantine.size(),
                  static_cast<unsigned long long>(scan.torn_bytes),
                  scan.header_ok ? "" : " [bad header]");
      if (bad) {
        damage = true;
        if (f.repair) {
          serve::append_quarantine(serve::quarantine_path(f.cache_dir), scan.quarantine);
          serve::write_spill_file(path, scan.records);
          std::printf("cache  %s: repaired — %zu region(s) quarantined, clean file "
                      "rewritten with %zu record(s)\n",
                      path.c_str(), scan.quarantine.size(), scan.records.size());
        } else {
          unrepaired = true;
        }
      }
    }
  }

  if (!f.journal.empty()) {
    const JournalFsck jf = walk_journal(f.journal);
    if (!jf.existed) {
      std::printf("journal %s: missing (nothing to check)\n", f.journal.c_str());
    } else {
      std::printf("journal %s: %zu record(s), %llu torn byte(s)%s\n", f.journal.c_str(),
                  jf.records, static_cast<unsigned long long>(jf.torn_bytes),
                  jf.header_ok ? "" : " [bad header]");
      if (!jf.header_ok) {
        // No intact prefix to keep; truncating would only destroy evidence.
        damage = true;
        unrepaired = true;
        std::printf("journal %s: header unrepairable (start fresh; a resumed study "
                    "ignores a foreign journal)\n",
                    f.journal.c_str());
      } else if (jf.torn_bytes > 0) {
        damage = true;
        if (f.repair) {
          std::filesystem::resize_file(f.journal, jf.valid_bytes);
          std::printf("journal %s: repaired — torn tail truncated at byte %llu\n",
                      f.journal.c_str(), static_cast<unsigned long long>(jf.valid_bytes));
        } else {
          unrepaired = true;
        }
      }
    }
  }

  if (!f.serve_ledger.empty()) {
    std::ifstream in(f.serve_ledger, std::ios::binary);
    if (!in.is_open()) {
      std::printf("ledger %s: missing (nothing to check)\n", f.serve_ledger.c_str());
    } else {
      std::vector<std::string> good;
      std::size_t bad = 0;
      std::string line;
      while (std::getline(in, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        try {
          (void)obs::jsonl::parse_flat_object(line);
          good.push_back(line);
        } catch (const hps::Error&) {
          ++bad;
        }
      }
      in.close();
      std::printf("ledger %s: %zu intact line(s), %zu corrupt\n", f.serve_ledger.c_str(),
                  good.size(), bad);
      if (bad > 0) {
        damage = true;
        if (f.repair) {
          const std::string tmp = f.serve_ledger + ".fsck-tmp";
          {
            std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
            if (!out.is_open()) throw Error("fsck: cannot write " + tmp);
            for (const std::string& l : good) out << l << '\n';
          }
          std::filesystem::rename(tmp, f.serve_ledger);
          std::printf("ledger %s: repaired — rewritten with the %zu intact line(s)\n",
                      f.serve_ledger.c_str(), good.size());
        } else {
          unrepaired = true;
        }
      }
    }
  }

  if (!damage) {
    std::printf("fsck: clean\n");
    return 0;
  }
  if (unrepaired) {
    std::printf("fsck: damage found%s\n", f.repair ? " (not all repairable)" : " (rerun with --repair)");
    return 1;
  }
  std::printf("fsck: damage found and repaired\n");
  return 0;
}

int cmd_diff(const Flags& f) {
  if (f.positional.size() != 2) {
    std::fprintf(stderr, "diff: expected <before.jsonl> <after.jsonl>\n");
    return 2;
  }
  const auto before = obs::load_ledger(f.positional[0]);
  const auto after = obs::load_ledger(f.positional[1]);
  const auto result = obs::diff_ledgers(before, after, f.diff);
  obs::render_diff(std::cout, result, f.diff);
  return result.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const char* cmd = argv[1];
  const Flags f = parse_flags(argc, argv, 2);
  if (!f.ok) return usage();
  try {
    if (want(cmd, "run")) return cmd_run(f);
    if (want(cmd, "timeline")) return cmd_timeline(f);
    if (want(cmd, "top")) return cmd_top(f);
    if (want(cmd, "accuracy")) return cmd_accuracy(f);
    if (want(cmd, "diff") || want(cmd, "check")) return cmd_diff(f);
    if (want(cmd, "serve")) return cmd_serve(f);
    if (want(cmd, "request")) return cmd_request(f);
    if (want(cmd, "metrics")) return cmd_metrics(f);
    if (want(cmd, "watch")) return cmd_watch(f);
    if (want(cmd, "cost")) return cmd_cost(f);
    if (want(cmd, "fsck")) return cmd_fsck(f);
  } catch (const hps::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown subcommand: %s\n", cmd);
  return usage();
}
