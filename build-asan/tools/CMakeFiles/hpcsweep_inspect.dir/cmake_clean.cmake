file(REMOVE_RECURSE
  "CMakeFiles/hpcsweep_inspect.dir/hpcsweep_inspect.cpp.o"
  "CMakeFiles/hpcsweep_inspect.dir/hpcsweep_inspect.cpp.o.d"
  "hpcsweep_inspect"
  "hpcsweep_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcsweep_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
