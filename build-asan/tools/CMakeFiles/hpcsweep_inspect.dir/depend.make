# Empty dependencies file for hpcsweep_inspect.
# This may be replaced when dependencies are built.
