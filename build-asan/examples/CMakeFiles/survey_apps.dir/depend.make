# Empty dependencies file for survey_apps.
# This may be replaced when dependencies are built.
