file(REMOVE_RECURSE
  "CMakeFiles/survey_apps.dir/survey_apps.cpp.o"
  "CMakeFiles/survey_apps.dir/survey_apps.cpp.o.d"
  "survey_apps"
  "survey_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/survey_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
