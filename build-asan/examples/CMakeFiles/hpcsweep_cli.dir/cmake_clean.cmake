file(REMOVE_RECURSE
  "CMakeFiles/hpcsweep_cli.dir/hpcsweep_cli.cpp.o"
  "CMakeFiles/hpcsweep_cli.dir/hpcsweep_cli.cpp.o.d"
  "hpcsweep_cli"
  "hpcsweep_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcsweep_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
