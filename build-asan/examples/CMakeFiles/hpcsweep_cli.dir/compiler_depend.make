# Empty compiler generated dependencies file for hpcsweep_cli.
# This may be replaced when dependencies are built.
