file(REMOVE_RECURSE
  "CMakeFiles/needs_simulation.dir/needs_simulation.cpp.o"
  "CMakeFiles/needs_simulation.dir/needs_simulation.cpp.o.d"
  "needs_simulation"
  "needs_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/needs_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
