# Empty dependencies file for needs_simulation.
# This may be replaced when dependencies are built.
