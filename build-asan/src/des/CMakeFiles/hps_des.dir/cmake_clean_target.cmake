file(REMOVE_RECURSE
  "libhps_des.a"
)
