# Empty dependencies file for hps_des.
# This may be replaced when dependencies are built.
