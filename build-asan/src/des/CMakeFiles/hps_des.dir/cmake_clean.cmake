file(REMOVE_RECURSE
  "CMakeFiles/hps_des.dir/engine.cpp.o"
  "CMakeFiles/hps_des.dir/engine.cpp.o.d"
  "CMakeFiles/hps_des.dir/event_queue.cpp.o"
  "CMakeFiles/hps_des.dir/event_queue.cpp.o.d"
  "libhps_des.a"
  "libhps_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hps_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
