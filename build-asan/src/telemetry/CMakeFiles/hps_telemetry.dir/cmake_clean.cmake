file(REMOVE_RECURSE
  "CMakeFiles/hps_telemetry.dir/export.cpp.o"
  "CMakeFiles/hps_telemetry.dir/export.cpp.o.d"
  "CMakeFiles/hps_telemetry.dir/progress.cpp.o"
  "CMakeFiles/hps_telemetry.dir/progress.cpp.o.d"
  "CMakeFiles/hps_telemetry.dir/telemetry.cpp.o"
  "CMakeFiles/hps_telemetry.dir/telemetry.cpp.o.d"
  "libhps_telemetry.a"
  "libhps_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hps_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
