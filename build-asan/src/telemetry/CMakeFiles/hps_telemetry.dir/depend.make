# Empty dependencies file for hps_telemetry.
# This may be replaced when dependencies are built.
