file(REMOVE_RECURSE
  "libhps_telemetry.a"
)
