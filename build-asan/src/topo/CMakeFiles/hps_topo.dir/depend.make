# Empty dependencies file for hps_topo.
# This may be replaced when dependencies are built.
