file(REMOVE_RECURSE
  "CMakeFiles/hps_topo.dir/topology.cpp.o"
  "CMakeFiles/hps_topo.dir/topology.cpp.o.d"
  "libhps_topo.a"
  "libhps_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hps_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
