file(REMOVE_RECURSE
  "libhps_topo.a"
)
