file(REMOVE_RECURSE
  "libhps_simnet.a"
)
