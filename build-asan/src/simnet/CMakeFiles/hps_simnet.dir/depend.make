# Empty dependencies file for hps_simnet.
# This may be replaced when dependencies are built.
