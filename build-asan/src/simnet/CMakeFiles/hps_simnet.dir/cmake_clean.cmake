file(REMOVE_RECURSE
  "CMakeFiles/hps_simnet.dir/flow_model.cpp.o"
  "CMakeFiles/hps_simnet.dir/flow_model.cpp.o.d"
  "CMakeFiles/hps_simnet.dir/network.cpp.o"
  "CMakeFiles/hps_simnet.dir/network.cpp.o.d"
  "CMakeFiles/hps_simnet.dir/packet_model.cpp.o"
  "CMakeFiles/hps_simnet.dir/packet_model.cpp.o.d"
  "CMakeFiles/hps_simnet.dir/packetflow_model.cpp.o"
  "CMakeFiles/hps_simnet.dir/packetflow_model.cpp.o.d"
  "libhps_simnet.a"
  "libhps_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hps_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
