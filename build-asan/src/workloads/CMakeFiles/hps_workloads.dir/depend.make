# Empty dependencies file for hps_workloads.
# This may be replaced when dependencies are built.
