file(REMOVE_RECURSE
  "CMakeFiles/hps_workloads.dir/apps_doe.cpp.o"
  "CMakeFiles/hps_workloads.dir/apps_doe.cpp.o.d"
  "CMakeFiles/hps_workloads.dir/apps_npb.cpp.o"
  "CMakeFiles/hps_workloads.dir/apps_npb.cpp.o.d"
  "CMakeFiles/hps_workloads.dir/corpus.cpp.o"
  "CMakeFiles/hps_workloads.dir/corpus.cpp.o.d"
  "CMakeFiles/hps_workloads.dir/generators.cpp.o"
  "CMakeFiles/hps_workloads.dir/generators.cpp.o.d"
  "CMakeFiles/hps_workloads.dir/ground_truth.cpp.o"
  "CMakeFiles/hps_workloads.dir/ground_truth.cpp.o.d"
  "CMakeFiles/hps_workloads.dir/pattern_helpers.cpp.o"
  "CMakeFiles/hps_workloads.dir/pattern_helpers.cpp.o.d"
  "libhps_workloads.a"
  "libhps_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hps_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
