file(REMOVE_RECURSE
  "libhps_workloads.a"
)
