# Empty dependencies file for hps_trace.
# This may be replaced when dependencies are built.
