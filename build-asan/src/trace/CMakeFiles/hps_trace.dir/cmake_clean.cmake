file(REMOVE_RECURSE
  "CMakeFiles/hps_trace.dir/builder.cpp.o"
  "CMakeFiles/hps_trace.dir/builder.cpp.o.d"
  "CMakeFiles/hps_trace.dir/event.cpp.o"
  "CMakeFiles/hps_trace.dir/event.cpp.o.d"
  "CMakeFiles/hps_trace.dir/features.cpp.o"
  "CMakeFiles/hps_trace.dir/features.cpp.o.d"
  "CMakeFiles/hps_trace.dir/io.cpp.o"
  "CMakeFiles/hps_trace.dir/io.cpp.o.d"
  "CMakeFiles/hps_trace.dir/text_format.cpp.o"
  "CMakeFiles/hps_trace.dir/text_format.cpp.o.d"
  "CMakeFiles/hps_trace.dir/trace.cpp.o"
  "CMakeFiles/hps_trace.dir/trace.cpp.o.d"
  "CMakeFiles/hps_trace.dir/validate.cpp.o"
  "CMakeFiles/hps_trace.dir/validate.cpp.o.d"
  "libhps_trace.a"
  "libhps_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hps_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
