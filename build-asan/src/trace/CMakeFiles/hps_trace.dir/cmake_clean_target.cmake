file(REMOVE_RECURSE
  "libhps_trace.a"
)
