file(REMOVE_RECURSE
  "CMakeFiles/hps_core.dir/decision.cpp.o"
  "CMakeFiles/hps_core.dir/decision.cpp.o.d"
  "CMakeFiles/hps_core.dir/runner.cpp.o"
  "CMakeFiles/hps_core.dir/runner.cpp.o.d"
  "CMakeFiles/hps_core.dir/study.cpp.o"
  "CMakeFiles/hps_core.dir/study.cpp.o.d"
  "libhps_core.a"
  "libhps_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hps_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
