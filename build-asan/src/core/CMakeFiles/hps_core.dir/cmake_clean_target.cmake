file(REMOVE_RECURSE
  "libhps_core.a"
)
