# Empty dependencies file for hps_core.
# This may be replaced when dependencies are built.
