# Empty dependencies file for hps_robust.
# This may be replaced when dependencies are built.
