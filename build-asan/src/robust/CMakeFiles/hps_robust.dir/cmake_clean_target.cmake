file(REMOVE_RECURSE
  "libhps_robust.a"
)
