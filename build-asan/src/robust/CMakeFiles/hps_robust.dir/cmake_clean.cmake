file(REMOVE_RECURSE
  "CMakeFiles/hps_robust.dir/cancel.cpp.o"
  "CMakeFiles/hps_robust.dir/cancel.cpp.o.d"
  "CMakeFiles/hps_robust.dir/fault.cpp.o"
  "CMakeFiles/hps_robust.dir/fault.cpp.o.d"
  "CMakeFiles/hps_robust.dir/guard.cpp.o"
  "CMakeFiles/hps_robust.dir/guard.cpp.o.d"
  "CMakeFiles/hps_robust.dir/interrupt.cpp.o"
  "CMakeFiles/hps_robust.dir/interrupt.cpp.o.d"
  "CMakeFiles/hps_robust.dir/ipc.cpp.o"
  "CMakeFiles/hps_robust.dir/ipc.cpp.o.d"
  "CMakeFiles/hps_robust.dir/journal.cpp.o"
  "CMakeFiles/hps_robust.dir/journal.cpp.o.d"
  "CMakeFiles/hps_robust.dir/supervisor.cpp.o"
  "CMakeFiles/hps_robust.dir/supervisor.cpp.o.d"
  "libhps_robust.a"
  "libhps_robust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hps_robust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
