
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/robust/cancel.cpp" "src/robust/CMakeFiles/hps_robust.dir/cancel.cpp.o" "gcc" "src/robust/CMakeFiles/hps_robust.dir/cancel.cpp.o.d"
  "/root/repo/src/robust/fault.cpp" "src/robust/CMakeFiles/hps_robust.dir/fault.cpp.o" "gcc" "src/robust/CMakeFiles/hps_robust.dir/fault.cpp.o.d"
  "/root/repo/src/robust/guard.cpp" "src/robust/CMakeFiles/hps_robust.dir/guard.cpp.o" "gcc" "src/robust/CMakeFiles/hps_robust.dir/guard.cpp.o.d"
  "/root/repo/src/robust/interrupt.cpp" "src/robust/CMakeFiles/hps_robust.dir/interrupt.cpp.o" "gcc" "src/robust/CMakeFiles/hps_robust.dir/interrupt.cpp.o.d"
  "/root/repo/src/robust/ipc.cpp" "src/robust/CMakeFiles/hps_robust.dir/ipc.cpp.o" "gcc" "src/robust/CMakeFiles/hps_robust.dir/ipc.cpp.o.d"
  "/root/repo/src/robust/journal.cpp" "src/robust/CMakeFiles/hps_robust.dir/journal.cpp.o" "gcc" "src/robust/CMakeFiles/hps_robust.dir/journal.cpp.o.d"
  "/root/repo/src/robust/supervisor.cpp" "src/robust/CMakeFiles/hps_robust.dir/supervisor.cpp.o" "gcc" "src/robust/CMakeFiles/hps_robust.dir/supervisor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/hps_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/telemetry/CMakeFiles/hps_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
