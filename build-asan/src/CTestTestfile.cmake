# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-asan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("telemetry")
subdirs("robust")
subdirs("obs")
subdirs("trace")
subdirs("topo")
subdirs("machine")
subdirs("des")
subdirs("simnet")
subdirs("simmpi")
subdirs("mfact")
subdirs("stats")
subdirs("workloads")
subdirs("core")
