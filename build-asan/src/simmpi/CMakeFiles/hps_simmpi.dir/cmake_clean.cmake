file(REMOVE_RECURSE
  "CMakeFiles/hps_simmpi.dir/collectives.cpp.o"
  "CMakeFiles/hps_simmpi.dir/collectives.cpp.o.d"
  "CMakeFiles/hps_simmpi.dir/replayer.cpp.o"
  "CMakeFiles/hps_simmpi.dir/replayer.cpp.o.d"
  "libhps_simmpi.a"
  "libhps_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hps_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
