file(REMOVE_RECURSE
  "libhps_simmpi.a"
)
