# Empty dependencies file for hps_simmpi.
# This may be replaced when dependencies are built.
