file(REMOVE_RECURSE
  "libhps_common.a"
)
