# Empty dependencies file for hps_common.
# This may be replaced when dependencies are built.
