file(REMOVE_RECURSE
  "CMakeFiles/hps_common.dir/matrix.cpp.o"
  "CMakeFiles/hps_common.dir/matrix.cpp.o.d"
  "CMakeFiles/hps_common.dir/rng.cpp.o"
  "CMakeFiles/hps_common.dir/rng.cpp.o.d"
  "CMakeFiles/hps_common.dir/stats_util.cpp.o"
  "CMakeFiles/hps_common.dir/stats_util.cpp.o.d"
  "CMakeFiles/hps_common.dir/table.cpp.o"
  "CMakeFiles/hps_common.dir/table.cpp.o.d"
  "libhps_common.a"
  "libhps_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hps_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
