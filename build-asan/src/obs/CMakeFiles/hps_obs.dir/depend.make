# Empty dependencies file for hps_obs.
# This may be replaced when dependencies are built.
