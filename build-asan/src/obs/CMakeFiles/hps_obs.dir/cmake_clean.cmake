file(REMOVE_RECURSE
  "CMakeFiles/hps_obs.dir/inspect.cpp.o"
  "CMakeFiles/hps_obs.dir/inspect.cpp.o.d"
  "CMakeFiles/hps_obs.dir/ledger.cpp.o"
  "CMakeFiles/hps_obs.dir/ledger.cpp.o.d"
  "CMakeFiles/hps_obs.dir/timeline.cpp.o"
  "CMakeFiles/hps_obs.dir/timeline.cpp.o.d"
  "libhps_obs.a"
  "libhps_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hps_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
