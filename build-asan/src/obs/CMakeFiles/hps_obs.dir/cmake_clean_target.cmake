file(REMOVE_RECURSE
  "libhps_obs.a"
)
