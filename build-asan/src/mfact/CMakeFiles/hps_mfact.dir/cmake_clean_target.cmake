file(REMOVE_RECURSE
  "libhps_mfact.a"
)
