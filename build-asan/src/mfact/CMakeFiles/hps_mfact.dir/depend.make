# Empty dependencies file for hps_mfact.
# This may be replaced when dependencies are built.
