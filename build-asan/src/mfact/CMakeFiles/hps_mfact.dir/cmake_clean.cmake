file(REMOVE_RECURSE
  "CMakeFiles/hps_mfact.dir/classify.cpp.o"
  "CMakeFiles/hps_mfact.dir/classify.cpp.o.d"
  "CMakeFiles/hps_mfact.dir/coll_cost.cpp.o"
  "CMakeFiles/hps_mfact.dir/coll_cost.cpp.o.d"
  "CMakeFiles/hps_mfact.dir/model.cpp.o"
  "CMakeFiles/hps_mfact.dir/model.cpp.o.d"
  "libhps_mfact.a"
  "libhps_mfact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hps_mfact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
