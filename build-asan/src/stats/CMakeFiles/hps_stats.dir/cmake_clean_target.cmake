file(REMOVE_RECURSE
  "libhps_stats.a"
)
