file(REMOVE_RECURSE
  "CMakeFiles/hps_stats.dir/crossval.cpp.o"
  "CMakeFiles/hps_stats.dir/crossval.cpp.o.d"
  "CMakeFiles/hps_stats.dir/logistic.cpp.o"
  "CMakeFiles/hps_stats.dir/logistic.cpp.o.d"
  "CMakeFiles/hps_stats.dir/stepwise.cpp.o"
  "CMakeFiles/hps_stats.dir/stepwise.cpp.o.d"
  "libhps_stats.a"
  "libhps_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hps_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
