
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/crossval.cpp" "src/stats/CMakeFiles/hps_stats.dir/crossval.cpp.o" "gcc" "src/stats/CMakeFiles/hps_stats.dir/crossval.cpp.o.d"
  "/root/repo/src/stats/logistic.cpp" "src/stats/CMakeFiles/hps_stats.dir/logistic.cpp.o" "gcc" "src/stats/CMakeFiles/hps_stats.dir/logistic.cpp.o.d"
  "/root/repo/src/stats/stepwise.cpp" "src/stats/CMakeFiles/hps_stats.dir/stepwise.cpp.o" "gcc" "src/stats/CMakeFiles/hps_stats.dir/stepwise.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/hps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
