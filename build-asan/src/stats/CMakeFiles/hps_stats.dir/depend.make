# Empty dependencies file for hps_stats.
# This may be replaced when dependencies are built.
