# Empty dependencies file for hps_machine.
# This may be replaced when dependencies are built.
