file(REMOVE_RECURSE
  "CMakeFiles/hps_machine.dir/machine.cpp.o"
  "CMakeFiles/hps_machine.dir/machine.cpp.o.d"
  "libhps_machine.a"
  "libhps_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hps_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
