file(REMOVE_RECURSE
  "libhps_machine.a"
)
