file(REMOVE_RECURSE
  "CMakeFiles/fig4_doe.dir/fig4_doe.cpp.o"
  "CMakeFiles/fig4_doe.dir/fig4_doe.cpp.o.d"
  "fig4_doe"
  "fig4_doe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_doe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
