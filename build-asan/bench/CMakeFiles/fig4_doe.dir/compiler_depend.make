# Empty compiler generated dependencies file for fig4_doe.
# This may be replaced when dependencies are built.
