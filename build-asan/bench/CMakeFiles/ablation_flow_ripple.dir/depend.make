# Empty dependencies file for ablation_flow_ripple.
# This may be replaced when dependencies are built.
