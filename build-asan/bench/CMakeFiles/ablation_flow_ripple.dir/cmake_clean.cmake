file(REMOVE_RECURSE
  "CMakeFiles/ablation_flow_ripple.dir/ablation_flow_ripple.cpp.o"
  "CMakeFiles/ablation_flow_ripple.dir/ablation_flow_ripple.cpp.o.d"
  "ablation_flow_ripple"
  "ablation_flow_ripple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flow_ripple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
