file(REMOVE_RECURSE
  "CMakeFiles/study_summary.dir/study_summary.cpp.o"
  "CMakeFiles/study_summary.dir/study_summary.cpp.o.d"
  "study_summary"
  "study_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
