# Empty dependencies file for study_summary.
# This may be replaced when dependencies are built.
