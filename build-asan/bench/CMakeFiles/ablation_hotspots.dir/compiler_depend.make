# Empty compiler generated dependencies file for ablation_hotspots.
# This may be replaced when dependencies are built.
