file(REMOVE_RECURSE
  "CMakeFiles/ablation_hotspots.dir/ablation_hotspots.cpp.o"
  "CMakeFiles/ablation_hotspots.dir/ablation_hotspots.cpp.o.d"
  "ablation_hotspots"
  "ablation_hotspots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hotspots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
