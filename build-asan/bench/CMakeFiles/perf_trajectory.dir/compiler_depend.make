# Empty compiler generated dependencies file for perf_trajectory.
# This may be replaced when dependencies are built.
