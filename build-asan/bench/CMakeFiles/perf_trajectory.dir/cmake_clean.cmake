file(REMOVE_RECURSE
  "CMakeFiles/perf_trajectory.dir/perf_trajectory.cpp.o"
  "CMakeFiles/perf_trajectory.dir/perf_trajectory.cpp.o.d"
  "perf_trajectory"
  "perf_trajectory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
