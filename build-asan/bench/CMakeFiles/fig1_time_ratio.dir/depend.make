# Empty dependencies file for fig1_time_ratio.
# This may be replaced when dependencies are built.
