file(REMOVE_RECURSE
  "CMakeFiles/fig1_time_ratio.dir/fig1_time_ratio.cpp.o"
  "CMakeFiles/fig1_time_ratio.dir/fig1_time_ratio.cpp.o.d"
  "fig1_time_ratio"
  "fig1_time_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_time_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
