file(REMOVE_RECURSE
  "CMakeFiles/ablation_diff_threshold.dir/ablation_diff_threshold.cpp.o"
  "CMakeFiles/ablation_diff_threshold.dir/ablation_diff_threshold.cpp.o.d"
  "ablation_diff_threshold"
  "ablation_diff_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_diff_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
