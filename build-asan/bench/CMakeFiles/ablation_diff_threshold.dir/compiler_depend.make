# Empty compiler generated dependencies file for ablation_diff_threshold.
# This may be replaced when dependencies are built.
