file(REMOVE_RECURSE
  "CMakeFiles/fig3_nas.dir/fig3_nas.cpp.o"
  "CMakeFiles/fig3_nas.dir/fig3_nas.cpp.o.d"
  "fig3_nas"
  "fig3_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
