# Empty dependencies file for fig3_nas.
# This may be replaced when dependencies are built.
