# Empty compiler generated dependencies file for hps_bench_common.
# This may be replaced when dependencies are built.
