file(REMOVE_RECURSE
  "CMakeFiles/hps_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/hps_bench_common.dir/bench_common.cpp.o.d"
  "libhps_bench_common.a"
  "libhps_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hps_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
