file(REMOVE_RECURSE
  "libhps_bench_common.a"
)
