# Empty dependencies file for table2_exec_time.
# This may be replaced when dependencies are built.
