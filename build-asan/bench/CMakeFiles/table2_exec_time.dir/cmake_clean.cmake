file(REMOVE_RECURSE
  "CMakeFiles/table2_exec_time.dir/table2_exec_time.cpp.o"
  "CMakeFiles/table2_exec_time.dir/table2_exec_time.cpp.o.d"
  "table2_exec_time"
  "table2_exec_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_exec_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
