file(REMOVE_RECURSE
  "CMakeFiles/table5_predictor.dir/table5_predictor.cpp.o"
  "CMakeFiles/table5_predictor.dir/table5_predictor.cpp.o.d"
  "table5_predictor"
  "table5_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
