# Empty compiler generated dependencies file for table5_predictor.
# This may be replaced when dependencies are built.
