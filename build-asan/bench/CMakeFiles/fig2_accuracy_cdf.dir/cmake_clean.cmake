file(REMOVE_RECURSE
  "CMakeFiles/fig2_accuracy_cdf.dir/fig2_accuracy_cdf.cpp.o"
  "CMakeFiles/fig2_accuracy_cdf.dir/fig2_accuracy_cdf.cpp.o.d"
  "fig2_accuracy_cdf"
  "fig2_accuracy_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_accuracy_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
