# Empty compiler generated dependencies file for table4_stepwise.
# This may be replaced when dependencies are built.
