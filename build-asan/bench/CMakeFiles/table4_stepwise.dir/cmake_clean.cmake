file(REMOVE_RECURSE
  "CMakeFiles/table4_stepwise.dir/table4_stepwise.cpp.o"
  "CMakeFiles/table4_stepwise.dir/table4_stepwise.cpp.o.d"
  "table4_stepwise"
  "table4_stepwise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_stepwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
