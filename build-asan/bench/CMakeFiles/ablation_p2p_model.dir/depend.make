# Empty dependencies file for ablation_p2p_model.
# This may be replaced when dependencies are built.
