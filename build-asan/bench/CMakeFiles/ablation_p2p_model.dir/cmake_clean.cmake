file(REMOVE_RECURSE
  "CMakeFiles/ablation_p2p_model.dir/ablation_p2p_model.cpp.o"
  "CMakeFiles/ablation_p2p_model.dir/ablation_p2p_model.cpp.o.d"
  "ablation_p2p_model"
  "ablation_p2p_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_p2p_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
