# Empty compiler generated dependencies file for fig5_diff_by_class.
# This may be replaced when dependencies are built.
