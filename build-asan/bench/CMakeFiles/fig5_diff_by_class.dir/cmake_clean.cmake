file(REMOVE_RECURSE
  "CMakeFiles/fig5_diff_by_class.dir/fig5_diff_by_class.cpp.o"
  "CMakeFiles/fig5_diff_by_class.dir/fig5_diff_by_class.cpp.o.d"
  "fig5_diff_by_class"
  "fig5_diff_by_class.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_diff_by_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
