file(REMOVE_RECURSE
  "CMakeFiles/table1_corpus.dir/table1_corpus.cpp.o"
  "CMakeFiles/table1_corpus.dir/table1_corpus.cpp.o.d"
  "table1_corpus"
  "table1_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
