# Empty compiler generated dependencies file for table1_corpus.
# This may be replaced when dependencies are built.
