
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_obs.cpp" "tests/CMakeFiles/test_obs.dir/test_obs.cpp.o" "gcc" "tests/CMakeFiles/test_obs.dir/test_obs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/obs/CMakeFiles/hps_obs.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/hps_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/workloads/CMakeFiles/hps_workloads.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/simmpi/CMakeFiles/hps_simmpi.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/machine/CMakeFiles/hps_machine.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/simnet/CMakeFiles/hps_simnet.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/topo/CMakeFiles/hps_topo.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/des/CMakeFiles/hps_des.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/mfact/CMakeFiles/hps_mfact.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/robust/CMakeFiles/hps_robust.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/telemetry/CMakeFiles/hps_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/trace/CMakeFiles/hps_trace.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/stats/CMakeFiles/hps_stats.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/hps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
