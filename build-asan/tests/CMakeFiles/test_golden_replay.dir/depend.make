# Empty dependencies file for test_golden_replay.
# This may be replaced when dependencies are built.
