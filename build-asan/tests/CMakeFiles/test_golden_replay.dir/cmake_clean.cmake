file(REMOVE_RECURSE
  "CMakeFiles/test_golden_replay.dir/test_golden_replay.cpp.o"
  "CMakeFiles/test_golden_replay.dir/test_golden_replay.cpp.o.d"
  "test_golden_replay"
  "test_golden_replay.pdb"
  "test_golden_replay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_golden_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
