# Empty dependencies file for test_mfact.
# This may be replaced when dependencies are built.
