file(REMOVE_RECURSE
  "CMakeFiles/test_mfact.dir/test_mfact.cpp.o"
  "CMakeFiles/test_mfact.dir/test_mfact.cpp.o.d"
  "test_mfact"
  "test_mfact.pdb"
  "test_mfact[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mfact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
