
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_mfact.cpp" "tests/CMakeFiles/test_mfact.dir/test_mfact.cpp.o" "gcc" "tests/CMakeFiles/test_mfact.dir/test_mfact.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/mfact/CMakeFiles/hps_mfact.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/trace/CMakeFiles/hps_trace.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/robust/CMakeFiles/hps_robust.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/telemetry/CMakeFiles/hps_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/obs/CMakeFiles/hps_obs.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/hps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
