# Empty compiler generated dependencies file for test_replayer.
# This may be replaced when dependencies are built.
