file(REMOVE_RECURSE
  "CMakeFiles/test_replayer.dir/test_replayer.cpp.o"
  "CMakeFiles/test_replayer.dir/test_replayer.cpp.o.d"
  "test_replayer"
  "test_replayer.pdb"
  "test_replayer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
