# Empty dependencies file for test_ipc.
# This may be replaced when dependencies are built.
