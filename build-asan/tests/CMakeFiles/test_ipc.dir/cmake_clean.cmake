file(REMOVE_RECURSE
  "CMakeFiles/test_ipc.dir/test_ipc.cpp.o"
  "CMakeFiles/test_ipc.dir/test_ipc.cpp.o.d"
  "test_ipc"
  "test_ipc.pdb"
  "test_ipc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
