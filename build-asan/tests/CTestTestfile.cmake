# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/test_common[1]_include.cmake")
include("/root/repo/build-asan/tests/test_trace[1]_include.cmake")
include("/root/repo/build-asan/tests/test_topo[1]_include.cmake")
include("/root/repo/build-asan/tests/test_des[1]_include.cmake")
include("/root/repo/build-asan/tests/test_event_queue[1]_include.cmake")
include("/root/repo/build-asan/tests/test_machine[1]_include.cmake")
include("/root/repo/build-asan/tests/test_simnet[1]_include.cmake")
include("/root/repo/build-asan/tests/test_collectives[1]_include.cmake")
include("/root/repo/build-asan/tests/test_replayer[1]_include.cmake")
include("/root/repo/build-asan/tests/test_mfact[1]_include.cmake")
include("/root/repo/build-asan/tests/test_stats[1]_include.cmake")
include("/root/repo/build-asan/tests/test_workloads[1]_include.cmake")
include("/root/repo/build-asan/tests/test_telemetry[1]_include.cmake")
include("/root/repo/build-asan/tests/test_obs[1]_include.cmake")
include("/root/repo/build-asan/tests/test_robust[1]_include.cmake")
include("/root/repo/build-asan/tests/test_ipc[1]_include.cmake")
include("/root/repo/build-asan/tests/test_supervisor[1]_include.cmake")
include("/root/repo/build-asan/tests/test_core[1]_include.cmake")
include("/root/repo/build-asan/tests/test_determinism[1]_include.cmake")
include("/root/repo/build-asan/tests/test_golden_replay[1]_include.cmake")
include("/root/repo/build-asan/tests/test_integration[1]_include.cmake")
include("/root/repo/build-asan/tests/test_property[1]_include.cmake")
