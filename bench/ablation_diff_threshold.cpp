// Ablation: sensitivity of the need-for-simulation predictor to the
// DIFF_total threshold (the paper fixes 2% and notes that traces near the
// threshold drive most misclassifications).
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/decision.hpp"

int main() {
  using namespace hps;
  bench::print_header("Ablation: DIFF_total threshold for \"needs simulation\"",
                      "the 2% threshold choice of Section VI");

  const auto study = bench::load_or_run_study();

  TextTable t;
  t.set_header({"threshold", "positives", "naive success", "enhanced success", "FN", "FP"});
  for (const double thr : {0.01, 0.02, 0.03, 0.05, 0.10}) {
    core::DecisionOptions opts;
    opts.diff_threshold = thr;
    opts.cv.splits = 40;  // lighter CV for the sweep
    std::fprintf(stderr, "[ablation] threshold %.0f%%...\n", 100 * thr);
    const auto ev = core::evaluate_decision_model(study.outcomes, opts);
    t.add_row({fmt_percent(thr, 0), std::to_string(ev.positives),
               fmt_percent(ev.naive.success_rate, 1), fmt_percent(ev.cv.success_rate(), 1),
               fmt_percent(ev.cv.fn_rate_trimmed_mean, 1),
               fmt_percent(ev.cv.fp_rate_trimmed_mean, 1)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("The paper's 2%% sits where the classes are most separable; looser thresholds\n"
              "shrink the positive class until the trivial all-negative answer dominates.\n");
  return 0;
}
