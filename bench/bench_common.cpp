#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>

#include "telemetry/export.hpp"

namespace hps::bench {

core::StudyOptions default_study_options() {
  core::StudyOptions opts;
  opts.corpus.seed = 42;
  opts.corpus.duration_scale = 0.35;
  if (const char* env = std::getenv("HPS_DURATION_SCALE")) {
    const double v = std::atof(env);
    if (v > 0) opts.corpus.duration_scale = v;
  }
  opts.cache_path = core::default_cache_path("study");
  // Opt-in run ledger: point HPS_LEDGER at a .jsonl path to append one
  // record per trace×scheme whenever the study is recomputed.
  if (const char* env = std::getenv("HPS_LEDGER")) {
    if (env[0] != '\0') opts.ledger_path = env;
  }
  opts.progress = true;
  return opts;
}

core::StudyResult load_or_run_study() {
  const core::StudyOptions opts = default_study_options();
  std::fprintf(stderr, "[study] corpus of 235 traces, duration_scale=%.2f, cache=%s\n",
               opts.corpus.duration_scale, opts.cache_path.c_str());
  core::StudyResult res = run_study(opts);
  if (res.from_cache) {
    std::fprintf(stderr, "[study] loaded %zu outcomes from cache\n", res.outcomes.size());
  } else {
    std::fprintf(stderr, "[study] computed %zu outcomes in %.1f s (now cached)\n",
                 res.outcomes.size(), res.wall_seconds);
  }
  return res;
}

std::vector<const core::TraceOutcome*> with_schemes_ok(
    const std::vector<core::TraceOutcome>& outcomes,
    std::initializer_list<core::Scheme> need) {
  std::vector<const core::TraceOutcome*> out;
  for (const auto& o : outcomes) {
    bool ok = true;
    for (const core::Scheme s : need) ok = ok && o.of(s).ok;
    if (ok) out.push_back(&o);
  }
  return out;
}

void print_header(const std::string& title, const std::string& paper_ref) {
  // Honor HPS_TELEMETRY for every bench binary; a no-op when unset.
  telemetry::init_from_env();
  std::printf("=== %s ===\n", title.c_str());
  std::printf("(reproduces %s of \"Performance and Accuracy Trade-offs of HPC Application "
              "Modeling and Simulation\")\n\n",
              paper_ref.c_str());
}

}  // namespace hps::bench
