// Figure 2: cumulative distributions of the difference between each
// simulation model's estimate and MFACT's — (a) communication time and
// (b) total application time — across the corpus, plus the paper's headline
// percentages (63% of cases within 2%, 85% within 5%, 94% within 10% for
// packet-flow total time).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/stats_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace hps;
  using core::Scheme;
  bench::print_header("Figure 2: simulation vs modeling difference CDFs", "Figure 2");

  const auto study = bench::load_or_run_study();
  const Scheme sims[] = {Scheme::kPacket, Scheme::kFlow, Scheme::kPacketFlow};
  const double thresholds[] = {0.01, 0.02, 0.05, 0.10, 0.20, 0.40};

  auto print_cdf = [&](const char* title, bool comm) {
    std::printf("%s\n", title);
    TextTable t;
    t.set_header({"model", "n", "<=1%", "<=2%", "<=5%", "<=10%", "<=20%", "<=40%", "max"});
    for (const Scheme s : sims) {
      std::vector<double> diffs;
      for (const auto& o : study.outcomes) {
        const auto d = comm ? o.diff_comm(s) : o.diff_total(s);
        if (d) diffs.push_back(*d);
      }
      std::vector<std::string> row = {core::scheme_name(s), std::to_string(diffs.size())};
      for (const double thr : thresholds) row.push_back(fmt_percent(cdf_at(diffs, thr), 0));
      row.push_back(fmt_percent(summarize(diffs).max, 1));
      t.add_row(row);
    }
    std::printf("%s\n", t.render().c_str());
  };

  print_cdf("(a) |estimated communication time / MFACT - 1|", true);
  print_cdf("(b) |estimated total time / MFACT - 1|", false);

  // Headline claims (paper, packet-flow, total time): 63% <=2%, 85% <=5%,
  // 94% <=10%; packet 96% and flow 98% <=10%.
  std::vector<double> pf;
  for (const auto& o : study.outcomes)
    if (const auto d = o.diff_total(Scheme::kPacketFlow)) pf.push_back(*d);
  std::printf("Headline (packet-flow total time): %.0f%% within 2%% (paper 63%%), "
              "%.0f%% within 5%% (paper 85%%), %.0f%% within 10%% (paper 94%%)\n",
              100.0 * cdf_at(pf, 0.02), 100.0 * cdf_at(pf, 0.05), 100.0 * cdf_at(pf, 0.10));
  return 0;
}
