// Corpus study overview: classification counts, communication-share and
// DIFF_total distributions, scheme success rates and total tool times — a
// one-stop calibration/fidelity summary backing EXPERIMENTS.md.
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/stats_util.hpp"
#include "common/table.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/features.hpp"

int main(int argc, char** argv) {
  using namespace hps;
  using core::Scheme;
  bench::print_header("Corpus study summary", "the overall dataset of Sections V-VI");

  // Always collect scheme-level telemetry for the breakdown table below
  // (HPS_TELEMETRY additionally selects an export format, via print_header).
  telemetry::Registry::global().set_enabled(true);

  const auto study = bench::load_or_run_study();

  // Optional per-trace CSV export: study_summary --csv <path>.
  if (argc == 3 && std::string(argv[1]) == "--csv") {
    std::ofstream csv(argv[2]);
    csv << "id,app,machine,ranks,events,measured_total_s,class,group,bw_sens,lat_sens";
    for (int sc = 0; sc < static_cast<int>(Scheme::kNumSchemes); ++sc)
      csv << ',' << core::scheme_name(static_cast<Scheme>(sc)) << "_total_s,"
          << core::scheme_name(static_cast<Scheme>(sc)) << "_wall_s";
    csv << ",diff_total_pflow\n";
    for (const auto& o : study.outcomes) {
      csv << o.spec_id << ',' << o.app << ',' << o.machine << ',' << o.ranks << ','
          << o.events << ',' << time_to_seconds(o.measured_total) << ','
          << mfact::app_class_name(o.app_class) << ',' << mfact::group_name(o.group) << ','
          << o.bw_sensitivity << ',' << o.lat_sensitivity;
      for (int sc = 0; sc < static_cast<int>(Scheme::kNumSchemes); ++sc) {
        const auto& so = o.scheme[sc];
        csv << ',' << (so.ok ? time_to_seconds(so.total_time) : -1.0) << ','
            << (so.ok ? so.wall_seconds : -1.0);
      }
      const auto d = o.diff_total(Scheme::kPacketFlow);
      csv << ',' << (d ? *d : -1.0) << '\n';
    }
    std::printf("wrote per-trace CSV to %s\n", argv[2]);
  }

  // Classification mix.
  std::map<std::string, int> classes;
  int cs = 0;
  for (const auto& o : study.outcomes) {
    ++classes[mfact::app_class_name(o.app_class)];
    cs += o.group == mfact::SensitivityGroup::kCommSensitive ? 1 : 0;
  }
  std::printf("MFACT classes:");
  for (const auto& [name, count] : classes) std::printf("  %s: %d", name.c_str(), count);
  std::printf("\nGroups: communication-sensitive %d, ncs %d (paper: 102 cs, 133 ncs)\n\n",
              cs, static_cast<int>(study.outcomes.size()) - cs);

  // Per-scheme health and wall time.
  TextTable t;
  t.set_header({"scheme", "ok", "failed", "total wall s", "median wall s"});
  for (int s = 0; s < static_cast<int>(Scheme::kNumSchemes); ++s) {
    int ok = 0, failed = 0;
    double total = 0;
    std::vector<double> walls;
    for (const auto& o : study.outcomes) {
      const auto& so = o.scheme[s];
      if (!so.attempted) continue;
      (so.ok ? ok : failed) += 1;
      total += so.wall_seconds;
      walls.push_back(so.wall_seconds);
    }
    t.add_row({core::scheme_name(static_cast<Scheme>(s)), std::to_string(ok),
               std::to_string(failed), fmt_double(total, 1),
               fmt_double(summarize(walls).median, 4)});
  }
  std::printf("%s\n", t.render().c_str());

  // Distributions.
  std::vector<double> comm_pct, diffs, events;
  for (const auto& o : study.outcomes) {
    comm_pct.push_back(o.features[trace::kF_PoC]);
    events.push_back(static_cast<double>(o.events));
    if (const auto d = o.diff_total(Scheme::kPacketFlow)) diffs.push_back(*d * 100);
  }
  auto line = [](const char* label, const Summary& s, const char* unit) {
    std::printf("%-22s min %.2f  p25 %.2f  median %.2f  p75 %.2f  p90 %.2f  max %.2f %s\n",
                label, s.min, s.p25, s.median, s.p75, s.p90, s.max, unit);
  };
  line("comm share", summarize(comm_pct), "%");
  line("DIFF_total (p-flow)", summarize(diffs), "%");
  line("events per trace", summarize(events), "");

  // Per-scheme simulation effort, from the telemetry registry. Counters are
  // live run totals: a cache hit skips all scheme work, so they read zero.
  if (study.from_cache) {
    std::printf("\ntelemetry: study served from cache; no scheme work executed this run\n"
                "(delete the cache or set HPS_DURATION_SCALE to force recomputation)\n");
  } else {
    const telemetry::Snapshot snap = telemetry::Registry::global().snapshot();
    TextTable bt;
    bt.set_header({"scheme", "runs", "DES events", "net msgs", "packets", "collectives",
                   "model evals"});
    for (const char* scheme : {"mfact", "packet", "flow", "packet-flow"}) {
      const std::string p = std::string("scheme.") + scheme + ".";
      bt.add_row({scheme, std::to_string(snap.value(p + "runs")),
                  std::to_string(snap.value(p + "des_events_processed")),
                  std::to_string(snap.value(p + "net_messages")),
                  std::to_string(snap.value(p + "net_packets")),
                  std::to_string(snap.value(p + "collectives")),
                  std::to_string(snap.value(p + "model_evals"))});
    }
    std::printf("\nper-scheme simulation effort (live telemetry):\n%s", bt.render().c_str());
  }
  return 0;
}
