// Shared implementation of Figures 3 (NAS) and 4 (DOE): per-application
// comparison of the three simulation models against MFACT — estimated
// communication time (a), estimated total time (b), and both tools'
// estimates normalized to the measured (ground-truth) time (c).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/runner.hpp"
#include "workloads/generators.hpp"

namespace hps::bench {

struct FigApp {
  std::string app;
  Rank want_ranks;
};

inline int run_fig34(const char* title, const char* paper_ref,
                     const std::vector<FigApp>& apps, double paper_sst_below,
                     double paper_mfact_below) {
  using core::Scheme;
  print_header(title, paper_ref);

  TextTable ta, tb, tc;
  ta.set_header({"app", "ranks", "pkt/MFACT", "flow/MFACT", "p-flow/MFACT"});
  tb.set_header({"app", "ranks", "pkt/MFACT", "flow/MFACT", "p-flow/MFACT"});
  tc.set_header({"app", "ranks", "measured s", "SST/measured", "MFACT/measured"});

  double sst_ratio_sum = 0, mfact_ratio_sum = 0;
  int counted = 0;

  for (const FigApp& fa : apps) {
    const auto& gen = workloads::generator_by_name(fa.app);
    const Rank ranks = gen.pick_ranks(fa.want_ranks / 2 + 1, fa.want_ranks);
    if (ranks < 0) continue;
    workloads::GenParams gp;
    gp.ranks = ranks;
    gp.seed = 4321;
    gp.machine = "cielito";
    gp.iter_factor = 0.5;
    std::fprintf(stderr, "[fig] running %s(%d)...\n", fa.app.c_str(), ranks);
    const trace::Trace tr = workloads::generate_app(fa.app, gp);
    const core::TraceOutcome o = core::run_all_schemes(tr);
    if (!o.of(Scheme::kMfact).ok) continue;

    const double m_total = static_cast<double>(o.of(Scheme::kMfact).total_time);
    const double m_comm = static_cast<double>(o.of(Scheme::kMfact).comm_time);
    auto ratio = [](double num, double den) {
      return den > 0 ? fmt_double(num / den, 3) : std::string("-");
    };
    ta.add_row({fa.app, std::to_string(ranks),
                ratio(static_cast<double>(o.of(Scheme::kPacket).comm_time), m_comm),
                ratio(static_cast<double>(o.of(Scheme::kFlow).comm_time), m_comm),
                ratio(static_cast<double>(o.of(Scheme::kPacketFlow).comm_time), m_comm)});
    tb.add_row({fa.app, std::to_string(ranks),
                ratio(static_cast<double>(o.of(Scheme::kPacket).total_time), m_total),
                ratio(static_cast<double>(o.of(Scheme::kFlow).total_time), m_total),
                ratio(static_cast<double>(o.of(Scheme::kPacketFlow).total_time), m_total)});
    const double measured = static_cast<double>(o.measured_total);
    const double sst = static_cast<double>(o.of(Scheme::kPacketFlow).total_time);
    tc.add_row({fa.app, std::to_string(ranks), fmt_double(measured * 1e-9, 3),
                ratio(sst, measured), ratio(m_total, measured)});
    if (measured > 0) {
      sst_ratio_sum += sst / measured;
      mfact_ratio_sum += m_total / measured;
      ++counted;
    }
  }

  std::printf("(a) Estimated communication time, normalized to MFACT\n%s\n",
              ta.render().c_str());
  std::printf("(b) Estimated total time, normalized to MFACT\n%s\n", tb.render().c_str());
  std::printf("(c) Estimated total time, normalized to measured time\n%s\n",
              tc.render().c_str());
  if (counted > 0) {
    std::printf("Average below measured: SST %.2f%% (paper %.2f%%), MFACT %.2f%% "
                "(paper %.2f%%)\n",
                100.0 * (1.0 - sst_ratio_sum / counted), paper_sst_below,
                100.0 * (1.0 - mfact_ratio_sum / counted), paper_mfact_below);
  }
  return 0;
}

}  // namespace hps::bench
