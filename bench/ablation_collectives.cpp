// Ablation: collective algorithm choice under detailed simulation — pairwise
// vs Bruck alltoall and ring vs recursive-doubling allgather, the
// Thakur-Gropp repertoire the replayer decomposes collectives with.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "machine/machine.hpp"
#include "simmpi/replayer.hpp"
#include "trace/builder.hpp"

namespace {

hps::trace::Trace collective_trace(hps::trace::OpType op, hps::Rank n, std::uint64_t bytes,
                                   int repeats) {
  using namespace hps;
  trace::TraceMeta m;
  m.app = "coll";
  m.nranks = n;
  m.ranks_per_node = 16;
  m.machine = "cielito";
  trace::Trace t(std::move(m));
  for (Rank r = 0; r < n; ++r) {
    trace::RankBuilder b(t, r);
    for (int i = 0; i < repeats; ++i) {
      b.compute(10000);
      switch (op) {
        case trace::OpType::kAlltoall: b.alltoall(bytes, 0); break;
        case trace::OpType::kAllgather: b.allgather(bytes, 0); break;
        default: b.allreduce(bytes, 0); break;
      }
    }
  }
  return t;
}

}  // namespace

int main() {
  using namespace hps;
  using simmpi::CollectiveAlgos;
  bench::print_header("Ablation: collective decomposition algorithms",
                      "the Thakur-Gropp algorithm choices of Section IV");

  const machine::MachineConfig mc = machine::cielito();

  TextTable t;
  t.set_header({"collective", "n", "bytes", "algorithm", "simulated time", "p2p msgs"});

  auto run = [&](trace::OpType op, Rank n, std::uint64_t bytes, const char* label,
                 CollectiveAlgos algos) {
    const auto tr = collective_trace(op, n, bytes, 4);
    const machine::MachineInstance mi(mc, n, 16);
    simmpi::ReplayConfig cfg;
    cfg.algos = algos;
    const auto r = simmpi::replay_trace(tr, mi, simmpi::NetModelKind::kPacketFlow, cfg);
    t.add_row({trace::op_name(op), std::to_string(n), fmt_si_bytes(static_cast<double>(bytes)),
               label, fmt_double(time_to_seconds(r.total_time) * 1e3, 3) + " ms",
               std::to_string(r.net.messages)});
  };

  for (const Rank n : {64, 256}) {
    for (const std::uint64_t bytes : {256ull, 65536ull}) {
      CollectiveAlgos pairwise;
      pairwise.alltoall = CollectiveAlgos::Alltoall::kPairwise;
      run(trace::OpType::kAlltoall, n, bytes, "pairwise", pairwise);
      CollectiveAlgos bruck;
      bruck.alltoall = CollectiveAlgos::Alltoall::kBruck;
      run(trace::OpType::kAlltoall, n, bytes, "bruck", bruck);
    }
    CollectiveAlgos ring;
    ring.allgather = CollectiveAlgos::Allgather::kRing;
    run(trace::OpType::kAllgather, n, 4096, "ring", ring);
    CollectiveAlgos rd;
    rd.allgather = CollectiveAlgos::Allgather::kRecursiveDoubling;
    run(trace::OpType::kAllgather, n, 4096, "recursive-doubling", rd);
  }
  // Allreduce threshold ablation: force each algorithm on a large payload.
  for (const Rank n : {64, 256}) {
    CollectiveAlgos rdbl;
    rdbl.allreduce_rabenseifner_threshold = 1ull << 40;
    run(trace::OpType::kAllreduce, n, 1 << 20, "recursive-doubling", rdbl);
    CollectiveAlgos raben;
    raben.allreduce_rabenseifner_threshold = 0;
    run(trace::OpType::kAllreduce, n, 1 << 20, "rabenseifner", raben);
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Expected shape: Bruck wins for small blocks at scale (fewer rounds) and\n"
              "loses for large blocks (log-factor extra volume); Rabenseifner beats\n"
              "recursive doubling for large allreduces.\n");
  return 0;
}
