// Table I: characteristics of the traces — (a) rank-count distribution and
// (b) communication-intensity distribution of the 235-trace corpus.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "trace/features.hpp"

int main() {
  using namespace hps;
  bench::print_header("Table I: Characteristics of the traces", "Table I");

  const auto study = bench::load_or_run_study();

  // (a) number of ranks.
  TextTable ta;
  ta.set_header({"Ranks", "Traces", "(paper)"});
  const workloads::CorpusOptions copts;  // must match the study's corpus
  const char* paper_counts[] = {"72", "18", "80", "12", "37", "16"};
  const auto buckets = workloads::table1a_buckets();
  int total = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    int count = 0;
    for (const auto& o : study.outcomes)
      if (o.ranks >= buckets[i].lo && o.ranks <= buckets[i].hi) ++count;
    total += count;
    const std::string label = buckets[i].lo == buckets[i].hi
                                  ? std::to_string(buckets[i].lo)
                                  : std::to_string(buckets[i].lo) + "-" +
                                        std::to_string(buckets[i].hi);
    ta.add_row({label, std::to_string(count), paper_counts[i]});
  }
  ta.add_separator();
  ta.add_row({"Total", std::to_string(total), "235"});
  std::printf("(a) Number of ranks\n%s\n", ta.render().c_str());

  // (b) communication time share.
  struct Band {
    double lo, hi;
    const char* label;
    const char* paper;
  };
  const Band bands[] = {{-1, 5, "<=5", "26"},   {5, 10, "5-10", "30"},
                        {10, 20, "10-20", "55"}, {20, 40, "20-40", "54"},
                        {40, 60, "40-60", "30"}, {60, 101, ">60", "40"}};
  TextTable tb;
  tb.set_header({"Comm. time (%)", "Traces", "(paper)"});
  int totalb = 0;
  for (const Band& b : bands) {
    int count = 0;
    for (const auto& o : study.outcomes) {
      const double pc = o.features[trace::kF_PoC];
      if (pc > b.lo && pc <= b.hi) ++count;
    }
    totalb += count;
    tb.add_row({b.label, std::to_string(count), b.paper});
  }
  tb.add_separator();
  tb.add_row({"Total", std::to_string(totalb), "235"});
  std::printf("(b) Communication time\n%s\n", tb.render().c_str());

  // Extra provenance the paper gives in prose: apps and machines used.
  std::printf("Corpus: 19 applications (NPB + DOE DesignForward/ExMatEx/CESAR/ExaCT)\n");
  std::printf("collected on cielito / hopper / edison synthetic machine models.\n");
  return 0;
}
