// Ablation: the flow model's "ripple effect" (§II-A) — how the number of
// max-min rate recomputations (and wall time) grows with concurrent flows,
// and what the same-timestamp batching optimization saves.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "des/engine.hpp"
#include "simnet/flow_model.hpp"
#include "topo/topology.hpp"

namespace {

/// Sink that counts deliveries.
class CountSink final : public hps::simnet::MessageSink {
 public:
  void message_delivered(hps::simnet::MsgId, hps::SimTime) override { ++count; }
  int count = 0;
};

}  // namespace

int main() {
  using namespace hps;
  bench::print_header("Ablation: flow-model ripple updates vs concurrent flows",
                      "the ripple-effect discussion of Section II-A");

  TextTable t;
  t.set_header({"concurrent flows", "staggered starts", "rate recomputes", "recomputes/flow",
                "wall ms"});

  topo::Torus3D topo(8, 8, 4);
  simnet::NetConfig cfg;
  cfg.link_bandwidth = 1e10;
  cfg.injection_bandwidth = 1e10;
  cfg.message_bandwidth = 1.25e9;
  cfg.software_overhead = 500;
  cfg.hop_latency = 100;

  for (const int flows : {64, 256, 1024, 4096}) {
    for (const bool staggered : {false, true}) {
      des::Engine eng;
      CountSink sink;
      simnet::FlowModel model(eng, topo, cfg, sink);
      const auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < flows; ++i) {
        const auto src = static_cast<NodeId>(i % topo.num_nodes());
        const auto dst = static_cast<NodeId>((i * 37 + 11) % topo.num_nodes());
        if (staggered) {
          // Distinct start times defeat the same-timestamp batching: every
          // arrival triggers its own water-filling pass (the full ripple).
          eng.schedule_fn_at(i * 10, [&model, i, src, dst] {
            model.inject(static_cast<simnet::MsgId>(i), src, dst, 1 << 20);
          });
        } else {
          model.inject(static_cast<simnet::MsgId>(i), src, dst, 1 << 20);
        }
      }
      eng.run();
      const auto end = std::chrono::steady_clock::now();
      const double wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
      const auto updates = model.stats().rate_updates;
      t.add_row({std::to_string(flows), staggered ? "yes" : "no (batched)",
                 std::to_string(updates),
                 fmt_double(static_cast<double>(updates) / flows, 2),
                 fmt_double(wall_ms, 1)});
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Staggered arrivals force one max-min recomputation per flow event — the\n"
              "ripple effect that makes flow-level simulation scale poorly; batching\n"
              "same-instant updates collapses simultaneous arrivals into one pass.\n");
  return 0;
}
