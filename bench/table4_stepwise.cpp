// Table III/IV: the candidate feature set and the variables selected by
// step-wise forward (AIC) selection across 100 Monte-Carlo cross-validation
// splits — selection frequency and average coefficient per variable.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/decision.hpp"
#include "trace/features.hpp"

int main() {
  using namespace hps;
  bench::print_header("Table IV: variables selected in step-wise selection",
                      "Tables III and IV");

  const auto study = bench::load_or_run_study();

  core::DecisionOptions opts;  // 2% threshold, packet-flow reference, 100 splits
  const auto ds = core::build_decision_dataset(study.outcomes, opts);
  int positives = 0;
  for (int y : ds.y) positives += y;
  std::printf("Dataset: %zu traces, %d require simulation (DIFF_total > 2%%), %d do not.\n",
              ds.n(), positives, static_cast<int>(ds.n()) - positives);
  std::printf("Candidate features (Table III): %d — ", trace::kNumFeatures);
  for (int f = 0; f < trace::kNumFeatures; ++f)
    std::printf("%s%s", trace::feature_names()[static_cast<std::size_t>(f)].c_str(),
                f + 1 < trace::kNumFeatures ? " " : "\n\n");

  std::fprintf(stderr, "[table4] running 100-split Monte-Carlo cross-validation...\n");
  const auto ev = core::evaluate_decision_model(study.outcomes, opts);

  TextTable t;
  t.set_header({"Rank", "Variable", "% Selected", "Coefficient"});
  int rank = 1;
  for (const auto& v : ev.cv.variables) {
    if (rank > 10) break;
    std::string name = ds.names[static_cast<std::size_t>(v.feature)];
    if (name == "CL") name = "CL{cs}";  // paper reports the ncs indicator; ours is cs
    char coef[32];
    std::snprintf(coef, sizeof coef, "%.2E", v.mean_coefficient);
    t.add_row({std::to_string(rank), name, fmt_percent(v.selected_fraction, 0), coef});
    ++rank;
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Paper's top entries: CL{ncs} 100%% (-1.68E+03), PoSYN 97%% (-3.73E-02), R 74%%\n"
              "(+3.04E-01), Tasyn 63%%, CRComm 44%%, NoB 32%%, N 24%%, Tfbr 16%%, RN 15%%,\n"
              "PoCOLL 7%%. (We report CL{cs}=1 for communication-sensitive, so its sign is\n"
              "flipped relative to the paper's CL{ncs} indicator.)\n");
  return 0;
}
