// Shared infrastructure for the paper-reproduction bench binaries: one
// full-corpus study (run once, cached on disk) feeds every table/figure that
// derives from the 235-trace dataset, mirroring how the paper computes all
// of §V-§VI from one set of runs.
#pragma once

#include <string>
#include <vector>

#include "core/study.hpp"

namespace hps::bench {

/// Default options used by every corpus bench: keep them identical so the
/// cache is shared. `duration_scale` trades corpus size for wall time; the
/// HPS_DURATION_SCALE environment variable overrides it.
core::StudyOptions default_study_options();

/// Run or load the shared study; prints a one-line provenance note.
core::StudyResult load_or_run_study();

/// Subset of outcomes where the given schemes all succeeded.
std::vector<const core::TraceOutcome*> with_schemes_ok(
    const std::vector<core::TraceOutcome>& outcomes, std::initializer_list<core::Scheme> need);

/// Print the standard bench header.
void print_header(const std::string& title, const std::string& paper_ref);

}  // namespace hps::bench
