// Ablation: link hotspots and placement — where the traffic actually lands
// on the fabric, and how rank placement changes contention. This is the
// kind of insight only the detailed simulators can give (MFACT has no
// links), i.e. the reason simulation is ever worth its cost.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "machine/machine.hpp"
#include "simmpi/replayer.hpp"
#include "workloads/generators.hpp"

namespace {

struct LoadStats {
  double mean = 0, max = 0, gini = 0;
  int used = 0;
};

LoadStats load_stats(const std::vector<std::uint64_t>& bytes) {
  LoadStats s;
  std::vector<double> xs;
  for (const auto b : bytes)
    if (b > 0) xs.push_back(static_cast<double>(b));
  s.used = static_cast<int>(xs.size());
  if (xs.empty()) return s;
  double sum = 0;
  for (const double x : xs) {
    sum += x;
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  // Gini coefficient of the used-link loads: 0 = perfectly balanced.
  std::sort(xs.begin(), xs.end());
  double cum = 0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    cum += (2.0 * static_cast<double>(i + 1) - static_cast<double>(xs.size()) - 1.0) * xs[i];
  s.gini = cum / (static_cast<double>(xs.size()) * sum);
  return s;
}

}  // namespace

int main() {
  using namespace hps;
  bench::print_header("Ablation: fabric hotspots under placement policies",
                      "the contention effects underlying Figures 2-5");

  workloads::GenParams gp;
  gp.ranks = 256;
  gp.seed = 77;
  gp.iter_factor = 0.4;

  TextTable t;
  t.set_header({"app", "placement", "sim total ms", "used links", "max/mean load", "gini"});

  for (const char* app : {"FT", "FillBoundary", "MiniFE"}) {
    const trace::Trace tr = workloads::generate_app(app, gp);
    for (const auto placement :
         {machine::Placement::kBlock, machine::Placement::kRoundRobin,
          machine::Placement::kRandom}) {
      const char* pname = placement == machine::Placement::kBlock        ? "block"
                          : placement == machine::Placement::kRoundRobin ? "round-robin"
                                                                         : "random";
      const machine::MachineInstance mi(machine::cielito(), tr.nranks(),
                                        tr.meta().ranks_per_node, placement, 5);
      const auto res = simmpi::replay_trace(tr, mi, simmpi::NetModelKind::kPacketFlow);
      const LoadStats ls = load_stats(res.link_bytes);
      t.add_row({app, pname, fmt_double(time_to_seconds(res.total_time) * 1e3, 2),
                 std::to_string(ls.used), fmt_double(ls.max / std::max(1.0, ls.mean), 2),
                 fmt_double(ls.gini, 3)});
    }
  }
  std::printf("%s\n", t.render().c_str());
  return 0;
}
