// §VI headline results: the naive sensitivity-only rule vs the enhanced
// MFACT statistical predictor — misclassification, false-negative and
// false-positive trimmed-mean rates over 100 Monte-Carlo splits
// (paper: naive 73.4%; enhanced 93.2% success, FN 6.2%, FP 6.7%).
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/decision.hpp"

int main() {
  using namespace hps;
  bench::print_header("Predicting the need for simulation (enhanced MFACT)",
                      "Section VI headline numbers");

  const auto study = bench::load_or_run_study();
  core::DecisionOptions opts;
  std::fprintf(stderr, "[table5] evaluating naive rule and 100-split CV...\n");
  const auto ev = core::evaluate_decision_model(study.outcomes, opts);

  TextTable t;
  t.set_header({"predictor", "success rate", "misclass.", "FN rate", "FP rate", "(paper)"});
  t.add_row({"naive (CL only)", fmt_percent(ev.naive.success_rate, 1),
             fmt_percent(1.0 - ev.naive.success_rate, 1), "-", "-", "73.4%"});
  t.add_row({"enhanced MFACT", fmt_percent(ev.cv.success_rate(), 1),
             fmt_percent(ev.cv.misclassification_trimmed_mean, 1),
             fmt_percent(ev.cv.fn_rate_trimmed_mean, 1),
             fmt_percent(ev.cv.fp_rate_trimmed_mean, 1), "93.2% (FN 6.2%, FP 6.7%)"});
  std::printf("%s\n", t.render().c_str());

  std::printf("Dataset: %d traces, %d positive (need simulation).\n", ev.total, ev.positives);
  std::printf("Misclassification rate sd over splits: %.1f%%\n",
              100.0 * ev.cv.misclassification_sd);
  std::printf("Final model (top variables refit on all data): intercept %.3g,",
              ev.final_model.intercept);
  for (std::size_t j = 0; j < ev.final_model.features.size(); ++j)
    std::printf(" %s=%.3g",
                trace::feature_names()[static_cast<std::size_t>(
                                           ev.final_model.features[j])].c_str(),
                ev.final_model.coef[j]);
  std::printf("\n\nNaive confusion: TP %d, TN %d, FP %d, FN %d\n", ev.naive.tp, ev.naive.tn,
              ev.naive.fp, ev.naive.fn);
  return 0;
}
