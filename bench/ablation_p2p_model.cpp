// Ablation: the analytic point-to-point model inside MFACT — Hockney vs
// LogGP (the related-work alternative the paper cites, Culler et al.).
// LogGP paces bursts of sends at the NIC gap, which should pull the model's
// predictions toward the detailed simulation for burst-send applications.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/runner.hpp"
#include "machine/machine.hpp"
#include "mfact/model.hpp"
#include "simmpi/replayer.hpp"
#include "workloads/generators.hpp"

int main() {
  using namespace hps;
  bench::print_header("Ablation: MFACT p2p cost model (Hockney vs LogGP)",
                      "the LogGP comparison of the related-work discussion");

  TextTable t;
  t.set_header({"app", "ranks", "sim total s", "Hockney (err)", "LogGP (err)"});

  for (const char* app : {"FillBoundary", "CR", "MiniFE", "LU", "CNS"}) {
    workloads::GenParams gp;
    gp.ranks = 128;
    gp.seed = 31;
    gp.iter_factor = 0.4;
    const auto& gen = workloads::generator_by_name(app);
    gp.ranks = gen.pick_ranks(64, 128);
    if (gp.ranks < 0) continue;
    const trace::Trace tr = workloads::generate_app(app, gp);
    const machine::MachineConfig mc = machine::machine_by_name(gp.machine);
    const machine::MachineInstance mi(mc, tr.nranks(), tr.meta().ranks_per_node);

    std::fprintf(stderr, "[p2p-model] %s(%d)...\n", app, gp.ranks);
    const auto sim = simmpi::replay_trace(tr, mi, simmpi::NetModelKind::kPacketFlow);
    const double sim_total = static_cast<double>(sim.total_time);

    const std::vector<mfact::NetworkConfigPoint> cfg = {
        {mc.net.link_bandwidth, mc.net.end_to_end_latency, 1.0, "base"}};
    mfact::MfactParams hockney;
    mfact::MfactParams loggp;
    loggp.p2p_model = mfact::P2pCostModel::kLogGP;
    const auto h = run_mfact(tr, cfg, hockney);
    const auto g = run_mfact(tr, cfg, loggp);

    auto cell = [&](const std::vector<mfact::ConfigResult>& res) {
      const double err = static_cast<double>(res[0].total_time) / sim_total - 1.0;
      return fmt_double(time_to_seconds(res[0].total_time), 4) + " (" +
             fmt_percent(std::fabs(err), 2) + ")";
    };
    t.add_row({app, std::to_string(tr.nranks()),
               fmt_double(time_to_seconds(sim.total_time), 4), cell(h), cell(g)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("err = |model/simulation - 1|. LogGP's NIC gap paces send bursts, so it\n"
              "tracks the simulator more closely on many-message codes at a tiny extra\n"
              "modeling cost (one extra clock per rank per configuration).\n");
  return 0;
}
