// Table II: actual execution times (seconds of host wall clock) of the four
// tools on three DOE applications — CMC(1024), LULESH(512), MiniFE(1152) —
// the paper's illustration of typical relative tool costs.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/runner.hpp"
#include "workloads/generators.hpp"

int main() {
  using namespace hps;
  using core::Scheme;
  bench::print_header("Table II: execution time in seconds", "Table II");

  struct Row {
    const char* app;
    Rank ranks;
    const char* paper;  // paper's Pkt / Flow / Pkt-flow / MFACT seconds
  };
  const Row rows[] = {
      {"CMC", 1024, "172.17 / 22.45 / 25.94 / 1.26"},
      {"LULESH", 512, "941.77 / 208.63 / 110.27 / 3.02"},
      {"MiniFE", 1152, "1608.57 / 929.37 / 367.08 / 35.15"},
  };

  TextTable t;
  t.set_header({"trace", "Pkt", "Flow", "Pkt-flow", "MFACT", "(paper Pkt/Flow/P-f/MFACT)"});
  for (const Row& row : rows) {
    workloads::GenParams gp;
    gp.ranks = row.ranks;
    gp.seed = 2024;
    gp.machine = "cielito";
    gp.iter_factor = 0.1;  // keep the largest runs affordable on one core
    std::fprintf(stderr, "[table2] running %s(%d)...\n", row.app, row.ranks);
    const trace::Trace tr = workloads::generate_app(row.app, gp);
    const core::TraceOutcome o = core::run_all_schemes(tr);
    t.add_row({std::string(row.app) + "(" + std::to_string(row.ranks) + ")",
               fmt_double(o.of(Scheme::kPacket).wall_seconds, 2),
               fmt_double(o.of(Scheme::kFlow).wall_seconds, 2),
               fmt_double(o.of(Scheme::kPacketFlow).wall_seconds, 2),
               fmt_double(o.of(Scheme::kMfact).wall_seconds, 2), row.paper});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Absolute seconds differ from the paper (different host, shorter synthetic\n"
              "traces); the ordering MFACT << {flow, packet-flow} < packet is the result\n"
              "under reproduction.\n");
  return 0;
}
