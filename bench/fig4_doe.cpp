// Figure 4: measured, modeling and simulation results for the DOE
// mini-apps, extracted kernels and production applications.
#include "fig34_impl.hpp"

int main() {
  using hps::bench::FigApp;
  const std::vector<FigApp> apps = {
      {"BigFFT", 256}, {"CR", 256},  {"AMG", 256},    {"MiniFE", 256},
      {"MultiGrid", 256}, {"FillBoundary", 256}, {"LULESH", 216}, {"CNS", 256},
      {"CMC", 256},    {"Nekbone", 256},
  };
  return hps::bench::run_fig34("Figure 4: DOE applications, measured vs modeled vs simulated",
                               "Figure 4", apps,
                               /*paper_sst_below=*/7.95, /*paper_mfact_below=*/13.10);
}
