// Figure 5: absolute DIFF_total (packet-flow simulation vs MFACT modeling)
// distributions for the three MFACT classification groups —
// computation-bound, load-imbalance-bound, and communication-sensitive —
// plus the group sizes (paper: 70 / 63 / 102 of 235).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/stats_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace hps;
  using core::Scheme;
  bench::print_header("Figure 5: |DIFF_total| by MFACT classification group", "Figure 5");

  const auto study = bench::load_or_run_study();

  struct Group {
    const char* label;
    const char* paper_count;
    std::vector<double> diffs;
    int count = 0;
  };
  Group groups[3] = {{"computation-bound", "70", {}, 0},
                     {"load-imbalance-bound", "63", {}, 0},
                     {"communication-sensitive", "102", {}, 0}};

  for (const auto& o : study.outcomes) {
    int g;
    if (o.group == mfact::SensitivityGroup::kCommSensitive) {
      g = 2;
    } else if (o.app_class == mfact::AppClass::kLoadImbalanceBound) {
      g = 1;
    } else {
      g = 0;
    }
    ++groups[g].count;
    if (const auto d = o.diff_total(Scheme::kPacketFlow)) groups[g].diffs.push_back(*d);
  }

  TextTable t;
  t.set_header({"group", "traces", "(paper)", "<=1%", "<=2%", "<=5%", "<=10%", "median",
                "max"});
  for (const Group& g : groups) {
    t.add_row({g.label, std::to_string(g.count), g.paper_count,
               fmt_percent(cdf_at(g.diffs, 0.01), 0), fmt_percent(cdf_at(g.diffs, 0.02), 0),
               fmt_percent(cdf_at(g.diffs, 0.05), 0), fmt_percent(cdf_at(g.diffs, 0.10), 0),
               fmt_percent(summarize(g.diffs).median, 2),
               fmt_percent(summarize(g.diffs).max, 2)});
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("Paper shape: almost all computation-bound within 2%%; 79%% of\n"
              "load-imbalance-bound within 1%%; communication-sensitive cases reach a\n"
              "maximum of 26.97%% with >90%% within 10%%.\n");
  return 0;
}
