// Ablation: packet size in the packet-flow model (the SST/Macro developers
// recommend 1-8 KB). Sweeps the size on one communication-heavy trace and
// reports simulator wall time, event count and predicted-time drift relative
// to the finest setting — the scalability/accuracy trade-off of §IV-B.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "machine/machine.hpp"
#include "simmpi/replayer.hpp"
#include "workloads/generators.hpp"

int main() {
  using namespace hps;
  bench::print_header("Ablation: packet-flow packet size (accuracy vs cost)",
                      "the packet-size guidance discussed in Section IV-B");

  workloads::GenParams gp;
  gp.ranks = 64;
  gp.seed = 99;
  gp.machine = "cielito";
  const trace::Trace t = workloads::generate_app("FT", gp);
  const machine::MachineInstance mi(machine::machine_by_name(gp.machine), t.nranks(),
                                    t.meta().ranks_per_node);

  TextTable table;
  table.set_header({"packet size", "wall s", "events", "predicted total s", "drift vs 512B"});
  double baseline = 0;
  for (const std::uint64_t psz : {512ull, 1024ull, 2048ull, 4096ull, 8192ull, 16384ull}) {
    simmpi::ReplayConfig cfg;
    cfg.packetflow_packet_size = psz;
    const auto r = simmpi::replay_trace(t, mi, simmpi::NetModelKind::kPacketFlow, cfg);
    const double total = time_to_seconds(r.total_time);
    if (baseline == 0) baseline = total;
    table.add_row({fmt_si_bytes(static_cast<double>(psz)), fmt_double(r.wall_seconds, 3),
                   std::to_string(r.engine.events_processed), fmt_double(total, 4),
                   fmt_percent(total / baseline - 1.0, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expected shape: event count (and wall time) shrinks roughly linearly with\n"
              "packet size while the predicted time drifts only slightly — the basis for\n"
              "the 1-8 KB recommendation.\n");
  return 0;
}
