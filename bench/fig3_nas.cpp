// Figure 3: measured, modeling and simulation results for the NAS Parallel
// Benchmarks (collected on the Cielito model).
#include "fig34_impl.hpp"

int main() {
  using hps::bench::FigApp;
  const std::vector<FigApp> apps = {
      {"BT", 256}, {"CG", 256}, {"DT", 128},  {"EP", 256}, {"FT", 256},
      {"IS", 256}, {"LU", 256}, {"MG", 256},  {"SP", 256},
  };
  return hps::bench::run_fig34("Figure 3: NAS benchmarks, measured vs modeled vs simulated",
                               "Figure 3", apps,
                               /*paper_sst_below=*/10.86, /*paper_mfact_below=*/14.83);
}
