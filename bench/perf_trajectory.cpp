// Perf-trajectory harness: the simulator-cost half of the paper's trade-off
// (§V-B tool time) as a CI-gateable number. Runs the small smoke corpus
// through all four schemes single-threaded, takes the per-scheme minimum of
// summed host wall time over a few repeats (minimum, not mean: scheduling
// noise only ever adds time), and emits BENCH_study.json. With --check it
// instead compares a fresh measurement against a committed baseline and
// fails on regression, so hot-path changes keep their speedups honest.
//
// Usage:
//   perf_trajectory [--out BENCH_study.json] [--repeats 3]
//                   [--check ci/BENCH_baseline.json] [--tolerance 0.25]
//                   [--limit 12] [--scale 0.25]
//
// A baseline file may carry per-scheme overrides of the --tolerance default
// as top-level "tolerance.<scheme>" keys (e.g. "tolerance.flow": 0.15), used
// to hold hard-won rows to a tighter regression budget than the noisy ones.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/study.hpp"

namespace {

using namespace hps;

constexpr int kNumSchemes = static_cast<int>(core::Scheme::kNumSchemes);

struct Measurement {
  double wall[kNumSchemes] = {};  // per-scheme summed wall over the corpus
  double total = 0;               // end-to-end study wall (best repeat)
};

Measurement measure(int repeats, int limit, double scale) {
  Measurement best;
  for (int si = 0; si < kNumSchemes; ++si) best.wall[si] = 1e300;
  best.total = 1e300;
  for (int rep = 0; rep < repeats; ++rep) {
    core::StudyOptions opts;
    opts.corpus.limit = limit;
    opts.corpus.duration_scale = scale;
    opts.threads = 1;  // single-threaded: wall times are per-scheme sums
    const core::StudyResult res = core::run_study(opts);
    double wall[kNumSchemes] = {};
    for (const core::TraceOutcome& o : res.outcomes)
      for (int si = 0; si < kNumSchemes; ++si) wall[si] += o.scheme[si].wall_seconds;
    for (int si = 0; si < kNumSchemes; ++si) best.wall[si] = std::min(best.wall[si], wall[si]);
    best.total = std::min(best.total, res.wall_seconds);
  }
  return best;
}

std::string to_json(const Measurement& m, int repeats, int limit, double scale) {
  std::ostringstream os;
  os.precision(6);
  os << "{\n"
     << "  \"schema\": 1,\n"
     << "  \"corpus_limit\": " << limit << ",\n"
     << "  \"duration_scale\": " << scale << ",\n"
     << "  \"threads\": 1,\n"
     << "  \"repeats\": " << repeats << ",\n"
     << "  \"wall_seconds\": {";
  for (int si = 0; si < kNumSchemes; ++si)
    os << (si ? ", " : "") << '"' << core::scheme_name(static_cast<core::Scheme>(si))
       << "\": " << m.wall[si];
  os << "},\n"
     << "  \"total_wall_seconds\": " << m.total << "\n"
     << "}\n";
  return os.str();
}

/// Value of `"key": <number>` in a flat-enough JSON text; -1 when absent.
/// The baseline files are written by this binary, so a targeted scan beats
/// carrying a JSON library for one nested object.
double find_number(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return -1;
  return std::strtod(text.c_str() + at + needle.size(), nullptr);
}

int check_against(const Measurement& m, const std::string& baseline_path, double tolerance) {
  std::ifstream is(baseline_path);
  if (!is.is_open()) {
    std::fprintf(stderr, "perf_trajectory: cannot open baseline %s\n", baseline_path.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << is.rdbuf();
  const std::string base = buf.str();

  int failures = 0;
  std::printf("%-12s %10s %10s %9s %8s   %s\n", "scheme", "baseline", "now", "ratio",
              "allowed", "status");
  for (int si = 0; si < kNumSchemes; ++si) {
    const char* name = core::scheme_name(static_cast<core::Scheme>(si));
    const double ref = find_number(base, name);
    if (ref <= 0) {
      std::printf("%-12s %10s %10.3f %9s %8s   skipped (no baseline)\n", name, "-",
                  m.wall[si], "-", "-");
      continue;
    }
    // A baseline may tighten (or loosen) individual rows with
    // "tolerance.<scheme>" keys; rows without one use the --tolerance flag.
    double tol = find_number(base, std::string("tolerance.") + name);
    if (tol < 0) tol = tolerance;
    const double ratio = m.wall[si] / ref;
    const bool ok = ratio <= 1.0 + tol;
    if (!ok) ++failures;
    std::printf("%-12s %10.3f %10.3f %8.2fx %7.0f%%   %s\n", name, ref, m.wall[si], ratio,
                tol * 100, ok ? "ok" : "REGRESSION");
  }
  if (failures > 0) {
    std::printf("FAIL: %d scheme(s) regressed beyond tolerance\n", failures);
    return 1;
  }
  std::printf("OK: all schemes within tolerance of baseline\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_study.json";
  std::string check_path;
  double tolerance = 0.25;
  int repeats = 3;
  int limit = 12;
  double scale = 0.25;
  for (int i = 1; i < argc; ++i) {
    const auto arg = [&](const char* flag) {
      if (std::strcmp(argv[i], flag) != 0) return static_cast<const char*>(nullptr);
      if (++i >= argc) {
        std::fprintf(stderr, "perf_trajectory: %s needs a value\n", flag);
        std::exit(2);
      }
      return static_cast<const char*>(argv[i]);
    };
    if (const char* v = arg("--out")) out_path = v;
    else if (const char* v = arg("--check")) check_path = v;
    else if (const char* v = arg("--tolerance")) tolerance = std::strtod(v, nullptr);
    else if (const char* v = arg("--repeats")) repeats = std::atoi(v);
    else if (const char* v = arg("--limit")) limit = std::atoi(v);
    else if (const char* v = arg("--scale")) scale = std::strtod(v, nullptr);
    else {
      std::fprintf(stderr, "perf_trajectory: unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (repeats < 1 || limit < 1 || scale <= 0 || tolerance < 0) {
    std::fprintf(stderr, "perf_trajectory: invalid options\n");
    return 2;
  }

  const Measurement m = measure(repeats, limit, scale);
  const std::string json = to_json(m, repeats, limit, scale);
  {
    std::ofstream os(out_path);
    if (!os.is_open()) {
      std::fprintf(stderr, "perf_trajectory: cannot write %s\n", out_path.c_str());
      return 2;
    }
    os << json;
  }
  std::printf("%s", json.c_str());
  std::printf("wrote %s (min over %d repeat(s))\n", out_path.c_str(), repeats);

  if (!check_path.empty()) return check_against(m, check_path, tolerance);
  return 0;
}
