// Serving-path load harness: N concurrent clients fire study requests at a
// hpcsweepd daemon and the harness reports throughput and latency quantiles
// into BENCH_serve.json — the serving analogue of perf_trajectory's study
// gate. Seeds cycle through a small distinct set so the run exercises the
// whole serving surface: cold misses, shared-cache hits, and single-flight
// coalescing when identical requests race.
//
// By default the harness embeds its own daemon (in-process Server on a
// private Unix socket) so one binary is a self-contained smoke test; point
// --socket at an external `hpcsweep_inspect serve` to load-test a real
// deployment. With --check it compares a fresh run against a committed
// baseline: throughput may not drop more than --tolerance below baseline,
// p99 latency may not rise more than --tolerance above it.
//
// Each client first fires --warmup untimed requests (excluded from every
// latency and throughput figure), so the measured phase starts against a
// warm daemon instead of charging cold-start to p50. The daemon's own
// per-phase latency histograms (kMetrics, protocol v2) are scraped after the
// load and written into BENCH_serve.json as a per-phase breakdown; the
// --check gate skips any metric the baseline file predates, so older
// baselines stay compatible.
//
// Overload mode (--overload N) turns the harness into a chaos gate: the
// client count is multiplied by N, warmup is skipped (cold-start pain is the
// point), every request carries --deadline-ms, and each connection gets a
// socket timeout so a wedged daemon fails the run instead of hanging CI.
// The run then asserts the overload contract: every request resolves to an
// explicit disposition (ok / degraded / expired / backpressure) — zero
// transport errors, zero hangs, nothing queued unboundedly.
//
// Restart mode (--restart) is the crash-durability chaos gate: the harness
// forks the daemon as a child process on a durable --cache-dir, SIGKILLs it
// after ~1/3 of the load has completed, and releases a second pre-forked
// daemon on the same socket and cache dir. Clients drive the whole run
// through ResilientClient, so the restart gap surfaces as retried connect
// failures, not errors. The run then asserts the warm-restart contract:
// zero hangs and zero transport errors, the second daemon recovered a
// non-zero number of cache entries (cache_recovered > 0), and every kOk
// reply for a given seed is byte-identical across the two daemon lifetimes.
//
// Usage:
//   load_test [--clients 4] [--requests 8] [--distinct 3] [--warmup 1]
//             [--scale 0.05] [--limit 2] [--socket PATH]
//             [--deadline-ms D] [--overload N] [--timeout-ms T]
//             [--restart] [--cache-dir DIR]
//             [--out BENCH_serve.json]
//             [--check ci/BENCH_serve_baseline.json] [--tolerance 0.5]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cerrno>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "serve/client.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using namespace hps;
using Clock = std::chrono::steady_clock;

struct Config {
  int clients = 4;
  int requests = 8;   // per client
  int distinct = 3;   // distinct seeds cycled across all requests
  int warmup = 1;     // untimed warmup requests per client
  double scale = 0.05;
  int limit = 2;
  std::string socket;  // empty: embed a daemon
  std::string out_path = "BENCH_serve.json";
  std::string check_path;
  double tolerance = 0.5;
  std::uint64_t deadline_ms = 0;  // end-to-end deadline stamped on requests
  int overload = 0;               // >0: overload-chaos mode, client multiplier
  double timeout_ms = 0;          // per-connection socket deadline (0 = none)
  bool restart = false;           // warm-restart chaos mode (kill -9 mid-load)
  std::string cache_dir;          // restart mode: durable cache dir
};

struct Result {
  std::vector<double> latencies_ms;  // successful timed requests only
  std::uint64_t ok = 0;
  std::uint64_t degraded = 0;
  std::uint64_t fallback = 0;  // degraded via MFACT-only deadline fallback
  std::uint64_t expired = 0;   // end-to-end deadline expired
  std::uint64_t rejected = 0;  // queue-full / shed / draining backpressure
  std::uint64_t errors = 0;    // transport failures or server-side errors
  std::uint64_t mismatches = 0;  // restart mode: kOk replies not byte-identical
  double wall_seconds = 0;     // timed load phase (warmup excluded)
  serve::Stats daemon;
  serve::MetricsReply metrics;  // daemon's per-phase histograms
  bool have_metrics = false;
};

double quantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

/// Restart-mode coordination between the client fleet and the chaos thread.
/// Clients issue the first `hold_after` requests freely; later requests wait
/// for `restarted`, so the run always has traffic on both sides of the kill
/// (requests in flight when the kill lands simply retry through the gap).
struct RestartGate {
  std::uint64_t hold_after = 0;
  std::atomic<std::uint64_t> issued{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<bool> restarted{false};
  std::mutex mu;
  std::condition_variable cv;

  void release() {
    const std::lock_guard<std::mutex> lk(mu);
    restarted.store(true);
    cv.notify_all();
  }
};

Result run_load(const Config& cfg, const std::string& socket_path,
                RestartGate* gate = nullptr) {
  Result res;
  std::vector<std::vector<double>> lat(static_cast<std::size_t>(cfg.clients));
  std::atomic<std::uint64_t> ok{0}, degraded{0}, fallback{0}, expired{0}, rejected{0},
      errors{0}, mismatches{0};

  // Restart mode: first kOk reply per seed is the reference; every later kOk
  // reply for the same seed — including ones served by the restarted daemon
  // from its recovered cache — must match it line for line.
  std::mutex ref_mu;
  std::map<std::uint64_t, std::vector<std::string>> refs;

  // Start barrier: every client finishes its warmup requests first, then the
  // timed phase begins for all of them at once — cold-start (first corpus
  // computation, connection setup) never lands in the measured quantiles.
  std::mutex start_mu;
  std::condition_variable start_cv;
  int warmed = 0;
  bool go = false;
  Clock::time_point start;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(cfg.clients));
  for (int c = 0; c < cfg.clients; ++c) {
    threads.emplace_back([&, c] {
      for (int r = 0; r < cfg.warmup; ++r) {
        serve::Request req;
        req.kind = serve::Request::Kind::kStudy;
        req.seed = 1000u + static_cast<std::uint64_t>((c + r) % cfg.distinct);
        req.duration_scale = cfg.scale;
        req.limit = cfg.limit;
        req.deadline_ms = cfg.deadline_ms;
        try {
          serve::Client cl = serve::Client::connect_unix(socket_path);
          if (cfg.timeout_ms > 0) cl.set_timeout_ms(cfg.timeout_ms);
          cl.study(req);
        } catch (const std::exception& e) {
          std::fprintf(stderr, "load_test: client %d warmup %d: %s\n", c, r, e.what());
        }
      }
      {
        std::unique_lock<std::mutex> lk(start_mu);
        ++warmed;
        start_cv.notify_all();
        start_cv.wait(lk, [&] { return go; });
      }
      for (int r = 0; r < cfg.requests; ++r) {
        serve::Request req;
        req.kind = serve::Request::Kind::kStudy;
        // Cycle a small seed set shifted per client so concurrent clients
        // collide on keys: misses, hits, and coalesced waits all occur.
        req.seed = 1000u + static_cast<std::uint64_t>((c + r) % cfg.distinct);
        req.duration_scale = cfg.scale;
        req.limit = cfg.limit;
        req.deadline_ms = cfg.deadline_ms;
        if (gate != nullptr) {
          const std::uint64_t idx = gate->issued.fetch_add(1, std::memory_order_relaxed);
          if (idx >= gate->hold_after && !gate->restarted.load()) {
            std::unique_lock<std::mutex> lk(gate->mu);
            gate->cv.wait(lk, [&] { return gate->restarted.load(); });
          }
        }
        const auto t0 = Clock::now();
        try {
          serve::Client::StudyReply reply;
          if (cfg.restart) {
            // Ride through the kill/restart gap: connect failures retry with
            // backoff until the relaunched daemon binds the socket. The
            // breaker threshold is effectively disabled — one endpoint, and
            // failing fast is exactly what this mode must not do.
            serve::ClientPolicy pol;
            pol.timeout_ms = cfg.timeout_ms;
            pol.max_retries = 200;
            pol.backoff_ms = 25;
            pol.backoff_max_ms = 400;
            pol.jitter_seed = static_cast<std::uint64_t>(c) * 1000u +
                              static_cast<std::uint64_t>(r) + 1;
            pol.breaker_failures = 1 << 20;
            serve::ResilientClient rcl =
                serve::ResilientClient::unix_socket(socket_path, pol);
            reply = rcl.study(req);
          } else {
            // One connection per request: the daemon's documented client model.
            serve::Client cl = serve::Client::connect_unix(socket_path);
            if (cfg.timeout_ms > 0) cl.set_timeout_ms(cfg.timeout_ms);
            reply = cl.study(req);
          }
          const double ms =
              std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
          if (cfg.restart && reply.summary.status == serve::Status::kOk) {
            const std::lock_guard<std::mutex> lk(ref_mu);
            auto& ref = refs[req.seed];
            if (ref.empty()) {
              ref = reply.records;
            } else if (ref != reply.records) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
              std::fprintf(stderr,
                           "load_test: seed %llu reply diverged across restart "
                           "(%zu vs %zu record(s))\n",
                           static_cast<unsigned long long>(req.seed), ref.size(),
                           reply.records.size());
            }
          }
          switch (reply.summary.status) {
            case serve::Status::kOk:
              ok.fetch_add(1, std::memory_order_relaxed);
              lat[static_cast<std::size_t>(c)].push_back(ms);
              break;
            case serve::Status::kDegraded:
              degraded.fetch_add(1, std::memory_order_relaxed);
              if (reply.summary.mfact_fallback)
                fallback.fetch_add(1, std::memory_order_relaxed);
              lat[static_cast<std::size_t>(c)].push_back(ms);
              break;
            case serve::Status::kExpired:
              expired.fetch_add(1, std::memory_order_relaxed);
              break;
            case serve::Status::kQueueFull:
            case serve::Status::kDraining:
              rejected.fetch_add(1, std::memory_order_relaxed);
              break;
            default:
              errors.fetch_add(1, std::memory_order_relaxed);
              break;
          }
        } catch (const std::exception& e) {
          errors.fetch_add(1, std::memory_order_relaxed);
          std::fprintf(stderr, "load_test: client %d request %d: %s\n", c, r, e.what());
        }
        if (gate != nullptr) gate->completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  {
    std::unique_lock<std::mutex> lk(start_mu);
    start_cv.wait(lk, [&] { return warmed == cfg.clients; });
    start = Clock::now();
    go = true;
    start_cv.notify_all();
  }
  for (std::thread& t : threads) t.join();
  res.wall_seconds = std::chrono::duration<double>(Clock::now() - start).count();

  for (const auto& l : lat)
    res.latencies_ms.insert(res.latencies_ms.end(), l.begin(), l.end());
  std::sort(res.latencies_ms.begin(), res.latencies_ms.end());
  res.ok = ok;
  res.degraded = degraded;
  res.fallback = fallback;
  res.expired = expired;
  res.rejected = rejected;
  res.errors = errors;
  res.mismatches = mismatches;

  serve::Client cl = serve::Client::connect_unix(socket_path);
  res.daemon = cl.stats();
  try {
    // Per-phase breakdown from the daemon's own histograms. An older daemon
    // without protocol v2 rejects the request; the breakdown is just absent.
    res.metrics = cl.metrics();
    res.have_metrics = true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "load_test: metrics scrape unavailable: %s\n", e.what());
  }
  return res;
}

std::string to_json(const Config& cfg, const Result& r) {
  const std::uint64_t served = r.ok + r.degraded;
  const double throughput =
      r.wall_seconds > 0 ? static_cast<double>(served) / r.wall_seconds : 0;
  std::ostringstream os;
  os.precision(6);
  os << "{\n"
     << "  \"schema\": 1,\n"
     << "  \"clients\": " << cfg.clients << ",\n"
     << "  \"requests_per_client\": " << cfg.requests << ",\n"
     << "  \"distinct_seeds\": " << cfg.distinct << ",\n"
     << "  \"warmup_per_client\": " << cfg.warmup << ",\n"
     << "  \"duration_scale\": " << cfg.scale << ",\n"
     << "  \"corpus_limit\": " << cfg.limit << ",\n"
     << "  \"deadline_ms\": " << cfg.deadline_ms << ",\n"
     << "  \"overload\": " << cfg.overload << ",\n"
     << "  \"served\": " << served << ",\n"
     << "  \"mfact_fallback\": " << r.fallback << ",\n"
     << "  \"expired\": " << r.expired << ",\n"
     << "  \"rejected\": " << r.rejected << ",\n"
     << "  \"errors\": " << r.errors << ",\n"
     << "  \"wall_seconds\": " << r.wall_seconds << ",\n"
     << "  \"throughput_rps\": " << throughput << ",\n"
     << "  \"latency_ms\": {\"p50\": " << quantile(r.latencies_ms, 0.50)
     << ", \"p99\": " << quantile(r.latencies_ms, 0.99)
     << ", \"p999\": " << quantile(r.latencies_ms, 0.999)
     << ", \"max\": " << (r.latencies_ms.empty() ? 0 : r.latencies_ms.back()) << "},\n";
  if (r.have_metrics) {
    // Daemon-side per-phase wall latency (covers warmup traffic too: these
    // are the daemon's cumulative histograms, not the client-side samples).
    os << "  \"phase_ms\": {";
    bool first = true;
    const std::size_t plen = std::strlen(serve::kPhaseMetricPrefix);
    for (const auto& h : r.metrics.hists) {
      if (h.name.rfind(serve::kPhaseMetricPrefix, 0) != 0 || h.data.count == 0) continue;
      os << (first ? "" : ", ") << "\"" << h.name.substr(plen) << "\": {\"p50\": "
         << h.data.quantile(0.50) * 1e3 << ", \"p99\": " << h.data.quantile(0.99) * 1e3
         << ", \"count\": " << h.data.count << "}";
      first = false;
    }
    os << "},\n";
  }
  os << "  \"daemon\": " << serve::stats_to_json(r.daemon) << "\n"
     << "}\n";
  return os.str();
}

/// Value of `"key": <number>` in a flat-enough JSON text; -1 when absent
/// (same targeted scan as perf_trajectory — these files are written by us).
double find_number(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return -1;
  return std::strtod(text.c_str() + at + needle.size(), nullptr);
}

int check_against(const Config& cfg, const Result& r, const std::string& json) {
  std::ifstream is(cfg.check_path);
  if (!is.is_open()) {
    std::fprintf(stderr, "load_test: cannot open baseline %s\n", cfg.check_path.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << is.rdbuf();
  const std::string base = buf.str();

  int failures = 0;
  const auto gate = [&](const char* name, double now, double ref, bool higher_is_better) {
    if (ref <= 0) {
      std::printf("%-16s %10s %10.3f   skipped (no baseline)\n", name, "-", now);
      return;
    }
    const double ratio = now / ref;
    const bool ok = higher_is_better ? ratio >= 1.0 - cfg.tolerance
                                     : ratio <= 1.0 + cfg.tolerance;
    if (!ok) ++failures;
    std::printf("%-16s %10.3f %10.3f %8.2fx   %s\n", name, ref, now, ratio,
                ok ? "ok" : "REGRESSION");
  };
  std::printf("%-16s %10s %10s %9s   %s\n", "metric", "baseline", "now", "ratio",
              "status");
  gate("throughput_rps", find_number(json, "throughput_rps"),
       find_number(base, "throughput_rps"), /*higher_is_better=*/true);
  // p50/p99 live in a nested object; scan the run's own JSON the same way.
  const auto nested = [&](const std::string& text, const char* key) {
    const std::size_t at = text.find("\"latency_ms\"");
    return at == std::string::npos ? -1 : find_number(text.substr(at), key);
  };
  gate("latency_p50_ms", nested(json, "p50"), nested(base, "p50"), false);
  gate("latency_p99_ms", nested(json, "p99"), nested(base, "p99"), false);
  // Baselines written before p999 existed report -1 here and are skipped, so
  // adding quantiles never invalidates a committed baseline.
  gate("latency_p999_ms", nested(json, "p999"), nested(base, "p999"), false);

  if (r.errors > 0) {
    std::printf("FAIL: %llu request(s) errored\n",
                static_cast<unsigned long long>(r.errors));
    return 1;
  }
  if (failures > 0) {
    std::printf("FAIL: %d metric(s) beyond %.0f%% of baseline\n", failures,
                cfg.tolerance * 100);
    return 1;
  }
  std::printf("OK: serving within %.0f%% of baseline\n", cfg.tolerance * 100);
  return 0;
}

/// Fork a child that runs a durable-cache daemon on `socket_path`. With
/// `wait_fd >= 0` the child stays armed — it blocks reading one byte from the
/// pipe before constructing the server — so the second daemon generation can
/// be forked while the parent is still single-threaded (forking later, with
/// client threads live, could deadlock the child in an inherited lock).
pid_t spawn_daemon(const Config& cfg, const std::string& socket_path, int wait_fd) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  if (wait_fd >= 0) {
    char b = 0;
    while (::read(wait_fd, &b, 1) < 0 && errno == EINTR) {
    }
  }
  int code = 0;
  try {
    serve::ServerOptions so;
    so.socket_path = socket_path;
    so.dispatchers = 2;
    so.queue_capacity = static_cast<std::size_t>(cfg.clients * cfg.requests);
    so.cache_bytes = 64u << 20;
    so.max_duration_scale = 1.0;
    so.cache_dir = cfg.cache_dir;
    so.scrub_interval_ms = 200;  // scrub under load, not just at rest
    serve::Server srv(std::move(so));
    srv.run();  // until SIGKILL (gen 1) or SIGTERM drain (gen 2)
  } catch (const std::exception& e) {
    std::fprintf(stderr, "load_test: daemon child: %s\n", e.what());
    code = 1;
  }
  std::_Exit(code);
}

/// Wait until a daemon answers ping on `socket_path` (bounded).
bool wait_for_daemon(const std::string& socket_path) {
  for (int i = 0; i < 500; ++i) {
    try {
      serve::Client cl = serve::Client::connect_unix(socket_path);
      if (cl.ping()) return true;
    } catch (const std::exception&) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "load_test: %s needs a value\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--clients") cfg.clients = std::atoi(next());
    else if (a == "--requests") cfg.requests = std::atoi(next());
    else if (a == "--distinct") cfg.distinct = std::max(1, std::atoi(next()));
    else if (a == "--warmup") cfg.warmup = std::max(0, std::atoi(next()));
    else if (a == "--scale") cfg.scale = std::atof(next());
    else if (a == "--limit") cfg.limit = std::atoi(next());
    else if (a == "--socket") cfg.socket = next();
    else if (a == "--out") cfg.out_path = next();
    else if (a == "--check") cfg.check_path = next();
    else if (a == "--tolerance") cfg.tolerance = std::atof(next());
    else if (a == "--deadline-ms") cfg.deadline_ms = static_cast<std::uint64_t>(std::atoll(next()));
    else if (a == "--overload") cfg.overload = std::max(0, std::atoi(next()));
    else if (a == "--timeout-ms") cfg.timeout_ms = std::atof(next());
    else if (a == "--restart") cfg.restart = true;
    else if (a == "--cache-dir") cfg.cache_dir = next();
    else {
      std::fprintf(stderr, "load_test: unknown flag %s\n", a.c_str());
      return 2;
    }
  }

  // Overload-chaos mode: multiply the client fleet, skip warmup (cold-start
  // pain is part of the chaos), and bound every socket exchange so a wedged
  // daemon fails the run loudly instead of hanging CI.
  if (cfg.overload > 0) {
    cfg.clients *= cfg.overload;
    cfg.warmup = 0;
    if (cfg.timeout_ms <= 0) cfg.timeout_ms = 120000;
  }

  // Warm-restart chaos mode: two pre-forked daemon generations on one socket
  // and one durable cache dir; generation 1 is SIGKILLed after ~1/3 of the
  // load completed and generation 2 (armed on a pipe) takes over.
  std::string socket_path = cfg.socket;
  RestartGate gate;
  std::thread chaos;
  pid_t gen1 = -1, gen2 = -1;
  int arm_pipe[2] = {-1, -1};
  if (cfg.restart) {
    if (!cfg.socket.empty()) {
      std::fprintf(stderr, "load_test: --restart forks its own daemons; drop --socket\n");
      return 2;
    }
    if (cfg.overload > 0) {
      std::fprintf(stderr, "load_test: --restart and --overload are separate gates\n");
      return 2;
    }
    socket_path = "/tmp/hps_load_restart_" + std::to_string(::getpid()) + ".sock";
    if (cfg.cache_dir.empty())
      cfg.cache_dir = "/tmp/hps_load_restart_" + std::to_string(::getpid()) + ".cache";
    if (cfg.timeout_ms <= 0) cfg.timeout_ms = 120000;
    if (::pipe(arm_pipe) != 0) {
      std::fprintf(stderr, "load_test: pipe: %s\n", std::strerror(errno));
      return 2;
    }
    gen1 = spawn_daemon(cfg, socket_path, -1);
    gen2 = spawn_daemon(cfg, socket_path, arm_pipe[0]);
    if (!wait_for_daemon(socket_path)) {
      std::fprintf(stderr, "load_test: daemon never answered ping on %s\n",
                   socket_path.c_str());
      return 1;
    }
    const std::uint64_t total = static_cast<std::uint64_t>(cfg.clients) *
                                static_cast<std::uint64_t>(cfg.requests);
    if (total < 2) {
      std::fprintf(stderr, "load_test: --restart needs at least 2 total requests\n");
      return 2;
    }
    gate.hold_after = std::max<std::uint64_t>(1, total / 2);
    chaos = std::thread([&] {
      // Kill once at least one request completed (so the spill holds at
      // least one entry to recover) but before the gated second half runs.
      const std::uint64_t kill_at = std::max<std::uint64_t>(1, gate.hold_after / 2);
      while (gate.completed.load(std::memory_order_relaxed) < kill_at)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      std::fprintf(stderr, "load_test: chaos — SIGKILL daemon gen 1 (pid %d) after %llu "
                   "request(s)\n", static_cast<int>(gen1),
                   static_cast<unsigned long long>(gate.completed.load()));
      ::kill(gen1, SIGKILL);
      int st = 0;
      ::waitpid(gen1, &st, 0);
      // Gen 1 is dead and its flock released; release gen 2 onto the same
      // socket + cache dir. Clients retry connect failures until it binds.
      const char go = 'g';
      while (::write(arm_pipe[1], &go, 1) < 0 && errno == EINTR) {
      }
      if (!wait_for_daemon(socket_path))
        std::fprintf(stderr, "load_test: gen-2 daemon never answered ping\n");
      gate.release();
    });
  }

  // Embedded daemon unless an external socket was given.
  std::unique_ptr<serve::Server> embedded;
  std::thread runner;
  if (socket_path.empty()) {
    socket_path = "/tmp/hps_load_test_" + std::to_string(::getpid()) + ".sock";
    serve::ServerOptions so;
    so.socket_path = socket_path;
    so.dispatchers = 2;
    // Queue sized to the worst-case burst so the measurement exercises the
    // cache and coalescing, not backpressure (backpressure has its own test).
    so.queue_capacity = static_cast<std::size_t>(cfg.clients * cfg.requests);
    so.cache_bytes = 64u << 20;
    so.max_duration_scale = 1.0;
    so.install_signal_guard = false;
    if (cfg.overload > 0) {
      // Self-contained overload smoke: one dispatcher, a queue far smaller
      // than the burst, and queue-delay shedding armed — the daemon must
      // shed/degrade its way through, not absorb the burst silently.
      so.dispatchers = 1;
      so.queue_capacity = 4;
      so.shed_target_ms = 20;
      so.shed_interval_ms = 50;
    }
    embedded = std::make_unique<serve::Server>(std::move(so));
    runner = std::thread([&] { embedded->run(); });
  }

  const Result res = run_load(cfg, socket_path, cfg.restart ? &gate : nullptr);

  if (chaos.joinable()) chaos.join();
  serve::Stats restarted;  // gen-2 stats, scraped before it drains
  if (cfg.restart) {
    restarted = res.daemon;
    ::kill(gen2, SIGTERM);
    int st = 0;
    ::waitpid(gen2, &st, 0);
    ::close(arm_pipe[0]);
    ::close(arm_pipe[1]);
    ::unlink(socket_path.c_str());
    ::unlink((socket_path + ".lock").c_str());
  }

  if (embedded) {
    embedded->shutdown();
    runner.join();
    ::unlink(socket_path.c_str());
  }

  const std::string json = to_json(cfg, res);
  std::ofstream os(cfg.out_path);
  if (!os.is_open()) {
    std::fprintf(stderr, "load_test: cannot write %s\n", cfg.out_path.c_str());
    return 2;
  }
  os << json;
  std::printf("%s", json.c_str());

  if (cfg.overload > 0) {
    // The overload contract: every fired request resolved to an explicit
    // disposition — served (possibly degraded to MFACT), expired against its
    // deadline, or shed/rejected as backpressure. Transport errors mean the
    // daemon wedged, crashed, or leaked a connection; any of those fails.
    const std::uint64_t total =
        static_cast<std::uint64_t>(cfg.clients) * static_cast<std::uint64_t>(cfg.requests);
    const std::uint64_t resolved = res.ok + res.degraded + res.expired + res.rejected;
    std::printf("overload x%d: %llu requests -> ok %llu, degraded %llu "
                "(mfact-fallback %llu), expired %llu, shed/rejected %llu, errors %llu\n",
                cfg.overload, static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(res.ok),
                static_cast<unsigned long long>(res.degraded),
                static_cast<unsigned long long>(res.fallback),
                static_cast<unsigned long long>(res.expired),
                static_cast<unsigned long long>(res.rejected),
                static_cast<unsigned long long>(res.errors));
    if (res.errors > 0 || resolved != total) {
      std::printf("OVERLOAD FAIL: %llu unresolved/errored request(s)\n",
                  static_cast<unsigned long long>(total - resolved + res.errors));
      return 1;
    }
    std::printf("OVERLOAD OK: all requests resolved explicitly\n");
    return 0;
  }

  if (cfg.restart) {
    // The warm-restart contract: zero hangs or transport errors (the retry
    // layer must absorb the gap), the restarted daemon recovered a non-zero
    // cache, and recovered hits answered byte-for-byte what gen 1 computed.
    std::printf("restart: ok %llu, degraded %llu, rejected %llu, errors %llu, "
                "mismatches %llu; gen-2 cache_recovered %llu (in %llu ms), "
                "quarantined %llu, scrub passes %llu (rot %llu)\n",
                static_cast<unsigned long long>(res.ok),
                static_cast<unsigned long long>(res.degraded),
                static_cast<unsigned long long>(res.rejected),
                static_cast<unsigned long long>(res.errors),
                static_cast<unsigned long long>(res.mismatches),
                static_cast<unsigned long long>(restarted.cache_recovered),
                static_cast<unsigned long long>(restarted.cache_recovery_ms),
                static_cast<unsigned long long>(restarted.cache_quarantined),
                static_cast<unsigned long long>(restarted.cache_scrub_passes),
                static_cast<unsigned long long>(restarted.cache_scrub_corrupt));
    int failures = 0;
    if (res.errors > 0) {
      std::printf("RESTART FAIL: %llu transport error(s) leaked past the retry layer\n",
                  static_cast<unsigned long long>(res.errors));
      ++failures;
    }
    if (res.mismatches > 0) {
      std::printf("RESTART FAIL: %llu reply mismatch(es) across the restart\n",
                  static_cast<unsigned long long>(res.mismatches));
      ++failures;
    }
    if (restarted.cache_recovered == 0) {
      std::printf("RESTART FAIL: gen-2 daemon recovered nothing (cold restart)\n");
      ++failures;
    }
    if (failures > 0) return 1;
    std::printf("RESTART OK: daemon came back warm, replies byte-identical\n");
    return 0;
  }

  if (!cfg.check_path.empty()) return check_against(cfg, res, json);
  return res.errors > 0 ? 1 : 0;
}
