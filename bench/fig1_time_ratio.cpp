// Figure 1: execution time of SST-style packet, flow and packet-flow
// simulations as multiples of MFACT's modeling time, bucketed at <=10x,
// <=100x, <=1000x and >1000x; plus the per-scheme speed ranking statistics
// reported in the paper's §V-B prose.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/stats_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace hps;
  using core::Scheme;
  bench::print_header("Figure 1: simulation time as multiples of MFACT time", "Figure 1");

  const auto study = bench::load_or_run_study();

  // The paper's timing subset: traces where all four schemes succeeded,
  // excluding ones with trivially small simulation times.
  const auto all = bench::with_schemes_ok(
      study.outcomes, {Scheme::kMfact, Scheme::kPacket, Scheme::kFlow, Scheme::kPacketFlow});
  std::vector<const core::TraceOutcome*> subset;
  for (const auto* o : all)
    if (o->of(Scheme::kPacket).wall_seconds >= 0.010) subset.push_back(o);
  std::printf("Timing subset: %zu of %zu traces (all four schemes succeeded, packet time >= "
              "10 ms; the paper used 126 of 235)\n\n",
              subset.size(), study.outcomes.size());

  const Scheme sims[] = {Scheme::kPacket, Scheme::kFlow, Scheme::kPacketFlow};

  // Ratio buckets.
  TextTable t;
  t.set_header({"model", "<=10x", "<=100x", "<=1000x", ">1000x"});
  std::vector<std::vector<double>> ratios(3);
  for (int i = 0; i < 3; ++i) {
    for (const auto* o : subset) {
      const double m = o->of(Scheme::kMfact).wall_seconds;
      if (m <= 0) continue;
      ratios[static_cast<std::size_t>(i)].push_back(o->of(sims[i]).wall_seconds / m);
    }
    const auto& r = ratios[static_cast<std::size_t>(i)];
    t.add_row({core::scheme_name(sims[i]), fmt_percent(cdf_at(r, 10.0), 0),
               fmt_percent(cdf_at(r, 100.0), 0), fmt_percent(cdf_at(r, 1000.0), 0),
               fmt_percent(1.0 - cdf_at(r, 1000.0), 0)});
  }
  t.add_row({"(paper pkt)", "21%", "52%", "90%", "10%"});
  t.add_row({"(paper flow)", "33%", "83%", "98%", "2%"});
  t.add_row({"(paper p-flow)", "28%", "79%", "94%", "6%"});
  std::printf("%s\n", t.render().c_str());

  // Speed ranking per trace (paper: MFACT first in 100% of cases; packet
  // slowest in 89%).
  int mfact_first = 0, packet_last = 0;
  int second_place[3] = {0, 0, 0};
  for (const auto* o : subset) {
    const double w[4] = {o->of(Scheme::kMfact).wall_seconds,
                         o->of(Scheme::kPacket).wall_seconds,
                         o->of(Scheme::kFlow).wall_seconds,
                         o->of(Scheme::kPacketFlow).wall_seconds};
    if (w[0] <= std::min({w[1], w[2], w[3]})) ++mfact_first;
    if (w[1] >= std::max({w[0], w[2], w[3]})) ++packet_last;
    // Which simulation is fastest (ranks second overall behind MFACT)?
    const int arg =
        w[1] <= w[2] && w[1] <= w[3] ? 0 : (w[2] <= w[3] ? 1 : 2);
    ++second_place[arg];
  }
  const double n = static_cast<double>(subset.size());
  std::printf("MFACT fastest: %.0f%% of traces (paper: 100%%)\n", 100.0 * mfact_first / n);
  std::printf("packet slowest: %.0f%% of traces (paper: 89%%)\n", 100.0 * packet_last / n);
  std::printf("second place: packet %.0f%%, flow %.0f%% (paper 41%%), packet-flow %.0f%% "
              "(paper 59%%)\n",
              100.0 * second_place[0] / n, 100.0 * second_place[1] / n,
              100.0 * second_place[2] / n);

  for (int i = 0; i < 3; ++i) {
    const Summary s = summarize(ratios[static_cast<std::size_t>(i)]);
    std::printf("%-12s ratio: median %.0fx, p90 %.0fx, max %.0fx\n",
                core::scheme_name(sims[i]), s.median, s.p90, s.max);
  }
  return 0;
}
