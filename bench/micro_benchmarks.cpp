// Google-benchmark micro-benchmarks for the performance-critical substrates:
// the event calendar, topology routing, the network models, the MFACT
// logical-clock replay (events/second, and its multi-configuration scaling),
// and the logistic-regression fit. These quantify why the tool-time ranking
// of Figure 1 comes out the way it does.
#include <benchmark/benchmark.h>

#include <chrono>

#include "common/rng.hpp"
#include "des/engine.hpp"
#include "des/event_queue.hpp"
#include "machine/machine.hpp"
#include "mfact/model.hpp"
#include "simmpi/replayer.hpp"
#include "simnet/flow_model.hpp"
#include "simnet/packet_model.hpp"
#include "simnet/packetflow_model.hpp"
#include "stats/logistic.hpp"
#include "topo/topology.hpp"
#include "workloads/generators.hpp"

namespace {

using namespace hps;

// --- DES engine: schedule+dispatch throughput. -----------------------------
class NullHandler final : public des::Handler {
 public:
  void handle(des::Engine&, std::uint64_t, std::uint64_t) override {}
};

void BM_EngineScheduleDispatch(benchmark::State& state) {
  NullHandler h;
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    des::Engine eng;
    for (std::uint64_t i = 0; i < n; ++i)
      eng.schedule_at(static_cast<SimTime>(rng.uniform_u64(1 << 20)), &h);
    eng.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EngineScheduleDispatch)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 18);

// --- Event queue alone: push+pop throughput (events/sec). -------------------
// The small arg stays in the binary-heap regime, the large ones exercise the
// calendar windows, so a regression in either mode shows up separately.
void BM_EventQueuePushPop(benchmark::State& state) {
  NullHandler h;
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Rng rng(7);
  des::EventQueue q;
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < n; ++i)
      q.push(static_cast<SimTime>(rng.uniform_u64(1 << 20)), &h, 0, 0);
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1 << 6)->Arg(1 << 13)->Arg(1 << 17);

// --- Topology routing. ------------------------------------------------------
template <typename MakeTopo>
void route_bench(benchmark::State& state, MakeTopo make) {
  const auto topo = make();
  Rng rng(2);
  std::vector<LinkId> links;
  const auto n = static_cast<std::uint64_t>(topo->num_nodes());
  for (auto _ : state) {
    const auto a = static_cast<NodeId>(rng.uniform_u64(n));
    const auto b = static_cast<NodeId>(rng.uniform_u64(n));
    topo->route(a, b, links);
    benchmark::DoNotOptimize(links.data());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RouteTorus(benchmark::State& state) {
  route_bench(state, [] { return topo::make_torus_for(512); });
}
BENCHMARK(BM_RouteTorus);

void BM_RouteDragonfly(benchmark::State& state) {
  route_bench(state, [] { return topo::make_dragonfly_for(512); });
}
BENCHMARK(BM_RouteDragonfly);

void BM_RouteFatTree(benchmark::State& state) {
  route_bench(state, [] { return topo::make_fattree_for(512); });
}
BENCHMARK(BM_RouteFatTree);

// --- Network models: uniform random traffic. --------------------------------
template <typename Model>
void net_bench(benchmark::State& state) {
  class Sink final : public simnet::MessageSink {
   public:
    void message_delivered(simnet::MsgId, SimTime) override {}
  };
  topo::Torus3D topo(4, 4, 4);
  simnet::NetConfig cfg;
  cfg.message_bandwidth = 1.25e9;
  cfg.link_bandwidth = 1.25e10;
  cfg.injection_bandwidth = 2e10;
  Rng rng(3);
  const int msgs = static_cast<int>(state.range(0));
  std::uint64_t packets = 0;  // items = packets, the models' unit of work
  for (auto _ : state) {
    des::Engine eng;
    Sink sink;
    Model model(eng, topo, cfg, sink);
    for (int i = 0; i < msgs; ++i)
      model.inject(static_cast<simnet::MsgId>(i),
                   static_cast<NodeId>(rng.uniform_u64(64)),
                   static_cast<NodeId>(rng.uniform_u64(64)), 16 * 1024);
    eng.run();
    packets += model.stats().packets;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(packets));
  state.counters["msgs"] = benchmark::Counter(
      static_cast<double>(msgs) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_PacketModel(benchmark::State& state) { net_bench<simnet::PacketModel>(state); }
BENCHMARK(BM_PacketModel)->Arg(512)->Arg(4096);

void BM_PacketFlowModel(benchmark::State& state) {
  net_bench<simnet::PacketFlowModel>(state);
}
BENCHMARK(BM_PacketFlowModel)->Arg(512)->Arg(4096);

// --- Flow model: incremental ripple throughput (re-rate iterations/sec). ----
void BM_FlowRipple(benchmark::State& state) {
  class Sink final : public simnet::MessageSink {
   public:
    void message_delivered(simnet::MsgId, SimTime) override {}
  };
  topo::Torus3D topo(4, 4, 4);
  simnet::NetConfig cfg;
  cfg.message_bandwidth = 1.25e9;
  cfg.link_bandwidth = 1.25e10;
  cfg.injection_bandwidth = 2e10;
  Rng rng(9);
  const int msgs = static_cast<int>(state.range(0));
  std::uint64_t ripples = 0;
  for (auto _ : state) {
    des::Engine eng;
    Sink sink;
    simnet::FlowModel model(eng, topo, cfg, sink);
    for (int i = 0; i < msgs; ++i)
      model.inject(static_cast<simnet::MsgId>(i),
                   static_cast<NodeId>(rng.uniform_u64(64)),
                   static_cast<NodeId>(rng.uniform_u64(64)), 256 * 1024);
    eng.run();
    ripples += model.stats().ripple_iterations;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ripples));
  state.counters["msgs"] = benchmark::Counter(
      static_cast<double>(msgs) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FlowRipple)->Arg(256)->Arg(2048);

// --- Max-min solver: full re-solve vs incremental component churn. ----------
// BM_MaxMinSolveFull dirties every constraint each iteration, forcing the
// whole-system water-fill the retired ripple performed on every rate update.
// BM_MaxMinSolveIncremental replaces one flow per iteration, the steady-state
// pattern of a running simulation, so each solve re-rates only the dirty
// component. Routes stay inside 8-link blocks (a sparse traffic pattern —
// neighbor exchanges, clustered collectives), keeping the sharing graph in
// many small components; the throughput gap between the two fixtures is the
// component-locality win. With all-to-all routes the graph collapses into
// one component and the gap vanishes by construction — locality is a
// property of the traffic, not of the solver.
constexpr int kMaxMinLinks = 256;
constexpr int kMaxMinBlock = 8;

void maxmin_add_clustered(simnet::maxmin::System& sys, Rng& rng,
                          std::vector<simnet::maxmin::VarId>& ids) {
  const auto base = static_cast<int>(rng.uniform_u64(kMaxMinLinks / kMaxMinBlock)) *
                    kMaxMinBlock;
  const auto v = sys.add_variable(1.25);
  for (int h = 0; h < 3; ++h)
    sys.attach(v, static_cast<simnet::maxmin::ConsId>(
                      base + static_cast<int>(rng.uniform_u64(kMaxMinBlock))));
  sys.admit(v);
  ids.push_back(v);
}

void maxmin_populate(simnet::maxmin::System& sys, Rng& rng, int flows,
                     std::vector<simnet::maxmin::VarId>& ids) {
  for (int l = 0; l < kMaxMinLinks; ++l) sys.add_constraint(12.5);
  for (int i = 0; i < flows; ++i) maxmin_add_clustered(sys, rng, ids);
  sys.solve();
}

void BM_MaxMinSolveFull(benchmark::State& state) {
  Rng rng(11);
  simnet::maxmin::System sys;
  std::vector<simnet::maxmin::VarId> ids;
  maxmin_populate(sys, rng, static_cast<int>(state.range(0)), ids);
  std::uint64_t touched = 0;
  for (auto _ : state) {
    for (int l = 0; l < kMaxMinLinks; ++l)
      sys.set_capacity(static_cast<simnet::maxmin::ConsId>(l), 12.5);
    sys.solve();
    touched += sys.touched_constraints();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["touched"] = benchmark::Counter(
      static_cast<double>(touched), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MaxMinSolveFull)->Arg(256)->Arg(2048);

void BM_MaxMinSolveIncremental(benchmark::State& state) {
  Rng rng(11);
  simnet::maxmin::System sys;
  std::vector<simnet::maxmin::VarId> ids;
  maxmin_populate(sys, rng, static_cast<int>(state.range(0)), ids);
  std::size_t victim = 0;
  std::uint64_t touched = 0;
  for (auto _ : state) {
    sys.retire(ids[victim]);
    maxmin_add_clustered(sys, rng, ids);  // appends the replacement id
    ids[victim] = ids.back();
    ids.pop_back();
    victim = (victim + 1) % ids.size();
    sys.solve();
    touched += sys.touched_constraints();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["touched"] = benchmark::Counter(
      static_cast<double>(touched), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MaxMinSolveIncremental)->Arg(256)->Arg(2048);

// --- MFACT: trace events per second and multi-config scaling. ---------------
void BM_MfactReplay(benchmark::State& state) {
  workloads::GenParams gp;
  gp.ranks = 64;
  gp.seed = 5;
  gp.iter_factor = 0.3;
  const trace::Trace t = workloads::generate_app("MiniFE", gp);
  const auto k = static_cast<std::size_t>(state.range(0));
  std::vector<mfact::NetworkConfigPoint> configs(
      k, {gbps_to_Bps(10), 2500, 1.0, "cfg"});
  for (auto _ : state) {
    auto res = run_mfact(t, configs);
    benchmark::DoNotOptimize(res.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(t.total_events()) * state.iterations());
  state.counters["configs"] = static_cast<double>(k);
}
BENCHMARK(BM_MfactReplay)->Arg(1)->Arg(8)->Arg(32);

// --- Full replay comparison on one small trace. -----------------------------
void BM_SimReplay(benchmark::State& state) {
  workloads::GenParams gp;
  gp.ranks = 64;
  gp.seed = 5;
  gp.iter_factor = 0.3;
  const trace::Trace t = workloads::generate_app("MiniFE", gp);
  const machine::MachineInstance mi(machine::cielito(), t.nranks(), t.meta().ranks_per_node);
  const auto kind = static_cast<simmpi::NetModelKind>(state.range(0));
  for (auto _ : state) {
    auto res = simmpi::replay_trace(t, mi, kind);
    benchmark::DoNotOptimize(&res);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(t.total_events()) * state.iterations());
  state.SetLabel(simmpi::net_model_name(kind));
}
BENCHMARK(BM_SimReplay)->Arg(0)->Arg(1)->Arg(2);

// --- Logistic regression fit. ------------------------------------------------
void BM_LogisticFit(benchmark::State& state) {
  const std::size_t n = 235;
  stats::Dataset ds;
  ds.x = Matrix(n, 6);
  ds.y.resize(n);
  Rng rng(6);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 6; ++j) ds.x(i, j) = rng.normal();
    ds.y[i] = ds.x(i, 0) + 0.5 * ds.x(i, 1) + 0.2 * rng.normal() > 0 ? 1 : 0;
  }
  const std::vector<int> features = {0, 1, 2, 3, 4};
  for (auto _ : state) {
    auto m = fit_logistic(ds, features);
    benchmark::DoNotOptimize(&m);
  }
}
BENCHMARK(BM_LogisticFit);

}  // namespace

BENCHMARK_MAIN();
