// Differential tests for the DES event queue: the calendar/bucket structure
// must pop in exactly the (time, sequence) order a reference
// std::priority_queue produces, across randomized workloads that force heap
// mode, calendar mode, window rebuilds, far-heap overflow, and the drain
// reset — per-change invisibility is the contract the hot-path overhaul is
// built on.
#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "des/engine.hpp"
#include "des/event_queue.hpp"

namespace {

using namespace hps;
using des::EventQueue;
using des::QueuedEvent;

class NullHandler final : public des::Handler {
 public:
  void handle(des::Engine&, std::uint64_t, std::uint64_t) override {}
};

/// Reference ordering: min (t, seq) first, exactly the queue's contract.
struct RefLater {
  bool operator()(const std::pair<SimTime, std::uint64_t>& x,
                  const std::pair<SimTime, std::uint64_t>& y) const {
    return x.first > y.first || (x.first == y.first && x.second > y.second);
  }
};

using RefQueue = std::priority_queue<std::pair<SimTime, std::uint64_t>,
                                     std::vector<std::pair<SimTime, std::uint64_t>>, RefLater>;

/// Drive queue and reference through the same randomized push/pop mix and
/// require identical pop sequences. `time_range` shapes the distribution:
/// small ranges force heavy ties, large ones force far-heap overflow.
void differential(std::uint64_t seed, std::size_t ops, std::uint64_t time_range,
                  int push_bias_percent) {
  NullHandler h;
  EventQueue q;
  RefQueue ref;
  Rng rng(seed);
  std::uint64_t next_seq = 0;
  SimTime now = 0;  // pushes never go below the last popped time
  for (std::size_t i = 0; i < ops; ++i) {
    const bool do_push =
        ref.empty() || rng.uniform_u64(100) < static_cast<std::uint64_t>(push_bias_percent);
    if (do_push) {
      const SimTime t = now + static_cast<SimTime>(rng.uniform_u64(time_range));
      q.push(t, &h, 0, 0);
      ref.emplace(t, next_seq++);
    } else {
      ASSERT_FALSE(q.empty());
      ASSERT_EQ(q.next_time(), ref.top().first);
      const QueuedEvent ev = q.pop();
      ASSERT_EQ(ev.t, ref.top().first) << "op " << i;
      ASSERT_EQ(ev.seq, ref.top().second) << "op " << i;
      now = ev.t;
      ref.pop();
    }
    ASSERT_EQ(q.size(), ref.size());
  }
  // Drain: the tail must match too.
  while (!ref.empty()) {
    const QueuedEvent ev = q.pop();
    EXPECT_EQ(ev.t, ref.top().first);
    EXPECT_EQ(ev.seq, ref.top().second);
    ref.pop();
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueDifferential, RandomizedMixedOps) {
  // 10k ops per seed; push-biased so the population crosses the calendar
  // threshold and window rebuilds happen mid-run.
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull})
    differential(seed, 10000, 1 << 16, 60);
}

TEST(EventQueueDifferential, HeavyTies) {
  // A tiny time range makes most events collide on the same timestamps, so
  // every pop exercises the FIFO sequence tie-break.
  differential(11, 10000, 4, 55);
}

TEST(EventQueueDifferential, SparseHorizon) {
  // A huge range keeps the population sparse relative to any window, forcing
  // far-heap traffic and repeated rebuilds.
  differential(12, 10000, std::uint64_t{1} << 40, 55);
}

TEST(EventQueueDifferential, PushDrainCycles) {
  // Repeated full drains: a stale calendar window must not survive an empty
  // queue (regression test for the quadratic refill pathology).
  NullHandler h;
  EventQueue q;
  Rng rng(13);
  std::uint64_t next_seq = 0;
  for (int cycle = 0; cycle < 8; ++cycle) {
    RefQueue ref;
    for (int i = 0; i < 600; ++i) {
      const auto t = static_cast<SimTime>(rng.uniform_u64(1 << 20));
      q.push(t, &h, 0, 0);
      ref.emplace(t, next_seq++);
    }
    while (!ref.empty()) {
      const QueuedEvent ev = q.pop();
      ASSERT_EQ(ev.t, ref.top().first);
      ASSERT_EQ(ev.seq, ref.top().second);
      ref.pop();
    }
    ASSERT_TRUE(q.empty());
  }
}

TEST(EventQueue, FifoOnEqualTimes) {
  NullHandler h;
  EventQueue q;
  for (std::uint64_t i = 0; i < 2000; ++i) q.push(42, &h, i, 0);
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const QueuedEvent ev = q.pop();
    ASSERT_EQ(ev.t, 42);
    ASSERT_EQ(ev.a, i);  // payload tracks push order
  }
}

TEST(EventQueue, ClearResetsSequence) {
  NullHandler h;
  EventQueue q;
  q.push(1, &h, 0, 0);
  q.push(2, &h, 0, 0);
  q.clear();
  EXPECT_TRUE(q.empty());
  q.push(7, &h, 0, 0);
  EXPECT_EQ(q.pop().seq, 0u);  // sequence counter restarted
}

TEST(EventQueue, PayloadSurvivesModeSwitches) {
  // Payload words must come back attached to the right (t, seq) regardless
  // of which internal structure held the event.
  NullHandler h;
  EventQueue q;
  Rng rng(14);
  std::vector<std::pair<SimTime, std::uint64_t>> pushed;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    const auto t = static_cast<SimTime>(rng.uniform_u64(1 << 12));
    q.push(t, &h, i, ~i);
    pushed.emplace_back(t, i);
  }
  std::sort(pushed.begin(), pushed.end());
  for (const auto& [t, i] : pushed) {
    const QueuedEvent ev = q.pop();
    ASSERT_EQ(ev.t, t);
    ASSERT_EQ(ev.a, i);
    ASSERT_EQ(ev.b, ~i);
  }
}

}  // namespace
