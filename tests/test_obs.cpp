// Tests for the observability layer: the virtual-time timeline recorder
// (bounded memory, Chrome export, per-scheme recording), the JSON-lines run
// ledger (round-trip, schema versioning, determinism) and the inspect
// analysis used by hpcsweep_inspect (top-N divergence, accuracy, regression
// diff with CI exit semantics).
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <unistd.h>

#include "common/error.hpp"
#include "core/runner.hpp"
#include "core/study.hpp"
#include "machine/machine.hpp"
#include "mfact/classify.hpp"
#include "obs/inspect.hpp"
#include "obs/ledger.hpp"
#include "obs/timeline.hpp"
#include "simmpi/replayer.hpp"
#include "workloads/generators.hpp"

namespace hps::obs {
namespace {

// --- TimelineRecorder -----------------------------------------------------

TEST(Timeline, RecordsAndExportsChromeTrace) {
  TimelineRecorder rec;
  rec.record(0, IntervalKind::kCompute, 0, 1000);
  rec.record(0, IntervalKind::kSend, 1000, 2500, /*detail=*/64);
  rec.record(1, IntervalKind::kRecv, 500, 2500);
  rec.record(kLinkTrackBase + 3, IntervalKind::kNetStall, 100, 200);
  rec.set_track_name(1, "rank one");
  ASSERT_EQ(rec.intervals().size(), 4u);
  EXPECT_EQ(rec.max_end(), 2500);

  std::ostringstream os;
  rec.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("rank one"), std::string::npos);   // explicit name
  EXPECT_NE(json.find("link 3"), std::string::npos);     // derived link name
  EXPECT_NE(json.find("compute"), std::string::npos);
  EXPECT_NE(json.find("net-stall"), std::string::npos);
}

TEST(Timeline, BoundedMemoryCountsDrops) {
  TimelineRecorder::Options opts;
  opts.max_intervals = 3;
  TimelineRecorder rec(opts);
  for (int i = 0; i < 10; ++i)
    rec.record(0, IntervalKind::kCompute, i * 10, i * 10 + 5);
  EXPECT_EQ(rec.intervals().size(), 3u);
  EXPECT_EQ(rec.dropped(), 7u);
  rec.clear();
  EXPECT_TRUE(rec.empty());
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(Timeline, IgnoresBackwardIntervals) {
  TimelineRecorder rec;
  rec.record(0, IntervalKind::kWait, 100, 50);
  EXPECT_TRUE(rec.empty());
}

TEST(Timeline, RecordingIsOffByDefault) {
  // The whole layer is opt-in: nothing holds a recorder unless configured.
  EXPECT_EQ(simmpi::ReplayConfig{}.timeline, nullptr);
  EXPECT_EQ(mfact::MfactParams{}.timeline, nullptr);
}

workloads::GenParams tiny_params() {
  workloads::GenParams p;
  p.ranks = 16;
  p.seed = 7;
  p.iter_factor = 0.2;
  return p;
}

/// Acceptance (a): every scheme can render a per-rank virtual-time trace.
TEST(Timeline, EverySchemeRecordsIntervals) {
  const auto t = workloads::generate_app("MiniFE", tiny_params());
  const machine::MachineConfig mc = machine::machine_by_name(t.meta().machine);

  // MFACT records the base-configuration replay.
  {
    TimelineRecorder rec;
    mfact::ClassifyParams cp;
    cp.mfact.timeline = &rec;
    const auto cl =
        mfact::classify(t, mc.net.link_bandwidth, mc.net.end_to_end_latency, cp);
    EXPECT_GT(cl.sweep[mfact::kSweepBase].total_time, 0);
    EXPECT_FALSE(rec.empty());
    bool has_compute = false, has_rank_track = false;
    for (const Interval& iv : rec.intervals()) {
      has_compute = has_compute || iv.kind == IntervalKind::kCompute;
      has_rank_track = has_rank_track || iv.track < kLinkTrackBase;
      EXPECT_GE(iv.end, iv.start);
    }
    EXPECT_TRUE(has_compute);
    EXPECT_TRUE(has_rank_track);
  }

  // The three simulators record through the replayer and network models.
  const machine::MachineInstance mi(mc, t.nranks(), t.meta().ranks_per_node);
  for (const auto kind : {simmpi::NetModelKind::kPacket, simmpi::NetModelKind::kFlow,
                          simmpi::NetModelKind::kPacketFlow}) {
    TimelineRecorder rec;
    simmpi::ReplayConfig rc;
    rc.timeline = &rec;
    const auto rr = simmpi::replay_trace(t, mi, kind, rc);
    EXPECT_GT(rr.total_time, 0);
    ASSERT_FALSE(rec.empty()) << simmpi::net_model_name(kind);
    bool has_compute = false;
    SimTime max_end = 0;
    for (const Interval& iv : rec.intervals()) {
      has_compute = has_compute || iv.kind == IntervalKind::kCompute;
      if (iv.track < kLinkTrackBase) max_end = std::max(max_end, iv.end);
    }
    EXPECT_TRUE(has_compute) << simmpi::net_model_name(kind);
    // Rank intervals live within the predicted makespan.
    EXPECT_LE(max_end, rr.total_time);

    std::ostringstream os;
    rec.write_chrome_trace(os);
    EXPECT_NE(os.str().find("\"traceEvents\""), std::string::npos);
  }
}

// --- Ledger ---------------------------------------------------------------

LedgerRecord sample_record() {
  LedgerRecord r;
  r.study_key = "00c0ffee00c0ffee";
  r.spec_id = 42;
  r.app = "CG";
  r.machine = "hopper";
  r.ranks = 128;
  r.events = 123456;
  r.scheme = "packet-flow";
  r.ok = true;
  r.predicted_total_ns = 987654321;
  r.predicted_comm_ns = 12345678;
  r.measured_total_ns = 990000000;
  r.diff_total = 0.0123;
  r.diff_comm = 0.25;
  r.components.compute_ns = 1e9;
  r.components.p2p_ns = 2.5e8;
  r.components.collective_ns = 1.25e8;
  r.components.wait_ns = 3e7;
  r.components.other_ns = 1e6;
  r.des_events = 777;
  r.net_messages = 10;
  r.net_bytes = 1 << 20;
  r.net_packets = 1024;
  r.net_rate_updates = 5;
  r.net_ripple_iterations = 2;
  r.net_stalls = 3;
  r.net_max_active = 4;
  r.wall_seconds = 0.125;
  return r;
}

TEST(Ledger, JsonLineRoundTrip) {
  const LedgerRecord r = sample_record();
  const std::string line = to_json_line(r);
  const LedgerRecord back = parse_ledger_line(line);
  EXPECT_EQ(back.schema, kObsSchemaVersion);
  EXPECT_EQ(back.study_key, r.study_key);
  EXPECT_EQ(back.spec_id, r.spec_id);
  EXPECT_EQ(back.app, r.app);
  EXPECT_EQ(back.machine, r.machine);
  EXPECT_EQ(back.ranks, r.ranks);
  EXPECT_EQ(back.events, r.events);
  EXPECT_EQ(back.scheme, r.scheme);
  EXPECT_EQ(back.ok, r.ok);
  EXPECT_EQ(back.error, r.error);
  EXPECT_EQ(back.predicted_total_ns, r.predicted_total_ns);
  EXPECT_EQ(back.predicted_comm_ns, r.predicted_comm_ns);
  EXPECT_EQ(back.measured_total_ns, r.measured_total_ns);
  EXPECT_DOUBLE_EQ(back.diff_total, r.diff_total);
  EXPECT_DOUBLE_EQ(back.diff_comm, r.diff_comm);
  EXPECT_DOUBLE_EQ(back.components.compute_ns, r.components.compute_ns);
  EXPECT_DOUBLE_EQ(back.components.p2p_ns, r.components.p2p_ns);
  EXPECT_DOUBLE_EQ(back.components.collective_ns, r.components.collective_ns);
  EXPECT_DOUBLE_EQ(back.components.wait_ns, r.components.wait_ns);
  EXPECT_DOUBLE_EQ(back.components.other_ns, r.components.other_ns);
  EXPECT_EQ(back.des_events, r.des_events);
  EXPECT_EQ(back.net_messages, r.net_messages);
  EXPECT_EQ(back.net_bytes, r.net_bytes);
  EXPECT_EQ(back.net_packets, r.net_packets);
  EXPECT_EQ(back.net_rate_updates, r.net_rate_updates);
  EXPECT_EQ(back.net_ripple_iterations, r.net_ripple_iterations);
  EXPECT_EQ(back.net_stalls, r.net_stalls);
  EXPECT_EQ(back.net_max_active, r.net_max_active);
  EXPECT_DOUBLE_EQ(back.wall_seconds, r.wall_seconds);

  // Re-serializing the parsed record reproduces the exact line.
  EXPECT_EQ(to_json_line(back), line);
}

TEST(Ledger, EscapesStringsInErrorField) {
  LedgerRecord r = sample_record();
  r.ok = false;
  r.error = "bad \"quote\"\nand\tcontrol \\ chars";
  const LedgerRecord back = parse_ledger_line(to_json_line(r));
  EXPECT_EQ(back.error, r.error);
}

TEST(Ledger, RejectsWrongSchemaVersion) {
  std::string line = to_json_line(sample_record());
  const std::string want = "\"schema\":" + std::to_string(kObsSchemaVersion);
  const auto pos = line.find(want);
  ASSERT_NE(pos, std::string::npos);
  line.replace(pos, want.size(), "\"schema\":999");
  EXPECT_THROW((void)parse_ledger_line(line), Error);
}

TEST(Ledger, RejectsMalformedLines) {
  EXPECT_THROW((void)parse_ledger_line("not json"), Error);
  EXPECT_THROW((void)parse_ledger_line("{}"), Error);
  EXPECT_THROW((void)parse_ledger_line("{\"schema\":" +
                                       std::to_string(kObsSchemaVersion) + "}"),
               Error);
}

TEST(Ledger, AppendAndLoadFile) {
  const std::string path =
      "/tmp/hps_test_ledger_" + std::to_string(getpid()) + ".jsonl";
  std::remove(path.c_str());
  LedgerRecord a = sample_record();
  LedgerRecord b = sample_record();
  b.spec_id = 43;
  b.scheme = "flow";
  append_ledger(path, {a});
  append_ledger(path, {b});  // appends, does not truncate
  const auto loaded = load_ledger(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].spec_id, 42);
  EXPECT_EQ(loaded[1].spec_id, 43);
  EXPECT_EQ(loaded[1].scheme, "flow");
  std::remove(path.c_str());

  EXPECT_THROW((void)load_ledger("/nonexistent/ledger.jsonl"), Error);
}

TEST(Ledger, LoadReportsLineNumbers) {
  const std::string path =
      "/tmp/hps_test_ledger_bad_" + std::to_string(getpid()) + ".jsonl";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs((to_json_line(sample_record()) + "\n\ngarbage\n").c_str(), f);
    std::fclose(f);
  }
  try {
    (void)load_ledger(path);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(":3:"), std::string::npos) << e.what();
  }
  std::remove(path.c_str());
}

/// Two identical studies yield byte-identical ledger records once the sole
/// nondeterministic field (wall_seconds) is zeroed.
TEST(Ledger, StudyRecordsAreDeterministic) {
  core::StudyOptions opts;
  opts.corpus.limit = 2;
  opts.corpus.duration_scale = 0.1;

  const auto run_lines = [&opts] {
    const core::StudyResult res = core::run_study(opts);
    auto records = core::ledger_records(res.outcomes, core::study_cache_key(opts));
    std::string lines;
    for (LedgerRecord& r : records) {
      r.wall_seconds = 0;
      lines += to_json_line(r) + "\n";
    }
    return lines;
  };
  const std::string first = run_lines();
  const std::string second = run_lines();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(Ledger, StudyAppendsLedgerOnComputeOnly) {
  const std::string base = "/tmp/hps_test_study_" + std::to_string(getpid());
  const std::string ledger = base + ".jsonl";
  const std::string cache = base + ".cache";
  std::remove(ledger.c_str());
  std::remove(cache.c_str());

  core::StudyOptions opts;
  opts.corpus.limit = 2;
  opts.corpus.duration_scale = 0.1;
  opts.cache_path = cache;
  opts.ledger_path = ledger;

  const core::StudyResult first = core::run_study(opts);
  EXPECT_FALSE(first.from_cache);
  const auto after_first = load_ledger(ledger);
  EXPECT_EQ(after_first.size(),
            2u * static_cast<std::size_t>(core::Scheme::kNumSchemes));
  for (const LedgerRecord& r : after_first) {
    EXPECT_EQ(r.schema, kObsSchemaVersion);
    EXPECT_FALSE(r.study_key.empty());
  }

  // A cache hit must not append duplicate records.
  const core::StudyResult second = core::run_study(opts);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(load_ledger(ledger).size(), after_first.size());

  std::remove(ledger.c_str());
  std::remove(cache.c_str());
}

// --- Inspect --------------------------------------------------------------

/// Synthetic ledger: mfact + two sims for two traces with known diffs.
std::vector<LedgerRecord> synthetic_ledger() {
  std::vector<LedgerRecord> out;
  for (int spec : {0, 1}) {
    LedgerRecord m = sample_record();
    m.spec_id = spec;
    m.scheme = "mfact";
    m.app = spec == 0 ? "CG" : "FT";
    m.diff_total = -1;
    m.diff_comm = -1;
    m.predicted_total_ns = 1000000;
    out.push_back(m);
    int i = 0;
    for (const char* scheme : {"packet", "flow"}) {
      LedgerRecord s = m;
      s.scheme = scheme;
      // spec 1 diverges harder; flow diverges harder than packet.
      s.diff_total = 0.01 * (1 + i) * (1 + 3 * spec);
      s.predicted_total_ns =
          static_cast<std::int64_t>(1000000 * (1.0 + s.diff_total));
      ++i;
      out.push_back(s);
    }
  }
  return out;
}

/// Acceptance (b): top-N divergence with per-component attribution.
TEST(Inspect, TopDivergentRanksAndPairs) {
  const auto records = synthetic_ledger();
  const auto top = top_divergent(records, 3);
  ASSERT_EQ(top.size(), 3u);
  // Descending by diff: spec1/flow (0.08), spec1/packet (0.04), spec0/flow (0.02)
  EXPECT_EQ(top[0].sim.spec_id, 1);
  EXPECT_EQ(top[0].sim.scheme, "flow");
  EXPECT_NEAR(top[0].diff_total, 0.08, 1e-12);
  EXPECT_EQ(top[1].sim.scheme, "packet");
  EXPECT_EQ(top[2].sim.spec_id, 0);
  // Every divergence is paired with its trace's MFACT record.
  for (const Divergence& d : top) {
    EXPECT_EQ(d.mfact.scheme, "mfact");
    EXPECT_EQ(d.mfact.spec_id, d.sim.spec_id);
    EXPECT_GT(d.sim.components.compute_ns, 0);
  }

  std::ostringstream os;
  render_top(os, top);
  const std::string text = os.str();
  EXPECT_NE(text.find("FT"), std::string::npos);
  EXPECT_NE(text.find("flow"), std::string::npos);
  EXPECT_NE(text.find("compute"), std::string::npos);
}

TEST(Inspect, TopSkipsUnpairedAndFailed) {
  auto records = synthetic_ledger();
  LedgerRecord orphan = sample_record();
  orphan.spec_id = 99;
  orphan.scheme = "packet";  // no mfact partner
  records.push_back(orphan);
  LedgerRecord failed = records[1];
  failed.ok = false;
  failed.diff_total = -1;
  records.push_back(failed);
  const auto top = top_divergent(records, 100);
  for (const Divergence& d : top) {
    EXPECT_NE(d.sim.spec_id, 99);
    EXPECT_TRUE(d.sim.ok);
  }
}

TEST(Inspect, AccuracyTableRenders) {
  std::ostringstream os;
  render_accuracy(os, synthetic_ledger(), 0.03);
  const std::string text = os.str();
  EXPECT_NE(text.find("CG"), std::string::npos);
  EXPECT_NE(text.find("FT"), std::string::npos);
  EXPECT_NE(text.find("packet"), std::string::npos);
}

/// Acceptance (c): the diff gate reports divergence via a failing result.
TEST(Inspect, DiffDetectsRegressions) {
  const auto base = synthetic_ledger();

  // Identical ledgers pass.
  EXPECT_TRUE(diff_ledgers(base, base).ok());

  // A prediction drifting past tolerance fails.
  auto drifted = base;
  drifted[1].predicted_total_ns =
      static_cast<std::int64_t>(drifted[1].predicted_total_ns * 1.10);
  DiffOptions opts;
  opts.tolerance = 0.05;
  const DiffResult r = diff_ledgers(base, drifted, opts);
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.regressions.size(), 1u);
  EXPECT_EQ(r.regressions[0].what, "predicted_total_ns");
  // ...but passes with a looser tolerance.
  DiffOptions loose;
  loose.tolerance = 0.2;
  EXPECT_TRUE(diff_ledgers(base, drifted, loose).ok());

  // A record flipping from ok to failed is always a regression.
  auto broke = base;
  broke[1].ok = false;
  EXPECT_FALSE(diff_ledgers(base, broke).ok());

  // Records missing from either side fail the gate.
  auto shrunk = base;
  shrunk.pop_back();
  const DiffResult missing = diff_ledgers(base, shrunk);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.only_before, 1u);

  std::ostringstream os;
  render_diff(os, r, opts);
  EXPECT_NE(os.str().find("FAIL"), std::string::npos);
  std::ostringstream ok_os;
  render_diff(ok_os, diff_ledgers(base, base), DiffOptions{});
  EXPECT_NE(ok_os.str().find("OK"), std::string::npos);
}

TEST(Inspect, DegradedRecordsGateTheDiff) {
  const auto base = synthetic_ledger();
  auto degraded = base;
  degraded[0].ok = false;
  degraded[0].fail_kind = "budget";
  degraded[1].ok = false;
  degraded[1].fail_kind = "deadlock";

  EXPECT_FALSE(is_degraded(base[0]));
  EXPECT_TRUE(is_degraded(degraded[0]));
  LedgerRecord skipped = base[0];
  skipped.fail_kind = "skipped";
  EXPECT_FALSE(is_degraded(skipped)) << "compat skips are not failures";
  EXPECT_EQ(degraded_count(degraded), 2u);
  const auto counts = fail_kind_counts(degraded);
  ASSERT_GE(counts.size(), 2u);
  EXPECT_EQ(counts.front().first, "budget");  // sorted by kind name

  // Degraded after-side records fail the gate even where ok-flips are the
  // only regressions...
  auto both = degraded;
  const DiffResult blocked = diff_ledgers(degraded, both);
  EXPECT_EQ(blocked.degraded_after, 2u);
  EXPECT_TRUE(blocked.degraded_blocking);
  EXPECT_FALSE(blocked.ok());
  std::ostringstream os;
  render_diff(os, blocked, DiffOptions{});
  EXPECT_NE(os.str().find("degraded"), std::string::npos);

  // ...unless explicitly allowed.
  DiffOptions allow;
  allow.allow_degraded = true;
  const DiffResult tolerated = diff_ledgers(degraded, both, allow);
  EXPECT_FALSE(tolerated.degraded_blocking);
  EXPECT_TRUE(tolerated.ok());
}

TEST(Inspect, DiffComparesWallClockOnlyWhenAsked) {
  const auto base = synthetic_ledger();
  auto slower = base;
  for (auto& r : slower) r.wall_seconds *= 10;
  EXPECT_TRUE(diff_ledgers(base, slower).ok()) << "walls ignored by default";
  DiffOptions opts;
  opts.wall_tolerance = 0.5;
  EXPECT_FALSE(diff_ledgers(base, slower, opts).ok());
}

}  // namespace
}  // namespace hps::obs
